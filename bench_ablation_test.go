package repro_test

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/partition"
)

// Ablation benchmarks for the design choices called out in DESIGN.md §5.
// They report quality and convergence metrics alongside time, via
// b.ReportMetric.

func ablationGraph(b *testing.B) *graph.Graph {
	b.Helper()
	g, _, err := gen.LFR(gen.DefaultLFR(4000, 0.25, 55))
	if err != nil {
		b.Fatal(err)
	}
	return g
}

// BenchmarkAblationDHigh sweeps the hub threshold: small thresholds
// delegate too much (hub decisions become partial-information guesses),
// huge thresholds degenerate to 1D behaviour.
func BenchmarkAblationDHigh(b *testing.B) {
	g := ablationGraph(b)
	for _, dhigh := range []int{8, 16, 32, 64, 1 << 20} {
		name := fmt.Sprintf("dhigh=%d", dhigh)
		if dhigh == 1<<20 {
			name = "dhigh=inf"
		}
		b.Run(name, func(b *testing.B) {
			var lastQ float64
			var hubs int
			for i := 0; i < b.N; i++ {
				res, err := core.Run(g, core.Options{P: 8, DHigh: dhigh})
				if err != nil {
					b.Fatal(err)
				}
				lastQ = res.Modularity
				hubs = res.HubCount
			}
			b.ReportMetric(lastQ, "modularity")
			b.ReportMetric(float64(hubs), "hubs")
		})
	}
}

// BenchmarkAblationHeuristic compares the three convergence heuristics
// (the Figure 5 knob): enhanced should dominate on quality, strict should
// converge in the fewest iterations, simple should churn.
func BenchmarkAblationHeuristic(b *testing.B) {
	g := ablationGraph(b)
	for _, h := range []core.Heuristic{core.HeuristicEnhanced, core.HeuristicSimple, core.HeuristicStrict} {
		b.Run(h.String(), func(b *testing.B) {
			var lastQ float64
			var iters int
			for i := 0; i < b.N; i++ {
				res, err := core.Run(g, core.Options{P: 8, Heuristic: h, MaxInnerIters: 40})
				if err != nil {
					b.Fatal(err)
				}
				lastQ = res.Modularity
				iters = res.Stage1Iters
			}
			b.ReportMetric(lastQ, "modularity")
			b.ReportMetric(float64(iters), "stage1iters")
		})
	}
}

// BenchmarkAblationPartitioning isolates the partitioning choice at fixed
// heuristic: the paper's Figure 7 comparison as a benchmark.
func BenchmarkAblationPartitioning(b *testing.B) {
	g := ablationGraph(b)
	for _, kind := range []partition.Kind{partition.Delegate, partition.OneD} {
		b.Run(kind.String(), func(b *testing.B) {
			var imbalance float64
			for i := 0; i < b.N; i++ {
				res, err := core.Run(g, core.Options{P: 8, Partitioning: kind})
				if err != nil {
					b.Fatal(err)
				}
				imbalance = res.Census.ImbalanceW()
			}
			b.ReportMetric(imbalance, "W")
		})
	}
}

// BenchmarkAblationCommVolume reports the communication volume of a run —
// the paper's Section V-C concern — at several world sizes.
func BenchmarkAblationCommVolume(b *testing.B) {
	g := ablationGraph(b)
	for _, p := range []int{2, 4, 8, 16} {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			var total, maxRank float64
			for i := 0; i < b.N; i++ {
				res, err := core.Run(g, core.Options{P: p})
				if err != nil {
					b.Fatal(err)
				}
				total = float64(res.CommStats.TotalBytesSent())
				maxRank = float64(res.CommStats.MaxBytesSent())
			}
			b.ReportMetric(total, "bytes-total")
			b.ReportMetric(maxRank, "bytes-maxrank")
			// Balance ratio: max-rank share vs perfect balance.
			b.ReportMetric(maxRank*float64(p)/total, "comm-imbalance")
		})
	}
}

// BenchmarkPartitionBuild measures partitioning preprocessing alone (the
// paper reports it as negligible in Figure 9).
func BenchmarkPartitionBuild(b *testing.B) {
	g := ablationGraph(b)
	for _, kind := range []partition.Kind{partition.Delegate, partition.OneD} {
		b.Run(kind.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := partition.Build(g, partition.Options{P: 16, Kind: kind}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
