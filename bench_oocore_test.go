package repro_test

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/partition"
)

// heapHighWater samples HeapInuse every 20ms (mirroring dlouvain -memstats)
// and returns a stop function that reports the high-water mark in bytes.
func heapHighWater() func() uint64 {
	stop := make(chan struct{})
	out := make(chan uint64, 1)
	go func() {
		tick := time.NewTicker(20 * time.Millisecond)
		defer tick.Stop()
		var ms runtime.MemStats
		var high uint64
		for {
			runtime.ReadMemStats(&ms)
			if ms.HeapInuse > high {
				high = ms.HeapInuse
			}
			select {
			case <-stop:
				out <- high
				return
			case <-tick.C:
			}
		}
	}()
	return func() uint64 {
		close(stop)
		return <-out
	}
}

// BenchmarkOocorePipeline is the PR-9 acceptance benchmark: the full
// out-of-core pipeline — streamed R-MAT generation to a v2 .sbin, two-pass
// streaming partition, windowed solve — with the heap high-water as an
// extra metric. The default scale keeps CI fast; the committed BENCH_9.json
// row is produced with OOCORE_SCALE=23 (>= 10^8 edges, see EXPERIMENTS.md),
// where the generate and partition phases stay flat in shard-window size
// rather than growing with |E|.
func BenchmarkOocorePipeline(b *testing.B) {
	scale := 14
	if s := os.Getenv("OOCORE_SCALE"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil {
			b.Fatalf("OOCORE_SCALE: %v", err)
		}
		scale = v
	}
	shards := 16
	if scale > 16 {
		shards = 256
	}
	cfg := gen.Graph500RMAT(scale, 9)
	b.Run(fmt.Sprintf("scale=%d", scale), func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			stop := heapHighWater()
			path := filepath.Join(b.TempDir(), "g.sbin")
			sg, err := gen.StreamRMAT(cfg, path, shards)
			if err != nil {
				b.Fatal(err)
			}
			s, closer, err := graph.OpenShardedFile(path)
			if err != nil {
				b.Fatal(err)
			}
			opt := core.Options{P: 4}
			layout, err := partition.BuildStreaming(s, partition.Options{
				P:     opt.P,
				Kind:  partition.Delegate,
				DHigh: core.DefaultDHigh(opt.P, s.NumVertices(), s.NumArcs()),
			})
			if err != nil {
				b.Fatal(err)
			}
			if err := closer.Close(); err != nil {
				b.Fatal(err)
			}
			res, err := core.RunLayout(layout, opt)
			if err != nil {
				b.Fatal(err)
			}
			if res.Modularity <= 0 {
				b.Fatal("bad modularity")
			}
			hw := stop()
			b.ReportMetric(float64(hw)/(1<<20), "heap-MB")
			b.ReportMetric(float64(sg.Arcs/2), "edges")
			b.ReportMetric(res.Modularity, "modularity")
		}
	})
}
