package repro_test

import (
	"io"
	"testing"

	"repro/internal/core"
	"repro/internal/expt"
	"repro/internal/gen"
	"repro/internal/louvain"
	"repro/internal/trace"
)

// One benchmark per table and figure of the paper's evaluation. Each runs
// the corresponding experiment at the quick profile; `cmd/experiments`
// (without -quick) runs the full profile and prints the tables.

func benchExperiment(b *testing.B, name string) {
	b.Helper()
	p := expt.Quick()
	for i := 0; i < b.N; i++ {
		if err := expt.Run(name, p, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1Datasets regenerates Table I (dataset census).
func BenchmarkTable1Datasets(b *testing.B) { benchExperiment(b, "table1") }

// BenchmarkFig5Convergence regenerates Figure 5 (modularity convergence:
// sequential vs parallel simple vs parallel enhanced).
func BenchmarkFig5Convergence(b *testing.B) { benchExperiment(b, "fig5") }

// BenchmarkTable2Quality regenerates Table II (NMI, F-measure, NVD, RI,
// ARI, JI against ground truth).
func BenchmarkTable2Quality(b *testing.B) { benchExperiment(b, "table2") }

// BenchmarkFig6Partition regenerates Figure 6 (workload and communication
// balance of 1D vs delegate partitioning).
func BenchmarkFig6Partition(b *testing.B) { benchExperiment(b, "fig6") }

// BenchmarkFig7DelegateVs1D regenerates Figure 7 (total running time vs the
// 1D-partitioned baseline).
func BenchmarkFig7DelegateVs1D(b *testing.B) { benchExperiment(b, "fig7") }

// BenchmarkFig8Breakdown regenerates Figure 8 (stage times and the
// per-iteration phase breakdown), and additionally reports the collective
// engine's own counters — calls, wall time, and bytes through the leaf
// collectives — so changes to the comm layer show up in the breakdown
// benchmark directly rather than only through the simulated α-β cost.
func BenchmarkFig8Breakdown(b *testing.B) {
	trace.EnableCollectiveStats(true)
	trace.ResetCollectiveStats()
	defer trace.EnableCollectiveStats(false)
	benchExperiment(b, "fig8")
	tot := trace.CollectiveTotals()
	if b.N > 0 {
		b.ReportMetric(float64(tot.Calls)/float64(b.N), "coll-calls/op")
		b.ReportMetric(float64(tot.NS)/float64(b.N), "coll-ns/op")
		b.ReportMetric(float64(tot.Bytes)/float64(b.N), "coll-B/op")
	}
	b.Logf("collectives: %s", trace.FormatCollectiveSnapshot(trace.CollectiveSnapshot()))
}

// BenchmarkFig9Scaling regenerates Figure 9 (strong scaling over the
// dataset registry).
func BenchmarkFig9Scaling(b *testing.B) { benchExperiment(b, "fig9") }

// BenchmarkFig10Efficiency regenerates Figure 10 (relative parallel
// efficiency τ).
func BenchmarkFig10Efficiency(b *testing.B) { benchExperiment(b, "fig10") }

// BenchmarkFig11StrongWeak regenerates Figure 11 (strong and weak scaling
// on R-MAT and BA graphs).
func BenchmarkFig11StrongWeak(b *testing.B) { benchExperiment(b, "fig11") }

// Micro-benchmarks of the core pipeline, for profiling rather than paper
// reproduction.

// BenchmarkSequentialLouvain measures the sequential baseline on the
// Amazon stand-in.
func BenchmarkSequentialLouvain(b *testing.B) {
	g, _, err := gen.LFR(gen.DefaultLFR(6000, 0.25, 101))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := louvain.Run(g, louvain.Options{})
		if res.Modularity <= 0 {
			b.Fatal("bad modularity")
		}
	}
}

// BenchmarkDistributedLouvain measures the full distributed pipeline at
// several world sizes on the Amazon stand-in.
func BenchmarkDistributedLouvain(b *testing.B) {
	g, _, err := gen.LFR(gen.DefaultLFR(6000, 0.25, 101))
	if err != nil {
		b.Fatal(err)
	}
	for _, p := range []int{1, 2, 4, 8} {
		b.Run(map[int]string{1: "p=1", 2: "p=2", 4: "p=4", 8: "p=8"}[p], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := core.Run(g, core.Options{P: p})
				if err != nil {
					b.Fatal(err)
				}
				if res.Modularity <= 0 {
					b.Fatal("bad modularity")
				}
			}
		})
	}
}

// BenchmarkCommCost regenerates the Section V-C communication-volume study
// (measured bytes per rank, delegate vs 1D).
func BenchmarkCommCost(b *testing.B) { benchExperiment(b, "comm") }

// BenchmarkGPUProjection regenerates the Section VI projection (simulated
// communication share under GPU-accelerated local clustering).
func BenchmarkGPUProjection(b *testing.B) { benchExperiment(b, "gpu") }
