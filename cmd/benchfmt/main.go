// Command benchfmt converts `go test -bench -benchmem` output into the
// JSON trajectory files (BENCH_<pr>.json) the performance work is tracked
// by. It reads benchmark output on stdin and writes one JSON document on
// stdout:
//
//	go test -run '^$' -bench . -benchmem ./internal/core/ | benchfmt -pr 2
//
// With -seed FILE, the file's "current" (or top-level) metrics are embedded
// as the "seed" block, so a single run produces a before/after comparison
// against the committed pre-change numbers:
//
//	... | benchfmt -pr 2 -seed scripts/bench_seed_pr2.json > BENCH_2.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"strconv"
)

// Metrics is one benchmark's measurement. B/op and allocs/op are present
// only when the run used -benchmem; Extra holds any custom b.ReportMetric
// columns (e.g. sim-ms/op, coll-calls/op) keyed by unit.
type Metrics struct {
	Iters    int                `json:"iters"`
	NsOp     float64            `json:"ns_op"`
	BOp      float64            `json:"b_op,omitempty"`
	AllocsOp float64            `json:"allocs_op,omitempty"`
	Extra    map[string]float64 `json:"extra,omitempty"`
}

// Doc is the BENCH_<pr>.json layout.
type Doc struct {
	PR         int                `json:"pr,omitempty"`
	GoVersion  string             `json:"go_version"`
	GOMAXPROCS int                `json:"gomaxprocs"`
	Seed       map[string]Metrics `json:"seed,omitempty"`
	Current    map[string]Metrics `json:"current"`
}

// benchLine matches one `go test -bench` result row; the tail is a list of
// "<value> <unit>" measurement pairs (ns/op always; B/op and allocs/op with
// -benchmem; custom b.ReportMetric columns interleave alphabetically).
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+(\S.*)$`)

// metricPair matches one "<value> <unit>" measurement within the tail. The
// unit is any token: besides the standard /op and /s rates, ReportMetric
// columns may be plain gauges (heap-MB, edges, modularity in the
// out-of-core pipeline benchmark) — the tail contains nothing but
// value-unit pairs, so an open unit pattern cannot misfire.
var metricPair = regexp.MustCompile(`([\d.]+(?:[eE][+-]?\d+)?) ([^\s\d]\S*)`)

func main() {
	pr := flag.Int("pr", 0, "PR number recorded in the document")
	seedPath := flag.String("seed", "", "JSON file whose metrics become the seed (before) block")
	flag.Parse()

	doc := Doc{
		PR:         *pr,
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Current:    make(map[string]Metrics),
	}
	if *seedPath != "" {
		seed, err := loadSeed(*seedPath)
		if err != nil {
			fatal(err)
		}
		doc.Seed = seed
	}

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		var met Metrics
		met.Iters, _ = strconv.Atoi(m[2])
		for _, pair := range metricPair.FindAllStringSubmatch(m[3], -1) {
			v, err := strconv.ParseFloat(pair[1], 64)
			if err != nil {
				continue
			}
			switch pair[2] {
			case "ns/op":
				met.NsOp = v
			case "B/op":
				met.BOp = v
			case "allocs/op":
				met.AllocsOp = v
			default:
				if met.Extra == nil {
					met.Extra = make(map[string]float64)
				}
				met.Extra[pair[2]] = v
			}
		}
		doc.Current[m[1]] = met
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}
	if len(doc.Current) == 0 {
		fatal(fmt.Errorf("no benchmark lines found on stdin"))
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fatal(err)
	}
}

// loadSeed reads a prior benchfmt document (or a bare name→metrics map) and
// returns its metrics: the "current" block when present, the map itself
// otherwise.
func loadSeed(path string) (map[string]Metrics, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var d Doc
	if err := json.Unmarshal(data, &d); err == nil && len(d.Current) > 0 {
		return d.Current, nil
	}
	var m map[string]Metrics
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("%s: not a benchfmt document: %w", path, err)
	}
	return m, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchfmt:", err)
	os.Exit(1)
}
