// Command dlouvain runs the distributed Louvain algorithm on a graph read
// from a file or produced by a generator spec.
//
// Usage:
//
//	dlouvain -gen lfr:n=5000,mu=0.3,seed=1 -p 8
//	dlouvain -graph web.txt -p 16 -heuristic simple -partitioning 1d
//	dlouvain -gen rmat:scale=14 -p 8 -trace -breakdown
//
// The tool prints the final modularity, timing, partition census, and
// (optionally) the per-iteration modularity trace, phase breakdown, and
// quality scores against planted ground truth.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/louvain"
	"repro/internal/partition"
	"repro/internal/quality"
	"repro/internal/trace"
)

func main() {
	var (
		graphPath   = flag.String("graph", "", "path to an edge-list (.txt), binary (.bin), or sharded binary (.sbin) graph file")
		genSpec     = flag.String("gen", "", "generator spec, e.g. lfr:n=5000,mu=0.3,seed=1 (see internal/gen.ParseSpec)")
		p           = flag.Int("p", 4, "number of ranks (simulated processors)")
		dhigh       = flag.Int("dhigh", 0, "hub degree threshold (0 = automatic)")
		heuristic   = flag.String("heuristic", "enhanced", "convergence heuristic: enhanced|simple|strict")
		partitioner = flag.String("partitioning", "delegate", "partitioning: delegate|1d")
		seq         = flag.Bool("seq", false, "also run the sequential Louvain baseline and compare")
		showTrace   = flag.Bool("trace", false, "print the per-iteration modularity trace")
		breakdown   = flag.Bool("breakdown", false, "print the stage-1 per-phase time breakdown")
		outPath     = flag.String("o", "", "write the final membership (vertex community) to this file")
		gamma       = flag.Float64("gamma", 1, "modularity resolution γ (>1 = more, smaller communities)")
		showLevels  = flag.Bool("levels", false, "print the dendrogram (communities per clustering level)")
		workers     = flag.Int("workers", 0, "intra-rank workers for the parallel kernels (0 = GOMAXPROCS/p, 1 = serial; results are identical)")
		cpuProfile  = flag.String("cpuprofile", "", "write a CPU profile of the run to this file (go tool pprof)")
		memProfile  = flag.String("memprofile", "", "write a post-run heap profile to this file (go tool pprof)")
		commDL      = flag.Duration("comm-deadline", 0, "per-receive deadline for the rank goroutines; 0 blocks forever (docs/ROBUSTNESS.md)")

		// Mid-solve load rebalancing (docs/PERFORMANCE.md).
		rebRatio  = flag.Float64("rebalance", 0, "work-imbalance threshold θ > 1 that triggers vertex migration; 0 = off")
		rebPolicy = flag.String("rebalance-policy", "", "migration policy: greedy|ideal|none (default greedy)")
		rebHyst   = flag.Int("rebalance-hysteresis", 0, "consecutive over-threshold iterations before migrating (0 = default)")
		rebCool   = flag.Int("rebalance-cooldown", 0, "minimum iterations between migration events (0 = default)")
		rebSeed   = flag.Int64("rebalance-seed", 0, "seed passed to the migration policy (0 = default)")
		events    = flag.Bool("events", false, "stream runtime events (balance ratios, migrations, retries) to stderr")

		// Out-of-core mode (docs/PERFORMANCE.md).
		oocore   = flag.Bool("oocore", false, "partition and solve from a .sbin file's shard windows without decoding the whole graph (requires -graph FILE.sbin)")
		memstats = flag.Bool("memstats", false, "sample the heap during the run and print its high-water mark")
	)
	flag.Parse()

	var hw *heapWatch
	if *memstats {
		hw = startHeapWatch()
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}

	if *oocore {
		if !strings.HasSuffix(*graphPath, ".sbin") {
			fatal(fmt.Errorf("-oocore solves from a sharded binary; pass -graph FILE.sbin (gengraph -stream writes one)"))
		}
		if *seq || *showLevels {
			fatal(fmt.Errorf("-seq and -levels need the whole graph in RAM; drop them with -oocore"))
		}
	}

	tIngest := time.Now()
	var (
		g     *graph.Graph
		truth graph.Membership
		s     *graph.Sharded
		sc    io.Closer
		err   error
	)
	if *oocore {
		s, sc, err = graph.OpenShardedFile(*graphPath)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("graph: %d vertices, %d edges, %d shards (out of core)\n",
			s.NumVertices(), s.NumArcs()/2, s.NumShards())
	} else {
		g, truth, err = loadGraph(*graphPath, *genSpec, *workers)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("graph: %d vertices, %d edges, max degree %d\n",
			g.NumVertices(), g.NumEdges(), g.MaxDegree())
	}
	ingestTime := time.Since(tIngest)

	if *events {
		trace.SetEventOutput(os.Stderr)
	}

	opt := core.Options{
		P: *p, DHigh: *dhigh, TrackTrace: *showTrace, Resolution: *gamma,
		TrackLevels: *showLevels, Workers: *workers, CommDeadline: *commDL,
		RebalanceRatio: *rebRatio, RebalancePolicy: *rebPolicy,
		RebalanceHysteresis: *rebHyst, RebalanceCooldown: *rebCool, RebalanceSeed: *rebSeed,
	}
	switch *heuristic {
	case "enhanced":
		opt.Heuristic = core.HeuristicEnhanced
	case "simple":
		opt.Heuristic = core.HeuristicSimple
	case "strict":
		opt.Heuristic = core.HeuristicStrict
	default:
		fatal(fmt.Errorf("unknown heuristic %q", *heuristic))
	}
	switch *partitioner {
	case "delegate":
		opt.Partitioning = partition.Delegate
	case "1d":
		opt.Partitioning = partition.OneD
	default:
		fatal(fmt.Errorf("unknown partitioning %q", *partitioner))
	}

	var res *core.Result
	if *oocore {
		if opt.DHigh <= 0 {
			opt.DHigh = core.DefaultDHigh(opt.P, s.NumVertices(), s.NumArcs())
		}
		tPart := time.Now()
		layout, berr := partition.BuildStreaming(s, partition.Options{
			P: opt.P, Kind: opt.Partitioning, DHigh: opt.DHigh, Workers: opt.Workers,
		})
		if berr != nil {
			fatal(berr)
		}
		partTime := time.Since(tPart)
		if err := sc.Close(); err != nil {
			fatal(err)
		}
		res, err = core.RunLayout(layout, opt)
		if err != nil {
			fatal(err)
		}
		res.PartitionTime = partTime
	} else {
		res, err = core.Run(g, opt)
		if err != nil {
			fatal(err)
		}
	}
	fmt.Printf("modularity: %.6f (%d communities)\n", res.Modularity, res.Membership.NumCommunities())
	fmt.Printf("hubs: %d  stage1 iters: %d  outer levels: %d\n",
		res.HubCount, res.Stage1Iters, res.OuterLevels)
	fmt.Printf("times: ingest %v, partition %v, stage1 %v, stage2 %v, total wall %v\n",
		ingestTime, res.PartitionTime, res.Stage1Time, res.Stage2Time, res.TotalTime)
	fmt.Printf("simulated parallel clustering time: %v (stage1 %v + stage2 %v)\n",
		res.Stage1Sim+res.Stage2Sim, res.Stage1Sim, res.Stage2Sim)
	fmt.Printf("partition census: W=%.4f, max ghosts=%d\n",
		res.Census.ImbalanceW(), res.Census.MaxGhosts())
	fmt.Printf("load: balance=%.3f (work max/mean), rebalance events=%d, migrated vertices=%d\n",
		res.BalanceRatio, res.RebalanceEvents, res.MigratedVertices)
	fmt.Printf("communication: %d bytes total, %d bytes max per rank\n",
		res.CommStats.TotalBytesSent(), res.CommStats.MaxBytesSent())

	if *breakdown {
		fmt.Printf("pipeline breakdown: ingest %v, partition %v, stage1 %v, stage2 %v\n",
			ingestTime, res.PartitionTime, res.Stage1Time, res.Stage2Time)
		fmt.Printf("stage-1 breakdown (rank 0): %s over %d iterations, balance=%.3f\n",
			res.Breakdown.String(), res.Breakdown.Iters, res.BalanceRatio)
	}
	if *showLevels {
		fmt.Println("dendrogram:")
		for l, m := range res.LevelMemberships {
			fmt.Printf("  level %d: %d communities, Q=%.4f\n",
				l+1, m.NumCommunities(), graph.Modularity(g, m))
		}
	}
	if *showTrace {
		fmt.Print("modularity trace:")
		for _, q := range res.QTrace {
			fmt.Printf(" %.4f", q)
		}
		fmt.Println()
	}
	if truth != nil {
		s, err := quality.Compare(res.Membership, truth)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("quality vs planted truth: NMI=%.4f F=%.4f NVD=%.4f RI=%.4f ARI=%.4f JI=%.4f\n",
			s.NMI, s.FMeasure, s.NVD, s.RI, s.ARI, s.JI)
	}
	if *seq {
		runSequential(g, res)
	}
	if *outPath != "" {
		if err := writeMembership(*outPath, res.Membership); err != nil {
			fatal(err)
		}
		fmt.Printf("membership written to %s\n", *outPath)
	}
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		runtime.GC() // settle the heap so the profile shows retained memory
		if err := pprof.WriteHeapProfile(f); err != nil {
			fatal(err)
		}
		fmt.Printf("heap profile written to %s\n", *memProfile)
	}
	if hw != nil {
		fmt.Printf("heap high-water: %.1f MB\n", float64(hw.Stop())/(1<<20))
	}
}

func runSequential(g *graph.Graph, dist *core.Result) {
	t0 := time.Now()
	seq := louvain.Run(g, louvain.Options{})
	fmt.Printf("sequential baseline: Q=%.6f (%d communities) in %v — parallel ΔQ %+.4f\n",
		seq.Modularity, seq.Membership.NumCommunities(), time.Since(t0),
		dist.Modularity-seq.Modularity)
}

func loadGraph(path, spec string, workers int) (*graph.Graph, graph.Membership, error) {
	switch {
	case path != "" && spec != "":
		return nil, nil, fmt.Errorf("pass either -graph or -gen, not both")
	case path != "":
		f, err := os.Open(path)
		if err != nil {
			return nil, nil, err
		}
		defer f.Close()
		var g *graph.Graph
		switch {
		case strings.HasSuffix(path, ".sbin"):
			g, err = graph.ReadBinarySharded(f, workers)
		case strings.HasSuffix(path, ".bin"):
			g, err = graph.ReadBinary(f)
		case strings.HasSuffix(path, ".metis"):
			g, err = graph.ReadMETIS(f)
		default:
			g, err = graph.ReadEdgeListParallel(f, workers)
		}
		return g, nil, err
	case spec != "":
		return gen.ParseSpec(spec)
	default:
		return nil, nil, fmt.Errorf("pass -graph FILE or -gen SPEC (try -gen lfr:n=5000,mu=0.3)")
	}
}

func writeMembership(path string, m graph.Membership) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	for v, c := range m {
		if _, err := fmt.Fprintf(f, "%d %d\n", v, c); err != nil {
			return err
		}
	}
	return f.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dlouvain:", err)
	os.Exit(1)
}
