package main

import (
	"runtime"
	"sync/atomic"
	"time"
)

// heapWatch samples runtime.MemStats in the background and keeps the
// highest HeapInuse seen — the number the out-of-core memory guard in
// scripts/check.sh compares against its committed budget. Sampling every
// 20ms bounds the stop-the-world cost while still catching the ingest and
// partition peaks, which last much longer than one interval.
type heapWatch struct {
	stop chan struct{}
	done chan struct{}
	high atomic.Uint64
}

func startHeapWatch() *heapWatch {
	w := &heapWatch{stop: make(chan struct{}), done: make(chan struct{})}
	go func() {
		defer close(w.done)
		tick := time.NewTicker(20 * time.Millisecond)
		defer tick.Stop()
		var ms runtime.MemStats
		for {
			runtime.ReadMemStats(&ms)
			if ms.HeapInuse > w.high.Load() {
				w.high.Store(ms.HeapInuse)
			}
			select {
			case <-w.stop:
				return
			case <-tick.C:
			}
		}
	}()
	return w
}

// Stop takes a final sample and returns the high-water HeapInuse in bytes.
func (w *heapWatch) Stop() uint64 {
	close(w.stop)
	<-w.done
	return w.high.Load()
}
