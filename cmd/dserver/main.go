// Command dserver hosts a resident clustering service: it ingests a graph,
// partitions and solves it once, then keeps the world of ranks alive to
// answer queries and absorb edge updates through incremental re-clustering
// (docs/SERVING.md).
//
// Usage:
//
//	dserver -gen caveman:cliques=50,size=10 -p 4
//	dserver -graph web.bin -p 8 -listen :7600 -auto-resolve
//	echo "community 17" | dserver -graph web.txt -p 4
//
// With no -listen the protocol runs over stdin/stdout, one request per
// line; with -listen the same protocol is served to every TCP connection.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/dserver"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/partition"
)

func main() {
	var (
		graphPath   = flag.String("graph", "", "path to an edge-list (.txt), binary (.bin), or sharded binary (.sbin) graph file")
		genSpec     = flag.String("gen", "", "generator spec, e.g. caveman:cliques=50,size=10 (see internal/gen.ParseSpec)")
		p           = flag.Int("p", 4, "number of resident ranks")
		dhigh       = flag.Int("dhigh", 0, "hub degree threshold (0 = automatic)")
		heuristic   = flag.String("heuristic", "enhanced", "convergence heuristic: enhanced|simple|strict")
		partitioner = flag.String("partitioning", "delegate", "partitioning: delegate|1d")
		workers     = flag.Int("workers", 0, "intra-rank workers for the parallel kernels (0 = GOMAXPROCS/p)")
		listen      = flag.String("listen", "", "serve the line protocol on this TCP address instead of stdin/stdout")
		autoResolve = flag.Bool("auto-resolve", false, "run the full-solve fallback inside the update call when drift crosses a threshold")
		driftQ      = flag.Float64("drift-q", 0, "cumulative |ΔQ| that forces the full-solve fallback (0 = default 0.05)")
		driftTouch  = flag.Float64("drift-touched", 0, "cumulative touched-vertex fraction that forces the fallback (0 = default 0.35)")
		khops       = flag.Int("khops", 0, "incremental sweep seeds vertices within k hops of changed edges (0 = default 2)")
	)
	flag.Parse()

	g, err := loadGraph(*graphPath, *genSpec, *workers)
	if err != nil {
		fatal(err)
	}
	opt := dserver.Options{
		P:           *p,
		AutoResolve: *autoResolve,
		Core: core.Options{
			DHigh: *dhigh, Workers: *workers,
			DriftQ: *driftQ, DriftTouched: *driftTouch, UpdateKHops: *khops,
		},
	}
	switch *heuristic {
	case "enhanced":
		opt.Core.Heuristic = core.HeuristicEnhanced
	case "simple":
		opt.Core.Heuristic = core.HeuristicSimple
	case "strict":
		opt.Core.Heuristic = core.HeuristicStrict
	default:
		fatal(fmt.Errorf("unknown heuristic %q", *heuristic))
	}
	switch *partitioner {
	case "delegate":
		opt.Core.Partitioning = partition.Delegate
	case "1d":
		opt.Core.Partitioning = partition.OneD
	default:
		fatal(fmt.Errorf("unknown partitioning %q", *partitioner))
	}

	t0 := time.Now()
	w, err := dserver.New(g, opt)
	if err != nil {
		fatal(err)
	}
	defer w.Close()
	fmt.Fprintf(os.Stderr, "dserver: %d vertices, %d edges solved on %d ranks in %v (Q=%.6f), serving\n",
		g.NumVertices(), g.NumEdges(), w.P(), time.Since(t0), w.Stats().Modularity)

	if *listen == "" {
		if err := w.Serve(os.Stdin, os.Stdout); err != nil {
			fatal(err)
		}
		return
	}
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fatal(err)
	}
	defer ln.Close()
	fmt.Fprintf(os.Stderr, "dserver: listening on %s\n", ln.Addr())
	for {
		conn, err := ln.Accept()
		if err != nil {
			fatal(err)
		}
		go func() {
			defer conn.Close()
			// The world serializes requests internally, so concurrent
			// connections are safe; errors here are connection-local.
			if err := w.Serve(conn, conn); err != nil {
				fmt.Fprintf(os.Stderr, "dserver: %v: %v\n", conn.RemoteAddr(), err)
			}
		}()
	}
}

func loadGraph(path, spec string, workers int) (*graph.Graph, error) {
	switch {
	case path != "" && spec != "":
		return nil, fmt.Errorf("pass either -graph or -gen, not both")
	case path != "":
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		switch {
		case strings.HasSuffix(path, ".sbin"):
			return graph.ReadBinarySharded(f, workers)
		case strings.HasSuffix(path, ".bin"):
			return graph.ReadBinary(f)
		case strings.HasSuffix(path, ".metis"):
			return graph.ReadMETIS(f)
		default:
			return graph.ReadEdgeListParallel(f, workers)
		}
	case spec != "":
		g, _, err := gen.ParseSpec(spec)
		return g, err
	default:
		return nil, fmt.Errorf("pass -graph FILE or -gen SPEC (try -gen caveman:cliques=50,size=10)")
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dserver:", err)
	os.Exit(1)
}
