// Command experiments regenerates the paper's evaluation: every table and
// figure of Section V, printed as aligned text tables (see EXPERIMENTS.md
// for the mapping and the recorded results).
//
// Usage:
//
//	experiments                  # run everything, full profile
//	experiments -quick           # fast profile (small stand-ins, small p)
//	experiments -only fig6,fig9  # a subset
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/expt"
)

func main() {
	var (
		quick  = flag.Bool("quick", false, "use the fast profile (small graphs, small processor counts)")
		only   = flag.String("only", "", "comma-separated experiments to run (default all): "+strings.Join(expt.Names, ","))
		csvDir = flag.String("csv", "", "also write each table as a CSV file into this directory")
	)
	flag.Parse()

	profile := expt.Full()
	if *quick {
		profile = expt.Quick()
	}
	names := expt.Names
	if *only != "" {
		names = strings.Split(*only, ",")
	}
	for _, name := range names {
		name = strings.TrimSpace(name)
		t0 := time.Now()
		tables, err := expt.Tables(name, profile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		for i, tbl := range tables {
			tbl.Fprint(os.Stdout)
			if *csvDir != "" {
				if err := writeCSV(*csvDir, name, i, tbl); err != nil {
					fmt.Fprintln(os.Stderr, "experiments:", err)
					os.Exit(1)
				}
			}
		}
		fmt.Printf("[%s completed in %v]\n\n", name, time.Since(t0).Round(time.Millisecond))
	}
}

// writeCSV stores one table as <dir>/<experiment>[-<index>].csv.
func writeCSV(dir, name string, idx int, tbl *expt.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	file := name
	if idx > 0 {
		file = fmt.Sprintf("%s-%d", name, idx)
	}
	f, err := os.Create(filepath.Join(dir, file+".csv"))
	if err != nil {
		return err
	}
	if err := tbl.WriteCSV(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
