// Command gengraph generates a synthetic graph from a generator spec and
// writes it to a file, optionally with its planted ground-truth membership.
//
// Usage:
//
//	gengraph -gen rmat:scale=14,ef=16,seed=1 -o web.txt
//	gengraph -gen lfr:n=10000,mu=0.3 -o social.bin -truth social.communities
//	gengraph -gen rmat:scale=20 -o web.sbin -shards 16
//	gengraph -gen rmat:scale=14 -skew 0.7 -o skewed.txt
//	gengraph -gen rmat:scale=26 -o huge.sbin -shards 256 -stream
//
// -stream generates rmat directly into a sharded binary in bounded memory
// (one shard's arcs at a time), bit-identical to the in-RAM path; it
// requires an rmat spec and a .sbin output.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/gen"
	"repro/internal/graph"
)

func main() {
	var (
		spec      = flag.String("gen", "", "generator spec (see internal/gen.ParseSpec)")
		outPath   = flag.String("o", "", "output path (.bin = binary, .sbin = sharded binary, .metis = METIS, otherwise edge list)")
		truthPath = flag.String("truth", "", "write the planted membership here (LFR/SBM/caveman only)")
		shards    = flag.Int("shards", 16, "shard count for .sbin output (readers decode shards concurrently)")
		skew      = flag.Float64("skew", 0, "rmat only: quadrant skew in (0,1); 0.57 = Graph500 defaults (see gen.SetSkew)")
		stream    = flag.Bool("stream", false, "rmat + .sbin only: generate out of core, holding one shard's arcs at a time")
	)
	flag.Parse()
	if *spec == "" || *outPath == "" {
		fmt.Fprintln(os.Stderr, "gengraph: -gen SPEC and -o FILE are required")
		os.Exit(2)
	}
	genSpec := *spec
	if *skew != 0 {
		if !strings.HasPrefix(genSpec, "rmat") {
			fatal(fmt.Errorf("-skew applies only to rmat specs, got %q", genSpec))
		}
		sep := ","
		if !strings.Contains(genSpec, ":") {
			sep = ":"
		}
		genSpec = fmt.Sprintf("%s%sskew=%g", genSpec, sep, *skew)
	}
	if *stream {
		if !strings.HasSuffix(*outPath, ".sbin") {
			fatal(fmt.Errorf("-stream writes sharded binaries; output %q must end in .sbin", *outPath))
		}
		cfg, err := gen.ParseRMATSpec(genSpec)
		if err != nil {
			fatal(err)
		}
		if *truthPath != "" {
			fatal(fmt.Errorf("generator %q has no planted ground truth", *spec))
		}
		sg, err := gen.StreamRMAT(cfg, *outPath, *shards)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s: %d vertices, %d edges (%d shards, streamed)\n",
			*outPath, sg.Vertices, sg.Arcs/2, sg.Shards)
		return
	}

	g, truth, err := gen.ParseSpec(genSpec)
	if err != nil {
		fatal(err)
	}
	f, err := os.Create(*outPath)
	if err != nil {
		fatal(err)
	}
	switch {
	case strings.HasSuffix(*outPath, ".sbin"):
		// v2 run-codes the weights (falling back to v1 past 255 distinct
		// values); every reader negotiates the version by magic.
		err = graph.WriteBinaryShardedV2(f, g, *shards)
	case strings.HasSuffix(*outPath, ".bin"):
		err = graph.WriteBinary(f, g)
	case strings.HasSuffix(*outPath, ".metis"):
		err = graph.WriteMETIS(f, g)
	default:
		err = graph.WriteEdgeList(f, g)
	}
	if err2 := f.Close(); err == nil {
		err = err2
	}
	if err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s: %d vertices, %d edges\n", *outPath, g.NumVertices(), g.NumEdges())

	if *truthPath != "" {
		if truth == nil {
			fatal(fmt.Errorf("generator %q has no planted ground truth", *spec))
		}
		tf, err := os.Create(*truthPath)
		if err != nil {
			fatal(err)
		}
		for v, c := range truth {
			fmt.Fprintf(tf, "%d %d\n", v, c)
		}
		if err := tf.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s: %d communities\n", *truthPath, truth.NumCommunities())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gengraph:", err)
	os.Exit(1)
}
