// Command lint runs the project's static-analysis suite (internal/analysis)
// over the module. It is one of the three entry points that gate the SPMD
// correctness rules — the others are TestLintClean (plain `go test ./...`)
// and scripts/check.sh (build + vet + lint + race + fuzz).
//
// Usage:
//
//	go run ./cmd/lint ./...           # whole module
//	go run ./cmd/lint ./internal/comm ./cmd/worker
//	go run ./cmd/lint -doc            # describe the analyzers
//
// Exit status: 0 clean, 1 findings, 2 operational error. Findings are
// printed one per line as file:line:col: [analyzer] message; a finding can
// be waived in source with `//lint:ignore <analyzer> <reason>` on or above
// the offending line (see docs/STATIC_ANALYSIS.md).
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/analysis"
)

func main() {
	doc := flag.Bool("doc", false, "print the analyzer catalogue and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: lint [-doc] [package-dir|./...]...\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *doc {
		for _, a := range analysis.All() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	root, err := analysis.FindModuleRoot(cwd)
	if err != nil {
		fatal(err)
	}
	loader, err := analysis.NewLoader(root)
	if err != nil {
		fatal(err)
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	var pkgs []*analysis.Package
	for _, pat := range patterns {
		switch pat {
		case "./...", "...", "all":
			all, err := loader.LoadAll()
			if err != nil {
				fatal(err)
			}
			pkgs = append(pkgs, all...)
		default:
			pkg, err := loader.LoadDir(pat)
			if err != nil {
				fatal(err)
			}
			pkgs = append(pkgs, pkg)
		}
	}

	findings := analysis.Run(pkgs, analysis.All())
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "lint: %d finding(s) in %d package(s)\n", len(findings), len(pkgs))
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lint:", err)
	os.Exit(2)
}
