// Command lint runs the project's static-analysis suite (internal/analysis)
// over the module. It is one of the three entry points that gate the SPMD
// correctness rules — the others are TestLintClean (plain `go test ./...`)
// and scripts/check.sh (build + vet + lint + race + fuzz).
//
// Usage:
//
//	go run ./cmd/lint ./...           # whole module
//	go run ./cmd/lint ./internal/comm ./cmd/worker
//	go run ./cmd/lint -json ./...     # one JSON object per finding
//	go run ./cmd/lint -doc            # describe the analyzers
//
// Exit status: 0 clean, 1 findings, 2 operational error. Findings are
// printed one per line as file:line:col: [analyzer] message, or as JSON
// objects {"file","line","col","analyzer","message"} under -json (for
// editor and CI integration); a finding can be waived in source with
// `//lint:ignore <analyzer> <reason>` on or above the offending line (see
// docs/STATIC_ANALYSIS.md). A waiver that no longer waives anything is
// itself a finding.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/analysis"
)

// jsonFinding is the -json wire form of one finding.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// run is the testable body of the command: args are the raw command-line
// arguments (flags included, program name excluded), output goes to the
// given writers, and the return value is the process exit code — 0 clean,
// 1 findings, 2 operational error (bad flag, unloadable package).
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	doc := fs.Bool("doc", false, "print the analyzer catalogue and exit")
	asJSON := fs.Bool("json", false, "emit findings as JSON objects, one per line")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: lint [-doc] [-json] [package-dir|./...]...\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *doc {
		for _, a := range analysis.All() {
			fmt.Fprintf(stdout, "%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	cwd, err := os.Getwd()
	if err != nil {
		return operr(stderr, err)
	}
	root, err := analysis.FindModuleRoot(cwd)
	if err != nil {
		return operr(stderr, err)
	}
	loader, err := analysis.NewLoader(root)
	if err != nil {
		return operr(stderr, err)
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	var pkgs []*analysis.Package
	for _, pat := range patterns {
		switch pat {
		case "./...", "...", "all":
			all, err := loader.LoadAll()
			if err != nil {
				return operr(stderr, err)
			}
			pkgs = append(pkgs, all...)
		default:
			pkg, err := loader.LoadDir(pat)
			if err != nil {
				return operr(stderr, err)
			}
			pkgs = append(pkgs, pkg)
		}
	}

	findings := analysis.Run(pkgs, analysis.All())
	if *asJSON {
		enc := json.NewEncoder(stdout)
		for _, f := range findings {
			if err := enc.Encode(jsonFinding{
				File:     f.Pos.Filename,
				Line:     f.Pos.Line,
				Col:      f.Pos.Column,
				Analyzer: f.Analyzer,
				Message:  f.Message,
			}); err != nil {
				return operr(stderr, err)
			}
		}
	} else {
		for _, f := range findings {
			fmt.Fprintln(stdout, f)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "lint: %d finding(s) in %d package(s)\n", len(findings), len(pkgs))
		return 1
	}
	return 0
}

// operr reports an operational error and returns the exit code for it.
func operr(stderr io.Writer, err error) int {
	fmt.Fprintln(stderr, "lint:", err)
	return 2
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}
