package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"
)

// badFixture is a package that carries known findings (the noprint
// negative fixture of the analysis package).
var badFixture = filepath.Join("..", "..", "internal", "analysis", "testdata", "src", "badprint")

// TestExitCodes pins the command's contract: 0 clean, 1 findings, 2
// operational error.
func TestExitCodes(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want int
	}{
		{"clean", []string{"."}, 0},
		{"findings", []string{badFixture}, 1},
		{"load-error", []string{filepath.Join("testdata", "no-such-dir")}, 2},
		{"bad-flag", []string{"-no-such-flag"}, 2},
		{"doc", []string{"-doc"}, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			if got := run(tc.args, &stdout, &stderr); got != tc.want {
				t.Fatalf("run(%v) = %d, want %d\nstdout: %s\nstderr: %s",
					tc.args, got, tc.want, stdout.String(), stderr.String())
			}
		})
	}
}

// TestJSONOutput checks that -json emits one parseable object per finding,
// with the fields CI consumers key on, and that the same invocation still
// exits 1.
func TestJSONOutput(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if got := run([]string{"-json", badFixture}, &stdout, &stderr); got != 1 {
		t.Fatalf("run -json on fixture = %d, want 1\nstderr: %s", got, stderr.String())
	}
	n := 0
	sc := bufio.NewScanner(bytes.NewReader(stdout.Bytes()))
	for sc.Scan() {
		var f struct {
			File     string `json:"file"`
			Line     int    `json:"line"`
			Col      int    `json:"col"`
			Analyzer string `json:"analyzer"`
			Message  string `json:"message"`
		}
		if err := json.Unmarshal(sc.Bytes(), &f); err != nil {
			t.Fatalf("line %d is not a JSON finding: %v\n%s", n+1, err, sc.Text())
		}
		if f.File == "" || f.Line == 0 || f.Analyzer == "" || f.Message == "" {
			t.Errorf("finding %d missing fields: %+v", n+1, f)
		}
		if !strings.HasSuffix(filepath.Base(f.File), ".go") {
			t.Errorf("finding %d file is not a Go file: %q", n+1, f.File)
		}
		n++
	}
	if n == 0 {
		t.Fatal("no JSON findings emitted for a fixture with known violations")
	}
}

// TestCleanProducesNoOutput checks the quiet-on-success contract scripts
// rely on.
func TestCleanProducesNoOutput(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if got := run([]string{"."}, &stdout, &stderr); got != 0 {
		t.Fatalf("run on clean package = %d, want 0\nstderr: %s", got, stderr.String())
	}
	if stdout.Len() != 0 {
		t.Errorf("clean run wrote to stdout: %s", stdout.String())
	}
}
