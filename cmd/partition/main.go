// Command partition analyzes graph partitionings without running any
// clustering: per-rank edge and ghost distributions, the workload imbalance
// W = max/avg − 1, and hub statistics, for 1D and delegate partitioning
// across a sweep of processor counts (the paper's Figure 6 as a tool).
//
//	partition -gen rmat:scale=14 -procs 256,1024,4096
//	partition -graph web.txt -procs 64 -dhigh 128
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/partition"
)

func main() {
	var (
		graphPath = flag.String("graph", "", "path to a graph file (.txt edge list, .bin, .sbin, or .metis)")
		genSpec   = flag.String("gen", "", "generator spec (see internal/gen.ParseSpec)")
		procsArg  = flag.String("procs", "64,256,1024", "comma-separated processor counts")
		dhigh     = flag.Int("dhigh", 0, "hub degree threshold (0 = 2× average degree)")
		workers   = flag.Int("workers", 0, "workers for parallel ingest and partitioning (0 = automatic, 1 = serial; results are identical)")
		oocore    = flag.Bool("oocore", false, "partition from a .sbin file's shard windows without decoding the whole graph (requires -graph FILE.sbin)")
	)
	flag.Parse()

	var (
		g   *graph.Graph
		s   *graph.Sharded
		err error
	)
	var n int
	var arcs int64
	if *oocore {
		if !strings.HasSuffix(*graphPath, ".sbin") {
			fatal(fmt.Errorf("-oocore reads a sharded binary; pass -graph FILE.sbin"))
		}
		var sc io.Closer
		s, sc, err = graph.OpenShardedFile(*graphPath)
		if err != nil {
			fatal(err)
		}
		defer sc.Close()
		n, arcs = s.NumVertices(), s.NumArcs()
		fmt.Printf("graph: %d vertices, %d edges, %d shards, avg degree %.1f (out of core)\n\n",
			n, arcs/2, s.NumShards(), float64(arcs)/float64(n))
	} else {
		g, err = loadGraph(*graphPath, *genSpec, *workers)
		if err != nil {
			fatal(err)
		}
		n, arcs = g.NumVertices(), g.NumArcs()
		fmt.Printf("graph: %d vertices, %d edges, max degree %d, avg degree %.1f\n\n",
			g.NumVertices(), g.NumEdges(), g.MaxDegree(),
			float64(arcs)/float64(n))
	}

	threshold := *dhigh
	if threshold <= 0 {
		threshold = 2 * int(arcs) / n
	}

	var procs []int
	for _, s := range strings.Split(*procsArg, ",") {
		p, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || p < 1 {
			fatal(fmt.Errorf("bad processor count %q", s))
		}
		procs = append(procs, p)
	}

	fmt.Printf("%-6s %-9s %10s %10s %10s %8s %10s %6s\n",
		"p", "kind", "min edges", "med edges", "max edges", "W", "max ghosts", "hubs")
	for _, p := range procs {
		for _, kind := range []partition.Kind{partition.OneD, partition.Delegate} {
			opt := partition.Options{P: p, Kind: kind, DHigh: threshold, Workers: *workers}
			var l *partition.Layout
			var err error
			if *oocore {
				l, err = partition.BuildStreaming(s, opt)
			} else {
				l, err = partition.Build(g, opt)
			}
			if err != nil {
				fatal(err)
			}
			c := l.Census()
			arcs := append([]int64(nil), c.ArcsPerRank...)
			sort.Slice(arcs, func(i, j int) bool { return arcs[i] < arcs[j] })
			fmt.Printf("%-6d %-9s %10d %10d %10d %8.3f %10d %6d\n",
				p, kind, arcs[0], arcs[len(arcs)/2], arcs[len(arcs)-1],
				c.ImbalanceW(), c.MaxGhosts(), c.HubCount)
		}
	}
}

func loadGraph(path, spec string, workers int) (*graph.Graph, error) {
	switch {
	case path != "" && spec != "":
		return nil, fmt.Errorf("pass either -graph or -gen, not both")
	case path != "":
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		switch {
		case strings.HasSuffix(path, ".sbin"):
			return graph.ReadBinarySharded(f, workers)
		case strings.HasSuffix(path, ".bin"):
			return graph.ReadBinary(f)
		case strings.HasSuffix(path, ".metis"):
			return graph.ReadMETIS(f)
		default:
			return graph.ReadEdgeListParallel(f, workers)
		}
	case spec != "":
		g, _, err := gen.ParseSpec(spec)
		return g, err
	default:
		return nil, fmt.Errorf("pass -graph FILE or -gen SPEC")
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "partition:", err)
	os.Exit(1)
}
