// Command quality compares two membership files (as written by
// cmd/dlouvain -o and cmd/gengraph -truth) with the paper's Table II
// measures.
//
//	quality -a detected.communities -b truth.communities
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"repro/internal/graph"
	"repro/internal/quality"
)

func main() {
	var (
		aPath = flag.String("a", "", "first membership file (vertex community per line)")
		bPath = flag.String("b", "", "second membership file (typically the ground truth)")
	)
	flag.Parse()
	if *aPath == "" || *bPath == "" {
		fmt.Fprintln(os.Stderr, "quality: -a FILE and -b FILE are required")
		os.Exit(2)
	}
	a, err := readMembership(*aPath)
	if err != nil {
		fatal(err)
	}
	b, err := readMembership(*bPath)
	if err != nil {
		fatal(err)
	}
	s, err := quality.Compare(a, b)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("vertices: %d   communities: %d vs %d\n",
		len(a), a.NumCommunities(), b.NumCommunities())
	fmt.Printf("NMI       %.4f\n", s.NMI)
	fmt.Printf("F-measure %.4f\n", s.FMeasure)
	fmt.Printf("NVD       %.4f (distance: lower is better)\n", s.NVD)
	fmt.Printf("RI        %.4f\n", s.RI)
	fmt.Printf("ARI       %.4f\n", s.ARI)
	fmt.Printf("JI        %.4f\n", s.JI)
	v, err := quality.VMeasure(a, b)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("homogeneity %.4f  completeness %.4f  V %.4f\n",
		v.Homogeneity, v.Completeness, v.V)
}

// readMembership parses "vertex community" lines into a dense membership.
func readMembership(path string) (graph.Membership, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	labels := map[int]int{}
	maxV := -1
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		var v, c int
		text := sc.Text()
		if text == "" {
			continue
		}
		if _, err := fmt.Sscanf(text, "%d %d", &v, &c); err != nil {
			return nil, fmt.Errorf("%s:%d: %v", path, line, err)
		}
		if v < 0 {
			return nil, fmt.Errorf("%s:%d: negative vertex %d", path, line, v)
		}
		labels[v] = c
		if v > maxV {
			maxV = v
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	m := make(graph.Membership, maxV+1)
	for v := range m {
		c, ok := labels[v]
		if !ok {
			return nil, fmt.Errorf("%s: vertex %d missing", path, v)
		}
		m[v] = c
	}
	return m, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "quality:", err)
	os.Exit(1)
}
