package main

import (
	"os"
	"path/filepath"
	"testing"
)

func writeFile(t *testing.T, dir, name, content string) string {
	t.Helper()
	p := filepath.Join(dir, name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestReadMembership(t *testing.T) {
	dir := t.TempDir()
	p := writeFile(t, dir, "m.txt", "0 5\n1 5\n2 7\n")
	m, err := readMembership(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != 3 || m[0] != 5 || m[2] != 7 {
		t.Errorf("m = %v", m)
	}
}

func TestReadMembershipErrors(t *testing.T) {
	dir := t.TempDir()
	for name, content := range map[string]string{
		"gap.txt": "0 1\n2 1\n", // vertex 1 missing
		"neg.txt": "-1 0\n",
		"bad.txt": "x y\n",
	} {
		p := writeFile(t, dir, name, content)
		if _, err := readMembership(p); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
	if _, err := readMembership(filepath.Join(dir, "missing.txt")); err == nil {
		t.Error("expected error for missing file")
	}
}
