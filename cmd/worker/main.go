// Command worker is one rank of a truly distributed (multi-process) run
// over the TCP transport. Start one worker per rank with the same graph
// input and the full address list; rank 0 gathers and reports the result.
//
// Example (3 ranks on one machine):
//
//	ADDRS=127.0.0.1:9000,127.0.0.1:9001,127.0.0.1:9002
//	worker -rank 0 -addrs $ADDRS -gen lfr:n=5000,mu=0.3 &
//	worker -rank 1 -addrs $ADDRS -gen lfr:n=5000,mu=0.3 &
//	worker -rank 2 -addrs $ADDRS -gen lfr:n=5000,mu=0.3
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/wire"
)

func main() {
	var (
		rank      = flag.Int("rank", -1, "this worker's rank")
		addrList  = flag.String("addrs", "", "comma-separated listen addresses, one per rank")
		graphPath = flag.String("graph", "", "path to a graph file (.txt/.bin/.sbin; all workers must use the same input)")
		genSpec   = flag.String("gen", "", "generator spec (all workers must use the same spec)")
		oocore    = flag.Bool("oocore", false, "partition and solve out of core from a .sbin file's shard windows (all workers must pass it)")
		heuristic   = flag.String("heuristic", "enhanced", "convergence heuristic: enhanced|simple|strict")
		workers     = flag.Int("workers", 0, "intra-rank workers for ingest and the parallel kernels (0 = automatic, 1 = serial; results are identical)")
		partitioner = flag.String("partitioning", "delegate", "partitioning: delegate|1d (all workers must agree)")

		// Mid-solve load rebalancing (docs/PERFORMANCE.md); all workers must
		// pass identical values — the plan is computed independently on every
		// rank from replicated inputs, so divergent knobs diverge the worlds.
		rebRatio  = flag.Float64("rebalance", 0, "work-imbalance threshold θ > 1 that triggers vertex migration; 0 = off")
		rebPolicy = flag.String("rebalance-policy", "", "migration policy: greedy|ideal|none (default greedy)")
		rebHyst   = flag.Int("rebalance-hysteresis", 0, "consecutive over-threshold iterations before migrating (0 = default)")
		rebCool   = flag.Int("rebalance-cooldown", 0, "minimum iterations between migration events (0 = default)")
		rebSeed   = flag.Int64("rebalance-seed", 0, "seed passed to the migration policy (0 = default)")

		// Robustness knobs (docs/ROBUSTNESS.md). Workers of one world are
		// rarely started simultaneously, so dials retry with backoff until
		// -dial-total; once the world is up, -comm-deadline bounds every
		// receive so a dead peer fails the run instead of hanging it.
		dialTotal    = flag.Duration("dial-total", 30*time.Second, "total budget for dialing the other workers (retries with backoff)")
		dialBase     = flag.Duration("dial-base", 50*time.Millisecond, "initial dial retry backoff")
		commDeadline = flag.Duration("comm-deadline", 0, "per-receive deadline; 0 blocks forever (e.g. 30s)")
	)
	flag.Parse()

	addrs := strings.Split(*addrList, ",")
	if *rank < 0 || *rank >= len(addrs) {
		fatal(fmt.Errorf("-rank %d out of range for %d addresses", *rank, len(addrs)))
	}
	tIngest := time.Now()
	var (
		g   *graph.Graph
		s   *graph.Sharded
		sc  io.Closer
		err error
	)
	if *oocore {
		if !strings.HasSuffix(*graphPath, ".sbin") {
			fatal(fmt.Errorf("-oocore solves from a sharded binary; pass -graph FILE.sbin"))
		}
		s, sc, err = graph.OpenShardedFile(*graphPath)
	} else {
		g, _, err = loadGraph(*graphPath, *genSpec, *workers)
	}
	if err != nil {
		fatal(err)
	}
	ingestTime := time.Since(tIngest)

	ep, err := comm.DialTCPWorldConfig(*rank, addrs, comm.DialOptions{
		Backoff: comm.Backoff{Base: *dialBase, Total: *dialTotal},
	})
	if err != nil {
		fatal(err)
	}
	defer ep.Close()

	opt := core.Options{
		P: len(addrs), CommDeadline: *commDeadline, Workers: *workers,
		RebalanceRatio: *rebRatio, RebalancePolicy: *rebPolicy,
		RebalanceHysteresis: *rebHyst, RebalanceCooldown: *rebCool, RebalanceSeed: *rebSeed,
	}
	switch *partitioner {
	case "delegate":
		opt.Partitioning = partition.Delegate
	case "1d":
		opt.Partitioning = partition.OneD
	default:
		fatal(fmt.Errorf("unknown partitioning %q", *partitioner))
	}
	switch *heuristic {
	case "enhanced":
		opt.Heuristic = core.HeuristicEnhanced
	case "simple":
		opt.Heuristic = core.HeuristicSimple
	case "strict":
		opt.Heuristic = core.HeuristicStrict
	default:
		fatal(fmt.Errorf("unknown heuristic %q", *heuristic))
	}

	var res *core.RankResult
	if *oocore {
		// Every worker derives the same threshold and runs the same
		// deterministic streaming build, then keeps only its own part — no
		// rank ever holds the whole graph.
		opt.DHigh = core.DefaultDHigh(opt.P, s.NumVertices(), s.NumArcs())
		layout, berr := partition.BuildStreaming(s, partition.Options{
			P: opt.P, Kind: opt.Partitioning, DHigh: opt.DHigh, Workers: *workers,
		})
		if berr != nil {
			fatal(berr)
		}
		if err := sc.Close(); err != nil {
			fatal(err)
		}
		res, err = core.RunRankLayout(ep, layout.Parts[*rank], opt)
	} else {
		res, err = core.RunRank(ep, g, opt)
	}
	if err != nil {
		fatal(err)
	}

	// Gather every rank's piece at rank 0 and assemble the membership. Each
	// piece carries the rank's work units so rank 0 can report the final
	// work-balance ratio alongside the labels.
	b := wire.NewBuffer(len(res.Tracked)*6 + 10)
	b.PutInts(res.Tracked)
	b.PutInts(res.Labels)
	b.PutInts([]int{int(res.WorkUnits)})
	pieces, err := comm.Gather(ep, 0, b.Bytes())
	if err != nil {
		fatal(err)
	}
	if *rank != 0 {
		fmt.Printf("rank %d done: Q=%.6f, stage1 iters %d\n", *rank, res.Modularity, res.Stage1Iters)
		return
	}
	fmt.Printf("times: ingest %v, stage1 %v, stage2 %v\n", ingestTime, res.Stage1Time, res.Stage2Time)
	nGlobal := 0
	if g != nil {
		nGlobal = g.NumVertices()
	} else {
		nGlobal = s.NumVertices()
	}
	membership := make(graph.Membership, nGlobal)
	var workMax, workSum int64
	for _, piece := range pieces {
		rd := wire.NewReader(piece)
		tracked := rd.Ints()
		labels := rd.Ints()
		work := rd.Ints()
		if err := rd.Err(); err != nil {
			fatal(err)
		}
		for i, u := range tracked {
			membership[u] = labels[i]
		}
		w := int64(work[0])
		workSum += w
		if w > workMax {
			workMax = w
		}
	}
	k := membership.Normalize()
	fmt.Printf("distributed run over %d TCP workers complete\n", len(addrs))
	if g != nil {
		fmt.Printf("modularity: %.6f (%d communities), verified %.6f\n",
			res.Modularity, k, graph.Modularity(g, membership))
	} else {
		// Out of core there is no in-RAM graph to recompute Q against.
		fmt.Printf("modularity: %.6f (%d communities)\n", res.Modularity, k)
	}
	balance := 0.0
	if workSum > 0 {
		balance = float64(workMax) * float64(len(addrs)) / float64(workSum)
	}
	fmt.Printf("load: balance=%.3f (work max/mean), rebalance events=%d, migrated vertices=%d\n",
		balance, res.RebalanceEvents, res.MigratedVertices)
}

func loadGraph(path, spec string, workers int) (*graph.Graph, graph.Membership, error) {
	switch {
	case path != "":
		f, err := os.Open(path)
		if err != nil {
			return nil, nil, err
		}
		defer f.Close()
		var g *graph.Graph
		switch {
		case strings.HasSuffix(path, ".sbin"):
			// The sharded loader reads only the byte ranges it decodes, so
			// a worker never buffers the whole file twice.
			g, err = graph.ReadBinarySharded(f, workers)
		case strings.HasSuffix(path, ".bin"):
			g, err = graph.ReadBinary(f)
		default:
			g, err = graph.ReadEdgeListParallel(f, workers)
		}
		return g, nil, err
	case spec != "":
		return gen.ParseSpec(spec)
	default:
		return nil, nil, fmt.Errorf("pass -graph FILE or -gen SPEC")
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "worker:", err)
	os.Exit(1)
}
