// Package repro is a from-scratch Go reproduction of "A Scalable
// Distributed Louvain Algorithm for Large-scale Graph Community Detection"
// (Zeng & Yu, IEEE CLUSTER 2018).
//
// The library lives under internal/: the distributed algorithm (core), the
// delegate partitioner (partition), the message-passing substrate (comm),
// graph structures and generators (graph, gen), the sequential baseline
// (louvain), clustering-quality measures (quality), and the experiment
// harness that regenerates every table and figure of the paper (expt).
//
// See README.md for a tour, DESIGN.md for the system inventory, and
// EXPERIMENTS.md for the paper-vs-measured record. The benchmarks in
// bench_test.go regenerate each experiment via "go test -bench".
package repro
