// Directed-web scenario (the paper's Section III note: "our approach can be
// easily extended to directed graphs [15]"): hyperlinks are directed, so
// this example builds a directed citation-like graph, clusters it two ways —
// directed sequential Louvain on Leicht–Newman modularity, and the paper's
// pipeline (symmetrize, then distributed undirected Louvain) — and compares
// the partitions.
//
//	go run ./examples/directedweb
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/core"
	"repro/internal/digraph"
	"repro/internal/quality"
)

func main() {
	// A directed planted-partition graph: 8 groups of pages; links mostly
	// stay within a group and point "forward" (page i links page j).
	const (
		groups    = 8
		perGroup  = 120
		outLinks  = 8
		crossProb = 0.15
	)
	n := groups * perGroup
	rng := rand.New(rand.NewSource(2018))
	var arcs []digraph.Arc
	for u := 0; u < n; u++ {
		g := u / perGroup
		for l := 0; l < outLinks; l++ {
			var v int
			if rng.Float64() < crossProb {
				v = rng.Intn(n)
			} else {
				v = g*perGroup + rng.Intn(perGroup)
			}
			if v != u {
				arcs = append(arcs, digraph.Arc{From: u, To: v, W: 1})
			}
		}
	}
	d, err := digraph.FromArcs(n, arcs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("directed web: %d pages, %d links, m = %.0f\n\n",
		d.NumVertices(), d.NumArcs(), d.TotalWeight())

	// Route 1: directed Louvain on Leicht–Newman modularity.
	dres := digraph.Louvain(d, digraph.Options{})
	fmt.Printf("directed Louvain:        %3d communities, Q_dir = %.4f\n",
		dres.Membership.NumCommunities(), dres.Modularity)

	// Route 2: the paper's pipeline — symmetrize, cluster distributed.
	g, err := d.Symmetrize()
	if err != nil {
		log.Fatal(err)
	}
	ures, err := core.Run(g, core.Options{P: 8})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("symmetrize + distributed: %3d communities, Q_undir = %.4f, Q_dir = %.4f\n",
		ures.Membership.NumCommunities(), ures.Modularity,
		digraph.Modularity(d, ures.Membership))

	// The two routes should find essentially the same structure.
	s, err := quality.Compare(dres.Membership, ures.Membership)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nagreement between the routes: NMI = %.4f, ARI = %.4f\n", s.NMI, s.ARI)
	fmt.Printf("(planted structure: %d groups)\n", groups)
}
