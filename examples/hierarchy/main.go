// Hierarchy scenario: community structure is multi-scale — the Louvain
// algorithm is hierarchical (the paper's Algorithm 1 merges communities
// into coarser graphs level by level), and the resolution parameter γ
// exposes finer or coarser structure. This example prints the dendrogram
// of a distributed run and a γ sweep.
//
//	go run ./examples/hierarchy
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
)

func main() {
	// A graph with nested structure: cliques linked in a ring.
	g, truth, err := gen.Caveman(12, 8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ring of %d cliques: %d vertices, %d edges\n\n",
		truth.NumCommunities(), g.NumVertices(), g.NumEdges())

	// The dendrogram of a distributed run.
	res, err := core.Run(g, core.Options{P: 4, TrackLevels: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("dendrogram (communities per clustering level):")
	for l, m := range res.LevelMemberships {
		fmt.Printf("  level %d: %3d communities  Q=%.4f\n",
			l+1, m.NumCommunities(), graph.Modularity(g, m))
	}
	fmt.Printf("final: %d communities, Q=%.4f\n\n",
		res.Membership.NumCommunities(), res.Modularity)

	// Resolution sweep on a fuzzier graph: γ > 1 favors finer communities,
	// γ < 1 coarser ones. (The clique ring above is robust to γ — its
	// communities are unambiguous; LFR structure is not.)
	lg, _, err := gen.LFR(gen.DefaultLFR(2000, 0.35, 17))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("resolution sweep on LFR(n=%d, mu=0.35):\n", lg.NumVertices())
	for _, gamma := range []float64{0.25, 0.5, 1, 2, 4} {
		r, err := core.Run(lg, core.Options{P: 4, Resolution: gamma})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  γ=%-5g → %3d communities (Q_γ=%.4f, plain Q=%.4f)\n",
			gamma, r.Membership.NumCommunities(), r.Modularity,
			graph.Modularity(lg, r.Membership))
	}
}
