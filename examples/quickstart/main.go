// Quickstart: generate a small community-structured graph, run the
// distributed Louvain algorithm on 4 simulated ranks, and print the result.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/gen"
)

func main() {
	// An LFR benchmark graph: 2000 vertices, power-law degrees, planted
	// communities with 25% inter-community edges.
	g, truth, err := gen.LFR(gen.DefaultLFR(2000, 0.25, 42))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: %d vertices, %d edges, %d planted communities\n",
		g.NumVertices(), g.NumEdges(), truth.NumCommunities())

	// Distributed Louvain over 4 ranks (goroutines + message passing).
	res, err := core.Run(g, core.Options{P: 4})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("found %d communities with modularity %.4f\n",
		res.Membership.NumCommunities(), res.Modularity)
	fmt.Printf("stage 1 took %d iterations over %d delegated hubs; %d merge levels total\n",
		res.Stage1Iters, res.HubCount, res.OuterLevels)

	// Communities of the first few vertices.
	fmt.Print("vertex → community:")
	for v := 0; v < 8; v++ {
		fmt.Printf(" %d→%d", v, res.Membership[v])
	}
	fmt.Println()
}
