// Social-network scenario (the paper's Table II): detect communities in a
// friendship-like graph with known ground truth and score the detection
// with all six quality measures, comparing the distributed algorithm
// against the sequential baseline and against the simple minimum-label
// heuristic.
//
//	go run ./examples/socialnetwork
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/louvain"
	"repro/internal/quality"
)

func main() {
	// A social network stand-in: strong communities, power-law degrees.
	g, truth, err := gen.LFR(gen.DefaultLFR(4000, 0.2, 7))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("social network: %d members, %d friendships, %d real groups\n\n",
		g.NumVertices(), g.NumEdges(), truth.NumCommunities())

	score := func(name string, m graph.Membership, q float64) {
		s, err := quality.Compare(m, truth)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s Q=%.4f  NMI=%.4f  F=%.4f  NVD=%.4f  RI=%.4f  ARI=%.4f  JI=%.4f\n",
			name, q, s.NMI, s.FMeasure, s.NVD, s.RI, s.ARI, s.JI)
	}

	seq := louvain.Run(g, louvain.Options{})
	score("sequential Louvain", seq.Membership, seq.Modularity)

	enhanced, err := core.Run(g, core.Options{P: 8, Heuristic: core.HeuristicEnhanced})
	if err != nil {
		log.Fatal(err)
	}
	score("distributed (enhanced, p=8)", enhanced.Membership, enhanced.Modularity)

	simple, err := core.Run(g, core.Options{P: 8, Heuristic: core.HeuristicSimple, MaxInnerIters: 30})
	if err != nil {
		log.Fatal(err)
	}
	score("distributed (simple, p=8)", simple.Membership, simple.Modularity)

	fmt.Println("\nThe enhanced heuristic should track the sequential scores;")
	fmt.Println("the simple minimum-label heuristic degrades in a distributed setting")
	fmt.Println("(the paper's Figure 5 observation).")
}
