// TCP cluster scenario: the same distributed Louvain algorithm running over
// the TCP transport — each rank is a separate endpoint connected by a full
// mesh of real sockets on loopback (in production each rank would be its
// own process or machine; see cmd/worker for the multi-process form).
//
//	go run ./examples/tcpcluster
package main

import (
	"fmt"
	"log"
	"net"
	"sync"

	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
)

func main() {
	const p = 4
	g, _, err := gen.LFR(gen.DefaultLFR(2000, 0.25, 11))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: %d vertices, %d edges; clustering over %d TCP ranks\n",
		g.NumVertices(), g.NumEdges(), p)

	// Reserve p loopback ports.
	addrs := make([]string, p)
	lns := make([]net.Listener, p)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range lns {
		ln.Close()
	}

	results := make([]*core.RankResult, p)
	var totalBytes int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			ep, err := comm.DialTCPWorld(r, addrs)
			if err != nil {
				log.Fatalf("rank %d: %v", r, err)
			}
			defer ep.Close()
			res, err := core.RunRank(ep, g, core.Options{P: p})
			if err != nil {
				log.Fatalf("rank %d: %v", r, err)
			}
			mu.Lock()
			results[r] = res
			//lint:ignore parforshare mutex-guarded commutative integer sum in the example driver; order cannot reach the output
			totalBytes += ep.Stats().Snapshot().BytesSent
			mu.Unlock()
		}(r)
	}
	wg.Wait()

	membership := make(graph.Membership, g.NumVertices())
	for _, res := range results {
		for i, u := range res.Tracked {
			membership[u] = res.Labels[i]
		}
	}
	k := membership.Normalize()
	fmt.Printf("modularity %.4f across %d communities\n", results[0].Modularity, k)
	fmt.Printf("verified against membership: %.4f\n", graph.Modularity(g, membership))
	fmt.Printf("%d bytes moved over real TCP sockets\n", totalBytes)
}
