// Web-graph scenario (the paper's Figures 6 and 9): partition a hub-heavy
// scale-free crawl-like graph, compare the workload balance of 1D and
// delegate partitioning, and sweep the processor count to observe scaling.
//
//	go run ./examples/webgraph
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/partition"
)

func main() {
	// An R-MAT web-crawl stand-in: strong hubs, weak community structure.
	cfg := gen.Graph500RMAT(13, 99)
	cfg.EdgeFactor = 12
	g, err := gen.RMAT(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("web graph: %d pages, %d links, max degree %d\n\n",
		g.NumVertices(), g.NumEdges(), g.MaxDegree())

	// Partition balance: the hub problem and the delegate fix.
	fmt.Println("partition balance at p=64 (W = max/avg - 1, lower is better):")
	dhigh := 2 * int(g.NumArcs()) / g.NumVertices()
	for _, kind := range []partition.Kind{partition.OneD, partition.Delegate} {
		l, err := partition.Build(g, partition.Options{P: 64, Kind: kind, DHigh: dhigh})
		if err != nil {
			log.Fatal(err)
		}
		c := l.Census()
		fmt.Printf("  %-9s W=%.3f  max ghosts=%d  hubs=%d\n",
			kind, c.ImbalanceW(), c.MaxGhosts(), len(l.Hubs))
	}

	// Scaling sweep.
	fmt.Println("\nclustering time vs processors (simulated parallel time):")
	var base float64
	for _, p := range []int{1, 2, 4, 8} {
		res, err := core.Run(g, core.Options{P: p})
		if err != nil {
			log.Fatal(err)
		}
		sim := res.Stage1Sim + res.Stage2Sim
		if base == 0 {
			base = float64(sim)
		}
		fmt.Printf("  p=%d: %10v  speedup %.2f  Q=%.4f  (%d iterations)\n",
			p, sim.Round(1000), base/float64(sim), res.Modularity, res.Stage1Iters)
	}
}
