// Package analysis is the project-specific static-analysis suite: a small
// framework (this file and load.go) plus one analyzer per file, each tuned
// to a bug class this codebase is actually exposed to. The algorithm is
// SPMD over hand-written collectives (internal/comm), so the most dangerous
// bugs are silent divergence bugs — a collective skipped on one rank, a
// reused message tag, a dropped transport error — that unit tests on happy
// paths do not reach.
//
// The suite is wired in three places so it gates for real:
//
//   - TestLintClean in this package, so plain `go test ./...` runs it;
//   - `go run ./cmd/lint ./...`, the standalone driver;
//   - scripts/check.sh (and CI), which runs build + vet + lint + race + fuzz.
//
// Scope: non-test files of every package in the module. Test files are
// exercised by `go vet` and the race detector instead; they intentionally
// use literal tags and stdout, and linting them would drown the signal.
//
// Suppression: a finding can be waived with a comment on the offending
// line, or on the line directly above it:
//
//	//lint:ignore <analyzer> <reason>
//
// The reason is mandatory; suppressions without one are themselves
// findings. docs/STATIC_ANALYSIS.md documents every analyzer with real
// before/after examples from this repository.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Finding is one diagnostic produced by an analyzer.
type Finding struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: [%s] %s", f.Pos, f.Analyzer, f.Message)
}

// Analyzer is one named check run over a type-checked package.
type Analyzer struct {
	// Name is the identifier used in output and in //lint:ignore comments.
	Name string
	// Doc is a one-paragraph description of what the analyzer catches.
	Doc string
	// Run inspects one package and reports findings through the Pass.
	Run func(*Pass)
}

// Pass is one (analyzer, package) unit of work. Pkg and Info are always
// populated by the loader; analyzers may still fall back to syntactic
// heuristics for expressions the type checker could not resolve.
type Pass struct {
	Fset  *token.FileSet
	Path  string // import path of the package under analysis
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info

	analyzer string
	findings *[]Finding
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.findings = append(*p.findings, Finding{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.analyzer,
		Message:  fmt.Sprintf(format, args...),
	})
}

// All returns the full analyzer suite in a stable order: the PR 1
// syntactic checks first, then the dataflow-level determinism and
// allocation analyzers built on dataflow.go.
func All() []*Analyzer {
	return []*Analyzer{
		AnalyzerCollectiveSym,
		AnalyzerTagConst,
		AnalyzerCommErr,
		AnalyzerRecvAlias,
		AnalyzerNoPrint,
		AnalyzerMapOrder,
		AnalyzerParForShare,
		AnalyzerNonDet,
		AnalyzerNoAlloc,
	}
}

// Run applies every analyzer to every package and returns the surviving
// findings (suppressed ones removed) sorted by position. Suppressions are
// accounted for: a //lint:ignore that waived nothing — its analyzer ran and
// produced no finding on the covered lines — is itself reported as stale,
// so waivers cannot outlive the code they excused.
func Run(pkgs []*Package, analyzers []*Analyzer) []Finding {
	enabled := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		enabled[a.Name] = true
	}
	var out []Finding
	for _, pkg := range pkgs {
		sup := collectSuppressions(pkg)
		var raw []Finding
		for _, a := range analyzers {
			pass := &Pass{
				Fset:     pkg.Fset,
				Path:     pkg.Path,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				analyzer: a.Name,
				findings: &raw,
			}
			a.Run(pass)
		}
		for _, f := range raw {
			if sup.matches(f) {
				continue
			}
			out = append(out, f)
		}
		out = append(out, sup.malformed...)
		out = append(out, sup.stale(enabled)...)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out
}

// parseIgnoreDirective parses one comment as a //lint:ignore suppression.
// directive reports whether the comment is a lint:ignore at all; when it
// is, analyzer and reason carry its two mandatory fields and ok reports
// both were present. Fuzzed by FuzzIgnoreDirective.
func parseIgnoreDirective(text string) (analyzer, reason string, directive, ok bool) {
	text = strings.TrimPrefix(text, "//")
	text = strings.TrimSpace(text)
	if !strings.HasPrefix(text, "lint:ignore") {
		return "", "", false, false
	}
	fields := strings.Fields(strings.TrimPrefix(text, "lint:ignore"))
	if len(fields) < 2 {
		return "", "", true, false
	}
	return fields[0], strings.Join(fields[1:], " "), true, true
}

// suppRecord is one well-formed //lint:ignore comment. used is set when a
// finding of the named analyzer lands on a covered line; a record that ends
// a run unused is a stale suppression.
type suppRecord struct {
	pos      token.Position
	analyzer string
	used     bool
}

// suppressions maps (file, line) to the suppression records covering that
// line. A //lint:ignore comment waives findings on its own line and on the
// line immediately below it (the usual "comment above the statement"
// placement).
type suppressions struct {
	byLine    map[string]map[int][]*suppRecord
	records   []*suppRecord
	malformed []Finding
}

func collectSuppressions(pkg *Package) *suppressions {
	s := &suppressions{byLine: make(map[string]map[int][]*suppRecord)}
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				analyzer, _, directive, ok := parseIgnoreDirective(c.Text)
				if !directive {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				if !ok {
					s.malformed = append(s.malformed, Finding{
						Pos:      pos,
						Analyzer: "lint",
						Message:  "malformed suppression: want //lint:ignore <analyzer> <reason>",
					})
					continue
				}
				rec := &suppRecord{pos: pos, analyzer: analyzer}
				s.records = append(s.records, rec)
				lines := s.byLine[pos.Filename]
				if lines == nil {
					lines = make(map[int][]*suppRecord)
					s.byLine[pos.Filename] = lines
				}
				for _, ln := range []int{pos.Line, pos.Line + 1} {
					lines[ln] = append(lines[ln], rec)
				}
			}
		}
	}
	return s
}

func (s *suppressions) matches(f Finding) bool {
	for _, rec := range s.byLine[f.Pos.Filename][f.Pos.Line] {
		if rec.analyzer == f.Analyzer {
			rec.used = true
			return true
		}
	}
	return false
}

// stale reports the suppressions that waived nothing: the named analyzer
// was enabled this run (or does not exist at all) and produced no finding
// on the covered lines. Stale waivers are findings so they get cleaned up
// when the code they excused changes — an unused ignore otherwise silently
// masks the next real violation on that line. Enabled is the set of
// analyzer names that actually ran; suppressions for known-but-disabled
// analyzers are left alone (a partial run proves nothing about them).
func (s *suppressions) stale(enabled map[string]bool) []Finding {
	known := make(map[string]bool)
	for _, a := range All() {
		known[a.Name] = true
	}
	var out []Finding
	for _, rec := range s.records {
		if rec.used {
			continue
		}
		switch {
		case !known[rec.analyzer]:
			out = append(out, Finding{
				Pos:      rec.pos,
				Analyzer: "lint",
				Message:  fmt.Sprintf("suppression names unknown analyzer %q", rec.analyzer),
			})
		case enabled[rec.analyzer]:
			out = append(out, Finding{
				Pos:      rec.pos,
				Analyzer: "lint",
				Message:  fmt.Sprintf("stale suppression: %s no longer fires here; remove the //lint:ignore", rec.analyzer),
			})
		}
	}
	return out
}

// ---- shared helpers used by the analyzers ----

// commPkgSuffix identifies the communication package by import-path suffix,
// so the analyzers keep working if the module is ever renamed and so the
// negative fixtures under testdata (which import the real package) match.
const commPkgSuffix = "internal/comm"

// isCommPath reports whether path is the comm package.
func isCommPath(path string) bool {
	return path == commPkgSuffix || strings.HasSuffix(path, "/"+commPkgSuffix)
}

// calleeFunc resolves the called function or method of call, if the type
// checker resolved it. Returns nil for calls through unresolved or
// built-in identifiers.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	if info == nil {
		return nil
	}
	if fn, ok := info.Uses[id].(*types.Func); ok {
		return fn
	}
	return nil
}

// isCommCallee reports whether call resolves to a function or method named
// name declared in the comm package. With missing type info it falls back
// to a syntactic match: `comm.<name>(...)` for package functions, or any
// `x.<name>(...)` for the Send/Recv method names.
func isCommCallee(info *types.Info, call *ast.CallExpr, name string) bool {
	if fn := calleeFunc(info, call); fn != nil {
		return fn.Name() == name && fn.Pkg() != nil && isCommPath(fn.Pkg().Path())
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	if x, ok := sel.X.(*ast.Ident); ok && x.Name == "comm" {
		return true
	}
	// Method-shaped fallback: only trust it for the point-to-point pair,
	// whose names are unlikely to collide inside this module.
	return name == "Send" || name == "Recv"
}
