package analysis

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"
	"testing"
)

// sharedLoader builds one Loader per test process; NewLoader shells out to
// `go list -export`, so the result is reused by every test below.
var sharedLoader = sync.OnceValues(func() (*Loader, error) {
	root, err := FindModuleRoot(".")
	if err != nil {
		return nil, err
	}
	return NewLoader(root)
})

// TestLintClean is the lint-as-test gate: the full analyzer suite must
// report nothing across the whole module. This runs under plain
// `go test ./...`, so a new violation fails tier-1 immediately — no
// separate lint invocation needed.
func TestLintClean(t *testing.T) {
	loader, err := sharedLoader()
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	pkgs, err := loader.LoadAll()
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("suspiciously few packages loaded (%d); the loader is missing code", len(pkgs))
	}
	findings := Run(pkgs, All())
	for _, f := range findings {
		t.Errorf("%s", f)
	}
	if len(findings) > 0 {
		t.Logf("fix the findings above or waive one with //lint:ignore <analyzer> <reason>; see docs/STATIC_ANALYSIS.md")
	}
}

// wantRe matches `// want <analyzer>[ <analyzer>...]` expectation comments
// in the negative fixtures.
var wantRe = regexp.MustCompile(`// want ([a-z]+(?: [a-z]+)*)\s*$`)

// fixtureWants parses the expected findings of a fixture file: line number
// -> sorted analyzer names expected on that line.
func fixtureWants(t *testing.T, path string) map[int][]string {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	wants := make(map[int][]string)
	for i, line := range strings.Split(string(data), "\n") {
		m := wantRe.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		names := strings.Fields(m[1])
		sort.Strings(names)
		wants[i+1] = names
	}
	return wants
}

// TestFixtures runs the whole suite over each negative fixture and checks
// the findings against the fixture's `// want` comments — both directions:
// every wanted finding fires, and nothing unexpected fires.
func TestFixtures(t *testing.T) {
	loader, err := sharedLoader()
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	fixtures := []string{
		"badcollective", "badtag", "baderr", "badalias", "badprint", "badpool",
		"badmaporder", "badshare", "badnondet", "badnoalloc", "stalesuppress",
		"badserver",
	}
	for _, name := range fixtures {
		t.Run(name, func(t *testing.T) {
			dir := filepath.Join("testdata", "src", name)
			pkg, err := loader.LoadDir(dir)
			if err != nil {
				t.Fatalf("loading fixture: %v", err)
			}
			wants := fixtureWants(t, filepath.Join(dir, name+".go"))
			if len(wants) == 0 {
				t.Fatalf("fixture %s has no // want comments", name)
			}
			got := make(map[int][]string)
			for _, f := range Run([]*Package{pkg}, All()) {
				got[f.Pos.Line] = append(got[f.Pos.Line], f.Analyzer)
			}
			for _, names := range got {
				sort.Strings(names)
			}
			for line, names := range wants {
				if fmt.Sprint(got[line]) != fmt.Sprint(names) {
					t.Errorf("line %d: want findings %v, got %v", line, names, got[line])
				}
			}
			for line, names := range got {
				if _, ok := wants[line]; !ok {
					t.Errorf("line %d: unexpected findings %v", line, names)
				}
			}
		})
	}
}

// TestSuppression checks that a well-formed //lint:ignore comment waives
// the finding on the line below it.
func TestSuppression(t *testing.T) {
	loader, err := sharedLoader()
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	pkg, err := loader.LoadDir(filepath.Join("testdata", "src", "suppressed"))
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	if findings := Run([]*Package{pkg}, All()); len(findings) != 0 {
		t.Errorf("suppressed fixture produced findings: %v", findings)
	}
}

// TestMalformedSuppression checks that a reason-less //lint:ignore is
// itself reported and does not waive the underlying finding.
func TestMalformedSuppression(t *testing.T) {
	loader, err := sharedLoader()
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	pkg, err := loader.LoadDir(filepath.Join("testdata", "src", "badsuppress"))
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	var names []string
	for _, f := range Run([]*Package{pkg}, All()) {
		names = append(names, f.Analyzer)
	}
	sort.Strings(names)
	if fmt.Sprint(names) != fmt.Sprint([]string{"lint", "noprint"}) {
		t.Errorf("want findings [lint noprint], got %v", names)
	}
}

// TestLiveSuppressionsFire closes the stale-suppression loop over the real
// repository: every //lint:ignore currently in the module must still waive
// a live finding. TestLintClean already fails on any finding — including
// stale-suppression findings — so here we assert the premise: the module
// does carry suppressions, and running the full suite marks every one of
// them used (no Analyzer == "lint" findings).
func TestLiveSuppressionsFire(t *testing.T) {
	loader, err := sharedLoader()
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	pkgs, err := loader.LoadAll()
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	directives := 0
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					if _, _, directive, _ := parseIgnoreDirective(c.Text); directive {
						directives++
					}
				}
			}
		}
	}
	if directives == 0 {
		t.Fatal("module carries no //lint:ignore directives; the stale-suppression rule is untested against live code")
	}
	for _, f := range Run(pkgs, All()) {
		if f.Analyzer == "lint" {
			t.Errorf("suppression bookkeeping finding in live code: %s", f)
		}
	}
	t.Logf("%d live suppressions, all still waiving findings", directives)
}

// TestAnalyzerCatalogue pins the suite composition: exactly the nine
// documented analyzers, each with a name and a doc string.
func TestAnalyzerCatalogue(t *testing.T) {
	want := []string{
		"collectivesym", "tagconst", "commerr", "recvalias", "noprint",
		"maporder", "parforshare", "nondet", "noalloc",
	}
	all := All()
	if len(all) != len(want) {
		t.Fatalf("suite has %d analyzers, want %d", len(all), len(want))
	}
	for i, a := range all {
		if a.Name != want[i] {
			t.Errorf("analyzer %d = %q, want %q", i, a.Name, want[i])
		}
		if a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %s missing doc or run function", a.Name)
		}
	}
}
