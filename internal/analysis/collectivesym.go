package analysis

import (
	"go/ast"
	"go/types"
)

// AnalyzerCollectiveSym flags the classic SPMD deadlock pattern: a comm
// collective (Barrier, Bcast, Allreduce*, Allgather, Alltoallv, Gather)
// that is lexically nested inside rank-dependent control flow. Every rank
// must execute the same sequence of collectives in the same order; a
// collective reached by only some ranks leaves the others blocked in a
// point-to-point Recv forever — the hand-rolled transports have no timeout
// and no progress engine to detect it.
//
// Rank-dependence of a branch condition is a heuristic:
//
//   - the condition calls Rank() (on any receiver),
//   - it mentions an identifier whose value was derived from a Rank()
//     call anywhere in the enclosing function (one dataflow fixpoint,
//     so `r := c.Rank(); vr := (r + k) %% p; if vr == 0 {...}` is caught),
//   - or it mentions a name that by this codebase's convention holds a
//     rank: rank, rnk, myrank, vrank (case-insensitive; struct fields
//     such as s.rnk included).
//
// Branching on rank around point-to-point Send/Recv is fine (that is how
// the collectives themselves are built) and is not flagged. A genuinely
// intentional divergent collective — e.g. a subgroup collective guarded so
// every member still participates — can be waived with
// //lint:ignore collectivesym <reason>.
//
// The analyzer additionally flags collectives issued off the rank's main
// goroutine: inside a function literal launched with `go`, or inside a task
// literal handed to a worker pool's parFor/ParFor (internal/core's
// intra-rank parallel kernels and internal/par's exported pool behind the
// ingest and partition pipelines). The communicator matches messages by
// (source, tag) in program order on the rank's goroutine, so a collective
// from a concurrent goroutine races that matching even when every rank
// reaches it.
var AnalyzerCollectiveSym = &Analyzer{
	Name: "collectivesym",
	Doc: "flags comm collectives reachable only under rank-dependent control flow " +
		"(the SPMD deadlock pattern: some ranks enter the collective, the rest never do) " +
		"and collectives issued from goroutines or worker-pool tasks off the rank's main goroutine",
	Run: runCollectiveSym,
}

// collectiveNames are the comm package entry points that must be executed
// symmetrically by every rank of the world.
var collectiveNames = map[string]bool{
	"Barrier":                  true,
	"Bcast":                    true,
	"AllreduceBytes":           true,
	"AllreduceBytesRing":       true,
	"AllreduceFloat64Sum":      true,
	"AllreduceInt64Sum":        true,
	"AllreduceInt64Max":        true,
	"AllreduceFloat64SliceSum": true,
	"Allgather":                true,
	"Alltoallv":                true,
	"Gather":                   true,
	// Overlapped collective engine (PR 4): the overlapped/streaming
	// alltoall variants, the fused per-iteration reduction, and the
	// pipelined/size-selected ring reductions are collectives like any
	// other — every rank must reach them symmetrically.
	"AlltoallvSeq":                true,
	"AlltoallvInto":               true,
	"AlltoallvFunc":               true,
	"AllgatherInto":               true,
	"AllreduceIterStats":          true,
	"AllreduceBytesRingPipelined": true,
	"AllreduceBytesAuto":          true,
	// Mid-solve load rebalancing (PR 7): the migration exchanges and the
	// work-vector reductions that drive the trigger. Doubly deadly under
	// rank-dependent control flow — the migration rounds share one tag and
	// rely on per-pair FIFO order, so an asymmetric entry desynchronizes
	// the round framing for the whole world.
	"MigrationExchange":      true,
	"MigrationExchangeSeq":   true,
	"AllreduceIterStatsWork": true,
	"AllreduceInt64SliceMax": true,
	// Resident serving (PR 8): every rank of a resident world must enter
	// the per-batch drift reduction, or the update call wedges with some
	// ranks inside the collective and the rest back in their command loop.
	"AllreduceUpdateStats": true,
}

// rankNames are identifiers assumed to hold a rank by naming convention.
var rankNames = map[string]bool{"rank": true, "rnk": true, "myrank": true, "vrank": true}

func runCollectiveSym(p *Pass) {
	for _, file := range p.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			derived := rankDerivedObjects(p.Info, fd.Body)
			w := &symWalker{pass: p, derived: derived, handled: make(map[*ast.FuncLit]bool)}
			w.walkStmt(fd.Body, nil, "")
		}
	}
}

// rankDerivedObjects collects objects assigned (directly or transitively)
// from a Rank() call within body. One fixpoint loop over the assignments
// is enough for chains like r := c.Rank(); vr := (r - k + p) % p.
func rankDerivedObjects(info *types.Info, body *ast.BlockStmt) map[types.Object]bool {
	derived := make(map[types.Object]bool)
	isRanky := func(e ast.Expr) bool { return mentionsRank(info, e, derived) }
	for changed := true; changed; {
		changed = false
		ast.Inspect(body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, lhs := range as.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				obj := info.Defs[id]
				if obj == nil {
					obj = info.Uses[id]
				}
				if obj == nil || derived[obj] {
					continue
				}
				if isRanky(as.Rhs[i]) {
					derived[obj] = true
					changed = true
				}
			}
			return true
		})
	}
	return derived
}

// mentionsRank reports whether expr contains a Rank() call, a
// rank-derived identifier, or a conventionally rank-named identifier.
func mentionsRank(info *types.Info, expr ast.Expr, derived map[types.Object]bool) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if found {
			return false
		}
		switch e := n.(type) {
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(e.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Rank" {
				found = true
				return false
			}
		case *ast.Ident:
			if rankNames[lower(e.Name)] {
				found = true
				return false
			}
			if obj := info.Uses[e]; obj != nil && derived[obj] {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

func lower(s string) string {
	b := []byte(s)
	for i, c := range b {
		if 'A' <= c && c <= 'Z' {
			b[i] = c + 'a' - 'A'
		}
	}
	return string(b)
}

// symWalker walks statements carrying the innermost rank-dependent branch
// node (nil when the current path is symmetric) and the async context (empty
// when the code runs on the rank's main goroutine). handled marks function
// literals already walked with a specific async context, so the generic
// expression scan does not re-walk them with the wrong one.
type symWalker struct {
	pass    *Pass
	derived map[types.Object]bool
	handled map[*ast.FuncLit]bool
}

func (w *symWalker) divergentCond(e ast.Expr) bool {
	return e != nil && mentionsRank(w.pass.Info, e, w.derived)
}

func (w *symWalker) walkStmt(s ast.Stmt, div ast.Node, async string) {
	switch st := s.(type) {
	case nil:
	case *ast.BlockStmt:
		for _, sub := range st.List {
			w.walkStmt(sub, div, async)
		}
	case *ast.IfStmt:
		w.walkStmt(st.Init, div, async)
		w.checkExpr(st.Cond, div, async)
		inner := div
		if w.divergentCond(st.Cond) {
			inner = st
		}
		w.walkStmt(st.Body, inner, async)
		w.walkStmt(st.Else, inner, async)
	case *ast.SwitchStmt:
		w.walkStmt(st.Init, div, async)
		w.checkExpr(st.Tag, div, async)
		inner := div
		if w.divergentCond(st.Tag) {
			inner = st
		}
		for _, cc := range st.Body.List {
			c := cc.(*ast.CaseClause)
			caseDiv := inner
			for _, e := range c.List {
				w.checkExpr(e, div, async)
				if caseDiv == nil && w.divergentCond(e) {
					caseDiv = st
				}
			}
			for _, sub := range c.Body {
				w.walkStmt(sub, caseDiv, async)
			}
		}
	case *ast.TypeSwitchStmt:
		w.walkStmt(st.Init, div, async)
		w.walkStmt(st.Assign, div, async)
		for _, cc := range st.Body.List {
			for _, sub := range cc.(*ast.CaseClause).Body {
				w.walkStmt(sub, div, async)
			}
		}
	case *ast.ForStmt:
		w.walkStmt(st.Init, div, async)
		w.checkExpr(st.Cond, div, async)
		inner := div
		if w.divergentCond(st.Cond) {
			inner = st
		}
		w.walkStmt(st.Post, inner, async)
		w.walkStmt(st.Body, inner, async)
	case *ast.RangeStmt:
		w.checkExpr(st.X, div, async)
		// Ranging over a rank-dependent collection runs the body a
		// rank-dependent number of times.
		inner := div
		if w.divergentCond(st.X) {
			inner = st
		}
		w.walkStmt(st.Body, inner, async)
	case *ast.SelectStmt:
		for _, cc := range st.Body.List {
			for _, sub := range cc.(*ast.CommClause).Body {
				w.walkStmt(sub, div, async)
			}
		}
	case *ast.LabeledStmt:
		w.walkStmt(st.Stmt, div, async)
	case *ast.ExprStmt:
		w.checkExpr(st.X, div, async)
	case *ast.AssignStmt:
		for _, e := range st.Rhs {
			w.checkExpr(e, div, async)
		}
		for _, e := range st.Lhs {
			w.checkExpr(e, div, async)
		}
	case *ast.ReturnStmt:
		for _, e := range st.Results {
			w.checkExpr(e, div, async)
		}
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						w.checkExpr(e, div, async)
					}
				}
			}
		}
	case *ast.GoStmt:
		// The call's arguments are evaluated on the current goroutine; the
		// callee body runs concurrently with the rank's collective schedule.
		for _, arg := range st.Call.Args {
			w.checkExpr(arg, div, async)
		}
		if fl, ok := ast.Unparen(st.Call.Fun).(*ast.FuncLit); ok {
			w.handled[fl] = true
			w.walkStmt(fl.Body, div, "a goroutine started with go")
		} else {
			w.reportCollective(st.Call, div, "a goroutine started with go")
		}
	case *ast.DeferStmt:
		w.checkExpr(st.Call, div, async)
	case *ast.SendStmt:
		w.checkExpr(st.Chan, div, async)
		w.checkExpr(st.Value, div, async)
	case *ast.IncDecStmt:
		w.checkExpr(st.X, div, async)
	}
}

// isParForCall reports whether call invokes a parFor/ParFor
// method/function (the worker-pool dispatch of internal/core and the
// exported internal/par.Pool.ParFor behind the ingest and partition
// pipelines; matched by name so fixtures and future pools are covered
// without importing those packages).
func isParForCall(call *ast.CallExpr) bool {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		return fun.Sel.Name == "parFor" || fun.Sel.Name == "ParFor"
	case *ast.Ident:
		return fun.Name == "parFor" || fun.Name == "ParFor"
	}
	return false
}

// checkExpr reports collective calls inside e when the surrounding path is
// rank-divergent or runs off the rank's main goroutine. Function literals
// are scanned with the context of their definition site (conservative: a
// literal built under a rank branch is usually invoked there too); literals
// passed to parFor are scanned as worker-pool tasks.
func (w *symWalker) checkExpr(e ast.Expr, div ast.Node, async string) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			if w.handled[x] {
				return false
			}
			w.walkStmt(x.Body, div, async)
			return false
		case *ast.CallExpr:
			if isParForCall(x) {
				for _, arg := range x.Args {
					if fl, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
						w.handled[fl] = true
						w.walkStmt(fl.Body, div, "a worker-pool parFor task")
					}
				}
			}
			w.reportCollective(x, div, async)
		}
		return true
	})
}

// reportCollective flags call if it is a comm collective reached in an
// asymmetric context: off the rank's main goroutine (async) or under
// rank-dependent control flow (div).
func (w *symWalker) reportCollective(call *ast.CallExpr, div ast.Node, async string) {
	for name := range collectiveNames {
		if !isCommCalleeFunc(w.pass.Info, call, name) {
			continue
		}
		switch {
		case async != "":
			w.pass.Reportf(call.Pos(),
				"comm.%s inside %s: collectives must run on the rank's main goroutine, in program order, or they race the communicator's message matching", name, async)
		case div != nil:
			w.pass.Reportf(call.Pos(),
				"comm.%s under rank-dependent control flow: every rank must reach each collective, or ranks outside this branch deadlock", name)
		}
		return
	}
}

// isCommCalleeFunc is isCommCallee restricted to package-level functions
// (the collectives are free functions, not methods), so a user-defined
// method that happens to be called Gather does not trip the analyzer when
// type information is present.
func isCommCalleeFunc(info *types.Info, call *ast.CallExpr, name string) bool {
	if fn := calleeFunc(info, call); fn != nil {
		sig, ok := fn.Type().(*types.Signature)
		if !ok || sig.Recv() != nil {
			return false
		}
		return fn.Name() == name && fn.Pkg() != nil && isCommPath(fn.Pkg().Path())
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	x, ok := sel.X.(*ast.Ident)
	return ok && x.Name == "comm"
}
