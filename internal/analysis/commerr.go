package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// AnalyzerCommErr flags discarded errors from communication operations. A
// comm error is never ignorable: it means a peer died or the transport
// failed, and a rank that shrugs it off proceeds with stale or missing
// data while the rest of the world waits for messages it will never send —
// turning a clean fast-failure into a silent wrong answer or a deadlock.
//
// Flagged forms, for Send/Recv and every collective:
//
//	comm.Barrier(c)            // call statement, result dropped
//	_ = c.Send(dst, tag, b)    // error assigned to blank
//	b, _ := c.Recv(src, tag)   // error position assigned to blank
//	go comm.Barrier(c)         // error unobservable in go/defer
//
// Close is deliberately not in the checked set: teardown errors after the
// final gather are routinely unactionable (mirroring common io.Closer
// practice). Everything else must be handled or explicitly waived with
// //lint:ignore commerr <reason>.
// The same obligation extends to the graph package's IO entry points
// (including PR 5's parallel and sharded variants): a loader that drops a
// read error proceeds with a nil or truncated graph, and in an SPMD world
// where every rank ingests the same input, one rank silently failing to
// load produces divergent layouts and the identical deadlock-or-wrong-answer
// endgame.
var AnalyzerCommErr = &Analyzer{
	Name: "commerr",
	Doc: "flags comm operations and graph IO entry points whose error result is " +
		"discarded (statement call, blank assignment, go/defer)",
	Run: runCommErr,
}

// commErrOps are the checked operations: the point-to-point pair plus
// every world-level entry point that returns an error.
var commErrOps = map[string]bool{
	"Send": true, "Recv": true,
	"Barrier": true, "Bcast": true,
	"AllreduceBytes": true, "AllreduceBytesRing": true,
	"AllreduceFloat64Sum": true, "AllreduceInt64Sum": true,
	"AllreduceInt64Max": true, "AllreduceFloat64SliceSum": true,
	"Allgather": true, "Alltoallv": true, "Gather": true,
	// Overlapped collective engine (PR 4): same failure modes, same
	// obligation to check the error.
	"AlltoallvSeq": true, "AlltoallvInto": true, "AlltoallvFunc": true,
	"AllgatherInto": true, "AllreduceIterStats": true,
	"AllreduceBytesRingPipelined": true, "AllreduceBytesAuto": true,
	"RunWorld": true, "RunWorldStats": true, "DialTCPWorld": true,
	// Robustness layer (PR 3): deadline-bounded receives, retry wrappers,
	// configurable dialing, and chaos worlds fail for the same reasons the
	// plain operations do, so their errors carry the same obligation.
	"RecvTimeout": true, "Retry": true,
	"DialTCPWorldConfig": true, "RunWorldChaos": true, "Drain": true,
	// Mid-solve load rebalancing (PR 7): a dropped migration error leaves
	// the world's ownership directories divergent — worse than a crash.
	"MigrationExchange": true, "MigrationExchangeSeq": true,
	"AllreduceIterStatsWork": true, "AllreduceInt64SliceMax": true,
	// Resident serving (PR 8): the fused drift reduction behind every
	// incremental update batch. A dropped error here leaves the drift
	// accounting divergent across ranks, so the fallback decision splits.
	"AllreduceUpdateStats": true,
}

// graphIOOps are the graph package's IO entry points. The parallel ingest
// pipeline (PR 5) added the Parallel and Sharded variants; every one reports
// malformed input or a failed sink through its error, and nothing else.
var graphIOOps = map[string]bool{
	"ReadEdgeList": true, "ReadEdgeListParallel": true,
	"ReadBinary": true, "ReadBinarySharded": true, "ReadMETIS": true,
	"WriteEdgeList": true, "WriteBinary": true, "WriteBinarySharded": true,
	"WriteMETIS": true, "OpenSharded": true, "ReadVertexRange": true,
	// Out-of-core layer (PR 9): windowed decode, mmap open, and the v2
	// compressed writer. A window decode error dropped mid-stream means a
	// silently truncated partition; the typed-callee check pins these to
	// the graph package, so io.ReadAll and friends are untouched.
	"ReadAll": true, "ReadWindow": true, "Window": true,
	"NeighborsOf": true, "OpenShardedFile": true, "OpenMmap": true,
	"WriteBinaryShardedV2": true,
}

// graphPkgSuffix identifies the graph package by import-path suffix.
const graphPkgSuffix = "internal/graph"

func runCommErr(p *Pass) {
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.ExprStmt:
				if name, kind, ok := commErrOp(p.Info, st.X); ok {
					p.Reportf(st.Pos(), "result of %s %s discarded: %s", kind, name, errWhy(kind))
				}
			case *ast.GoStmt:
				if name, kind, ok := commErrOp(p.Info, st.Call); ok {
					p.Reportf(st.Pos(), "%s %s in go statement: its error is unobservable; collect it through the rank's return value instead", kind, name)
				}
			case *ast.DeferStmt:
				if name, kind, ok := commErrOp(p.Info, st.Call); ok {
					p.Reportf(st.Pos(), "%s %s in defer statement: its error is unobservable; call it explicitly and check the error", kind, name)
				}
			case *ast.AssignStmt:
				checkBlankCommErr(p, st)
			}
			return true
		})
	}
}

// errWhy explains the stakes of a dropped error per operation kind.
func errWhy(kind string) string {
	if kind == "graph IO" {
		return "a failed read or write means a missing or truncated graph and must be propagated"
	}
	return "a comm error means a dead peer or broken transport and must be propagated"
}

// commErrOp reports whether e is a call to a checked comm operation or
// graph IO entry point, and which kind it is.
func commErrOp(info *types.Info, e ast.Expr) (string, string, bool) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return "", "", false
	}
	for name := range commErrOps {
		if isCommCallee(info, call, name) {
			return name, "comm", true
		}
	}
	for name := range graphIOOps {
		if isGraphIOCallee(info, call, name) {
			return name, "graph IO", true
		}
	}
	return "", "", false
}

// isGraphIOCallee reports whether call resolves to a checked function or
// method named name declared in the graph package. With missing type info
// it falls back to a syntactic `graph.<name>(...)` match (the Sharded
// methods have names distinctive enough not to need a method fallback).
func isGraphIOCallee(info *types.Info, call *ast.CallExpr, name string) bool {
	if fn := calleeFunc(info, call); fn != nil {
		return fn.Name() == name && fn.Pkg() != nil &&
			(fn.Pkg().Path() == graphPkgSuffix || strings.HasSuffix(fn.Pkg().Path(), "/"+graphPkgSuffix))
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	x, ok := sel.X.(*ast.Ident)
	return ok && x.Name == "graph"
}

// checkBlankCommErr flags assignments that pipe a checked operation's error
// result into the blank identifier.
func checkBlankCommErr(p *Pass, as *ast.AssignStmt) {
	if len(as.Rhs) != 1 {
		return
	}
	name, kind, ok := commErrOp(p.Info, as.Rhs[0])
	if !ok {
		return
	}
	call := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
	errPositions := errorResultPositions(p.Info, call, len(as.Lhs))
	for _, i := range errPositions {
		if i >= len(as.Lhs) {
			continue
		}
		if id, isIdent := as.Lhs[i].(*ast.Ident); isIdent && id.Name == "_" {
			p.Reportf(id.Pos(), "error of %s %s assigned to _: %s", kind, name, errWhy(kind))
		}
	}
}

// errorResultPositions returns the result indices of call with type error.
// If the signature cannot be resolved, the last position is assumed (every
// checked comm operation returns its error last).
func errorResultPositions(info *types.Info, call *ast.CallExpr, nLHS int) []int {
	if fn := calleeFunc(info, call); fn != nil {
		sig, ok := fn.Type().(*types.Signature)
		if ok {
			var out []int
			for i := 0; i < sig.Results().Len(); i++ {
				if named, isNamed := sig.Results().At(i).Type().(*types.Named); isNamed && named.Obj().Name() == "error" && named.Obj().Pkg() == nil {
					out = append(out, i)
				}
			}
			return out
		}
	}
	return []int{nLHS - 1}
}
