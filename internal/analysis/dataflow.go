package analysis

import (
	"go/ast"
	"go/types"
)

// This file is the suite's dataflow layer: a small def-use machinery over
// the typed ASTs that the PR 1 analyzers (purely syntactic walks) did not
// need. Three facilities, shared by maporder and parforshare:
//
//   - closeOverAssignments: a fixpoint that closes a set of "interesting"
//     objects over the assignments of a region, so `lo, hi := chunkSpan(n,
//     nc, chunk)` makes lo and hi chunk-derived, and `p := pos[e.V]` makes
//     p derived once pos is;
//   - exprMentionsObj: the use side of the walk — does this expression read
//     any object in the set;
//   - analyzeWriteTarget: decomposes an assignment destination into its
//     root object and the index expressions along the chain, so the
//     analyzers can ask "is this write slot a function of the kernel's
//     chunk parameter" or "is this a map insert".
//
// The walks are intraprocedural and flow over the syntax in source order.
// That is deliberate: the codebase's kernels and encode loops are short,
// self-contained functions (the style the analyzers themselves enforce),
// and an interprocedural engine would buy little beyond slower lints.

// closeOverAssignments grows derived to its fixpoint over the assignments
// inside root: any name assigned (directly or transitively) from an
// expression that mentions a derived object becomes derived itself.
// Multi-value assignments from a single call derive every destination, and
// ranging over a derived collection derives the iteration variables.
func closeOverAssignments(info *types.Info, root ast.Node, derived map[types.Object]bool) {
	mark := func(e ast.Expr) bool {
		id, ok := e.(*ast.Ident)
		if !ok {
			return false
		}
		obj := info.Defs[id]
		if obj == nil {
			obj = info.Uses[id]
		}
		if obj == nil || derived[obj] {
			return false
		}
		derived[obj] = true
		return true
	}
	for changed := true; changed; {
		changed = false
		ast.Inspect(root, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.AssignStmt:
				switch {
				case len(st.Lhs) == len(st.Rhs):
					for i, lhs := range st.Lhs {
						if exprMentionsObj(info, st.Rhs[i], derived) && mark(lhs) {
							changed = true
						}
					}
				case len(st.Rhs) == 1:
					if exprMentionsObj(info, st.Rhs[0], derived) {
						for _, lhs := range st.Lhs {
							if mark(lhs) {
								changed = true
							}
						}
					}
				}
			case *ast.RangeStmt:
				if st.X != nil && exprMentionsObj(info, st.X, derived) {
					if st.Key != nil && mark(st.Key) {
						changed = true
					}
					if st.Value != nil && mark(st.Value) {
						changed = true
					}
				}
			case *ast.ValueSpec:
				switch {
				case len(st.Names) == len(st.Values):
					for i, name := range st.Names {
						if exprMentionsObj(info, st.Values[i], derived) && mark(name) {
							changed = true
						}
					}
				case len(st.Values) == 1:
					if exprMentionsObj(info, st.Values[0], derived) {
						for _, name := range st.Names {
							if mark(name) {
								changed = true
							}
						}
					}
				}
			}
			return true
		})
	}
}

// exprMentionsObj reports whether expr reads any object in set.
func exprMentionsObj(info *types.Info, expr ast.Expr, set map[types.Object]bool) bool {
	if expr == nil {
		return false
	}
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if found {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := info.Uses[id]
		if obj == nil {
			obj = info.Defs[id]
		}
		if obj != nil && set[obj] {
			found = true
			return false
		}
		return true
	})
	return found
}

// analyzeWriteTarget decomposes an assignment destination: the root
// identifier at the bottom of the selector/index/slice/deref chain, the
// index expressions applied along it, and whether the outermost operation
// is an index into a map (a map insert, which is never safe to perform
// concurrently). A nil root means the destination is not rooted in a name
// (e.g. f().field) and the caller should leave it alone.
func analyzeWriteTarget(info *types.Info, e ast.Expr) (root *ast.Ident, indexes []ast.Expr, mapWrite bool) {
	first := true
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.IndexExpr:
			if first {
				if t := info.TypeOf(x.X); t != nil {
					if _, ok := t.Underlying().(*types.Map); ok {
						mapWrite = true
					}
				}
			}
			indexes = append(indexes, x.Index)
			e = x.X
			first = false
		case *ast.SliceExpr:
			e = x.X
			first = false
		case *ast.StarExpr:
			e = x.X
			first = false
		case *ast.SelectorExpr:
			// A qualified package identifier (pkg.Var) roots at the
			// package-level variable, not the package name.
			if id, ok := x.X.(*ast.Ident); ok {
				if _, isPkg := info.Uses[id].(*types.PkgName); isPkg {
					return x.Sel, indexes, mapWrite
				}
			}
			e = x.X
			first = false
		case *ast.Ident:
			return x, indexes, mapWrite
		default:
			return nil, indexes, mapWrite
		}
	}
}

// objOf resolves an identifier to its object (definition or use).
func objOf(info *types.Info, id *ast.Ident) types.Object {
	if id == nil {
		return nil
	}
	if obj := info.Defs[id]; obj != nil {
		return obj
	}
	return info.Uses[id]
}

// declaredWithin reports whether obj's declaration lies inside node's
// source range — for kernel analysis, whether a written variable is the
// kernel's own state or captured from the enclosing function.
func declaredWithin(obj types.Object, node ast.Node) bool {
	return obj != nil && obj.Pos() != 0 && node.Pos() <= obj.Pos() && obj.Pos() < node.End()
}

// calleePkgFunc resolves call to (package path, function name) when the
// callee is a package-level function or a method; ok is false for builtins
// and unresolved identifiers.
func calleePkgFunc(info *types.Info, call *ast.CallExpr) (path, name string, ok bool) {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil {
		return "", "", false
	}
	return fn.Pkg().Path(), fn.Name(), true
}

// sortFuncs are the stdlib entry points that establish a deterministic
// order on their argument: after one of these, data collected in map
// iteration order is safe to encode or accumulate.
var sortFuncs = map[string]bool{
	"Sort": true, "Stable": true, "Slice": true, "SliceStable": true,
	"Ints": true, "Float64s": true, "Strings": true,
	"SortFunc": true, "SortStableFunc": true,
	"Sorted": true, "SortedFunc": true, "SortedStableFunc": true,
}

// isSortCall reports whether call is a sort or slices package call that
// deterministically orders its argument. With missing type information it
// falls back to the qualifier name.
func isSortCall(info *types.Info, call *ast.CallExpr) bool {
	if path, name, ok := calleePkgFunc(info, call); ok {
		return (path == "sort" || path == "slices") && sortFuncs[name]
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || !sortFuncs[sel.Sel.Name] {
		return false
	}
	x, ok := sel.X.(*ast.Ident)
	return ok && (x.Name == "sort" || x.Name == "slices")
}

// isMapsIterCall reports whether call is maps.Keys / maps.Values / maps.All
// — an iterator over a map, carrying the map's nondeterministic order.
func isMapsIterCall(info *types.Info, call *ast.CallExpr) bool {
	if path, name, ok := calleePkgFunc(info, call); ok {
		return path == "maps" && (name == "Keys" || name == "Values" || name == "All")
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if sel.Sel.Name != "Keys" && sel.Sel.Name != "Values" && sel.Sel.Name != "All" {
		return false
	}
	x, ok := sel.X.(*ast.Ident)
	return ok && x.Name == "maps"
}
