package analysis

import (
	"path/filepath"
	"testing"
)

// TestDefUseWalk exercises the shared def-use layer (dataflow.go) through
// the two analyzers built on it, over the synthetic dfcases package. One
// file per case keeps the table readable: each row says which analyzer the
// case targets and how many findings it must produce in that file — the
// laundering rows (sort between collect and encode, chunk-derived indexes)
// must be exactly zero, their unlaundered twins exactly the sink count.
func TestDefUseWalk(t *testing.T) {
	loader, err := sharedLoader()
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	pkg, err := loader.LoadDir(filepath.Join("testdata", "src", "dfcases"))
	if err != nil {
		t.Fatalf("loading dfcases: %v", err)
	}
	findings := Run([]*Package{pkg}, []*Analyzer{AnalyzerMapOrder, AnalyzerParForShare})
	got := make(map[string]map[string]int) // file base -> analyzer -> count
	for _, f := range findings {
		base := filepath.Base(f.Pos.Filename)
		if got[base] == nil {
			got[base] = make(map[string]int)
		}
		got[base][f.Analyzer]++
	}
	cases := []struct {
		file     string
		analyzer string
		want     int
	}{
		{"map_sort_encode.go", "maporder", 0},   // sort launders the collected keys
		{"map_encode.go", "maporder", 2},        // both Put calls fire
		{"worker_indexed.go", "parforshare", 0}, // worker/chunk-derived indexes own their slots
		{"shared_write.go", "parforshare", 1},   // captured-scalar accumulation fires
	}
	for _, tc := range cases {
		if n := got[tc.file][tc.analyzer]; n != tc.want {
			t.Errorf("%s: %s findings = %d, want %d", tc.file, tc.analyzer, n, tc.want)
		}
	}
	// Nothing else may fire anywhere in the package: the clean files carry
	// deliberate near-misses of the flagged shapes.
	wantTotal := 0
	for _, tc := range cases {
		wantTotal += tc.want
	}
	if len(findings) != wantTotal {
		t.Errorf("dfcases produced %d findings in total, want %d: %v", len(findings), wantTotal, findings)
	}
}
