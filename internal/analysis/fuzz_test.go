package analysis

import (
	"strings"
	"testing"
	"unicode"
)

// FuzzIgnoreDirective fuzzes the //lint:ignore parser with arbitrary
// comment text. The parser sits in front of the suppression machinery, so
// its invariants are load-bearing: a parse that misreads a directive either
// drops a sanctioned waiver (spurious CI failure) or silently widens one
// (masked violation).
func FuzzIgnoreDirective(f *testing.F) {
	f.Add("//lint:ignore noprint fixture demonstrating a sanctioned suppression")
	f.Add("//lint:ignore nondet worker wake/shutdown arbitration")
	f.Add("//lint:ignore noprint")
	f.Add("// lint:ignore noprint spaced form")
	f.Add("//lint:ignoreX not a directive")
	f.Add("// plain comment")
	f.Add("//")
	f.Add("//lint:ignore  maporder   extra   interior   spacing")
	f.Add("//lint:ignore \t nondet tabs\tinside")
	f.Fuzz(func(t *testing.T, text string) {
		analyzer, reason, directive, ok := parseIgnoreDirective(text)
		if ok && !directive {
			t.Fatalf("ok implies directive: %q", text)
		}
		if !ok && (analyzer != "" || reason != "") {
			t.Fatalf("failed parse must not return fields: %q -> (%q, %q)", text, analyzer, reason)
		}
		if ok {
			if analyzer == "" || reason == "" {
				t.Fatalf("ok parse with empty field: %q -> (%q, %q)", text, analyzer, reason)
			}
			for _, r := range analyzer {
				if unicode.IsSpace(r) {
					t.Fatalf("analyzer name contains whitespace: %q -> %q", text, analyzer)
				}
			}
			// A well-formed directive round-trips: re-rendering the parsed
			// fields parses to the same fields (reason is normalized to
			// single spaces by the field split, so the round trip is the
			// fixed point).
			again := "//lint:ignore " + analyzer + " " + reason
			a2, r2, d2, ok2 := parseIgnoreDirective(again)
			if !d2 || !ok2 || a2 != analyzer || r2 != reason {
				t.Fatalf("round trip diverged: %q -> (%q, %q) -> (%q, %q, %v, %v)",
					text, analyzer, reason, a2, r2, d2, ok2)
			}
		}
		// The canonical prefix must always be recognized as a directive,
		// well-formed or not.
		trimmed := strings.TrimSpace(strings.TrimPrefix(text, "//"))
		if strings.HasPrefix(trimmed, "lint:ignore") && !directive {
			t.Fatalf("lint:ignore comment not recognized as a directive: %q", text)
		}
	})
}
