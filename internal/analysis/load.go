package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Package is one loaded, type-checked package of the module (or of the
// negative-fixture tree under testdata).
type Package struct {
	Path  string // import path
	Dir   string // absolute directory
	Fset  *token.FileSet
	Files []*ast.File // non-test files only
	Types *types.Package
	Info  *types.Info
}

// Loader parses and type-checks module packages from source. Imports —
// both standard-library and intra-module — are resolved from compiler
// export data located with `go list -export`, which works offline with
// nothing beyond the Go toolchain itself (the module has no external
// dependencies and must stay buildable without network access).
type Loader struct {
	Fset    *token.FileSet
	Root    string // module root (directory containing go.mod)
	ModPath string // module path from go.mod

	mu      sync.Mutex
	exports map[string]string // import path -> export-data file
	imp     types.Importer
}

// FindModuleRoot walks upward from dir to the directory containing go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("analysis: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// NewLoader prepares a loader for the module rooted at root. It runs
// `go list -export -deps ./...` once to map every import path the module
// can reach to its export-data file.
func NewLoader(root string) (*Loader, error) {
	modPath, err := readModulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	l := &Loader{
		Fset:    token.NewFileSet(),
		Root:    root,
		ModPath: modPath,
		exports: make(map[string]string),
	}
	if err := l.listExports("-deps", "./..."); err != nil {
		return nil, err
	}
	l.imp = importer.ForCompiler(l.Fset, "gc", l.lookupExport)
	return l, nil
}

func readModulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("analysis: no module line in %s", gomod)
}

// listExports runs `go list -export -json` with the given arguments and
// records the ImportPath -> Export mapping.
func (l *Loader) listExports(args ...string) error {
	cmd := exec.Command("go", append([]string{"list", "-export", "-json=ImportPath,Export"}, args...)...)
	cmd.Dir = l.Root
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.StdoutPipe()
	if err != nil {
		return err
	}
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("analysis: go list: %v", err)
	}
	dec := json.NewDecoder(out)
	for {
		var p struct{ ImportPath, Export string }
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return fmt.Errorf("analysis: go list output: %v", err)
		}
		if p.Export != "" {
			l.mu.Lock()
			l.exports[p.ImportPath] = p.Export
			l.mu.Unlock()
		}
	}
	if err := cmd.Wait(); err != nil {
		return fmt.Errorf("analysis: go list %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}
	return nil
}

// lookupExport serves export data to the gc importer, fetching paths that
// were not in the initial `./...` listing (e.g. a stdlib package imported
// only by a testdata fixture) on demand.
func (l *Loader) lookupExport(path string) (io.ReadCloser, error) {
	l.mu.Lock()
	file, ok := l.exports[path]
	l.mu.Unlock()
	if !ok {
		if err := l.listExports("--", path); err != nil {
			return nil, err
		}
		l.mu.Lock()
		file, ok = l.exports[path]
		l.mu.Unlock()
		if !ok {
			return nil, fmt.Errorf("analysis: no export data for %q", path)
		}
	}
	return os.Open(file)
}

// LoadAll loads every package of the module, skipping testdata and hidden
// directories. The result is sorted by import path.
func (l *Loader) LoadAll() ([]*Package, error) {
	var dirs []string
	err := filepath.WalkDir(l.Root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.Root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
			return filepath.SkipDir
		}
		if hasGoSource(path) {
			dirs = append(dirs, path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	pkgs := make([]*Package, 0, len(dirs))
	for _, dir := range dirs {
		pkg, err := l.LoadDir(dir)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

func hasGoSource(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			return true
		}
	}
	return false
}

// LoadDir parses and type-checks the single package in dir (non-test files
// only). The import path is derived from the directory's position inside
// the module, so fixtures under testdata get paths like
// repro/internal/analysis/testdata/src/badprint — which deliberately makes
// path-scoped analyzers (noprint's internal/ rule) apply to them.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	rel, err := filepath.Rel(l.Root, dir)
	if err != nil {
		return nil, err
	}
	path := l.ModPath
	if rel != "." {
		path = l.ModPath + "/" + filepath.ToSlash(rel)
	}

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		// Respect build constraints (//go:build lines and _GOOS suffixes)
		// for the host platform, like the compiler does — otherwise
		// platform-split files (e.g. graph's mmap pair) both land in the
		// package and redeclare their shared surface.
		if ok, err := build.Default.MatchFile(dir, name); err != nil || !ok {
			continue
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no Go source in %s", dir)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	var typeErrs []error
	conf := types.Config{
		Importer: l.imp,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, _ := conf.Check(path, l.Fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("analysis: type-checking %s: %v", path, typeErrs[0])
	}
	return &Package{Path: path, Dir: dir, Fset: l.Fset, Files: files, Types: tpkg, Info: info}, nil
}
