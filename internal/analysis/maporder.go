package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// AnalyzerMapOrder flags the canonical cross-rank divergence bug: data that
// leaves a map in iteration order and reaches an order-sensitive sink. Go
// randomizes map iteration on purpose, so any byte stream, message, or
// floating-point sum built in that order differs run to run and rank to
// rank — exactly the silent nondeterminism the bit-identical contract
// (TestWorkerDeterminism, the transport conformance suite) exists to rule
// out, but can only catch on graphs the tests happen to cover.
//
// The analyzer runs a small taint walk per function, in source order:
//
//   - ranging over a map (or over maps.Keys/Values/All) opens a map-order
//     context; a slice appended to inside that context is tainted, and
//     ranging over a tainted slice reopens the context;
//   - a sort.*/slices.Sort* call over a tainted value launders it — that is
//     the sanctioned fix, and the idiom the codebase already uses
//     (collect keys → sort.Ints → iterate);
//   - inside a context, three sinks are flagged: wire.Buffer Put* encodes,
//     comm sends and collectives, and compound float accumulation;
//   - writes indexed by the loop key (acc[k] = v, m2[k]++) are exempt:
//     keyed stores build a keyed structure whose content does not depend
//     on visit order.
//
// The walk is intraprocedural; an encode buried behind a helper call is
// out of reach and must be caught at the helper's own map range.
var AnalyzerMapOrder = &Analyzer{
	Name: "maporder",
	Doc: "flags map-iteration order reaching an order-sensitive sink (wire encode, " +
		"comm send/collective, float accumulation) without an intervening deterministic sort",
	Run: runMapOrder,
}

func runMapOrder(p *Pass) {
	for _, file := range p.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			w := &moWalker{pass: p, tainted: make(map[types.Object]bool)}
			w.walkStmt(fd.Body, nil)
		}
	}
}

// moCtx is one open map-order context: the body of a range whose visit
// order is nondeterministic.
type moCtx struct {
	what    string                // human description for the finding message
	exempt  map[types.Object]bool // loop keys: writes indexed by these are keyed, not ordered
	sources map[types.Object]bool // loop variables carrying the iteration order
}

type moWalker struct {
	pass    *Pass
	tainted map[types.Object]bool
}

func (w *moWalker) walkStmt(s ast.Stmt, ctx *moCtx) {
	switch st := s.(type) {
	case nil:
	case *ast.BlockStmt:
		for _, sub := range st.List {
			w.walkStmt(sub, ctx)
		}
	case *ast.IfStmt:
		w.walkStmt(st.Init, ctx)
		w.checkExpr(st.Cond, ctx)
		w.walkStmt(st.Body, ctx)
		w.walkStmt(st.Else, ctx)
	case *ast.ForStmt:
		w.walkStmt(st.Init, ctx)
		w.checkExpr(st.Cond, ctx)
		w.walkStmt(st.Post, ctx)
		w.walkStmt(st.Body, ctx)
	case *ast.RangeStmt:
		w.checkExpr(st.X, ctx)
		inner := w.rangeCtx(st, ctx)
		if inner == nil {
			inner = ctx // deterministic loop nested in an outer context
		}
		w.walkStmt(st.Body, inner)
	case *ast.SwitchStmt:
		w.walkStmt(st.Init, ctx)
		w.checkExpr(st.Tag, ctx)
		for _, cc := range st.Body.List {
			for _, sub := range cc.(*ast.CaseClause).Body {
				w.walkStmt(sub, ctx)
			}
		}
	case *ast.TypeSwitchStmt:
		w.walkStmt(st.Init, ctx)
		w.walkStmt(st.Assign, ctx)
		for _, cc := range st.Body.List {
			for _, sub := range cc.(*ast.CaseClause).Body {
				w.walkStmt(sub, ctx)
			}
		}
	case *ast.SelectStmt:
		for _, cc := range st.Body.List {
			for _, sub := range cc.(*ast.CommClause).Body {
				w.walkStmt(sub, ctx)
			}
		}
	case *ast.LabeledStmt:
		w.walkStmt(st.Stmt, ctx)
	case *ast.ExprStmt:
		w.checkExpr(st.X, ctx)
	case *ast.AssignStmt:
		w.handleAssign(st, ctx)
	case *ast.IncDecStmt:
		w.checkExpr(st.X, ctx)
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						w.checkExpr(e, ctx)
					}
				}
			}
		}
	case *ast.GoStmt:
		for _, arg := range st.Call.Args {
			w.checkExpr(arg, ctx)
		}
		if fl, ok := ast.Unparen(st.Call.Fun).(*ast.FuncLit); ok {
			w.walkStmt(fl.Body, ctx)
		}
	case *ast.DeferStmt:
		w.checkExpr(st.Call, ctx)
	case *ast.SendStmt:
		w.checkExpr(st.Chan, ctx)
		w.checkExpr(st.Value, ctx)
	case *ast.ReturnStmt:
		for _, e := range st.Results {
			w.checkExpr(e, ctx)
		}
	}
}

// rangeCtx decides whether st iterates in a nondeterministic order and, if
// so, builds the context for its body. nil means the loop is deterministic.
func (w *moWalker) rangeCtx(st *ast.RangeStmt, outer *moCtx) *moCtx {
	info := w.pass.Info
	what := ""
	keyExempt := false
	if t := info.TypeOf(st.X); t != nil {
		if _, ok := t.Underlying().(*types.Map); ok {
			what = "map iteration"
			keyExempt = true
		}
	}
	if what == "" {
		if call, ok := ast.Unparen(st.X).(*ast.CallExpr); ok && isMapsIterCall(info, call) {
			what = "map-iterator (maps.Keys/Values/All) iteration"
			keyExempt = true
		}
	}
	if what == "" && exprMentionsObj(info, st.X, w.tainted) {
		what = "iteration over a slice collected in map order"
	}
	if what == "" {
		return nil
	}
	ctx := &moCtx{
		what:    what,
		exempt:  make(map[types.Object]bool),
		sources: make(map[types.Object]bool),
	}
	if outer != nil {
		for o := range outer.sources {
			ctx.sources[o] = true
		}
	}
	bind := func(e ast.Expr, exempt bool) {
		id, ok := e.(*ast.Ident)
		if !ok || id.Name == "_" {
			return
		}
		if obj := objOf(info, id); obj != nil {
			ctx.sources[obj] = true
			if exempt {
				ctx.exempt[obj] = true
			}
		}
	}
	if st.Key != nil {
		bind(st.Key, keyExempt)
	}
	if st.Value != nil {
		bind(st.Value, false)
	}
	return ctx
}

// handleAssign checks the statement's expressions for sinks, then updates
// the taint set: a destination assigned from order-carrying data becomes
// tainted, a destination assigned a freshly sorted value becomes clean, and
// key-indexed stores pass untouched.
func (w *moWalker) handleAssign(st *ast.AssignStmt, ctx *moCtx) {
	info := w.pass.Info
	for _, rhs := range st.Rhs {
		w.checkExpr(rhs, ctx)
	}
	for i, lhs := range st.Lhs {
		var rhs ast.Expr
		switch {
		case len(st.Lhs) == len(st.Rhs):
			rhs = st.Rhs[i]
		case len(st.Rhs) == 1:
			rhs = st.Rhs[0]
		}
		obj := taintTarget(info, lhs)
		if obj == nil {
			continue
		}
		_, indexes, _ := analyzeWriteTarget(info, lhs)
		keyed := false
		if ctx != nil {
			for _, idx := range indexes {
				if exprMentionsObj(info, idx, ctx.exempt) {
					keyed = true
					break
				}
			}
		}
		if ctx != nil && !keyed && isFloatAccum(info, st, lhs) {
			w.pass.Reportf(lhs.Pos(),
				"float accumulation inside %s: float addition is order-dependent and the visit order is nondeterministic; accumulate over sorted keys instead", ctx.what)
		}
		if rhs != nil {
			if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok {
				if isSortCall(info, call) {
					// e.g. keys = slices.Sorted(maps.Keys(m)): the result
					// carries a deterministic order.
					delete(w.tainted, obj)
					continue
				}
				if isMapsIterCall(info, call) {
					// A stored map iterator carries map order wherever it is
					// consumed.
					w.tainted[obj] = true
					continue
				}
			}
		}
		ordered := exprMentionsObj(info, rhs, w.tainted) ||
			(ctx != nil && exprMentionsObj(info, rhs, ctx.sources))
		switch {
		case ordered && !keyed:
			w.tainted[obj] = true
		case !ordered && st.Tok == token.ASSIGN && len(indexes) == 0:
			// Plain overwrite with order-free data launders the name.
			delete(w.tainted, obj)
		}
	}
}

// checkExpr scans e for sink calls (reported when ctx is open) and for sort
// calls (which launder their arguments wherever they appear).
func (w *moWalker) checkExpr(e ast.Expr, ctx *moCtx) {
	if e == nil {
		return
	}
	info := w.pass.Info
	ast.Inspect(e, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			// A literal defined here usually runs here (same convention as
			// collectivesym): scan its body under the current context.
			w.walkStmt(x.Body, ctx)
			return false
		case *ast.CallExpr:
			if isSortCall(info, x) {
				for _, arg := range x.Args {
					w.untaintExpr(arg)
				}
				return true
			}
			if ctx == nil {
				return true
			}
			if fn := calleeFunc(info, x); fn != nil && fn.Pkg() != nil {
				path := fn.Pkg().Path()
				if strings.HasPrefix(fn.Name(), "Put") &&
					(path == "internal/wire" || strings.HasSuffix(path, "/internal/wire")) {
					w.pass.Reportf(x.Pos(),
						"wire encode (%s) inside %s: the visit order is nondeterministic and leaks into the byte stream; collect and sort keys before encoding", fn.Name(), ctx.what)
					return true
				}
			}
			for name := range collectiveNames {
				if isCommCalleeFunc(info, x, name) {
					w.pass.Reportf(x.Pos(),
						"comm.%s inside %s: the visit order is nondeterministic, so ranks issue collectives in divergent order; sort first", name, ctx.what)
					return true
				}
			}
			if isCommCallee(info, x, "Send") {
				w.pass.Reportf(x.Pos(),
					"comm send inside %s: messages leave in nondeterministic order; sort the iteration first", ctx.what)
			}
		}
		return true
	})
}

// untaintExpr removes every object mentioned in e from the taint set (the
// expression was just handed to a deterministic sort).
func (w *moWalker) untaintExpr(e ast.Expr) {
	info := w.pass.Info
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := objOf(info, id); obj != nil {
				delete(w.tainted, obj)
			}
		}
		return true
	})
}

// taintTarget resolves the object that carries taint for a destination: the
// named container at the top of the chain (the field object for s.keys, the
// slice/map object for m[k] or xs[i:j]).
func taintTarget(info *types.Info, e ast.Expr) types.Object {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		if x.Name == "_" {
			return nil
		}
		return objOf(info, x)
	case *ast.SelectorExpr:
		return objOf(info, x.Sel)
	case *ast.IndexExpr:
		return taintTarget(info, x.X)
	case *ast.SliceExpr:
		return taintTarget(info, x.X)
	case *ast.StarExpr:
		return taintTarget(info, x.X)
	}
	return nil
}

// isFloatAccum reports whether st is a compound float accumulation
// (+=, -=, *=, /=) into lhs.
func isFloatAccum(info *types.Info, st *ast.AssignStmt, lhs ast.Expr) bool {
	switch st.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
	default:
		return false
	}
	t := info.TypeOf(lhs)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
