package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// NoallocDirective marks a function whose body must stay free of
// alloc-inducing constructs in the steady state. The analyzer verifies the
// claim statically; the noalloc_test.go harnesses in the annotated packages
// verify it at runtime with testing.AllocsPerRun ceilings of zero, over the
// same function list (NoallocFuncs keeps the two in lockstep).
const NoallocDirective = "//perf:noalloc"

// AnalyzerNoAlloc enforces the //perf:noalloc annotation regime on the hot
// paths whose zero-allocation behavior the performance work depends on
// (the sweep kernels, scanCandidates, the pooled encode paths). Inside an
// annotated function it flags every construct that allocates, or that the
// compiler may be forced to heap-allocate:
//
//   - make, new, slice/map composite literals, and &T{} literals;
//   - append through any destination other than the appended slice itself
//     (`x = append(x, ...)` and `x = append(x[:0], ...)` are allowed: they
//     reuse the backing array once steady-state capacity is reached, the
//     same contract the AllocsPerRun ceilings measure);
//   - function literals, go, and defer (closure and frame allocation);
//   - calls into fmt and errors (formatting allocates);
//   - string<->[]byte conversions and string concatenation;
//   - passing a concrete value to an interface-typed parameter (boxing).
//
// The check is intraprocedural: a call to an unannotated helper is not
// followed, so the runtime harness remains the backstop for allocations
// hiding behind calls. Error paths that allocate (wire.Reader.fail) belong
// in unannotated helpers for exactly this reason.
var AnalyzerNoAlloc = &Analyzer{
	Name: "noalloc",
	Doc: "verifies //perf:noalloc-annotated functions contain no alloc-inducing " +
		"constructs (make/append-growth/boxing/closure capture); paired with the " +
		"AllocsPerRun harnesses that bound the same functions at runtime",
	Run: runNoAlloc,
}

func runNoAlloc(p *Pass) {
	for _, file := range p.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !hasNoallocDirective(fd.Doc) {
				continue
			}
			checkNoAllocBody(p, fd)
		}
	}
}

// hasNoallocDirective reports whether doc carries the //perf:noalloc
// directive (alone on its line, optionally followed by an explanation).
func hasNoallocDirective(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if c.Text == NoallocDirective || strings.HasPrefix(c.Text, NoallocDirective+" ") {
			return true
		}
	}
	return false
}

func checkNoAllocBody(p *Pass, fd *ast.FuncDecl) {
	info := p.Info
	name := fd.Name.Name
	selfAppends := collectSelfAppends(fd.Body)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			checkNoAllocCall(p, name, x, selfAppends)
		case *ast.CompositeLit:
			if t := info.TypeOf(x); t != nil {
				switch t.Underlying().(type) {
				case *types.Slice:
					p.Reportf(x.Pos(), "%s is //perf:noalloc but builds a slice literal", name)
				case *types.Map:
					p.Reportf(x.Pos(), "%s is //perf:noalloc but builds a map literal", name)
				}
			}
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				if _, ok := ast.Unparen(x.X).(*ast.CompositeLit); ok {
					p.Reportf(x.Pos(), "%s is //perf:noalloc but takes the address of a composite literal (heap escape)", name)
				}
			}
		case *ast.FuncLit:
			p.Reportf(x.Pos(), "%s is //perf:noalloc but builds a function literal (closure allocation)", name)
			return false
		case *ast.GoStmt:
			p.Reportf(x.Pos(), "%s is //perf:noalloc but starts a goroutine", name)
		case *ast.DeferStmt:
			p.Reportf(x.Pos(), "%s is //perf:noalloc but defers a call (defer frame allocation)", name)
		case *ast.BinaryExpr:
			if x.Op == token.ADD {
				if t := info.TypeOf(x); t != nil {
					if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
						p.Reportf(x.Pos(), "%s is //perf:noalloc but concatenates strings", name)
					}
				}
			}
		}
		return true
	})
}

// collectSelfAppends records the append calls of the form
// `x = append(x, ...)` or `x = append(x[:0], ...)` — reuse of the
// destination's own backing array, the one append shape a noalloc function
// may contain.
func collectSelfAppends(body *ast.BlockStmt) map[*ast.CallExpr]bool {
	self := make(map[*ast.CallExpr]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Tok != token.ASSIGN || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok || !isBuiltinAppend(call) || len(call.Args) == 0 {
				continue
			}
			base := ast.Unparen(call.Args[0])
			for {
				se, ok := base.(*ast.SliceExpr)
				if !ok {
					break
				}
				base = ast.Unparen(se.X)
			}
			if types.ExprString(base) == types.ExprString(as.Lhs[i]) {
				self[call] = true
			}
		}
		return true
	})
	return self
}

func isBuiltinAppend(call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "append"
}

func checkNoAllocCall(p *Pass, name string, call *ast.CallExpr, selfAppends map[*ast.CallExpr]bool) {
	info := p.Info
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin || info.Uses[id] == nil {
			switch id.Name {
			case "make", "new":
				p.Reportf(call.Pos(), "%s is //perf:noalloc but calls %s", name, id.Name)
				return
			case "append":
				if !selfAppends[call] {
					p.Reportf(call.Pos(), "%s is //perf:noalloc but appends to a different destination; only self-appends (x = append(x, ...)) reuse the backing array", name)
				}
				return
			}
		}
	}
	// Conversions: string<->[]byte copies.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		dst, src := tv.Type, info.TypeOf(call.Args[0])
		if src != nil {
			if (isStringType(dst) && isByteSlice(src)) || (isByteSlice(dst) && isStringType(src)) {
				p.Reportf(call.Pos(), "%s is //perf:noalloc but converts between string and []byte (copies the bytes)", name)
			}
		}
		return
	}
	fn := calleeFunc(info, call)
	if fn == nil {
		return
	}
	if pkg := fn.Pkg(); pkg != nil && (pkg.Path() == "fmt" || pkg.Path() == "errors") {
		p.Reportf(call.Pos(), "%s is //perf:noalloc but calls %s.%s (formatting allocates)", name, pkg.Name(), fn.Name())
		return
	}
	// Interface boxing: a concrete argument passed to an interface-typed
	// parameter is converted to an interface value, which may allocate.
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	np := params.Len()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= np-1:
			if s, ok := params.At(np - 1).Type().(*types.Slice); ok {
				pt = s.Elem()
			}
		case i < np:
			pt = params.At(i).Type()
		}
		if pt == nil {
			continue
		}
		if _, isIface := pt.Underlying().(*types.Interface); !isIface {
			continue
		}
		at := info.TypeOf(arg)
		if at == nil || at == types.Typ[types.UntypedNil] {
			continue
		}
		if b, ok := at.(*types.Basic); ok && b.Kind() == types.UntypedNil {
			continue
		}
		if _, argIface := at.Underlying().(*types.Interface); argIface {
			continue
		}
		p.Reportf(arg.Pos(), "%s is //perf:noalloc but passes a concrete value to an interface parameter of %s (boxing may allocate)", name, fn.Name())
	}
}

func isStringType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

// NoallocFuncs returns the //perf:noalloc-annotated functions declared in
// the non-test Go files of dir, as "Func" or "Recv.Method" strings in
// sorted order. The runtime harnesses use it to keep their AllocsPerRun
// driver tables in lockstep with the annotations the analyzer verifies: a
// new annotation without a driver (or vice versa) fails the harness test.
func NoallocFuncs(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	var out []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || !hasNoallocDirective(fd.Doc) {
				continue
			}
			fn := fd.Name.Name
			if fd.Recv != nil && len(fd.Recv.List) > 0 {
				if rn := recvTypeName(fd.Recv.List[0].Type); rn != "" {
					fn = rn + "." + fn
				}
			}
			out = append(out, fn)
		}
	}
	sort.Strings(out)
	return out, nil
}

func recvTypeName(e ast.Expr) string {
	switch t := e.(type) {
	case *ast.StarExpr:
		return recvTypeName(t.X)
	case *ast.Ident:
		return t.Name
	case *ast.IndexExpr:
		return recvTypeName(t.X)
	case *ast.IndexListExpr:
		return recvTypeName(t.X)
	}
	return ""
}
