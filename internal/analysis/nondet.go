package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// AnalyzerNonDet keeps nondeterministic inputs out of the solver: results
// must be bit-identical across runs, worker counts, and transports, so
// algorithm code must not read sources whose value varies between
// executions. Flagged in solver packages (everything except the allowlist
// below):
//
//   - wall-clock reads and timers: time.Now, time.Since, time.Sleep,
//     time.After/AfterFunc/Tick/NewTicker/NewTimer. Sanctioned timing goes
//     through internal/trace (trace.Now/trace.Since/trace.Timer), keeping
//     every wall-clock read auditable in one package that never feeds
//     algorithmic decisions;
//   - the process-global math/rand source (rand.Intn, rand.Float64, ...):
//     globally seeded, shared across goroutines, unreproducible.
//     Constructing an explicitly seeded generator (rand.New,
//     rand.NewSource, rand.NewPCG, rand.NewChaCha8) and calling its
//     methods is fine — that is how internal/gen builds reproducible
//     graphs;
//   - select statements with two or more channel cases: when several cases
//     are ready the runtime picks one pseudo-randomly, so control flow
//     arbitrated by channel readiness is nondeterministic by construction.
//
// Allowlisted: internal/trace (the sanctioned clock/diagnostics sink),
// internal/expt (the benchmark harness reports wall time), internal/comm
// (the robustness layer — timeouts, retries, chaos injection — is
// wall-clock by design and sits below the deterministic algorithm), and
// the cmd/ drivers. Test files are outside the suite's scope entirely.
var AnalyzerNonDet = &Analyzer{
	Name: "nondet",
	Doc: "flags nondeterministic sources in solver packages: time.Now and friends, " +
		"the global math/rand source, and multi-case channel selects",
	Run: runNonDet,
}

// nondetTimeFuncs are the time-package entry points that read the wall
// clock or start wall-clock-driven machinery.
var nondetTimeFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTicker": true, "NewTimer": true,
}

// nondetRandCtors are the math/rand and math/rand/v2 package-level
// functions that construct explicitly seeded state rather than reading the
// global source.
var nondetRandCtors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

// nondetExemptPaths are the package suffixes allowed to touch wall clock
// and global randomness (see the analyzer doc).
// internal/loadgen is exempt by design: its pacing (Poisson sleeps) and
// latency measurements are wall-clock by nature, while everything that
// must be reproducible lives in the clock-free Plan/Replay layer.
var nondetExemptPaths = []string{"internal/trace", "internal/expt", "internal/comm", "internal/loadgen"}

func nondetExempt(path string) bool {
	if strings.Contains(path, "/cmd/") || strings.HasPrefix(path, "cmd/") {
		return true
	}
	for _, sfx := range nondetExemptPaths {
		if path == sfx || strings.HasSuffix(path, "/"+sfx) {
			return true
		}
	}
	return false
}

func runNonDet(p *Pass) {
	if nondetExempt(p.Path) {
		return
	}
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.CallExpr:
				checkNonDetCall(p, x)
			case *ast.SelectStmt:
				nready := 0
				for _, cc := range x.Body.List {
					if cc.(*ast.CommClause).Comm != nil {
						nready++
					}
				}
				if nready >= 2 {
					p.Reportf(x.Pos(),
						"select with %d channel cases: the runtime picks among ready cases pseudo-randomly, so control flow arbitrated by channel readiness is nondeterministic", nready)
				}
			}
			return true
		})
	}
}

func checkNonDetCall(p *Pass, call *ast.CallExpr) {
	fn := calleeFunc(p.Info, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return // methods (e.g. on an explicitly seeded *rand.Rand) are fine
	}
	switch fn.Pkg().Path() {
	case "time":
		if nondetTimeFuncs[fn.Name()] {
			p.Reportf(call.Pos(),
				"time.%s in solver code: wall-clock values diverge across runs and ranks; report timings through internal/trace (trace.Now/trace.Since) so every sanctioned read is auditable", fn.Name())
		}
	case "math/rand", "math/rand/v2":
		if !nondetRandCtors[fn.Name()] {
			p.Reportf(call.Pos(),
				"rand.%s reads the process-global random source: globally seeded and shared across goroutines, so results are unreproducible; use a rand.New(rand.NewSource(seed)) owned by the caller", fn.Name())
		}
	}
}
