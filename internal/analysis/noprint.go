package analysis

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"
)

// AnalyzerNoPrint keeps the library quiet: packages under internal/ must
// not write to process-global streams. The experiment harness and the
// commands own stdout (their tables ARE the product), so a stray
// fmt.Println deep in the core corrupts piped experiment output — and in
// a multi-rank world, p goroutines interleave their prints into garbage.
//
// Flagged inside internal/* (internal/trace itself excepted — it is the
// sanctioned sink, with an injectable writer):
//
//   - calls to fmt.Print, fmt.Printf, fmt.Println (implicit stdout);
//   - any import of the log package (implicit stderr, global state).
//
// Writer-explicit printing (fmt.Fprintf(w, ...)) is fine — that is the
// pattern the experiment tables use. Diagnostics wanted at runtime go
// through trace.Logf, which tests can redirect.
var AnalyzerNoPrint = &Analyzer{
	Name: "noprint",
	Doc: "forbids fmt.Print* and the log package in internal/* library code " +
		"(route diagnostics through internal/trace, whose writer is injectable)",
	Run: runNoPrint,
}

// printFuncs are the fmt functions that write to process-global stdout.
var printFuncs = map[string]bool{"Print": true, "Printf": true, "Println": true}

func runNoPrint(p *Pass) {
	if !strings.Contains(p.Path, "/internal/") || strings.HasSuffix(p.Path, "/internal/trace") {
		return
	}
	for _, file := range p.Files {
		for _, imp := range file.Imports {
			if path, err := strconv.Unquote(imp.Path.Value); err == nil && path == "log" {
				p.Reportf(imp.Pos(), "log package in library code: it writes to a process-global stream; route diagnostics through internal/trace")
			}
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok || !printFuncs[sel.Sel.Name] {
				return true
			}
			if !isFmtPkg(p.Info, sel) {
				return true
			}
			p.Reportf(call.Pos(), "fmt.%s writes to stdout from library code: with p ranks this interleaves into garbage and corrupts piped output; use trace.Logf or take an io.Writer", sel.Sel.Name)
			return true
		})
	}
}

// isFmtPkg reports whether sel's qualifier is the fmt package.
func isFmtPkg(info *types.Info, sel *ast.SelectorExpr) bool {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	if info != nil {
		if pn, ok := info.Uses[id].(*types.PkgName); ok {
			return pn.Imported().Path() == "fmt"
		}
	}
	return id.Name == "fmt"
}
