package analysis

import (
	"go/ast"
	"go/types"
)

// AnalyzerParForShare enforces the worker-pool write discipline that keeps
// parallel sweeps bit-identical to their serial counterparts: a ParFor
// kernel (or a plain `go` closure) may write only state it owns — variables
// it declares itself, or slots of captured slices indexed by a value
// derived from the kernel's chunk/worker parameters. Anything else is a
// data race or a nondeterministic combine, the exact class
// TestWorkerDeterminism can only catch on graphs it happens to run
// (Halappanavar et al.'s hazard of parallelizing vertex sweeps).
//
// Kernels are found three ways, package-wide:
//
//   - function literals passed directly to a parFor/ParFor call;
//   - function literals assigned to a variable or field that is later
//     handed to parFor/ParFor (the stage-kernel idiom of internal/core,
//     where newStage builds s.hubKernel and sweep dispatches it);
//   - function literals launched with `go`.
//
// For each kernel, the kernel's parameters seed a derived-value fixpoint
// (closeOverAssignments), so `lo, hi := chunkSpan(n, nc, chunk)` makes lo
// and hi chunk-derived and writes to s.props[i] with i in [lo, hi) pass.
// Captured-map inserts are always flagged: concurrent map writes race
// regardless of key.
var AnalyzerParForShare = &Analyzer{
	Name: "parforshare",
	Doc: "flags ParFor kernels and go-closures writing captured variables, maps, or " +
		"slice elements not indexed by a value derived from the kernel's chunk/worker parameters",
	Run: runParForShare,
}

// kernelUnit is one function literal analyzed under kernel write rules.
type kernelUnit struct {
	lit  *ast.FuncLit
	desc string
}

func runParForShare(p *Pass) {
	kernelNames := make(map[string]bool)
	seen := make(map[*ast.FuncLit]bool)
	var units []kernelUnit
	add := func(fl *ast.FuncLit, desc string) {
		if !seen[fl] {
			seen[fl] = true
			units = append(units, kernelUnit{fl, desc})
		}
	}
	// Pass 1: direct literal kernels, names dispatched to parFor, and go
	// closures.
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.CallExpr:
				if !isParForCall(x) {
					return true
				}
				for _, arg := range x.Args {
					switch a := ast.Unparen(arg).(type) {
					case *ast.FuncLit:
						add(a, "ParFor kernel")
					case *ast.Ident:
						kernelNames[a.Name] = true
					case *ast.SelectorExpr:
						kernelNames[a.Sel.Name] = true
					}
				}
			case *ast.GoStmt:
				if fl, ok := ast.Unparen(x.Call.Fun).(*ast.FuncLit); ok {
					add(fl, "goroutine closure")
				}
			}
			return true
		})
	}
	// Pass 2: literals assigned (anywhere in the package) to a name that
	// pass 1 saw dispatched to parFor — internal/core builds its kernels in
	// newStage and invokes them from other files.
	if len(kernelNames) > 0 {
		for _, file := range p.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				as, ok := n.(*ast.AssignStmt)
				if !ok || len(as.Lhs) != len(as.Rhs) {
					return true
				}
				for i, lhs := range as.Lhs {
					fl, ok := ast.Unparen(as.Rhs[i]).(*ast.FuncLit)
					if !ok {
						continue
					}
					name := ""
					switch l := ast.Unparen(lhs).(type) {
					case *ast.Ident:
						name = l.Name
					case *ast.SelectorExpr:
						name = l.Sel.Name
					}
					if kernelNames[name] {
						add(fl, "ParFor kernel")
					}
				}
				return true
			})
		}
	}
	for _, u := range units {
		checkKernelWrites(p, u)
	}
}

func checkKernelWrites(p *Pass, u kernelUnit) {
	info := p.Info
	derived := make(map[types.Object]bool)
	if u.lit.Type.Params != nil {
		for _, field := range u.lit.Type.Params.List {
			for _, name := range field.Names {
				if obj := info.Defs[name]; obj != nil {
					derived[obj] = true
				}
			}
		}
	}
	closeOverAssignments(info, u.lit.Body, derived)
	ast.Inspect(u.lit.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range st.Lhs {
				checkKernelWrite(p, u, derived, lhs)
			}
		case *ast.IncDecStmt:
			checkKernelWrite(p, u, derived, st.X)
		}
		return true
	})
}

func checkKernelWrite(p *Pass, u kernelUnit, derived map[types.Object]bool, lhs ast.Expr) {
	info := p.Info
	root, indexes, mapWrite := analyzeWriteTarget(info, lhs)
	if root == nil || root.Name == "_" {
		return
	}
	obj := objOf(info, root)
	if obj == nil {
		return
	}
	if declaredWithin(obj, u.lit) {
		return // the kernel's own state
	}
	target := types.ExprString(lhs)
	if mapWrite {
		p.Reportf(lhs.Pos(),
			"%s inserts into captured map %s: concurrent map writes race regardless of key; collect per-chunk and merge on the caller", u.desc, target)
		return
	}
	if len(indexes) == 0 {
		p.Reportf(lhs.Pos(),
			"%s writes captured variable %s: kernels run concurrently, so writes must go to per-chunk or per-worker state combined by the caller in chunk order", u.desc, target)
		return
	}
	for _, idx := range indexes {
		if exprMentionsObj(info, idx, derived) {
			return // slot is a function of the kernel's parameters
		}
	}
	p.Reportf(lhs.Pos(),
		"%s writes %s at an index not derived from the kernel's chunk/worker parameters: overlapping slots race and combine nondeterministically", u.desc, target)
}
