package analysis

import (
	"go/ast"
	"go/types"
)

// AnalyzerRecvAlias is a heuristic aliasing check on payloads returned by
// Recv. The Comm contract says nothing about who owns the returned []byte:
// the in-process transport hands out the only copy of the payload, and a
// future zero-copy transport may hand out a buffer shared with the sender.
// Receivers must therefore treat the slice as read-only and short-lived —
// decode it (wire.NewReader copies what it returns) and move on.
//
// Within each function the analyzer tracks variables bound to a Recv
// result (including direct aliases, x := got) and flags:
//
//	got[i] = v          // element store mutates the transport's buffer
//	got[i] += v         // ditto, via compound assignment or ++/--
//	copy(got, src)      // bulk overwrite of the buffer
//	s.field = got       // retention in a struct outlives the exchange
//	pkgVar = got        // retention in package state, same problem
//
// Forwarding the buffer (Send, append-to-other, returning it) and reading
// from it are fine. The check is intra-function and heuristic by design;
// a deliberate in-place decode can be waived with
// //lint:ignore recvalias <reason>.
var AnalyzerRecvAlias = &Analyzer{
	Name: "recvalias",
	Doc: "flags mutation or long-lived retention of []byte payloads returned by Recv " +
		"(transports may hand out the only copy, or a shared buffer)",
	Run: runRecvAlias,
}

func runRecvAlias(p *Pass) {
	for _, file := range p.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkRecvAliasing(p, fd.Body)
		}
	}
}

func checkRecvAliasing(p *Pass, body *ast.BlockStmt) {
	tracked := recvBoundObjects(p, body)
	if len(tracked) == 0 {
		return
	}
	isTracked := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return false
		}
		obj := p.Info.Uses[id]
		return obj != nil && tracked[obj]
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range st.Lhs {
				if ix, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok && isTracked(ix.X) {
					p.Reportf(lhs.Pos(), "element store into a Recv payload: the transport may have handed out its only (or a shared) copy; decode into a fresh buffer instead")
				}
			}
			for i, rhs := range st.Rhs {
				if !isTracked(rhs) || i >= len(st.Lhs) {
					continue
				}
				switch lhs := ast.Unparen(st.Lhs[i]).(type) {
				case *ast.SelectorExpr:
					p.Reportf(rhs.Pos(), "Recv payload retained in %s: the buffer belongs to the transport exchange; copy it if it must outlive this call", exprText(lhs))
				case *ast.Ident:
					if obj := p.Info.Uses[lhs]; obj != nil && isPackageLevel(obj) {
						p.Reportf(rhs.Pos(), "Recv payload retained in package variable %s: copy it if it must outlive this call", lhs.Name)
					}
				}
			}
		case *ast.IncDecStmt:
			if ix, ok := ast.Unparen(st.X).(*ast.IndexExpr); ok && isTracked(ix.X) {
				p.Reportf(st.Pos(), "element store into a Recv payload: the transport may have handed out its only (or a shared) copy; decode into a fresh buffer instead")
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(st.Fun).(*ast.Ident); ok && id.Name == "copy" && len(st.Args) == 2 && isTracked(st.Args[0]) {
				if _, isBuiltin := p.Info.Uses[id].(*types.Builtin); isBuiltin || p.Info.Uses[id] == nil {
					p.Reportf(st.Pos(), "copy into a Recv payload overwrites the transport's buffer; allocate a destination instead")
				}
			}
		}
		return true
	})
}

// recvBoundObjects collects the objects bound to Recv payloads in body:
// the first LHS of `got, err := c.Recv(...)` plus one level of direct
// aliases (`data = got`), iterated to a fixpoint so chains are caught.
func recvBoundObjects(p *Pass, body *ast.BlockStmt) map[types.Object]bool {
	tracked := make(map[types.Object]bool)
	defObj := func(id *ast.Ident) types.Object {
		if obj := p.Info.Defs[id]; obj != nil {
			return obj
		}
		return p.Info.Uses[id]
	}
	for changed := true; changed; {
		changed = false
		ast.Inspect(body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			// got, err := c.Recv(src, tag)
			if len(as.Rhs) == 1 && len(as.Lhs) == 2 {
				if call, isCall := ast.Unparen(as.Rhs[0]).(*ast.CallExpr); isCall && isCommCallee(p.Info, call, "Recv") {
					if id, isIdent := as.Lhs[0].(*ast.Ident); isIdent && id.Name != "_" {
						if obj := defObj(id); obj != nil && !tracked[obj] {
							tracked[obj] = true
							changed = true
						}
					}
				}
			}
			// alias := got  /  alias = got
			if len(as.Rhs) == len(as.Lhs) {
				for i, rhs := range as.Rhs {
					rid, okR := ast.Unparen(rhs).(*ast.Ident)
					lid, okL := as.Lhs[i].(*ast.Ident)
					if !okR || !okL || lid.Name == "_" {
						continue
					}
					src := p.Info.Uses[rid]
					if src == nil || !tracked[src] {
						continue
					}
					if obj := defObj(lid); obj != nil && !tracked[obj] {
						tracked[obj] = true
						changed = true
					}
				}
			}
			return true
		})
	}
	return tracked
}

func isPackageLevel(obj types.Object) bool {
	return obj.Parent() != nil && obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope()
}

func exprText(sel *ast.SelectorExpr) string {
	if x, ok := sel.X.(*ast.Ident); ok {
		return x.Name + "." + sel.Sel.Name
	}
	return "a struct field"
}
