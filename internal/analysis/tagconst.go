package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// AnalyzerTagConst enforces the message-tag discipline documented in
// internal/comm: the tag argument of every Send/Recv must be a named
// constant whose name starts with "tag" (or "Tag"), never an int literal
// or a computed value. Matching on the receive side is by (source, tag),
// so an ad-hoc literal that collides with a registered tag silently
// cross-wires two protocols — the message is delivered to whichever Recv
// matches first, and the intended Recv blocks forever.
//
// The analyzer also audits the tag registry itself: within a package, two
// tag* constants must not share a value (checked across files, which is
// where duplicates actually slip in).
var AnalyzerTagConst = &Analyzer{
	Name: "tagconst",
	Doc: "requires Send/Recv tag arguments to be named tag* constants and " +
		"checks the package's tag registry for duplicate values",
	Run: runTagConst,
}

func runTagConst(p *Pass) {
	checkTagArgs(p)
	checkTagRegistry(p)
}

func checkTagArgs(p *Pass) {
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			var op string
			switch {
			case isCommCallee(p.Info, call, "Send") && len(call.Args) == 3:
				op = "Send"
			case isCommCallee(p.Info, call, "Recv") && len(call.Args) == 2:
				op = "Recv"
			default:
				return true
			}
			tagArg := ast.Unparen(call.Args[1])
			if !isNamedTagConst(p.Info, tagArg) {
				p.Reportf(tagArg.Pos(),
					"%s tag must be a named tag* constant from the tag registry, not %s (ad-hoc tags can collide and cross-wire message streams)",
					op, describeExpr(tagArg))
			}
			return true
		})
	}
}

// isNamedTagConst reports whether e is an identifier or selector that
// resolves to a constant named tag*/Tag*. Without type information it
// falls back to the name alone.
func isNamedTagConst(info *types.Info, e ast.Expr) bool {
	var id *ast.Ident
	switch x := e.(type) {
	case *ast.Ident:
		id = x
	case *ast.SelectorExpr:
		id = x.Sel
	default:
		return false
	}
	if !strings.HasPrefix(id.Name, "tag") && !strings.HasPrefix(id.Name, "Tag") {
		return false
	}
	if info == nil {
		return true
	}
	obj := info.Uses[id]
	if obj == nil {
		obj = info.Defs[id]
	}
	if obj == nil {
		return true // unresolved; trust the naming convention
	}
	_, isConst := obj.(*types.Const)
	return isConst
}

func describeExpr(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.BasicLit:
		return "the literal " + x.Value
	case *ast.Ident:
		return "the non-tag name " + x.Name
	default:
		return "a computed expression"
	}
}

// checkTagRegistry verifies that all package-level tag* integer constants
// have distinct values.
func checkTagRegistry(p *Pass) {
	type entry struct {
		name string
		pos  token.Pos
	}
	seen := make(map[string]entry) // exact constant value -> first declaration
	for _, file := range p.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.CONST {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					if !strings.HasPrefix(name.Name, "tag") && !strings.HasPrefix(name.Name, "Tag") {
						continue
					}
					cobj, ok := p.Info.Defs[name].(*types.Const)
					if !ok || cobj.Val().Kind() != constant.Int {
						continue
					}
					key := cobj.Val().ExactString()
					if prev, dup := seen[key]; dup {
						p.Reportf(name.Pos(),
							"tag registry collision: %s = %s duplicates %s (declared at %s); tags are the only demultiplexing key, so every tag* constant must be unique",
							name.Name, key, prev.name, p.Fset.Position(prev.pos))
					} else {
						seen[key] = entry{name.Name, name.Pos()}
					}
				}
			}
		}
	}
}
