// Package badalias is a negative fixture for the recvalias analyzer:
// mutation and retention of payloads returned by Recv.
package badalias

import "repro/internal/comm"

const tagBlob = 5

type cache struct{ last []byte }

// MutateInPlace flips a byte inside the transport's buffer.
func MutateInPlace(c comm.Comm, src int) ([]byte, error) {
	got, err := c.Recv(src, tagBlob)
	if err != nil {
		return nil, err
	}
	got[0] ^= 1 // want recvalias
	return got, nil
}

// RetainField parks the payload in long-lived struct state.
func RetainField(s *cache, c comm.Comm, src int) error {
	buf, err := c.Recv(src, tagBlob)
	if err != nil {
		return err
	}
	s.last = buf // want recvalias
	return nil
}

// AliasCopyInto shows the one-level alias tracking: the copy overwrites
// the Recv buffer through a second name.
func AliasCopyInto(c comm.Comm, src int, scratch []byte) error {
	got, err := c.Recv(src, tagBlob)
	if err != nil {
		return err
	}
	data := got
	copy(data, scratch) // want recvalias
	return nil
}

// ReadOnlyOK is the control case: decoding reads, never writes.
func ReadOnlyOK(c comm.Comm, src int) (byte, error) {
	got, err := c.Recv(src, tagBlob)
	if err != nil || len(got) == 0 {
		return 0, err
	}
	return got[0], nil
}
