// Package badcollective is a negative fixture for the collectivesym
// analyzer: collectives reachable only under rank-dependent control flow.
// Each `// want <analyzer>` comment marks an expected finding.
package badcollective

import "repro/internal/comm"

// RootOnlyBarrier is the textbook SPMD deadlock: rank 0 enters the
// Barrier, every other rank returns, and rank 0 blocks forever.
func RootOnlyBarrier(c comm.Comm) error {
	if c.Rank() == 0 {
		return comm.Barrier(c) // want collectivesym
	}
	return nil
}

// DerivedRank exercises the dataflow heuristic: the branch condition does
// not call Rank() itself, but holds a value derived from it.
func DerivedRank(c comm.Comm) (float64, error) {
	me := c.Rank()
	lowHalf := me < c.Size()/2
	if lowHalf {
		return comm.AllreduceFloat64Sum(c, 1) // want collectivesym
	}
	return 0, nil
}

// SwitchOnRank covers the switch form of the same bug.
func SwitchOnRank(c comm.Comm) ([][]byte, error) {
	switch c.Rank() {
	case 0:
		return comm.Allgather(c, nil) // want collectivesym
	default:
		return nil, nil
	}
}

// SymmetricOK is the control case: Size() is identical on every rank, so
// branching on it keeps the collective schedule symmetric.
func SymmetricOK(c comm.Comm) error {
	if c.Size() > 1 {
		return comm.Barrier(c)
	}
	return nil
}

// RootOnlyStreamingAlltoall covers the overlapped engine (PR 4): the
// streaming exchange is a collective like any other, and only rank 0
// entering it leaves every other rank's frames unanswered.
func RootOnlyStreamingAlltoall(c comm.Comm, out [][]byte) error {
	if c.Rank() == 0 {
		return comm.AlltoallvFunc(c, out, func(src int, payload []byte) error { return nil }) // want collectivesym
	}
	return nil
}

// EvenRanksFusedReduce branches the fused per-iteration reduction on a
// rank-derived value.
func EvenRanksFusedReduce(c comm.Comm) (comm.IterStats, error) {
	me := c.Rank()
	if me%2 == 0 {
		return comm.AllreduceIterStats(c, comm.IterStats{Moved: 1}) // want collectivesym
	}
	return comm.IterStats{}, nil
}

func halves(data []byte, n int) [][]byte {
	segs := make([][]byte, n)
	for i := 0; i < n; i++ {
		segs[i] = data[i*len(data)/n : (i+1)*len(data)/n]
	}
	return segs
}

func keepFirst(a, b []byte) []byte { return a }

// RootOnlyPipelinedRing guards the pipelined ring reduction.
func RootOnlyPipelinedRing(c comm.Comm, data []byte) ([]byte, error) {
	if c.Rank() == 0 {
		return comm.AllreduceBytesRingPipelined(c, data, 2, halves, keepFirst) // want collectivesym
	}
	return data, nil
}

// HotRankOnlyMigration covers the load rebalancer (PR 7): a donor-only
// migration exchange. The four migration rounds share one tag and rely on
// per-pair FIFO order, so a rank that skips the exchange desynchronizes
// the round framing for the entire world, not just itself.
func HotRankOnlyMigration(c comm.Comm, out [][]byte) error {
	if c.Rank() == 0 {
		return comm.MigrationExchange(c, out, func(src int, payload []byte) error { return nil }) // want collectivesym
	}
	return nil
}

// DerivedRankSeqMigration is the sequential-path variant behind a
// rank-derived condition.
func DerivedRankSeqMigration(c comm.Comm, out [][]byte) ([][]byte, error) {
	donor := c.Rank() < c.Size()/2
	if donor {
		return comm.MigrationExchangeSeq(c, out) // want collectivesym
	}
	return nil, nil
}

// RootOnlyWorkReduce guards the fused stats+work reduction that feeds the
// rebalancing trigger: ranks that skip it never learn the work vector and
// diverge on whether to migrate.
func RootOnlyWorkReduce(c comm.Comm, work []int64) (comm.IterStats, error) {
	if c.Rank() == 0 {
		return comm.AllreduceIterStatsWork(c, comm.IterStats{}, work) // want collectivesym
	}
	return comm.IterStats{}, nil
}

// SwitchOnRankSliceMax covers the sequential work-vector reduction.
func SwitchOnRankSliceMax(c comm.Comm, work []int64) ([]int64, error) {
	switch c.Rank() {
	case 0:
		return comm.AllreduceInt64SliceMax(c, work) // want collectivesym
	default:
		return work, nil
	}
}
