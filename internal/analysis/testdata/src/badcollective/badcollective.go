// Package badcollective is a negative fixture for the collectivesym
// analyzer: collectives reachable only under rank-dependent control flow.
// Each `// want <analyzer>` comment marks an expected finding.
package badcollective

import "repro/internal/comm"

// RootOnlyBarrier is the textbook SPMD deadlock: rank 0 enters the
// Barrier, every other rank returns, and rank 0 blocks forever.
func RootOnlyBarrier(c comm.Comm) error {
	if c.Rank() == 0 {
		return comm.Barrier(c) // want collectivesym
	}
	return nil
}

// DerivedRank exercises the dataflow heuristic: the branch condition does
// not call Rank() itself, but holds a value derived from it.
func DerivedRank(c comm.Comm) (float64, error) {
	me := c.Rank()
	lowHalf := me < c.Size()/2
	if lowHalf {
		return comm.AllreduceFloat64Sum(c, 1) // want collectivesym
	}
	return 0, nil
}

// SwitchOnRank covers the switch form of the same bug.
func SwitchOnRank(c comm.Comm) ([][]byte, error) {
	switch c.Rank() {
	case 0:
		return comm.Allgather(c, nil) // want collectivesym
	default:
		return nil, nil
	}
}

// SymmetricOK is the control case: Size() is identical on every rank, so
// branching on it keeps the collective schedule symmetric.
func SymmetricOK(c comm.Comm) error {
	if c.Size() > 1 {
		return comm.Barrier(c)
	}
	return nil
}
