// Package baderr is a negative fixture for the commerr analyzer: comm and
// graph-IO errors dropped in every form the analyzer recognizes.
package baderr

import (
	"bytes"
	"io"

	"repro/internal/comm"
	"repro/internal/graph"
)

const tagWork = 2

// DropStatement drops Barrier's error on the floor.
func DropStatement(c comm.Comm) {
	comm.Barrier(c) // want commerr
}

// DropBlank assigns Send's error to the blank identifier.
func DropBlank(c comm.Comm, dst int) {
	_ = c.Send(dst, tagWork, nil) // want commerr
}

// DropRecvErr keeps the payload but blanks the error.
func DropRecvErr(c comm.Comm, src int) []byte {
	b, _ := c.Recv(src, tagWork) // want commerr
	return b
}

// DropInGo makes the error unobservable by construction.
func DropInGo(c comm.Comm) {
	go comm.Barrier(c) // want collectivesym commerr
}

// DropRecvTimeout blanks the error of a deadline-bounded receive; an
// elapsed deadline means a wedged or dead peer and must be propagated.
func DropRecvTimeout(c comm.Comm, src int) []byte {
	b, _ := comm.RecvTimeout(c, src, tagWork, 0) // want commerr
	return b
}

// DropRetry discards the verdict of a retry wrapper — exhausted retries
// mean the operation never happened.
func DropRetry(op func() error) {
	var pol comm.Backoff
	pol.Retry("op", op) // want commerr
}

// DropChaosWorld drops the joined per-rank errors of a chaos world.
func DropChaosWorld(fn func(comm.Comm) error) {
	comm.RunWorldChaos(2, comm.ChaosOptions{}, fn) // want commerr
}

// DropDrain discards a chaos endpoint's sticky delivery error.
func DropDrain(cc *comm.ChaosComm) {
	cc.Drain() // want commerr
}

// HandledOK is the control case.
func HandledOK(c comm.Comm) error {
	return comm.Barrier(c)
}

// HandledRobustnessOK is the control case for the robustness layer.
func HandledRobustnessOK(c comm.Comm, src int) error {
	pol := comm.Backoff{}
	if err := pol.Retry("recv", func() error {
		_, err := comm.RecvTimeout(c, src, tagWork, 0)
		return err
	}); err != nil {
		return err
	}
	return comm.RunWorldChaos(2, comm.ChaosOptions{}, func(comm.Comm) error { return nil })
}

// DropStreamingAlltoall drops the streaming exchange's error — a failed
// decode callback or a dead peer vanishes silently.
func DropStreamingAlltoall(c comm.Comm, out [][]byte) {
	comm.AlltoallvFunc(c, out, func(src int, payload []byte) error { return nil }) // want commerr
}

// DropFusedReduce blanks the fused per-iteration reduction's error.
func DropFusedReduce(c comm.Comm) comm.IterStats {
	st, _ := comm.AllreduceIterStats(c, comm.IterStats{}) // want commerr
	return st
}

// DropWriteSharded drops the sharded writer's error: a truncated .sbin on
// disk fails every later run.
func DropWriteSharded(w io.Writer, g *graph.Graph) {
	graph.WriteBinarySharded(w, g, 8) // want commerr
}

// DropParallelIngest blanks the parallel parser's error and carries a nil
// graph forward.
func DropParallelIngest(r io.Reader) *graph.Graph {
	g, _ := graph.ReadEdgeListParallel(r, 4) // want commerr
	return g
}

// DropShardedRead blanks the sharded loader's error.
func DropShardedRead(data []byte) *graph.Graph {
	g, _ := graph.ReadBinarySharded(bytes.NewReader(data), 2) // want commerr
	return g
}

// HandledIngestOK is the control case for graph IO.
func HandledIngestOK(r io.Reader) (*graph.Graph, error) {
	return graph.ReadEdgeListParallel(r, 4)
}

func keepFirst(a, b []byte) []byte { return a }

// DropAutoReduce blanks the size-selected reduction's error.
func DropAutoReduce(c comm.Comm, data []byte) []byte {
	out, _ := comm.AllreduceBytesAuto(c, data, 1, nil, keepFirst) // want commerr
	return out
}

// DropMigration drops the migration exchange's error on the floor: the
// world's ownership directories diverge silently.
func DropMigration(c comm.Comm, out [][]byte) {
	comm.MigrationExchange(c, out, func(src int, payload []byte) error { return nil }) // want commerr
}

// DropSeqMigration blanks the sequential migration exchange's error but
// keeps the payloads — exactly the stale-data hazard the analyzer exists for.
func DropSeqMigration(c comm.Comm, out [][]byte) [][]byte {
	in, _ := comm.MigrationExchangeSeq(c, out) // want commerr
	return in
}

// DropV2Write drops the compressed sharded writer's error (out-of-core
// layer): a truncated v2 .sbin poisons every later streaming run.
func DropV2Write(w io.Writer, g *graph.Graph) {
	graph.WriteBinaryShardedV2(w, g, 8) // want commerr
}

// DropWindowDecode blanks a shard window decode error — the streaming
// partitioner would silently build from a truncated window.
func DropWindowDecode(s *graph.Sharded) *graph.Window {
	w, _ := s.ReadWindow(0) // want commerr
	return w
}

// DropReadAll blanks the whole-file decode error of the windowed reader.
func DropReadAll(s *graph.Sharded) *graph.Graph {
	g, _ := s.ReadAll(2) // want commerr
	return g
}

// DropCachedWindow drops the LRU reader's decode error in a statement.
func DropCachedWindow(r *graph.WindowReader) {
	r.Window(1) // want commerr
}

// DropNeighbors blanks the per-vertex windowed lookup's error.
func DropNeighbors(r *graph.WindowReader) []int32 {
	ts, _, _ := r.NeighborsOf(7) // want commerr
	return ts
}

// DropMmapOpen blanks the mmap open error and dereferences a nil view.
func DropMmapOpen(path string) *graph.MappedFile {
	m, _ := graph.OpenMmap(path) // want commerr
	return m
}

// DropShardedFileOpen drops the one-call open-and-map error.
func DropShardedFileOpen(path string) {
	graph.OpenShardedFile(path) // want commerr
}

// HandledOocoreOK is the control case for the out-of-core layer: ReadAll
// on a plain io.Reader is NOT graph IO and must not be flagged.
func HandledOocoreOK(r io.Reader, s *graph.Sharded) error {
	if _, err := io.ReadAll(r); err != nil {
		return err
	}
	_, err := s.ReadWindow(0)
	return err
}

// DropWorkReduce blanks the fused stats+work reduction's error.
func DropWorkReduce(c comm.Comm, work []int64) comm.IterStats {
	v, _ := comm.AllreduceIterStatsWork(c, comm.IterStats{}, work) // want commerr
	return v
}

// DropSliceMax drops the sequential work-vector reduction's error.
func DropSliceMax(c comm.Comm, work []int64) {
	comm.AllreduceInt64SliceMax(c, work) // want commerr
}
