// Package baderr is a negative fixture for the commerr analyzer: comm
// errors dropped in every form the analyzer recognizes.
package baderr

import "repro/internal/comm"

const tagWork = 2

// DropStatement drops Barrier's error on the floor.
func DropStatement(c comm.Comm) {
	comm.Barrier(c) // want commerr
}

// DropBlank assigns Send's error to the blank identifier.
func DropBlank(c comm.Comm, dst int) {
	_ = c.Send(dst, tagWork, nil) // want commerr
}

// DropRecvErr keeps the payload but blanks the error.
func DropRecvErr(c comm.Comm, src int) []byte {
	b, _ := c.Recv(src, tagWork) // want commerr
	return b
}

// DropInGo makes the error unobservable by construction.
func DropInGo(c comm.Comm) {
	go comm.Barrier(c) // want collectivesym commerr
}

// HandledOK is the control case.
func HandledOK(c comm.Comm) error {
	return comm.Barrier(c)
}
