// Package badmaporder is a negative fixture for the maporder analyzer:
// map-iteration order reaching an order-sensitive sink — a wire encode, a
// comm send or collective, or a float accumulation — without an intervening
// deterministic sort. Each flagged function has a neighbouring control
// showing the sanctioned shape (collect keys, sort, iterate).
package badmaporder

import (
	"maps"
	"slices"
	"sort"

	"repro/internal/comm"
	"repro/internal/wire"
)

// EncodeInMapOrder serializes a map by ranging over it directly: the byte
// stream differs run to run and rank to rank.
func EncodeInMapOrder(buf *wire.Buffer, m map[int]float64) {
	for k, v := range m {
		buf.PutUvarint(uint64(k)) // want maporder
		buf.PutF64(v)             // want maporder
	}
}

// SortedEncodeOK is the control: collect the keys, sort, then encode. The
// sort launders the collected slice, so nothing fires.
func SortedEncodeOK(buf *wire.Buffer, m map[int]float64) {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	for _, k := range keys {
		buf.PutUvarint(uint64(k))
		buf.PutF64(m[k])
	}
}

// SortedIterOK covers the one-liner form of the same idiom.
func SortedIterOK(buf *wire.Buffer, m map[int]float64) {
	for _, k := range slices.Sorted(maps.Keys(m)) {
		buf.PutUvarint(uint64(k))
		buf.PutF64(m[k])
	}
}

// CollectedSliceEncode defers the encode to a second loop but never sorts:
// the slice carries map order, and ranging over it reopens the context.
func CollectedSliceEncode(buf *wire.Buffer, m map[int]float64) {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for _, k := range keys {
		buf.PutUvarint(uint64(k)) // want maporder
	}
}

// StoredIteratorEncode stashes a maps.Keys iterator in a variable; the
// stored iterator still visits in map order.
func StoredIteratorEncode(buf *wire.Buffer, m map[int]uint64) {
	it := maps.Keys(m)
	for k := range it {
		buf.PutU64(uint64(k)) // want maporder
	}
}

// FloatAccumInMapOrder sums floats in map order: float addition is not
// associative, so the last bits of the result depend on the visit order.
func FloatAccumInMapOrder(m map[int]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want maporder
	}
	return sum
}

// SortedFloatAccumOK is the control for the float-accumulation rule.
func SortedFloatAccumOK(m map[int]float64) float64 {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	var sum float64
	for _, k := range keys {
		sum += m[k]
	}
	return sum
}

// KeyedWriteOK builds a keyed structure inside the range: stores indexed by
// the loop key do not depend on the visit order.
func KeyedWriteOK(m map[int]float64) map[int]float64 {
	out := make(map[int]float64, len(m))
	for k, v := range m {
		out[k] = v * 2
	}
	return out
}

// tagPayload is a named tag so the Send below trips only maporder, not
// tagconst.
const tagPayload = 7

// SendInMapOrder pushes messages in map order: ranks disagree on the
// transmit sequence.
func SendInMapOrder(c comm.Comm, owners map[int]int, payload []byte) error {
	for _, dst := range owners {
		if err := c.Send(dst, tagPayload, payload); err != nil { // want maporder
			return err
		}
	}
	return nil
}

// CollectiveInMapOrder issues a collective per map entry: ranks enter the
// collective sequence in divergent order.
func CollectiveInMapOrder(c comm.Comm, weights map[int]float64) error {
	for dst := range weights {
		if _, err := comm.AllreduceFloat64Sum(c, float64(dst)); err != nil { // want maporder
			return err
		}
	}
	return nil
}

// ReusedSliceOK overwrites the collect buffer with order-free data before
// the second loop, which clears the taint.
func ReusedSliceOK(buf *wire.Buffer, m map[int]uint64, fixed []uint64) {
	vals := make([]uint64, 0, len(m))
	for _, v := range m {
		vals = append(vals, v)
	}
	vals = fixed
	for _, v := range vals {
		buf.PutU64(v)
	}
}
