// Package badnoalloc is a negative fixture for the noalloc analyzer: every
// alloc-inducing construct the //perf:noalloc directive forbids, each in a
// separately annotated function, plus controls for the allowed shapes
// (self-appends, struct value composites, unannotated helpers).
package badnoalloc

import "errors"

type scratch struct {
	buf []int
}

// sink is an unannotated helper with an interface parameter, used by the
// boxing case below.
func sink(v any) { _ = v }

// FillOK is the control for the sanctioned append shape: truncating and
// self-appending reuse the backing array once steady-state capacity is
// reached.
//
//perf:noalloc
func (s *scratch) FillOK(n int) {
	s.buf = s.buf[:0]
	for i := 0; i < n; i++ {
		s.buf = append(s.buf, i)
	}
}

// ValueCompositeOK is the control for struct value composites: they live in
// the frame, not the heap.
//
//perf:noalloc
func ValueCompositeOK() int {
	s := scratch{}
	return len(s.buf)
}

// UnannotatedMayAlloc is the control for scope: without the directive the
// analyzer has no claim to verify.
func UnannotatedMayAlloc(n int) []int {
	return make([]int, n)
}

// MakesSlice calls make in an annotated body.
//
//perf:noalloc
func MakesSlice(n int) int {
	xs := make([]int, n) // want noalloc
	return len(xs)
}

// NewsValue calls new in an annotated body.
//
//perf:noalloc
func NewsValue() *int {
	return new(int) // want noalloc
}

// ForeignAppend grows a destination other than the appended slice itself.
//
//perf:noalloc
func ForeignAppend(dst, src []int) []int {
	dst = append(src, 1) // want noalloc
	return dst
}

// BuildsLiterals constructs slice and map literals and takes the address of
// a composite.
//
//perf:noalloc
func BuildsLiterals() *scratch {
	xs := []int{1, 2}      // want noalloc
	m := map[int]int{1: 2} // want noalloc
	_ = xs
	_ = m
	return &scratch{} // want noalloc
}

// BuildsClosure allocates a function literal.
//
//perf:noalloc
func BuildsClosure() int {
	f := func() int { return 0 } // want noalloc
	return f()
}

// StartsGoroutine spawns from an annotated body.
//
//perf:noalloc
func StartsGoroutine(s *scratch) {
	go s.FillOK(1) // want noalloc
}

// DefersCall defers from an annotated body.
//
//perf:noalloc
func DefersCall(s *scratch) {
	defer s.FillOK(1) // want noalloc
}

// FormatsError calls into the errors package.
//
//perf:noalloc
func FormatsError() error {
	return errors.New("boom") // want noalloc
}

// ConcatsStrings builds a string with +.
//
//perf:noalloc
func ConcatsStrings(a, b string) string {
	return a + b // want noalloc
}

// ConvertsBytes copies between string and []byte.
//
//perf:noalloc
func ConvertsBytes(s string) int {
	return len([]byte(s)) // want noalloc
}

// BoxesValue passes a concrete value to an interface parameter.
//
//perf:noalloc
func BoxesValue(x int) {
	sink(x) // want noalloc
}

// HistogramScatterOK is the control for the merge counting-sort shape:
// histogram rows and output columns are caller-provided scratch, so the
// annotated kernel only indexes.
//
//perf:noalloc
func HistogramScatterOK(keys, h, out []int32) {
	for i := range h {
		h[i] = 0
	}
	for _, k := range keys {
		h[k]++
	}
	sum := int32(0)
	for i, v := range h {
		h[i] = sum
		sum += v
	}
	for _, k := range keys {
		out[h[k]] = k
		h[k]++
	}
}

// HistogramPerCall builds its histogram per call — the regression the
// pooled merge scratch exists to prevent.
//
//perf:noalloc
func HistogramPerCall(keys, out []int32) {
	h := make([]int32, 64) // want noalloc
	for _, k := range keys {
		h[k]++
	}
	for _, k := range keys {
		h[k]--
		out[h[k]] = k
	}
}
