// Package badnondet is a negative fixture for the nondet analyzer:
// nondeterministic sources in solver code — wall-clock reads, the global
// math/rand source, and multi-case channel selects. The fixture sits
// outside the allowlist (internal/trace, internal/expt, internal/comm,
// cmd/), so every rule applies.
package badnondet

import (
	"math/rand"
	"time"
)

// StampResult reads the wall clock inside solver code; the sanctioned
// route is trace.Now/trace.Since.
func StampResult() int64 {
	start := time.Now() // want nondet
	v := int64(42)
	v += int64(time.Since(start)) // want nondet
	return v
}

// BackoffSleep stalls the solver on the wall clock.
func BackoffSleep() {
	time.Sleep(time.Millisecond) // want nondet
}

// WaitDeadline arms wall-clock machinery inside the solver.
func WaitDeadline(ch chan int) int {
	select { // want nondet
	case v := <-ch:
		return v
	case <-time.After(time.Second): // want nondet
		return -1
	}
}

// GlobalRandPick reads the process-global random source.
func GlobalRandPick(n int) int {
	return rand.Intn(n) // want nondet
}

// SeededRandOK is the control: an explicitly seeded generator owned by the
// caller is how internal/gen builds reproducible graphs.
func SeededRandOK(seed int64, n int) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(n)
}

// DurationMathOK is the control for the time package: using time.Duration
// values and constants never reads the clock.
func DurationMathOK(d time.Duration) time.Duration {
	return d * 2
}

// RacySelect arbitrates control flow by channel readiness: with both cases
// ready the runtime picks pseudo-randomly.
func RacySelect(a, b chan int) int {
	select { // want nondet
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}

// SingleCaseSelectOK is the control: one channel case plus a default is a
// deterministic poll.
func SingleCaseSelectOK(a chan int) int {
	select {
	case v := <-a:
		return v
	default:
		return 0
	}
}
