// Package badpool is a negative fixture for the collectivesym analyzer's
// async rule: comm collectives issued off the rank's main goroutine, from
// inside a worker-pool parFor task or a goroutine. The communicator matches
// messages by (source, tag) in program order on the rank's goroutine, so
// these race the matching even when every rank reaches the collective.
// Errors are captured (not dropped) so commerr stays quiet and the
// collectivesym findings are isolated.
package badpool

import "repro/internal/comm"

// pool mimics the worker-pool dispatch of internal/core: parFor runs a
// chunked kernel, possibly on worker goroutines. The analyzer matches the
// method by name, so this local stand-in exercises the same rule the real
// pool is checked by.
type pool struct{}

func (p *pool) parFor(nChunks int, kernel func(chunk, worker int)) {
	for c := 0; c < nChunks; c++ {
		kernel(c, 0)
	}
}

// BarrierInTask puts a collective inside a parFor kernel: with more than
// one worker the Barrier's point-to-point traffic interleaves with whatever
// the main goroutine posts next.
func BarrierInTask(c comm.Comm, p *pool) error {
	errs := make([]error, 4)
	p.parFor(4, func(chunk, worker int) {
		errs[chunk] = comm.Barrier(c) // want collectivesym
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// ReduceInTask covers a value-returning collective in a task.
func ReduceInTask(c comm.Comm, p *pool) ([]float64, error) {
	sums := make([]float64, 2)
	errs := make([]error, 2)
	p.parFor(2, func(chunk, worker int) {
		sums[chunk], errs[chunk] = comm.AllreduceFloat64Sum(c, float64(chunk)) // want collectivesym
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return sums, nil
}

// BarrierInGoroutine covers the plain go-statement form of the same bug.
func BarrierInGoroutine(c comm.Comm) error {
	done := make(chan error, 1)
	go func() {
		done <- comm.Barrier(c) // want collectivesym
	}()
	return <-done
}

// TaskThenCollectiveOK is the control case: the kernel does pure compute
// and the collective runs on the main goroutine after parFor returns.
func TaskThenCollectiveOK(c comm.Comm, p *pool, xs []float64) (float64, error) {
	partial := make([]float64, 2)
	p.parFor(2, func(chunk, worker int) {
		lo, hi := chunk*len(xs)/2, (chunk+1)*len(xs)/2
		for _, x := range xs[lo:hi] {
			partial[chunk] += x
		}
	})
	return comm.AllreduceFloat64Sum(c, partial[0]+partial[1])
}

// StreamingAlltoallInGoroutine covers the overlapped engine (PR 4) in a
// go literal: AlltoallvFunc itself manages receiver goroutines internally,
// but the call must still be issued from the rank's main goroutine.
func StreamingAlltoallInGoroutine(c comm.Comm, out [][]byte) error {
	done := make(chan error, 1)
	go func() {
		done <- comm.AlltoallvFunc(c, out, func(src int, payload []byte) error { return nil }) // want collectivesym
	}()
	return <-done
}

// FusedReduceInTask puts the fused per-iteration reduction inside a parFor
// kernel.
func FusedReduceInTask(c comm.Comm, p *pool) error {
	errs := make([]error, 2)
	p.parFor(2, func(chunk, worker int) {
		_, errs[chunk] = comm.AllreduceIterStats(c, comm.IterStats{}) // want collectivesym
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// exportedPool mimics internal/par's exported Pool (PR 5): the ingest and
// partition pipelines dispatch through ParFor, so a collective inside one of
// those kernels is the same race as in core's unexported pool.
type exportedPool struct{}

func (p *exportedPool) ParFor(nChunks int, kernel func(chunk, worker int)) {
	for c := 0; c < nChunks; c++ {
		kernel(c, 0)
	}
}

// BarrierInExportedTask covers the exported ParFor entry point.
func BarrierInExportedTask(c comm.Comm, p *exportedPool) error {
	errs := make([]error, 4)
	p.ParFor(4, func(chunk, worker int) {
		errs[chunk] = comm.Barrier(c) // want collectivesym
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// IngestThenGatherOK is the control case for the ingest shape: chunk kernels
// do pure parsing work and the collective runs after the pool drains.
func IngestThenGatherOK(c comm.Comm, p *exportedPool, data []byte) ([][]byte, error) {
	counts := make([]int, 2)
	p.ParFor(2, func(chunk, worker int) {
		lo, hi := chunk*len(data)/2, (chunk+1)*len(data)/2
		for _, b := range data[lo:hi] {
			if b == '\n' {
				counts[chunk]++
			}
		}
	})
	return comm.Allgather(c, []byte{byte(counts[0] + counts[1])})
}

// EncodeThenShipOK is the control case for the merge encode shape (PR 10):
// per-destination parFor kernels only fill disjoint frame buffers; the
// all-to-all that ships them runs on the main goroutine after the pool
// drains.
func EncodeThenShipOK(c comm.Comm, p *pool, recs []int) ([][]byte, error) {
	frames := make([][]byte, 2)
	p.parFor(2, func(chunk, worker int) {
		lo, hi := chunk*len(recs)/2, (chunk+1)*len(recs)/2
		for _, r := range recs[lo:hi] {
			frames[chunk] = append(frames[chunk], byte(r))
		}
	})
	return comm.Alltoallv(c, frames)
}

// ShipPerDestinationInTask is the tempting wrong version of the same shape:
// issuing the exchange from inside the per-destination kernel.
func ShipPerDestinationInTask(c comm.Comm, p *pool, frames [][]byte) error {
	errs := make([]error, 2)
	p.parFor(2, func(chunk, worker int) {
		_, errs[chunk] = comm.Alltoallv(c, frames) // want collectivesym
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
