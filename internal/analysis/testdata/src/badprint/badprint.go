// Package badprint is a negative fixture for the noprint analyzer:
// process-global printing from a package under internal/.
package badprint

import (
	"fmt"
	"log" // want noprint
)

// Chatter writes to stdout and stderr from library code.
func Chatter(n int) {
	fmt.Println("processed", n) // want noprint
	log.Printf("n=%d", n)
}

// WriterOK is the control case: an explicit writer is the caller's choice.
func WriterOK(w interface{ Write([]byte) (int, error) }, n int) {
	fmt.Fprintf(w, "processed %d\n", n)
}
