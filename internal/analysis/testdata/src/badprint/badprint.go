// Package badprint is a negative fixture for the noprint analyzer:
// process-global printing from a package under internal/.
package badprint

import (
	"fmt"
	"log" // want noprint
)

// Chatter writes to stdout and stderr from library code.
func Chatter(n int) {
	fmt.Println("processed", n) // want noprint
	log.Printf("n=%d", n)
}

// WriterOK is the control case: an explicit writer is the caller's choice.
func WriterOK(w interface{ Write([]byte) (int, error) }, n int) {
	fmt.Fprintf(w, "processed %d\n", n)
}

// ingestPool mimics internal/par's exported Pool used by the parallel
// ingest pipeline (PR 5); progress printing from a chunk kernel interleaves
// across workers on top of being library noise.
type ingestPool struct{}

func (p *ingestPool) ParFor(nChunks int, kernel func(chunk, worker int)) {
	for c := 0; c < nChunks; c++ {
		kernel(c, 0)
	}
}

// ChattyIngest prints per-chunk progress from a parse kernel.
func ChattyIngest(p *ingestPool, data []byte) {
	p.ParFor(4, func(chunk, worker int) {
		fmt.Printf("chunk %d: %d bytes\n", chunk, len(data)/4) // want noprint
	})
}

// ChattyStream mimics the out-of-core layer (PR 9) narrating shard
// progress: a streamed generate or two-pass partition visits thousands of
// windows, so a per-shard print is thousands of lines of library noise —
// the cmds own the progress report, the library returns counters.
func ChattyStream(shards int) {
	for i := 0; i < shards; i++ {
		fmt.Println("shard", i, "done") // want noprint
	}
}
