// Package badserver is a negative fixture for the serving-path entry
// points added with the resident service (PR 8): the per-batch drift
// reduction AllreduceUpdateStats is a collective with an error, so it
// carries both the symmetry and the error obligations.
package badserver

import "repro/internal/comm"

// DropUpdateStatsErr drops the drift reduction's error: the rank keeps
// serving with stale drift while its peers may have failed the batch.
func DropUpdateStatsErr(c comm.Comm, s comm.UpdateStats) comm.UpdateStats {
	out, _ := comm.AllreduceUpdateStats(c, s) // want commerr
	return out
}

// RootOnlyDriftReduce enters the per-batch reduction on rank 0 only —
// the other ranks are back in their command loops and the world wedges.
func RootOnlyDriftReduce(c comm.Comm, s comm.UpdateStats) (comm.UpdateStats, error) {
	if c.Rank() == 0 {
		return comm.AllreduceUpdateStats(c, s) // want collectivesym
	}
	return s, nil
}

// FireAndForgetUpdate makes the reduction unobservable by construction:
// asymmetric by schedule and its error lost.
func FireAndForgetUpdate(c comm.Comm, s comm.UpdateStats) {
	go comm.AllreduceUpdateStats(c, s) // want collectivesym commerr
}

// SymmetricOK is the control case: every rank reaches the reduction and
// its error is propagated.
func SymmetricOK(c comm.Comm, s comm.UpdateStats) (comm.UpdateStats, error) {
	return comm.AllreduceUpdateStats(c, s)
}
