// Package badshare is a negative fixture for the parforshare analyzer:
// ParFor kernels and go-closures writing captured state they do not own.
// Kernels may write variables they declare themselves and slots of captured
// slices indexed by values derived from their chunk/worker parameters;
// everything else is a data race or a nondeterministic combine.
package badshare

// pool mimics the worker-pool dispatch of internal/par; the analyzer
// matches parFor/ParFor by name, so this local stand-in exercises the same
// rules the real pool is checked by.
type pool struct{}

func (p *pool) ParFor(nChunks int, kernel func(chunk, worker int)) {
	for c := 0; c < nChunks; c++ {
		kernel(c, 0)
	}
}

// SharedScalarSum accumulates into a captured scalar from every chunk: a
// data race, and even under a lock the combine order would be the dispatch
// schedule.
func SharedScalarSum(p *pool, xs []float64) float64 {
	var sum float64
	p.ParFor(2, func(chunk, worker int) {
		lo, hi := chunk*len(xs)/2, (chunk+1)*len(xs)/2
		for _, x := range xs[lo:hi] {
			sum += x // want parforshare
		}
	})
	return sum
}

// PerChunkSumOK is the control: partials indexed by the chunk parameter,
// combined by the caller in chunk order.
func PerChunkSumOK(p *pool, xs []float64) float64 {
	partial := make([]float64, 2)
	p.ParFor(2, func(chunk, worker int) {
		lo, hi := chunk*len(xs)/2, (chunk+1)*len(xs)/2
		for _, x := range xs[lo:hi] {
			partial[chunk] += x
		}
	})
	return partial[0] + partial[1]
}

// DerivedIndexOK writes through an index the kernel computes from its chunk
// parameter: lo and hi are chunk-derived via the fixpoint, so out[i] with
// i in [lo, hi) is chunk-owned.
func DerivedIndexOK(p *pool, out []float64, xs []float64) {
	p.ParFor(2, func(chunk, worker int) {
		lo, hi := chunk*len(xs)/2, (chunk+1)*len(xs)/2
		for i := lo; i < hi; i++ {
			out[i] = xs[i] * 2
		}
	})
}

// FixedSlotWrite writes every chunk's result to the same slot: the slot's
// final value is whichever chunk finished last.
func FixedSlotWrite(p *pool, out []float64) {
	p.ParFor(2, func(chunk, worker int) {
		out[0] = float64(chunk) // want parforshare
	})
}

// CapturedMapInsert inserts into a captured map: concurrent map writes race
// regardless of key.
func CapturedMapInsert(p *pool, xs []int) map[int]int {
	counts := make(map[int]int)
	p.ParFor(2, func(chunk, worker int) {
		lo, hi := chunk*len(xs)/2, (chunk+1)*len(xs)/2
		for i := lo; i < hi; i++ {
			counts[xs[i]]++ // want parforshare
		}
	})
	return counts
}

// AssignedKernelShared covers the stage-kernel idiom: the literal is built
// in one place, dispatched by name in another, and still must not write
// captured state.
func AssignedKernelShared(p *pool, xs []int) int {
	var total int
	kernel := func(chunk, worker int) {
		lo, hi := chunk*len(xs)/2, (chunk+1)*len(xs)/2
		for i := lo; i < hi; i++ {
			total += xs[i] // want parforshare
		}
	}
	p.ParFor(2, kernel)
	return total
}

// GoClosureCounter covers the plain go-statement form: the closure bumps a
// captured counter.
func GoClosureCounter(n int) int {
	var hits int
	done := make(chan struct{})
	go func() {
		for i := 0; i < n; i++ {
			hits++ // want parforshare
		}
		close(done)
	}()
	<-done
	return hits
}

// LocalStateOK is the control for kernel-owned state: variables the kernel
// declares itself are private no matter how they are written.
func LocalStateOK(p *pool, out []float64, xs []float64) {
	p.ParFor(2, func(chunk, worker int) {
		acc := 0.0
		lo, hi := chunk*len(xs)/2, (chunk+1)*len(xs)/2
		for i := lo; i < hi; i++ {
			acc += xs[i]
		}
		out[chunk] = acc
	})
}
