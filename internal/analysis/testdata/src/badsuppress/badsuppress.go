// Package badsuppress verifies that a suppression without a reason is
// itself reported and does not waive the underlying finding. Expected
// findings: one "lint" (malformed suppression) and one "noprint".
package badsuppress

import "fmt"

// Shout tries to waive the finding without giving a reason.
func Shout() {
	//lint:ignore noprint
	fmt.Println("loud")
}
