// Package badtag is a negative fixture for the tagconst analyzer: ad-hoc
// Send/Recv tags and a tag-registry collision.
package badtag

import "repro/internal/comm"

const (
	tagState = 3
	tagQuery = 4
	tagReply = 4 // want tagconst
)

// LiteralTag uses a bare int literal as the tag.
func LiteralTag(c comm.Comm, dst int) error {
	return c.Send(dst, 9, nil) // want tagconst
}

// ComputedTag derives a tag arithmetically, which defeats the registry.
func ComputedTag(c comm.Comm, src int) ([]byte, error) {
	return c.Recv(src, tagState+1) // want tagconst
}

// NamedOK is the control case: a registered tag constant.
func NamedOK(c comm.Comm, dst int) error {
	return c.Send(dst, tagQuery, nil)
}
