package dfcases

import "repro/internal/wire"

// MapEncode ranges a map straight into the encoder: maporder must flag
// both Put calls.
func MapEncode(buf *wire.Buffer, m map[int]float64) {
	for k, v := range m {
		buf.PutUvarint(uint64(k))
		buf.PutF64(v)
	}
}
