// Package dfcases is the synthetic input for the def-use walk unit test
// (dataflow_test.go): one file per case, so the test can assert findings
// per file. The cases cover the two core taint questions — does a sort
// launder a map-order slice, and does a chunk-derived index own a slot.
package dfcases

import (
	"sort"

	"repro/internal/wire"
)

// MapSortEncode collects map keys, sorts them, and encodes: the sort
// launders the order, so maporder must stay quiet.
func MapSortEncode(buf *wire.Buffer, m map[int]float64) {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	for _, k := range keys {
		buf.PutUvarint(uint64(k))
		buf.PutF64(m[k])
	}
}
