package dfcases

// SharedWrite accumulates into a captured scalar from a ParFor kernel:
// parforshare must flag the write.
func SharedWrite(p *dfPool, xs []float64) float64 {
	var sum float64
	p.ParFor(2, func(chunk, worker int) {
		lo, hi := chunk*len(xs)/2, (chunk+1)*len(xs)/2
		for i := lo; i < hi; i++ {
			sum += xs[i]
		}
	})
	return sum
}
