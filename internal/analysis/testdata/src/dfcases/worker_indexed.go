package dfcases

// dfPool is the local ParFor stand-in shared by the kernel cases.
type dfPool struct{}

func (p *dfPool) ParFor(nChunks int, kernel func(chunk, worker int)) {
	for c := 0; c < nChunks; c++ {
		kernel(c, 0)
	}
}

// WorkerIndexed writes captured slices only through indexes derived from
// the kernel's parameters (worker directly, i via the chunk fixpoint):
// parforshare must stay quiet.
func WorkerIndexed(p *dfPool, xs []float64) float64 {
	partial := make([]float64, 2)
	out := make([]float64, len(xs))
	p.ParFor(2, func(chunk, worker int) {
		lo, hi := chunk*len(xs)/2, (chunk+1)*len(xs)/2
		for i := lo; i < hi; i++ {
			out[i] = xs[i] * 2
			partial[worker] += xs[i]
		}
	})
	return partial[0] + partial[1]
}
