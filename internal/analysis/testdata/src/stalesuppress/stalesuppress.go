// Package stalesuppress is a negative fixture for the suppression
// liveness rules: an //lint:ignore whose analyzer no longer fires on the
// covered lines is itself reported (the waived bug was fixed, so the
// directive now hides nothing but future regressions), and so is a
// directive naming an analyzer that does not exist. The trailing `// want
// lint` markers double as part of each directive's reason text, which the
// parser accepts — the expectation machinery and the suppression parser
// read the same line.
package stalesuppress

// Quiet once printed a banner; the print is gone but the waiver remained.
func Quiet() int {
	//lint:ignore noprint formerly printed a progress banner here // want lint
	return 1
}

// Mistyped names an analyzer that is not part of the suite, so the waiver
// can never match anything.
func Mistyped() int {
	//lint:ignore noprnt typo in the analyzer name // want lint
	return 2
}
