// Package suppressed verifies that //lint:ignore waives a finding: the
// fmt.Println below would be a noprint finding, but carries a suppression
// with a reason, so the suite must report nothing for this package.
package suppressed

import "fmt"

// Banner prints deliberately.
func Banner() {
	//lint:ignore noprint fixture demonstrating a sanctioned suppression
	fmt.Println("banner")
}
