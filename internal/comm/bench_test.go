package comm

import (
	"encoding/binary"
	"fmt"
	"testing"
	"time"
)

func BenchmarkBarrier(b *testing.B) {
	for _, p := range []int{2, 8, 16} {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			err := RunWorld(p, func(c Comm) error {
				for i := 0; i < b.N; i++ {
					if err := Barrier(c); err != nil {
						return err
					}
				}
				return nil
			})
			if err != nil {
				b.Fatal(err)
			}
		})
	}
}

func BenchmarkAllreduceScalar(b *testing.B) {
	for _, p := range []int{2, 8, 16} {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			err := RunWorld(p, func(c Comm) error {
				for i := 0; i < b.N; i++ {
					if _, err := AllreduceFloat64Sum(c, 1.0); err != nil {
						return err
					}
				}
				return nil
			})
			if err != nil {
				b.Fatal(err)
			}
		})
	}
}

func BenchmarkAlltoallv(b *testing.B) {
	for _, size := range []int{64, 4096} {
		b.Run(fmt.Sprintf("p=8/msg=%dB", size), func(b *testing.B) {
			payload := make([]byte, size)
			b.SetBytes(int64(8 * size))
			err := RunWorld(8, func(c Comm) error {
				out := make([][]byte, c.Size())
				for i := range out {
					out[i] = payload
				}
				for i := 0; i < b.N; i++ {
					if _, err := Alltoallv(c, out); err != nil {
						return err
					}
				}
				return nil
			})
			if err != nil {
				b.Fatal(err)
			}
		})
	}
}

func BenchmarkBcast(b *testing.B) {
	payload := make([]byte, 1<<14)
	b.SetBytes(1 << 14)
	err := RunWorld(8, func(c Comm) error {
		for i := 0; i < b.N; i++ {
			var in []byte
			if c.Rank() == 0 {
				in = payload
			}
			if _, err := Bcast(c, 0, in); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}

func BenchmarkPointToPoint(b *testing.B) {
	payload := make([]byte, 1024)
	b.SetBytes(1024)
	err := RunWorld(2, func(c Comm) error {
		other := 1 - c.Rank()
		for i := 0; i < b.N; i++ {
			if c.Rank() == 0 {
				if err := c.Send(other, 0, payload); err != nil {
					return err
				}
				if _, err := c.Recv(other, 1); err != nil {
					return err
				}
			} else {
				if _, err := c.Recv(other, 0); err != nil {
					return err
				}
				if err := c.Send(other, 1, payload); err != nil {
					return err
				}
			}
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}

// delayOnlyChaos is the latency-injection schedule the overlap benchmarks
// run under: every message is delayed by a uniform duration in (0, 1ms],
// nothing is dropped or failed. Distinct (dst, tag) lanes sleep
// concurrently, so a collective that posts all its sends up front pays
// roughly the max of its peers' delays, while a sequential one pays the sum.
func delayOnlyChaos() ChaosOptions {
	return ChaosOptions{Seed: 7, DelayProb: 1, MaxDelay: time.Millisecond}
}

func benchAlltoallvUnderDelay(b *testing.B, fn func(Comm, [][]byte) ([][]byte, error)) {
	payload := make([]byte, 1024)
	b.SetBytes(int64(8 * len(payload)))
	err := RunWorldChaos(8, delayOnlyChaos(), func(c Comm) error {
		out := make([][]byte, c.Size())
		for i := range out {
			out[i] = payload
		}
		for i := 0; i < b.N; i++ {
			if _, err := fn(c, out); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkAlltoallvSeq vs BenchmarkAlltoallvOverlap is the headline A/B of
// the overlapped engine: same payloads, same chaos schedule, the only
// difference is posting all sends before the first receive.
func BenchmarkAlltoallvSeq(b *testing.B)     { benchAlltoallvUnderDelay(b, AlltoallvSeq) }
func BenchmarkAlltoallvOverlap(b *testing.B) { benchAlltoallvUnderDelay(b, Alltoallv) }

// BenchmarkAllreduceRingPipelined compares the plain ring against the
// segmented pipeline under injected per-message latency. The injected-delay
// model is deliberately adversarial to pipelining — every extra frame on a
// link costs a full lane sleep, and the 1ms delay dwarfs the combine the
// pipeline overlaps — so the pipelined variant is expected to trail here;
// its regime is bandwidth-bound payloads (see docs/PERFORMANCE.md), which
// is exactly what AllreduceBytesAuto's record-count threshold encodes.
func BenchmarkAllreduceRingPipelined(b *testing.B) {
	const nrec = 8192
	payload := make([]byte, nrec*8)
	for i := 0; i < nrec; i++ {
		binary.LittleEndian.PutUint64(payload[i*8:], uint64(i))
	}
	maxU64 := func(x, y []byte) []byte {
		out := make([]byte, len(x))
		for i := 0; i+8 <= len(x); i += 8 {
			vx, vy := binary.LittleEndian.Uint64(x[i:]), binary.LittleEndian.Uint64(y[i:])
			if vy > vx {
				vx = vy
			}
			binary.LittleEndian.PutUint64(out[i:], vx)
		}
		return out
	}
	split := func(data []byte, n int) [][]byte {
		segs := make([][]byte, n)
		rec := len(data) / 8
		for i := 0; i < n; i++ {
			segs[i] = data[(i*rec/n)*8 : ((i+1)*rec/n)*8]
		}
		return segs
	}
	variants := []struct {
		name string
		fn   func(Comm) ([]byte, error)
	}{
		{"ring", func(c Comm) ([]byte, error) { return AllreduceBytesRing(c, payload, maxU64) }},
		{"ring-pipelined", func(c Comm) ([]byte, error) {
			return AllreduceBytesRingPipelined(c, payload, 8, split, maxU64)
		}},
	}
	for _, v := range variants {
		b.Run(v.name+"/p=8", func(b *testing.B) {
			b.SetBytes(int64(len(payload)))
			err := RunWorldChaos(8, delayOnlyChaos(), func(c Comm) error {
				for i := 0; i < b.N; i++ {
					if _, err := v.fn(c); err != nil {
						return err
					}
				}
				return nil
			})
			if err != nil {
				b.Fatal(err)
			}
		})
	}
}

func BenchmarkAllreduceAlgorithms(b *testing.B) {
	// Recursive doubling vs ring, at the hub-proposal payload size of the
	// UK-2007 stand-in (DESIGN.md §5 ablation).
	payload := make([]byte, 8192)
	combine := func(x, y []byte) []byte { return x }
	for _, algo := range []string{"recursive-doubling", "ring"} {
		b.Run(algo+"/p=8", func(b *testing.B) {
			b.SetBytes(int64(len(payload)))
			err := RunWorld(8, func(c Comm) error {
				for i := 0; i < b.N; i++ {
					var err error
					if algo == "ring" {
						_, err = AllreduceBytesRing(c, payload, combine)
					} else {
						_, err = AllreduceBytes(c, payload, combine)
					}
					if err != nil {
						return err
					}
				}
				return nil
			})
			if err != nil {
				b.Fatal(err)
			}
		})
	}
}
