package comm

import (
	"fmt"
	"testing"
)

func BenchmarkBarrier(b *testing.B) {
	for _, p := range []int{2, 8, 16} {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			err := RunWorld(p, func(c Comm) error {
				for i := 0; i < b.N; i++ {
					if err := Barrier(c); err != nil {
						return err
					}
				}
				return nil
			})
			if err != nil {
				b.Fatal(err)
			}
		})
	}
}

func BenchmarkAllreduceScalar(b *testing.B) {
	for _, p := range []int{2, 8, 16} {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			err := RunWorld(p, func(c Comm) error {
				for i := 0; i < b.N; i++ {
					if _, err := AllreduceFloat64Sum(c, 1.0); err != nil {
						return err
					}
				}
				return nil
			})
			if err != nil {
				b.Fatal(err)
			}
		})
	}
}

func BenchmarkAlltoallv(b *testing.B) {
	for _, size := range []int{64, 4096} {
		b.Run(fmt.Sprintf("p=8/msg=%dB", size), func(b *testing.B) {
			payload := make([]byte, size)
			b.SetBytes(int64(8 * size))
			err := RunWorld(8, func(c Comm) error {
				out := make([][]byte, c.Size())
				for i := range out {
					out[i] = payload
				}
				for i := 0; i < b.N; i++ {
					if _, err := Alltoallv(c, out); err != nil {
						return err
					}
				}
				return nil
			})
			if err != nil {
				b.Fatal(err)
			}
		})
	}
}

func BenchmarkBcast(b *testing.B) {
	payload := make([]byte, 1<<14)
	b.SetBytes(1 << 14)
	err := RunWorld(8, func(c Comm) error {
		for i := 0; i < b.N; i++ {
			var in []byte
			if c.Rank() == 0 {
				in = payload
			}
			if _, err := Bcast(c, 0, in); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}

func BenchmarkPointToPoint(b *testing.B) {
	payload := make([]byte, 1024)
	b.SetBytes(1024)
	err := RunWorld(2, func(c Comm) error {
		other := 1 - c.Rank()
		for i := 0; i < b.N; i++ {
			if c.Rank() == 0 {
				if err := c.Send(other, 0, payload); err != nil {
					return err
				}
				if _, err := c.Recv(other, 1); err != nil {
					return err
				}
			} else {
				if _, err := c.Recv(other, 0); err != nil {
					return err
				}
				if err := c.Send(other, 1, payload); err != nil {
					return err
				}
			}
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}

func BenchmarkAllreduceAlgorithms(b *testing.B) {
	// Recursive doubling vs ring, at the hub-proposal payload size of the
	// UK-2007 stand-in (DESIGN.md §5 ablation).
	payload := make([]byte, 8192)
	combine := func(x, y []byte) []byte { return x }
	for _, algo := range []string{"recursive-doubling", "ring"} {
		b.Run(algo+"/p=8", func(b *testing.B) {
			b.SetBytes(int64(len(payload)))
			err := RunWorld(8, func(c Comm) error {
				for i := 0; i < b.N; i++ {
					var err error
					if algo == "ring" {
						_, err = AllreduceBytesRing(c, payload, combine)
					} else {
						_, err = AllreduceBytes(c, payload, combine)
					}
					if err != nil {
						return err
					}
				}
				return nil
			})
			if err != nil {
				b.Fatal(err)
			}
		})
	}
}
