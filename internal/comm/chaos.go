package comm

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/trace"
)

// Chaos transport wrapper: a Comm decorator that injects deterministic,
// seeded faults between the algorithm and any real transport. It is the
// testing half of the robustness story — the retry/deadline machinery in
// the transports is only trustworthy because this wrapper can prove, under
// hostile schedules, that the collectives stay bit-identical (benign
// faults) or fail cleanly with typed errors (fatal faults).
//
// Fault classes (all gated by ChaosOptions, all counted in FaultCounts):
//
//   - delay/jitter: a message's delivery is postponed by a random duration
//     up to MaxDelay. Deliveries run on one lane goroutine per (dst, tag)
//     stream, so FIFO per (src, tag) pair — the transport contract — is
//     preserved while different streams overtake each other freely
//     (reordering across pairs).
//   - duplicate delivery: a message is transmitted twice. Every chaos
//     frame carries a per-(src, tag) sequence number; the receiving
//     wrapper drops frames it has already seen, modeling at-least-once
//     delivery with idempotent receipt.
//   - transient send failures: an injected attempt failure recovered by
//     the shared Backoff retry policy (Retry option). Exhausted retries
//     become a sticky endpoint error, surfaced on the next operation.
//   - permanent loss: the message is silently never delivered. Combined
//     with receive deadlines, this is the scenario that must end in
//     ErrTimeout on the starved peers, never a hang.
//   - peer death: rank KillRank fails every operation after KillAfter
//     operations with an error wrapping ErrChaosKill, simulating a crash
//     mid-collective; peers then observe ErrPeerDown (or ErrTimeout).
//   - slow rank: rank StallRank sleeps StallFor before every StallEvery-th
//     operation, modeling a straggler.
//
// Every endpoint of a world must be wrapped with the same ChaosOptions
// (the sequence header must be speakable on both sides); RunWorldChaos
// does this for in-process worlds. Fault schedules are drawn from a
// per-rank PRNG seeded by (Seed, rank), so a rank's fault sequence is a
// pure function of its operation sequence — rerunning a seed reproduces
// the same chaos.
type ChaosOptions struct {
	// Seed selects the fault schedule; the per-rank stream is derived from
	// it, so worlds with equal seeds draw equal schedules.
	Seed int64

	// DelayProb is the probability a message's delivery is delayed by a
	// uniform duration in (0, MaxDelay]. MaxDelay defaults to 2ms.
	DelayProb float64
	MaxDelay  time.Duration

	// DupProb is the probability a message is delivered twice (the copy is
	// dropped by the receiver's dedup).
	DupProb float64

	// SendFailProb is the per-attempt probability of an injected transient
	// send failure (at most 4 consecutive per message), recovered by Retry.
	SendFailProb float64

	// DropProb is the probability a message is lost permanently.
	DropProb float64

	// KillAfter > 0 arms peer death: rank KillRank fails every operation
	// after its KillAfter-th with an error wrapping ErrChaosKill.
	KillRank  int
	KillAfter int

	// StallEvery > 0 arms the straggler: rank StallRank sleeps StallFor
	// before every StallEvery-th operation.
	StallRank  int
	StallEvery int
	StallFor   time.Duration

	// Retry recovers injected transient send failures. The default policy
	// (1ms base, 16 attempts, 2s budget) outlasts any injected burst, so
	// SendFailProb alone never loses a message; shrink MaxAttempts to
	// force retry exhaustion.
	Retry Backoff
}

func (o ChaosOptions) withDefaults() ChaosOptions {
	if o.MaxDelay <= 0 {
		o.MaxDelay = 2 * time.Millisecond
	}
	if o.Retry == (Backoff{}) {
		o.Retry = Backoff{Base: time.Millisecond, Max: 10 * time.Millisecond, MaxAttempts: 16, Total: 2 * time.Second}
	}
	return o
}

// ErrChaosKill marks operations refused by an injected peer death. It
// wraps nothing: the killed rank is the failure's origin, not a victim of
// a peer, so it deliberately does not match ErrPeerDown.
var ErrChaosKill = fmt.Errorf("chaos: endpoint killed")

// FaultCounts reports how many faults of each class an endpoint injected
// (or, for DupsDropped, absorbed).
type FaultCounts struct {
	Delays       int64
	Dups         int64
	DupsDropped  int64
	SendFailures int64
	Drops        int64
	Stalls       int64
	Killed       bool
}

type pairKey struct{ peer, tag int }

// chaosItem is one scheduled delivery, fully decided at Send time so the
// lane goroutine executes a deterministic script.
type chaosItem struct {
	frame []byte
	delay time.Duration
	dup   bool
	drop  bool
	nFail int
}

// chaosLane delivers the messages of one (dst, tag) stream in order, which
// preserves the per-pair FIFO guarantee while lanes overtake each other.
type chaosLane struct {
	cc       *ChaosComm
	dst, tag int

	mu     sync.Mutex
	nw     *sync.Cond
	q      []chaosItem
	closed bool
	done   chan struct{}
}

// ChaosComm decorates a Comm with fault injection. Construct one per rank
// with NewChaosComm; see ChaosOptions for the fault model.
type ChaosComm struct {
	inner Comm
	opt   ChaosOptions
	stats Stats

	mu       sync.Mutex
	rng      *rand.Rand
	sendSeq  map[pairKey]uint64
	recvSeen map[pairKey]uint64
	lanes    map[pairKey]*chaosLane
	ops      int
	killed   bool
	sticky   error

	pending sync.WaitGroup // undelivered lane items

	delays       atomic.Int64
	dups         atomic.Int64
	dupsDropped  atomic.Int64
	sendFailures atomic.Int64
	drops        atomic.Int64
	stalls       atomic.Int64
}

// NewChaosComm wraps inner with the fault model of o. The wrapper adds an
// 8-byte sequence header to every payload, so every rank of the world must
// be wrapped symmetrically.
func NewChaosComm(inner Comm, o ChaosOptions) *ChaosComm {
	o = o.withDefaults()
	cc := &ChaosComm{
		inner:    inner,
		opt:      o,
		sendSeq:  make(map[pairKey]uint64),
		recvSeen: make(map[pairKey]uint64),
		lanes:    make(map[pairKey]*chaosLane),
	}
	// Distinct stream per rank, pure function of (Seed, rank).
	cc.rng = rand.New(rand.NewSource(o.Seed*0x9E3779B9 + int64(inner.Rank())*0x85EBCA6B + 1))
	return cc
}

func (cc *ChaosComm) Rank() int     { return cc.inner.Rank() }
func (cc *ChaosComm) Size() int     { return cc.inner.Size() }
func (cc *ChaosComm) Stats() *Stats { return &cc.stats }

// Faults snapshots the endpoint's injected-fault counters.
func (cc *ChaosComm) Faults() FaultCounts {
	cc.mu.Lock()
	killed := cc.killed
	cc.mu.Unlock()
	return FaultCounts{
		Delays:       cc.delays.Load(),
		Dups:         cc.dups.Load(),
		DupsDropped:  cc.dupsDropped.Load(),
		SendFailures: cc.sendFailures.Load(),
		Drops:        cc.drops.Load(),
		Stalls:       cc.stalls.Load(),
		Killed:       killed,
	}
}

// opGate runs the per-operation lifecycle faults: sticky lane errors,
// scheduled death, and straggler stalls. Every Send/Recv passes through it.
func (cc *ChaosComm) opGate() error {
	cc.mu.Lock()
	if cc.sticky != nil {
		err := cc.sticky
		cc.mu.Unlock()
		return err
	}
	if cc.killed {
		cc.mu.Unlock()
		return fmt.Errorf("comm: rank %d: %w", cc.inner.Rank(), ErrChaosKill)
	}
	cc.ops++
	ops := cc.ops
	if cc.opt.KillAfter > 0 && cc.inner.Rank() == cc.opt.KillRank && ops > cc.opt.KillAfter {
		cc.killed = true
		cc.mu.Unlock()
		trace.Eventf("chaos", "rank %d killed after %d ops", cc.inner.Rank(), ops-1)
		return fmt.Errorf("comm: rank %d: %w", cc.inner.Rank(), ErrChaosKill)
	}
	stall := cc.opt.StallEvery > 0 && cc.inner.Rank() == cc.opt.StallRank && ops%cc.opt.StallEvery == 0
	cc.mu.Unlock()
	if stall {
		cc.stalls.Add(1)
		trace.Eventf("chaos", "rank %d stalling %v at op %d", cc.inner.Rank(), cc.opt.StallFor, ops)
		time.Sleep(cc.opt.StallFor)
	}
	return nil
}

// setSticky records the first asynchronous delivery failure; every later
// operation on the endpoint fails fast with it.
func (cc *ChaosComm) setSticky(err error) {
	cc.mu.Lock()
	if cc.sticky == nil {
		cc.sticky = err
	}
	cc.mu.Unlock()
}

// Send schedules data for delivery to (dst, tag), drawing this message's
// fault script from the rank's seeded stream. The data slice is copied
// immediately, honoring the Comm reuse contract.
func (cc *ChaosComm) Send(dst, tag int, data []byte) error {
	if err := checkPeer(cc, dst); err != nil {
		return err
	}
	if err := cc.opGate(); err != nil {
		return err
	}
	key := pairKey{dst, tag}
	cc.mu.Lock()
	cc.sendSeq[key]++
	seq := cc.sendSeq[key]
	it := chaosItem{}
	if cc.opt.DelayProb > 0 && cc.rng.Float64() < cc.opt.DelayProb {
		it.delay = time.Duration(1 + cc.rng.Int63n(int64(cc.opt.MaxDelay)))
	}
	if cc.opt.DupProb > 0 && cc.rng.Float64() < cc.opt.DupProb {
		it.dup = true
	}
	if cc.opt.DropProb > 0 && cc.rng.Float64() < cc.opt.DropProb {
		it.drop = true
	}
	for cc.opt.SendFailProb > 0 && it.nFail < 4 && cc.rng.Float64() < cc.opt.SendFailProb {
		it.nFail++
	}
	lane := cc.lanes[key]
	if lane == nil {
		lane = &chaosLane{cc: cc, dst: dst, tag: tag, done: make(chan struct{})}
		lane.nw = sync.NewCond(&lane.mu)
		cc.lanes[key] = lane
		go lane.run()
	}
	cc.mu.Unlock()

	it.frame = make([]byte, 8+len(data))
	binary.LittleEndian.PutUint64(it.frame[:8], seq)
	copy(it.frame[8:], data)

	cc.pending.Add(1)
	lane.mu.Lock()
	lane.q = append(lane.q, it)
	lane.mu.Unlock()
	lane.nw.Signal()
	cc.stats.recordSend(dst, len(data))
	return nil
}

func (l *chaosLane) run() {
	for {
		l.mu.Lock()
		for len(l.q) == 0 && !l.closed {
			l.nw.Wait()
		}
		if len(l.q) == 0 {
			l.mu.Unlock()
			close(l.done)
			return
		}
		it := l.q[0]
		l.q = l.q[1:]
		l.mu.Unlock()
		l.deliver(it)
		l.cc.pending.Done()
	}
}

// deliver executes one item's fault script: sleep, drop, fail-and-retry,
// duplicate. A delivery that exhausts the retry policy poisons the
// endpoint (sticky error) — the message is gone, so pretending the world
// is healthy would convert the loss into a silent wrong answer.
func (l *chaosLane) deliver(it chaosItem) {
	cc := l.cc
	if it.delay > 0 {
		cc.delays.Add(1)
		time.Sleep(it.delay)
	}
	if it.drop {
		cc.drops.Add(1)
		trace.Eventf("chaos", "rank %d dropped message to %d tag %d", cc.inner.Rank(), l.dst, l.tag)
		return
	}
	remaining := it.nFail
	err := cc.opt.Retry.Retry(fmt.Sprintf("chaos send rank %d -> %d tag %d", cc.inner.Rank(), l.dst, l.tag), func() error {
		if remaining > 0 {
			remaining--
			cc.sendFailures.Add(1)
			return Transient(fmt.Errorf("chaos: injected send failure"))
		}
		//lint:ignore tagconst decorator lane forwards the caller's tag verbatim
		return cc.inner.Send(l.dst, l.tag, it.frame)
	})
	if err != nil {
		cc.setSticky(err)
		return
	}
	if it.dup {
		cc.dups.Add(1)
		//lint:ignore tagconst decorator lane forwards the caller's tag verbatim
		if err := cc.inner.Send(l.dst, l.tag, it.frame); err != nil {
			cc.setSticky(err)
		}
	}
}

// Recv receives the next non-duplicate message from (src, tag), honoring
// the inner transport's deadline configuration.
func (cc *ChaosComm) Recv(src, tag int) ([]byte, error) {
	//lint:ignore tagconst decorator forwards the caller's tag verbatim
	return cc.recv(src, tag, func() ([]byte, error) { return cc.inner.Recv(src, tag) })
}

// RecvTimeout is Recv bounded by d per matching attempt (duplicates
// restart the wait; dedup is invisible to the deadline only in the
// pathological case of a duplicate arriving right at expiry).
func (cc *ChaosComm) RecvTimeout(src, tag int, d time.Duration) ([]byte, error) {
	return cc.recv(src, tag, func() ([]byte, error) { return RecvTimeout(cc.inner, src, tag, d) })
}

// SetRecvTimeout forwards the endpoint-wide deadline to the inner
// transport when it supports one.
func (cc *ChaosComm) SetRecvTimeout(d time.Duration) {
	SetRecvTimeout(cc.inner, d)
}

func (cc *ChaosComm) recv(src, tag int, inner func() ([]byte, error)) ([]byte, error) {
	if err := checkPeer(cc, src); err != nil {
		return nil, err
	}
	if err := cc.opGate(); err != nil {
		return nil, err
	}
	key := pairKey{src, tag}
	for {
		raw, err := inner()
		if err != nil {
			return nil, err
		}
		if len(raw) < 8 {
			return nil, fmt.Errorf("comm: chaos frame from rank %d tag %d too short (%d bytes); is the peer chaos-wrapped?", src, tag, len(raw))
		}
		seq := binary.LittleEndian.Uint64(raw[:8])
		cc.mu.Lock()
		seen := cc.recvSeen[key]
		if seq > seen {
			cc.recvSeen[key] = seq
		}
		cc.mu.Unlock()
		if seq <= seen {
			cc.dupsDropped.Add(1)
			continue
		}
		payload := raw[8:]
		cc.stats.recordRecv(len(payload))
		return payload, nil
	}
}

// Drain blocks until every scheduled delivery has run and returns the
// sticky error, if any. Call it before the rank exits (RunWorldChaos does)
// so in-flight delayed messages are not misread by peers as this rank
// dying.
func (cc *ChaosComm) Drain() error {
	cc.pending.Wait()
	cc.mu.Lock()
	defer cc.mu.Unlock()
	return cc.sticky
}

// Close drains scheduled deliveries and stops the lane goroutines. It
// returns the sticky delivery error, if any. The inner transport is not
// closed; its owner closes it.
func (cc *ChaosComm) Close() error {
	err := cc.Drain()
	cc.mu.Lock()
	lanes := make([]*chaosLane, 0, len(cc.lanes))
	for _, l := range cc.lanes {
		lanes = append(lanes, l)
	}
	cc.mu.Unlock()
	for _, l := range lanes {
		l.mu.Lock()
		l.closed = true
		l.mu.Unlock()
		l.nw.Broadcast()
	}
	for _, l := range lanes {
		<-l.done
	}
	return err
}

// RunWorldChaos is RunWorld with every rank's endpoint wrapped in a
// ChaosComm configured by o. Each rank's wrapper is drained and closed
// after fn returns, so delayed in-flight messages land before the rank is
// marked dead; a sticky delivery failure surfaces as that rank's error.
func RunWorldChaos(p int, o ChaosOptions, fn func(Comm) error) error {
	return RunWorld(p, func(c Comm) error {
		cc := NewChaosComm(c, o)
		err := fn(cc)
		if cerr := cc.Close(); err == nil {
			err = cerr
		}
		return err
	})
}
