package comm

import (
	"fmt"
	"time"

	"repro/internal/trace"
	"repro/internal/wire"
)

// Collectives built on point-to-point messaging. All ranks of the world must
// call the same collective in the same order (bulk-synchronous usage), as
// with MPI.
//
// The overlapped variants (Alltoallv, AlltoallvFunc, Gather,
// AllreduceBytesRingPipelined — see overlap.go) post sends up front and
// consume replies as they arrive instead of serializing p−1 round-trips.
// They share the sequential variants' tags: per-(source, tag) FIFO plus the
// bulk-synchronous usage rule means each collective call consumes a fixed
// number of messages per peer stream, so sequential and overlapped calls
// can even be mixed across ranks of the same collective without
// mismatching. docs/PERFORMANCE.md describes the overlap design and why
// results stay bit-identical.

// collStart returns a start timestamp when per-collective trace accounting
// is enabled and the zero time otherwise, so the disabled path costs one
// atomic load and no clock reads.
func collStart() time.Time {
	if !trace.CollectiveStatsEnabled() {
		return time.Time{}
	}
	return time.Now()
}

// collDone reports one finished collective call begun at t0; bytes is the
// payload volume this rank contributed.
func collDone(k trace.Collective, t0 time.Time, bytes int64) {
	if t0.IsZero() {
		return
	}
	trace.RecordCollective(k, int64(time.Since(t0)), bytes)
}

func framesLen(out [][]byte) int64 {
	var n int64
	for _, b := range out {
		n += int64(len(b))
	}
	return n
}

// Barrier blocks until every rank has entered it (dissemination barrier,
// ⌈log₂ p⌉ rounds).
func Barrier(c Comm) error {
	defer collDone(trace.CollBarrier, collStart(), 0)
	p := c.Size()
	for k := 1; k < p; k <<= 1 {
		dst := (c.Rank() + k) % p
		src := (c.Rank() - k%p + p) % p
		if err := c.Send(dst, tagBarrier, nil); err != nil {
			return err
		}
		if _, err := c.Recv(src, tagBarrier); err != nil {
			return err
		}
	}
	return nil
}

// Bcast distributes root's data to every rank via a binomial tree and
// returns it. Non-root ranks pass data=nil (any input on non-roots is
// ignored).
func Bcast(c Comm, root int, data []byte) ([]byte, error) {
	if err := checkPeer(c, root); err != nil {
		return nil, err
	}
	defer collDone(trace.CollBcast, collStart(), int64(len(data)))
	p := c.Size()
	// Work in a rotated rank space where the root is 0.
	vrank := (c.Rank() - root + p) % p
	if vrank != 0 {
		// Receive from parent: clear the lowest set bit.
		parent := (vrank&(vrank-1) + root) % p
		got, err := c.Recv(parent, tagBcast)
		if err != nil {
			return nil, err
		}
		data = got
	}
	// Forward to children: set each bit above the lowest set bit while in range.
	lowest := vrank & (-vrank)
	if vrank == 0 {
		lowest = 1 << 62
	}
	for bit := 1; bit < p && bit < lowest; bit <<= 1 {
		child := vrank | bit
		if child < p && child != vrank {
			if err := c.Send((child+root)%p, tagBcast, data); err != nil {
				return nil, err
			}
		}
	}
	return data, nil
}

// AllreduceBytes combines every rank's payload with a user-supplied
// associative, commutative combine function; every rank returns the same
// combined result. The implementation folds non-power-of-two ranks into the
// largest power-of-two subgroup, runs recursive doubling there, and unfolds.
func AllreduceBytes(c Comm, data []byte, combine func(a, b []byte) []byte) ([]byte, error) {
	p := c.Size()
	if p == 1 {
		return data, nil
	}
	defer collDone(trace.CollAllreduce, collStart(), int64(len(data)))
	r := c.Rank()
	pow2 := 1
	for pow2*2 <= p {
		pow2 *= 2
	}
	rem := p - pow2
	// Fold: ranks >= pow2 send to (rank - pow2) and wait for the result.
	if r >= pow2 {
		if err := c.Send(r-pow2, tagReduce, data); err != nil {
			return nil, err
		}
		out, err := c.Recv(r-pow2, tagReduce)
		if err != nil {
			return nil, err
		}
		return out, nil
	}
	if r < rem {
		other, err := c.Recv(r+pow2, tagReduce)
		if err != nil {
			return nil, err
		}
		data = combine(data, other)
	}
	// Recursive doubling within [0, pow2).
	for mask := 1; mask < pow2; mask <<= 1 {
		partner := r ^ mask
		if err := c.Send(partner, tagReduce, data); err != nil {
			return nil, err
		}
		other, err := c.Recv(partner, tagReduce)
		if err != nil {
			return nil, err
		}
		data = combine(data, other)
	}
	// Unfold.
	if r < rem {
		if err := c.Send(r+pow2, tagReduce, data); err != nil {
			return nil, err
		}
	}
	return data, nil
}

// AllreduceBytesRing is a ring-based alternative to AllreduceBytes: each
// rank forwards the running combination around a ring (p−1 steps), then the
// final value is broadcast from the last rank. Latency is O(p) instead of
// O(log p), but each step moves only one message; the ablation benchmarks
// compare the two. combine must be associative and commutative.
func AllreduceBytesRing(c Comm, data []byte, combine func(a, b []byte) []byte) ([]byte, error) {
	p := c.Size()
	if p == 1 {
		return data, nil
	}
	defer collDone(trace.CollAllreduceRing, collStart(), int64(len(data)))
	r := c.Rank()
	next := (r + 1) % p
	prev := (r - 1 + p) % p
	// Reduce phase: rank 0 starts; everyone else combines and forwards.
	if r != 0 {
		got, err := c.Recv(prev, tagReduce)
		if err != nil {
			return nil, err
		}
		data = combine(data, got)
	}
	if err := c.Send(next, tagReduce, data); err != nil {
		return nil, err
	}
	if r == 0 {
		// The value arriving from the last rank already covers every rank
		// (rank 0's own contribution entered the ring at the first step).
		got, err := c.Recv(prev, tagReduce)
		if err != nil {
			return nil, err
		}
		data = got
	} else {
		// Everyone already forwarded; now take the final value as it
		// circulates back.
		got, err := c.Recv(prev, tagReduce)
		if err != nil {
			return nil, err
		}
		data = got
	}
	// One more forwarding round distributes the final value; the last rank
	// before rank 0 must not send back into rank 0's reduce stream.
	if r != p-1 {
		if err := c.Send(next, tagReduce, data); err != nil {
			return nil, err
		}
	}
	return data, nil
}

// AllreduceFloat64Sum returns the sum of v across all ranks.
func AllreduceFloat64Sum(c Comm, v float64) (float64, error) {
	buf := wire.NewBuffer(8)
	buf.PutF64(v)
	out, err := AllreduceBytes(c, buf.Bytes(), func(a, b []byte) []byte {
		ra, rb := wire.NewReader(a), wire.NewReader(b)
		s := wire.NewBuffer(8)
		s.PutF64(ra.F64() + rb.F64())
		return s.Bytes()
	})
	if err != nil {
		return 0, err
	}
	return wire.NewReader(out).F64(), nil
}

// AllreduceInt64Sum returns the sum of v across all ranks.
func AllreduceInt64Sum(c Comm, v int64) (int64, error) {
	buf := wire.NewBuffer(8)
	buf.PutI64(v)
	out, err := AllreduceBytes(c, buf.Bytes(), func(a, b []byte) []byte {
		ra, rb := wire.NewReader(a), wire.NewReader(b)
		s := wire.NewBuffer(8)
		s.PutI64(ra.I64() + rb.I64())
		return s.Bytes()
	})
	if err != nil {
		return 0, err
	}
	return wire.NewReader(out).I64(), nil
}

// AllreduceInt64Max returns the maximum of v across all ranks.
func AllreduceInt64Max(c Comm, v int64) (int64, error) {
	buf := wire.NewBuffer(8)
	buf.PutI64(v)
	out, err := AllreduceBytes(c, buf.Bytes(), func(a, b []byte) []byte {
		ra, rb := wire.NewReader(a), wire.NewReader(b)
		va, vb := ra.I64(), rb.I64()
		if vb > va {
			va = vb
		}
		s := wire.NewBuffer(8)
		s.PutI64(va)
		return s.Bytes()
	})
	if err != nil {
		return 0, err
	}
	return wire.NewReader(out).I64(), nil
}

// AllreduceFloat64SliceSum element-wise sums a fixed-length vector across
// ranks; every rank must pass the same length.
func AllreduceFloat64SliceSum(c Comm, vs []float64) ([]float64, error) {
	buf := wire.NewBuffer(len(vs)*8 + 8)
	buf.PutF64s(vs)
	out, err := AllreduceBytes(c, buf.Bytes(), func(a, b []byte) []byte {
		va := wire.NewReader(a).F64s()
		vb := wire.NewReader(b).F64s()
		if len(va) != len(vb) {
			panic(fmt.Sprintf("comm: allreduce slice length mismatch %d vs %d", len(va), len(vb)))
		}
		for i := range va {
			va[i] += vb[i]
		}
		s := wire.NewBuffer(len(va)*8 + 8)
		s.PutF64s(va)
		return s.Bytes()
	})
	if err != nil {
		return nil, err
	}
	return wire.NewReader(out).F64s(), nil
}

// Allgather collects every rank's payload; the result slice is indexed by
// rank and identical on all ranks. Ring algorithm, p−1 steps.
func Allgather(c Comm, mine []byte) ([][]byte, error) {
	return AllgatherInto(c, mine, nil)
}

// AllgatherInto is Allgather with caller-owned scratch: in (if non-nil)
// must have length Size() and is reused for the result, including in[Rank()]
// for the self copy, so a caller exchanging every iteration allocates
// nothing for the slice header or its own payload. Received buffers come
// from the transport and replace the previous contents of in.
func AllgatherInto(c Comm, mine []byte, in [][]byte) ([][]byte, error) {
	p := c.Size()
	if in == nil {
		in = make([][]byte, p)
	} else if len(in) != p {
		return nil, fmt.Errorf("comm: AllgatherInto needs %d scratch buffers, got %d", p, len(in))
	}
	r := c.Rank()
	in[r] = append(in[r][:0], mine...)
	if p == 1 {
		return in, nil
	}
	defer collDone(trace.CollAllgather, collStart(), int64(len(mine)))
	next := (r + 1) % p
	prev := (r - 1 + p) % p
	carry := in[r]
	for step := 0; step < p-1; step++ {
		if err := c.Send(next, tagAllgather, carry); err != nil {
			return nil, err
		}
		got, err := c.Recv(prev, tagAllgather)
		if err != nil {
			return nil, err
		}
		srcRank := (r - 1 - step + 2*p) % p
		in[srcRank] = got
		carry = got
	}
	return in, nil
}

// AlltoallvSeq performs a personalized all-to-all exchange: out[i] is sent
// to rank i, and the returned slice holds in[i] received from rank i. out
// must have length Size(); out[Rank()] is returned unchanged (copied).
//
// This is the sequential baseline: p−1 blocking Send/Recv steps, so total
// latency is the sum over peers. The overlapped Alltoallv in overlap.go
// returns identical results at max-over-peers latency; this variant is
// kept for A/B comparison (core's Options.SequentialCollectives, the
// benchmarks) and as the simplest reference implementation.
func AlltoallvSeq(c Comm, out [][]byte) ([][]byte, error) {
	p := c.Size()
	if len(out) != p {
		return nil, fmt.Errorf("comm: Alltoallv needs %d buffers, got %d", p, len(out))
	}
	defer collDone(trace.CollAlltoallv, collStart(), framesLen(out))
	r := c.Rank()
	in := make([][]byte, p)
	self := make([]byte, len(out[r]))
	copy(self, out[r])
	in[r] = self
	for step := 1; step < p; step++ {
		dst := (r + step) % p
		src := (r - step + p) % p
		if err := c.Send(dst, tagAlltoallv, out[dst]); err != nil {
			return nil, err
		}
		got, err := c.Recv(src, tagAlltoallv)
		if err != nil {
			return nil, err
		}
		in[src] = got
	}
	return in, nil
}

// Gather collects every rank's payload at root; non-root ranks return nil.
// The root receives in arrival order — one receiver goroutine per peer —
// so a single slow rank delays only its own slot instead of serializing
// the whole drain; the returned slice is still indexed by rank.
func Gather(c Comm, root int, mine []byte) ([][]byte, error) {
	if err := checkPeer(c, root); err != nil {
		return nil, err
	}
	if c.Rank() != root {
		return nil, c.Send(root, tagGather, mine)
	}
	p := c.Size()
	out := make([][]byte, p)
	cp := make([]byte, len(mine))
	copy(cp, mine)
	out[root] = cp
	if p == 1 {
		return out, nil
	}
	defer collDone(trace.CollGather, collStart(), int64(len(mine)))
	type arrival struct {
		src  int
		data []byte
		err  error
	}
	// Buffered to p−1 so receivers can finish even if we stop consuming,
	// and drained fully below so none outlive the call on the happy path.
	ch := make(chan arrival, p-1)
	for r := 0; r < p; r++ {
		if r == root {
			continue
		}
		go func(r int) {
			got, err := c.Recv(r, tagGather)
			ch <- arrival{src: r, data: got, err: err}
		}(r)
	}
	var firstErr error
	for i := 1; i < p; i++ {
		a := <-ch
		if a.err != nil {
			if firstErr == nil {
				firstErr = a.err
			}
			continue
		}
		out[a.src] = a.data
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}
