// Package comm is the message-passing substrate of the distributed Louvain
// implementation: a hand-rolled, MPI-flavoured communication layer written
// against the standard library only.
//
// A Comm is one rank's endpoint in a world of Size() ranks. Point-to-point
// messages are byte slices addressed by (destination rank, tag); matching on
// the receive side is by (source rank, tag) with FIFO order per pair, which
// mirrors MPI's non-overtaking guarantee. Collectives (Barrier, Bcast,
// Allreduce, Allgather, Alltoallv) are built on top of point-to-point in
// collectives.go and work with any transport.
//
// Two transports are provided:
//
//   - in-process (inproc.go): ranks are goroutines, messages travel through
//     in-memory mailboxes. This is how the simulations and tests run.
//   - TCP (tcp.go): ranks are OS processes connected by a full mesh of TCP
//     connections with length-prefixed frames. This demonstrates the same
//     algorithm code running truly distributed.
//
// Every endpoint keeps traffic statistics (message and byte counts, per-peer
// byte counts) so the experiments can report communication volume exactly.
//
// The layer is fault-aware: failures surface as typed sentinels (ErrPeerDown,
// ErrTimeout, ErrClosed, ErrRetriesExhausted — see errors.go) rather than
// hangs; receives can be deadline-bounded (deadline.go); dialing and writing
// retry transient errors with seeded exponential backoff (retry.go); and a
// deterministic chaos-injection wrapper (chaos.go) plus a cross-transport
// conformance suite (conformance_test.go) prove those contracts on every CI
// run. docs/ROBUSTNESS.md describes the fault model and how to write chaos
// tests.
package comm

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// Comm is one rank's endpoint in a communicator.
//
// Send never blocks on the receiver (transports buffer internally); Recv
// blocks until a message with the given source and tag arrives. Tags must be
// non-negative; negative tags are reserved for the collectives.
type Comm interface {
	// Rank returns this endpoint's rank in [0, Size()).
	Rank() int
	// Size returns the number of ranks in the world.
	Size() int
	// Send delivers data to rank dst with the given tag. The data slice is
	// not retained; it may be reused after Send returns.
	Send(dst, tag int, data []byte) error
	// Recv blocks until a message from src with the given tag arrives and
	// returns its payload.
	Recv(src, tag int) ([]byte, error)
	// Stats returns this endpoint's traffic counters.
	Stats() *Stats
}

// Tag-space convention. Receive matching is by (source, tag) only, so the
// tag registry below is the sole thing preventing two concurrent protocols
// from consuming each other's messages:
//
//   - Tags < 0 are reserved for the collectives in collectives.go and are
//     allocated here, in one block, via iota — never ad hoc.
//   - Tags >= 0 belong to user code (algorithm phases, experiment
//     harnesses, tests).
//   - Every tag used with Send/Recv must be a named constant with a tag
//     prefix, declared in a registry block like this one, and no two tag
//     constants may share a value. The tagconst analyzer (internal/
//     analysis) enforces the naming and uniqueness in non-test code, and
//     TestTagRegistry locks in this block's invariants.
//
// When adding a collective, append its tag to this block so the iota
// chain keeps the values distinct.
const (
	tagBarrier = -1 - iota
	tagBcast
	tagReduce
	tagAllgather
	tagAlltoallv
	tagGather
	tagMigrate
)

func checkPeer(c Comm, peer int) error {
	if peer < 0 || peer >= c.Size() {
		return fmt.Errorf("comm: peer rank %d out of range [0,%d)", peer, c.Size())
	}
	return nil
}

// Stats counts traffic through one endpoint. All methods are safe for
// concurrent use.
type Stats struct {
	msgsSent  atomic.Int64
	msgsRecv  atomic.Int64
	bytesSent atomic.Int64
	bytesRecv atomic.Int64

	mu        sync.Mutex
	perPeerTx map[int]int64
}

func (s *Stats) recordSend(dst int, n int) {
	s.msgsSent.Add(1)
	s.bytesSent.Add(int64(n))
	s.mu.Lock()
	if s.perPeerTx == nil {
		s.perPeerTx = make(map[int]int64)
	}
	s.perPeerTx[dst] += int64(n)
	s.mu.Unlock()
}

func (s *Stats) recordRecv(n int) {
	s.msgsRecv.Add(1)
	s.bytesRecv.Add(int64(n))
}

// Snapshot is a point-in-time copy of an endpoint's counters.
type Snapshot struct {
	MsgsSent, MsgsRecv   int64
	BytesSent, BytesRecv int64
	PerPeerBytesSent     map[int]int64
}

// Snapshot returns a copy of the current counters.
func (s *Stats) Snapshot() Snapshot {
	snap := Snapshot{
		MsgsSent:  s.msgsSent.Load(),
		MsgsRecv:  s.msgsRecv.Load(),
		BytesSent: s.bytesSent.Load(),
		BytesRecv: s.bytesRecv.Load(),
	}
	s.mu.Lock()
	snap.PerPeerBytesSent = make(map[int]int64, len(s.perPeerTx))
	for k, v := range s.perPeerTx {
		snap.PerPeerBytesSent[k] = v
	}
	s.mu.Unlock()
	return snap
}

// Reset zeroes all counters.
func (s *Stats) Reset() {
	s.msgsSent.Store(0)
	s.msgsRecv.Store(0)
	s.bytesSent.Store(0)
	s.bytesRecv.Store(0)
	s.mu.Lock()
	s.perPeerTx = nil
	s.mu.Unlock()
}

// RunWorld creates an in-process world of p ranks and runs fn once per rank,
// each on its own goroutine. It returns the joined errors of all ranks.
// This is the entry point used by all simulations and tests.
func RunWorld(p int, fn func(Comm) error) error {
	if p < 1 {
		return fmt.Errorf("comm: world size %d, want >= 1", p)
	}
	world := newInprocWorld(p)
	errs := make([]error, p)
	var wg sync.WaitGroup
	wg.Add(p)
	for r := 0; r < p; r++ {
		go func(r int) {
			defer wg.Done()
			// Mark the rank dead once fn is finished (or has panicked), so
			// peers blocked on it fail fast instead of deadlocking.
			defer world.markDead(r)
			defer func() {
				if rec := recover(); rec != nil {
					errs[r] = fmt.Errorf("comm: rank %d panicked: %v", r, rec)
				}
			}()
			errs[r] = fn(world.endpoint(r))
		}(r)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// WorldStats aggregates per-rank snapshots collected by RunWorldStats.
type WorldStats struct {
	PerRank []Snapshot
}

// TotalBytesSent sums sent bytes over all ranks.
func (w WorldStats) TotalBytesSent() int64 {
	var t int64
	for _, s := range w.PerRank {
		t += s.BytesSent
	}
	return t
}

// MaxBytesSent returns the maximum per-rank sent byte count.
func (w WorldStats) MaxBytesSent() int64 {
	var m int64
	for _, s := range w.PerRank {
		if s.BytesSent > m {
			m = s.BytesSent
		}
	}
	return m
}

// RunWorldStats is RunWorld plus a final per-rank traffic snapshot.
func RunWorldStats(p int, fn func(Comm) error) (WorldStats, error) {
	if p < 1 {
		return WorldStats{}, fmt.Errorf("comm: world size %d, want >= 1", p)
	}
	world := newInprocWorld(p)
	errs := make([]error, p)
	var wg sync.WaitGroup
	wg.Add(p)
	for r := 0; r < p; r++ {
		go func(r int) {
			defer wg.Done()
			defer world.markDead(r)
			defer func() {
				if rec := recover(); rec != nil {
					errs[r] = fmt.Errorf("comm: rank %d panicked: %v", r, rec)
				}
			}()
			errs[r] = fn(world.endpoint(r))
		}(r)
	}
	wg.Wait()
	ws := WorldStats{PerRank: make([]Snapshot, p)}
	for r := 0; r < p; r++ {
		ws.PerRank[r] = world.endpoint(r).Stats().Snapshot()
	}
	return ws, errors.Join(errs...)
}
