package comm

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/wire"
)

func TestRunWorldBasicExchange(t *testing.T) {
	err := RunWorld(4, func(c Comm) error {
		next := (c.Rank() + 1) % c.Size()
		prev := (c.Rank() - 1 + c.Size()) % c.Size()
		msg := []byte(fmt.Sprintf("from-%d", c.Rank()))
		if err := c.Send(next, 0, msg); err != nil {
			return err
		}
		got, err := c.Recv(prev, 0)
		if err != nil {
			return err
		}
		want := fmt.Sprintf("from-%d", prev)
		if string(got) != want {
			return fmt.Errorf("rank %d got %q, want %q", c.Rank(), got, want)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunWorldSizeOne(t *testing.T) {
	err := RunWorld(1, func(c Comm) error {
		if c.Size() != 1 || c.Rank() != 0 {
			return fmt.Errorf("bad world: rank %d size %d", c.Rank(), c.Size())
		}
		// self-send works
		if err := c.Send(0, 5, []byte("x")); err != nil {
			return err
		}
		got, err := c.Recv(0, 5)
		if err != nil {
			return err
		}
		if string(got) != "x" {
			return fmt.Errorf("self message = %q", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunWorldInvalidSize(t *testing.T) {
	if err := RunWorld(0, func(Comm) error { return nil }); err == nil {
		t.Fatal("expected error for world size 0")
	}
}

func TestRunWorldPropagatesErrors(t *testing.T) {
	sentinel := errors.New("rank failure")
	err := RunWorld(3, func(c Comm) error {
		if c.Rank() == 1 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want wrapping %v", err, sentinel)
	}
}

func TestRunWorldRecoversPanic(t *testing.T) {
	err := RunWorld(2, func(c Comm) error {
		if c.Rank() == 0 {
			panic("boom")
		}
		return nil
	})
	if err == nil {
		t.Fatal("expected panic to surface as error")
	}
}

func TestTagMatching(t *testing.T) {
	err := RunWorld(2, func(c Comm) error {
		if c.Rank() == 0 {
			// send tag 2 first, then tag 1
			if err := c.Send(1, 2, []byte("two")); err != nil {
				return err
			}
			return c.Send(1, 1, []byte("one"))
		}
		// receive in the opposite tag order
		one, err := c.Recv(0, 1)
		if err != nil {
			return err
		}
		two, err := c.Recv(0, 2)
		if err != nil {
			return err
		}
		if string(one) != "one" || string(two) != "two" {
			return fmt.Errorf("tag matching broken: %q %q", one, two)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFIFOPerPair(t *testing.T) {
	const n = 100
	err := RunWorld(2, func(c Comm) error {
		if c.Rank() == 0 {
			for i := 0; i < n; i++ {
				b := wire.NewBuffer(8)
				b.PutU64(uint64(i))
				if err := c.Send(1, 7, b.Bytes()); err != nil {
					return err
				}
			}
			return nil
		}
		for i := 0; i < n; i++ {
			got, err := c.Recv(0, 7)
			if err != nil {
				return err
			}
			if v := wire.NewReader(got).U64(); v != uint64(i) {
				return fmt.Errorf("out of order: got %d at position %d", v, i)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendCopiesPayload(t *testing.T) {
	err := RunWorld(2, func(c Comm) error {
		if c.Rank() == 0 {
			buf := []byte("original")
			if err := c.Send(1, 0, buf); err != nil {
				return err
			}
			copy(buf, "clobber!")
			return c.Send(1, 1, nil) // sync point
		}
		got, err := c.Recv(0, 0)
		if err != nil {
			return err
		}
		if _, err := c.Recv(0, 1); err != nil {
			return err
		}
		if string(got) != "original" {
			return fmt.Errorf("payload aliased sender buffer: %q", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPeerRangeChecks(t *testing.T) {
	err := RunWorld(2, func(c Comm) error {
		if err := c.Send(5, 0, nil); err == nil {
			return errors.New("Send to rank 5 should fail")
		}
		if _, err := c.Recv(-1, 0); err == nil {
			return errors.New("Recv from rank -1 should fail")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestStatsCounts(t *testing.T) {
	ws, err := RunWorldStats(2, func(c Comm) error {
		if c.Rank() == 0 {
			return c.Send(1, 0, make([]byte, 100))
		}
		_, err := c.Recv(0, 0)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if ws.PerRank[0].BytesSent != 100 || ws.PerRank[0].MsgsSent != 1 {
		t.Errorf("rank 0 stats = %+v", ws.PerRank[0])
	}
	if ws.PerRank[1].BytesRecv != 100 || ws.PerRank[1].MsgsRecv != 1 {
		t.Errorf("rank 1 stats = %+v", ws.PerRank[1])
	}
	if ws.PerRank[0].PerPeerBytesSent[1] != 100 {
		t.Errorf("per-peer bytes = %v", ws.PerRank[0].PerPeerBytesSent)
	}
	if ws.TotalBytesSent() != 100 || ws.MaxBytesSent() != 100 {
		t.Errorf("aggregates: total %d max %d", ws.TotalBytesSent(), ws.MaxBytesSent())
	}
}

func TestStatsReset(t *testing.T) {
	var s Stats
	s.recordSend(3, 10)
	s.recordRecv(5)
	s.Reset()
	snap := s.Snapshot()
	if snap.BytesSent != 0 || snap.BytesRecv != 0 || snap.MsgsSent != 0 || snap.MsgsRecv != 0 || len(snap.PerPeerBytesSent) != 0 {
		t.Errorf("Reset left counters: %+v", snap)
	}
}

func worldSizes() []int { return []int{1, 2, 3, 4, 5, 7, 8, 16} }

func TestBarrierAllSizes(t *testing.T) {
	for _, p := range worldSizes() {
		p := p
		t.Run(fmt.Sprintf("p=%d", p), func(t *testing.T) {
			var phase atomic.Int64
			err := RunWorld(p, func(c Comm) error {
				phase.Add(1)
				if err := Barrier(c); err != nil {
					return err
				}
				if got := phase.Load(); got != int64(p) {
					return fmt.Errorf("rank %d passed barrier with phase %d, want %d", c.Rank(), got, p)
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestBcastAllSizesAllRoots(t *testing.T) {
	for _, p := range worldSizes() {
		for root := 0; root < p; root += max(1, p/3) {
			p, root := p, root
			t.Run(fmt.Sprintf("p=%d/root=%d", p, root), func(t *testing.T) {
				payload := []byte(fmt.Sprintf("payload-from-%d", root))
				err := RunWorld(p, func(c Comm) error {
					var in []byte
					if c.Rank() == root {
						in = payload
					}
					got, err := Bcast(c, root, in)
					if err != nil {
						return err
					}
					if string(got) != string(payload) {
						return fmt.Errorf("rank %d got %q", c.Rank(), got)
					}
					return nil
				})
				if err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

func TestBcastInvalidRoot(t *testing.T) {
	err := RunWorld(2, func(c Comm) error {
		_, err := Bcast(c, 9, nil)
		if err == nil {
			return errors.New("expected error for invalid root")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllreduceSumsAllSizes(t *testing.T) {
	for _, p := range worldSizes() {
		p := p
		t.Run(fmt.Sprintf("p=%d", p), func(t *testing.T) {
			wantF := float64(p*(p-1)) / 2
			wantI := int64(p * (p - 1) / 2)
			err := RunWorld(p, func(c Comm) error {
				f, err := AllreduceFloat64Sum(c, float64(c.Rank()))
				if err != nil {
					return err
				}
				if f != wantF {
					return fmt.Errorf("rank %d float sum = %g, want %g", c.Rank(), f, wantF)
				}
				i, err := AllreduceInt64Sum(c, int64(c.Rank()))
				if err != nil {
					return err
				}
				if i != wantI {
					return fmt.Errorf("rank %d int sum = %d, want %d", c.Rank(), i, wantI)
				}
				m, err := AllreduceInt64Max(c, int64(c.Rank()*10))
				if err != nil {
					return err
				}
				if m != int64((p-1)*10) {
					return fmt.Errorf("rank %d max = %d, want %d", c.Rank(), m, (p-1)*10)
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestAllreduceSliceSum(t *testing.T) {
	p := 5
	err := RunWorld(p, func(c Comm) error {
		vs := []float64{float64(c.Rank()), 1, float64(-c.Rank())}
		out, err := AllreduceFloat64SliceSum(c, vs)
		if err != nil {
			return err
		}
		want := []float64{10, 5, -10}
		for i := range want {
			if out[i] != want[i] {
				return fmt.Errorf("out = %v, want %v", out, want)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllgatherAllSizes(t *testing.T) {
	for _, p := range worldSizes() {
		p := p
		t.Run(fmt.Sprintf("p=%d", p), func(t *testing.T) {
			err := RunWorld(p, func(c Comm) error {
				mine := []byte(fmt.Sprintf("r%d", c.Rank()))
				all, err := Allgather(c, mine)
				if err != nil {
					return err
				}
				if len(all) != p {
					return fmt.Errorf("got %d pieces", len(all))
				}
				for r := 0; r < p; r++ {
					if string(all[r]) != fmt.Sprintf("r%d", r) {
						return fmt.Errorf("all[%d] = %q", r, all[r])
					}
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestAlltoallvAllSizes(t *testing.T) {
	for _, p := range worldSizes() {
		p := p
		t.Run(fmt.Sprintf("p=%d", p), func(t *testing.T) {
			err := RunWorld(p, func(c Comm) error {
				out := make([][]byte, p)
				for dst := 0; dst < p; dst++ {
					out[dst] = []byte(fmt.Sprintf("%d->%d", c.Rank(), dst))
				}
				in, err := Alltoallv(c, out)
				if err != nil {
					return err
				}
				for src := 0; src < p; src++ {
					want := fmt.Sprintf("%d->%d", src, c.Rank())
					if string(in[src]) != want {
						return fmt.Errorf("in[%d] = %q, want %q", src, in[src], want)
					}
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestAlltoallvWrongLength(t *testing.T) {
	err := RunWorld(2, func(c Comm) error {
		if _, err := Alltoallv(c, make([][]byte, 1)); err == nil {
			return errors.New("expected length error")
		}
		// complete the collective correctly so both ranks exit
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGather(t *testing.T) {
	p := 6
	root := 2
	err := RunWorld(p, func(c Comm) error {
		mine := []byte{byte(c.Rank())}
		out, err := Gather(c, root, mine)
		if err != nil {
			return err
		}
		if c.Rank() != root {
			if out != nil {
				return errors.New("non-root got data")
			}
			return nil
		}
		for r := 0; r < p; r++ {
			if len(out[r]) != 1 || out[r][0] != byte(r) {
				return fmt.Errorf("out[%d] = %v", r, out[r])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCollectivesComposeUnderLoad(t *testing.T) {
	// Randomized sequence of collectives, all ranks in lockstep; verifies
	// there is no cross-talk between consecutive operations.
	p := 8
	rounds := 30
	err := RunWorld(p, func(c Comm) error {
		rng := rand.New(rand.NewSource(99)) // same sequence on every rank
		for i := 0; i < rounds; i++ {
			switch rng.Intn(4) {
			case 0:
				if err := Barrier(c); err != nil {
					return err
				}
			case 1:
				root := rng.Intn(p)
				var in []byte
				if c.Rank() == root {
					in = []byte{byte(i)}
				}
				got, err := Bcast(c, root, in)
				if err != nil {
					return err
				}
				if len(got) != 1 || got[0] != byte(i) {
					return fmt.Errorf("round %d bcast got %v", i, got)
				}
			case 2:
				s, err := AllreduceInt64Sum(c, 1)
				if err != nil {
					return err
				}
				if s != int64(p) {
					return fmt.Errorf("round %d sum = %d", i, s)
				}
			case 3:
				out := make([][]byte, p)
				for d := 0; d < p; d++ {
					out[d] = []byte{byte(c.Rank()), byte(d), byte(i)}
				}
				in, err := Alltoallv(c, out)
				if err != nil {
					return err
				}
				for s := 0; s < p; s++ {
					if in[s][0] != byte(s) || in[s][1] != byte(c.Rank()) || in[s][2] != byte(i) {
						return fmt.Errorf("round %d alltoallv in[%d] = %v", i, s, in[s])
					}
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDeadRankUnblocksPeers(t *testing.T) {
	// A rank that exits early (here: by error) must not deadlock peers
	// blocked on receiving from it; their Recv fails instead.
	err := RunWorld(3, func(c Comm) error {
		if c.Rank() == 2 {
			return errors.New("rank 2 dies before sending")
		}
		if _, err := c.Recv(2, 0); err == nil {
			return errors.New("Recv from dead rank should fail")
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "rank 2 dies") {
		t.Fatalf("err = %v", err)
	}
}

func TestPanickedRankUnblocksPeers(t *testing.T) {
	err := RunWorld(2, func(c Comm) error {
		if c.Rank() == 1 {
			panic("rank 1 explodes")
		}
		if _, err := c.Recv(1, 0); err == nil {
			return errors.New("Recv from panicked rank should fail")
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("err = %v", err)
	}
}

func TestMessagesFromDeadRankStillDeliverable(t *testing.T) {
	// A message sent before the rank exits must still be receivable.
	err := RunWorld(2, func(c Comm) error {
		if c.Rank() == 1 {
			return c.Send(0, 0, []byte("parting gift"))
		}
		got, err := c.Recv(1, 0)
		if err != nil {
			return err
		}
		if string(got) != "parting gift" {
			return fmt.Errorf("got %q", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
