package comm

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"
)

// Transport conformance suite: one shared battery of contract tests run
// against every transport — inproc, TCP loopback, and both wrapped in the
// chaos decorator under benign (delay/reorder/duplicate/transient-failure)
// fault schedules. The battery asserts the invariants the algorithm layer
// depends on: per-(src, tag) FIFO, tag isolation, bit-identical collective
// results, logical stats accounting, and typed dead-peer errors. Every
// world runs under a watchdog, so a regression that deadlocks fails with a
// goroutine dump instead of hanging the test binary.

// conformanceWatchdog bounds one world's wall time. Generous because the
// race detector plus chaos delays can stretch a run, but far below the
// package test timeout.
const conformanceWatchdog = 30 * time.Second

// transportCase runs fn as rank r of a p-rank world over one transport,
// returning the joined per-rank errors.
type transportCase struct {
	name  string
	chaos bool
	run   func(t *testing.T, p int, fn func(Comm) error) error
}

// benignChaos injects every fault class that must NOT change results:
// delivery delay (reordering across (src, tag) streams), duplicates, and
// transient send failures recovered by retry. No loss, no death.
func benignChaos(seed int64) ChaosOptions {
	return ChaosOptions{
		Seed:         seed,
		DelayProb:    0.25,
		MaxDelay:     300 * time.Microsecond,
		DupProb:      0.15,
		SendFailProb: 0.1,
	}
}

func runInprocChaos(t *testing.T, p int, o ChaosOptions, fn func(Comm) error) error {
	t.Helper()
	return RunWorldChaos(p, o, fn)
}

func runTCPWorldChaos(t *testing.T, p int, o ChaosOptions, fn func(Comm) error) error {
	t.Helper()
	return runTCPWorld(t, p, func(c Comm) error {
		cc := NewChaosComm(c, o)
		err := fn(cc)
		if cerr := cc.Close(); err == nil {
			err = cerr
		}
		return err
	})
}

func conformanceTransports() []transportCase {
	return []transportCase{
		{name: "inproc", run: func(t *testing.T, p int, fn func(Comm) error) error {
			return RunWorld(p, fn)
		}},
		{name: "tcp", run: runTCPWorld},
		{name: "chaos-inproc", chaos: true, run: func(t *testing.T, p int, fn func(Comm) error) error {
			return runInprocChaos(t, p, benignChaos(7), fn)
		}},
		{name: "chaos-tcp", chaos: true, run: func(t *testing.T, p int, fn func(Comm) error) error {
			return runTCPWorldChaos(t, p, benignChaos(7), fn)
		}},
	}
}

// withWatchdog fails the test with a full goroutine dump if fn does not
// finish within d — the conformance suite's "never deadlocks" teeth.
func withWatchdog(t *testing.T, d time.Duration, fn func() error) error {
	t.Helper()
	done := make(chan error, 1)
	go func() { done <- fn() }()
	select {
	case err := <-done:
		return err
	case <-time.After(d):
		buf := make([]byte, 1<<20)
		n := runtime.Stack(buf, true)
		t.Fatalf("watchdog: world still running after %v\n%s", d, buf[:n])
		return nil
	}
}

// payload builds a deterministic, content-checkable message whose length
// varies with its coordinates, so misrouted or truncated frames cannot
// collide with a legitimate one.
func payload(kind string, coords ...int) []byte {
	s := kind
	for _, c := range coords {
		s = fmt.Sprintf("%s/%d", s, c)
	}
	// Variable length exercises framing: 0..63 extra bytes.
	pad := 0
	for _, c := range coords {
		pad = (pad*31 + c + 7) % 64
	}
	b := []byte(s)
	for i := 0; i < pad; i++ {
		b = append(b, byte(i))
	}
	return b
}

// TestConformance runs the shared battery over every transport.
func TestConformance(t *testing.T) {
	const p = 4
	for _, tc := range conformanceTransports() {
		t.Run(tc.name, func(t *testing.T) {
			t.Run("PointToPointFIFO", func(t *testing.T) {
				err := withWatchdog(t, conformanceWatchdog, func() error {
					return tc.run(t, p, batteryPointToPointFIFO)
				})
				if err != nil {
					t.Fatal(err)
				}
			})
			t.Run("TagIsolation", func(t *testing.T) {
				err := withWatchdog(t, conformanceWatchdog, func() error {
					return tc.run(t, p, batteryTagIsolation)
				})
				if err != nil {
					t.Fatal(err)
				}
			})
			t.Run("Collectives", func(t *testing.T) {
				err := withWatchdog(t, conformanceWatchdog, func() error {
					return tc.run(t, p, batteryCollectives)
				})
				if err != nil {
					t.Fatal(err)
				}
			})
			t.Run("Stats", func(t *testing.T) {
				err := withWatchdog(t, conformanceWatchdog, func() error {
					return tc.run(t, p, batteryStats)
				})
				if err != nil {
					t.Fatal(err)
				}
			})
			t.Run("DeadPeer", func(t *testing.T) {
				err := withWatchdog(t, conformanceWatchdog, func() error {
					return tc.run(t, p, batteryDeadPeer)
				})
				if err == nil {
					t.Fatal("expected surviving ranks to fail with ErrPeerDown, got nil")
				}
				if !errors.Is(err, ErrPeerDown) {
					t.Fatalf("expected error wrapping ErrPeerDown, got %v", err)
				}
			})
		})
	}
}

// batteryPointToPointFIFO floods every (dst, tag) pair with numbered
// messages and asserts per-pair arrival order — the transport's
// non-overtaking contract — while different pairs may interleave freely.
func batteryPointToPointFIFO(c Comm) error {
	const rounds = 20
	tags := []int{3, 9}
	p, r := c.Size(), c.Rank()
	for i := 0; i < rounds; i++ {
		for dst := 0; dst < p; dst++ {
			for _, tag := range tags {
				if err := c.Send(dst, tag, payload("fifo", r, dst, tag, i)); err != nil {
					return err
				}
			}
		}
	}
	for src := 0; src < p; src++ {
		for _, tag := range tags {
			for i := 0; i < rounds; i++ {
				got, err := c.Recv(src, tag)
				if err != nil {
					return err
				}
				want := payload("fifo", src, r, tag, i)
				if !bytes.Equal(got, want) {
					return fmt.Errorf("rank %d: fifo violation from %d tag %d round %d: got %q want %q",
						r, src, tag, i, got, want)
				}
			}
		}
	}
	return nil
}

// batteryTagIsolation posts on two tags and receives them in the opposite
// order: matching must be by (src, tag), not arrival order.
func batteryTagIsolation(c Comm) error {
	p, r := c.Size(), c.Rank()
	next := (r + 1) % p
	prev := (r - 1 + p) % p
	if err := c.Send(next, 7, payload("iso", r, 7)); err != nil {
		return err
	}
	if err := c.Send(next, 8, payload("iso", r, 8)); err != nil {
		return err
	}
	for _, tag := range []int{8, 7} { // reverse of send order
		got, err := c.Recv(prev, tag)
		if err != nil {
			return err
		}
		if want := payload("iso", prev, tag); !bytes.Equal(got, want) {
			return fmt.Errorf("rank %d tag %d: got %q want %q", r, tag, got, want)
		}
	}
	return nil
}

// batteryCollectives runs all seven collectives (plus the scalar wrappers)
// and compares every result against a locally computed expectation,
// byte-for-byte. Under benign chaos this is the bit-identical-results
// guarantee of the conformance suite.
func batteryCollectives(c Comm) error {
	p, r := c.Size(), c.Rank()

	if err := Barrier(c); err != nil {
		return fmt.Errorf("barrier: %w", err)
	}

	root := 1 % p
	var bcastIn []byte
	if r == root {
		bcastIn = payload("bcast", root)
	}
	got, err := Bcast(c, root, bcastIn)
	if err != nil {
		return fmt.Errorf("bcast: %w", err)
	}
	if want := payload("bcast", root); !bytes.Equal(got, want) {
		return fmt.Errorf("bcast: rank %d got %q want %q", r, got, want)
	}

	sumU64 := func(a, b []byte) []byte {
		out := make([]byte, 8)
		binary.LittleEndian.PutUint64(out, binary.LittleEndian.Uint64(a)+binary.LittleEndian.Uint64(b))
		return out
	}
	mine := make([]byte, 8)
	binary.LittleEndian.PutUint64(mine, uint64(r+1))
	wantSum := uint64(p * (p + 1) / 2)
	// Fixed order: both variants share tagAllreduce, so every rank must run
	// them in the same sequence (a map's randomized iteration order here
	// would cross-match the two collectives and deadlock).
	variants := []struct {
		name string
		fn   func(Comm, []byte, func(a, b []byte) []byte) ([]byte, error)
	}{{"allreduce", AllreduceBytes}, {"allreduce-ring", AllreduceBytesRing}}
	for _, v := range variants {
		name, fn := v.name, v.fn
		out, err := fn(c, mine, sumU64)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		if got := binary.LittleEndian.Uint64(out); got != wantSum {
			return fmt.Errorf("%s: rank %d got %d want %d", name, r, got, wantSum)
		}
	}

	all, err := Allgather(c, payload("gathered", r))
	if err != nil {
		return fmt.Errorf("allgather: %w", err)
	}
	for i := 0; i < p; i++ {
		if want := payload("gathered", i); !bytes.Equal(all[i], want) {
			return fmt.Errorf("allgather: rank %d slot %d got %q want %q", r, i, all[i], want)
		}
	}

	out := make([][]byte, p)
	for i := 0; i < p; i++ {
		out[i] = payload("a2a", r, i)
	}
	in, err := Alltoallv(c, out)
	if err != nil {
		return fmt.Errorf("alltoallv: %w", err)
	}
	for i := 0; i < p; i++ {
		if want := payload("a2a", i, r); !bytes.Equal(in[i], want) {
			return fmt.Errorf("alltoallv: rank %d from %d got %q want %q", r, i, in[i], want)
		}
	}

	// Overlapped engine (PR 4). The sequential baseline and the streaming
	// variant share tagAlltoallv with the overlapped call above, so — like
	// the allreduce variants — they must run in the same fixed order on
	// every rank. The baseline must agree with the overlapped default
	// byte-for-byte.
	inSeq, err := AlltoallvSeq(c, out)
	if err != nil {
		return fmt.Errorf("alltoallv-seq: %w", err)
	}
	for i := 0; i < p; i++ {
		if !bytes.Equal(inSeq[i], in[i]) {
			return fmt.Errorf("alltoallv-seq: rank %d from %d got %q want %q", r, i, inSeq[i], in[i])
		}
	}

	// Streaming variant: every source must be delivered exactly once with
	// the right payload, own payload first (its fixed position in the
	// otherwise arrival-ordered callback sequence).
	outF := make([][]byte, p)
	for i := 0; i < p; i++ {
		outF[i] = payload("a2af", r, i)
	}
	seen := make([]bool, p)
	first := -1
	calls := 0
	err = AlltoallvFunc(c, outF, func(src int, pay []byte) error {
		if first == -1 {
			first = src
		}
		if src < 0 || src >= p || seen[src] {
			return fmt.Errorf("duplicate or bad src %d", src)
		}
		seen[src] = true
		calls++
		if want := payload("a2af", src, r); !bytes.Equal(pay, want) {
			return fmt.Errorf("from %d got %q want %q", src, pay, want)
		}
		return nil
	})
	if err != nil {
		return fmt.Errorf("alltoallv-func: rank %d: %w", r, err)
	}
	if calls != p || first != r {
		return fmt.Errorf("alltoallv-func: rank %d calls=%d first=%d, want %d calls and self first", r, calls, first, p)
	}

	// Scratch-reusing allgather, twice through the same scratch to prove a
	// second round leaves no stale bytes behind.
	agScratch := make([][]byte, p)
	for round := 0; round < 2; round++ {
		res, err := AllgatherInto(c, payload("ag2", r, round), agScratch)
		if err != nil {
			return fmt.Errorf("allgather-into: %w", err)
		}
		for i := 0; i < p; i++ {
			if want := payload("ag2", i, round); !bytes.Equal(res[i], want) {
				return fmt.Errorf("allgather-into: rank %d round %d slot %d got %q want %q", r, round, i, res[i], want)
			}
		}
	}

	// Fused per-iteration reduction: component-wise sum/max/max/sum. The
	// expected values are exact in float64 (integers plus halves), so any
	// combine association must reproduce them bit-for-bit.
	st, err := AllreduceIterStats(c, IterStats{
		Moved: int64(r + 1), Work: int64(2 * r), CommNS: int64(100 - r), Q: float64(r) + 0.5,
	})
	if err != nil {
		return fmt.Errorf("iterstats: %w", err)
	}
	wantStats := IterStats{
		Moved:  int64(p * (p + 1) / 2),
		Work:   int64(2 * (p - 1)),
		CommNS: 100,
		Q:      float64(p*(p-1)/2) + 0.5*float64(p),
	}
	if st != wantStats {
		return fmt.Errorf("iterstats: rank %d got %+v want %+v", r, st, wantStats)
	}

	// Fused reduction with the work-vector piggyback: the scalar bundle must
	// match AllreduceIterStats bit-for-bit and the vector must reassemble
	// every rank's Work contribution in its slot.
	workVec := make([]int64, p)
	stw, err := AllreduceIterStatsWork(c, IterStats{
		Moved: int64(r + 1), Work: int64(2 * r), CommNS: int64(100 - r), Q: float64(r) + 0.5,
	}, workVec)
	if err != nil {
		return fmt.Errorf("iterstats-work: %w", err)
	}
	if stw != wantStats {
		return fmt.Errorf("iterstats-work: rank %d got %+v want %+v", r, stw, wantStats)
	}
	for i := 0; i < p; i++ {
		if workVec[i] != int64(2*i) {
			return fmt.Errorf("iterstats-work: rank %d slot %d got %d want %d", r, i, workVec[i], 2*i)
		}
	}

	// Sequential-path counterpart: own slot set, zeros elsewhere, elementwise
	// max reassembles the identical vector.
	sparse := make([]int64, p)
	sparse[r] = int64(2 * r)
	maxVec, err := AllreduceInt64SliceMax(c, sparse)
	if err != nil {
		return fmt.Errorf("slicemax: %w", err)
	}
	for i := 0; i < p; i++ {
		if maxVec[i] != workVec[i] {
			return fmt.Errorf("slicemax: rank %d slot %d got %d want %d", r, i, maxVec[i], workVec[i])
		}
	}

	// Migration exchange: exactly-once delivery with self first (overlapped)
	// and byte-equality of the sequential baseline, mirroring the alltoallv
	// checks above but on the migration tag.
	outM := make([][]byte, p)
	for i := 0; i < p; i++ {
		outM[i] = payload("mig", r, i)
	}
	seenM := make([]bool, p)
	firstM, callsM := -1, 0
	err = MigrationExchange(c, outM, func(src int, pay []byte) error {
		if firstM == -1 {
			firstM = src
		}
		if src < 0 || src >= p || seenM[src] {
			return fmt.Errorf("duplicate or bad src %d", src)
		}
		seenM[src] = true
		callsM++
		if want := payload("mig", src, r); !bytes.Equal(pay, want) {
			return fmt.Errorf("from %d got %q want %q", src, pay, want)
		}
		return nil
	})
	if err != nil {
		return fmt.Errorf("migration-exchange: rank %d: %w", r, err)
	}
	if callsM != p || firstM != r {
		return fmt.Errorf("migration-exchange: rank %d calls=%d first=%d, want %d calls and self first", r, callsM, firstM, p)
	}
	inM, err := MigrationExchangeSeq(c, outM)
	if err != nil {
		return fmt.Errorf("migration-exchange-seq: %w", err)
	}
	for i := 0; i < p; i++ {
		if want := payload("mig", i, r); !bytes.Equal(inM[i], want) {
			return fmt.Errorf("migration-exchange-seq: rank %d from %d got %q want %q", r, i, inM[i], want)
		}
	}

	// Pipelined ring and size-based selection over a 64-record u64 vector
	// with an elementwise-max combine (an exact semilattice, so every
	// algorithm must produce identical bytes). Fixed order once more: all
	// three runs share tagReduce.
	const nrec = 64
	mineV := make([]byte, nrec*8)
	wantV := make([]byte, nrec*8)
	for i := 0; i < nrec; i++ {
		binary.LittleEndian.PutUint64(mineV[i*8:], uint64(r*1000+i))
		binary.LittleEndian.PutUint64(wantV[i*8:], uint64((p-1)*1000+i))
	}
	maxU64 := func(a, b []byte) []byte {
		res := make([]byte, len(a))
		for i := 0; i+8 <= len(a); i += 8 {
			va, vb := binary.LittleEndian.Uint64(a[i:]), binary.LittleEndian.Uint64(b[i:])
			if vb > va {
				va = vb
			}
			binary.LittleEndian.PutUint64(res[i:], va)
		}
		return res
	}
	split8 := func(data []byte, n int) [][]byte {
		segs := make([][]byte, n)
		rec := len(data) / 8
		for i := 0; i < n; i++ {
			segs[i] = data[(i*rec/n)*8 : ((i+1)*rec/n)*8]
		}
		return segs
	}
	ringRuns := []struct {
		name string
		fn   func() ([]byte, error)
	}{
		{"ring-pipelined", func() ([]byte, error) { return AllreduceBytesRingPipelined(c, mineV, 8, split8, maxU64) }},
		{"auto-ring", func() ([]byte, error) { return AllreduceBytesAuto(c, mineV, autoRingMinRecords, split8, maxU64) }},
		{"auto-doubling", func() ([]byte, error) { return AllreduceBytesAuto(c, mineV, 1, split8, maxU64) }},
	}
	for _, v := range ringRuns {
		res, err := v.fn()
		if err != nil {
			return fmt.Errorf("%s: %w", v.name, err)
		}
		if !bytes.Equal(res, wantV) {
			return fmt.Errorf("%s: rank %d result diverges from elementwise max", v.name, r)
		}
	}

	gath, err := Gather(c, 0, payload("root", r))
	if err != nil {
		return fmt.Errorf("gather: %w", err)
	}
	if r == 0 {
		for i := 0; i < p; i++ {
			if want := payload("root", i); !bytes.Equal(gath[i], want) {
				return fmt.Errorf("gather: slot %d got %q want %q", i, gath[i], want)
			}
		}
	}

	fs, err := AllreduceFloat64Sum(c, float64(r+1))
	if err != nil {
		return fmt.Errorf("float64sum: %w", err)
	}
	if fs != float64(p*(p+1)/2) {
		return fmt.Errorf("float64sum: rank %d got %v want %v", r, fs, float64(p*(p+1)/2))
	}
	im, err := AllreduceInt64Max(c, int64(r*r))
	if err != nil {
		return fmt.Errorf("int64max: %w", err)
	}
	if want := int64((p - 1) * (p - 1)); im != want {
		return fmt.Errorf("int64max: rank %d got %d want %d", r, im, want)
	}
	vs, err := AllreduceFloat64SliceSum(c, []float64{float64(r), 1, float64(-r)})
	if err != nil {
		return fmt.Errorf("slicesum: %w", err)
	}
	wantVS := []float64{float64(p * (p - 1) / 2), float64(p), float64(-p * (p - 1) / 2)}
	for i := range vs {
		if vs[i] != wantVS[i] {
			return fmt.Errorf("slicesum: rank %d slot %d got %v want %v", r, i, vs[i], wantVS[i])
		}
	}
	return nil
}

// batteryLossSafe is the battery for lossy regimes: Barrier, Bcast,
// AllreduceBytes, Alltoallv, and Gather each use every (src, tag) stream
// for at most one message at p=4, so a dropped message can only starve a
// Recv (a typed ErrTimeout/ErrPeerDown), never shift a multi-message
// stream and surface as a content mismatch. Ring-based collectives, which
// reuse one stream per neighbor, are deliberately excluded here and
// covered by the benign regimes.
func batteryLossSafe(c Comm) error {
	p, r := c.Size(), c.Rank()
	if err := Barrier(c); err != nil {
		return fmt.Errorf("barrier: %w", err)
	}
	root := 1 % p
	var bcastIn []byte
	if r == root {
		bcastIn = payload("bcast", root)
	}
	got, err := Bcast(c, root, bcastIn)
	if err != nil {
		return fmt.Errorf("bcast: %w", err)
	}
	if want := payload("bcast", root); !bytes.Equal(got, want) {
		return fmt.Errorf("bcast: rank %d got %q want %q", r, got, want)
	}
	sumU64 := func(a, b []byte) []byte {
		out := make([]byte, 8)
		binary.LittleEndian.PutUint64(out, binary.LittleEndian.Uint64(a)+binary.LittleEndian.Uint64(b))
		return out
	}
	mine := make([]byte, 8)
	binary.LittleEndian.PutUint64(mine, uint64(r+1))
	red, err := AllreduceBytes(c, mine, sumU64)
	if err != nil {
		return fmt.Errorf("allreduce: %w", err)
	}
	if got, want := binary.LittleEndian.Uint64(red), uint64(p*(p+1)/2); got != want {
		return fmt.Errorf("allreduce: rank %d got %d want %d", r, got, want)
	}
	out := make([][]byte, p)
	for i := 0; i < p; i++ {
		out[i] = payload("a2a", r, i)
	}
	in, err := Alltoallv(c, out)
	if err != nil {
		return fmt.Errorf("alltoallv: %w", err)
	}
	for i := 0; i < p; i++ {
		if want := payload("a2a", i, r); !bytes.Equal(in[i], want) {
			return fmt.Errorf("alltoallv: rank %d from %d got %q want %q", r, i, in[i], want)
		}
	}
	gath, err := Gather(c, 0, payload("root", r))
	if err != nil {
		return fmt.Errorf("gather: %w", err)
	}
	if r == 0 {
		for i := 0; i < p; i++ {
			if want := payload("root", i); !bytes.Equal(gath[i], want) {
				return fmt.Errorf("gather: slot %d got %q want %q", i, gath[i], want)
			}
		}
	}
	return nil
}

// batteryStats checks that Stats counts logical application traffic: the
// chaos wrapper's duplicates, retries, and its sequence header must not
// leak into the numbers the algorithm layer reports.
func batteryStats(c Comm) error {
	p, r := c.Size(), c.Rank()
	var wantSentBytes int64
	for dst := 0; dst < p; dst++ {
		if dst == r {
			continue
		}
		msg := payload("stats", r, dst)
		if err := c.Send(dst, 5, msg); err != nil {
			return err
		}
		wantSentBytes += int64(len(msg))
	}
	var wantRecvBytes int64
	for src := 0; src < p; src++ {
		if src == r {
			continue
		}
		got, err := c.Recv(src, 5)
		if err != nil {
			return err
		}
		if want := payload("stats", src, r); !bytes.Equal(got, want) {
			return fmt.Errorf("stats battery: rank %d from %d got %q want %q", r, src, got, want)
		}
		wantRecvBytes += int64(len(got))
	}
	snap := c.Stats().Snapshot()
	if snap.MsgsSent != int64(p-1) || snap.MsgsRecv != int64(p-1) {
		return fmt.Errorf("rank %d: msgs sent/recv = %d/%d, want %d/%d",
			r, snap.MsgsSent, snap.MsgsRecv, p-1, p-1)
	}
	if snap.BytesSent != wantSentBytes || snap.BytesRecv != wantRecvBytes {
		return fmt.Errorf("rank %d: bytes sent/recv = %d/%d, want %d/%d",
			r, snap.BytesSent, snap.BytesRecv, wantSentBytes, wantRecvBytes)
	}
	var perPeer int64
	for _, n := range snap.PerPeerBytesSent {
		perPeer += n
	}
	if perPeer != wantSentBytes {
		return fmt.Errorf("rank %d: per-peer bytes sum %d, want %d", r, perPeer, wantSentBytes)
	}
	return nil
}

// batteryDeadPeer has the highest rank exit immediately; every survivor's
// Recv from it must fail with an error wrapping ErrPeerDown — never hang.
func batteryDeadPeer(c Comm) error {
	p, r := c.Size(), c.Rank()
	if r == p-1 {
		return nil // exit without sending; transport marks us dead
	}
	_, err := c.Recv(p-1, 2)
	if err == nil {
		return fmt.Errorf("rank %d: Recv from dead rank %d returned a message", r, p-1)
	}
	if !errors.Is(err, ErrPeerDown) {
		return fmt.Errorf("rank %d: Recv from dead rank %d: got %v, want ErrPeerDown", r, p-1, err)
	}
	return err // propagate so the battery's caller can assert the type
}

// TestChaosMatrix is the seeded robustness sweep: many chaos schedules per
// transport, three fault regimes. Benign regimes must return bit-identical
// collective results; lossy and killing regimes must end in clean typed
// errors under receive deadlines. A final goroutine census catches leaks
// across the whole sweep.
func TestChaosMatrix(t *testing.T) {
	const p = 4
	baseline := runtime.NumGoroutine()

	benignSeeds, lossySeeds, killSeeds := 25, 15, 10
	if testing.Short() {
		benignSeeds, lossySeeds, killSeeds = 5, 3, 2
	}

	transports := []struct {
		name string
		run  func(t *testing.T, p int, o ChaosOptions, fn func(Comm) error) error
	}{
		{"inproc", runInprocChaos},
		{"tcp", runTCPWorldChaos},
	}

	for _, tr := range transports {
		t.Run(tr.name, func(t *testing.T) {
			t.Run("benign", func(t *testing.T) {
				for seed := int64(1); seed <= int64(benignSeeds); seed++ {
					err := withWatchdog(t, conformanceWatchdog, func() error {
						return tr.run(t, p, benignChaos(seed), batteryCollectives)
					})
					if err != nil {
						t.Fatalf("seed %d: %v", seed, err)
					}
				}
			})
			t.Run("lossy", func(t *testing.T) {
				for seed := int64(1); seed <= int64(lossySeeds); seed++ {
					o := benignChaos(seed)
					o.DropProb = 0.03
					var mu sync.Mutex
					var dropped int64
					err := withWatchdog(t, conformanceWatchdog, func() error {
						return tr.run(t, p, o, func(c Comm) error {
							SetRecvTimeout(c, time.Second)
							err := batteryLossSafe(c)
							if cc, ok := c.(*ChaosComm); ok {
								cc.Drain() // flush scheduled faults so the count below is exact
								mu.Lock()
								dropped += cc.Faults().Drops
								mu.Unlock()
							}
							return err
						})
					})
					mu.Lock()
					nDropped := dropped
					mu.Unlock()
					if nDropped == 0 {
						if err != nil {
							t.Fatalf("seed %d: no drops injected but world failed: %v", seed, err)
						}
						continue
					}
					if err == nil {
						t.Fatalf("seed %d: %d messages dropped but every rank succeeded", seed, nDropped)
					}
					if !errors.Is(err, ErrTimeout) && !errors.Is(err, ErrPeerDown) {
						t.Fatalf("seed %d: drops must surface as ErrTimeout/ErrPeerDown, got %v", seed, err)
					}
				}
			})
			t.Run("kill", func(t *testing.T) {
				for seed := int64(1); seed <= int64(killSeeds); seed++ {
					o := ChaosOptions{Seed: seed, KillRank: int(seed) % p, KillAfter: 3 + int(seed)%11}
					err := withWatchdog(t, conformanceWatchdog, func() error {
						return tr.run(t, p, o, func(c Comm) error {
							SetRecvTimeout(c, time.Second)
							return batteryCollectives(c)
						})
					})
					if err == nil {
						t.Fatalf("seed %d: rank %d was killed but world succeeded", seed, o.KillRank)
					}
					if !errors.Is(err, ErrChaosKill) {
						t.Fatalf("seed %d: missing ErrChaosKill from killed rank: %v", seed, err)
					}
					// Survivors must fail cleanly, not hang: any error is one of
					// the three typed outcomes.
					if !typedOnly(err) {
						t.Fatalf("seed %d: untyped survivor error: %v", seed, err)
					}
				}
			})
		})
	}

	waitGoroutines(t, baseline)
}

// typedOnly reports whether every leaf of a joined error is one of the
// sanctioned typed failures (timeout, peer down, chaos kill, closed).
func typedOnly(err error) bool {
	type unwrapper interface{ Unwrap() []error }
	if u, ok := err.(unwrapper); ok {
		for _, e := range u.Unwrap() {
			if !typedOnly(e) {
				return false
			}
		}
		return true
	}
	return errors.Is(err, ErrTimeout) || errors.Is(err, ErrPeerDown) ||
		errors.Is(err, ErrChaosKill) || errors.Is(err, ErrClosed)
}

// waitGoroutines polls until the live goroutine count returns to (near)
// baseline, failing with a dump if it does not — the leak detector for the
// whole chaos sweep.
func waitGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		n := runtime.NumGoroutine()
		// Allow slack for runtime/test-framework goroutines that come and go.
		if n <= baseline+3 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			m := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak: %d live, baseline %d\n%s", n, baseline, buf[:m])
		}
		time.Sleep(10 * time.Millisecond)
	}
}
