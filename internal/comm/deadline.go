package comm

import (
	"sync"
	"time"
)

// Deadline-aware receiving. Recv's contract is to block until a matching
// message arrives or the transport fails — which turns one stalled or
// silently dead peer into a world-wide hang. Both transports (and the chaos
// wrapper) therefore also implement the two optional interfaces below:
// a per-call timeout (RecvTimeout) and an endpoint-wide default deadline
// (SetRecvTimeout) that makes every plain Recv — including the ones issued
// inside the collectives — fail with ErrTimeout once it has waited d with
// no matching message. core.Options.CommDeadline plumbs the latter through
// the algorithm without touching any call site.

// TimeoutComm is implemented by endpoints supporting per-call receive
// timeouts. d <= 0 means no deadline (identical to Recv).
type TimeoutComm interface {
	Comm
	// RecvTimeout is Recv bounded by d: if no matching message arrives
	// within d it returns an error wrapping ErrTimeout.
	RecvTimeout(src, tag int, d time.Duration) ([]byte, error)
}

// RecvDeadliner is implemented by endpoints supporting an endpoint-wide
// default receive deadline applied to every subsequent Recv.
type RecvDeadliner interface {
	// SetRecvTimeout sets the default per-Recv deadline; d <= 0 restores
	// unbounded blocking.
	SetRecvTimeout(d time.Duration)
}

// SetRecvTimeout applies a default receive deadline to c if its transport
// supports one, reporting whether it did.
func SetRecvTimeout(c Comm, d time.Duration) bool {
	rd, ok := c.(RecvDeadliner)
	if ok {
		rd.SetRecvTimeout(d)
	}
	return ok
}

// RecvTimeout receives with a deadline when the transport supports it and
// falls back to a plain blocking Recv otherwise.
func RecvTimeout(c Comm, src, tag int, d time.Duration) ([]byte, error) {
	if tc, ok := c.(TimeoutComm); ok {
		return tc.RecvTimeout(src, tag, d)
	}
	//lint:ignore tagconst adapter forwards the caller's tag verbatim
	return c.Recv(src, tag)
}

// waitOrDeadline parks the caller on cond — whose lock must be held — until
// a broadcast, or reports that the deadline has passed (a zero deadline
// waits indefinitely and always returns false). The mailbox loops call it
// in place of cond.Wait and re-check their predicate on every wakeup, so a
// spurious timer broadcast costs one extra scan, never a lost message.
func waitOrDeadline(cond *sync.Cond, deadline time.Time) bool {
	if deadline.IsZero() {
		cond.Wait()
		return false
	}
	rem := time.Until(deadline)
	if rem <= 0 {
		return true
	}
	// The timer callback takes the lock before broadcasting so it cannot
	// fire in the window between the caller's predicate check and its
	// cond.Wait (the caller holds the lock throughout that window).
	t := time.AfterFunc(rem, func() {
		cond.L.Lock()
		cond.Broadcast()
		cond.L.Unlock()
	})
	cond.Wait()
	t.Stop()
	return false
}
