package comm

import (
	"errors"
	"fmt"
)

// Typed failure classes of the comm layer. Callers branch on these with
// errors.Is; every transport and helper wraps one of them so that a failed
// collective is diagnosable without string matching:
//
//   - ErrPeerDown: a peer exited, crashed, or its connection broke. The
//     world cannot complete another collective that involves that rank;
//     the clean reaction is to abort the rank's run and propagate.
//   - ErrClosed: this endpoint was closed locally while an operation was
//     in flight (e.g. a Recv pending across Close).
//   - ErrTimeout: a receive deadline (Options.CommDeadline /
//     RecvTimeout) expired before a matching message arrived. Either a
//     peer is stalled past the deadline or a message was lost.
//   - ErrRetriesExhausted: a retrying helper (Backoff.Retry, the TCP
//     dialer) gave up after its attempt/time budget.
//
// docs/ROBUSTNESS.md specifies the contract in full.
var (
	ErrPeerDown         = errors.New("peer down")
	ErrClosed           = errors.New("endpoint closed")
	ErrTimeout          = errors.New("recv deadline exceeded")
	ErrRetriesExhausted = errors.New("retries exhausted")
)

// TransientError marks a failure worth retrying (a refused dial while the
// peer's listener starts, a timed-out write, an injected chaos fault).
// Backoff.Retry retries only transient errors; everything else is
// propagated immediately.
type TransientError struct {
	Err error
}

func (e *TransientError) Error() string { return fmt.Sprintf("transient: %v", e.Err) }
func (e *TransientError) Unwrap() error { return e.Err }

// Transient wraps err as retryable. A nil err returns nil.
func Transient(err error) error {
	if err == nil {
		return nil
	}
	return &TransientError{Err: err}
}

// IsTransient reports whether err is marked retryable.
func IsTransient(err error) bool {
	var te *TransientError
	return errors.As(err, &te)
}
