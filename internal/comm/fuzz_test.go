package comm

import (
	"bytes"
	"fmt"
	"testing"
)

// FuzzAllreduceBytes drives both allreduce implementations through the
// in-process transport with fuzzer-chosen payloads and world sizes,
// checking the result on every rank against a serially computed
// expectation. The combine is bytewise addition over the common prefix
// with the longer tail appended — deliberately length-asymmetric, because
// the non-power-of-two fold and the ring segment exchange are where
// length-handling bugs hide. Seeds cover the empty payload and the
// single-rank world.
func FuzzAllreduceBytes(f *testing.F) {
	f.Add(1, []byte{})
	f.Add(1, []byte{0xff})
	f.Add(2, []byte{})
	f.Add(3, []byte{1, 2, 3})
	f.Add(4, []byte("payload"))
	f.Add(5, []byte{0, 0, 0, 0, 0, 0, 0, 0, 1})
	f.Add(8, bytes.Repeat([]byte{0xab}, 257))

	f.Fuzz(func(t *testing.T, p int, base []byte) {
		if p < 1 || p > 8 {
			t.Skip()
		}
		if len(base) > 1<<16 {
			t.Skip()
		}

		// Rank r contributes base rotated by r with r added bytewise, so
		// every contribution is distinct but derivable.
		contrib := func(r int) []byte {
			out := make([]byte, len(base))
			for i := range base {
				out[i] = base[(i+r)%len(base)] + byte(r)
			}
			return out
		}
		combine := func(a, b []byte) []byte {
			n := len(a)
			if len(b) < n {
				n = len(b)
			}
			out := make([]byte, 0, max(len(a), len(b)))
			for i := 0; i < n; i++ {
				out = append(out, a[i]+b[i])
			}
			if len(a) > n {
				out = append(out, a[n:]...)
			} else {
				out = append(out, b[n:]...)
			}
			return out
		}

		// Serial ground truth: left fold in rank order. Both collectives
		// promise a combine order equivalent to this for associative and
		// commutative operators; bytewise add is both.
		want := contrib(0)
		for r := 1; r < p; r++ {
			want = combine(want, contrib(r))
		}

		for _, impl := range []struct {
			name string
			fn   func(Comm, []byte, func(a, b []byte) []byte) ([]byte, error)
		}{{"doubling", AllreduceBytes}, {"ring", AllreduceBytesRing}} {
			err := RunWorld(p, func(c Comm) error {
				got, err := impl.fn(c, contrib(c.Rank()), combine)
				if err != nil {
					return err
				}
				if !bytes.Equal(got, want) {
					return fmt.Errorf("%s: rank %d got %x want %x", impl.name, c.Rank(), got, want)
				}
				return nil
			})
			if err != nil {
				t.Fatalf("p=%d len=%d: %v", p, len(base), err)
			}
		}
	})
}
