package comm

import (
	"fmt"
	"sync"
	"time"
)

// inprocWorld is the in-process transport: p endpoints whose mailboxes live
// in shared memory. Each endpoint owns an unbounded mailbox protected by a
// mutex and condition variable; Send appends to the destination's mailbox,
// Recv waits for the first message matching (src, tag). FIFO order per
// (src, tag) pair is guaranteed because Send appends under the same lock.
type inprocWorld struct {
	eps []*inprocEndpoint
}

func newInprocWorld(p int) *inprocWorld {
	w := &inprocWorld{eps: make([]*inprocEndpoint, p)}
	for r := 0; r < p; r++ {
		ep := &inprocEndpoint{rank: r, world: w, dead: make([]bool, p)}
		ep.cond = sync.NewCond(&ep.mu)
		w.eps[r] = ep
	}
	return w
}

func (w *inprocWorld) endpoint(r int) *inprocEndpoint { return w.eps[r] }

// markDead records that rank r has exited (normally or by panic) and wakes
// every endpoint so Recvs blocked on r fail instead of hanging forever.
func (w *inprocWorld) markDead(r int) {
	for _, ep := range w.eps {
		ep.mu.Lock()
		ep.dead[r] = true
		ep.mu.Unlock()
		ep.cond.Broadcast()
	}
}

type inprocMessage struct {
	src, tag int
	data     []byte
}

type inprocEndpoint struct {
	rank  int
	world *inprocWorld
	stats Stats

	mu       sync.Mutex
	cond     *sync.Cond
	inbox    []inprocMessage
	dead     []bool // peers that exited; Recv from them fails instead of hanging
	deadline time.Duration
}

func (e *inprocEndpoint) Rank() int     { return e.rank }
func (e *inprocEndpoint) Size() int     { return len(e.world.eps) }
func (e *inprocEndpoint) Stats() *Stats { return &e.stats }

func (e *inprocEndpoint) Send(dst, tag int, data []byte) error {
	if err := checkPeer(e, dst); err != nil {
		return err
	}
	// Copy the payload: the contract says the caller may reuse its buffer,
	// and the receiver runs on another goroutine.
	cp := make([]byte, len(data))
	copy(cp, data)
	peer := e.world.eps[dst]
	peer.mu.Lock()
	peer.inbox = append(peer.inbox, inprocMessage{src: e.rank, tag: tag, data: cp})
	peer.mu.Unlock()
	peer.cond.Broadcast()
	e.stats.recordSend(dst, len(data))
	return nil
}

// SetRecvTimeout sets the endpoint-wide default deadline applied to every
// subsequent Recv; d <= 0 restores unbounded blocking.
func (e *inprocEndpoint) SetRecvTimeout(d time.Duration) {
	e.mu.Lock()
	e.deadline = d
	e.mu.Unlock()
}

func (e *inprocEndpoint) Recv(src, tag int) ([]byte, error) {
	e.mu.Lock()
	d := e.deadline
	e.mu.Unlock()
	return e.RecvTimeout(src, tag, d)
}

// RecvTimeout is Recv bounded by d (<= 0 blocks without a deadline).
func (e *inprocEndpoint) RecvTimeout(src, tag int, d time.Duration) ([]byte, error) {
	if err := checkPeer(e, src); err != nil {
		return nil, err
	}
	var deadline time.Time
	if d > 0 {
		deadline = time.Now().Add(d)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	for {
		for i := range e.inbox {
			m := e.inbox[i]
			if m.src == src && m.tag == tag {
				e.inbox = append(e.inbox[:i], e.inbox[i+1:]...)
				e.stats.recordRecv(len(m.data))
				return m.data, nil
			}
		}
		if src != e.rank && e.dead[src] {
			return nil, fmt.Errorf("comm: rank %d exited; rank %d cannot receive tag %d from it: %w", src, e.rank, tag, ErrPeerDown)
		}
		if waitOrDeadline(e.cond, deadline) {
			return nil, fmt.Errorf("comm: rank %d recv from %d tag %d: no message within %v: %w", e.rank, src, tag, d, ErrTimeout)
		}
	}
}
