package comm

import (
	"fmt"

	"repro/internal/trace"
	"repro/internal/wire"
)

// Mid-solve vertex migration (docs/PERFORMANCE.md, "Dynamic load
// rebalancing"). The rebalancer runs three personalized exchanges between
// clustering iterations — vertex payloads, ghost-subscription requests,
// and label replies — on their own tag so migration frames can never be
// confused with the per-iteration alltoallv traffic, and are accounted as
// their own collective kind (trace.CollMigrate) in the census.

// MigrationExchange is the overlapped personalized all-to-all of the
// vertex-migration protocol: it posts all p−1 sends on tagMigrate, then
// streams each inbound payload to fn as it arrives (own payload first,
// peers in arrival order). Like AlltoallvFunc, fn runs on the calling
// goroutine only and its effect must not depend on the arrival order; the
// payload slice is valid only during the callback.
//
// This is a symmetric collective: every rank of the world must call it,
// with the same schedule, or the world deadlocks.
func MigrationExchange(c Comm, out [][]byte, fn func(src int, payload []byte) error) error {
	p := c.Size()
	if len(out) != p {
		return fmt.Errorf("comm: MigrationExchange needs %d buffers, got %d", p, len(out))
	}
	r := c.Rank()
	if p == 1 {
		return fn(r, out[r])
	}
	defer collDone(trace.CollMigrate, collStart(), framesLen(out))
	for step := 1; step < p; step++ {
		dst := (r + step) % p
		if err := c.Send(dst, tagMigrate, out[dst]); err != nil {
			return err
		}
	}
	firstErr := fn(r, out[r])
	type arrival struct {
		src  int
		data []byte
		err  error
	}
	ch := make(chan arrival, p-1)
	for step := 1; step < p; step++ {
		src := (r - step + p) % p
		go func(src int) {
			got, err := c.Recv(src, tagMigrate)
			ch <- arrival{src: src, data: got, err: err}
		}(src)
	}
	for i := 1; i < p; i++ {
		a := <-ch
		if a.err != nil {
			if firstErr == nil {
				firstErr = a.err
			}
			continue
		}
		if firstErr != nil {
			continue // drain without decoding after a failure
		}
		if err := fn(a.src, a.data); err != nil {
			firstErr = err
		}
	}
	return firstErr
}

// MigrationExchangeSeq is the sequential baseline of MigrationExchange:
// p−1 blocking round-trips on tagMigrate, results indexed by source rank.
// It pairs with Options.SequentialCollectives exactly like AlltoallvSeq
// pairs with the overlapped alltoallv.
func MigrationExchangeSeq(c Comm, out [][]byte) ([][]byte, error) {
	p := c.Size()
	if len(out) != p {
		return nil, fmt.Errorf("comm: MigrationExchange needs %d buffers, got %d", p, len(out))
	}
	defer collDone(trace.CollMigrate, collStart(), framesLen(out))
	r := c.Rank()
	in := make([][]byte, p)
	self := make([]byte, len(out[r]))
	copy(self, out[r])
	in[r] = self
	for step := 1; step < p; step++ {
		dst := (r + step) % p
		src := (r - step + p) % p
		if err := c.Send(dst, tagMigrate, out[dst]); err != nil {
			return nil, err
		}
		got, err := c.Recv(src, tagMigrate)
		if err != nil {
			return nil, err
		}
		in[src] = got
	}
	return in, nil
}

// combineIterStatsWork merges two encoded IterStats+work-vector payloads:
// the 32-byte header combines exactly like combineIterStats (sum, max,
// max, operand-order-matched float sum) and the trailing fixed-width
// int64 vector combines elementwise by max. Each rank contributes its own
// work only in its own slot (zero elsewhere), so the elementwise max
// reassembles the full per-rank vector; max is an exact semilattice, so
// any reduction tree yields the identical bytes.
func combineIterStatsWork(a, b []byte) []byte {
	ra, rb := wire.NewReader(a), wire.NewReader(b)
	s := wire.NewBuffer(len(a))
	s.PutI64(ra.I64() + rb.I64())
	wa, wb := ra.I64(), rb.I64()
	if wb > wa {
		wa = wb
	}
	s.PutI64(wa)
	ca, cb := ra.I64(), rb.I64()
	if cb > ca {
		ca = cb
	}
	s.PutI64(ca)
	// Same operand order as AllreduceFloat64Sum's combiner (accumulated +
	// received), so the fused Q stays bit-identical to the standalone sum.
	s.PutF64(ra.F64() + rb.F64())
	for ra.Remaining() > 0 {
		va, vb := ra.I64(), rb.I64()
		if vb > va {
			va = vb
		}
		s.PutI64(va)
	}
	return s.Bytes()
}

// AllreduceIterStatsWork is AllreduceIterStats extended with the per-rank
// work vector the mid-solve rebalancer plans from: one fused collective
// reduces the scalar bundle AND fills work with every rank's Work value
// (work[r] = rank r's contribution), so the planning input is replicated
// with no additional collective. work must have length Size(); its prior
// contents are ignored. The scalar results are bit-identical to
// AllreduceIterStats over the same inputs.
func AllreduceIterStatsWork(c Comm, v IterStats, work []int64) (IterStats, error) {
	p := c.Size()
	if len(work) != p {
		return IterStats{}, fmt.Errorf("comm: AllreduceIterStatsWork needs a work vector of length %d, got %d", p, len(work))
	}
	buf := wire.NewBuffer(iterStatsWireLen + 8*p)
	buf.PutI64(v.Moved)
	buf.PutI64(v.Work)
	buf.PutI64(v.CommNS)
	buf.PutF64(v.Q)
	r := c.Rank()
	for i := 0; i < p; i++ {
		if i == r {
			buf.PutI64(v.Work)
		} else {
			buf.PutI64(0)
		}
	}
	out, err := AllreduceBytes(c, buf.Bytes(), combineIterStatsWork)
	if err != nil {
		return IterStats{}, err
	}
	rd := wire.NewReader(out)
	res := IterStats{Moved: rd.I64(), Work: rd.I64(), CommNS: rd.I64(), Q: rd.F64()}
	for i := 0; i < p; i++ {
		work[i] = rd.I64()
	}
	return res, rd.Err()
}

// AllreduceInt64SliceMax reduces vs elementwise by max across all ranks
// (every rank passes a vector of the same length and receives the
// identical result). It is the sequential-collectives counterpart of the
// work-vector piggyback in AllreduceIterStatsWork: each rank contributes
// its own work in its own slot and zero elsewhere, and the elementwise
// max reassembles the replicated per-rank vector.
func AllreduceInt64SliceMax(c Comm, vs []int64) ([]int64, error) {
	buf := wire.NewBuffer(len(vs)*8 + 8)
	buf.PutI64s(vs)
	out, err := AllreduceBytes(c, buf.Bytes(), func(a, b []byte) []byte {
		va := wire.NewReader(a).I64s()
		vb := wire.NewReader(b).I64s()
		if len(va) != len(vb) {
			panic(fmt.Sprintf("comm: allreduce slice length mismatch %d vs %d", len(va), len(vb)))
		}
		for i := range va {
			if vb[i] > va[i] {
				va[i] = vb[i]
			}
		}
		s := wire.NewBuffer(len(va)*8 + 8)
		s.PutI64s(va)
		return s.Bytes()
	})
	if err != nil {
		return nil, err
	}
	return wire.NewReader(out).I64s(), nil
}
