package comm

import (
	"fmt"

	"repro/internal/trace"
	"repro/internal/wire"
)

// Overlapped collectives. The sequential collectives in collectives.go
// serialize p−1 blocking round-trips, so per-call latency grows like
// p·(one-way latency). The variants here post every outbound frame before
// waiting on any inbound one — Send never blocks (all transports buffer
// internally) — so the p−1 transfers are in flight concurrently and the
// call waits for the slowest peer instead of the sum of all peers.
//
// Determinism: results are indexed by source rank, so callers observe the
// same (src, payload) mapping as with the sequential variants no matter
// in which order frames arrive. AlltoallvFunc additionally streams
// payloads to a callback in arrival order; that is safe exactly when the
// callback's effect is independent of invocation order (disjoint writes
// per source rank, or order-insensitive combining). docs/PERFORMANCE.md
// catalogs which core exchanges qualify and how the order-sensitive ones
// (floating-point accumulation) buffer per source and apply in rank order.

// Alltoallv performs a personalized all-to-all exchange: out[i] is sent to
// rank i, and the returned slice holds in[i] received from rank i. out must
// have length Size(); out[Rank()] is returned unchanged (copied).
//
// All p−1 sends are posted before the first receive, then peers are
// drained in rank-index order; the result is byte-identical to
// AlltoallvSeq at max-over-peers latency instead of sum-over-peers.
func Alltoallv(c Comm, out [][]byte) ([][]byte, error) {
	return AlltoallvInto(c, out, nil)
}

// AlltoallvInto is Alltoallv with caller-owned scratch: in (if non-nil)
// must have length Size() and is reused for the result. in[Rank()] keeps
// its backing array for the self copy, so a caller exchanging every
// iteration allocates nothing for the slice header or its own payload;
// the other slots are replaced by transport buffers.
func AlltoallvInto(c Comm, out, in [][]byte) ([][]byte, error) {
	p := c.Size()
	if len(out) != p {
		return nil, fmt.Errorf("comm: Alltoallv needs %d buffers, got %d", p, len(out))
	}
	if in == nil {
		in = make([][]byte, p)
	} else if len(in) != p {
		return nil, fmt.Errorf("comm: AlltoallvInto needs %d scratch buffers, got %d", p, len(in))
	}
	r := c.Rank()
	in[r] = append(in[r][:0], out[r]...)
	if p == 1 {
		return in, nil
	}
	defer collDone(trace.CollAlltoallv, collStart(), framesLen(out))
	// Post every send up front; the transfers overlap from here on.
	for step := 1; step < p; step++ {
		dst := (r + step) % p
		if err := c.Send(dst, tagAlltoallv, out[dst]); err != nil {
			return nil, err
		}
	}
	for step := 1; step < p; step++ {
		src := (r - step + p) % p
		got, err := c.Recv(src, tagAlltoallv)
		if err != nil {
			return nil, err
		}
		in[src] = got
	}
	return in, nil
}

// AlltoallvFunc is the streaming alltoall: it posts all sends, then hands
// each inbound payload to fn as it arrives, so decode work overlaps
// still-in-flight traffic. fn runs on the calling goroutine only, never
// concurrently with itself. The callback order is: own payload first
// (fn(Rank(), out[Rank()]) before any network wait), then peers in arrival
// order — which varies run to run, so fn's effect must not depend on it.
// The payload slice is only valid during the callback (transport-owned).
//
// If fn returns an error, remaining payloads are drained without further
// callbacks and the first error is returned.
func AlltoallvFunc(c Comm, out [][]byte, fn func(src int, payload []byte) error) error {
	p := c.Size()
	if len(out) != p {
		return fmt.Errorf("comm: Alltoallv needs %d buffers, got %d", p, len(out))
	}
	r := c.Rank()
	if p == 1 {
		return fn(r, out[r])
	}
	defer collDone(trace.CollAlltoallv, collStart(), framesLen(out))
	for step := 1; step < p; step++ {
		dst := (r + step) % p
		if err := c.Send(dst, tagAlltoallv, out[dst]); err != nil {
			return err
		}
	}
	// Own payload first: a fixed, deterministic position in the callback
	// sequence, and useful decode work before the first frame lands.
	firstErr := fn(r, out[r])
	type arrival struct {
		src  int
		data []byte
		err  error
	}
	// Buffered to p−1 so receivers never block on the channel: an early
	// callback error cannot leak them, and the drain loop below always
	// consumes all p−1 entries.
	ch := make(chan arrival, p-1)
	for step := 1; step < p; step++ {
		src := (r - step + p) % p
		go func(src int) {
			got, err := c.Recv(src, tagAlltoallv)
			ch <- arrival{src: src, data: got, err: err}
		}(src)
	}
	for i := 1; i < p; i++ {
		a := <-ch
		if a.err != nil {
			if firstErr == nil {
				firstErr = a.err
			}
			continue
		}
		if firstErr != nil {
			continue // drain without decoding after a failure
		}
		if err := fn(a.src, a.data); err != nil {
			firstErr = err
		}
	}
	return firstErr
}

// IterStats is the per-iteration scalar bundle of the stage-1 clustering
// loop. Reducing it as one collective replaces four back-to-back scalar
// allreduces (4 × log p latency terms) with one. Each field carries its
// own reduction: Moved and Q are summed, Work and CommNS are maximized.
type IterStats struct {
	// Moved is the number of vertices that changed community (world sum).
	Moved int64
	// Work is the simulated work units of the iteration (world max).
	Work int64
	// CommNS is the modeled communication time in ns (world max).
	CommNS int64
	// Q is the modularity contribution (world sum).
	Q float64
}

const iterStatsWireLen = 32 // 3×int64 + 1×float64, fixed-width

func combineIterStats(a, b []byte) []byte {
	ra, rb := wire.NewReader(a), wire.NewReader(b)
	s := wire.NewBuffer(iterStatsWireLen)
	s.PutI64(ra.I64() + rb.I64())
	wa, wb := ra.I64(), rb.I64()
	if wb > wa {
		wa = wb
	}
	s.PutI64(wa)
	ca, cb := ra.I64(), rb.I64()
	if cb > ca {
		ca = cb
	}
	s.PutI64(ca)
	// Same operand order as AllreduceFloat64Sum's combiner (accumulated +
	// received) over the same reduction tree, so the fused Q is
	// bit-identical to the standalone float sum.
	s.PutF64(ra.F64() + rb.F64())
	return s.Bytes()
}

// AllreduceIterStats reduces v across all ranks in a single collective:
// component-wise sum/max/max/sum. The float component follows the exact
// combine tree of AllreduceFloat64Sum, so fused and unfused reductions
// produce bit-identical modularity values.
func AllreduceIterStats(c Comm, v IterStats) (IterStats, error) {
	buf := wire.NewBuffer(iterStatsWireLen)
	buf.PutI64(v.Moved)
	buf.PutI64(v.Work)
	buf.PutI64(v.CommNS)
	buf.PutF64(v.Q)
	out, err := AllreduceBytes(c, buf.Bytes(), combineIterStats)
	if err != nil {
		return IterStats{}, err
	}
	rd := wire.NewReader(out)
	res := IterStats{Moved: rd.I64(), Work: rd.I64(), CommNS: rd.I64(), Q: rd.F64()}
	return res, rd.Err()
}

// SplitFunc partitions an encoded payload into exactly n contiguous
// segments whose concatenation is the original payload. Segments must be
// record-aligned, and the assignment of logical records to segment indices
// must be identical on every rank: ranks may encode the same record in
// different byte counts (varints), so the split must be driven by record
// boundaries, never by byte offsets.
type SplitFunc func(data []byte, n int) [][]byte

// AllreduceBytesRingPipelined is AllreduceBytesRing with the payload cut
// into segments that move through the ring independently: while a rank
// combines segment k it already forwards segment k−1 and receives segment
// k+1, so for payloads much larger than a frame the bandwidth term is
// pipelined across the p−1 steps instead of serialized. combine is applied
// per segment and must therefore tolerate partial payloads (whole records,
// not the full vector) — and, like every multi-algorithm reduction here,
// must be exactly associative and commutative (e.g. max/argmax
// semilattices), because the segment combine order differs from both the
// plain ring and recursive doubling.
func AllreduceBytesRingPipelined(c Comm, data []byte, segments int, split SplitFunc, combine func(a, b []byte) []byte) ([]byte, error) {
	p := c.Size()
	if p == 1 {
		return data, nil
	}
	if segments < 2 || split == nil {
		return AllreduceBytesRing(c, data, combine)
	}
	defer collDone(trace.CollAllreduceRing, collStart(), int64(len(data)))
	r := c.Rank()
	next := (r + 1) % p
	prev := (r - 1 + p) % p
	segs := split(data, segments)
	if len(segs) != segments {
		return nil, fmt.Errorf("comm: pipelined ring split returned %d segments, want %d", len(segs), segments)
	}
	// Reduce pass. Per segment this is the plain ring's reduce phase; the
	// per-pair FIFO guarantee keeps segment k ahead of segment k+1 on every
	// link, so no sequence numbers are needed.
	if r == 0 {
		for k := range segs {
			if err := c.Send(next, tagReduce, segs[k]); err != nil {
				return nil, err
			}
		}
	} else {
		for k := range segs {
			got, err := c.Recv(prev, tagReduce)
			if err != nil {
				return nil, err
			}
			segs[k] = combine(segs[k], got)
			if err := c.Send(next, tagReduce, segs[k]); err != nil {
				return nil, err
			}
		}
	}
	// Broadcast pass: the fully combined segments circulate once more,
	// again pipelined — each rank forwards segment k while waiting for
	// segment k+1.
	for k := range segs {
		got, err := c.Recv(prev, tagReduce)
		if err != nil {
			return nil, err
		}
		segs[k] = got
		if r != p-1 {
			if err := c.Send(next, tagReduce, segs[k]); err != nil {
				return nil, err
			}
		}
	}
	total := 0
	for _, sg := range segs {
		total += len(sg)
	}
	out := make([]byte, 0, total)
	for _, sg := range segs {
		out = append(out, sg...)
	}
	return out, nil
}

// Algorithm-selection thresholds for AllreduceBytesAuto. Small payloads are
// latency-bound: recursive doubling finishes in log₂ p steps and wins.
// Large payloads are bandwidth-bound: the pipelined ring overlaps transfer
// and combine across the p−1 steps. The crossover is expressed in records
// (not bytes — see AllreduceBytesAuto) and was chosen from
// BenchmarkAllreduceRingPipelined; it errs high so only clearly
// bandwidth-bound reductions take the ring path.
const (
	// autoRingMinRecords is the record count at and above which
	// AllreduceBytesAuto routes through the pipelined ring.
	autoRingMinRecords = 4096
	// autoRingSegments is the pipeline depth used for the ring path.
	autoRingSegments = 8
)

// AllreduceBytesAuto picks the reduction algorithm by payload size:
// recursive doubling (AllreduceBytes) below autoRingMinRecords, the
// pipelined ring at or above it. records MUST be a rank-invariant measure
// of the payload — a replicated logical record count — never len(data):
// varint encodings give ranks different byte counts for the same records,
// and ranks disagreeing on the algorithm would deadlock. Because the two
// algorithms combine in different orders, combine must be exactly
// associative and commutative (integer/semilattice reductions; not
// floating-point sums).
func AllreduceBytesAuto(c Comm, data []byte, records int, split SplitFunc, combine func(a, b []byte) []byte) ([]byte, error) {
	if records >= autoRingMinRecords && c.Size() > 2 && split != nil {
		segs := autoRingSegments
		if records < segs {
			segs = records
		}
		return AllreduceBytesRingPipelined(c, data, segs, split, combine)
	}
	return AllreduceBytes(c, data, combine)
}
