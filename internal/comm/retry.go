package comm

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/trace"
)

// Backoff is the retry policy shared by every robustness helper in this
// package: the TCP dialer, the bounded write-retry of the TCP writer loop,
// and the chaos wrapper's recovery from injected transient send failures.
//
// Sleeps grow geometrically from Base by Factor up to Max, with full jitter
// (a uniformly random fraction of the nominal sleep in [1/2, 1]) so a world
// of ranks retrying the same dead peer does not retry in lockstep. The
// jitter stream is seeded (Seed), keeping fault-injection runs reproducible.
// Retrying stops when an attempt succeeds, the error is not Transient, the
// attempt budget (MaxAttempts) is spent, or the time budget (Total,
// covering op time plus sleeps) would be exceeded by the next sleep.
type Backoff struct {
	// Base is the first sleep. Default 10ms.
	Base time.Duration
	// Max caps a single sleep. Default 500ms.
	Max time.Duration
	// Factor is the geometric growth rate. Default 2.
	Factor float64
	// Total is the overall time budget including sleeps. Default 10s.
	Total time.Duration
	// MaxAttempts caps the number of op invocations; 0 bounds retrying by
	// Total alone.
	MaxAttempts int
	// Seed seeds the jitter stream (any fixed value gives reproducible
	// sleeps; the default 0 is a valid seed).
	Seed int64
}

func (b Backoff) withDefaults() Backoff {
	if b.Base <= 0 {
		b.Base = 10 * time.Millisecond
	}
	if b.Max <= 0 {
		b.Max = 500 * time.Millisecond
	}
	if b.Factor < 1 {
		b.Factor = 2
	}
	if b.Total <= 0 {
		b.Total = 10 * time.Second
	}
	return b
}

// Retry runs op until it succeeds or the policy is exhausted. Only errors
// marked Transient are retried; any other error returns immediately. On
// give-up the returned error wraps both ErrRetriesExhausted and the last
// attempt's error, so callers can branch on either. what names the
// operation in retry events and errors (e.g. "dial rank 3").
func (b Backoff) Retry(what string, op func() error) error {
	b = b.withDefaults()
	rng := rand.New(rand.NewSource(b.Seed))
	start := time.Now()
	deadline := start.Add(b.Total)
	sleep := b.Base
	for attempt := 1; ; attempt++ {
		err := op()
		if err == nil {
			return nil
		}
		if !IsTransient(err) {
			return err
		}
		if b.MaxAttempts > 0 && attempt >= b.MaxAttempts {
			return fmt.Errorf("comm: %s: %w after %d attempts over %v: %w",
				what, ErrRetriesExhausted, attempt, time.Since(start).Round(time.Millisecond), err)
		}
		// Full jitter: sleep a uniform fraction in [1/2, 1] of the nominal
		// backoff so concurrent retriers spread out.
		d := sleep/2 + time.Duration(rng.Int63n(int64(sleep/2)+1))
		if time.Now().Add(d).After(deadline) {
			return fmt.Errorf("comm: %s: %w after %d attempts over %v: %w",
				what, ErrRetriesExhausted, attempt, time.Since(start).Round(time.Millisecond), err)
		}
		trace.Eventf("retry", "%s attempt %d failed (%v); backing off %v", what, attempt, err, d)
		time.Sleep(d)
		sleep = time.Duration(float64(sleep) * b.Factor)
		if sleep > b.Max {
			sleep = b.Max
		}
	}
}
