package comm

import (
	"fmt"
	"testing"

	"repro/internal/wire"
)

func TestAllreduceRingAllSizes(t *testing.T) {
	for _, p := range worldSizes() {
		p := p
		t.Run(fmt.Sprintf("p=%d", p), func(t *testing.T) {
			want := int64(p * (p - 1) / 2)
			err := RunWorld(p, func(c Comm) error {
				b := wire.NewBuffer(8)
				b.PutI64(int64(c.Rank()))
				out, err := AllreduceBytesRing(c, b.Bytes(), func(x, y []byte) []byte {
					s := wire.NewBuffer(8)
					s.PutI64(wire.NewReader(x).I64() + wire.NewReader(y).I64())
					return s.Bytes()
				})
				if err != nil {
					return err
				}
				if got := wire.NewReader(out).I64(); got != want {
					return fmt.Errorf("rank %d: sum = %d, want %d", c.Rank(), got, want)
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestAllreduceRingRepeated(t *testing.T) {
	// Consecutive ring allreduces must not cross-match (FIFO per pair).
	err := RunWorld(5, func(c Comm) error {
		for round := 1; round <= 10; round++ {
			b := wire.NewBuffer(8)
			b.PutI64(int64(c.Rank() * round))
			out, err := AllreduceBytesRing(c, b.Bytes(), func(x, y []byte) []byte {
				s := wire.NewBuffer(8)
				s.PutI64(wire.NewReader(x).I64() + wire.NewReader(y).I64())
				return s.Bytes()
			})
			if err != nil {
				return err
			}
			want := int64(10 * round) // (0+1+2+3+4)*round
			if got := wire.NewReader(out).I64(); got != want {
				return fmt.Errorf("round %d rank %d: %d != %d", round, c.Rank(), got, want)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
