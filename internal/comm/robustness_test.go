package comm

import (
	"bytes"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/trace"
)

// Unit tests for the robustness primitives: the transient-error retry
// policy, receive deadlines on both transports, dial-time retry, and the
// TCPEndpoint.Close goroutine-leak regression.

func TestTransientClassification(t *testing.T) {
	base := errors.New("boom")
	if IsTransient(base) {
		t.Fatal("bare error classified transient")
	}
	tr := Transient(base)
	if !IsTransient(tr) {
		t.Fatal("Transient() not classified transient")
	}
	if !errors.Is(tr, base) {
		t.Fatal("Transient() hides the wrapped error from errors.Is")
	}
	if !IsTransient(fmt.Errorf("outer: %w", tr)) {
		t.Fatal("wrapping hides transience")
	}
	if Transient(nil) != nil {
		t.Fatal("Transient(nil) != nil")
	}
}

func TestRetryRecoversTransient(t *testing.T) {
	calls := 0
	pol := Backoff{Base: time.Microsecond, Max: 10 * time.Microsecond, Total: time.Second, Seed: 1}
	err := pol.Retry("unit", func() error {
		calls++
		if calls < 4 {
			return Transient(errors.New("flaky"))
		}
		return nil
	})
	if err != nil || calls != 4 {
		t.Fatalf("err=%v calls=%d, want nil after 4", err, calls)
	}
}

func TestRetryPermanentFailsFast(t *testing.T) {
	calls := 0
	perm := errors.New("permanent")
	pol := Backoff{Base: time.Microsecond, Total: time.Second}
	err := pol.Retry("unit", func() error { calls++; return perm })
	if calls != 1 {
		t.Fatalf("permanent error retried %d times", calls)
	}
	if !errors.Is(err, perm) {
		t.Fatalf("got %v, want the permanent error", err)
	}
}

func TestRetryExhaustion(t *testing.T) {
	inner := errors.New("still down")
	pol := Backoff{Base: time.Microsecond, Max: 2 * time.Microsecond, MaxAttempts: 3, Total: time.Second, Seed: 7}
	var sink bytes.Buffer
	trace.SetEventOutput(&sink)
	defer trace.SetEventOutput(nil)
	err := pol.Retry("unit", func() error { return Transient(inner) })
	if !errors.Is(err, ErrRetriesExhausted) {
		t.Fatalf("got %v, want ErrRetriesExhausted", err)
	}
	if !errors.Is(err, inner) {
		t.Fatalf("exhaustion error hides the last cause: %v", err)
	}
	if !strings.Contains(sink.String(), "[retry]") {
		t.Fatalf("no retry events traced; got %q", sink.String())
	}
}

// TestRecvTimeout checks the deadline surface on both transports: a Recv
// with no matching sender fails with ErrTimeout after roughly d, and the
// timeout does not disturb messages that arrive later.
func TestRecvTimeout(t *testing.T) {
	scenario := func(c Comm) error {
		if c.Size() != 2 {
			return fmt.Errorf("scenario wants 2 ranks")
		}
		if c.Rank() == 1 {
			// Stay alive (so no ErrPeerDown) until rank 0 finishes, then
			// supply the late message.
			if _, err := c.Recv(0, 1); err != nil {
				return err
			}
			return c.Send(0, 2, []byte("late"))
		}
		start := time.Now()
		_, err := RecvTimeout(c, 1, 2, 30*time.Millisecond)
		if !errors.Is(err, ErrTimeout) {
			return fmt.Errorf("got %v, want ErrTimeout", err)
		}
		if elapsed := time.Since(start); elapsed < 25*time.Millisecond {
			return fmt.Errorf("timed out after only %v", elapsed)
		}
		// Endpoint-wide default deadline drives plain Recv the same way.
		if !SetRecvTimeout(c, 30*time.Millisecond) {
			return fmt.Errorf("transport does not support SetRecvTimeout")
		}
		if _, err := c.Recv(1, 2); !errors.Is(err, ErrTimeout) {
			return fmt.Errorf("default deadline: got %v, want ErrTimeout", err)
		}
		SetRecvTimeout(c, 0)
		// Unblock rank 1; the following Recv must then succeed: deadlines
		// must not corrupt the mailbox.
		if err := c.Send(1, 1, nil); err != nil {
			return err
		}
		got, err := c.Recv(1, 2)
		if err != nil {
			return err
		}
		if string(got) != "late" {
			return fmt.Errorf("late message corrupted: %q", got)
		}
		return nil
	}
	t.Run("inproc", func(t *testing.T) {
		if err := RunWorld(2, scenario); err != nil {
			t.Fatal(err)
		}
	})
	t.Run("tcp", func(t *testing.T) {
		if err := runTCPWorld(t, 2, scenario); err != nil {
			t.Fatal(err)
		}
	})
	t.Run("chaos-inproc", func(t *testing.T) {
		if err := RunWorldChaos(2, ChaosOptions{Seed: 3}, scenario); err != nil {
			t.Fatal(err)
		}
	})
}

// TestDialRetryEventualSuccess delays one rank's startup past several
// backoff periods; the early rank's dials must retry until the listener
// appears instead of failing on the first connection refusal.
func TestDialRetryEventualSuccess(t *testing.T) {
	addrs := freeAddrs(t, 2)
	opt := DialOptions{Backoff: Backoff{Base: 5 * time.Millisecond, Max: 50 * time.Millisecond, Total: 10 * time.Second, Seed: 1}}
	errs := make([]error, 2)
	var wg sync.WaitGroup
	wg.Add(2)
	for r := 0; r < 2; r++ {
		go func(r int) {
			defer wg.Done()
			if r == 1 {
				time.Sleep(150 * time.Millisecond)
			}
			ep, err := DialTCPWorldConfig(r, addrs, opt)
			if err != nil {
				errs[r] = err
				return
			}
			defer ep.Close()
			errs[r] = Barrier(ep)
		}(r)
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		t.Fatal(err)
	}
}

// TestDialRetryExhaustion points a rank at a peer that never starts; the
// dial must give up within the configured budget with a typed error, not
// hang.
func TestDialRetryExhaustion(t *testing.T) {
	addrs := freeAddrs(t, 2)
	opt := DialOptions{Backoff: Backoff{Base: 2 * time.Millisecond, Max: 10 * time.Millisecond, Total: 300 * time.Millisecond, Seed: 1}}
	start := time.Now()
	ep, err := DialTCPWorldConfig(0, addrs, opt) // rank 1 never comes up
	if err == nil {
		ep.Close()
		t.Fatal("dial succeeded with no peer listening")
	}
	if !errors.Is(err, ErrRetriesExhausted) {
		t.Fatalf("got %v, want ErrRetriesExhausted", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("dial gave up only after %v", elapsed)
	}
}

// TestTCPCloseReleasesRecv is the goroutine-leak regression test for
// TCPEndpoint.Close: a Recv blocked with no sender must return ErrClosed
// when the endpoint closes, and after every endpoint is closed the package
// must hold no surviving reader/writer goroutines.
func TestTCPCloseReleasesRecv(t *testing.T) {
	baseline := runtime.NumGoroutine()

	addrs := freeAddrs(t, 2)
	eps := make([]*TCPEndpoint, 2)
	var dialWG sync.WaitGroup
	dialErr := make([]error, 2)
	dialWG.Add(2)
	for r := 0; r < 2; r++ {
		go func(r int) {
			defer dialWG.Done()
			eps[r], dialErr[r] = DialTCPWorld(r, addrs)
		}(r)
	}
	dialWG.Wait()
	if err := errors.Join(dialErr...); err != nil {
		t.Fatal(err)
	}

	recvErr := make(chan error, 1)
	go func() {
		_, err := eps[0].Recv(1, 9) // nothing will ever be sent on tag 9
		recvErr <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the Recv park

	if err := eps[0].Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	select {
	case err := <-recvErr:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("pending Recv got %v, want ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("pending Recv still blocked after Close")
	}
	if err := eps[1].Close(); err != nil {
		t.Fatalf("close peer: %v", err)
	}

	waitGoroutines(t, baseline)
}

// TestChaosDeterministicFaults re-runs one seed and checks the injected
// fault schedule is identical — the property that makes a failing chaos
// seed replayable.
func TestChaosDeterministicFaults(t *testing.T) {
	run := func() [4]FaultCounts {
		var mu sync.Mutex
		var out [4]FaultCounts
		err := RunWorldChaos(4, benignChaos(99), func(c Comm) error {
			err := batteryCollectives(c)
			cc := c.(*ChaosComm)
			cc.Drain()
			mu.Lock()
			out[c.Rank()] = cc.Faults()
			mu.Unlock()
			return err
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("fault schedules diverged across identical runs:\n%+v\n%+v", a, b)
	}
	var total FaultCounts
	for _, f := range a {
		total.Delays += f.Delays
		total.Dups += f.Dups
		total.SendFailures += f.SendFailures
	}
	if total.Delays == 0 || total.Dups == 0 || total.SendFailures == 0 {
		t.Fatalf("chaos config injected nothing: %+v", total)
	}
}
