package comm

import (
	"repro/internal/wire"
)

// UpdateStats is the fused per-update-batch reduction of the resident
// clustering service (internal/core's Session.ApplyUpdates): one collective
// carries everything the drift tracker needs, the way AllreduceIterStats
// carries the per-iteration scalars of the batch solver.
type UpdateStats struct {
	// Moved is the number of vertices that changed community while
	// re-clustering the batch (world sum).
	Moved int64
	// Touched is the number of distinct vertices the incremental sweep
	// re-examined (world sum; each vertex counted by its owner).
	Touched int64
	// Q is the modularity contribution (world sum). The combine follows
	// AllreduceFloat64Sum's tree exactly, so the fused Q is bit-identical
	// to the standalone float reduction.
	Q float64
}

const updateStatsWireLen = 24 // 2×int64 + 1×float64, fixed-width

func combineUpdateStats(a, b []byte) []byte {
	ra, rb := wire.NewReader(a), wire.NewReader(b)
	s := wire.NewBuffer(updateStatsWireLen)
	s.PutI64(ra.I64() + rb.I64())
	s.PutI64(ra.I64() + rb.I64())
	// Same operand order as AllreduceFloat64Sum's combiner (accumulated +
	// received) over the same reduction tree, so the fused Q is
	// bit-identical to the standalone float sum.
	s.PutF64(ra.F64() + rb.F64())
	return s.Bytes()
}

// AllreduceUpdateStats reduces v across all ranks in a single collective:
// component-wise sum/sum/sum. Like every collective, all ranks must call it
// in the same program order; the serving layer issues exactly one per
// applied update batch.
func AllreduceUpdateStats(c Comm, v UpdateStats) (UpdateStats, error) {
	buf := wire.NewBuffer(updateStatsWireLen)
	buf.PutI64(v.Moved)
	buf.PutI64(v.Touched)
	buf.PutF64(v.Q)
	out, err := AllreduceBytes(c, buf.Bytes(), combineUpdateStats)
	if err != nil {
		return UpdateStats{}, err
	}
	rd := wire.NewReader(out)
	res := UpdateStats{Moved: rd.I64(), Touched: rd.I64(), Q: rd.F64()}
	return res, rd.Err()
}
