package comm

import (
	"fmt"
	"sync"
	"testing"
)

// These tests lock in the race-cleanliness of the inproc dead-rank
// machinery: markDead (called from RunWorld's per-rank defer) races
// against concurrent Recv and Send on every other endpoint. They are
// meant to run under -race (scripts/check.sh does), and they repeat each
// world many times internally because the interesting interleavings —
// a rank dying between a peer's inbox scan and its cond.Wait — are rare.

const tagStress = 11

// TestInprocDeadRankStress kills half the world early while the surviving
// ranks keep receiving from, and sending to, the dying ranks. Every
// surviving rank must see each dead rank's final messages (sent before
// death, so queued before markDead) and then get an error instead of
// hanging; sends to dead ranks must stay safe no-ops.
func TestInprocDeadRankStress(t *testing.T) {
	const (
		p      = 8
		rounds = 24
	)
	for it := 0; it < rounds; it++ {
		err := RunWorld(p, func(c Comm) error {
			r := c.Rank()
			if r < p/2 {
				// Dying half: one parting message to every survivor, then
				// exit immediately so markDead races their Recv loops.
				for dst := p / 2; dst < p; dst++ {
					if err := c.Send(dst, tagStress, []byte{byte(r)}); err != nil {
						return err
					}
				}
				return nil
			}
			// Surviving half: drain each dying rank — the guaranteed
			// parting message first, then Recv until the death error —
			// while poking the dying rank with sends the whole time.
			for src := 0; src < p/2; src++ {
				got, err := c.Recv(src, tagStress)
				if err != nil {
					return fmt.Errorf("rank %d lost the parting message of %d: %v", r, src, err)
				}
				if len(got) != 1 || got[0] != byte(src) {
					return fmt.Errorf("rank %d got corrupt payload %v from %d", r, got, src)
				}
				for {
					if err := c.Send(src, tagStress, []byte{0xFF}); err != nil {
						return fmt.Errorf("rank %d Send to dying rank %d failed: %v", r, src, err)
					}
					if _, err := c.Recv(src, tagStress); err != nil {
						break // dead-rank error: the expected outcome
					}
				}
			}
			return nil
		})
		if err != nil {
			t.Fatalf("iteration %d: %v", it, err)
		}
	}
}

// TestInprocPanicWakesPeers locks in the panic path of the same
// machinery: a panicking rank must be marked dead (via the RunWorld
// defers) so peers blocked in Recv on it fail fast instead of
// deadlocking, and its panic must surface as an error.
func TestInprocPanicWakesPeers(t *testing.T) {
	const p = 8
	for it := 0; it < 8; it++ {
		var blocked sync.WaitGroup
		blocked.Add(p - 1)
		err := RunWorld(p, func(c Comm) error {
			if c.Rank() == 0 {
				// Make it likely the peers are already parked in Recv.
				blocked.Wait()
				panic("rank 0 exploded")
			}
			blocked.Done()
			if _, err := c.Recv(0, tagStress); err == nil {
				return fmt.Errorf("rank %d: Recv from panicked rank succeeded", c.Rank())
			}
			return nil
		})
		if err == nil {
			t.Fatal("world error missing the panic")
		}
	}
}
