package comm

import "testing"

// registeredTags mirrors the collective tag registry in comm.go. A new
// collective's tag must be added here as well; the test below then keeps
// the registry honest. (The tagconst analyzer checks uniqueness statically
// too — this test is the belt to its suspenders, and also pins the
// reserved-range convention, which the analyzer does not know about.)
var registeredTags = map[string]int{
	"tagBarrier":   tagBarrier,
	"tagBcast":     tagBcast,
	"tagReduce":    tagReduce,
	"tagAllgather": tagAllgather,
	"tagAlltoallv": tagAlltoallv,
	"tagGather":    tagGather,
	"tagMigrate":   tagMigrate,
}

// TestTagRegistry asserts the two registry invariants: every collective
// tag is negative (the reserved range — user code owns tags >= 0), and no
// two tags collide (matching is by (source, tag) only, so a collision
// cross-wires two collectives into each other's message streams).
func TestTagRegistry(t *testing.T) {
	seen := make(map[int]string, len(registeredTags))
	for name, v := range registeredTags {
		if v >= 0 {
			t.Errorf("%s = %d: collective tags must be negative; tags >= 0 belong to user code", name, v)
		}
		if prev, dup := seen[v]; dup {
			t.Errorf("tag collision: %s and %s are both %d", name, prev, v)
		}
		seen[v] = name
	}
	// The iota chain allocates a dense block from -1 downward; a gap means
	// a tag was removed or renumbered out of band.
	for want := -1; want >= -len(registeredTags); want-- {
		if _, ok := seen[want]; !ok {
			t.Errorf("reserved tag %d unallocated: the registry must stay a dense iota block", want)
		}
	}
}
