package comm

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/trace"
)

// TCP transport: each rank listens on its own address and keeps one
// connection per peer (the lower rank dials the higher rank). Frames are
// length-prefixed:
//
//	[tag int64][payloadLen uint32][payload]
//
// A reader goroutine per connection demultiplexes frames into the same
// mailbox structure the in-process transport uses; a writer goroutine per
// connection drains an unbounded queue so Send never blocks on TCP
// backpressure (preventing collective deadlock).
//
// Robustness (docs/ROBUSTNESS.md): dialing retries with exponential
// backoff + jitter under a total deadline (DialOptions), handshakes are
// deadline-bounded, transient write timeouts are retried a bounded number
// of times before the peer is declared down, peer-down and closed states
// surface as errors wrapping ErrPeerDown / ErrClosed, and Recv honors the
// endpoint deadline (SetRecvTimeout) so a silent peer becomes ErrTimeout
// instead of a hang.

const tcpHandshakeMagic = uint32(0xC0117EC7)

// DialOptions tunes DialTCPWorldConfig. The zero value selects the
// defaults noted on each field.
type DialOptions struct {
	// Backoff is the per-peer dial retry policy; its Total is the overall
	// dial deadline for that peer. Defaults: Base 10ms, Factor 2, Max
	// 500ms, Total 10s.
	Backoff Backoff
	// HandshakeTimeout bounds the rank-exchange read/write on a freshly
	// established connection. Default 5s.
	HandshakeTimeout time.Duration
	// DrainTimeout bounds how long Close waits for queued frames to flush
	// before force-closing connections. Default 5s.
	DrainTimeout time.Duration
}

func (o DialOptions) withDefaults() DialOptions {
	o.Backoff = o.Backoff.withDefaults()
	if o.HandshakeTimeout <= 0 {
		o.HandshakeTimeout = 5 * time.Second
	}
	if o.DrainTimeout <= 0 {
		o.DrainTimeout = 5 * time.Second
	}
	return o
}

// TCPEndpoint is a Comm backed by TCP connections to all peers.
type TCPEndpoint struct {
	rank, size int
	stats      Stats
	opt        DialOptions

	mu       sync.Mutex
	cond     *sync.Cond
	inbox    []inprocMessage
	conns    []*tcpConn // indexed by peer rank; nil at own rank
	peerDown []error    // per-peer transport error (EOF = normal shutdown)
	deadline time.Duration

	listener net.Listener
	closed   bool
}

type tcpConn struct {
	c     net.Conn
	mu    sync.Mutex
	q     [][]byte // pending frames
	nw    *sync.Cond
	done  chan struct{} // closed when the writer goroutine exits
	rdone chan struct{} // closed when the reader goroutine exits
}

func (t *TCPEndpoint) Rank() int     { return t.rank }
func (t *TCPEndpoint) Size() int     { return t.size }
func (t *TCPEndpoint) Stats() *Stats { return &t.stats }

// DialTCPWorld joins a TCP world with default DialOptions. addrs[i] is the
// listen address of rank i; the caller is rank myRank and must be the only
// process using that slot. The function listens, connects the full mesh
// (lower rank dials higher), and returns once all peers are connected.
// Close the endpoint when done.
func DialTCPWorld(myRank int, addrs []string) (*TCPEndpoint, error) {
	return DialTCPWorldConfig(myRank, addrs, DialOptions{})
}

// DialTCPWorldConfig is DialTCPWorld with explicit retry/deadline policy.
// Dials are retried with backoff + jitter while peers start their
// listeners, bounded by o.Backoff.Total; a world that cannot fully connect
// within that budget fails with an error wrapping ErrRetriesExhausted
// rather than hanging.
func DialTCPWorldConfig(myRank int, addrs []string, o DialOptions) (*TCPEndpoint, error) {
	p := len(addrs)
	if myRank < 0 || myRank >= p {
		return nil, fmt.Errorf("comm: rank %d out of range [0,%d)", myRank, p)
	}
	o = o.withDefaults()
	ep := &TCPEndpoint{rank: myRank, size: p, opt: o, conns: make([]*tcpConn, p), peerDown: make([]error, p)}
	ep.cond = sync.NewCond(&ep.mu)

	ln, err := net.Listen("tcp", addrs[myRank])
	if err != nil {
		return nil, fmt.Errorf("comm: rank %d listen %s: %w", myRank, addrs[myRank], err)
	}
	ep.listener = ln
	// Bound the accept side by the same total budget as the dial side, so
	// a peer that never dials cannot park the accept goroutine forever.
	if tl, ok := ln.(*net.TCPListener); ok {
		_ = tl.SetDeadline(time.Now().Add(o.Backoff.withDefaults().Total))
	}

	var wg sync.WaitGroup
	var connectErr error
	var errOnce sync.Once
	// On the first failure, also close the listener: that unblocks the
	// accept goroutine so the whole dial fails fast instead of wedging in
	// wg.Wait with one goroutine stuck in Accept.
	fail := func(e error) {
		errOnce.Do(func() {
			connectErr = e
			ln.Close()
		})
	}

	// Accept connections from all lower ranks.
	lower := myRank
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < lower; i++ {
			conn, err := ln.Accept()
			if err != nil {
				fail(fmt.Errorf("comm: rank %d accept: %w", myRank, err))
				return
			}
			var hdr [8]byte
			conn.SetReadDeadline(time.Now().Add(o.HandshakeTimeout))
			if _, err := io.ReadFull(conn, hdr[:]); err != nil {
				conn.Close()
				fail(fmt.Errorf("comm: rank %d handshake read: %w", myRank, err))
				return
			}
			conn.SetReadDeadline(time.Time{})
			if binary.LittleEndian.Uint32(hdr[:4]) != tcpHandshakeMagic {
				conn.Close()
				fail(fmt.Errorf("comm: rank %d bad handshake magic", myRank))
				return
			}
			peer := int(binary.LittleEndian.Uint32(hdr[4:]))
			if peer < 0 || peer >= myRank {
				conn.Close()
				fail(fmt.Errorf("comm: rank %d unexpected peer %d", myRank, peer))
				return
			}
			ep.attach(peer, conn)
		}
	}()

	// Dial all higher ranks, retrying with backoff while their listeners
	// come up. Each peer gets its own jitter stream (seeded by the rank
	// pair) so retries across peers spread out deterministically.
	for peer := myRank + 1; peer < p; peer++ {
		wg.Add(1)
		go func(peer int) {
			defer wg.Done()
			var conn net.Conn
			pol := o.Backoff
			pol.Seed = o.Backoff.Seed ^ int64(myRank)<<20 ^ int64(peer)
			err := pol.Retry(fmt.Sprintf("rank %d dial rank %d (%s)", myRank, peer, addrs[peer]), func() error {
				c, err := net.DialTimeout("tcp", addrs[peer], o.HandshakeTimeout)
				if err != nil {
					// A refused/unreachable dial while the peer boots is the
					// expected transient; keep retrying under the budget.
					return Transient(err)
				}
				conn = c
				return nil
			})
			if err != nil {
				fail(err)
				return
			}
			var hdr [8]byte
			binary.LittleEndian.PutUint32(hdr[:4], tcpHandshakeMagic)
			binary.LittleEndian.PutUint32(hdr[4:], uint32(myRank))
			conn.SetWriteDeadline(time.Now().Add(o.HandshakeTimeout))
			if _, err := conn.Write(hdr[:]); err != nil {
				conn.Close()
				fail(fmt.Errorf("comm: rank %d handshake write to %d: %w", myRank, peer, err))
				return
			}
			conn.SetWriteDeadline(time.Time{})
			ep.attach(peer, conn)
		}(peer)
	}
	wg.Wait()
	if connectErr != nil {
		ep.Close()
		return nil, connectErr
	}
	// All peers connected: the accept deadline has served its purpose.
	if tl, ok := ln.(*net.TCPListener); ok {
		_ = tl.SetDeadline(time.Time{})
	}
	return ep, nil
}

// attach registers a peer connection and starts its reader/writer loops.
func (t *TCPEndpoint) attach(peer int, c net.Conn) {
	tc := &tcpConn{c: c, done: make(chan struct{}), rdone: make(chan struct{})}
	tc.nw = sync.NewCond(&tc.mu)
	t.mu.Lock()
	t.conns[peer] = tc
	t.mu.Unlock()
	go t.readLoop(peer, tc)
	go t.writeLoop(peer, tc)
}

func (t *TCPEndpoint) readLoop(peer int, tc *tcpConn) {
	defer close(tc.rdone)
	var hdr [12]byte
	for {
		if _, err := io.ReadFull(tc.c, hdr[:]); err != nil {
			t.markPeerDown(peer, err)
			return
		}
		tag := int(int64(binary.LittleEndian.Uint64(hdr[:8])))
		n := binary.LittleEndian.Uint32(hdr[8:])
		payload := make([]byte, n)
		if _, err := io.ReadFull(tc.c, payload); err != nil {
			t.markPeerDown(peer, err)
			return
		}
		t.mu.Lock()
		t.inbox = append(t.inbox, inprocMessage{src: peer, tag: tag, data: payload})
		t.mu.Unlock()
		t.cond.Broadcast()
	}
}

func (t *TCPEndpoint) writeLoop(peer int, tc *tcpConn) {
	defer close(tc.done)
	// Bounded recovery from transient write errors (timeouts under
	// transient backpressure): a handful of quick retries, then the peer
	// is declared down. Retrying forever would turn a dead peer back into
	// a silent hang, which is exactly what this layer must not do.
	pol := Backoff{Base: 2 * time.Millisecond, Max: 20 * time.Millisecond, MaxAttempts: 4, Total: 250 * time.Millisecond}
	for {
		tc.mu.Lock()
		for len(tc.q) == 0 {
			tc.nw.Wait()
		}
		frame := tc.q[0]
		tc.q = tc.q[1:]
		closing := frame == nil
		tc.mu.Unlock()
		if closing {
			tc.c.Close()
			return
		}
		err := pol.Retry(fmt.Sprintf("rank %d write to rank %d", t.rank, peer), func() error {
			_, werr := tc.c.Write(frame)
			if ne, ok := werr.(net.Error); ok && ne.Timeout() {
				return Transient(werr)
			}
			return werr
		})
		if err != nil {
			t.markPeerDown(peer, err)
			return
		}
	}
}

// markPeerDown records a transport failure (or normal EOF at shutdown) for
// one peer and wakes blocked receivers so Recvs targeting that peer fail.
func (t *TCPEndpoint) markPeerDown(peer int, err error) {
	t.mu.Lock()
	first := t.peerDown[peer] == nil
	if first {
		t.peerDown[peer] = err
	}
	closed := t.closed
	t.mu.Unlock()
	t.cond.Broadcast()
	if first && !closed {
		trace.Eventf("peerdown", "rank %d: peer %d down: %v", t.rank, peer, err)
	}
}

// Send enqueues a frame for dst; it never blocks on the network. Sending
// to a peer whose connection already failed returns an error wrapping
// ErrPeerDown (fail fast: the data could never be delivered).
func (t *TCPEndpoint) Send(dst, tag int, data []byte) error {
	if err := checkPeer(t, dst); err != nil {
		return err
	}
	if dst == t.rank {
		cp := make([]byte, len(data))
		copy(cp, data)
		t.mu.Lock()
		t.inbox = append(t.inbox, inprocMessage{src: t.rank, tag: tag, data: cp})
		t.mu.Unlock()
		t.cond.Broadcast()
		t.stats.recordSend(dst, len(data))
		return nil
	}
	t.mu.Lock()
	tc := t.conns[dst]
	down := t.peerDown[dst]
	closed := t.closed
	t.mu.Unlock()
	if closed {
		return fmt.Errorf("comm: rank %d send to %d: %w", t.rank, dst, ErrClosed)
	}
	if down != nil {
		return fmt.Errorf("comm: rank %d peer %d %w: %v", t.rank, dst, ErrPeerDown, down)
	}
	if tc == nil {
		return fmt.Errorf("comm: rank %d has no connection to %d", t.rank, dst)
	}
	frame := make([]byte, 12+len(data))
	binary.LittleEndian.PutUint64(frame[:8], uint64(int64(tag)))
	binary.LittleEndian.PutUint32(frame[8:12], uint32(len(data)))
	copy(frame[12:], data)
	tc.mu.Lock()
	tc.q = append(tc.q, frame)
	tc.mu.Unlock()
	tc.nw.Signal()
	t.stats.recordSend(dst, len(data))
	return nil
}

// SetRecvTimeout sets the endpoint-wide default deadline applied to every
// subsequent Recv; d <= 0 restores unbounded blocking.
func (t *TCPEndpoint) SetRecvTimeout(d time.Duration) {
	t.mu.Lock()
	t.deadline = d
	t.mu.Unlock()
}

// Recv blocks until a message from src with the given tag arrives, the
// transport fails (ErrPeerDown), the endpoint is closed (ErrClosed), or
// the endpoint deadline expires (ErrTimeout).
func (t *TCPEndpoint) Recv(src, tag int) ([]byte, error) {
	t.mu.Lock()
	d := t.deadline
	t.mu.Unlock()
	return t.RecvTimeout(src, tag, d)
}

// RecvTimeout is Recv bounded by d (<= 0 blocks without a deadline).
func (t *TCPEndpoint) RecvTimeout(src, tag int, d time.Duration) ([]byte, error) {
	if err := checkPeer(t, src); err != nil {
		return nil, err
	}
	var deadline time.Time
	if d > 0 {
		deadline = time.Now().Add(d)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for {
		for i := range t.inbox {
			m := t.inbox[i]
			if m.src == src && m.tag == tag {
				t.inbox = append(t.inbox[:i], t.inbox[i+1:]...)
				t.stats.recordRecv(len(m.data))
				return m.data, nil
			}
		}
		// Closed wins over peer-down: Close force-closes the connections,
		// which the readers observe as transport failures and record via
		// markPeerDown — a locally-initiated close must still surface as
		// ErrClosed, not as a phantom peer failure.
		if t.closed {
			return nil, fmt.Errorf("comm: rank %d recv from %d: %w", t.rank, src, ErrClosed)
		}
		if src != t.rank && t.peerDown[src] != nil {
			return nil, fmt.Errorf("comm: rank %d peer %d %w: %v", t.rank, src, ErrPeerDown, t.peerDown[src])
		}
		if waitOrDeadline(t.cond, deadline) {
			return nil, fmt.Errorf("comm: rank %d recv from %d tag %d: no message within %v: %w", t.rank, src, tag, d, ErrTimeout)
		}
	}
}

// Close shuts down the endpoint: the listener stops, queued frames get a
// bounded window (DialOptions.DrainTimeout) to flush, and then every
// connection is force-closed so the per-connection reader and writer
// goroutines exit deterministically — even when a peer has stopped reading
// and a writer is wedged mid-Write. Pending Recv callers are woken and
// fail with ErrClosed. Close is idempotent.
func (t *TCPEndpoint) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	conns := make([]*tcpConn, len(t.conns))
	copy(conns, t.conns)
	t.mu.Unlock()
	t.cond.Broadcast()
	if t.listener != nil {
		t.listener.Close()
	}
	for _, tc := range conns {
		if tc == nil {
			continue
		}
		tc.mu.Lock()
		tc.q = append(tc.q, nil) // nil frame = close sentinel
		tc.mu.Unlock()
		tc.nw.Signal()
	}
	// Give the writers a bounded window to drain their queues so frames
	// sent just before Close (e.g. a final gather) reach the peers, then
	// force the connection closed regardless: an unresponsive peer must
	// not leak this endpoint's reader/writer goroutines.
	drain := t.opt.DrainTimeout
	if drain <= 0 {
		drain = 5 * time.Second
	}
	deadline := time.Now().Add(drain)
	for _, tc := range conns {
		if tc == nil {
			continue
		}
		rem := time.Until(deadline)
		if rem < 0 {
			rem = 0 // budget spent: time.After(0) fires immediately
		}
		select {
		case <-tc.done:
		case <-time.After(rem):
		}
		tc.c.Close() // idempotent; unblocks a stuck writer and the reader
	}
	// The readers observe the closed connection promptly; wait for them so
	// Close returning means no goroutine of this endpoint survives.
	for _, tc := range conns {
		if tc == nil {
			continue
		}
		<-tc.rdone
		<-tc.done
	}
	return nil
}
