package comm

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// TCP transport: each rank listens on its own address and keeps one
// connection per peer (the lower rank dials the higher rank). Frames are
// length-prefixed:
//
//	[tag int64][payloadLen uint32][payload]
//
// A reader goroutine per connection demultiplexes frames into the same
// mailbox structure the in-process transport uses; a writer goroutine per
// connection drains an unbounded queue so Send never blocks on TCP
// backpressure (preventing collective deadlock).

const tcpHandshakeMagic = uint32(0xC0117EC7)

// TCPEndpoint is a Comm backed by TCP connections to all peers.
type TCPEndpoint struct {
	rank, size int
	stats      Stats

	mu       sync.Mutex
	cond     *sync.Cond
	inbox    []inprocMessage
	conns    []*tcpConn // indexed by peer rank; nil at own rank
	peerDown []error    // per-peer transport error (EOF = normal shutdown)

	listener net.Listener
	closed   bool
}

type tcpConn struct {
	c    net.Conn
	mu   sync.Mutex
	q    [][]byte // pending frames
	nw   *sync.Cond
	done chan struct{} // closed when the writer goroutine exits
}

func (t *TCPEndpoint) Rank() int     { return t.rank }
func (t *TCPEndpoint) Size() int     { return t.size }
func (t *TCPEndpoint) Stats() *Stats { return &t.stats }

// DialTCPWorld joins a TCP world. addrs[i] is the listen address of rank i;
// the caller is rank myRank and must be the only process using that slot.
// The function listens, connects the full mesh (lower rank dials higher),
// and returns once all peers are connected. Close the endpoint when done.
func DialTCPWorld(myRank int, addrs []string) (*TCPEndpoint, error) {
	p := len(addrs)
	if myRank < 0 || myRank >= p {
		return nil, fmt.Errorf("comm: rank %d out of range [0,%d)", myRank, p)
	}
	ep := &TCPEndpoint{rank: myRank, size: p, conns: make([]*tcpConn, p), peerDown: make([]error, p)}
	ep.cond = sync.NewCond(&ep.mu)

	ln, err := net.Listen("tcp", addrs[myRank])
	if err != nil {
		return nil, fmt.Errorf("comm: rank %d listen %s: %w", myRank, addrs[myRank], err)
	}
	ep.listener = ln

	var wg sync.WaitGroup
	var connectErr error
	var errOnce sync.Once
	fail := func(e error) { errOnce.Do(func() { connectErr = e }) }

	// Accept connections from all lower ranks.
	lower := myRank
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < lower; i++ {
			conn, err := ln.Accept()
			if err != nil {
				fail(fmt.Errorf("comm: rank %d accept: %w", myRank, err))
				return
			}
			var hdr [8]byte
			if _, err := io.ReadFull(conn, hdr[:]); err != nil {
				fail(fmt.Errorf("comm: rank %d handshake read: %w", myRank, err))
				return
			}
			if binary.LittleEndian.Uint32(hdr[:4]) != tcpHandshakeMagic {
				fail(fmt.Errorf("comm: rank %d bad handshake magic", myRank))
				return
			}
			peer := int(binary.LittleEndian.Uint32(hdr[4:]))
			if peer < 0 || peer >= myRank {
				fail(fmt.Errorf("comm: rank %d unexpected peer %d", myRank, peer))
				return
			}
			ep.attach(peer, conn)
		}
	}()

	// Dial all higher ranks (with retries while peers start their listeners).
	for peer := myRank + 1; peer < p; peer++ {
		wg.Add(1)
		go func(peer int) {
			defer wg.Done()
			var conn net.Conn
			var err error
			deadline := time.Now().Add(10 * time.Second)
			for {
				conn, err = net.Dial("tcp", addrs[peer])
				if err == nil {
					break
				}
				if time.Now().After(deadline) {
					fail(fmt.Errorf("comm: rank %d dial rank %d (%s): %w", myRank, peer, addrs[peer], err))
					return
				}
				time.Sleep(20 * time.Millisecond)
			}
			var hdr [8]byte
			binary.LittleEndian.PutUint32(hdr[:4], tcpHandshakeMagic)
			binary.LittleEndian.PutUint32(hdr[4:], uint32(myRank))
			if _, err := conn.Write(hdr[:]); err != nil {
				fail(fmt.Errorf("comm: rank %d handshake write to %d: %w", myRank, peer, err))
				return
			}
			ep.attach(peer, conn)
		}(peer)
	}
	wg.Wait()
	if connectErr != nil {
		ep.Close()
		return nil, connectErr
	}
	return ep, nil
}

// attach registers a peer connection and starts its reader/writer loops.
func (t *TCPEndpoint) attach(peer int, c net.Conn) {
	tc := &tcpConn{c: c, done: make(chan struct{})}
	tc.nw = sync.NewCond(&tc.mu)
	t.mu.Lock()
	t.conns[peer] = tc
	t.mu.Unlock()
	go t.readLoop(peer, tc)
	go t.writeLoop(peer, tc)
}

func (t *TCPEndpoint) readLoop(peer int, tc *tcpConn) {
	var hdr [12]byte
	for {
		if _, err := io.ReadFull(tc.c, hdr[:]); err != nil {
			t.markPeerDown(peer, err)
			return
		}
		tag := int(int64(binary.LittleEndian.Uint64(hdr[:8])))
		n := binary.LittleEndian.Uint32(hdr[8:])
		payload := make([]byte, n)
		if _, err := io.ReadFull(tc.c, payload); err != nil {
			t.markPeerDown(peer, err)
			return
		}
		t.mu.Lock()
		t.inbox = append(t.inbox, inprocMessage{src: peer, tag: tag, data: payload})
		t.mu.Unlock()
		t.cond.Broadcast()
	}
}

func (t *TCPEndpoint) writeLoop(peer int, tc *tcpConn) {
	defer close(tc.done)
	for {
		tc.mu.Lock()
		for len(tc.q) == 0 {
			tc.nw.Wait()
		}
		frame := tc.q[0]
		tc.q = tc.q[1:]
		closing := frame == nil
		tc.mu.Unlock()
		if closing {
			tc.c.Close()
			return
		}
		if _, err := tc.c.Write(frame); err != nil {
			t.markPeerDown(peer, err)
			return
		}
	}
}

// markPeerDown records a transport failure (or normal EOF at shutdown) for
// one peer and wakes blocked receivers so Recvs targeting that peer fail.
func (t *TCPEndpoint) markPeerDown(peer int, err error) {
	t.mu.Lock()
	if t.peerDown[peer] == nil {
		t.peerDown[peer] = err
	}
	t.mu.Unlock()
	t.cond.Broadcast()
}

// Send enqueues a frame for dst; it never blocks on the network.
func (t *TCPEndpoint) Send(dst, tag int, data []byte) error {
	if err := checkPeer(t, dst); err != nil {
		return err
	}
	if dst == t.rank {
		cp := make([]byte, len(data))
		copy(cp, data)
		t.mu.Lock()
		t.inbox = append(t.inbox, inprocMessage{src: t.rank, tag: tag, data: cp})
		t.mu.Unlock()
		t.cond.Broadcast()
		t.stats.recordSend(dst, len(data))
		return nil
	}
	t.mu.Lock()
	tc := t.conns[dst]
	err := t.peerDown[dst]
	t.mu.Unlock()
	if err != nil {
		return fmt.Errorf("comm: rank %d peer %d down: %w", t.rank, dst, err)
	}
	if tc == nil {
		return fmt.Errorf("comm: rank %d has no connection to %d", t.rank, dst)
	}
	frame := make([]byte, 12+len(data))
	binary.LittleEndian.PutUint64(frame[:8], uint64(int64(tag)))
	binary.LittleEndian.PutUint32(frame[8:12], uint32(len(data)))
	copy(frame[12:], data)
	tc.mu.Lock()
	tc.q = append(tc.q, frame)
	tc.mu.Unlock()
	tc.nw.Signal()
	t.stats.recordSend(dst, len(data))
	return nil
}

// Recv blocks until a message from src with the given tag arrives, or the
// transport fails.
func (t *TCPEndpoint) Recv(src, tag int) ([]byte, error) {
	if err := checkPeer(t, src); err != nil {
		return nil, err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for {
		for i := range t.inbox {
			m := t.inbox[i]
			if m.src == src && m.tag == tag {
				t.inbox = append(t.inbox[:i], t.inbox[i+1:]...)
				t.stats.recordRecv(len(m.data))
				return m.data, nil
			}
		}
		if src != t.rank && t.peerDown[src] != nil {
			return nil, fmt.Errorf("comm: rank %d peer %d down: %w", t.rank, src, t.peerDown[src])
		}
		if t.closed {
			return nil, fmt.Errorf("comm: endpoint closed")
		}
		t.cond.Wait()
	}
}

// Close shuts down the endpoint: the listener stops and all peer
// connections are closed after their queued frames drain.
func (t *TCPEndpoint) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	conns := make([]*tcpConn, len(t.conns))
	copy(conns, t.conns)
	t.mu.Unlock()
	t.cond.Broadcast()
	if t.listener != nil {
		t.listener.Close()
	}
	for _, tc := range conns {
		if tc == nil {
			continue
		}
		tc.mu.Lock()
		tc.q = append(tc.q, nil) // nil frame = close sentinel
		tc.mu.Unlock()
		tc.nw.Signal()
	}
	// Wait for the writers to drain their queues so frames sent just
	// before Close (e.g. a final gather) reach the peers even if the
	// process exits immediately afterwards.
	for _, tc := range conns {
		if tc == nil {
			continue
		}
		select {
		case <-tc.done:
		case <-time.After(5 * time.Second):
		}
	}
	return nil
}
