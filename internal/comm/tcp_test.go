package comm

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
)

// freeAddrs reserves n distinct loopback ports and returns their addresses.
func freeAddrs(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	lns := make([]net.Listener, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range lns {
		ln.Close()
	}
	return addrs
}

// runTCPWorld runs fn on p TCP endpoints within this process (one goroutine
// per "process").
func runTCPWorld(t *testing.T, p int, fn func(Comm) error) error {
	t.Helper()
	addrs := freeAddrs(t, p)
	errs := make([]error, p)
	var wg sync.WaitGroup
	wg.Add(p)
	for r := 0; r < p; r++ {
		go func(r int) {
			defer wg.Done()
			ep, err := DialTCPWorld(r, addrs)
			if err != nil {
				errs[r] = err
				return
			}
			defer ep.Close()
			errs[r] = fn(ep)
		}(r)
	}
	wg.Wait()
	return errors.Join(errs...)
}

func TestTCPPointToPoint(t *testing.T) {
	err := runTCPWorld(t, 3, func(c Comm) error {
		for dst := 0; dst < c.Size(); dst++ {
			msg := []byte(fmt.Sprintf("%d->%d", c.Rank(), dst))
			if err := c.Send(dst, 4, msg); err != nil {
				return err
			}
		}
		for src := 0; src < c.Size(); src++ {
			got, err := c.Recv(src, 4)
			if err != nil {
				return err
			}
			want := fmt.Sprintf("%d->%d", src, c.Rank())
			if string(got) != want {
				return fmt.Errorf("got %q, want %q", got, want)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTCPCollectives(t *testing.T) {
	err := runTCPWorld(t, 4, func(c Comm) error {
		if err := Barrier(c); err != nil {
			return err
		}
		sum, err := AllreduceInt64Sum(c, int64(c.Rank()+1))
		if err != nil {
			return err
		}
		if sum != 10 {
			return fmt.Errorf("sum = %d, want 10", sum)
		}
		got, err := Bcast(c, 0, []byte("hello"))
		if err != nil {
			return err
		}
		if string(got) != "hello" {
			return fmt.Errorf("bcast got %q", got)
		}
		out := make([][]byte, c.Size())
		for d := range out {
			out[d] = []byte{byte(c.Rank() * 10), byte(d)}
		}
		in, err := Alltoallv(c, out)
		if err != nil {
			return err
		}
		for s := range in {
			if in[s][0] != byte(s*10) || in[s][1] != byte(c.Rank()) {
				return fmt.Errorf("alltoallv in[%d] = %v", s, in[s])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTCPLargeMessages(t *testing.T) {
	const size = 1 << 20
	err := runTCPWorld(t, 2, func(c Comm) error {
		if c.Rank() == 0 {
			big := make([]byte, size)
			for i := range big {
				big[i] = byte(i)
			}
			return c.Send(1, 0, big)
		}
		got, err := c.Recv(0, 0)
		if err != nil {
			return err
		}
		if len(got) != size {
			return fmt.Errorf("len = %d, want %d", len(got), size)
		}
		for i := 0; i < size; i += 4093 {
			if got[i] != byte(i) {
				return fmt.Errorf("byte %d corrupted", i)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTCPBidirectionalFlood(t *testing.T) {
	// Both ranks send many messages before either receives; the per-conn
	// writer queue must prevent deadlock.
	const n = 200
	err := runTCPWorld(t, 2, func(c Comm) error {
		other := 1 - c.Rank()
		payload := make([]byte, 4096)
		for i := 0; i < n; i++ {
			if err := c.Send(other, i, payload); err != nil {
				return err
			}
		}
		for i := 0; i < n; i++ {
			got, err := c.Recv(other, i)
			if err != nil {
				return err
			}
			if len(got) != len(payload) {
				return fmt.Errorf("message %d: len %d", i, len(got))
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTCPInvalidRank(t *testing.T) {
	if _, err := DialTCPWorld(5, []string{"127.0.0.1:0"}); err == nil {
		t.Fatal("expected error for rank out of range")
	}
}

func TestTCPStats(t *testing.T) {
	err := runTCPWorld(t, 2, func(c Comm) error {
		if c.Rank() == 0 {
			if err := c.Send(1, 0, make([]byte, 64)); err != nil {
				return err
			}
			snap := c.Stats().Snapshot()
			if snap.BytesSent != 64 || snap.MsgsSent != 1 {
				return fmt.Errorf("stats = %+v", snap)
			}
			return nil
		}
		_, err := c.Recv(0, 0)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTCPAbruptPeerDeath(t *testing.T) {
	// A peer that closes its endpoint while others still expect messages
	// must fail their Recvs rather than hang.
	addrs := freeAddrs(t, 2)
	errs := make([]error, 2)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		ep, err := DialTCPWorld(0, addrs)
		if err != nil {
			errs[0] = err
			return
		}
		// Close immediately without sending anything.
		ep.Close()
	}()
	go func() {
		defer wg.Done()
		ep, err := DialTCPWorld(1, addrs)
		if err != nil {
			errs[1] = err
			return
		}
		defer ep.Close()
		if _, err := ep.Recv(0, 0); err == nil {
			errs[1] = errors.New("Recv from closed peer should fail")
		}
	}()
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
}
