package core

// Microbenchmarks for the stage-1 clustering kernels, run with -benchmem.
// Each benchmark drives one kernel on every rank of a p=4 in-process world
// after warming the stage into its steady state (no vertex moves anywhere),
// so the numbers isolate the per-iteration cost of the kernel itself —
// scratch allocation, encoding, and arc scanning — rather than first-touch
// setup. scripts/bench.sh runs these and records the trajectory in
// BENCH_<pr>.json; allocs/op here is the headline number the zero-allocation
// work is measured by.

import (
	"testing"

	"repro/internal/comm"
	"repro/internal/gen"
	"repro/internal/partition"
)

// benchWorldSize is the world size of every kernel benchmark. Big enough
// that the all-to-all exchanges have real fan-out, small enough that a
// single host machine is not oversubscribed during timing.
const benchWorldSize = 4

// benchKernel runs op b.N times on every rank of a steady-state stage and
// times it from rank 0. All ranks execute the same op sequence, so kernels
// containing collectives stay symmetric.
func benchKernel(b *testing.B, op func(s *stage) error) {
	b.Helper()
	g, err := gen.RMAT(gen.Graph500RMAT(12, 7))
	if err != nil {
		b.Fatal(err)
	}
	opt, err := (Options{P: benchWorldSize, DHigh: 64}).withDefaults()
	if err != nil {
		b.Fatal(err)
	}
	layout, err := partition.Build(g, partition.Options{
		P: opt.P, Kind: opt.Partitioning, DHigh: opt.DHigh,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	err = comm.RunWorld(opt.P, func(c comm.Comm) error {
		s := newStage(c, layout.Parts[c.Rank()], opt)
		defer s.close()
		// Warm up to the fixed point: iterate the full per-iteration
		// protocol until no vertex moves anywhere in the world.
		for iter := 0; iter < opt.MaxInnerIters; iter++ {
			if err := s.fetchCommunityInfo(); err != nil {
				return err
			}
			props, movedLocal := s.sweep()
			hubMoved, err := s.delegateExchange(props)
			if err != nil {
				return err
			}
			if err := s.ghostSwap(); err != nil {
				return err
			}
			if err := s.flushDeltas(); err != nil {
				return err
			}
			movedTotal, err := comm.AllreduceInt64Sum(c, int64(movedLocal+hubMoved))
			if err != nil {
				return err
			}
			if movedTotal == 0 {
				break
			}
		}
		// Steady-state sweeps still need fresh aggregates in the cache.
		if err := s.fetchCommunityInfo(); err != nil {
			return err
		}
		if err := comm.Barrier(c); err != nil {
			return err
		}
		if c.Rank() == 0 {
			b.ResetTimer()
		}
		for i := 0; i < b.N; i++ {
			if err := op(s); err != nil {
				return err
			}
		}
		return comm.Barrier(c)
	})
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkKernelSweep measures the greedy local-moving pass (owned
// Gauss-Seidel sweep + per-hub proposals) with no communication.
func BenchmarkKernelSweep(b *testing.B) {
	benchKernel(b, func(s *stage) error {
		s.sweep()
		return nil
	})
}

// BenchmarkKernelFetchCommunityInfo measures the Σtot/size cache refresh:
// request dedup + encode, two all-to-alls, answer encode, install.
func BenchmarkKernelFetchCommunityInfo(b *testing.B) {
	benchKernel(b, func(s *stage) error {
		return s.fetchCommunityInfo()
	})
}

// BenchmarkKernelGhostSwap measures the ghost label exchange in the steady
// state (no changed vertices: pure frame setup + empty all-to-all).
func BenchmarkKernelGhostSwap(b *testing.B) {
	benchKernel(b, func(s *stage) error {
		return s.ghostSwap()
	})
}

// BenchmarkKernelFlushDeltas measures the Σtot delta routing in the steady
// state (empty ledger: pure frame setup + empty all-to-all).
func BenchmarkKernelFlushDeltas(b *testing.B) {
	benchKernel(b, func(s *stage) error {
		return s.flushDeltas()
	})
}

// BenchmarkKernelDelegateExchange measures hub-proposal encode + allreduce
// + replicated apply.
func BenchmarkKernelDelegateExchange(b *testing.B) {
	benchKernel(b, func(s *stage) error {
		props, _ := s.sweep()
		_, err := s.delegateExchange(props)
		return err
	})
}

// BenchmarkKernelGlobalModularity measures the full local arc scan plus the
// −(Σtot/2m)² owner terms and the world reduction.
func BenchmarkKernelGlobalModularity(b *testing.B) {
	benchKernel(b, func(s *stage) error {
		_, err := s.globalModularity()
		return err
	})
}
