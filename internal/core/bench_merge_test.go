package core

// Benchmarks for the stage-2 distributed merge (Algorithm 3): the retained
// seed implementation (merge_seed_test.go) versus the zero-map pipeline in
// merge.go, on the same converged p=4 world. Besides ns/op and allocs/op,
// each reports wire-B/op — the per-rank collective payload of one merge,
// measured with the trace collective counters — so BENCH_<pr>.json records
// the pre-aggregation wire reduction alongside the speedup.

import (
	"testing"

	"repro/internal/comm"
	"repro/internal/gen"
	"repro/internal/partition"
	"repro/internal/trace"
)

// benchMerge times op (a full merge) on every rank of a steady-state stage,
// exactly like benchKernel, and additionally reports the per-rank wire
// bytes of one op from the process-global collective counters. One untimed
// warm call settles scratch growth first, so the timed region measures the
// pooled steady state.
func benchMerge(b *testing.B, op func(s *stage) error) {
	b.Helper()
	g, err := gen.RMAT(gen.Graph500RMAT(12, 7))
	if err != nil {
		b.Fatal(err)
	}
	opt, err := (Options{P: benchWorldSize, DHigh: 64}).withDefaults()
	if err != nil {
		b.Fatal(err)
	}
	layout, err := partition.Build(g, partition.Options{
		P: opt.P, Kind: opt.Partitioning, DHigh: opt.DHigh,
	})
	if err != nil {
		b.Fatal(err)
	}
	trace.EnableCollectiveStats(true)
	defer trace.EnableCollectiveStats(false)
	b.ReportAllocs()
	err = comm.RunWorld(opt.P, func(c comm.Comm) error {
		s := newStage(c, layout.Parts[c.Rank()], opt)
		defer s.close()
		for iter := 0; iter < opt.MaxInnerIters; iter++ {
			if err := s.fetchCommunityInfo(); err != nil {
				return err
			}
			props, movedLocal := s.sweep()
			hubMoved, err := s.delegateExchange(props)
			if err != nil {
				return err
			}
			if err := s.ghostSwap(); err != nil {
				return err
			}
			if err := s.flushDeltas(); err != nil {
				return err
			}
			movedTotal, err := comm.AllreduceInt64Sum(c, int64(movedLocal+hubMoved))
			if err != nil {
				return err
			}
			if movedTotal == 0 {
				break
			}
		}
		if err := op(s); err != nil { // settle one-time scratch growth
			return err
		}
		if err := comm.Barrier(c); err != nil {
			return err
		}
		var t0 trace.CollectiveStat
		if c.Rank() == 0 {
			t0 = trace.CollectiveTotals()
			b.ResetTimer()
		}
		for i := 0; i < b.N; i++ {
			if err := op(s); err != nil {
				return err
			}
		}
		if err := comm.Barrier(c); err != nil {
			return err
		}
		if c.Rank() == 0 {
			t1 := trace.CollectiveTotals()
			b.ReportMetric(float64(t1.Bytes-t0.Bytes)/float64(b.N)/float64(opt.P), "wire-B/op")
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkMergeSeed measures the seed-era merge: serial map-of-maps
// assembly, per-vertex sort.Ints, one wire record per translated arc.
func BenchmarkMergeSeed(b *testing.B) {
	benchMerge(b, func(s *stage) error {
		_, _, err := s.mergeSeed()
		return err
	})
}

// BenchmarkMergePreagg measures the zero-map pipeline: pooled counting-sort
// assembly and key-grouped pre-aggregated frames.
func BenchmarkMergePreagg(b *testing.B) {
	benchMerge(b, func(s *stage) error {
		_, _, err := s.merge()
		return err
	})
}
