package core

// Macro benchmarks for mid-solve load rebalancing: the full distributed
// pipeline on a planted-hub graph whose hubs all land on rank 0 under 1-D
// round-robin partitioning — the adversarial workload the rebalancer
// exists for. The headline metric is sim-ms/op, the cumulative simulated
// parallel time (compute + α-β communication, both stages): wall time on
// an oversubscribed benchmark host says little about a 4-rank machine,
// while the simulated clock prices exactly the imbalance the policies
// attack. scripts/bench.sh records the trajectory in BENCH_<pr>.json.

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/partition"
)

// benchRebalanceGraph is the benchmark workload: hubs at stride 4 so every
// one of them is owned by rank 0 of a 4-rank 1-D partitioning.
func benchRebalanceGraph(b *testing.B) *graph.Graph {
	b.Helper()
	g, _, err := gen.PlantedHubs(8192, 128, 96, 4, 384, 7)
	if err != nil {
		b.Fatal(err)
	}
	return g
}

func benchRebalance(b *testing.B, ratio float64, policy string) {
	g := benchRebalanceGraph(b)
	opt := Options{
		P: 4, Partitioning: partition.OneD,
		RebalanceRatio: ratio, RebalancePolicy: policy,
	}
	b.ReportAllocs()
	b.ResetTimer()
	var simNS, events int64
	for i := 0; i < b.N; i++ {
		res, err := Run(g, opt)
		if err != nil {
			b.Fatal(err)
		}
		if res.Modularity <= 0 {
			b.Fatal("bad modularity")
		}
		simNS += int64(res.Stage1Sim + res.Stage2Sim + res.Stage1CommSim + res.Stage2CommSim)
		events += int64(res.RebalanceEvents)
	}
	b.ReportMetric(float64(simNS)/float64(b.N)/1e6, "sim-ms/op")
	b.ReportMetric(float64(events)/float64(b.N), "migrations/op")
}

// BenchmarkRebalanceOff is the baseline: static 1-D partitioning rides out
// the hub-loaded rank for the whole solve.
func BenchmarkRebalanceOff(b *testing.B) { benchRebalance(b, 0, "") }

// BenchmarkRebalanceGreedy sheds work above the mean once the imbalance
// ratio crosses the trigger (the production configuration).
func BenchmarkRebalanceGreedy(b *testing.B) { benchRebalance(b, 1.1, "greedy") }

// BenchmarkRebalanceIdeal levels every rank to the mean on each event — the
// oracle bound on what migration can buy; the gap between greedy and ideal
// is the headroom left in the policy, not the mechanism.
func BenchmarkRebalanceIdeal(b *testing.B) { benchRebalance(b, 1.1, "ideal") }
