package core

import (
	"sync"
	"testing"

	"repro/internal/partition"
)

// Tests for the overlapped collective engine's core-side wiring: the
// per-iteration allreduce fusion (exactly one reduction carries moved count,
// work max, comm max, and Q) and the bit-identity of the overlapped engine
// against the sequential baseline, clean and under benign chaos.

// TestIterationSingleAllreduce pins the per-iteration message budget at
// P=4 under 1-D partitioning (no hubs, so delegateExchange sends nothing):
//
//	fetchCommunityInfo   2 alltoallv × (p−1)  = 6
//	ghostSwap            1 alltoallv × (p−1)  = 3
//	flushDeltas          1 alltoallv × (p−1)  = 3
//	fused IterStats      1 allreduce × log2 p = 2   → 14 total
//
// The sequential baseline replaces the fused reduction with four scalar
// allreduces (4 × log2 p = 8 → 20 total). Any regression that reintroduces
// a separate per-iteration reduction — or sneaks in an extra exchange —
// shifts the count and fails here.
func TestIterationSingleAllreduce(t *testing.T) {
	g := goldenGraph(t)
	const p = 4
	for _, tc := range []struct {
		name string
		seq  bool
		want int64
	}{
		{"fused", false, 4*(p-1) + 2},
		{"sequential", true, 4*(p-1) + 4*2},
	} {
		t.Run(tc.name, func(t *testing.T) {
			// Per rank, per stage: MsgsSent observed at each iteration hook.
			// The delta between consecutive iterations of the same stage is
			// exactly one iteration's traffic (stage setup and merge frames
			// fall between stages, never between iterations).
			var mu sync.Mutex
			recs := make(map[*stage][]int64)
			testIterHook = func(s *stage, iter int, q float64) error {
				if s.p != p {
					return nil
				}
				snap := s.c.Stats().Snapshot()
				mu.Lock()
				recs[s] = append(recs[s], snap.MsgsSent)
				mu.Unlock()
				return nil
			}
			defer func() { testIterHook = nil }()
			_, err := Run(g, Options{
				P: p, Partitioning: partition.OneD, SequentialCollectives: tc.seq,
			})
			if err != nil {
				t.Fatal(err)
			}
			pairs := 0
			for _, ms := range recs {
				for i := 1; i < len(ms); i++ {
					if d := ms[i] - ms[i-1]; d != tc.want {
						t.Fatalf("iteration sent %d messages per rank, want %d", d, tc.want)
					}
					pairs++
				}
			}
			if pairs == 0 {
				t.Fatal("no stage ran two consecutive iterations; the budget was never checked")
			}
		})
	}
}

// TestOverlapSeqChaosDeterminism pins the engine equivalence end to end on
// the golden fixture graph: the overlapped engine (concurrent alltoallv,
// streaming decode, fused reduction, auto-selected hub reduction) and the
// sequential baseline must produce bit-identical modularity and membership —
// on a clean world and under seeded benign chaos schedules.
func TestOverlapSeqChaosDeterminism(t *testing.T) {
	g := goldenGraph(t)
	for _, pk := range []partition.Kind{partition.Delegate, partition.OneD} {
		overlapped := Options{P: 4, Heuristic: HeuristicEnhanced, Partitioning: pk}
		sequential := overlapped
		sequential.SequentialCollectives = true

		clean, err := Run(g, overlapped)
		if err != nil {
			t.Fatalf("part=%v overlapped: %v", pk, err)
		}
		cleanSeq, err := Run(g, sequential)
		if err != nil {
			t.Fatalf("part=%v sequential: %v", pk, err)
		}
		if cleanSeq.Modularity != clean.Modularity {
			t.Fatalf("part=%v: sequential Q %.17g, overlapped %.17g", pk, cleanSeq.Modularity, clean.Modularity)
		}
		for u := range clean.Membership {
			if cleanSeq.Membership[u] != clean.Membership[u] {
				t.Fatalf("part=%v vertex %d: sequential community %d, overlapped %d",
					pk, u, cleanSeq.Membership[u], clean.Membership[u])
			}
		}

		for seed := int64(1); seed <= 3; seed++ {
			for _, opt := range []Options{overlapped, sequential} {
				m, q := chaosRun(t, g, opt, benignCoreChaos(seed))
				if q != clean.Modularity {
					t.Fatalf("part=%v seq=%v chaos seed %d: Q %.17g, clean %.17g",
						pk, opt.SequentialCollectives, seed, q, clean.Modularity)
				}
				for u := range m {
					if m[u] != clean.Membership[u] {
						t.Fatalf("part=%v seq=%v chaos seed %d vertex %d: community %d, clean %d",
							pk, opt.SequentialCollectives, seed, u, m[u], clean.Membership[u])
					}
				}
			}
		}
	}
}
