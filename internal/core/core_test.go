package core

import (
	"math"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/louvain"
	"repro/internal/partition"
	"repro/internal/quality"
)

func mustLFR(t testing.TB, n int, mu float64, seed int64) (*graph.Graph, graph.Membership) {
	t.Helper()
	g, m, err := gen.LFR(gen.DefaultLFR(n, mu, seed))
	if err != nil {
		t.Fatal(err)
	}
	return g, m
}

// checkResult verifies the structural invariants every run must satisfy:
// full membership, dense labels, and a self-consistent reported modularity.
func checkResult(t *testing.T, g *graph.Graph, res *Result) {
	t.Helper()
	if len(res.Membership) != g.NumVertices() {
		t.Fatalf("membership covers %d of %d vertices", len(res.Membership), g.NumVertices())
	}
	k := res.Membership.NumCommunities()
	for _, c := range res.Membership {
		if c < 0 || c >= k {
			t.Fatalf("label %d not dense in [0,%d)", c, k)
		}
	}
	want := graph.Modularity(g, res.Membership)
	if math.Abs(res.Modularity-want) > 1e-6 {
		t.Errorf("reported Q = %.9f but membership Q = %.9f", res.Modularity, want)
	}
}

func TestTwoTrianglesAcrossRanks(t *testing.T) {
	g, err := graph.FromEdges(6, []graph.Edge{
		{U: 0, V: 1, W: 1}, {U: 1, V: 2, W: 1}, {U: 0, V: 2, W: 1},
		{U: 3, V: 4, W: 1}, {U: 4, V: 5, W: 1}, {U: 3, V: 5, W: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{1, 2, 3, 6} {
		res, err := Run(g, Options{P: p})
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		checkResult(t, g, res)
		if got := res.Membership.NumCommunities(); got != 2 {
			t.Errorf("p=%d: %d communities, want 2 (membership %v)", p, got, res.Membership)
		}
		if math.Abs(res.Modularity-0.5) > 1e-9 {
			t.Errorf("p=%d: Q = %g, want 0.5", p, res.Modularity)
		}
	}
}

func TestSingleRankMatchesSequentialQuality(t *testing.T) {
	g, _ := mustLFR(t, 600, 0.25, 42)
	seq := louvain.Run(g, louvain.Options{})
	res, err := Run(g, Options{P: 1})
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, g, res)
	if math.Abs(res.Modularity-seq.Modularity) > 0.05 {
		t.Errorf("p=1 Q = %.4f, sequential Q = %.4f (want within 0.05)", res.Modularity, seq.Modularity)
	}
}

func TestParallelMatchesSequentialQuality(t *testing.T) {
	// The paper's central convergence claim (Figure 5): the enhanced
	// heuristic converges to a modularity close to sequential Louvain.
	for _, seed := range []int64{7, 19} {
		g, _ := mustLFR(t, 800, 0.3, seed)
		seq := louvain.Run(g, louvain.Options{})
		for _, p := range []int{4, 8} {
			res, err := Run(g, Options{P: p, Heuristic: HeuristicEnhanced})
			if err != nil {
				t.Fatalf("seed=%d p=%d: %v", seed, p, err)
			}
			checkResult(t, g, res)
			if res.Modularity < seq.Modularity-0.06 {
				t.Errorf("seed=%d p=%d: Q = %.4f, sequential = %.4f", seed, p, res.Modularity, seq.Modularity)
			}
		}
	}
}

func TestCavemanExactRecovery(t *testing.T) {
	g, truth, err := gen.Caveman(10, 6)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{2, 4} {
		res, err := Run(g, Options{P: p})
		if err != nil {
			t.Fatal(err)
		}
		checkResult(t, g, res)
		s, err := quality.Compare(res.Membership, truth)
		if err != nil {
			t.Fatal(err)
		}
		if s.NMI < 0.95 {
			t.Errorf("p=%d: NMI = %.3f, want ≈ 1 on caveman", p, s.NMI)
		}
	}
}

func TestLFRQualityVsTruth(t *testing.T) {
	// The paper's Table II: NMI above 0.8 on community-rich graphs.
	g, truth := mustLFR(t, 1000, 0.2, 33)
	res, err := Run(g, Options{P: 8})
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, g, res)
	s, err := quality.Compare(res.Membership, truth)
	if err != nil {
		t.Fatal(err)
	}
	if s.NMI < 0.75 {
		t.Errorf("NMI = %.3f, want >= 0.75", s.NMI)
	}
}

func TestDeterministicForFixedP(t *testing.T) {
	g, _ := mustLFR(t, 500, 0.3, 5)
	r1, err := Run(g, Options{P: 4})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(g, Options{P: 4})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Modularity != r2.Modularity {
		t.Errorf("nondeterministic Q: %v vs %v", r1.Modularity, r2.Modularity)
	}
	for i := range r1.Membership {
		if r1.Membership[i] != r2.Membership[i] {
			t.Fatal("nondeterministic membership")
		}
	}
}

func TestOneDPartitioningBaseline(t *testing.T) {
	// The 1D baseline must produce valid, comparable-quality results
	// (it is the comparator of Figure 7, not a strawman).
	// DHigh is set explicitly: at toy scale the paper's dhigh = p would
	// delegate every vertex (p is below the average degree), which is
	// outside the regime the paper runs in (p in the thousands).
	g, _ := mustLFR(t, 600, 0.25, 11)
	del, err := Run(g, Options{P: 4, Partitioning: partition.Delegate, DHigh: 50})
	if err != nil {
		t.Fatal(err)
	}
	oneD, err := Run(g, Options{P: 4, Partitioning: partition.OneD})
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, g, del)
	checkResult(t, g, oneD)
	if math.Abs(del.Modularity-oneD.Modularity) > 0.1 {
		t.Errorf("delegate Q %.4f vs 1D Q %.4f differ too much", del.Modularity, oneD.Modularity)
	}
	if oneD.HubCount != 0 {
		t.Errorf("1D run reports %d hubs", oneD.HubCount)
	}
}

func TestHeuristicOrderingOnQuality(t *testing.T) {
	// Figure 5's qualitative claim: the enhanced heuristic converges to a
	// clearly higher modularity than the simple minimum-label heuristic.
	g, _ := mustLFR(t, 900, 0.25, 23)
	enh, err := Run(g, Options{P: 8, DHigh: 40, Heuristic: HeuristicEnhanced})
	if err != nil {
		t.Fatal(err)
	}
	sim, err := Run(g, Options{P: 8, DHigh: 40, Heuristic: HeuristicSimple})
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, g, enh)
	checkResult(t, g, sim)
	if enh.Modularity < sim.Modularity+0.02 {
		t.Errorf("enhanced Q %.4f should clearly beat simple Q %.4f", enh.Modularity, sim.Modularity)
	}
}

func TestHeuristicSimpleStillTerminates(t *testing.T) {
	// The simple heuristic may never reach a fixed point (the bouncing
	// problem); the iteration cap must still terminate the run with a
	// valid, self-consistent result.
	g, _ := mustLFR(t, 300, 0.3, 9)
	res, err := Run(g, Options{P: 4, Heuristic: HeuristicSimple, MaxInnerIters: 20})
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, g, res)
}

func TestHeuristicStrictConverges(t *testing.T) {
	// Strict minimum-label moves are monotone in the label order, so the
	// stage must converge well before the iteration cap.
	g, _ := mustLFR(t, 500, 0.25, 31)
	res, err := Run(g, Options{P: 4, Heuristic: HeuristicStrict})
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, g, res)
	if res.Stage1Iters >= 100 {
		t.Errorf("strict heuristic hit the iteration cap (%d iters)", res.Stage1Iters)
	}
}

func TestStarGraphHubDelegation(t *testing.T) {
	// A star has one massive hub; with DHigh below its degree the hub is
	// delegated and the run must still converge to one community.
	edges := make([]graph.Edge, 200)
	for i := range edges {
		edges[i] = graph.Edge{U: 0, V: i + 1, W: 1}
	}
	g, err := graph.FromEdges(201, edges)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(g, Options{P: 4, DHigh: 50})
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, g, res)
	if res.HubCount != 1 {
		t.Errorf("HubCount = %d, want 1", res.HubCount)
	}
	// A star's optimal modularity partition keeps leaves with the hub.
	if res.Membership.NumCommunities() > 3 {
		t.Errorf("star split into %d communities", res.Membership.NumCommunities())
	}
}

func TestEdgelessGraph(t *testing.T) {
	g, err := graph.FromEdges(7, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(g, Options{P: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Membership) != 7 {
		t.Fatalf("membership %v", res.Membership)
	}
	if res.Modularity != 0 {
		t.Errorf("Q = %g, want 0", res.Modularity)
	}
}

func TestIsolatedVerticesKept(t *testing.T) {
	g, err := graph.FromEdges(10, []graph.Edge{{U: 0, V: 1, W: 1}, {U: 2, V: 3, W: 1}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(g, Options{P: 3})
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, g, res)
	if len(res.Membership) != 10 {
		t.Fatalf("membership lost vertices: %v", res.Membership)
	}
}

func TestWeightedGraph(t *testing.T) {
	// Heavy intra-block weights must dominate topology.
	g, err := graph.FromEdges(4, []graph.Edge{
		{U: 0, V: 1, W: 10}, {U: 2, V: 3, W: 10}, {U: 1, V: 2, W: 0.1},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(g, Options{P: 2})
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, g, res)
	if res.Membership[0] != res.Membership[1] || res.Membership[2] != res.Membership[3] {
		t.Errorf("weighted pairs split: %v", res.Membership)
	}
	if res.Membership[1] == res.Membership[2] {
		t.Errorf("weak bridge merged: %v", res.Membership)
	}
}

func TestTrackTrace(t *testing.T) {
	g, _ := mustLFR(t, 400, 0.25, 3)
	res, err := Run(g, Options{P: 4, TrackTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.QTrace) == 0 {
		t.Fatal("no QTrace recorded")
	}
	last := res.QTrace[len(res.QTrace)-1]
	if math.Abs(last-res.Modularity) > 1e-9 {
		t.Errorf("trace end %.6f != final Q %.6f", last, res.Modularity)
	}
	// The trace should improve substantially from its first iteration.
	if last < res.QTrace[0] {
		t.Errorf("trace went backwards: %v", res.QTrace)
	}
}

func TestInvalidOptions(t *testing.T) {
	g, err := graph.FromEdges(2, []graph.Edge{{U: 0, V: 1, W: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(g, Options{P: 0}); err == nil {
		t.Fatal("expected error for P = 0")
	}
}

func TestMaxOuterLevels(t *testing.T) {
	g, _ := mustLFR(t, 400, 0.3, 13)
	res, err := Run(g, Options{P: 4, MaxOuterLevels: 1})
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, g, res)
	if res.OuterLevels != 1 {
		t.Errorf("OuterLevels = %d, want 1", res.OuterLevels)
	}
}

func TestMorePRanksThanVertices(t *testing.T) {
	g, err := graph.FromEdges(3, []graph.Edge{{U: 0, V: 1, W: 1}, {U: 1, V: 2, W: 1}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(g, Options{P: 8})
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, g, res)
}

func TestSelfLoopsHandled(t *testing.T) {
	g, err := graph.FromEdges(4, []graph.Edge{
		{U: 0, V: 0, W: 5}, {U: 0, V: 1, W: 1}, {U: 2, V: 3, W: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(g, Options{P: 2})
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, g, res)
}

func TestHeuristicString(t *testing.T) {
	if HeuristicEnhanced.String() != "enhanced" || HeuristicSimple.String() != "simple" ||
		HeuristicStrict.String() != "strict" {
		t.Error("Heuristic.String broken")
	}
}

func TestStage1TimingsPopulated(t *testing.T) {
	g, _ := mustLFR(t, 400, 0.25, 21)
	res, err := Run(g, Options{P: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stage1Time <= 0 {
		t.Error("Stage1Time not recorded")
	}
	if res.Stage1Iters < 1 {
		t.Error("Stage1Iters not recorded")
	}
	if res.Breakdown.Iters != res.Stage1Iters {
		t.Errorf("Breakdown.Iters = %d, Stage1Iters = %d", res.Breakdown.Iters, res.Stage1Iters)
	}
	if res.Breakdown.Total() <= 0 {
		t.Error("Breakdown has no time")
	}
	if res.CommStats.TotalBytesSent() <= 0 {
		t.Error("no communication recorded")
	}
}

func TestRMATScaleFreeRun(t *testing.T) {
	g, err := gen.RMAT(gen.Graph500RMAT(9, 77))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{4, 7} {
		res, err := Run(g, Options{P: p})
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		checkResult(t, g, res)
		if res.HubCount == 0 {
			t.Errorf("p=%d: no hubs delegated on a scale-free graph", p)
		}
		if res.Modularity <= 0 {
			t.Errorf("p=%d: Q = %g", p, res.Modularity)
		}
	}
}

func TestResolutionParameter(t *testing.T) {
	g, _ := mustLFR(t, 600, 0.25, 63)
	std, err := Run(g, Options{P: 4})
	if err != nil {
		t.Fatal(err)
	}
	fine, err := Run(g, Options{P: 4, Resolution: 4})
	if err != nil {
		t.Fatal(err)
	}
	if fine.Membership.NumCommunities() <= std.Membership.NumCommunities() {
		t.Errorf("γ=4 gave %d communities, γ=1 gave %d; higher resolution should split more",
			fine.Membership.NumCommunities(), std.Membership.NumCommunities())
	}
	// reported Q must be the generalized modularity
	want := graph.ModularityResolution(g, fine.Membership, 4)
	if math.Abs(fine.Modularity-want) > 1e-6 {
		t.Errorf("reported Q_γ %.6f != recomputed %.6f", fine.Modularity, want)
	}
}

func TestTrackLevelsDendrogram(t *testing.T) {
	g, _ := mustLFR(t, 500, 0.25, 71)
	res, err := Run(g, Options{P: 4, TrackLevels: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.LevelMemberships) == 0 {
		t.Fatal("no levels recorded")
	}
	prev := len(res.Membership) + 1
	for l, m := range res.LevelMemberships {
		if len(m) != g.NumVertices() {
			t.Fatalf("level %d covers %d vertices", l, len(m))
		}
		k := m.NumCommunities()
		if k > prev {
			t.Errorf("level %d has %d communities, more than previous %d", l, k, prev)
		}
		prev = k
	}
	// The last level equals the final membership (up to label identity,
	// which Normalize fixes for both).
	last := res.LevelMemberships[len(res.LevelMemberships)-1]
	for i := range last {
		if last[i] != res.Membership[i] {
			t.Fatal("last level differs from final membership")
		}
	}
}
