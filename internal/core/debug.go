package core

import (
	"fmt"
	"math"

	"repro/internal/comm"
	"repro/internal/trace"
)

// debugInvariants enables per-iteration conservation checks in cluster();
// it is switched on by tests only.
var debugInvariants = false

// debugVerbose prints per-iteration community statistics.
var debugVerbose = false

// testIterHook, when non-nil, runs on every rank after each clustering
// iteration (post aggregate flush and modularity reduction) with the live
// stage, the iteration number, and the just-reduced global modularity.
// Tests install it to audit internal state against independently computed
// ground truth; an error aborts the stage. It must be set before the world
// starts and not mutated while ranks run.
var testIterHook func(s *stage, iter int, q float64) error

// checkInvariants verifies global conservation laws after an iteration:
// the authoritative Σtot values must sum to 2m and the community sizes to
// the global vertex count.
func (s *stage) checkInvariants(iter int) error {
	var localTot float64
	var localN, localMax int64
	for c := s.rnk; c < s.n; c += s.p {
		n := int64(s.ownSize[c])
		if n > localMax {
			localMax = n
		}
		localN += n
		localTot += s.ownTot[c]
		if n < 0 {
			return fmt.Errorf("core: iter %d rank %d community %d has negative size %d", iter, s.rnk, c, n)
		}
		if n == 0 && math.Abs(s.ownTot[c]) > 1e-6 {
			return fmt.Errorf("core: iter %d rank %d empty community %d has Σtot %g", iter, s.rnk, c, s.ownTot[c])
		}
	}
	gTot, err := comm.AllreduceFloat64Sum(s.c, localTot)
	if err != nil {
		return err
	}
	gN, err := comm.AllreduceInt64Sum(s.c, localN)
	if err != nil {
		return err
	}
	owned, err := comm.AllreduceInt64Sum(s.c, int64(len(s.sg.Owned)))
	if err != nil {
		return err
	}
	wantN := owned + int64(len(s.sg.Hubs))
	if gN != wantN {
		return fmt.Errorf("core: iter %d: community sizes sum to %d, want %d", iter, gN, wantN)
	}
	if math.Abs(gTot-s.m2) > 1e-6*math.Max(1, s.m2) {
		return fmt.Errorf("core: iter %d: Σtot sums to %g, want 2m = %g", iter, gTot, s.m2)
	}
	gMax, err := comm.AllreduceInt64Max(s.c, localMax)
	if err != nil {
		return err
	}
	if debugVerbose && s.rnk == 0 {
		trace.Logf("dbg: verts=%d iter %d maxsz=%d", gN, iter, gMax)
	}
	return nil
}
