package core

import (
	"flag"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"

	"repro/internal/comm"
	"repro/internal/graph"
)

// Golden end-to-end test: a committed fixture graph with the expected
// community assignment and modularity per (heuristic, rank count),
// reproduced exactly — hex-float modularity, label-for-label membership —
// over both the in-process and the TCP loopback transport. Any change to
// the algorithm's arithmetic, iteration order, or message layout that
// shifts a single label shows up as a readable diff here.
//
// Regenerate after an intentional behavior change with:
//
//	go test ./internal/core/ -run TestGolden -update-golden
var updateGolden = flag.Bool("update-golden", false, "rewrite golden_test.go expectation files")

func goldenGraph(t *testing.T) *graph.Graph {
	t.Helper()
	f, err := os.Open(filepath.Join("testdata", "golden", "graph.txt"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	g, err := graph.ReadEdgeList(f)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func goldenPath(h Heuristic, p int) string {
	return filepath.Join("testdata", "golden", fmt.Sprintf("%s_p%d.txt", h, p))
}

// formatGolden renders a result: the modularity as a lossless hex float on
// the first line, the membership labels on the second.
func formatGolden(q float64, m graph.Membership) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Q %s\n", strconv.FormatFloat(q, 'x', -1, 64))
	labels := make([]string, len(m))
	for i, c := range m {
		labels[i] = strconv.Itoa(c)
	}
	sb.WriteString(strings.Join(labels, " "))
	sb.WriteString("\n")
	return sb.String()
}

func parseGolden(t *testing.T, path string) (float64, []int) {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update-golden to regenerate)", err)
	}
	lines := strings.SplitN(strings.TrimSpace(string(raw)), "\n", 2)
	if len(lines) != 2 || !strings.HasPrefix(lines[0], "Q ") {
		t.Fatalf("%s: malformed golden file", path)
	}
	q, err := strconv.ParseFloat(strings.TrimPrefix(lines[0], "Q "), 64)
	if err != nil {
		t.Fatalf("%s: bad modularity: %v", path, err)
	}
	fields := strings.Fields(lines[1])
	labels := make([]int, len(fields))
	for i, f := range fields {
		if labels[i], err = strconv.Atoi(f); err != nil {
			t.Fatalf("%s: bad label %q: %v", path, f, err)
		}
	}
	return q, labels
}

// coreFreeAddrs reserves n distinct loopback ports and returns their
// addresses.
func coreFreeAddrs(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	lns := make([]net.Listener, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range lns {
		ln.Close()
	}
	return addrs
}

// runTCPRanks executes RunRank on p TCP-loopback endpoints and assembles
// the normalized membership and rank-0 modularity.
func runTCPRanks(t *testing.T, g *graph.Graph, opt Options) (graph.Membership, float64) {
	t.Helper()
	addrs := coreFreeAddrs(t, opt.P)
	results := make([]*RankResult, opt.P)
	errs := make([]error, opt.P)
	var wg sync.WaitGroup
	for r := 0; r < opt.P; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			ep, err := comm.DialTCPWorld(r, addrs)
			if err != nil {
				errs[r] = err
				return
			}
			defer ep.Close()
			results[r], errs[r] = RunRank(ep, g, opt)
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	m := make(graph.Membership, g.NumVertices())
	for _, res := range results {
		for i, u := range res.Tracked {
			m[u] = res.Labels[i]
		}
	}
	m.Normalize()
	return m, results[0].Modularity
}

func TestGoldenEndToEnd(t *testing.T) {
	g := goldenGraph(t)
	for _, h := range []Heuristic{HeuristicEnhanced, HeuristicSimple, HeuristicStrict} {
		for _, p := range []int{1, 2, 4} {
			t.Run(fmt.Sprintf("%s/p%d", h, p), func(t *testing.T) {
				opt := Options{P: p, Heuristic: h}
				res, err := Run(g, opt)
				if err != nil {
					t.Fatal(err)
				}
				path := goldenPath(h, p)
				if *updateGolden {
					if err := os.WriteFile(path, []byte(formatGolden(res.Modularity, res.Membership)), 0o644); err != nil {
						t.Fatal(err)
					}
				}
				wantQ, wantLabels := parseGolden(t, path)
				check := func(transport string, q float64, m graph.Membership) {
					if q != wantQ {
						t.Errorf("%s: Q = %s, golden %s", transport,
							strconv.FormatFloat(q, 'x', -1, 64), strconv.FormatFloat(wantQ, 'x', -1, 64))
					}
					if len(m) != len(wantLabels) {
						t.Fatalf("%s: %d labels, golden %d", transport, len(m), len(wantLabels))
					}
					for u := range m {
						if m[u] != wantLabels[u] {
							t.Errorf("%s: vertex %d in community %d, golden %d", transport, u, m[u], wantLabels[u])
							return
						}
					}
				}
				check("inproc", res.Modularity, res.Membership)
				tcpM, tcpQ := runTCPRanks(t, g, opt)
				check("tcp", tcpQ, tcpM)
			})
		}
	}
}
