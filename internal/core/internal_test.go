package core

import (
	"fmt"
	"math"
	"reflect"
	"strings"
	"testing"

	"repro/internal/comm"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/trace"
	"repro/internal/wire"
)

func TestCombineHubProposalsPicksMaxAndTieBreaks(t *testing.T) {
	enc := func(props ...hubProposal) []byte {
		b := wire.NewBuffer(0)
		for _, p := range props {
			b.PutF64(p.improvement)
			b.PutVarint(int64(p.target))
		}
		return b.Bytes()
	}
	a := enc(hubProposal{1.0, 5}, hubProposal{negInf, 9}, hubProposal{0.5, 3})
	b := enc(hubProposal{2.0, 7}, hubProposal{0.1, 2}, hubProposal{0.5, 1})
	out := combineHubProposals(a, b)
	rd := wire.NewReader(out)
	// hub 0: b wins on improvement
	if imp, tgt := rd.F64(), rd.Varint(); imp != 2.0 || tgt != 7 {
		t.Errorf("hub 0: (%g,%d)", imp, tgt)
	}
	// hub 1: a had -Inf, b wins
	if imp, tgt := rd.F64(), rd.Varint(); imp != 0.1 || tgt != 2 {
		t.Errorf("hub 1: (%g,%d)", imp, tgt)
	}
	// hub 2: tie on improvement, smaller target wins
	if imp, tgt := rd.F64(), rd.Varint(); imp != 0.5 || tgt != 1 {
		t.Errorf("hub 2: (%g,%d)", imp, tgt)
	}
	if rd.Err() != nil || rd.Remaining() != 0 {
		t.Fatalf("decode: err=%v rem=%d", rd.Err(), rd.Remaining())
	}
}

func TestCombineHubProposalsCommutative(t *testing.T) {
	enc := func(props ...hubProposal) []byte {
		b := wire.NewBuffer(0)
		for _, p := range props {
			b.PutF64(p.improvement)
			b.PutVarint(int64(p.target))
		}
		return b.Bytes()
	}
	a := enc(hubProposal{1.5, 4}, hubProposal{0.0, 8})
	b := enc(hubProposal{1.5, 2}, hubProposal{-1.0, 6})
	ab := combineHubProposals(a, b)
	ba := combineHubProposals(b, a)
	if string(ab) != string(ba) {
		t.Error("combine is not commutative")
	}
}

func TestResolveQueries(t *testing.T) {
	for _, seq := range []bool{false, true} {
		err := comm.RunWorld(4, func(c comm.Comm) error {
			// lookup(x) = x*10 computed at owner x%4
			queries := []int{c.Rank(), 7, 0, 13, c.Rank() + 4}
			res, err := resolveQueries(c, queries, func(x int) int { return x % 4 }, func(x int) int { return x * 10 }, seq)
			if err != nil {
				return err
			}
			for i, x := range queries {
				if res[i] != x*10 {
					t.Errorf("seq=%v rank %d: res[%d] = %d, want %d", seq, c.Rank(), i, res[i], x*10)
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestResolveQueriesEmpty(t *testing.T) {
	err := comm.RunWorld(3, func(c comm.Comm) error {
		res, err := resolveQueries(c, nil, func(x int) int { return x % 3 }, func(x int) int { return x }, false)
		if err != nil {
			return err
		}
		if len(res) != 0 {
			t.Errorf("res = %v", res)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestOptionsDefaults(t *testing.T) {
	opt, err := Options{P: 4}.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	if opt.MinGain != 1e-6 || opt.MaxInnerIters != 100 || opt.DHigh != 4 {
		t.Errorf("defaults: %+v", opt)
	}
	if _, err := (Options{}).withDefaults(); err == nil {
		t.Error("expected error for P = 0")
	}
}

func TestRunRankMatchesRun(t *testing.T) {
	g, _, err := gen.LFR(gen.DefaultLFR(600, 0.25, 77))
	if err != nil {
		t.Fatal(err)
	}
	want, err := Run(g, Options{P: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Drive RunRank manually over an in-process world and assemble.
	pieces := make([]*RankResult, 3)
	err = comm.RunWorld(3, func(c comm.Comm) error {
		res, err := RunRank(c, g, Options{P: 3})
		if err != nil {
			return err
		}
		pieces[c.Rank()] = res
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	m := make(graph.Membership, g.NumVertices())
	for _, piece := range pieces {
		for i, u := range piece.Tracked {
			m[u] = piece.Labels[i]
		}
	}
	m.Normalize()
	if pieces[0].Modularity != want.Modularity {
		t.Errorf("RunRank Q = %v, Run Q = %v", pieces[0].Modularity, want.Modularity)
	}
	for i := range m {
		if m[i] != want.Membership[i] {
			t.Fatal("memberships differ between Run and RunRank")
		}
	}
}

func TestRunRankPMismatch(t *testing.T) {
	g, err := graph.FromEdges(4, []graph.Edge{{U: 0, V: 1, W: 1}})
	if err != nil {
		t.Fatal(err)
	}
	err = comm.RunWorld(2, func(c comm.Comm) error {
		_, err := RunRank(c, g, Options{P: 5})
		if err == nil {
			t.Error("expected P mismatch error")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGainAccumulator(t *testing.T) {
	acc := newGainAccumulator(10)
	acc.add(3, 1.5)
	acc.add(7, 2.0)
	acc.add(3, 0.5)
	if acc.w[3] != 2.0 || acc.w[7] != 2.0 {
		t.Errorf("weights: %v", acc.w)
	}
	keys := acc.sortedKeys()
	if len(keys) != 2 || keys[0] != 3 || keys[1] != 7 {
		t.Errorf("keys: %v", keys)
	}
	acc.reset()
	if acc.w[3] != 0 || len(acc.keys) != 0 {
		t.Error("reset incomplete")
	}
}

func TestAllowMoveSemantics(t *testing.T) {
	mk := func(h Heuristic) *stage {
		return &stage{opt: Options{Heuristic: h}, p: 4, rnk: 1}
	}
	// Enhanced: local targets (owner == rank 1) always allowed.
	s := mk(HeuristicEnhanced)
	if !s.allowMove(3, 5) { // 5 % 4 == 1 == rnk, local
		t.Error("enhanced should allow local move")
	}
	if s.allowMove(3, 6) { // remote (6%4=2), 6 > 3 → blocked
		t.Error("enhanced should block upward remote move")
	}
	if !s.allowMove(7, 6) { // remote but downward
		t.Error("enhanced should allow downward remote move")
	}
	// Strict: only downward anywhere.
	s = mk(HeuristicStrict)
	if s.allowMove(3, 5) {
		t.Error("strict should block upward move")
	}
	if !s.allowMove(5, 3) {
		t.Error("strict should allow downward move")
	}
	// Simple: anything goes.
	s = mk(HeuristicSimple)
	if !s.allowMove(3, 9) || !s.allowMove(9, 3) {
		t.Error("simple should allow all moves")
	}
}

func TestPickEnhancedPreferences(t *testing.T) {
	s := &stage{opt: Options{Heuristic: HeuristicEnhanced}, p: 4, rnk: 1,
		size: make([]int32, 20), cached: make([]bool, 20)}
	// candidates sorted ascending; 5 and 9 are local (≡1 mod 4), 6 remote.
	if got := s.pickEnhanced([]int{6, 9}); got != 9 {
		t.Errorf("local preference: got %d, want 9", got)
	}
	// no local: remote multi-member (size>1) preferred over smaller singleton
	s.cached[6] = true
	s.size[6] = 3
	s.cached[2] = true
	s.size[2] = 1
	if got := s.pickEnhanced([]int{2, 6}); got != 6 {
		t.Errorf("multi-member preference: got %d, want 6", got)
	}
	// only singletons: min label
	if got := s.pickEnhanced([]int{2, 10}); got != 2 {
		t.Errorf("singleton min label: got %d, want 2", got)
	}
}

func TestStageInvariantChecker(t *testing.T) {
	// The debug invariant checker must pass on a healthy run.
	debugInvariants = true
	defer func() { debugInvariants = false }()
	g, _, err := gen.LFR(gen.DefaultLFR(300, 0.25, 15))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(g, Options{P: 4})
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(res.Modularity) {
		t.Fatal("NaN modularity")
	}
}

func TestCommModelCost(t *testing.T) {
	m := CommModel{LatencyNS: 1000, BytesPerNS: 10}
	// 3 messages, 5000 bytes: 3*1000 + 5000/10 = 3500 ns.
	if got := m.costNS(3, 5000); got != 3500 {
		t.Errorf("costNS = %d, want 3500", got)
	}
	if got := m.costNS(0, 0); got != 0 {
		t.Errorf("costNS(0,0) = %d", got)
	}
}

func TestCommSimPopulated(t *testing.T) {
	g, _, err := gen.LFR(gen.DefaultLFR(400, 0.25, 81))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(g, Options{P: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stage1CommSim <= 0 {
		t.Error("Stage1CommSim not recorded")
	}
	// A slower fabric must cost more simulated comm time.
	slow, err := Run(g, Options{P: 4, Comm: CommModel{LatencyNS: 100000, BytesPerNS: 0.01}})
	if err != nil {
		t.Fatal(err)
	}
	if slow.Stage1CommSim <= res.Stage1CommSim {
		t.Errorf("slow fabric comm sim %v <= default %v", slow.Stage1CommSim, res.Stage1CommSim)
	}
	// Compute sim must be unaffected by the comm model.
	if slow.Stage1Sim != res.Stage1Sim {
		t.Errorf("comm model changed compute sim: %v vs %v", slow.Stage1Sim, res.Stage1Sim)
	}
}

func TestMergeConservesWeightAndModularity(t *testing.T) {
	// Drive one stage + merge directly over an in-process world and verify
	// the merged distributed graph conserves 2m and represents the same
	// partition quality.
	g, _, err := gen.LFR(gen.DefaultLFR(400, 0.25, 91))
	if err != nil {
		t.Fatal(err)
	}
	p := 4
	layout, err := partition.Build(g, partition.Options{P: p, Kind: partition.Delegate, DHigh: 40})
	if err != nil {
		t.Fatal(err)
	}
	qs := make([]float64, p)
	weights := make([]float64, p)
	counts := make([]int, p)
	opt, err := Options{P: p}.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	err = comm.RunWorld(p, func(c comm.Comm) error {
		st := newStage(c, layout.Parts[c.Rank()], opt)
		res, err := st.cluster()
		if err != nil {
			return err
		}
		newSG, k, err := st.merge()
		if err != nil {
			return err
		}
		qs[c.Rank()] = res.Q
		counts[c.Rank()] = k
		var local float64
		for _, wd := range newSG.OwnedWDeg {
			local += wd
		}
		weights[c.Rank()] = local
		// Every owned coarse vertex must be consistent with k.
		for _, v := range newSG.Owned {
			if v < 0 || v >= k {
				t.Errorf("rank %d owns out-of-range coarse vertex %d (k=%d)", c.Rank(), v, k)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	var totalW float64
	for _, w := range weights {
		totalW += w
	}
	if math.Abs(totalW-g.TotalWeight2()) > 1e-6 {
		t.Errorf("merged 2m = %g, want %g", totalW, g.TotalWeight2())
	}
	for r := 1; r < p; r++ {
		if counts[r] != counts[0] || qs[r] != qs[0] {
			t.Errorf("rank %d disagrees: k=%d q=%g vs k=%d q=%g", r, counts[r], qs[r], counts[0], qs[0])
		}
	}
	if counts[0] <= 1 || counts[0] >= g.NumVertices() {
		t.Errorf("merge produced %d communities from %d vertices", counts[0], g.NumVertices())
	}
}

// dumpCoarse renders every field of a coarse subgraph, with float weights
// as raw bits, so string equality is bit-level equality of the merge
// result (including the dense translation table the next level runs on).
func dumpCoarse(sg *partition.Subgraph, k int, dense []int32) string {
	var b strings.Builder
	fmt.Fprintf(&b, "k=%d rank=%d p=%d gv=%d\ndense=%v\n", k, sg.Rank, sg.P, sg.GlobalVertices, dense)
	for i, v := range sg.Owned {
		fmt.Fprintf(&b, "v%d wdeg=%016x", v, math.Float64bits(sg.OwnedWDeg[i]))
		for _, a := range sg.AdjOwned[i] {
			fmt.Fprintf(&b, " %d:%016x", a.To, math.Float64bits(a.W))
		}
		fmt.Fprintf(&b, " subs=%v\n", sg.Subscribers[v])
	}
	fmt.Fprintf(&b, "ghosts=%v\n", sg.Ghosts)
	return b.String()
}

// TestMergeMatchesSeedCrossMatrix runs the zero-map merge back-to-back with
// the retained seed implementation (merge_seed_test.go) on the same
// converged stage and demands byte-identical coarse subgraphs — weights
// compared as raw float bits — across the full configuration matrix:
// workers {1,4} x sequential/overlapped collectives x both partitionings x
// P {1,2,4}. For a fixed (partitioning, P) the coarse graph must also be
// identical across engines and worker counts, per the determinism regime.
func TestMergeMatchesSeedCrossMatrix(t *testing.T) {
	g, _, err := gen.LFR(gen.DefaultLFR(400, 0.25, 91))
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []partition.Kind{partition.Delegate, partition.OneD} {
		for _, p := range []int{1, 2, 4} {
			layout, err := partition.Build(g, partition.Options{P: p, Kind: kind, DHigh: 40})
			if err != nil {
				t.Fatal(err)
			}
			var want []string // per-rank dumps from the first engine config
			for _, seq := range []bool{false, true} {
				for _, workers := range []int{1, 4} {
					name := fmt.Sprintf("kind=%d/p=%d/seq=%v/w=%d", kind, p, seq, workers)
					opt, err := (Options{P: p, Workers: workers, DHigh: 40, Partitioning: kind, SequentialCollectives: seq}).withDefaults()
					if err != nil {
						t.Fatal(err)
					}
					dumps := make([]string, p)
					err = comm.RunWorld(p, func(c comm.Comm) error {
						st := newStage(c, layout.Parts[c.Rank()], opt)
						defer st.close()
						if _, err := st.cluster(); err != nil {
							return err
						}
						seedSG, seedK, err := st.mergeSeed()
						if err != nil {
							return err
						}
						seedDump := dumpCoarse(seedSG, seedK, st.dense)
						newSG, k, err := st.merge()
						if err != nil {
							return err
						}
						got := dumpCoarse(newSG, k, st.dense)
						if got != seedDump {
							t.Errorf("%s rank %d: merge() differs from seed:\nnew:\n%sseed:\n%s", name, c.Rank(), got, seedDump)
						}
						if !reflect.DeepEqual(newSG, seedSG) {
							t.Errorf("%s rank %d: DeepEqual mismatch between merge() and seed subgraphs", name, c.Rank())
						}
						dumps[c.Rank()] = got
						return nil
					})
					if err != nil {
						t.Fatalf("%s: %v", name, err)
					}
					if want == nil {
						want = dumps
					} else {
						for r := range dumps {
							if dumps[r] != want[r] {
								t.Errorf("%s rank %d: coarse graph differs from first engine config of this (kind, p)", name, r)
							}
						}
					}
				}
			}
		}
	}
}

// TestMergePreaggWireVolume is the wire-volume property test: over the
// same converged stage, the key-grouped frames of the new merge must ship
// no more collective payload bytes than the seed's one-record-per-arc
// frames — strictly fewer on a clustered graph at P=4 — while decoding to
// bit-identical totals. Snapshots of the process-global collective
// counters are taken by rank 0 between double barriers, so no rank can be
// inside either merge while a snapshot is read.
func TestMergePreaggWireVolume(t *testing.T) {
	g, _, err := gen.LFR(gen.DefaultLFR(400, 0.25, 93))
	if err != nil {
		t.Fatal(err)
	}
	p := 4
	layout, err := partition.Build(g, partition.Options{P: p, Kind: partition.Delegate, DHigh: 40})
	if err != nil {
		t.Fatal(err)
	}
	opt, err := (Options{P: p, DHigh: 40}).withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	trace.EnableCollectiveStats(true)
	defer trace.EnableCollectiveStats(false)
	var seedBytes, newBytes int64
	snap := func(c comm.Comm, into *trace.CollectiveStat) error {
		if err := comm.Barrier(c); err != nil {
			return err
		}
		if c.Rank() == 0 {
			*into = trace.CollectiveTotals()
		}
		return comm.Barrier(c)
	}
	err = comm.RunWorld(p, func(c comm.Comm) error {
		st := newStage(c, layout.Parts[c.Rank()], opt)
		defer st.close()
		if _, err := st.cluster(); err != nil {
			return err
		}
		var t0, t1, t2 trace.CollectiveStat
		if err := snap(c, &t0); err != nil {
			return err
		}
		seedSG, _, err := st.mergeSeed()
		if err != nil {
			return err
		}
		if err := snap(c, &t1); err != nil {
			return err
		}
		newSG, _, err := st.merge()
		if err != nil {
			return err
		}
		if err := snap(c, &t2); err != nil {
			return err
		}
		if !reflect.DeepEqual(seedSG.OwnedWDeg, newSG.OwnedWDeg) {
			t.Errorf("rank %d: decoded weighted degrees differ between seed and pre-aggregated merge", c.Rank())
		}
		if c.Rank() == 0 {
			seedBytes = t1.Bytes - t0.Bytes
			newBytes = t2.Bytes - t1.Bytes
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if newBytes <= 0 || seedBytes <= 0 {
		t.Fatalf("collective counters recorded nothing: seed=%d new=%d", seedBytes, newBytes)
	}
	if newBytes >= seedBytes {
		t.Errorf("pre-aggregated merge shipped %d bytes, seed shipped %d: want strictly fewer", newBytes, seedBytes)
	}
	t.Logf("merge wire volume: seed=%dB preagg=%dB (%.1f%% of seed)", seedBytes, newBytes, 100*float64(newBytes)/float64(seedBytes))
}

// TestMergeWideWorldSubscribers covers the p > 64 subscriber path, where
// the per-row destination bitmask no longer fits a uint64 and the merge
// falls back to the boolean-mark walk.
func TestMergeWideWorldSubscribers(t *testing.T) {
	if testing.Short() {
		t.Skip("65-rank world under -short")
	}
	g, _, err := gen.Caveman(40, 5)
	if err != nil {
		t.Fatal(err)
	}
	p := 65
	layout, err := partition.Build(g, partition.Options{P: p, Kind: partition.OneD})
	if err != nil {
		t.Fatal(err)
	}
	opt, err := (Options{P: p, Partitioning: partition.OneD}).withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	err = comm.RunWorld(p, func(c comm.Comm) error {
		st := newStage(c, layout.Parts[c.Rank()], opt)
		defer st.close()
		if _, err := st.cluster(); err != nil {
			return err
		}
		seedSG, seedK, err := st.mergeSeed()
		if err != nil {
			return err
		}
		seedDump := dumpCoarse(seedSG, seedK, st.dense)
		newSG, k, err := st.merge()
		if err != nil {
			return err
		}
		if got := dumpCoarse(newSG, k, st.dense); got != seedDump {
			t.Errorf("rank %d: wide-world merge differs from seed:\nnew:\n%sseed:\n%s", c.Rank(), got, seedDump)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
