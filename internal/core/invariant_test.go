package core

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"testing"
	"time"

	"repro/internal/comm"
	"repro/internal/graph"
	"repro/internal/partition"
)

// Property-style audits of the clustering loop's internal state: after
// every iteration, the distributed Σtot/size aggregates and the reduced
// global modularity must reconcile with ground truth recomputed serially
// from the authoritative labels — on clean transports and under benign
// chaos schedules alike.

// auditConfigs is the heuristic × partitioning matrix the audits sweep.
var auditConfigs = []struct {
	h  Heuristic
	pk partition.Kind
}{
	{HeuristicEnhanced, partition.Delegate},
	{HeuristicEnhanced, partition.OneD},
	{HeuristicSimple, partition.Delegate},
	{HeuristicSimple, partition.OneD},
	{HeuristicStrict, partition.Delegate},
	{HeuristicStrict, partition.OneD},
}

// aggregateAuditHook reconciles, on every rank after every iteration:
//
//  1. the owner-held Σtot/size of each community against values refolded
//     serially from the labels and per-vertex weighted degrees, and
//  2. the distributed modularity reduction against a serial recompute
//     from the same labels, Σin from a plain arc scan.
//
// The recompute deliberately bypasses the incremental delta pipeline
// (flushDeltas, caches) it audits; only the labels are shared.
func aggregateAuditHook(s *stage, iter int, q float64) error {
	totVec := make([]float64, s.n)
	sizeVec := make([]float64, s.n)
	var in float64
	for i, u := range s.sg.Owned {
		cu := s.comm[u]
		totVec[cu] += s.sg.OwnedWDeg[i]
		sizeVec[cu]++
		for _, a := range s.sg.AdjOwned[i] {
			if s.comm[a.To] == cu {
				in += a.W
			}
		}
	}
	for i, h := range s.sg.Hubs {
		ch := s.comm[h]
		if h%s.p == s.rnk {
			// The tracking rank accounts for the replicated hub exactly once.
			totVec[ch] += s.sg.HubWDeg[i]
			sizeVec[ch]++
		}
		// Hub adjacency is split across ranks: every rank scans its share.
		for _, a := range s.sg.AdjHub[i] {
			if s.comm[a.To] == ch {
				in += a.W
			}
		}
	}
	gTot, err := comm.AllreduceFloat64SliceSum(s.c, totVec)
	if err != nil {
		return err
	}
	gSize, err := comm.AllreduceFloat64SliceSum(s.c, sizeVec)
	if err != nil {
		return err
	}
	gIn, err := comm.AllreduceFloat64Sum(s.c, in)
	if err != nil {
		return err
	}
	tol := 1e-6 * math.Max(1, s.m2)
	for c := s.rnk; c < s.n; c += s.p {
		if math.Abs(gTot[c]-s.ownTot[c]) > tol {
			return fmt.Errorf("iter %d rank %d community %d: ownTot %g, ground truth %g",
				iter, s.rnk, c, s.ownTot[c], gTot[c])
		}
		if int32(math.Round(gSize[c])) != s.ownSize[c] {
			return fmt.Errorf("iter %d rank %d community %d: ownSize %d, ground truth %g",
				iter, s.rnk, c, s.ownSize[c], gSize[c])
		}
	}
	var totTerm float64
	for _, t := range gTot {
		x := t / s.m2
		totTerm += s.gamma * x * x
	}
	qSerial := gIn/s.m2 - totTerm
	if math.Abs(qSerial-q) > 1e-6 {
		return fmt.Errorf("iter %d rank %d: distributed Q %.12f, serial recompute %.12f",
			iter, s.rnk, q, qSerial)
	}
	return nil
}

func TestAggregateReconciliation(t *testing.T) {
	testIterHook = aggregateAuditHook
	defer func() { testIterHook = nil }()
	for _, cfg := range auditConfigs {
		for seed := int64(1); seed <= 3; seed++ {
			g, err := randomGraph(seed)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := Run(g, Options{P: 4, Heuristic: cfg.h, Partitioning: cfg.pk}); err != nil {
				t.Fatalf("h=%v part=%v seed=%d: %v", cfg.h, cfg.pk, seed, err)
			}
		}
	}
}

// benignCoreChaos mirrors the comm package's benign schedule: reordering
// delays, duplicates, and retried transient send failures — the faults
// that must not change any result.
func benignCoreChaos(seed int64) comm.ChaosOptions {
	return comm.ChaosOptions{
		Seed:         seed,
		DelayProb:    0.25,
		MaxDelay:     200 * time.Microsecond,
		DupProb:      0.15,
		SendFailProb: 0.1,
	}
}

func TestAggregateReconciliationUnderChaos(t *testing.T) {
	testIterHook = aggregateAuditHook
	defer func() { testIterHook = nil }()
	for _, cfg := range auditConfigs {
		g, err := randomGraph(11)
		if err != nil {
			t.Fatal(err)
		}
		err = comm.RunWorldChaos(4, benignCoreChaos(int64(cfg.h)*10+int64(cfg.pk)), func(c comm.Comm) error {
			_, err := RunRank(c, g, Options{P: 4, Heuristic: cfg.h, Partitioning: cfg.pk})
			return err
		})
		if err != nil {
			t.Fatalf("h=%v part=%v: %v", cfg.h, cfg.pk, err)
		}
	}
}

// TestStage1ModularityMonotone asserts the per-iteration global modularity
// of the first clustering stage never decreases under the enhanced and
// strict heuristics. HeuristicSimple is exempt by design: the paper's
// Figures 3-4 document its cross-rank label bouncing, which oscillates Q
// (the probe that motivated this exemption measured drops up to ~0.04);
// for it the trace must merely stay finite and within modularity bounds.
func TestStage1ModularityMonotone(t *testing.T) {
	for _, cfg := range auditConfigs {
		for seed := int64(1); seed <= 5; seed++ {
			g, err := randomGraph(seed)
			if err != nil {
				t.Fatal(err)
			}
			res, err := Run(g, Options{P: 4, Heuristic: cfg.h, Partitioning: cfg.pk, TrackTrace: true})
			if err != nil {
				t.Fatalf("h=%v part=%v seed=%d: %v", cfg.h, cfg.pk, seed, err)
			}
			tr := res.QTrace[:res.Stage1Iters]
			for i, q := range tr {
				if math.IsNaN(q) || q < -1 || q > 1 {
					t.Fatalf("h=%v part=%v seed=%d iter %d: Q=%v out of bounds", cfg.h, cfg.pk, seed, i+1, q)
				}
				if i > 0 && cfg.h != HeuristicSimple && q < tr[i-1]-1e-9 {
					t.Fatalf("h=%v part=%v seed=%d: Q decreased at iter %d: %.12f -> %.12f",
						cfg.h, cfg.pk, seed, i+1, tr[i-1], q)
				}
			}
		}
	}
}

// chaosRun executes a full distributed run over a chaos-wrapped in-process
// world and assembles the membership and final modularity, mirroring what
// Run reports.
func chaosRun(t *testing.T, g *graph.Graph, opt Options, co comm.ChaosOptions) (graph.Membership, float64) {
	t.Helper()
	var mu sync.Mutex
	m := make(graph.Membership, g.NumVertices())
	var finalQ float64
	err := comm.RunWorldChaos(opt.P, co, func(c comm.Comm) error {
		rr, err := RunRank(c, g, opt)
		if err != nil {
			return err
		}
		mu.Lock()
		defer mu.Unlock()
		for i, u := range rr.Tracked {
			m[u] = rr.Labels[i]
		}
		if c.Rank() == 0 {
			finalQ = rr.Modularity
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	m.Normalize()
	return m, finalQ
}

// TestChaosEndToEndDeterminism is the algorithm-level chaos guarantee:
// a full stage-1 + stage-2 Louvain run under message reordering, delays,
// duplicates, and retried transient failures produces exactly the final
// modularity and community assignment of a clean run — bit-identical, not
// approximately equal — because (src, tag) matching and per-pair FIFO
// fully determine every collective's result.
func TestChaosEndToEndDeterminism(t *testing.T) {
	for _, cfg := range auditConfigs {
		g, err := randomGraph(21)
		if err != nil {
			t.Fatal(err)
		}
		opt := Options{P: 4, Heuristic: cfg.h, Partitioning: cfg.pk}
		clean, err := Run(g, opt)
		if err != nil {
			t.Fatalf("h=%v part=%v clean: %v", cfg.h, cfg.pk, err)
		}
		for seed := int64(1); seed <= 3; seed++ {
			m, q := chaosRun(t, g, opt, benignCoreChaos(seed))
			if q != clean.Modularity {
				t.Fatalf("h=%v part=%v chaos seed %d: Q %.17g, clean %.17g",
					cfg.h, cfg.pk, seed, q, clean.Modularity)
			}
			if len(m) != len(clean.Membership) {
				t.Fatalf("h=%v part=%v chaos seed %d: membership size %d, clean %d",
					cfg.h, cfg.pk, seed, len(m), len(clean.Membership))
			}
			for u := range m {
				if m[u] != clean.Membership[u] {
					t.Fatalf("h=%v part=%v chaos seed %d: vertex %d in community %d, clean %d",
						cfg.h, cfg.pk, seed, u, m[u], clean.Membership[u])
				}
			}
		}
	}
}

// TestCommDeadlineOption checks the Options.CommDeadline plumbing: a rank
// that stops participating makes the others fail with comm.ErrTimeout (or
// the peer-down cascade) instead of hanging.
func TestCommDeadlineOption(t *testing.T) {
	g, err := randomGraph(5)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		done <- comm.RunWorld(4, func(c comm.Comm) error {
			if c.Rank() == 3 {
				return nil // desert the world before clustering starts
			}
			_, err := RunRank(c, g, Options{P: 4, CommDeadline: 200 * time.Millisecond})
			return err
		})
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("world succeeded with a deserted rank")
		}
		// Deserters are detected either by the transport (peer down) or by
		// the receive deadline; both are acceptable, hanging is not.
		if !errors.Is(err, comm.ErrPeerDown) && !errors.Is(err, comm.ErrTimeout) {
			t.Fatalf("untyped failure: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("world hung despite CommDeadline")
	}
}
