package core

import (
	"fmt"
	"math/bits"

	"repro/internal/comm"
	"repro/internal/partition"
	"repro/internal/wire"
)

// This file implements the paper's distributed graph merging (Algorithm 3)
// as a zero-map, pool-parallel pipeline: communities become the vertices of
// a coarser graph, arcs are translated to dense community IDs, combined
// locally, and shipped to the new owners (1D partitioning by new-ID mod P),
// and each rank assembles its portion of the merged graph with the same
// histogram → offsets → stable-scatter counting sort the ingest CSR builder
// uses (graph.FromEdgesParallel). Three properties are load-bearing:
//
//   - Pre-aggregation: duplicate (cu, cv) arc pairs are grouped per
//     destination before they hit the wire — each frame carries every
//     distinct cu once and every distinct cv once, delta-coded — so the
//     topology bytes shrink by the local duplication factor. The weights
//     themselves are NOT summed on the send side: each individual weight
//     ships inside its group, in first-encounter order (the two stable
//     counting passes preserve the translate order within each pair), and
//     the receiver folds them rank-major left-to-right — the exact
//     addition order of the seed's map accumulation, so the coarse graph
//     is byte-identical to the seed's on any weights, not merely when
//     additions are exact (see docs/PERFORMANCE.md for why summing before
//     the wire would reparenthesize the fold and drift the goldens).
//
//   - No maps: the seed's denseOf / adj / ghost / subscriber maps are
//     replaced by a strided owned-community table, flat record arrays, and
//     per-row bitmasks, all pooled in a mergeScratch that the session
//     threads through successive merge levels, so steady-state levels
//     reuse their storage.
//
//   - The collective schedule (one allgather + three all-to-alls, in that
//     order) is exactly the seed's; only the arc payload bytes differ.

// mergeHistChunks caps the per-chunk histogram count of the merge's
// counting passes: each chunk owns a keyspace-sized histogram row, so the
// cap bounds the scratch at mergeHistChunks × coarse-vertex-count entries
// per rank regardless of the pool's chunk limit.
const mergeHistChunks = 8

// mergeChunks returns the chunk count for the merge's record passes over m
// records: the pool's usual data-size rule, capped by mergeHistChunks.
func mergeChunks(m int) int {
	nc := numChunks(m)
	if nc > mergeHistChunks {
		nc = mergeHistChunks
	}
	return nc
}

// mergeScratch holds the merge pipeline's reusable arrays. The session
// threads one instance through its successive stages (st2.ms = cs.ms), so
// every merge level after the first reuses the grown storage; within one
// merge the record arrays double as send-side sort space and receive-side
// assembly space (the transports copy payloads on Send, so the send
// records are dead once the all-to-all returns).
type mergeScratch struct {
	dense    []int32      // community → dense coarse ID (s.dense aliases this)
	denseOwn []int32      // owned-community row c/p → dense ID, -1 = empty
	cnt      *wire.Buffer // dense-count allgather encode scratch

	// Record arrays: two (x, y, w) column sets ping-ponged by the stable
	// counting scatters. Column meaning is positional per pass (see merge).
	xA, yA []int32
	wA     []float64
	xB, yB []int32
	wB     []float64

	vtxOff    []int    // translate: per-local-vertex first-record offset
	hist      []int32  // per-chunk histograms / exclusive scatter positions
	dstOff    []int    // sender: per-destination record ranges (p+1)
	frameOff  []int    // receiver: per-source record ranges (p+1)
	frameBody [][]byte // receiver: frame payloads after the count header
	rowOff    []int    // receiver: per-owned-row record ranges
	arcOff    []int    // receiver: per-owned-row output arc offsets
	rowCnt    []int    // receiver: per-owned-row distinct arc count
	rowW      []float64
	subMask   []uint64 // per-owned-row subscriber rank bitmask (p ≤ 64)
	subMark   []bool   // subscriber dedup marks (p > 64 fallback)
}

// grow returns s resized to n entries, reusing the backing array when it
// already fits. Contents are unspecified — every merge pass overwrites its
// range before reading it.
func grow[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// merge implements Algorithm 3: dense numbering, dense-ID resolution, arc
// shipping with local pre-aggregation, and counting-sort assembly. After
// merge returns, s.dense holds the dense mapping for the communities this
// rank references, which the driver uses to re-point original vertices.
func (s *stage) merge() (*partition.Subgraph, int, error) {
	if s.ms == nil {
		s.ms = &mergeScratch{cnt: wire.NewBuffer(8)}
	}
	ms := s.ms

	// 1. Dense numbering of non-empty owned communities: count them, agree
	// on prefix offsets via an allgather, then assign consecutive IDs into
	// the strided denseOwn table (row c/p holds community c ≡ rnk mod p).
	rowsOwn := 0
	if s.n > s.rnk {
		rowsOwn = (s.n-s.rnk-1)/s.p + 1
	}
	ms.denseOwn = grow(ms.denseOwn, rowsOwn)
	nLocal := 0
	for c := s.rnk; c < s.n; c += s.p {
		if s.ownSize[c] > 0 {
			nLocal++
		}
	}
	ms.cnt.Reset()
	ms.cnt.PutUvarint(uint64(nLocal))
	counts, err := comm.Allgather(s.c, ms.cnt.Bytes())
	if err != nil {
		return nil, 0, err
	}
	base, total := 0, 0
	for r := 0; r < s.p; r++ {
		n := int(wire.NewReader(counts[r]).Uvarint())
		if r < s.rnk {
			base += n
		}
		total += n
	}
	id := int32(base)
	for c := s.rnk; c < s.n; c += s.p {
		if s.ownSize[c] > 0 {
			ms.denseOwn[c/s.p] = id
			id++
		} else {
			ms.denseOwn[c/s.p] = -1
		}
	}

	// 2. Every rank learns the dense ID of each community it references.
	// The exchange reuses the stage's pooled encode buffers (sendScratch).
	reqs := s.neededCommunities()
	out := s.sendScratch()
	for r := 0; r < s.p; r++ {
		b := s.sendBufs[r]
		b.PutInts(reqs[r])
		out[r] = b.Bytes()
	}
	in, err := s.alltoallv(out)
	if err != nil {
		return nil, 0, err
	}
	replies := s.sendScratch()
	for r := 0; r < s.p; r++ {
		rd := wire.NewReader(in[r])
		ids := rd.Ints()
		if err := rd.Err(); err != nil {
			return nil, 0, err
		}
		b := s.sendBufs[r]
		for _, c := range ids {
			d := int32(-1) // requested an empty or foreign community: must not happen for labels in use
			if c >= 0 && c < s.n && c%s.p == s.rnk {
				d = ms.denseOwn[c/s.p]
			}
			b.PutVarint(int64(d))
		}
		replies[r] = b.Bytes()
	}
	// Install dense IDs as each reply arrives: every community is in
	// exactly one request bucket, so the per-source writes are disjoint
	// and arrival order is immaterial. The dense table is pooled scratch
	// reused across merge levels, reset by a sized fill.
	if cap(ms.dense) >= s.n {
		s.dense = ms.dense[:s.n]
	} else {
		s.dense = make([]int32, s.n)
	}
	ms.dense = s.dense
	fillInt32(s.dense, -1)
	err = s.alltoallvFunc(replies, func(src int, payload []byte) error {
		rd := wire.NewReader(payload)
		for _, c := range reqs[src] {
			s.dense[c] = int32(rd.Varint())
		}
		return rd.Err()
	})
	if err != nil {
		return nil, 0, err
	}

	// 3. Translate every local arc to dense IDs, in the seed's ship order
	// (owned vertices in order, then hubs, adjacency order within each) —
	// the encounter order all duplicate combining below preserves. The
	// per-vertex record offsets make the pass embarrassingly parallel.
	sg := s.sg
	nOwned := len(sg.Owned)
	nv := nOwned + len(sg.Hubs)
	ms.vtxOff = grow(ms.vtxOff, nv+1)
	m := 0
	for i := 0; i < nOwned; i++ {
		ms.vtxOff[i] = m
		m += len(sg.AdjOwned[i])
	}
	for i := 0; i < len(sg.Hubs); i++ {
		ms.vtxOff[nOwned+i] = m
		m += len(sg.AdjHub[i])
	}
	ms.vtxOff[nv] = m
	ms.xA, ms.yA, ms.wA = grow(ms.xA, m), grow(ms.yA, m), grow(ms.wA, m)
	ms.xB, ms.yB, ms.wB = grow(ms.xB, m), grow(ms.yB, m), grow(ms.wB, m)
	tChunks := numChunks(nv)
	s.pool.parFor(tChunks, func(chunk, _ int) {
		lo, hi := chunkSpan(nv, tChunks, chunk)
		bad := int64(0)
		for i := lo; i < hi; i++ {
			var u int
			var adj []partition.Arc
			if i < nOwned {
				u, adj = sg.Owned[i], sg.AdjOwned[i]
			} else {
				u, adj = sg.Hubs[i-nOwned], sg.AdjHub[i-nOwned]
			}
			cu := s.dense[s.comm[u]]
			if cu < 0 {
				cu, bad = 0, bad+1
			}
			pos := ms.vtxOff[i]
			for _, a := range adj {
				cv := s.dense[s.comm[a.To]]
				if cv < 0 {
					cv, bad = 0, bad+1
				}
				ms.xA[pos] = cv // x = cv: pass-1 sort key
				ms.yA[pos] = cu
				ms.wA[pos] = a.W
				pos++
			}
		}
		s.chunkWork[chunk] = bad
	})
	for c := 0; c < tChunks; c++ {
		if s.chunkWork[c] != 0 {
			return nil, 0, fmt.Errorf("core: rank %d: merge: local vertex references an unmapped community", s.rnk)
		}
	}

	// 4. Two stable counting scatters bring the records into destination-
	// major (cu, cv)-sorted order: first by cv, then by the fused key
	// (cu mod p)·rowsCap + cu/p, whose major dimension is the destination
	// rank. Stability keeps equal (cu, cv) pairs in translate order.
	nc := mergeChunks(m)
	ks := total
	ms.hist = grow(ms.hist, nc*ks)
	s.pool.parFor(nc, func(chunk, _ int) {
		lo, hi := chunkSpan(m, nc, chunk)
		histCount(ms.xA, lo, hi, ms.hist[chunk*ks:(chunk+1)*ks])
	})
	histOffsets(ms.hist, nc, ks, 0, nil)
	s.pool.parFor(nc, func(chunk, _ int) {
		lo, hi := chunkSpan(m, nc, chunk)
		scatterRecords(ms.xA, ms.yA, ms.wA, lo, hi, ms.hist[chunk*ks:(chunk+1)*ks], ms.xB, ms.yB, ms.wB)
	})
	rowsCap := (total + s.p - 1) / s.p
	ks2 := s.p * rowsCap
	ms.hist = grow(ms.hist, nc*ks2)
	ms.dstOff = grow(ms.dstOff, s.p+1)
	p32, rc32 := int32(s.p), int32(rowsCap)
	s.pool.parFor(nc, func(chunk, _ int) {
		lo, hi := chunkSpan(m, nc, chunk)
		histCountFused(ms.yB, lo, hi, p32, rc32, ms.hist[chunk*ks2:(chunk+1)*ks2])
	})
	if rowsCap > 0 {
		histOffsets(ms.hist, nc, ks2, rowsCap, ms.dstOff[:s.p+1])
	} else {
		for i := range ms.dstOff {
			ms.dstOff[i] = 0
		}
	}
	s.pool.parFor(nc, func(chunk, _ int) {
		lo, hi := chunkSpan(m, nc, chunk)
		// Key on the cu column; the swap lands the output as (x=cu, y=cv).
		scatterFused(ms.yB, ms.xB, ms.wB, lo, hi, p32, rc32, ms.hist[chunk*ks2:(chunk+1)*ks2], ms.xA, ms.yA, ms.wA)
	})

	// 5. Encode one key-grouped frame per destination, in parallel (one
	// chunk per destination: each touches only its own rank's buffer).
	// Frame format: uvarint record count, then per-cu groups of [row
	// delta, distinct-cv count, (cv delta, weight count, f64 weights...)
	// ...] — deltas off a -1 predecessor, so they are strictly positive.
	// Every duplicate (cu, cv) pair costs one tag byte instead of a
	// repeated cu/cv varint pair; the weights ship unsummed, in translate
	// encounter order, so the receiver can reproduce the seed's exact
	// accumulation order.
	arcBufs := s.sendScratch()
	s.pool.parFor(s.p, func(d, _ int) {
		lo, hi := ms.dstOff[d], ms.dstOff[d+1]
		b := s.sendBufs[d]
		b.PutUvarint(uint64(hi - lo))
		prevRow := int32(-1)
		i := lo
		for i < hi {
			cu := ms.xA[i]
			j := i
			for j < hi && ms.xA[j] == cu {
				j++
			}
			row := cu / p32
			b.PutUvarint(uint64(row - prevRow))
			distinct := 0
			for k := i; k < j; k++ {
				if k == i || ms.yA[k] != ms.yA[k-1] {
					distinct++
				}
			}
			b.PutUvarint(uint64(distinct))
			prevCv := int32(-1)
			for k := i; k < j; {
				cv := ms.yA[k]
				l := k
				for l < j && ms.yA[l] == cv {
					l++
				}
				b.PutUvarint(uint64(cv - prevCv))
				b.PutUvarint(uint64(l - k))
				for ; k < l; k++ {
					b.PutF64(ms.wA[k])
				}
				prevCv = cv
			}
			prevRow = row
			i = j
		}
		arcBufs[d] = b.Bytes()
	})
	arcIn, err := s.alltoallv(arcBufs)
	if err != nil {
		return nil, 0, err
	}

	// 6. Size the receive regions from the frame headers — rank-ordered,
	// so the concatenated record array preserves rank order for duplicate
	// (row, cv) pairs through the stable passes below — then decode the
	// frame bodies in parallel into disjoint regions.
	ms.frameOff = grow(ms.frameOff, s.p+1)
	ms.frameBody = grow(ms.frameBody, s.p)
	mr := 0
	for r := 0; r < s.p; r++ {
		ms.frameOff[r] = mr
		var rd wire.Reader
		rd.Reset(arcIn[r])
		n := int(rd.Uvarint())
		if err := rd.Err(); err != nil {
			return nil, 0, err
		}
		if n < 0 || n > len(arcIn[r]) {
			return nil, 0, fmt.Errorf("core: rank %d: merge: malformed arc frame from rank %d", s.rnk, r)
		}
		ms.frameBody[r] = arcIn[r][len(arcIn[r])-rd.Remaining():]
		mr += n
	}
	ms.frameOff[s.p] = mr
	ms.xA, ms.yA, ms.wA = grow(ms.xA, mr), grow(ms.yA, mr), grow(ms.wA, mr)
	ms.xB, ms.yB, ms.wB = grow(ms.xB, mr), grow(ms.yB, mr), grow(ms.wB, mr)
	rowsLocal := 0
	if total > s.rnk {
		rowsLocal = (total-s.rnk-1)/s.p + 1
	}
	rl32, t32 := int32(rowsLocal), int32(total)
	s.pool.parFor(s.p, func(r, _ int) {
		var rd wire.Reader
		rd.Reset(ms.frameBody[r])
		pos, end := ms.frameOff[r], ms.frameOff[r+1]
		prevRow := int32(-1)
		for pos < end {
			row := prevRow + int32(rd.Uvarint())
			ncv := int(rd.Uvarint())
			if rd.Err() != nil || row <= prevRow || row >= rl32 || ncv <= 0 || ncv > end-pos {
				s.chunkWork[r] = -1
				return
			}
			prevCv := int32(-1)
			for j := 0; j < ncv; j++ {
				cv := prevCv + int32(rd.Uvarint())
				nw := int(rd.Uvarint())
				if rd.Err() != nil || cv <= prevCv || cv >= t32 || nw <= 0 || nw > end-pos {
					s.chunkWork[r] = -1
					return
				}
				for k := 0; k < nw; k++ {
					ms.xA[pos] = cv // x = cv: pass-1 sort key
					ms.yA[pos] = row
					ms.wA[pos] = rd.F64()
					pos++
				}
				prevCv = cv
			}
			prevRow = row
		}
		if rd.Err() != nil || rd.Remaining() != 0 {
			s.chunkWork[r] = -1
			return
		}
		s.chunkWork[r] = 0
	})
	for r := 0; r < s.p; r++ {
		if s.chunkWork[r] != 0 {
			return nil, 0, fmt.Errorf("core: rank %d: merge: malformed arc frame from rank %d", s.rnk, r)
		}
	}

	// 7. Counting-sort assembly: stable scatter by cv, then by owned row.
	// After both passes the records are row-major with ascending cv inside
	// each row and rank order inside each (row, cv) — exactly the order the
	// seed accumulated and emitted them in.
	ncr := mergeChunks(mr)
	ms.hist = grow(ms.hist, ncr*ks)
	s.pool.parFor(ncr, func(chunk, _ int) {
		lo, hi := chunkSpan(mr, ncr, chunk)
		histCount(ms.xA, lo, hi, ms.hist[chunk*ks:(chunk+1)*ks])
	})
	histOffsets(ms.hist, ncr, ks, 0, nil)
	s.pool.parFor(ncr, func(chunk, _ int) {
		lo, hi := chunkSpan(mr, ncr, chunk)
		scatterRecords(ms.xA, ms.yA, ms.wA, lo, hi, ms.hist[chunk*ks:(chunk+1)*ks], ms.xB, ms.yB, ms.wB)
	})
	// Ghosts drop out of the cv-sorted intermediate: one serial walk over
	// the distinct cv values, ascending — the seed's sorted ghost set.
	nGhost := 0
	prev := int32(-1)
	for i := 0; i < mr; i++ {
		if cv := ms.xB[i]; cv != prev {
			prev = cv
			if int(cv)%s.p != s.rnk {
				nGhost++
			}
		}
	}
	ghosts := make([]int, 0, nGhost)
	prev = -1
	for i := 0; i < mr; i++ {
		if cv := ms.xB[i]; cv != prev {
			prev = cv
			if int(cv)%s.p != s.rnk {
				ghosts = append(ghosts, int(cv))
			}
		}
	}
	ms.rowOff = grow(ms.rowOff, rowsLocal+1)
	ms.hist = grow(ms.hist, ncr*rowsLocal)
	s.pool.parFor(ncr, func(chunk, _ int) {
		lo, hi := chunkSpan(mr, ncr, chunk)
		histCount(ms.yB, lo, hi, ms.hist[chunk*rowsLocal:(chunk+1)*rowsLocal])
	})
	if rowsLocal > 0 {
		histOffsets(ms.hist, ncr, rowsLocal, 1, ms.rowOff[:rowsLocal+1])
	} else {
		ms.rowOff[0] = 0
	}
	s.pool.parFor(ncr, func(chunk, _ int) {
		lo, hi := chunkSpan(mr, ncr, chunk)
		// Key on the row column; the swap lands the output as (x=row, y=cv).
		scatterRecords(ms.yB, ms.xB, ms.wB, lo, hi, ms.hist[chunk*rowsLocal:(chunk+1)*rowsLocal], ms.xA, ms.yA, ms.wA)
	})

	// 8. Combine duplicate (row, cv) runs in place — partial sums fold in
	// rank order, weighted degrees in ascending-cv order, both matching the
	// seed — and record per-row counts, degrees, and subscriber masks.
	// Rows are wholly contained in their chunk, so the in-place compaction
	// and the per-row outputs are disjoint across chunks.
	ms.rowCnt = grow(ms.rowCnt, rowsLocal)
	ms.rowW = grow(ms.rowW, rowsLocal)
	ms.subMask = grow(ms.subMask, rowsLocal)
	rChunks := numChunks(rowsLocal)
	s.pool.parFor(rChunks, func(chunk, _ int) {
		lo, hi := chunkSpan(rowsLocal, rChunks, chunk)
		for row := lo; row < hi; row++ {
			b, e := ms.rowOff[row], ms.rowOff[row+1]
			outPos := b
			var wdeg float64
			var mask uint64
			for i := b; i < e; {
				cv := ms.yA[i]
				var w float64
				for i < e && ms.yA[i] == cv {
					w += ms.wA[i]
					i++
				}
				ms.yA[outPos] = cv
				ms.wA[outPos] = w
				outPos++
				wdeg += w
				if d := int(cv) % s.p; d != s.rnk && s.p <= 64 {
					mask |= 1 << uint(d)
				}
			}
			ms.rowCnt[row] = outPos - b
			ms.rowW[row] = wdeg
			ms.subMask[row] = mask
		}
	})

	// 9. Build the coarse subgraph: one flat arc array carved into per-row
	// windows (exclusive prefix over the combined counts), filled in
	// parallel by row chunk.
	ms.arcOff = grow(ms.arcOff, rowsLocal+1)
	atot := 0
	for row := 0; row < rowsLocal; row++ {
		ms.arcOff[row] = atot
		atot += ms.rowCnt[row]
	}
	ms.arcOff[rowsLocal] = atot
	ns := &partition.Subgraph{
		Rank: s.rnk, P: s.p,
		GlobalVertices: total,
		Subscribers:    make(map[int][]int),
		TotalWeight2:   s.m2,
		Ghosts:         ghosts,
	}
	if rowsLocal > 0 {
		ns.Owned = make([]int, rowsLocal)
		ns.AdjOwned = make([][]partition.Arc, rowsLocal)
		ns.OwnedWDeg = make([]float64, rowsLocal)
		flat := make([]partition.Arc, atot)
		s.pool.parFor(rChunks, func(chunk, _ int) {
			lo, hi := chunkSpan(rowsLocal, rChunks, chunk)
			for row := lo; row < hi; row++ {
				b := ms.rowOff[row]
				o, cnt := ms.arcOff[row], ms.rowCnt[row]
				seg := flat[o : o+cnt : o+cnt]
				for j := 0; j < cnt; j++ {
					seg[j] = partition.Arc{To: int(ms.yA[b+j]), W: ms.wA[b+j]}
				}
				ns.Owned[row] = s.rnk + row*s.p
				ns.AdjOwned[row] = seg
				ns.OwnedWDeg[row] = ms.rowW[row]
			}
		})
	}
	if s.p <= 64 {
		for row := 0; row < rowsLocal; row++ {
			mask := ms.subMask[row]
			if mask == 0 {
				continue
			}
			subs := make([]int, 0, bits.OnesCount64(mask))
			for d := 0; d < s.p; d++ {
				if mask&(1<<uint(d)) != 0 {
					subs = append(subs, d)
				}
			}
			ns.Subscribers[s.rnk+row*s.p] = subs
		}
	} else {
		// Wide worlds overflow the 64-bit mask: dedup subscriber ranks per
		// row against a marks array instead (serial, O(arcs + rows·p)).
		ms.subMark = grow(ms.subMark, s.p)
		for i := range ms.subMark {
			ms.subMark[i] = false
		}
		for row := 0; row < rowsLocal; row++ {
			cnt := 0
			for _, a := range ns.AdjOwned[row] {
				if d := a.To % s.p; d != s.rnk && !ms.subMark[d] {
					ms.subMark[d] = true
					cnt++
				}
			}
			if cnt == 0 {
				continue
			}
			subs := make([]int, 0, cnt)
			for d := 0; d < s.p; d++ {
				if ms.subMark[d] {
					subs = append(subs, d)
					ms.subMark[d] = false
				}
			}
			ns.Subscribers[s.rnk+row*s.p] = subs
		}
	}
	return ns, total, nil
}

// fillInt32 sets every entry of s to v (the sized-fill reset of the pooled
// dense table).
//
//perf:noalloc
func fillInt32(s []int32, v int32) {
	for i := range s {
		s[i] = v
	}
}

// histCount zeroes h and counts keys[lo:hi] into it (one histogram row per
// chunk; the caller passes this chunk's row).
//
//perf:noalloc
func histCount(keys []int32, lo, hi int, h []int32) {
	for i := range h {
		h[i] = 0
	}
	for i := lo; i < hi; i++ {
		h[keys[i]]++
	}
}

// histCountFused is histCount keyed by (k mod p)·rowsCap + k/p — the
// destination-major fused key of the sender's second pass.
//
//perf:noalloc
func histCountFused(keys []int32, lo, hi int, p, rowsCap int32, h []int32) {
	for i := range h {
		h[i] = 0
	}
	for i := lo; i < hi; i++ {
		k := keys[i]
		h[(k%p)*rowsCap+k/p]++
	}
}

// histOffsets converts the per-chunk key counts in h (nc rows of ks keys)
// into exclusive scatter positions, chunk-major within each key so the
// scatter is stable, and returns the total count. When stride > 0 it also
// captures the running total at every stride-th key into bounds (bounds[j]
// = first position of key j·stride) and fills the tail with the total —
// the per-group ranges the callers slice records by.
//
//perf:noalloc
func histOffsets(h []int32, nc, ks, stride int, bounds []int) int {
	sum := 0
	bi := 0
	for k := 0; k < ks; k++ {
		if stride > 0 && k%stride == 0 {
			bounds[bi] = sum
			bi++
		}
		for c := 0; c < nc; c++ {
			i := c*ks + k
			v := int(h[i])
			h[i] = int32(sum)
			sum += v
		}
	}
	if stride > 0 {
		for ; bi < len(bounds); bi++ {
			bounds[bi] = sum
		}
	}
	return sum
}

// scatterRecords stably scatters records [lo:hi) keyed by their x column to
// the positions in h (this chunk's row, prepared by histOffsets), carrying
// the y and w columns along.
//
//perf:noalloc
func scatterRecords(x, y []int32, w []float64, lo, hi int, h []int32, ox, oy []int32, ow []float64) {
	for i := lo; i < hi; i++ {
		k := x[i]
		pos := h[k]
		h[k] = pos + 1
		ox[pos] = k
		oy[pos] = y[i]
		ow[pos] = w[i]
	}
}

// scatterFused is scatterRecords keyed by the destination-major fused key
// of the x column (matching histCountFused).
//
//perf:noalloc
func scatterFused(x, y []int32, w []float64, lo, hi int, p, rowsCap int32, h []int32, ox, oy []int32, ow []float64) {
	for i := lo; i < hi; i++ {
		cu := x[i]
		k := (cu%p)*rowsCap + cu/p
		pos := h[k]
		h[k] = pos + 1
		ox[pos] = cu
		oy[pos] = y[i]
		ow[pos] = w[i]
	}
}

// resolveQueries is the stage-scratch form of the package-level
// resolveQueries below: identical wire bytes and collective schedule, but
// the request routing slices and both legs' encode buffers are pooled on
// the stage, so repeated calls (one per merge level, one per update batch)
// allocate only the result slice.
func (s *stage) resolveQueries(queries []int, route, lookup func(int) int) ([]int, error) {
	for r := 0; r < s.p; r++ {
		s.rqReqs[r] = s.rqReqs[r][:0]
		s.rqPos[r] = s.rqPos[r][:0]
	}
	for i, x := range queries {
		o := route(x)
		s.rqReqs[o] = append(s.rqReqs[o], x)
		s.rqPos[o] = append(s.rqPos[o], i)
	}
	out := s.sendScratch()
	for r := 0; r < s.p; r++ {
		b := s.sendBufs[r]
		b.PutInts(s.rqReqs[r])
		out[r] = b.Bytes()
	}
	// Replies stream into their own buffer set: the request frames in
	// sendBufs must stay intact while the first leg is still in flight.
	for r := 0; r < s.p; r++ {
		s.rqBufs[r].Reset()
		s.rqFrames[r] = nil
	}
	err := a2aFunc(s.c, s.opt.SequentialCollectives, out, func(src int, payload []byte) error {
		rd := wire.NewReader(payload)
		ids := rd.Ints()
		if err := rd.Err(); err != nil {
			return err
		}
		b := s.rqBufs[src]
		for _, x := range ids {
			b.PutVarint(int64(lookup(x)))
		}
		s.rqFrames[src] = b.Bytes()
		return nil
	})
	if err != nil {
		return nil, err
	}
	res := make([]int, len(queries))
	err = a2aFunc(s.c, s.opt.SequentialCollectives, s.rqFrames, func(src int, payload []byte) error {
		rd := wire.NewReader(payload)
		for _, i := range s.rqPos[src] {
			res[i] = int(rd.Varint())
		}
		return rd.Err()
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// resolveQueries maps each query x to lookup(x) evaluated on the rank
// route(x) that currently owns x (the stage's ownerOf — static x mod P
// until a migration builds the directory), via a request/reply all-to-all
// exchange. Both legs
// stream: each request frame is answered as it arrives (the reply for
// source r depends only on r's frame), and each reply is scattered into
// the result as it lands (pos buckets are disjoint), so seq=false overlaps
// all decode/encode work with in-flight traffic; seq=true is the
// sequential baseline (Options.SequentialCollectives).
//
// The solve loop and the update path go through the stage method above;
// this standalone form serves callers without a live stage (Session.install
// runs once per solve, before the resident stage exists).
func resolveQueries(c comm.Comm, queries []int, route, lookup func(int) int, seq bool) ([]int, error) {
	p := c.Size()
	reqs := make([][]int, p)
	pos := make([][]int, p) // original index of each routed query
	for i, x := range queries {
		o := route(x)
		reqs[o] = append(reqs[o], x)
		pos[o] = append(pos[o], i)
	}
	out := make([][]byte, p)
	for r := 0; r < p; r++ {
		b := wire.NewBuffer(0)
		b.PutInts(reqs[r])
		out[r] = b.Bytes()
	}
	replies := make([][]byte, p)
	err := a2aFunc(c, seq, out, func(src int, payload []byte) error {
		rd := wire.NewReader(payload)
		ids := rd.Ints()
		if err := rd.Err(); err != nil {
			return err
		}
		b := wire.NewBuffer(0)
		for _, x := range ids {
			b.PutVarint(int64(lookup(x)))
		}
		replies[src] = b.Bytes()
		return nil
	})
	if err != nil {
		return nil, err
	}
	res := make([]int, len(queries))
	err = a2aFunc(c, seq, replies, func(src int, payload []byte) error {
		rd := wire.NewReader(payload)
		for _, i := range pos[src] {
			res[i] = int(rd.Varint())
		}
		return rd.Err()
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}
