package core

import (
	"sort"

	"repro/internal/comm"
	"repro/internal/partition"
	"repro/internal/wire"
)

// mergeSeed is the seed-era merge implementation, kept verbatim as the
// equivalence oracle and benchmark baseline for the zero-map pipeline in
// merge.go: serial, map-of-maps accumulation, one sort.Ints per coarse
// vertex, no local combining before the wire. It issues the identical
// collective sequence (allgather + three all-to-alls), so tests run it
// back-to-back with merge() on every rank. It must not share scratch with
// the new path beyond sendScratch (which both reset before use); it writes
// s.dense exactly like merge() does.
func (s *stage) mergeSeed() (*partition.Subgraph, int, error) {
	// 1. Dense numbering of non-empty owned communities.
	var localComms []int
	for c := s.rnk; c < s.n; c += s.p {
		if s.ownSize[c] > 0 {
			localComms = append(localComms, c)
		}
	}
	cntBuf := wire.NewBuffer(8)
	cntBuf.PutUvarint(uint64(len(localComms)))
	counts, err := comm.Allgather(s.c, cntBuf.Bytes())
	if err != nil {
		return nil, 0, err
	}
	base, total := 0, 0
	for r := 0; r < s.p; r++ {
		n := int(wire.NewReader(counts[r]).Uvarint())
		if r < s.rnk {
			base += n
		}
		total += n
	}
	denseOf := make(map[int]int32, len(localComms))
	for i, c := range localComms {
		denseOf[c] = int32(base + i)
	}

	// 2. Every rank learns the dense ID of each community it references.
	reqs := s.neededCommunities()
	out := s.sendScratch()
	for r := 0; r < s.p; r++ {
		b := s.sendBufs[r]
		b.PutInts(reqs[r])
		out[r] = b.Bytes()
	}
	in, err := s.alltoallv(out)
	if err != nil {
		return nil, 0, err
	}
	replies := s.sendScratch()
	for r := 0; r < s.p; r++ {
		rd := wire.NewReader(in[r])
		ids := rd.Ints()
		if err := rd.Err(); err != nil {
			return nil, 0, err
		}
		b := s.sendBufs[r]
		for _, c := range ids {
			d, ok := denseOf[c]
			if !ok {
				d = -1
			}
			b.PutVarint(int64(d))
		}
		replies[r] = b.Bytes()
	}
	s.dense = make([]int32, s.n)
	for i := range s.dense {
		s.dense[i] = -1
	}
	err = s.alltoallvFunc(replies, func(src int, payload []byte) error {
		rd := wire.NewReader(payload)
		for _, c := range reqs[src] {
			s.dense[c] = int32(rd.Varint())
		}
		return rd.Err()
	})
	if err != nil {
		return nil, 0, err
	}

	// 3. Translate and ship arcs to the owners of their new source vertex.
	arcBufs := s.sendScratch()
	ship := func(u int, adj []partition.Arc) {
		cu := int(s.dense[s.comm[u]])
		dst := cu % s.p
		for _, a := range adj {
			cv := int(s.dense[s.comm[a.To]])
			s.sendBufs[dst].PutVarint(int64(cu))
			s.sendBufs[dst].PutVarint(int64(cv))
			s.sendBufs[dst].PutF64(a.W)
		}
	}
	for i, u := range s.sg.Owned {
		ship(u, s.sg.AdjOwned[i])
	}
	for i, h := range s.sg.Hubs {
		ship(h, s.sg.AdjHub[i])
	}
	for r := 0; r < s.p; r++ {
		arcBufs[r] = s.sendBufs[r].Bytes()
	}
	arcIn, err := s.alltoallv(arcBufs)
	if err != nil {
		return nil, 0, err
	}

	// 4. Assemble this rank's portion of the merged graph, decoding the
	// frames in rank order for run-to-run bit identity.
	adj := make(map[int]map[int]float64)
	for r := 0; r < s.p; r++ {
		rd := wire.NewReader(arcIn[r])
		for rd.Remaining() > 0 {
			cu := int(rd.Varint())
			cv := int(rd.Varint())
			w := rd.F64()
			m := adj[cu]
			if m == nil {
				m = make(map[int]float64)
				adj[cu] = m
			}
			m[cv] += w
		}
		if err := rd.Err(); err != nil {
			return nil, 0, err
		}
	}
	ns := &partition.Subgraph{
		Rank: s.rnk, P: s.p,
		GlobalVertices: total,
		Subscribers:    make(map[int][]int),
		TotalWeight2:   s.m2,
	}
	ghostSet := make(map[int]struct{})
	for v := s.rnk; v < total; v += s.p {
		ns.Owned = append(ns.Owned, v)
		targets := adj[v]
		keys := make([]int, 0, len(targets))
		for t := range targets {
			keys = append(keys, t)
		}
		sort.Ints(keys)
		arcs := make([]partition.Arc, len(keys))
		var wdeg float64
		subSet := make(map[int]struct{})
		for i, t := range keys {
			arcs[i] = partition.Arc{To: t, W: targets[t]}
			wdeg += targets[t]
			to := t % s.p
			if to != s.rnk {
				ghostSet[t] = struct{}{}
				subSet[to] = struct{}{}
			}
		}
		ns.AdjOwned = append(ns.AdjOwned, arcs)
		ns.OwnedWDeg = append(ns.OwnedWDeg, wdeg)
		if len(subSet) > 0 {
			subs := make([]int, 0, len(subSet))
			for r := range subSet {
				subs = append(subs, r)
			}
			sort.Ints(subs)
			ns.Subscribers[v] = subs
		}
	}
	ns.Ghosts = make([]int, 0, len(ghostSet))
	for v := range ghostSet {
		ns.Ghosts = append(ns.Ghosts, v)
	}
	sort.Ints(ns.Ghosts)
	return ns, total, nil
}
