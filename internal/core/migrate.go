package core

import (
	"fmt"
	"sort"

	"repro/internal/comm"
	"repro/internal/partition"
	"repro/internal/rebalance"
	"repro/internal/trace"
	"repro/internal/wire"
)

// Mid-solve vertex migration (docs/PERFORMANCE.md, "Dynamic load
// rebalancing"). The paper partitions once, statically; Louvain convergence
// is skewed, so the balance point drifts during the solve. When the
// per-iteration work ratio across ranks stays above Options.RebalanceRatio,
// the ranks move owned low-degree vertices from hot ranks to cold ones
// between iterations.
//
// Everything here is driven by replicated state: the fused per-iteration
// reduction hands every rank the full work vector, the policy's Plan is a
// pure function of (work, seed), and the migrant announcements are
// allgathered — so all ranks execute the identical migration schedule with
// no agreement collective, and any fixed (policy, seed) pair is
// bit-identical across worker counts and transports.
//
// Invariants the protocol preserves:
//   - Only vertices migrate. Community c is owned by rank c mod p forever;
//     the authoritative Σtot/size tables, the delta routing, and the
//     community-info fetch are untouched.
//   - Hubs never migrate: their state is replicated everywhere already, and
//     moving a hub would change nothing but bookkeeping.
//   - A donor keeps each migrated vertex as a ghost and stays subscribed to
//     it, so any rank still routing a label query to the original owner
//     reads a live value. Subscriptions are never cancelled — a stale
//     subscriber costs one redundant ghost update per label change, never
//     correctness.

// ownerOf returns the rank currently owning vertex v. Before the first
// migration the directory is nil and ownership is the static v mod p of the
// partitioner; afterwards the replicated directory is authoritative.
func (s *stage) ownerOf(v int) int {
	if s.owner != nil {
		return int(s.owner[v])
	}
	return v % s.p
}

// ensureMigratable prepares the stage for ownership mutation: it detaches
// the rank's Subgraph from the driver-shared Layout (CloneForMigration) and
// materializes the ownership directory. Called on every rank of the world
// on the first migration event of the stage.
func (s *stage) ensureMigratable() {
	if s.owner != nil {
		return
	}
	s.owner = make([]int32, s.n)
	for v := range s.owner {
		s.owner[v] = int32(v % s.p)
	}
	s.sg = s.sg.CloneForMigration()
}

// workStats returns the max and sum of the replicated work vector.
func (s *stage) workStats() (max, sum int64) {
	for _, w := range s.workVec {
		sum += w
		if w > max {
			max = w
		}
	}
	return max, sum
}

// maybeRebalance runs at the top of each clustering iteration (from the
// second on) against the previous iteration's replicated work vector. It
// fires a migration when the work ratio max/mean has been at or above
// Options.RebalanceRatio for RebalanceHysteresis consecutive iterations and
// at least RebalanceCooldown iterations have passed since the last event.
// Every input is replicated, so all ranks take the same branch everywhere.
func (s *stage) maybeRebalance(iter int) error {
	max, sum := s.workStats()
	if sum <= 0 {
		return nil
	}
	ratio := float64(max) * float64(s.p) / float64(sum)
	if ratio < s.opt.RebalanceRatio {
		s.reb.over = 0
		return nil
	}
	s.reb.over++
	if s.reb.over < s.opt.RebalanceHysteresis || iter-s.reb.lastIter < s.opt.RebalanceCooldown {
		return nil
	}
	moves := s.pol.Plan(s.workVec, s.opt.RebalanceSeed)
	if len(moves) == 0 {
		// The policy declined (e.g. "none", or nothing to level): re-arm
		// the hysteresis so the trigger is not re-evaluated every iteration.
		s.reb.over = 0
		return nil
	}
	s.reb.over = 0
	s.reb.lastIter = iter
	return s.migrate(iter, moves)
}

// migrantWeight is the work-unit weight of an owned vertex in migration
// planning: the same arcs+constant count the sweep charges per owned vertex,
// so plan units and measured work speak the same currency.
func migrantWeight(adj []partition.Arc) int64 { return int64(len(adj)) + 4 }

// selectMigrants translates this rank's side of the plan into concrete
// vertices: for each move donated by this rank, the heaviest owned vertices
// are taken (weight descending, vertex ID ascending) while they do not
// overshoot the remaining quota by more than 2× — the hot rank's overload is
// usually a handful of heavy vertices, and shipping one slightly-too-big
// vertex still improves the balance. The selection reads only the donor's
// deterministic subgraph state, so it is reproducible across worker counts
// and transports.
func (s *stage) selectMigrants(moves []rebalance.Move) []migrant {
	type cand struct {
		v int
		w int64
	}
	var cands []cand
	for i, v := range s.sg.Owned {
		cands = append(cands, cand{v: v, w: migrantWeight(s.sg.AdjOwned[i])})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].w != cands[j].w {
			return cands[i].w > cands[j].w
		}
		return cands[i].v < cands[j].v
	})
	taken := make(map[int]bool)
	var out []migrant
	for _, mv := range moves {
		if mv.From != s.rnk {
			continue
		}
		remaining := mv.Units
		for _, cd := range cands {
			if remaining <= 0 {
				break
			}
			if taken[cd.v] || cd.w >= 2*remaining {
				continue
			}
			taken[cd.v] = true
			out = append(out, migrant{v: cd.v, to: mv.To})
			remaining -= cd.w
		}
	}
	return out
}

// migrant is one planned vertex transfer out of this rank.
type migrant struct {
	v  int
	to int
}

// migExchange dispatches the migration all-to-all between the overlapped
// collective and the sequential baseline, mirroring a2aFunc. The sequential
// fallback calls fn in rank order; the overlapped path streams arrivals, so
// fn must be order-independent (both callers below buffer per source or
// write disjoint state).
func (s *stage) migExchange(out [][]byte, fn func(src int, payload []byte) error) error {
	if !s.opt.SequentialCollectives {
		return comm.MigrationExchange(s.c, out, fn)
	}
	in, err := comm.MigrationExchangeSeq(s.c, out)
	if err != nil {
		return err
	}
	for r := 0; r < s.p; r++ {
		if err := fn(r, in[r]); err != nil {
			return err
		}
	}
	return nil
}

// inboundMigrant is one decoded vertex arrival, buffered so application can
// run in sorted vertex order regardless of frame arrival order.
type inboundMigrant struct {
	v     int
	label int32
	wdeg  float64
	adj   []partition.Arc
	subs  []int
}

// migrate executes one migration event. Four globally ordered rounds:
//
//  1. Announce: every rank allgathers its (vertex, destination) pairs; all
//     ranks update the replicated ownership directory identically.
//  2. Payload: donors ship each migrant's label, weighted degree, adjacency,
//     and subscriber list to its new owner. Receivers buffer, then apply in
//     two phases — first insert every migrant (so co-migrating neighbors
//     see each other), then scan the new adjacency for unknown vertices.
//  3. Subscribe: each unknown neighbor becomes a ghost and a subscription
//     request is routed to its current owner.
//  4. Reply: owners answer with the neighbor's current label.
//
// The traffic runs on its own tag (comm.MigrationExchange) and lands inside
// the iteration's stats window, so the α-β model prices it into the
// iteration's simulated communication time automatically; the decode/apply
// effort is charged as work units the same way.
func (s *stage) migrate(iter int, moves []rebalance.Move) error {
	s.ensureMigratable()
	outgoing := s.selectMigrants(moves)

	// Round 1: announcements. Applied in rank order on every rank, so the
	// directory update is identical everywhere.
	ann := wire.NewBuffer(0)
	ann.PutUvarint(uint64(len(outgoing)))
	for _, m := range outgoing {
		ann.PutVarint(int64(m.v))
		ann.PutVarint(int64(m.to))
	}
	frames, err := comm.Allgather(s.c, ann.Bytes())
	if err != nil {
		return err
	}
	total := 0
	for r := 0; r < s.p; r++ {
		rd := wire.NewReader(frames[r])
		n := int(rd.Uvarint())
		for j := 0; j < n; j++ {
			v := int(rd.Varint())
			to := int(rd.Varint())
			s.owner[v] = int32(to)
		}
		if err := rd.Err(); err != nil {
			return fmt.Errorf("core: rank %d: malformed migration announcement from rank %d: %w", s.rnk, r, err)
		}
		total += n
	}

	// Round 2: payloads. The donor detaches each vertex before encoding and
	// keeps it as a ghost (see the package comment on why that is safe and
	// why subscriptions are never cancelled).
	work := int64(0)
	out := s.sendScratch()
	for _, m := range outgoing {
		wdeg, adj, ok := s.sg.RemoveOwned(m.v)
		if !ok {
			return fmt.Errorf("core: rank %d selected unowned vertex %d for migration", s.rnk, m.v)
		}
		b := s.sendBufs[m.to]
		b.PutVarint(int64(m.v))
		b.PutVarint(int64(s.comm[m.v]))
		b.PutF64(wdeg)
		b.PutUvarint(uint64(len(adj)))
		for _, a := range adj {
			b.PutVarint(int64(a.To))
			b.PutF64(a.W)
		}
		subs := s.sg.Subscribers[m.v]
		b.PutUvarint(uint64(len(subs)))
		for _, r := range subs {
			b.PutVarint(int64(r))
		}
		s.sg.SetSubscribers(m.v, nil)
		s.sg.AddGhost(m.v)
		work += migrantWeight(adj)
	}
	for r := 0; r < s.p; r++ {
		out[r] = s.sendBufs[r].Bytes()
	}
	var arrived []inboundMigrant
	err = s.migExchange(out, func(src int, payload []byte) error {
		rd := wire.NewReader(payload)
		for rd.Remaining() > 0 {
			var in inboundMigrant
			in.v = int(rd.Varint())
			in.label = int32(rd.Varint())
			in.wdeg = rd.F64()
			in.adj = make([]partition.Arc, int(rd.Uvarint()))
			for j := range in.adj {
				in.adj[j] = partition.Arc{To: int(rd.Varint()), W: rd.F64()}
			}
			ns := int(rd.Uvarint())
			in.subs = make([]int, 0, ns+1)
			for j := 0; j < ns; j++ {
				in.subs = append(in.subs, int(rd.Varint()))
			}
			// The donor keeps a ghost copy alive, so it joins the
			// subscriber set (SetSubscribers drops this rank if present).
			in.subs = append(in.subs, src)
			arrived = append(arrived, in)
		}
		return rd.Err()
	})
	if err != nil {
		return err
	}
	// Phase 1: insert every migrant. Sorted by vertex ID so the application
	// order is independent of frame arrival order (each vertex arrives from
	// exactly one donor, so the set itself is arrival-independent).
	sort.Slice(arrived, func(i, j int) bool { return arrived[i].v < arrived[j].v })
	for _, in := range arrived {
		s.sg.InsertOwned(in.v, in.wdeg, in.adj)
		s.comm[in.v] = in.label
		s.sg.RemoveGhost(in.v)
		s.sg.SetSubscribers(in.v, in.subs)
		work += migrantWeight(in.adj)
	}
	// Phase 2: adopt unknown neighbors as ghosts. A neighbor that itself
	// migrated here this round was inserted in phase 1, so it is known by
	// now — the two-phase split is what makes co-migration safe.
	reqs := make([][]int, s.p)
	for _, in := range arrived {
		for _, a := range in.adj {
			if s.comm[a.To] != -1 {
				continue
			}
			s.sg.AddGhost(a.To)
			o := s.ownerOf(a.To)
			reqs[o] = append(reqs[o], a.To)
			// Mark as pending so a second arc to the same neighbor does not
			// request twice; the reply round overwrites with the real label.
			s.comm[a.To] = -2
		}
	}

	// Round 3: subscription requests to each new ghost's current owner.
	out = s.sendScratch()
	for r := 0; r < s.p; r++ {
		sort.Ints(reqs[r])
		b := s.sendBufs[r]
		b.PutInts(reqs[r])
		out[r] = b.Bytes()
		work += int64(len(reqs[r]))
	}
	gotReqs := make([][]int, s.p)
	err = s.migExchange(out, func(src int, payload []byte) error {
		rd := wire.NewReader(payload)
		gotReqs[src] = rd.Ints()
		return rd.Err()
	})
	if err != nil {
		return err
	}

	// Round 4: subscribe each requester and reply with current labels. The
	// requester's writes are disjoint per source (each ghost was requested
	// from exactly one owner), so streaming application is deterministic.
	out = s.sendScratch()
	for r := 0; r < s.p; r++ {
		b := s.sendBufs[r]
		for _, u := range gotReqs[r] {
			s.sg.Subscribe(u, r)
			b.PutVarint(int64(s.comm[u]))
		}
		out[r] = b.Bytes()
		work += int64(len(gotReqs[r]))
	}
	err = s.migExchange(out, func(src int, payload []byte) error {
		rd := wire.NewReader(payload)
		for _, u := range reqs[src] {
			s.comm[u] = int32(rd.Varint())
		}
		return rd.Err()
	})
	if err != nil {
		return err
	}

	// The owned-vertex set changed: rebuild the modularity kernel (its
	// closure snapshots the owned tables and chunk count).
	s.buildQKernel()
	s.addWork(trace.Other, work)
	s.reb.events++
	s.reb.migrated += int64(total)
	if s.rnk == 0 {
		trace.Eventf("rebalance", "iter=%d policy=%s migrants=%d moves=%d", iter, s.pol.Name(), total, len(moves))
	}
	return nil
}
