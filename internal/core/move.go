package core

import (
	"sort"

	"repro/internal/partition"
	"repro/internal/trace"
)

// gainEps is the tolerance under which two modularity gains count as equal
// (the tie case the convergence heuristics arbitrate).
const gainEps = 1e-12

// sweep performs one greedy local-moving pass over the rank's owned low
// vertices (applied immediately, Gauss-Seidel within the rank) and computes
// this rank's move proposal for every hub from its local share of hub arcs.
// It returns the hub proposals and the number of owned vertices moved.
//
// The owned-vertex loop is sequential by design: each move updates the
// cached aggregates the next decision reads (the paper's Gauss-Seidel
// semantics). The hub loop reads a state no proposal mutates, so it runs on
// the worker pool in data-sized chunks; props[i] is written by exactly one
// chunk and the per-chunk work counts combine in chunk order, keeping the
// result bit-identical to the serial path.
//
//perf:noalloc
func (s *stage) sweep() ([]hubProposal, int) {
	s.changed = s.changed[:0]
	moved := 0
	acc := s.accs[0]

	work := int64(0)
	for i, u := range s.sg.Owned {
		ku := s.sg.OwnedWDeg[i]
		work += int64(len(s.sg.AdjOwned[i])) + 4
		target, ok := s.bestMove(u, ku, s.sg.AdjOwned[i], acc)
		if !ok {
			continue
		}
		cu := int(s.comm[u])
		s.comm[u] = int32(target)
		s.applyLocalMove(cu, target, ku)
		s.changed = append(s.changed, u)
		moved++
	}

	s.pool.parFor(s.hubChunks, s.hubKernel)
	for c := 0; c < s.hubChunks; c++ {
		work += s.chunkArcs[c]
	}
	s.addWork(trace.FindBest, work)
	return s.props, moved
}

// gainAccumulator gathers w(u→c) per neighboring community for one vertex,
// with O(touched) reset. cands is the reusable equal-gain candidate scratch
// of scanCandidates. One accumulator exists per worker, allocated once per
// stage, so the steady-state sweep allocates nothing.
type gainAccumulator struct {
	w     []float64
	seen  []bool
	keys  []int
	cands []int
}

func newGainAccumulator(n int) *gainAccumulator {
	return &gainAccumulator{w: make([]float64, n), seen: make([]bool, n)}
}

//perf:noalloc
func (g *gainAccumulator) reset() {
	for _, c := range g.keys {
		g.w[c] = 0
		g.seen[c] = false
	}
	g.keys = g.keys[:0]
}

//perf:noalloc
func (g *gainAccumulator) add(c int, w float64) {
	if !g.seen[c] {
		g.seen[c] = true
		g.keys = append(g.keys, c)
	}
	g.w[c] += w
}

// sortedKeys returns the touched communities in ascending label order, so
// every decision below is deterministic.
//
//perf:noalloc
func (g *gainAccumulator) sortedKeys() []int {
	sort.Ints(g.keys)
	return g.keys
}

// scanCandidates accumulates the arc weights of vertex u (current community
// cu, weighted degree k, adjacency adj) into acc and collects the max-gain
// candidate communities. It returns the gain of staying in cu, the best
// gain seen, and the equal-best candidate set in ascending label order
// (aliasing acc's scratch, valid until the next call on the same acc).
// This is the one place the gain and tie logic lives; bestMove and
// hubProposal both arbitrate its output.
//
//perf:noalloc
func (s *stage) scanCandidates(u, cu int, k float64, adj []partition.Arc, acc *gainAccumulator) (stayGain, best float64, cands []int) {
	acc.reset()
	for _, a := range adj {
		if a.To == u {
			continue // self-loops contribute to no move
		}
		acc.add(int(s.comm[a.To]), a.W)
	}
	// Gain of staying: u removed from cu, then re-inserted.
	totCu := s.lookupTot(cu) - k
	stayGain = acc.w[cu] - s.gamma*totCu*k/s.m2

	best = stayGain
	cands = acc.cands[:0]
	for _, c := range acc.sortedKeys() {
		if c == cu {
			continue
		}
		gain := acc.w[c] - s.gamma*s.lookupTot(c)*k/s.m2
		switch {
		case gain > best+gainEps:
			best = gain
			cands = append(cands[:0], c)
		case gain > best-gainEps:
			cands = append(cands, c)
		}
	}
	acc.cands = cands[:0]
	return stayGain, best, cands
}

// bestMove evaluates vertex u (current community from s.comm, weighted
// degree ku, adjacency adj) and returns the community it should move to.
// ok is false when the vertex stays put.
//
//perf:noalloc
func (s *stage) bestMove(u int, ku float64, adj []partition.Arc, acc *gainAccumulator) (int, bool) {
	cu := int(s.comm[u])
	stayGain, best, cands := s.scanCandidates(u, cu, ku, adj, acc)
	if len(cands) == 0 || best <= stayGain+gainEps {
		// Staying ties the best move (or beats it): do not churn.
		return 0, false
	}
	target := s.pickCandidate(cu, cands)
	if target == cu || !s.allowMove(cu, target) {
		return 0, false
	}
	return target, true
}

// allowMove applies the convergence heuristic's movement constraint
// (paper Section IV-C / Algorithm 2 line 11).
//
// Enhanced (the paper's heuristic): moves into communities local to this
// rank are unrestricted — the rank applies them Gauss-Seidel style with
// fresh aggregates, exactly like the sequential algorithm. Only moves into
// *remote* communities, whose state is one iteration stale and whose
// symmetric counterpart may move concurrently (the bouncing problem of
// Figure 3), take the minimum-label constraint C(u) = min(C_new, C_cur);
// the opposite-direction merge is performed by the remote side, which sees
// the mirrored gain.
//
// Strict restricts every move to smaller labels (provably convergent,
// slightly lower quality; ablation).
//
// Simple applies no movement constraint at all — minimum label acts only as
// the tie-breaker, which is how the paper evaluates Lu et al.'s heuristic
// in a distributed setting (and why it underperforms there).
func (s *stage) allowMove(cu, target int) bool {
	switch s.opt.Heuristic {
	case HeuristicSimple:
		return true
	case HeuristicStrict:
		return target < cu
	default: // HeuristicEnhanced
		if s.commOwner(target) == s.rnk {
			return true
		}
		return target < cu
	}
}

// pickCandidate arbitrates a set of equal-gain candidate communities
// (ascending label order) according to the configured heuristic.
func (s *stage) pickCandidate(cu int, cands []int) int {
	if len(cands) == 1 {
		return cands[0]
	}
	switch s.opt.Heuristic {
	case HeuristicSimple, HeuristicStrict:
		// Minimum label (cands are sorted).
		return cands[0]
	default:
		return s.pickEnhanced(cands)
	}
}

// pickEnhanced implements the paper's enhanced heuristic: prefer a local
// community (one owned by this rank, whose state is fresh), then a remote
// community with more than one member (unlikely to vanish underneath us),
// then the minimum-label singleton ghost community.
func (s *stage) pickEnhanced(cands []int) int {
	localBest, multiBest := -1, -1
	for _, c := range cands {
		if s.commOwner(c) == s.rnk {
			if localBest < 0 {
				localBest = c
			}
			continue
		}
		if s.cachedSize(c) > 1 && multiBest < 0 {
			multiBest = c
		}
	}
	if localBest >= 0 {
		return localBest
	}
	if multiBest >= 0 {
		return multiBest
	}
	return cands[0] // minimum-label singleton ghost
}

// hubProposal computes this rank's proposal for hub h from the local share
// of its arcs: the candidate community with the highest gain advantage over
// the hub's current community, arbitrated by the same heuristic.
//
//perf:noalloc
func (s *stage) hubProposal(h int, kh float64, adj []partition.Arc, acc *gainAccumulator) hubProposal {
	ch := int(s.comm[h])
	if len(adj) == 0 {
		return hubProposal{improvement: negInf, target: ch}
	}
	stayGain, best, cands := s.scanCandidates(h, ch, kh, adj, acc)
	if len(cands) == 0 {
		return hubProposal{improvement: negInf, target: ch}
	}
	return hubProposal{
		improvement: best - stayGain,
		target:      s.pickCandidate(ch, cands),
	}
}
