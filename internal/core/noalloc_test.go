package core

import (
	"fmt"
	"sort"
	"testing"

	"repro/internal/analysis"
	"repro/internal/comm"
	"repro/internal/gen"
	"repro/internal/partition"
)

// TestNoallocAnnotations is the runtime half of the //perf:noalloc regime:
// the noalloc analyzer proves the annotated bodies contain no allocating
// constructs, and this harness bounds the same functions with
// testing.AllocsPerRun ceilings of zero in the converged steady state. The
// driver table is checked against analysis.NoallocFuncs, so annotating a
// new function without adding a driver (or vice versa) fails here.
func TestNoallocAnnotations(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc counting under -short")
	}
	annotated, err := analysis.NoallocFuncs(".")
	if err != nil {
		t.Fatalf("reading //perf:noalloc annotations: %v", err)
	}

	g, err := gen.RMAT(gen.Graph500RMAT(10, 8))
	if err != nil {
		t.Fatal(err)
	}
	opt, err := (Options{P: 1, DHigh: 32, Workers: 1}).withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	layout, err := partition.Build(g, partition.Options{P: 1, Kind: opt.Partitioning, DHigh: opt.DHigh})
	if err != nil {
		t.Fatal(err)
	}
	err = comm.RunWorld(1, func(c comm.Comm) error {
		s := newStage(c, layout.Parts[0], opt)
		defer s.close()
		steadyState(t, c, s)

		acc := s.accs[0]
		u := s.sg.Owned[0]
		ku := s.sg.OwnedWDeg[0]
		adj := s.sg.AdjOwned[0]
		cu := int(s.comm[u])

		// One driver per annotated function. hubProposal is exercised on an
		// owned vertex's data: it only reads stage state, so any vertex with
		// adjacency stands in for a hub.
		drivers := map[string]func(){
			"stage.sweep":                func() { s.sweep() },
			"stage.sendScratch":          func() { s.sendScratch() },
			"gainAccumulator.reset":      func() { acc.reset() },
			"gainAccumulator.add":        func() { acc.reset(); acc.add(cu, 1.0) },
			"gainAccumulator.sortedKeys": func() { acc.sortedKeys() },
			"stage.scanCandidates":       func() { s.scanCandidates(u, cu, ku, adj, acc) },
			"stage.bestMove":             func() { s.bestMove(u, ku, adj, acc) },
			"stage.hubProposal":          func() { s.hubProposal(u, ku, adj, acc) },
		}

		var table []string
		for name := range drivers {
			table = append(table, name)
		}
		sort.Strings(table)
		if fmt.Sprint(table) != fmt.Sprint(annotated) {
			t.Fatalf("driver table out of sync with //perf:noalloc annotations:\n  annotated: %v\n  drivers:   %v", annotated, table)
		}

		for _, name := range table {
			op := drivers[name]
			op() // settle one-time growth before counting
			if got := testing.AllocsPerRun(10, op); got > 0 {
				t.Errorf("%s: %v allocs/op, //perf:noalloc promises 0", name, got)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
