package core

import (
	"fmt"
	"sort"
	"testing"

	"repro/internal/analysis"
	"repro/internal/comm"
	"repro/internal/gen"
	"repro/internal/partition"
)

// TestNoallocAnnotations is the runtime half of the //perf:noalloc regime:
// the noalloc analyzer proves the annotated bodies contain no allocating
// constructs, and this harness bounds the same functions with
// testing.AllocsPerRun ceilings of zero in the converged steady state. The
// driver table is checked against analysis.NoallocFuncs, so annotating a
// new function without adding a driver (or vice versa) fails here.
func TestNoallocAnnotations(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc counting under -short")
	}
	annotated, err := analysis.NoallocFuncs(".")
	if err != nil {
		t.Fatalf("reading //perf:noalloc annotations: %v", err)
	}

	g, err := gen.RMAT(gen.Graph500RMAT(10, 8))
	if err != nil {
		t.Fatal(err)
	}
	opt, err := (Options{P: 1, DHigh: 32, Workers: 1}).withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	layout, err := partition.Build(g, partition.Options{P: 1, Kind: opt.Partitioning, DHigh: opt.DHigh})
	if err != nil {
		t.Fatal(err)
	}
	err = comm.RunWorld(1, func(c comm.Comm) error {
		s := newStage(c, layout.Parts[0], opt)
		defer s.close()
		steadyState(t, c, s)

		acc := s.accs[0]
		u := s.sg.Owned[0]
		ku := s.sg.OwnedWDeg[0]
		adj := s.sg.AdjOwned[0]
		cu := int(s.comm[u])

		// Preallocated operands for the merge counting-sort kernels: 8
		// records over a 4-key space, 2 chunks, ranks p=2 / rowsCap=2.
		mx := []int32{3, 1, 2, 0, 1, 3, 0, 2}
		my := []int32{0, 1, 2, 3, 0, 1, 2, 3}
		mw := []float64{1, 2, 3, 4, 5, 6, 7, 8}
		mh := make([]int32, 2*4)
		mox := make([]int32, len(mx))
		moy := make([]int32, len(my))
		mow := make([]float64, len(mw))
		mbounds := make([]int, 5)
		histPrep := func() {
			histCount(mx, 0, len(mx)/2, mh[:4])
			histCount(mx, len(mx)/2, len(mx), mh[4:])
			histOffsets(mh, 2, 4, 0, nil)
		}
		histPrepFused := func() {
			histCountFused(mx, 0, len(mx)/2, 2, 2, mh[:4])
			histCountFused(mx, len(mx)/2, len(mx), 2, 2, mh[4:])
			histOffsets(mh, 2, 4, 0, nil)
		}

		// One driver per annotated function. hubProposal is exercised on an
		// owned vertex's data: it only reads stage state, so any vertex with
		// adjacency stands in for a hub.
		drivers := map[string]func(){
			"stage.sweep":                func() { s.sweep() },
			"stage.sendScratch":          func() { s.sendScratch() },
			"gainAccumulator.reset":      func() { acc.reset() },
			"gainAccumulator.add":        func() { acc.reset(); acc.add(cu, 1.0) },
			"gainAccumulator.sortedKeys": func() { acc.sortedKeys() },
			"stage.scanCandidates":       func() { s.scanCandidates(u, cu, ku, adj, acc) },
			"stage.bestMove":             func() { s.bestMove(u, ku, adj, acc) },
			"stage.hubProposal":          func() { s.hubProposal(u, ku, adj, acc) },
			"fillInt32":                  func() { fillInt32(mh, -1) },
			"histCount":                  func() { histCount(mx, 0, len(mx), mh[:4]) },
			"histCountFused":             func() { histCountFused(mx, 0, len(mx), 2, 2, mh[:4]) },
			"histOffsets":                func() { histPrep(); histOffsets(mh, 2, 4, 1, mbounds) },
			"scatterRecords": func() {
				histPrep()
				scatterRecords(mx, my, mw, 0, len(mx)/2, mh[:4], mox, moy, mow)
			},
			"scatterFused": func() {
				histPrepFused()
				scatterFused(mx, my, mw, 0, len(mx)/2, 2, 2, mh[:4], mox, moy, mow)
			},
		}

		var table []string
		for name := range drivers {
			table = append(table, name)
		}
		sort.Strings(table)
		if fmt.Sprint(table) != fmt.Sprint(annotated) {
			t.Fatalf("driver table out of sync with //perf:noalloc annotations:\n  annotated: %v\n  drivers:   %v", annotated, table)
		}

		for _, name := range table {
			op := drivers[name]
			op() // settle one-time growth before counting
			if got := testing.AllocsPerRun(10, op); got > 0 {
				t.Errorf("%s: %v allocs/op, //perf:noalloc promises 0", name, got)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
