package core

import (
	"bytes"
	"fmt"
	"strconv"
	"sync"
	"testing"

	"repro/internal/comm"
	"repro/internal/graph"
	"repro/internal/partition"
)

// goldenSharded encodes the golden fixture graph as a v2 sharded binary
// and opens it for windowed reads.
func goldenSharded(t *testing.T, shards int) *graph.Sharded {
	t.Helper()
	g := goldenGraph(t)
	var buf bytes.Buffer
	if err := graph.WriteBinaryShardedV2(&buf, g, shards); err != nil {
		t.Fatal(err)
	}
	s, err := graph.OpenSharded(bytes.NewReader(buf.Bytes()), int64(buf.Len()))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestGoldenOutOfCore is the end-to-end acceptance test for the
// out-of-core solve: BuildStreaming over the sharded golden fixture, then
// RunLayout, must reproduce the default in-RAM Run bit for bit — same
// hex-float modularity, same label for every vertex — across rank counts
// and both partitionings.
func TestGoldenOutOfCore(t *testing.T) {
	g := goldenGraph(t)
	s := goldenSharded(t, 5)
	for _, kind := range []partition.Kind{partition.Delegate, partition.OneD} {
		for _, p := range []int{1, 2, 4} {
			t.Run(fmt.Sprintf("%v/p%d", kind, p), func(t *testing.T) {
				opt := Options{P: p, Partitioning: kind}
				want, err := Run(g, opt)
				if err != nil {
					t.Fatal(err)
				}
				// The streaming path never sees the Graph, so the DHigh
				// default must be derived the same way Run derives it.
				popt := Options{P: p, Partitioning: kind}
				defaultDHigh(&popt, s.NumVertices(), s.NumArcs())
				layout, err := partition.BuildStreaming(s, partition.Options{
					P: p, Kind: kind, DHigh: popt.DHigh,
				})
				if err != nil {
					t.Fatal(err)
				}
				got, err := RunLayout(layout, opt)
				if err != nil {
					t.Fatal(err)
				}
				if got.Modularity != want.Modularity {
					t.Errorf("Q = %s, in-RAM %s",
						strconv.FormatFloat(got.Modularity, 'x', -1, 64),
						strconv.FormatFloat(want.Modularity, 'x', -1, 64))
				}
				if len(got.Membership) != len(want.Membership) {
					t.Fatalf("%d labels, in-RAM %d", len(got.Membership), len(want.Membership))
				}
				for u := range got.Membership {
					if got.Membership[u] != want.Membership[u] {
						t.Fatalf("vertex %d in community %d, in-RAM %d",
							u, got.Membership[u], want.Membership[u])
					}
				}
			})
		}
	}
}

// TestRunRankLayoutTCP drives the per-process out-of-core entry point:
// every TCP rank builds the streaming layout itself, keeps its part, and
// solves via RunRankLayout. The assembled membership must match the
// in-process RunLayout result exactly.
func TestRunRankLayoutTCP(t *testing.T) {
	s := goldenSharded(t, 3)
	const p = 4
	opt := Options{P: p}
	defaultDHigh(&opt, s.NumVertices(), s.NumArcs())
	layout, err := partition.BuildStreaming(s, partition.Options{P: p, DHigh: opt.DHigh})
	if err != nil {
		t.Fatal(err)
	}
	want, err := RunLayout(layout, opt)
	if err != nil {
		t.Fatal(err)
	}

	addrs := coreFreeAddrs(t, p)
	results := make([]*RankResult, p)
	errs := make([]error, p)
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			ep, err := comm.DialTCPWorld(r, addrs)
			if err != nil {
				errs[r] = err
				return
			}
			defer ep.Close()
			l, err := partition.BuildStreaming(s, partition.Options{P: p, DHigh: opt.DHigh})
			if err != nil {
				errs[r] = err
				return
			}
			results[r], errs[r] = RunRankLayout(ep, l.Parts[r], opt)
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	m := make(graph.Membership, s.NumVertices())
	for _, res := range results {
		for i, u := range res.Tracked {
			m[u] = res.Labels[i]
		}
	}
	m.Normalize()
	if results[0].Modularity != want.Modularity {
		t.Errorf("Q = %s, in-process %s",
			strconv.FormatFloat(results[0].Modularity, 'x', -1, 64),
			strconv.FormatFloat(want.Modularity, 'x', -1, 64))
	}
	for u := range m {
		if m[u] != want.Membership[u] {
			t.Fatalf("vertex %d in community %d, in-process %d", u, m[u], want.Membership[u])
		}
	}
}

func TestRunLayoutErrors(t *testing.T) {
	if _, err := RunLayout(nil, Options{}); err == nil {
		t.Error("nil layout: expected error")
	}
	s := goldenSharded(t, 2)
	layout, err := partition.BuildStreaming(s, partition.Options{P: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunLayout(layout, Options{P: 3}); err == nil {
		t.Error("P mismatch: expected error")
	}
}
