// Package core implements the paper's contribution: a distributed Louvain
// community-detection algorithm over delegate-partitioned graphs.
//
// The driver (Run) follows Algorithm 1 of the paper:
//
//  1. Distributed delegate partitioning (internal/partition).
//  2. Parallel local clustering with delegates: per-iteration greedy local
//     moving, a collective that agrees on every delegate's move (the rank
//     whose local share yields the highest modularity gain wins), ghost
//     community-state swaps, and owner-aggregated Σtot/size bookkeeping.
//  3. Distributed graph merging into a coarser 1D-partitioned graph.
//  4. Parallel local clustering without delegates, repeated until the
//     global modularity stops improving.
//
// The convergence heuristics of Section IV-C are selectable: the simple
// minimum-label rule of Lu et al. and the paper's enhanced rule (prefer
// local communities, then multi-vertex ghost communities, then the
// minimum-label singleton ghost).
package core

import (
	"fmt"
	"time"

	"repro/internal/partition"
	"repro/internal/rebalance"
)

// Heuristic selects the tie-breaking/convergence rule for community moves.
type Heuristic int

const (
	// HeuristicEnhanced is the paper's rule (Section IV-C). On modularity
	// ties a vertex prefers a community local to this rank (fresh state,
	// Gauss-Seidel application), then a remote community with more than one
	// member, then the minimum-label singleton ghost. Moves into remote
	// communities additionally take the minimum-label constraint
	// C(u) = min(C_new, C_cur) of Algorithm 2 line 11, which breaks the
	// cross-rank bouncing of Figure 3 while leaving on-rank moves as free
	// as the sequential algorithm.
	HeuristicEnhanced Heuristic = iota
	// HeuristicSimple is the plain minimum-label heuristic of Lu et al. as
	// the paper evaluates it in Figure 5: ties are broken toward the
	// smallest community label, with no further movement constraint. In a
	// distributed setting this permits the bouncing and stale-singleton
	// problems of Figures 3-4 — runs typically hit the iteration cap and
	// converge to a visibly lower modularity, which is exactly the paper's
	// observation.
	HeuristicSimple
	// HeuristicStrict applies the minimum-label constraint to every move,
	// local or remote (the most conservative reading of Algorithm 2 line
	// 11). It converges fast — labels are monotone — at a small quality
	// cost; provided for the ablation study.
	HeuristicStrict
)

func (h Heuristic) String() string {
	switch h {
	case HeuristicEnhanced:
		return "enhanced"
	case HeuristicSimple:
		return "simple"
	case HeuristicStrict:
		return "strict"
	default:
		return fmt.Sprintf("Heuristic(%d)", int(h))
	}
}

// Options configures a distributed run. The zero value uses the paper's
// settings: delegate partitioning with DHigh = P and the enhanced heuristic.
type Options struct {
	// P is the number of ranks (processors). Required, >= 1.
	P int
	// Partitioning selects delegate partitioning (default) or plain 1D
	// (the Cheong-style baseline of Figure 7).
	Partitioning partition.Kind
	// DHigh is the hub degree threshold; <= 0 means P (the paper's choice).
	DHigh int
	// Heuristic selects the convergence heuristic.
	Heuristic Heuristic
	// MinGain is the θ threshold: the minimum global modularity improvement
	// for another outer level. Defaults to 1e-6.
	MinGain float64
	// MaxInnerIters caps the local-clustering iterations per stage.
	// Defaults to 100 (a safety net for HeuristicNone).
	MaxInnerIters int
	// MaxOuterLevels caps merge levels; 0 means no cap.
	MaxOuterLevels int
	// TrackTrace records the global modularity after every inner iteration
	// of the first clustering stage (Figure 5).
	TrackTrace bool
	// Resolution is the γ of generalized (Reichardt–Bornholdt) modularity;
	// 0 or 1 is standard modularity, larger values produce more, smaller
	// communities. All gains and the reported modularity use it.
	Resolution float64
	// TrackLevels records the membership of the original vertices after
	// every clustering stage (the dendrogram), in Result.LevelMemberships.
	TrackLevels bool
	// Workers is the intra-rank worker count for the parallel read-only
	// kernels (hub proposals, the modularity arc scan, request
	// encode/answer). 0 selects GOMAXPROCS/P (min 1); 1 forces the serial
	// path. Results are bit-identical at every setting: chunk boundaries
	// depend only on data size and partial results combine in chunk order.
	Workers int
	// Comm is the α-β cost model used for the simulated communication
	// times (Result.Stage1CommSim/Stage2CommSim). The zero value selects
	// DefaultCommModel.
	Comm CommModel
	// CommDeadline bounds every receive of the run: when > 0 and the
	// transport supports deadlines (both built-in transports do), a rank
	// whose Recv waits longer than this fails with an error wrapping
	// comm.ErrTimeout instead of hanging the world on a dead or wedged
	// peer. 0 keeps unbounded blocking. See docs/ROBUSTNESS.md.
	CommDeadline time.Duration
	// RebalanceRatio enables mid-solve vertex migration: when the
	// per-iteration work-max/work-mean ratio across ranks reaches this
	// threshold (θ > 1) for RebalanceHysteresis consecutive iterations, the
	// ranks migrate owned vertices from hot ranks to cold ones between
	// iterations. 0 disables rebalancing entirely — the solver is then
	// byte-identical to builds without the feature. See
	// docs/PERFORMANCE.md, "Dynamic load rebalancing".
	RebalanceRatio float64
	// RebalancePolicy selects the migration policy by name
	// (rebalance.ByName): "greedy" (default), "ideal", or "none". Any fixed
	// (policy, seed) pair is bit-identical across worker counts and
	// transports.
	RebalancePolicy string
	// RebalanceHysteresis is the number of consecutive over-threshold
	// iterations required before a migration fires (default 2), so a
	// single-iteration spike does not trigger a move.
	RebalanceHysteresis int
	// RebalanceCooldown is the minimum number of iterations between two
	// migration events (default 3), giving the solver time to re-measure
	// the balance the previous event produced.
	RebalanceCooldown int
	// RebalanceSeed is passed to the policy's Plan call; part of the
	// deterministic plan contract (same trigger + same seed + same work
	// vector ⇒ same plan on every rank). Defaults to 1.
	RebalanceSeed int64
	// UpdateKHops bounds the incremental re-clustering of a Session update:
	// the sweep queue is seeded with the vertices within this many hops of
	// any changed edge's endpoints (the endpoints themselves are hop 0).
	// <= 0 means 2. Larger values re-examine more of the graph per update —
	// closer to full-solve quality, further from full-solve cost.
	UpdateKHops int
	// DriftQ is the cumulative-|ΔQ| drift threshold of the incremental
	// path: once the modularity movement accumulated across incremental
	// update batches (since the last full solve) exceeds it, ApplyUpdates
	// reports NeedFull and the driver should re-solve from scratch.
	// <= 0 means 0.05.
	DriftQ float64
	// DriftTouched is the companion touched-vertex drift threshold: the
	// cumulative fraction of vertices re-examined by incremental sweeps
	// since the last full solve. <= 0 means 0.35.
	DriftTouched float64
	// SequentialCollectives routes every exchange through the sequential
	// baseline collectives (comm.AlltoallvSeq, four unfused per-iteration
	// allreduces) instead of the overlapped engine. Results are
	// bit-identical either way — this is an A/B knob for benchmarks and
	// the determinism tests that prove that equivalence; see
	// docs/PERFORMANCE.md.
	SequentialCollectives bool
}

// CommModel is an α-β communication cost model: sending a message of b
// bytes costs LatencyNS + b/BytesPerNS nanoseconds. It prices the traffic
// the comm layer measures exactly, giving a simulated communication time
// alongside the simulated compute time (see EXPERIMENTS.md). The paper's
// Section VI argues communication becomes the bottleneck once local
// clustering is GPU-accelerated; this model lets the extension experiment
// quantify that projection.
type CommModel struct {
	// LatencyNS is α, the fixed per-message cost in nanoseconds.
	LatencyNS float64
	// BytesPerNS is 1/β, the bandwidth in bytes per nanosecond
	// (1.0 = 1 GB/s ≈ 10 Gb Ethernet payload rate; 10.0 ≈ HPC fabric).
	BytesPerNS float64
}

// DefaultCommModel models a commodity cluster fabric: 1 µs message latency
// and 10 GB/s bandwidth.
func DefaultCommModel() CommModel {
	return CommModel{LatencyNS: 1000, BytesPerNS: 10}
}

// costNS prices a traffic delta of msgs messages totaling bytes bytes.
func (m CommModel) costNS(msgs, bytes int64) int64 {
	return int64(m.LatencyNS*float64(msgs) + float64(bytes)/m.BytesPerNS)
}

func (o Options) withDefaults() (Options, error) {
	if o.P < 1 {
		return o, fmt.Errorf("core: P = %d, want >= 1", o.P)
	}
	if o.MinGain <= 0 {
		o.MinGain = 1e-6
	}
	if o.MaxInnerIters <= 0 {
		o.MaxInnerIters = 100
	}
	if o.DHigh <= 0 {
		o.DHigh = o.P
	}
	if o.Resolution <= 0 {
		o.Resolution = 1
	}
	if o.Comm == (CommModel{}) {
		o.Comm = DefaultCommModel()
	}
	if o.RebalanceRatio < 0 {
		return o, fmt.Errorf("core: RebalanceRatio = %g, want 0 (off) or > 1", o.RebalanceRatio)
	}
	if o.RebalanceRatio > 0 {
		if o.RebalanceRatio <= 1 {
			return o, fmt.Errorf("core: RebalanceRatio = %g, want > 1 (work-max/work-mean is never below 1)", o.RebalanceRatio)
		}
		if _, err := rebalance.ByName(o.RebalancePolicy); err != nil {
			return o, err
		}
	}
	if o.RebalanceHysteresis <= 0 {
		o.RebalanceHysteresis = 2
	}
	if o.RebalanceCooldown <= 0 {
		o.RebalanceCooldown = 3
	}
	if o.RebalanceSeed == 0 {
		o.RebalanceSeed = 1
	}
	if o.UpdateKHops <= 0 {
		o.UpdateKHops = 2
	}
	if o.DriftQ <= 0 {
		o.DriftQ = 0.05
	}
	if o.DriftTouched <= 0 {
		o.DriftTouched = 0.35
	}
	return o, nil
}

// rebalanceOn reports whether mid-solve rebalancing is enabled. The "none"
// policy still counts as on: it runs the work-vector reduction and the
// trigger machinery but always plans an empty migration, making it the
// control arm of the policy ablation. Only RebalanceRatio = 0 restores the
// exact pre-feature collective schedule.
func (o Options) rebalanceOn() bool { return o.RebalanceRatio > 0 }
