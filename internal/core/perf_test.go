package core

// Tests for the perf-oriented machinery: the intra-rank worker pool, the
// bit-identical determinism guarantee across Workers settings, and
// allocation ceilings on the steady-state per-iteration kernels.

import (
	"fmt"
	"sync/atomic"
	"testing"

	"repro/internal/comm"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/partition"
)

// TestChunkSpan checks that chunks are contiguous, exhaustive, and a pure
// function of the data size.
func TestChunkSpan(t *testing.T) {
	for _, n := range []int{0, 1, 2, parGrain - 1, parGrain, parGrain + 1, 10 * parGrain, 1000*parGrain + 37} {
		nc := numChunks(n)
		if nc < 1 || nc > maxChunks {
			t.Fatalf("numChunks(%d) = %d out of range", n, nc)
		}
		prev := 0
		for c := 0; c < nc; c++ {
			lo, hi := chunkSpan(n, nc, c)
			if lo != prev {
				t.Fatalf("n=%d chunk %d: lo = %d, want %d (contiguous)", n, c, lo, prev)
			}
			if hi < lo {
				t.Fatalf("n=%d chunk %d: hi %d < lo %d", n, c, hi, lo)
			}
			prev = hi
		}
		if prev != n {
			t.Fatalf("n=%d: chunks cover [0,%d), want [0,%d)", n, prev, n)
		}
	}
}

// TestParForCoversAllChunks checks that every chunk runs exactly once and
// worker IDs stay inside the pool's index space, for pool sizes both above
// and below the chunk count.
func TestParForCoversAllChunks(t *testing.T) {
	for _, nw := range []int{1, 2, 4, 7} {
		p := newWorkerPool(nw)
		for _, nChunks := range []int{1, 2, 3, 16, 63} {
			var hits [64]atomic.Int64
			p.parFor(nChunks, func(chunk, worker int) {
				if worker < 0 || worker >= p.workers() {
					t.Errorf("nw=%d: worker %d out of range", nw, worker)
				}
				hits[chunk].Add(1)
			})
			for c := 0; c < nChunks; c++ {
				if got := hits[c].Load(); got != 1 {
					t.Fatalf("nw=%d nChunks=%d: chunk %d ran %d times", nw, nChunks, c, got)
				}
			}
		}
		p.close()
	}
}

// TestDefaultWorkers pins the auto worker count's boundary behavior.
func TestDefaultWorkers(t *testing.T) {
	if got := defaultWorkers(1 << 20); got != 1 {
		t.Fatalf("defaultWorkers(huge world) = %d, want 1", got)
	}
	if got := defaultWorkers(1); got < 1 || got > maxChunks {
		t.Fatalf("defaultWorkers(1) = %d out of [1,%d]", got, maxChunks)
	}
}

// TestWorkerDeterminism is the contract of Options.Workers: at every worker
// count the algorithm produces bit-identical results, because chunk
// boundaries depend only on data size and partial results combine in chunk
// order. Covered across all three heuristics and both partitionings.
func TestWorkerDeterminism(t *testing.T) {
	g, err := gen.RMAT(gen.Graph500RMAT(11, 8))
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []partition.Kind{partition.Delegate, partition.OneD} {
		for _, h := range []Heuristic{HeuristicEnhanced, HeuristicSimple, HeuristicStrict} {
			t.Run(fmt.Sprintf("%s/%s", kind, h), func(t *testing.T) {
				run := func(workers int) *Result {
					res, err := Run(g, Options{
						P: 4, Partitioning: kind, DHigh: 16,
						Heuristic: h, TrackTrace: true, Workers: workers,
					})
					if err != nil {
						t.Fatal(err)
					}
					return res
				}
				serial := run(1)
				for _, w := range []int{2, 4} {
					par := run(w)
					if par.Modularity != serial.Modularity {
						t.Errorf("workers=%d: Q = %v, serial %v", w, par.Modularity, serial.Modularity)
					}
					if len(par.QTrace) != len(serial.QTrace) {
						t.Fatalf("workers=%d: %d trace points, serial %d", w, len(par.QTrace), len(serial.QTrace))
					}
					for i := range par.QTrace {
						if par.QTrace[i] != serial.QTrace[i] {
							t.Errorf("workers=%d: QTrace[%d] = %v, serial %v (not bit-identical)",
								w, i, par.QTrace[i], serial.QTrace[i])
						}
					}
					if !sameMembership(par.Membership, serial.Membership) {
						t.Errorf("workers=%d: membership differs from serial", w)
					}
				}
			})
		}
	}
}

func sameMembership(a, b graph.Membership) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// steadyState drives a fresh stage to its fixed point (no vertex moves
// anywhere) and leaves the aggregate cache hot, mirroring benchKernel.
func steadyState(t *testing.T, c comm.Comm, s *stage) {
	t.Helper()
	for iter := 0; iter < s.opt.MaxInnerIters; iter++ {
		if err := s.fetchCommunityInfo(); err != nil {
			t.Fatal(err)
		}
		props, movedLocal := s.sweep()
		hubMoved, err := s.delegateExchange(props)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.ghostSwap(); err != nil {
			t.Fatal(err)
		}
		if err := s.flushDeltas(); err != nil {
			t.Fatal(err)
		}
		movedTotal, err := comm.AllreduceInt64Sum(c, int64(movedLocal+hubMoved))
		if err != nil {
			t.Fatal(err)
		}
		if movedTotal == 0 {
			break
		}
	}
	if err := s.fetchCommunityInfo(); err != nil {
		t.Fatal(err)
	}
}

// TestSteadyStateAllocCeilings bounds the per-iteration allocations of the
// hot kernels once the stage has converged. The sweep must be allocation-
// free; the exchanges may allocate only what the comm layer itself needs
// for frame delivery (the encode side is pooled). Run on a P=1 world so the
// ceilings are exact and scheduler-independent.
func TestSteadyStateAllocCeilings(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc counting under -short")
	}
	g, err := gen.RMAT(gen.Graph500RMAT(10, 8))
	if err != nil {
		t.Fatal(err)
	}
	opt, err := (Options{P: 1, DHigh: 32, Workers: 1}).withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	layout, err := partition.Build(g, partition.Options{P: 1, Kind: opt.Partitioning, DHigh: opt.DHigh})
	if err != nil {
		t.Fatal(err)
	}
	err = comm.RunWorld(1, func(c comm.Comm) error {
		s := newStage(c, layout.Parts[0], opt)
		defer s.close()
		steadyState(t, c, s)
		check := func(name string, ceiling float64, op func()) {
			op() // settle any one-time growth before counting
			if got := testing.AllocsPerRun(10, op); got > ceiling {
				t.Errorf("%s: %v allocs/op, ceiling %v", name, got, ceiling)
			}
		}
		check("sweep", 0, func() { s.sweep() })
		check("ghostSwap", 8, func() {
			if err := s.ghostSwap(); err != nil {
				t.Fatal(err)
			}
		})
		check("flushDeltas", 8, func() {
			if err := s.flushDeltas(); err != nil {
				t.Fatal(err)
			}
		})
		check("globalModularity", 8, func() {
			if _, err := s.globalModularity(); err != nil {
				t.Fatal(err)
			}
		})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestParallelKernelsUnderRace exercises the pooled kernels with more
// workers than the host has cores on a multi-rank world; meaningful chiefly
// under -race, which scripts/check.sh runs for this package.
func TestParallelKernelsUnderRace(t *testing.T) {
	g, err := gen.RMAT(gen.Graph500RMAT(10, 8))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(g, Options{P: 2, DHigh: 16, Workers: 4, TrackTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	serial, err := Run(g, Options{P: 2, DHigh: 16, Workers: 1, TrackTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Modularity != serial.Modularity {
		t.Fatalf("workers=4 Q=%v, workers=1 Q=%v", res.Modularity, serial.Modularity)
	}
}
