package core

import (
	"runtime"
	"sync/atomic"
)

// Intra-rank parallelism. Each rank may run its read-only per-iteration
// kernels (hub-proposal computation, the global-modularity arc scan, the
// request encode/answer loops) on a small pool of worker goroutines. Two
// rules keep the parallel path bit-identical to the serial one:
//
//  1. Chunk boundaries are a pure function of the data size — never of the
//     worker count — so the same partial results exist at every Workers
//     setting.
//  2. Partial results are combined on the caller goroutine in ascending
//     chunk order, so floating-point reductions associate identically no
//     matter which worker computed which chunk.
//
// Kernels must not touch the communicator: collectives are matched by
// (source, tag) in program order on the rank's main goroutine, and a
// collective issued from a worker would race that matching (the
// collectivesym analyzer rejects collectives inside parFor tasks).

// parGrain is the number of items that justify one chunk of parallel work;
// below this the dispatch overhead exceeds the kernel cost.
const parGrain = 512

// maxChunks caps the chunk count (and thereby the per-chunk scratch) of a
// single parFor.
const maxChunks = 64

// numChunks returns the chunk count for n items: a function of the data
// size only, so chunk boundaries are identical at every worker count.
func numChunks(n int) int {
	nc := n / parGrain
	if nc < 1 {
		return 1
	}
	if nc > maxChunks {
		return maxChunks
	}
	return nc
}

// chunkSpan returns the half-open item range [lo, hi) of chunk c out of nc
// over n items. Contiguous, exhaustive, and deterministic.
func chunkSpan(n, nc, c int) (lo, hi int) {
	return c * n / nc, (c + 1) * n / nc
}

// defaultWorkers is the automatic intra-rank worker count: the host's
// parallelism divided by the world size (every rank is itself a goroutine
// competing for the same cores), floored at one.
func defaultWorkers(worldSize int) int {
	nw := runtime.GOMAXPROCS(0) / worldSize
	if nw < 1 {
		return 1
	}
	if nw > maxChunks {
		return maxChunks
	}
	return nw
}

// workerPool runs chunked kernels on nw goroutines (the caller participates
// as worker 0, so nw-1 goroutines are spawned). A nil pool runs everything
// inline; close releases the goroutines.
type workerPool struct {
	nw      int
	kernel  func(chunk, worker int)
	nChunks int
	next    atomic.Int64
	start   chan struct{}
	done    chan struct{}
	quit    chan struct{}
}

// newWorkerPool returns a pool of nw workers, or nil when nw <= 1 (the
// serial path needs no goroutines at all).
func newWorkerPool(nw int) *workerPool {
	if nw <= 1 {
		return nil
	}
	p := &workerPool{
		nw:    nw,
		start: make(chan struct{}, nw),
		done:  make(chan struct{}, nw),
		quit:  make(chan struct{}),
	}
	for w := 1; w < nw; w++ {
		go p.worker(w)
	}
	return p
}

func (p *workerPool) worker(w int) {
	for {
		select {
		case <-p.quit:
			return
		case <-p.start:
			p.runChunks(w)
			p.done <- struct{}{}
		}
	}
}

// runChunks claims chunks off the shared counter until none remain.
func (p *workerPool) runChunks(w int) {
	for {
		c := int(p.next.Add(1)) - 1
		if c >= p.nChunks {
			return
		}
		p.kernel(c, w)
	}
}

// close stops the worker goroutines. Safe on a nil pool.
func (p *workerPool) close() {
	if p != nil {
		close(p.quit)
	}
}

// parFor runs kernel(chunk, worker) for every chunk in [0, nChunks), with
// worker in [0, workers()). Chunks are claimed dynamically, so the mapping
// of chunk to worker is nondeterministic — kernels must write only
// per-chunk or per-worker state and leave cross-chunk combining to the
// caller (in chunk order, for bit-identical float reductions). parFor
// returns after every chunk has completed. A nil pool runs the chunks in
// order on the caller.
func (p *workerPool) parFor(nChunks int, kernel func(chunk, worker int)) {
	if p == nil || nChunks <= 1 {
		for c := 0; c < nChunks; c++ {
			kernel(c, 0)
		}
		return
	}
	p.kernel = kernel
	p.nChunks = nChunks
	p.next.Store(0)
	spawned := p.nw - 1
	for w := 0; w < spawned; w++ {
		p.start <- struct{}{}
	}
	p.runChunks(0)
	for w := 0; w < spawned; w++ {
		<-p.done
	}
	p.kernel = nil
}

// workers returns the worker-index space size of parFor kernels.
func (p *workerPool) workers() int {
	if p == nil {
		return 1
	}
	return p.nw
}
