package core

import "repro/internal/par"

// Intra-rank parallelism. Each rank may run its read-only per-iteration
// kernels (hub-proposal computation, the global-modularity arc scan, the
// request encode/answer loops) on a small pool of worker goroutines. The
// pool itself lives in internal/par (extracted in PR 5 so the ingest and
// partitioning pipeline can share it); this file keeps core's historical
// names so the kernel call sites read unchanged.
//
// The determinism rules are par's: chunk boundaries are a pure function of
// the data size, and partial results combine on the caller goroutine in
// ascending chunk order — so every Workers setting produces bit-identical
// results. Kernels must not touch the communicator: collectives are matched
// by (source, tag) in program order on the rank's main goroutine, and a
// collective issued from a worker would race that matching (the
// collectivesym analyzer rejects collectives inside parFor/ParFor tasks).

// parGrain is the number of items that justify one chunk of parallel work.
const parGrain = par.Grain

// maxChunks caps the chunk count (and thereby the per-chunk scratch) of a
// single parFor.
const maxChunks = par.MaxChunks

// numChunks returns the chunk count for n items: a function of the data
// size only, so chunk boundaries are identical at every worker count.
func numChunks(n int) int { return par.NumChunks(n) }

// chunkSpan returns the half-open item range [lo, hi) of chunk c out of nc
// over n items. Contiguous, exhaustive, and deterministic.
func chunkSpan(n, nc, c int) (lo, hi int) { return par.ChunkSpan(n, nc, c) }

// defaultWorkers is the automatic intra-rank worker count: the host's
// parallelism divided by the world size (every rank is itself a goroutine
// competing for the same cores), floored at one.
func defaultWorkers(worldSize int) int { return par.DefaultWorkers(worldSize) }

// workerPool runs chunked kernels on nw goroutines (the caller participates
// as worker 0). A nil pool runs everything inline; close releases the
// goroutines.
type workerPool struct {
	p *par.Pool
}

// newWorkerPool returns a pool of nw workers, or nil when nw <= 1 (the
// serial path needs no goroutines at all).
func newWorkerPool(nw int) *workerPool {
	p := par.NewPool(nw)
	if p == nil {
		return nil
	}
	return &workerPool{p: p}
}

// close stops the worker goroutines. Safe on a nil pool.
func (p *workerPool) close() {
	if p != nil {
		p.p.Close()
	}
}

// parFor runs kernel(chunk, worker) for every chunk in [0, nChunks); see
// par.Pool.ParFor for the determinism contract.
func (p *workerPool) parFor(nChunks int, kernel func(chunk, worker int)) {
	if p == nil {
		for c := 0; c < nChunks; c++ {
			kernel(c, 0)
		}
		return
	}
	p.p.ParFor(nChunks, kernel)
}

// workers returns the worker-index space size of parFor kernels.
func (p *workerPool) workers() int {
	if p == nil {
		return 1
	}
	return p.p.Workers()
}
