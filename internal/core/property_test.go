package core

import (
	"math"
	"math/rand"
	"net"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/comm"
	"repro/internal/graph"
)

// randomGraph builds a small random weighted graph from a seed.
func randomGraph(seed int64) (*graph.Graph, error) {
	rng := rand.New(rand.NewSource(seed))
	n := 20 + rng.Intn(60)
	e := n * (1 + rng.Intn(4))
	edges := make([]graph.Edge, e)
	for i := range edges {
		edges[i] = graph.Edge{U: rng.Intn(n), V: rng.Intn(n), W: 0.5 + rng.Float64()}
	}
	return graph.FromEdges(n, edges)
}

// TestQuickDistributedInvariants drives the full pipeline on random graphs
// and world sizes, asserting the structural invariants every run must hold:
// complete membership, dense labels, and a reported modularity that matches
// the membership exactly.
func TestQuickDistributedInvariants(t *testing.T) {
	f := func(seed int64, pRaw uint8) bool {
		g, err := randomGraph(seed)
		if err != nil {
			return false
		}
		p := 1 + int(pRaw%8)
		res, err := Run(g, Options{P: p})
		if err != nil {
			t.Logf("seed=%d p=%d: %v", seed, p, err)
			return false
		}
		if len(res.Membership) != g.NumVertices() {
			t.Logf("seed=%d p=%d: incomplete membership", seed, p)
			return false
		}
		k := res.Membership.NumCommunities()
		for _, c := range res.Membership {
			if c < 0 || c >= k {
				t.Logf("seed=%d p=%d: non-dense label %d", seed, p, c)
				return false
			}
		}
		want := graph.Modularity(g, res.Membership)
		if math.Abs(res.Modularity-want) > 1e-6 {
			t.Logf("seed=%d p=%d: Q %.9f != membership Q %.9f", seed, p, res.Modularity, want)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickHeuristicsNeverCrash runs all heuristics over random graphs.
func TestQuickHeuristicsNeverCrash(t *testing.T) {
	f := func(seed int64, h uint8) bool {
		g, err := randomGraph(seed)
		if err != nil {
			return false
		}
		res, err := Run(g, Options{
			P:             3,
			Heuristic:     Heuristic(h % 3),
			MaxInnerIters: 15,
		})
		if err != nil {
			return false
		}
		return res.Modularity >= -1 && res.Modularity <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickSimWorkDeterministic asserts the simulated-time metric is a pure
// function of (graph, options): two runs must agree exactly.
func TestQuickSimWorkDeterministic(t *testing.T) {
	f := func(seed int64) bool {
		g, err := randomGraph(seed)
		if err != nil {
			return false
		}
		a, err := Run(g, Options{P: 4})
		if err != nil {
			return false
		}
		b, err := Run(g, Options{P: 4})
		if err != nil {
			return false
		}
		return a.Stage1Sim == b.Stage1Sim && a.Stage2Sim == b.Stage2Sim &&
			a.Modularity == b.Modularity
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickRunRankAgreesAcrossTransports runs the same graph over the
// in-process and (loopback) TCP transports and checks identical results.
func TestQuickRunRankAgreesAcrossTransports(t *testing.T) {
	g, err := randomGraph(99)
	if err != nil {
		t.Fatal(err)
	}
	var inprocQ float64
	err = comm.RunWorld(3, func(c comm.Comm) error {
		res, err := RunRank(c, g, Options{P: 3})
		if err != nil {
			return err
		}
		// Every rank reports the same Q; only rank 0 writes the shared
		// variable (concurrent same-value writes are still a data race).
		if c.Rank() == 0 {
			inprocQ = res.Modularity
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want, err := Run(g, Options{P: 3})
	if err != nil {
		t.Fatal(err)
	}
	if inprocQ != want.Modularity {
		t.Errorf("RunRank Q %.9f != Run Q %.9f", inprocQ, want.Modularity)
	}
}

// TestTCPTransportMatchesInProcess runs the identical clustering over real
// loopback TCP sockets and asserts bit-identical results with the
// in-process transport.
func TestTCPTransportMatchesInProcess(t *testing.T) {
	g, err := randomGraph(123)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Run(g, Options{P: 3})
	if err != nil {
		t.Fatal(err)
	}

	// Reserve three loopback ports.
	addrs := make([]string, 3)
	lns := make([]net.Listener, 3)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range lns {
		ln.Close()
	}

	results := make([]*RankResult, 3)
	errs := make([]error, 3)
	var wg sync.WaitGroup
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			ep, err := comm.DialTCPWorld(r, addrs)
			if err != nil {
				errs[r] = err
				return
			}
			defer ep.Close()
			results[r], errs[r] = RunRank(ep, g, Options{P: 3})
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	m := make(graph.Membership, g.NumVertices())
	for _, res := range results {
		for i, u := range res.Tracked {
			m[u] = res.Labels[i]
		}
	}
	m.Normalize()
	if results[0].Modularity != want.Modularity {
		t.Errorf("TCP Q %.9f != in-process Q %.9f", results[0].Modularity, want.Modularity)
	}
	for i := range m {
		if m[i] != want.Membership[i] {
			t.Fatal("TCP membership differs from in-process membership")
		}
	}
}
