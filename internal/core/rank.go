package core

import (
	"fmt"
	"time"

	"repro/internal/comm"
	"repro/internal/graph"
	"repro/internal/partition"
)

// RankResult is one rank's share of a distributed run, for callers that
// drive their own communicator (e.g. the TCP worker processes). Tracked
// lists the original vertex IDs this rank reports and Labels their final
// community labels (global, not normalized — gather all ranks' pieces and
// normalize to obtain the full membership).
type RankResult struct {
	Tracked     []int
	Labels      []int
	Modularity  float64
	Stage1Iters int
	OuterLevels int
	Stage1Time  time.Duration
	Stage2Time  time.Duration
	// WorkUnits is this rank's total deterministic work units; the max/mean
	// across ranks is the run's work-balance ratio. RebalanceEvents and
	// MigratedVertices count mid-solve migrations (identical on every rank).
	WorkUnits        int64
	RebalanceEvents  int
	MigratedVertices int64
}

// RunRank executes this rank's share of the distributed Louvain algorithm
// over the caller's communicator. Every rank must call it with the same
// graph and options; the deterministic partitioner gives each rank its
// subgraph. This is the entry point for truly distributed (multi-process,
// TCP) runs; core.Run wraps it with the in-process transport.
func RunRank(c comm.Comm, g *graph.Graph, opt Options) (*RankResult, error) {
	if opt.P == 0 {
		opt.P = c.Size()
	}
	if opt.P != c.Size() {
		return nil, fmt.Errorf("core: Options.P = %d but communicator has %d ranks", opt.P, c.Size())
	}
	defaultDHigh(&opt, g.NumVertices(), g.NumArcs())
	opt, err := opt.withDefaults()
	if err != nil {
		return nil, err
	}
	// Deterministic partitioning: every process computes the same layout
	// and keeps its own part (a real deployment would distribute this
	// step; the layout is a pure function of the graph and options).
	layout, err := partition.Build(g, partition.Options{
		P: opt.P, Kind: opt.Partitioning, DHigh: opt.DHigh, Workers: opt.Workers,
	})
	if err != nil {
		return nil, err
	}
	return RunRankLayout(c, layout.Parts[c.Rank()], opt)
}

// RunRankLayout executes this rank's share of the algorithm from a prebuilt
// subgraph — the out-of-core worker entry point, where every process ran
// partition.BuildStreaming over the sharded file and kept only its own
// part. The subgraph must be rank c.Rank() of a layout built with P =
// c.Size() ranks, and opt.DHigh should carry the layout's threshold (the
// deterministic partitioner makes both true on every rank by
// construction).
func RunRankLayout(c comm.Comm, sg *partition.Subgraph, opt Options) (*RankResult, error) {
	if opt.P == 0 {
		opt.P = c.Size()
	}
	if opt.P != c.Size() {
		return nil, fmt.Errorf("core: Options.P = %d but communicator has %d ranks", opt.P, c.Size())
	}
	if sg == nil {
		return nil, fmt.Errorf("core: RunRankLayout needs a subgraph")
	}
	if sg.Rank != c.Rank() {
		return nil, fmt.Errorf("core: subgraph is rank %d's part but communicator rank is %d", sg.Rank, c.Rank())
	}
	opt, err := opt.withDefaults()
	if err != nil {
		return nil, err
	}
	out, err := runRank(c, sg, opt)
	if err != nil {
		return nil, err
	}
	return &RankResult{
		Tracked:          out.tracked,
		Labels:           out.labels,
		Modularity:       out.finalQ,
		Stage1Iters:      out.stage1.Iters,
		OuterLevels:      out.outer,
		Stage1Time:       time.Duration(out.stage1NS),
		Stage2Time:       time.Duration(out.stage2NS),
		WorkUnits:        out.workUnits,
		RebalanceEvents:  out.rebEvents,
		MigratedVertices: out.migrated,
	}, nil
}
