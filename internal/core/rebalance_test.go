package core

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/partition"
)

// Tests for mid-solve vertex migration (migrate.go): the off-switch must be
// byte-identical to the pre-feature solver, every (policy, seed) pair must
// be bit-identical across worker counts, collective engines, transports,
// and benign chaos, and on the planted-hub fixture the trigger must
// actually fire (so none of the above is vacuous).

// skewedGraph is the planted-hub load-imbalance fixture: under 1-D
// round-robin partitioning at P=4, every hub lands on rank 0.
func skewedGraph(t *testing.T) (*graph.Graph, graph.Membership) {
	t.Helper()
	g, truth, err := gen.PlantedHubs(2048, 32, 16, 4, 512, 3)
	if err != nil {
		t.Fatal(err)
	}
	return g, truth
}

// skewedRMAT is the second skewed fixture: a scale-9 R-MAT with the skew
// knob turned up from the Graph500 0.57 to 0.70, fattening the degree tail
// (see gen.SetSkew / EXPERIMENTS.md) without planting hubs by hand.
func skewedRMAT(t *testing.T) *graph.Graph {
	t.Helper()
	cfg := gen.Graph500RMAT(9, 11)
	cfg.EdgeFactor = 8
	if err := cfg.SetSkew(0.70); err != nil {
		t.Fatal(err)
	}
	g, err := gen.RMAT(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// rebalanceOpt is the test baseline: threshold low enough to fire on the
// skewed fixture, defaults for hysteresis/cooldown/seed.
func rebalanceOpt(p int, pk partition.Kind, policy string) Options {
	return Options{
		P:               p,
		Partitioning:    pk,
		RebalanceRatio:  1.1,
		RebalancePolicy: policy,
	}
}

func sameRun(t *testing.T, label string, got, want *Result) {
	t.Helper()
	if got.Modularity != want.Modularity {
		t.Fatalf("%s: Q %.17g, want %.17g", label, got.Modularity, want.Modularity)
	}
	for u := range want.Membership {
		if got.Membership[u] != want.Membership[u] {
			t.Fatalf("%s: vertex %d in community %d, want %d", label, u, got.Membership[u], want.Membership[u])
		}
	}
	if got.RebalanceEvents != want.RebalanceEvents || got.MigratedVertices != want.MigratedVertices {
		t.Fatalf("%s: events=%d migrated=%d, want events=%d migrated=%d", label,
			got.RebalanceEvents, got.MigratedVertices, want.RebalanceEvents, want.MigratedVertices)
	}
}

// TestRebalanceOffMatchesGolden pins the off-switch: RebalanceRatio = 0
// must reproduce the committed pre-feature golden fixtures label for label
// and bit for bit.
func TestRebalanceOffMatchesGolden(t *testing.T) {
	g := goldenGraph(t)
	for _, p := range []int{1, 2, 4} {
		res, err := Run(g, Options{P: p, RebalanceRatio: 0})
		if err != nil {
			t.Fatal(err)
		}
		wantQ, wantLabels := parseGolden(t, goldenPath(HeuristicEnhanced, p))
		if res.Modularity != wantQ {
			t.Errorf("p=%d: Q does not match pre-feature golden", p)
		}
		for u := range res.Membership {
			if res.Membership[u] != wantLabels[u] {
				t.Fatalf("p=%d vertex %d: community %d, golden %d", p, u, res.Membership[u], wantLabels[u])
			}
		}
		if res.RebalanceEvents != 0 || res.MigratedVertices != 0 {
			t.Errorf("p=%d: off run reports events=%d migrated=%d", p, res.RebalanceEvents, res.MigratedVertices)
		}
		if p > 1 && res.BalanceRatio < 1 {
			t.Errorf("p=%d: BalanceRatio = %g, want >= 1", p, res.BalanceRatio)
		}
	}
}

// TestRebalanceNoneMatchesOff checks the control arm: the "none" policy
// runs the work-vector reduction and the trigger machinery but never
// migrates, and must be bit-identical to a run with the feature off — the
// direct witness that the extended fused reduction does not perturb Q.
func TestRebalanceNoneMatchesOff(t *testing.T) {
	g, _ := skewedGraph(t)
	for _, pk := range []partition.Kind{partition.Delegate, partition.OneD} {
		for _, seq := range []bool{false, true} {
			off := Options{P: 4, Partitioning: pk, SequentialCollectives: seq}
			want, err := Run(g, off)
			if err != nil {
				t.Fatal(err)
			}
			on := rebalanceOpt(4, pk, "none")
			on.SequentialCollectives = seq
			got, err := Run(g, on)
			if err != nil {
				t.Fatal(err)
			}
			label := fmt.Sprintf("part=%v seq=%v", pk, seq)
			if got.RebalanceEvents != 0 {
				t.Fatalf("%s: none policy migrated", label)
			}
			got.RebalanceEvents, got.MigratedVertices = want.RebalanceEvents, want.MigratedVertices
			sameRun(t, label, got, want)
		}
	}
}

// TestRebalanceTriggersOnSkew asserts the determinism matrix below is not
// vacuous: on the planted-hub fixture under 1-D partitioning the greedy
// policy must actually migrate, and the final quality must stay in family
// with the non-migrating run.
func TestRebalanceTriggersOnSkew(t *testing.T) {
	g, _ := skewedGraph(t)
	off, err := Run(g, Options{P: 4, Partitioning: partition.OneD})
	if err != nil {
		t.Fatal(err)
	}
	on, err := Run(g, rebalanceOpt(4, partition.OneD, "greedy"))
	if err != nil {
		t.Fatal(err)
	}
	if on.RebalanceEvents < 1 || on.MigratedVertices < 1 {
		t.Fatalf("greedy never fired on the skewed fixture: events=%d migrated=%d (work balance %.3f)",
			on.RebalanceEvents, on.MigratedVertices, off.BalanceRatio)
	}
	if math.Abs(on.Modularity-off.Modularity) > 0.05 {
		t.Errorf("rebalanced Q %.4f drifted from static Q %.4f", on.Modularity, off.Modularity)
	}
	if on.BalanceRatio >= off.BalanceRatio {
		t.Errorf("rebalancing did not improve work balance: %.3f -> %.3f", off.BalanceRatio, on.BalanceRatio)
	}
}

// TestRebalanceDeterminism is the contract of docs/PERFORMANCE.md: any
// fixed (policy, seed) pair is bit-identical across worker counts and both
// collective engines, for every P × partitioning combination, on both the
// golden graph, the skewed planted-hub fixture, and a skewed R-MAT.
func TestRebalanceDeterminism(t *testing.T) {
	gGolden := goldenGraph(t)
	gSkew, _ := skewedGraph(t)
	gRMAT := skewedRMAT(t)
	for gi, g := range []*graph.Graph{gGolden, gSkew, gRMAT} {
		for _, pk := range []partition.Kind{partition.Delegate, partition.OneD} {
			for _, p := range []int{1, 2, 4} {
				for _, policy := range []string{"greedy", "ideal"} {
					base := rebalanceOpt(p, pk, policy)
					base.Workers = 1
					want, err := Run(g, base)
					if err != nil {
						t.Fatalf("g=%d part=%v p=%d %s: %v", gi, pk, p, policy, err)
					}
					variants := []struct {
						name string
						mut  func(*Options)
					}{
						{"workers=4", func(o *Options) { o.Workers = 4 }},
						{"seq", func(o *Options) { o.SequentialCollectives = true }},
						{"seq+workers=4", func(o *Options) { o.SequentialCollectives = true; o.Workers = 4 }},
					}
					for _, v := range variants {
						opt := base
						v.mut(&opt)
						got, err := Run(g, opt)
						if err != nil {
							t.Fatalf("g=%d part=%v p=%d %s %s: %v", gi, pk, p, policy, v.name, err)
						}
						sameRun(t, fmt.Sprintf("g=%d part=%v p=%d %s %s", gi, pk, p, policy, v.name), got, want)
					}
				}
			}
		}
	}
}

// TestRebalanceTCPBitIdentity reruns the firing configuration over the TCP
// loopback transport: same Q, same labels, bit for bit.
func TestRebalanceTCPBitIdentity(t *testing.T) {
	g, _ := skewedGraph(t)
	for _, policy := range []string{"greedy", "ideal"} {
		opt := rebalanceOpt(4, partition.OneD, policy)
		want, err := Run(g, opt)
		if err != nil {
			t.Fatal(err)
		}
		m, q := runTCPRanks(t, g, opt)
		if q != want.Modularity {
			t.Fatalf("%s: tcp Q %.17g, inproc %.17g", policy, q, want.Modularity)
		}
		for u := range want.Membership {
			if m[u] != want.Membership[u] {
				t.Fatalf("%s: tcp vertex %d in community %d, inproc %d", policy, u, m[u], want.Membership[u])
			}
		}
	}
}

// TestRebalanceChaosDeterminism extends the chaos battery to the migration
// exchanges: benign reordering, delays, duplicates, and retried transient
// send failures across the four-round migration protocol must not shift a
// single label.
func TestRebalanceChaosDeterminism(t *testing.T) {
	g, _ := skewedGraph(t)
	opt := rebalanceOpt(4, partition.OneD, "greedy")
	clean, err := Run(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	if clean.RebalanceEvents < 1 {
		t.Fatal("fixture did not trigger migration; chaos coverage is vacuous")
	}
	for seed := int64(1); seed <= 3; seed++ {
		for _, seq := range []bool{false, true} {
			o := opt
			o.SequentialCollectives = seq
			m, q := chaosRun(t, g, o, benignCoreChaos(seed))
			if q != clean.Modularity {
				t.Fatalf("seq=%v chaos seed %d: Q %.17g, clean %.17g", seq, seed, q, clean.Modularity)
			}
			for u := range m {
				if m[u] != clean.Membership[u] {
					t.Fatalf("seq=%v chaos seed %d vertex %d: community %d, clean %d",
						seq, seed, u, m[u], clean.Membership[u])
				}
			}
		}
	}
}

// TestRebalanceAggregateReconciliation runs the per-iteration aggregate
// audit (serial ground-truth refold of Σtot/size and Q) on worlds that
// migrate: the audit recomputes from the live post-migration subgraphs, so
// any double-counted or dropped vertex surfaces immediately.
func TestRebalanceAggregateReconciliation(t *testing.T) {
	testIterHook = aggregateAuditHook
	defer func() { testIterHook = nil }()
	g, _ := skewedGraph(t)
	for _, pk := range []partition.Kind{partition.Delegate, partition.OneD} {
		for _, policy := range []string{"greedy", "ideal"} {
			res, err := Run(g, rebalanceOpt(4, pk, policy))
			if err != nil {
				t.Fatalf("part=%v %s: %v", pk, policy, err)
			}
			_ = res
		}
	}
}

// TestRebalanceMessageBudget pins the collective-schedule cost of merely
// enabling the feature: on the fused path the work vector piggybacks on the
// existing per-iteration reduction (message count unchanged); the
// sequential baseline adds exactly one more allreduce (log2 P messages per
// rank). A threshold that never fires keeps migration exchanges out of the
// count. Merged (stage-2) stages run with migration off by design (see
// run.go) and are excluded via s.pol.
func TestRebalanceMessageBudget(t *testing.T) {
	g := goldenGraph(t)
	const p = 4
	for _, tc := range []struct {
		name string
		seq  bool
		want int64
	}{
		{"fused", false, 4*(p-1) + 2},
		{"sequential", true, 4*(p-1) + 5*2},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var mu sync.Mutex
			recs := make(map[*stage][]int64)
			testIterHook = func(s *stage, iter int, q float64) error {
				if s.p != p || s.pol == nil {
					return nil
				}
				snap := s.c.Stats().Snapshot()
				mu.Lock()
				recs[s] = append(recs[s], snap.MsgsSent)
				mu.Unlock()
				return nil
			}
			defer func() { testIterHook = nil }()
			opt := rebalanceOpt(p, partition.OneD, "greedy")
			opt.RebalanceRatio = 1e9 // trigger machinery on, but never fires
			opt.SequentialCollectives = tc.seq
			if _, err := Run(g, opt); err != nil {
				t.Fatal(err)
			}
			pairs := 0
			for _, ms := range recs {
				for i := 1; i < len(ms); i++ {
					if d := ms[i] - ms[i-1]; d != tc.want {
						t.Fatalf("iteration sent %d messages per rank, want %d", d, tc.want)
					}
					pairs++
				}
			}
			if pairs == 0 {
				t.Fatal("no stage ran two consecutive iterations; the budget was never checked")
			}
		})
	}
}
