package core

import (
	"fmt"
	"math"
	"time"

	"repro/internal/comm"
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/trace"
)

// innerStallLimit is the number of consecutive non-improving iterations
// after which a clustering stage stops (see cluster).
const innerStallLimit = 3

// doSweep dispatches between the batch sweep and an incremental session's
// active-set-restricted sweep (session.go). Batch runs leave sweepFn nil, so
// their path is untouched.
func (s *stage) doSweep() ([]hubProposal, int) {
	if s.sweepFn != nil {
		return s.sweepFn()
	}
	return s.sweep()
}

// cluster runs the parallel local clustering loop of one stage until no
// vertex moves anywhere in the world (or the iteration cap is reached).
// Every iteration follows the paper's Algorithm 2: refresh community
// aggregates, sweep for best moves, agree on delegate moves, swap ghost
// states, flush Σtot deltas, and reduce the global modularity.
func (s *stage) cluster() (stageResult, error) {
	var res stageResult
	if s.m2 == 0 {
		// Edgeless graph: every vertex stays a singleton and Q is 0 by
		// convention. All ranks share m2, so skipping is consistent.
		res.Iters = 1
		return res, nil
	}
	// Stall detection: the heuristics guarantee the modularity plateaus,
	// but a handful of vertices can keep exchanging equally-good labels
	// forever; stop once Q has not improved for a few iterations.
	bestQ := math.Inf(-1)
	stall := 0
	for iter := 1; ; iter++ {
		workStart := s.work
		snapStart := s.c.Stats().Snapshot()
		s.tm.Start(trace.Other)
		if s.pol != nil && iter > 1 {
			// Rebalance against the previous iteration's replicated work
			// vector. Running after the stats snapshots means migration
			// traffic and decode work are priced into this iteration's
			// simulated times like any other exchange.
			if err := s.maybeRebalance(iter); err != nil {
				return res, err
			}
		}
		if err := s.fetchCommunityInfo(); err != nil {
			return res, err
		}
		s.tm.Start(trace.FindBest)
		props, movedLocal := s.doSweep()
		s.tm.Start(trace.BroadcastDelegates)
		hubMoved, err := s.delegateExchange(props)
		if err != nil {
			return res, err
		}
		s.tm.Start(trace.SwapGhost)
		if err := s.ghostSwap(); err != nil {
			return res, err
		}
		s.tm.Start(trace.Other)
		if err := s.flushDeltas(); err != nil {
			return res, err
		}
		// Per-iteration scalars. Local values are all computed before the
		// reduction so one fused collective can carry them:
		//   - localModularity: this rank's exact Q contribution;
		//   - iterWork: deterministic work units of the iteration (the
		//     simulated parallel time is the per-iteration max across
		//     ranks × WorkUnitNS — wall clock cannot separate ranks
		//     sharing the host's cores, see EXPERIMENTS.md);
		//   - commNS: the α-β traffic cost of the iteration's exchanges
		//     (the fused collective's own frames are not priced — see
		//     EXPERIMENTS.md on the Fig. 8 comm breakdown).
		local := s.localModularity()
		iterWork := s.work - workStart
		snapEnd := s.c.Stats().Snapshot()
		commNS := s.opt.Comm.costNS(snapEnd.MsgsSent-snapStart.MsgsSent,
			snapEnd.BytesSent-snapStart.BytesSent)
		var q float64
		var movedTotal, maxWork, maxComm int64
		if s.opt.SequentialCollectives {
			// Unfused baseline: four back-to-back scalar allreduces. Each
			// float combine tree matches its fused counterpart, so both
			// paths produce bit-identical results.
			var err error
			if q, err = comm.AllreduceFloat64Sum(s.c, local); err != nil {
				return res, err
			}
			if movedTotal, err = comm.AllreduceInt64Sum(s.c, int64(movedLocal+hubMoved)); err != nil {
				return res, err
			}
			if maxWork, err = comm.AllreduceInt64Max(s.c, iterWork); err != nil {
				return res, err
			}
			if maxComm, err = comm.AllreduceInt64Max(s.c, commNS); err != nil {
				return res, err
			}
			if s.pol != nil {
				// Sequential counterpart of the work-vector piggyback: one
				// extra sparse elementwise-max allreduce replicates the
				// per-rank work vector for the rebalance planner.
				for i := range s.workVec {
					s.workVec[i] = 0
				}
				s.workVec[s.rnk] = iterWork
				wv, err := comm.AllreduceInt64SliceMax(s.c, s.workVec)
				if err != nil {
					return res, err
				}
				copy(s.workVec, wv)
			}
		} else if s.pol != nil {
			// Fused reduction extended with the per-rank work vector: same
			// message count as AllreduceIterStats, and bit-identical scalar
			// results, so enabling rebalancing never perturbs Q.
			st, err := comm.AllreduceIterStatsWork(s.c, comm.IterStats{
				Moved:  int64(movedLocal + hubMoved),
				Work:   iterWork,
				CommNS: commNS,
				Q:      local,
			}, s.workVec)
			if err != nil {
				return res, err
			}
			q, movedTotal, maxWork, maxComm = st.Q, st.Moved, st.Work, st.CommNS
		} else {
			st, err := comm.AllreduceIterStats(s.c, comm.IterStats{
				Moved:  int64(movedLocal + hubMoved),
				Work:   iterWork,
				CommNS: commNS,
				Q:      local,
			})
			if err != nil {
				return res, err
			}
			q, movedTotal, maxWork, maxComm = st.Q, st.Moved, st.Work, st.CommNS
		}
		if s.pol != nil && s.rnk == 0 {
			if max, sum := s.workStats(); sum > 0 {
				trace.Eventf("balance", "iter=%d work-max=%d work-mean=%.1f ratio=%.3f",
					iter, max, float64(sum)/float64(s.p), float64(max)*float64(s.p)/float64(sum))
			}
		}
		if debugInvariants {
			if err := s.checkInvariants(iter); err != nil {
				return res, err
			}
		}
		if hook := testIterHook; hook != nil {
			if err := hook(s, iter, q); err != nil {
				return res, err
			}
		}
		s.tm.Stop()
		res.SimNS += maxWork * WorkUnitNS
		res.CommSimNS += maxComm
		s.bd.Iters++
		res.Iters = iter
		res.Q = q
		if s.opt.TrackTrace {
			res.QTrace = append(res.QTrace, q)
		}
		if q > bestQ+s.opt.MinGain {
			bestQ = q
			stall = 0
		} else {
			stall++
		}
		if movedTotal == 0 || stall >= innerStallLimit || iter >= s.opt.MaxInnerIters {
			return res, nil
		}
	}
}

// Result reports a distributed run.
type Result struct {
	// Membership maps every original vertex to its community
	// (dense labels 0..K-1).
	Membership graph.Membership
	// Modularity is the algorithm's own final global modularity (computed
	// by the distributed reduction, not recomputed from Membership).
	Modularity float64
	// QTrace is the global modularity after every inner clustering
	// iteration across all stages (only filled with Options.TrackTrace).
	QTrace []float64
	// LevelMemberships is the dendrogram — the membership of the original
	// vertices after each clustering stage (only with Options.TrackLevels).
	LevelMemberships []graph.Membership
	// Stage1Iters is the number of inner iterations of the first
	// (delegate) clustering stage.
	Stage1Iters int
	// OuterLevels counts clustering stages (1 = only the delegate stage).
	OuterLevels int
	// HubCount is the number of delegated vertices.
	HubCount int
	// Census is the partitioning census (per-rank arcs and ghosts).
	Census partition.Census

	// Timings. Stage1Time covers the delegate clustering stage; Stage2Time
	// covers merging plus all later stages. Both are the maximum across
	// ranks; TotalTime is wall clock for the whole world.
	PartitionTime time.Duration
	Stage1Time    time.Duration
	Stage2Time    time.Duration
	TotalTime     time.Duration

	// Stage1CommSim and Stage2CommSim are the simulated communication
	// times under Options.Comm (α-β pricing of the measured traffic).
	Stage1CommSim time.Duration
	Stage2CommSim time.Duration

	// Stage1Sim and Stage2Sim are the simulated parallel clustering times:
	// the sum over iterations of the per-iteration maximum (across ranks)
	// of per-rank busy time. On a single-core host the wall-clock times
	// serialize all ranks; these are the scalability measures the
	// experiments report (see EXPERIMENTS.md).
	Stage1Sim time.Duration
	Stage2Sim time.Duration

	// Breakdown is the per-phase wall time of the first stage on rank 0;
	// on a shared host the communication phases include scheduling time.
	Breakdown trace.Breakdown

	// BusyBreakdown is the per-phase simulated compute time of the first
	// stage on rank 0: deterministic work units × WorkUnitNS (Figure 8(b)
	// uses this; see EXPERIMENTS.md).
	BusyBreakdown trace.Breakdown

	// CommStats is the per-rank traffic census of the whole run.
	CommStats comm.WorldStats

	// BalanceRatio is the whole-run work balance: max over ranks of total
	// deterministic work units divided by the mean (1.0 = perfect balance).
	// It is what mid-solve rebalancing tries to push toward 1.
	BalanceRatio float64
	// RebalanceEvents counts migration events across all stages (0 when
	// rebalancing is off or never triggered).
	RebalanceEvents int
	// MigratedVertices counts vertices migrated world-wide across all
	// stages.
	MigratedVertices int64
}

// rankOut is what each rank contributes to the final Result.
type rankOut struct {
	tracked  []int // original vertex IDs this rank reports
	labels   []int // final community labels, parallel to tracked
	stage1   stageResult
	qtrace   []float64
	finalQ   float64
	outer    int
	stage1NS int64
	stage2NS int64
	sim1NS   int64
	sim2NS   int64
	comm1NS  int64
	comm2NS  int64
	bd       trace.Breakdown
	busyBD   trace.Breakdown
	levels   [][]int // per-stage label snapshots of tracked vertices

	workUnits int64 // total deterministic work units across all stages
	rebEvents int   // migration events (identical on every rank)
	migrated  int64 // vertices migrated world-wide (identical on every rank)
}

// DefaultDHigh is the hub-threshold default shared by every entry point.
// The paper sets dhigh = p in a regime where p (thousands) far exceeds the
// average degree, so hubs are a thin tail. Floor the default at four times
// the average degree so the hub fraction stays comparably thin at small p;
// explicit DHigh values are always honored. Out-of-core drivers call this
// with the sharded file's counts so the streaming partitioner sees the
// same threshold Run would derive.
func DefaultDHigh(p, n int, arcs int64) int {
	if p < 1 || n <= 0 {
		return 0
	}
	d := p
	if floor := 4 * int(arcs) / n; floor > d {
		d = floor
	}
	return d
}

func defaultDHigh(opt *Options, n int, arcs int64) {
	if opt.DHigh <= 0 {
		opt.DHigh = DefaultDHigh(opt.P, n, arcs)
	}
}

// Run executes the full distributed Louvain algorithm on g with opt.P ranks
// simulated as goroutines over the in-process transport.
func Run(g *graph.Graph, opt Options) (*Result, error) {
	defaultDHigh(&opt, g.NumVertices(), g.NumArcs())
	opt, err := opt.withDefaults()
	if err != nil {
		return nil, err
	}
	t0 := trace.Now()
	layout, err := partition.Build(g, partition.Options{
		P: opt.P, Kind: opt.Partitioning, DHigh: opt.DHigh, Workers: opt.Workers,
	})
	if err != nil {
		return nil, err
	}
	partTime := trace.Since(t0)
	res, err := RunLayout(layout, opt)
	if err != nil {
		return nil, err
	}
	res.PartitionTime = partTime
	return res, nil
}

// RunLayout executes the distributed algorithm from a prebuilt partition
// layout — the out-of-core entry point, where the layout came from
// partition.BuildStreaming and no in-RAM Graph exists. The Result is
// identical to Run of the graph the layout was cut from (PartitionTime is
// left zero; the caller timed the build). opt.P may be zero (it then
// follows the layout) but must otherwise match; an unset DHigh inherits
// the layout's threshold so session heuristics see the partitioner's
// value.
func RunLayout(layout *partition.Layout, opt Options) (*Result, error) {
	if layout == nil || len(layout.Parts) == 0 {
		return nil, fmt.Errorf("core: RunLayout needs a non-empty layout")
	}
	if opt.P == 0 {
		opt.P = layout.P
	}
	if opt.P != layout.P {
		return nil, fmt.Errorf("core: Options.P = %d but layout has %d ranks", opt.P, layout.P)
	}
	if opt.DHigh <= 0 {
		opt.DHigh = layout.DHigh
	}
	opt, err := opt.withDefaults()
	if err != nil {
		return nil, err
	}
	nGlobal := layout.Parts[0].GlobalVertices

	outs := make([]*rankOut, opt.P)
	tStart := trace.Now()
	stats, err := comm.RunWorldStats(opt.P, func(c comm.Comm) error {
		o, err := runRank(c, layout.Parts[c.Rank()], opt)
		if err != nil {
			return fmt.Errorf("rank %d: %w", c.Rank(), err)
		}
		outs[c.Rank()] = o
		return nil
	})
	totalTime := trace.Since(tStart)
	if err != nil {
		return nil, err
	}

	res := &Result{
		Membership:    make(graph.Membership, nGlobal),
		TotalTime:     totalTime,
		CommStats:     stats,
		HubCount:      len(layout.Hubs),
		Census:        layout.Census(),
		Breakdown:     outs[0].bd,
		BusyBreakdown: outs[0].busyBD,
		Stage1Iters:   outs[0].stage1.Iters,
		OuterLevels:   outs[0].outer,
		Modularity:    outs[0].finalQ,
		QTrace:        outs[0].qtrace,
	}
	for _, o := range outs {
		for i, u := range o.tracked {
			res.Membership[u] = o.labels[i]
		}
		if d := time.Duration(o.stage1NS); d > res.Stage1Time {
			res.Stage1Time = d
		}
		if d := time.Duration(o.stage2NS); d > res.Stage2Time {
			res.Stage2Time = d
		}
	}
	var wmax, wsum int64
	for _, o := range outs {
		wsum += o.workUnits
		if o.workUnits > wmax {
			wmax = o.workUnits
		}
	}
	if wsum > 0 {
		res.BalanceRatio = float64(wmax) * float64(len(outs)) / float64(wsum)
	}
	res.RebalanceEvents = outs[0].rebEvents
	res.MigratedVertices = outs[0].migrated
	res.Stage1Sim = time.Duration(outs[0].sim1NS)
	res.Stage2Sim = time.Duration(outs[0].sim2NS)
	res.Stage1CommSim = time.Duration(outs[0].comm1NS)
	res.Stage2CommSim = time.Duration(outs[0].comm2NS)
	res.Membership.Normalize()
	if opt.TrackLevels && len(outs[0].levels) > 0 {
		nLevels := len(outs[0].levels)
		for l := 0; l < nLevels; l++ {
			m := make(graph.Membership, nGlobal)
			for _, o := range outs {
				for i, u := range o.tracked {
					m[u] = o.levels[l][i]
				}
			}
			m.Normalize()
			res.LevelMemberships = append(res.LevelMemberships, m)
		}
	}
	return res, nil
}

// runRank is the per-rank algorithm: stage 1 with delegates, then
// merge/recluster rounds without delegates until modularity stops improving
// (Algorithm 1). The body lives in Session.solve (session.go); the batch
// path drives the Session without installing its resident serving state, so
// batch results and message schedules are unchanged.
func runRank(c comm.Comm, sg *partition.Subgraph, opt Options) (*rankOut, error) {
	ses, err := NewSession(c, sg, opt)
	if err != nil {
		return nil, err
	}
	defer ses.Close()
	return ses.solve()
}
