package core

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/comm"
	"repro/internal/partition"
	"repro/internal/trace"
	"repro/internal/wire"
)

// Session is the resumable per-rank state of the distributed Louvain solver.
// It is the refactor seam between the batch CLI and the resident serving
// layer (cmd/dserver): both drive the same object.
//
// The batch path (core.Run / core.RunRank) constructs a Session and calls
// solve(), which runs the hierarchical solve of Algorithm 1 exactly as
// before — the Session adds no collectives and no state to that path, so
// batch results and message schedules are untouched.
//
// The serving path calls Solve(), which additionally installs a resident
// flat stage over the original graph: the converged hierarchy is projected
// back to a single community assignment in original-vertex space (community
// IDs are representative vertices — the minimum original vertex of each
// final community — so community c stays owned by rank c mod p). The rank
// then stays resident, answering queries from the installed stage and
// applying batched edge updates with ApplyUpdates, which re-clusters
// *incrementally*: only vertices within Options.UpdateKHops hops of a
// changed edge seed the sweep queue, and the stage-1 kernels, worker pool
// and overlapped collectives are reused as-is through the stage's session
// hooks (sweepFn/hubActive/movedHubs/onGhostChange in state.go).
//
// Incremental quality drifts from the full-solve oracle; the Session tracks
// that drift (cumulative |ΔQ| plus the cumulative fraction of vertices
// re-examined) and ApplyUpdates reports NeedFull once either crosses its
// Options threshold. The fallback itself is the driver's call: Solve() on
// the mutated subgraphs re-runs the full hierarchy and resets the drift.
//
// Like every SPMD object in this repository, all ranks must call the
// collective-bearing methods (Solve, ApplyUpdates, Close is local) in the
// same program order with consistent arguments.
type Session struct {
	c   comm.Comm
	sg  *partition.Subgraph
	opt Options
	n   int
	p   int
	rnk int

	st  *stage   // resident flat stage; nil until Solve() installs it
	out *rankOut // result of the last hierarchical solve

	// rev maps each non-owned locally known vertex (ghost or hub) to the
	// owned vertices adjacent to it: the activation fan-in used when a
	// remote label change arrives (onGhostChange) or a replicated hub move
	// lands. Owned adjacency is complete, so rev covers every such pair.
	rev map[int][]int

	q          float64 // current global modularity (replicated)
	driftQ     float64 // cumulative |ΔQ| since the last full solve
	driftTouch float64 // cumulative touched-vertex fraction since last full solve

	// Active-set machinery of the incremental sweep. pendMark/pendList
	// accumulate vertices to examine next iteration (set semantics, so
	// activation order — which varies with the overlapped engine's arrival
	// order — cannot affect the result); curActive is the drained, sorted
	// set the Gauss-Seidel pass walks. hubActive is shared with the stage's
	// hub kernel (per-rank, no agreement needed: inactive ranks propose
	// negInf and the delegate reduction ignores them).
	pendMark  []bool
	pendList  []int
	curActive []int
	hubActive []bool

	// bfsMark/bfsList: per-batch visited set of the k-hop seeding BFS.
	bfsMark []bool
	bfsList []int

	// touchMark/touchList: per-batch dedup of re-examined owned vertices
	// (the drift statistic counts each vertex once per batch).
	touchMark []bool
	touchList []int

	newGhosts []int // ghosts discovered by the current batch, labels pending

	batchMoved   int64
	batchTouched int64
}

// EdgeOp is one edge mutation of an update batch. U and V are global vertex
// IDs (U != V; the ID space is fixed at partitioning time). Insert adds W
// (> 0) to the edge's weight, creating it if absent. Del removes the edge
// entirely; W must carry the edge's full current weight — the serving
// driver validates ops against its authoritative edge ledger before
// dispatching, so the Session never needs a discovery round to find it.
// Every rank must receive the identical batch (replicated input).
type EdgeOp struct {
	U, V int
	W    float64
	Del  bool
}

// UpdateResult reports one applied batch. Moved/Touched are world totals;
// Q is the new global modularity; all fields are identical on every rank.
type UpdateResult struct {
	// Moved counts vertices that changed community while re-clustering.
	Moved int64
	// Touched counts distinct vertices the incremental sweep re-examined.
	Touched int64
	// Q is the global modularity after the batch.
	Q float64
	// Iters is the number of incremental clustering iterations run.
	Iters int
	// NeedFull reports that cumulative drift crossed Options.DriftQ or
	// Options.DriftTouched: the caller should re-solve (Session.Solve)
	// to re-pin quality. The decision is replicated.
	NeedFull bool
}

// NewSession wraps a rank's subgraph for solving and serving. The Session
// owns sg from here on: ApplyUpdates mutates it (pass
// partition.Subgraph.CloneForServing when the caller's copy must stay
// pristine — the batch path never mutates, so core.Run passes layout parts
// directly).
func NewSession(c comm.Comm, sg *partition.Subgraph, opt Options) (*Session, error) {
	if opt.P == 0 {
		opt.P = c.Size()
	}
	if opt.P != c.Size() {
		return nil, fmt.Errorf("core: Options.P = %d but communicator has %d ranks", opt.P, c.Size())
	}
	opt, err := opt.withDefaults()
	if err != nil {
		return nil, err
	}
	return &Session{
		c:   c,
		sg:  sg,
		opt: opt,
		n:   sg.GlobalVertices,
		p:   c.Size(),
		rnk: c.Rank(),
	}, nil
}

// Close releases the resident stage's worker goroutines. Local (no
// collectives); the Session is unusable afterwards.
func (s *Session) Close() {
	if s.st != nil {
		s.st.close()
		s.st = nil
	}
}

// Solve runs the full hierarchical solve on the current subgraph and
// installs the resident serving state, resetting the drift counters. It is
// both the initial solve and the drift fallback: after ApplyUpdates reports
// NeedFull, calling Solve on every rank re-clusters the mutated graph from
// scratch (the partition layout — ownership and the delegate set — is kept;
// re-partitioning requires a fresh world).
func (s *Session) Solve() error {
	out, err := s.solve()
	if err != nil {
		return err
	}
	s.out = out
	return s.install()
}

// solve is the per-rank hierarchical algorithm: stage 1 with delegates,
// then merge/recluster rounds without delegates until modularity stops
// improving (Algorithm 1). It is the former runRank body, verbatim: the
// batch path calls it directly and is byte-identical to pre-Session builds.
func (s *Session) solve() (*rankOut, error) {
	c, sg, opt := s.c, s.sg, s.opt
	if opt.CommDeadline > 0 {
		// Endpoint-wide default deadline: every Recv of the run — including
		// those inside the collectives — fails with comm.ErrTimeout instead
		// of blocking forever once a peer stops responding. Transports
		// without deadline support keep unbounded blocking.
		comm.SetRecvTimeout(c, opt.CommDeadline)
	}
	p := c.Size()
	tracked := append([]int(nil), sg.Owned...)
	for _, h := range sg.Hubs {
		if h%p == c.Rank() {
			tracked = append(tracked, h)
		}
	}
	cur := append([]int(nil), tracked...) // current coarse vertex of each tracked original vertex

	st := newStage(c, sg, opt)
	cs := st
	// cs tracks the live stage; close releases its intra-rank worker
	// goroutines (the stage's state stays readable for label resolution).
	defer func() { cs.close() }()
	t1 := trace.Now()
	res1, err := st.cluster()
	if err != nil {
		return nil, err
	}
	out := &rankOut{
		tracked:  tracked,
		stage1:   res1,
		qtrace:   append([]float64(nil), res1.QTrace...),
		finalQ:   res1.Q,
		outer:    1,
		stage1NS: int64(trace.Since(t1)),
		sim1NS:   res1.SimNS,
		comm1NS:  res1.CommSimNS,
		bd:       st.bd,
		busyBD:   st.workBreakdown(),
	}
	out.workUnits += st.work
	out.rebEvents += st.reb.events
	out.migrated += st.reb.migrated

	// Current global vertex count (needed to detect a no-op merge).
	ownCount, err := comm.AllreduceInt64Sum(c, int64(len(sg.Owned)))
	if err != nil {
		return nil, err
	}
	curCount := int(ownCount) + len(sg.Hubs)

	t2 := trace.Now()
	defer func() { out.stage2NS = int64(trace.Since(t2)) }()

	prevQ := res1.Q
	snapshot := func() {
		if opt.TrackLevels {
			out.levels = append(out.levels, append([]int(nil), cur...))
		}
	}
	for {
		if opt.MaxOuterLevels > 0 && out.outer >= opt.MaxOuterLevels {
			cur, err = cs.resolveQueries(cur, cs.ownerOf, func(x int) int { return int(cs.comm[x]) })
			if err != nil {
				return nil, err
			}
			out.labels = cur
			snapshot()
			return out, nil
		}
		newSG, k, err := cs.merge()
		if err != nil {
			return nil, err
		}
		cur, err = cs.resolveQueries(cur, cs.ownerOf, func(x int) int { return int(cs.dense[cs.comm[x]]) })
		if err != nil {
			return nil, err
		}
		snapshot()
		if k <= 1 || k == curCount {
			// Fully merged, or merging achieved nothing: done.
			out.labels = cur
			return out, nil
		}
		curCount = k

		// Merged stages run with migration off: community ownership (c%p)
		// already spreads the coarse graph evenly, and the few remaining
		// iterations cannot amortize a migration event's traffic — measured
		// on the planted-hub benchmark, coarse-stage migration only ever
		// added cost. Work units still accrue to the run's BalanceRatio.
		opt2 := opt
		opt2.RebalanceRatio = 0
		st2 := newStage(c, newSG, opt2)
		st2.ms = cs.ms // successive merge levels reuse the grown scratch
		r2, err := st2.cluster()
		if err != nil {
			st2.close()
			return nil, err
		}
		cs.close()
		cs = st2
		out.workUnits += st2.work
		out.rebEvents += st2.reb.events
		out.migrated += st2.reb.migrated
		out.outer++
		out.qtrace = append(out.qtrace, r2.QTrace...)
		out.finalQ = r2.Q
		out.sim2NS += r2.SimNS
		out.comm2NS += r2.CommSimNS
		if r2.Q-prevQ < opt.MinGain {
			// Keep this stage's (possibly tiny) improvement, then stop.
			cur, err = cs.resolveQueries(cur, cs.ownerOf, func(x int) int { return int(cs.comm[x]) })
			if err != nil {
				return nil, err
			}
			out.labels = cur
			snapshot()
			return out, nil
		}
		prevQ = r2.Q
	}
}

// install projects the converged hierarchy back onto the original graph and
// builds the resident flat stage the serving path queries and updates.
//
// Community IDs of the resident stage are *representative vertices*: the
// global minimum original vertex of each final community. That keeps
// community c owned by rank c mod p (the invariant every aggregate exchange
// relies on) without a separate community ID space. Two collectives compute
// the representatives, then the stage is rebuilt with exact aggregates and
// replicated hub/ghost labels, and the drift counters reset.
func (s *Session) install() error {
	seq := s.opt.SequentialCollectives
	tracked, labels := s.out.tracked, s.out.labels

	// Exchange 1: representative of each final community label L = the
	// minimum tracked vertex with that label, computed at rank L%p.
	// Min-combine is order-independent, so arrival order cannot matter.
	localMin := make(map[int]int)
	var keys []int
	for i, v := range tracked {
		l := labels[i]
		if m, ok := localMin[l]; !ok || v < m {
			if !ok {
				keys = append(keys, l)
			}
			localMin[l] = v
		}
	}
	sort.Ints(keys)
	outBufs := make([][]byte, s.p)
	bufs := make([]*wire.Buffer, s.p)
	for r := range bufs {
		bufs[r] = wire.NewBuffer(0)
	}
	for _, l := range keys {
		b := bufs[l%s.p]
		b.PutVarint(int64(l))
		b.PutVarint(int64(localMin[l]))
	}
	for r := range bufs {
		outBufs[r] = bufs[r].Bytes()
	}
	repOf := make(map[int]int)
	err := a2aFunc(s.c, seq, outBufs, func(src int, payload []byte) error {
		rd := wire.NewReader(payload)
		for rd.Remaining() > 0 {
			l := int(rd.Varint())
			v := int(rd.Varint())
			if m, ok := repOf[l]; !ok || v < m {
				repOf[l] = v
			}
		}
		return rd.Err()
	})
	if err != nil {
		return err
	}

	// Exchange 2: resolve every tracked vertex's label to its representative.
	reps, err := resolveQueries(s.c, labels,
		func(l int) int { return l % s.p },
		func(l int) int { return repOf[l] }, seq)
	if err != nil {
		return err
	}

	// Fresh flat stage over the (possibly mutated) original subgraph. The
	// resident stage never migrates — static v mod p ownership is what the
	// update mutators and the query API assume.
	if s.st != nil {
		s.st.close()
	}
	opt2 := s.opt
	opt2.RebalanceRatio = 0
	st := newStage(s.c, s.sg, opt2)
	s.st = st

	// Authoritative aggregates: zero this rank's community slots, then
	// rebuild them through the delta ledger exactly like a live iteration
	// (flushDeltas applies in rank order — bit-identical accumulation).
	for c := s.rnk; c < s.n; c += s.p {
		st.ownTot[c] = 0
		st.ownSize[c] = 0
	}
	nOwned := len(s.sg.Owned)
	for i, v := range tracked {
		st.comm[v] = int32(reps[i])
		var k float64
		if i < nOwned {
			k = s.sg.OwnedWDeg[i]
		} else {
			hi, ok := s.hubIndex(v)
			if !ok {
				return fmt.Errorf("core: rank %d: tracked vertex %d is neither owned nor a hub", s.rnk, v)
			}
			k = s.sg.HubWDeg[hi]
		}
		st.addDelta(reps[i], k, 1)
	}
	if err := st.flushDeltas(); err != nil {
		return err
	}

	// Hub labels are replicated state: every rank learns every hub's
	// representative from the hub's owner (disjoint writes, rank order).
	hubBuf := wire.NewBuffer(0)
	for i := nOwned; i < len(tracked); i++ {
		hi, _ := s.hubIndex(tracked[i])
		hubBuf.PutUvarint(uint64(hi))
		hubBuf.PutVarint(int64(reps[i]))
	}
	hubFrames, err := comm.Allgather(s.c, hubBuf.Bytes())
	if err != nil {
		return err
	}
	for r := 0; r < s.p; r++ {
		rd := wire.NewReader(hubFrames[r])
		for rd.Remaining() > 0 {
			hi := int(rd.Uvarint())
			rep := int(rd.Varint())
			st.comm[s.sg.Hubs[hi]] = int32(rep)
		}
		if err := rd.Err(); err != nil {
			return err
		}
	}

	// Ghost labels: push every subscribed owned vertex's label through the
	// regular ghost swap (the hooks are not installed yet, so this cannot
	// trigger spurious activations).
	st.changed = st.changed[:0]
	for _, u := range s.sg.Owned {
		if len(s.sg.Subscribers[u]) > 0 {
			st.changed = append(st.changed, u)
		}
	}
	if err := st.ghostSwap(); err != nil {
		return err
	}

	// Exact modularity of the installed state (0 by convention on an
	// edgeless graph — m2 is replicated, so every rank skips together).
	var q float64
	if st.m2 > 0 {
		if q, err = st.globalModularity(); err != nil {
			return err
		}
	}
	s.q = q
	s.driftQ = 0
	s.driftTouch = 0

	// Activation fan-in and active-set scratch.
	s.rev = make(map[int][]int)
	for i, u := range s.sg.Owned {
		for _, a := range s.sg.AdjOwned[i] {
			t := a.To
			if t == u {
				continue
			}
			if _, hub := s.hubIndex(t); hub || t%s.p != s.rnk {
				s.addRev(t, u)
			}
		}
	}
	if s.pendMark == nil {
		s.pendMark = make([]bool, s.n)
		s.bfsMark = make([]bool, s.n)
		s.touchMark = make([]bool, s.n)
		s.hubActive = make([]bool, len(s.sg.Hubs))
	}
	s.pendList = s.pendList[:0]
	s.bfsList = s.bfsList[:0]
	s.touchList = s.touchList[:0]
	for i := range s.pendMark {
		s.pendMark[i] = false
		s.bfsMark[i] = false
		s.touchMark[i] = false
	}
	for i := range s.hubActive {
		s.hubActive[i] = false
	}

	// Session hooks: from here on the stage's clustering loop sweeps only
	// the active set and reports remote changes back for activation.
	st.sweepFn = s.sweepActive
	st.hubActive = s.hubActive
	st.onGhostChange = s.onGhostChanged
	return nil
}

// Modularity returns the current global modularity (replicated; valid after
// Solve).
func (s *Session) Modularity() float64 { return s.q }

// Drift returns the cumulative drift since the last full solve: the summed
// |ΔQ| across batches and the summed touched-vertex fraction.
func (s *Session) Drift() (dq, dtouched float64) { return s.driftQ, s.driftTouch }

// CommunityOf returns vertex v's current community (its representative
// vertex) when this rank owns v (v mod p); ok is false otherwise — exactly
// one rank answers any vertex.
func (s *Session) CommunityOf(v int) (int, bool) {
	if s.st == nil || v < 0 || v >= s.n || v%s.p != s.rnk {
		return 0, false
	}
	return int(s.st.comm[v]), true
}

// NeighborhoodOf returns this rank's share of v's adjacency: the complete
// adjacency when v is an owned low vertex, the local arc share when v is a
// hub, nil otherwise. The caller merges shares across ranks for hubs.
func (s *Session) NeighborhoodOf(v int) []partition.Arc {
	if s.st == nil || v < 0 || v >= s.n {
		return nil
	}
	if hi, ok := s.hubIndex(v); ok {
		return append([]partition.Arc(nil), s.sg.AdjHub[hi]...)
	}
	if i, ok := s.sg.OwnedIndex(v); ok && v%s.p == s.rnk {
		return append([]partition.Arc(nil), s.sg.AdjOwned[i]...)
	}
	return nil
}

// Tracked returns the original vertices this rank reports and their current
// community labels (representative vertices, not normalized). The caller
// gathers all ranks' pieces to assemble a full membership.
func (s *Session) Tracked() (vertices, labels []int) {
	if s.st == nil {
		return nil, nil
	}
	vertices = s.out.tracked
	labels = make([]int, len(vertices))
	for i, v := range vertices {
		labels[i] = int(s.st.comm[v])
	}
	return vertices, labels
}

// ValidateOps checks an update batch against the Session's ID space:
// in-range endpoints, no self-loops, positive weights. It does not check
// edge existence — that is the serving driver's ledger's job.
func (s *Session) ValidateOps(ops []EdgeOp) error {
	for i, op := range ops {
		if op.U < 0 || op.U >= s.n || op.V < 0 || op.V >= s.n {
			return fmt.Errorf("core: op %d: vertex out of range [0,%d): %d-%d", i, s.n, op.U, op.V)
		}
		if op.U == op.V {
			return fmt.Errorf("core: op %d: self-loop %d-%d not supported", i, op.U, op.V)
		}
		if op.W <= 0 {
			return fmt.Errorf("core: op %d: weight %g, want > 0", i, op.W)
		}
	}
	return nil
}

// ApplyUpdates applies one replicated batch of edge mutations and
// re-clusters incrementally: the sweep queue is seeded with the vertices
// within Options.UpdateKHops hops of any changed edge, and the stage's
// clustering loop (kernels, worker pool, collectives) runs restricted to
// the active set until no vertex moves. Every rank must call it with the
// identical, pre-validated batch.
func (s *Session) ApplyUpdates(ops []EdgeOp) (UpdateResult, error) {
	var zero UpdateResult
	if s.st == nil {
		return zero, fmt.Errorf("core: ApplyUpdates before Solve")
	}
	if err := s.ValidateOps(ops); err != nil {
		return zero, err
	}
	s.beginBatch()
	s.applyOps(ops)
	s.registerSubscriptions(ops)
	if err := s.resolveNewGhosts(); err != nil {
		return zero, err
	}
	if err := s.st.flushDeltas(); err != nil {
		return zero, err
	}
	if err := s.seedFromOps(ops); err != nil {
		return zero, err
	}
	qBefore := s.q
	res, err := s.st.cluster()
	if err != nil {
		return zero, err
	}
	s.finishBatch()
	var localQ float64
	if s.st.m2 > 0 {
		localQ = s.st.localModularity()
	}
	stats, err := comm.AllreduceUpdateStats(s.c, comm.UpdateStats{
		Moved:   s.batchMoved,
		Touched: s.batchTouched,
		Q:       localQ,
	})
	if err != nil {
		return zero, err
	}
	s.q = stats.Q
	s.driftQ += math.Abs(s.q - qBefore)
	s.driftTouch += float64(stats.Touched) / float64(s.n)
	return UpdateResult{
		Moved:    stats.Moved,
		Touched:  stats.Touched,
		Q:        s.q,
		Iters:    res.Iters,
		NeedFull: s.driftQ > s.opt.DriftQ || s.driftTouch > s.opt.DriftTouched,
	}, nil
}

// beginBatch resets the per-batch scratch (O(touched) from the last batch).
// Pending activations deliberately survive across batches: label changes in
// a batch's final iteration activate neighbors that the next batch's sweep
// picks up.
func (s *Session) beginBatch() {
	s.batchMoved, s.batchTouched = 0, 0
	for _, v := range s.touchList {
		s.touchMark[v] = false
	}
	s.touchList = s.touchList[:0]
	for i := range s.hubActive {
		s.hubActive[i] = false
	}
	s.newGhosts = s.newGhosts[:0]
}

// finishBatch drains the final iteration's replicated hub moves (their
// neighbor activations persist into the next batch) and folds active hubs
// into the touched count (each counted by its owner).
func (s *Session) finishBatch() {
	s.processMovedHubs()
	for hi, a := range s.hubActive {
		if a && s.sg.Hubs[hi]%s.p == s.rnk {
			s.batchTouched++
		}
	}
}

// applyOps mutates the subgraph and the stage's bookkeeping for one
// replicated batch. Every rank applies the identical ops in the identical
// order to its own share, so no agreement is needed; aggregate corrections
// go through the delta ledger and are flushed once per batch.
func (s *Session) applyOps(ops []EdgeOp) {
	st := s.st
	for _, op := range ops {
		s.applyArc(op.U, op.V, op.W, op.Del)
		s.applyArc(op.V, op.U, op.W, op.Del)
		dw := op.W
		if op.Del {
			dw = -op.W
		}
		s.adjustDegree(op.U, dw)
		s.adjustDegree(op.V, dw)
		st.m2 += 2 * dw
		s.sg.TotalWeight2 += 2 * dw
	}
}

// applyArc places or removes the directed arc x→y. Placement is
// deterministic: a low vertex's arcs live with its owner (complete
// adjacency); a hub's inserted arc goes to rank y%p's share (which owns y,
// so hub inserts never create ghosts). Deletion removes every matching
// entry in whatever share holds one — an edge inserted after partitioning
// may live on a different rank than its Build-time twin, and the kernels
// only ever sum entries, so entry multiplicity is benign.
func (s *Session) applyArc(x, y int, w float64, del bool) {
	sg := s.sg
	if hi, hub := s.hubIndex(x); hub {
		if del {
			sg.AdjHub[hi] = dropArcs(sg.AdjHub[hi], y)
		} else if y%s.p == s.rnk {
			sg.AdjHub[hi] = upsertArc(sg.AdjHub[hi], y, w)
		}
		return
	}
	if x%s.p != s.rnk {
		return
	}
	i, ok := sg.OwnedIndex(x)
	if !ok {
		return
	}
	if del {
		sg.AdjOwned[i] = dropArcs(sg.AdjOwned[i], y)
		// The ghost entry and its subscription (if y became unreferenced)
		// are left in place: a stale ghost only costs its label refresh,
		// and the next full solve rebuilds the sets exactly.
		return
	}
	sg.AdjOwned[i] = upsertArc(sg.AdjOwned[i], y, w)
	if _, hub := s.hubIndex(y); hub {
		s.addRev(y, x)
		return
	}
	if y%s.p != s.rnk {
		sg.AddGhost(y)
		s.addRev(y, x)
		if s.st.comm[y] < 0 {
			s.newGhosts = append(s.newGhosts, y)
		}
	}
}

// adjustDegree applies a weighted-degree change to vertex x: the replicated
// hub table on every rank, the owned table on x's owner. The owner also
// feeds x's community aggregate through the delta ledger, and — for the
// low-vertex case — registers any new cross-rank subscription implied by
// the batch (derivable locally because the batch is replicated).
func (s *Session) adjustDegree(x int, dw float64) {
	st, sg := s.st, s.sg
	if hi, hub := s.hubIndex(x); hub {
		sg.HubWDeg[hi] += dw
		if x%s.p == s.rnk {
			st.addDelta(int(st.comm[x]), dw, 0)
		}
		return
	}
	if x%s.p != s.rnk {
		return
	}
	if i, ok := sg.OwnedIndex(x); ok {
		sg.OwnedWDeg[i] += dw
		st.addDelta(int(st.comm[x]), dw, 0)
	}
}

// registerSubscriptions walks a batch once more on the *owner* side: for
// every inserted arc x→y where x is a low vertex owned remotely and y is a
// low vertex owned here, rank x%p now holds y as a ghost, so this rank must
// push y's future label changes there.
func (s *Session) registerSubscriptions(ops []EdgeOp) {
	for _, op := range ops {
		if op.Del {
			continue
		}
		s.subscribeFor(op.U, op.V)
		s.subscribeFor(op.V, op.U)
	}
}

// subscribeFor handles the arc x→y for the owner of y.
func (s *Session) subscribeFor(x, y int) {
	if y%s.p != s.rnk {
		return
	}
	if _, hub := s.hubIndex(y); hub {
		return
	}
	if _, hub := s.hubIndex(x); hub {
		return // hub arcs to y live on this rank already
	}
	if r := x % s.p; r != s.rnk {
		s.sg.Subscribe(y, r)
	}
}

// resolveNewGhosts fetches labels for ghosts discovered by this batch from
// their owners. All ranks call it every batch (the exchange is collective)
// even when their own list is empty.
func (s *Session) resolveNewGhosts() error {
	st := s.st
	labels, err := st.resolveQueries(s.newGhosts,
		func(v int) int { return v % s.p },
		func(v int) int { return int(st.comm[v]) })
	if err != nil {
		return err
	}
	for i, g := range s.newGhosts {
		st.comm[g] = int32(labels[i])
	}
	return nil
}

// seedFromOps activates every vertex within Options.UpdateKHops hops of a
// changed edge: a distributed BFS of exactly k synchronized rounds (one
// all-to-all per round, so all ranks stay collective-symmetric). Reached
// low vertices are routed to their owners; reached hubs are broadcast so
// every rank expands its local share of the hub's arcs. All set insertions
// are idempotent, so arrival order cannot affect the resulting active set.
func (s *Session) seedFromOps(ops []EdgeOp) error {
	st, sg := s.st, s.sg
	var frontier []int    // owned low vertices to expand next round
	var hubFrontier []int // hub indices to expand next round
	reach := func(x int) {
		if s.bfsMark[x] {
			return
		}
		s.bfsMark[x] = true
		s.bfsList = append(s.bfsList, x)
		if hi, hub := s.hubIndex(x); hub {
			s.hubActive[hi] = true
			hubFrontier = append(hubFrontier, hi)
			return
		}
		if x%s.p == s.rnk {
			s.pend(x)
			frontier = append(frontier, x)
		}
	}
	// Hop 0: the endpoints (replicated, so every rank marks hubs and its
	// own vertices without any exchange).
	for _, op := range ops {
		reach(op.U)
		reach(op.V)
	}
	targets := make([][]int, s.p)
	for hop := 0; hop < s.opt.UpdateKHops; hop++ {
		for r := range targets {
			targets[r] = targets[r][:0]
		}
		route := func(t int) {
			if _, hub := s.hubIndex(t); hub {
				for r := 0; r < s.p; r++ {
					targets[r] = append(targets[r], t)
				}
				return
			}
			targets[t%s.p] = append(targets[t%s.p], t)
		}
		for _, u := range frontier {
			if i, ok := sg.OwnedIndex(u); ok {
				for _, a := range sg.AdjOwned[i] {
					if a.To != u {
						route(a.To)
					}
				}
			}
		}
		for _, hi := range hubFrontier {
			for _, a := range sg.AdjHub[hi] {
				if a.To != sg.Hubs[hi] {
					route(a.To)
				}
			}
		}
		frontier = frontier[:0]
		hubFrontier = hubFrontier[:0]
		bufs := st.sendScratch()
		for r := 0; r < s.p; r++ {
			ts := targets[r]
			sort.Ints(ts)
			// In-place dedup: repeated targets within a round are common
			// (shared neighborhoods) and pure overhead on the wire.
			out := ts[:0]
			for j, t := range ts {
				if j > 0 && ts[j-1] == t {
					continue
				}
				out = append(out, t)
			}
			targets[r] = out
			st.sendBufs[r].PutInts(out)
			bufs[r] = st.sendBufs[r].Bytes()
		}
		in, err := st.alltoallv(bufs)
		if err != nil {
			return err
		}
		for r := 0; r < s.p; r++ {
			rd := wire.NewReader(in[r])
			for _, t := range rd.Ints() {
				reach(t)
			}
			if err := rd.Err(); err != nil {
				return err
			}
		}
	}
	// Reset the visited set for the next batch (O(visited)).
	for _, v := range s.bfsList {
		s.bfsMark[v] = false
	}
	s.bfsList = s.bfsList[:0]
	return nil
}

// sweepActive is the stage's sweepFn: one Gauss-Seidel pass over the drained
// active set (sorted, so the visit order — and therefore the float state —
// is identical regardless of how activations arrived), followed by the
// regular parallel hub-proposal kernel restricted by hubActive.
func (s *Session) sweepActive() ([]hubProposal, int) {
	st := s.st
	s.processMovedHubs()
	st.changed = st.changed[:0]
	cur := s.curActive[:0]
	for _, v := range s.pendList {
		s.pendMark[v] = false
		cur = append(cur, v)
	}
	s.pendList = s.pendList[:0]
	sort.Ints(cur)
	s.curActive = cur

	moved := 0
	acc := st.accs[0]
	work := int64(0)
	for _, u := range cur {
		i, ok := s.sg.OwnedIndex(u)
		if !ok {
			continue
		}
		s.touch(u)
		ku := s.sg.OwnedWDeg[i]
		adj := s.sg.AdjOwned[i]
		work += int64(len(adj)) + 4
		target, ok := st.bestMove(u, ku, adj, acc)
		if !ok {
			continue
		}
		cu := int(st.comm[u])
		st.comm[u] = int32(target)
		st.applyLocalMove(cu, target, ku)
		st.changed = append(st.changed, u)
		moved++
		s.batchMoved++
		// The move changes u's and both communities' aggregates: re-examine
		// u and its local neighbors next iteration. Remote neighbors are
		// activated by their own ranks when u's new label arrives
		// (onGhostChanged), and neighboring hubs propose from every rank
		// that holds a share.
		s.pend(u)
		for _, a := range adj {
			t := a.To
			if t == u {
				continue
			}
			if hi, hub := s.hubIndex(t); hub {
				s.hubActive[hi] = true
				continue
			}
			if t%s.p == s.rnk {
				s.pend(t)
			}
		}
	}

	st.pool.parFor(st.hubChunks, st.hubKernel)
	for c := 0; c < st.hubChunks; c++ {
		work += st.chunkArcs[c]
	}
	st.addWork(trace.FindBest, work)
	return st.props, moved
}

// processMovedHubs drains the previous iteration's replicated hub moves:
// each counts toward the owner's move statistic and activates the hub's
// local neighborhood (owned neighbors via rev, neighboring hubs via the
// local share) for the next sweep.
func (s *Session) processMovedHubs() {
	st := s.st
	for _, hi := range st.movedHubs {
		h := s.sg.Hubs[hi]
		if h%s.p == s.rnk {
			s.batchMoved++
		}
		s.hubActive[hi] = true
		for _, u := range s.rev[h] {
			s.pend(u)
		}
		for _, a := range s.sg.AdjHub[hi] {
			if hj, hub := s.hubIndex(a.To); hub {
				s.hubActive[hj] = true
			}
		}
	}
	st.movedHubs = st.movedHubs[:0]
}

// onGhostChanged is the stage's ghost-swap hook: a remote vertex's label
// changed, so the owned vertices adjacent to it re-evaluate next iteration.
func (s *Session) onGhostChanged(v int) {
	for _, u := range s.rev[v] {
		s.pend(u)
	}
}

// pend schedules owned vertex v for the next incremental sweep (idempotent).
func (s *Session) pend(v int) {
	if s.pendMark[v] {
		return
	}
	s.pendMark[v] = true
	s.pendList = append(s.pendList, v)
}

// touch counts owned vertex v once per batch for the drift statistic.
func (s *Session) touch(v int) {
	if s.touchMark[v] {
		return
	}
	s.touchMark[v] = true
	s.touchList = append(s.touchList, v)
	s.batchTouched++
}

// hubIndex returns v's index in the (sorted, replicated) hub directory.
func (s *Session) hubIndex(v int) (int, bool) {
	hubs := s.sg.Hubs
	i := sort.SearchInts(hubs, v)
	if i < len(hubs) && hubs[i] == v {
		return i, true
	}
	return 0, false
}

// addRev records owned vertex u as an activation target of non-owned vertex
// t (duplicate-free; the lists are per-vertex neighborhoods, so the linear
// scan is cheap).
func (s *Session) addRev(t, u int) {
	for _, x := range s.rev[t] {
		if x == u {
			return
		}
	}
	s.rev[t] = append(s.rev[t], u)
}

// upsertArc returns a copy of adj with weight w added to the entry for y
// (appended if absent). Copy-on-write keeps Build's pristine adjacency —
// possibly shared with other Subgraph clones — untouched.
func upsertArc(adj []partition.Arc, y int, w float64) []partition.Arc {
	out := append([]partition.Arc(nil), adj...)
	for j := range out {
		if out[j].To == y {
			out[j].W += w
			return out
		}
	}
	return append(out, partition.Arc{To: y, W: w})
}

// dropArcs returns a copy of adj with every entry for y removed.
func dropArcs(adj []partition.Arc, y int) []partition.Arc {
	out := make([]partition.Arc, 0, len(adj))
	for _, a := range adj {
		if a.To != y {
			out = append(out, a)
		}
	}
	return out
}
