package core

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/comm"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/partition"
)

// ---------------------------------------------------------------------------
// Harness: a resident session world over the in-process transport.

// sessionRun drives one resident world: every rank solves, then applies the
// batches in lockstep, optionally re-solving (the drift fallback) whenever a
// batch reports NeedFull. Returned slices are rank 0's replicated values.
type sessionRun struct {
	Results    []UpdateResult
	Fallbacks  []bool // parallel to Results: batch was followed by a full re-solve
	Q          float64
	Membership graph.Membership
}

func runSessionBatches(t *testing.T, g *graph.Graph, opt Options, batches [][]EdgeOp, resolveOnNeedFull bool) sessionRun {
	t.Helper()
	// Mirror Run's DHigh default so session worlds partition exactly like
	// the batch oracle they are compared against.
	if opt.DHigh <= 0 && g.NumVertices() > 0 {
		opt.DHigh = opt.P
		if floor := 4 * int(g.NumArcs()) / g.NumVertices(); floor > opt.DHigh {
			opt.DHigh = floor
		}
	}
	layout, err := partition.Build(g, partition.Options{
		P: opt.P, Kind: opt.Partitioning, DHigh: opt.DHigh, Workers: opt.Workers,
	})
	if err != nil {
		t.Fatal(err)
	}
	results := make([][]UpdateResult, opt.P)
	fallbacks := make([][]bool, opt.P)
	qs := make([]float64, opt.P)
	tracked := make([][]int, opt.P)
	labels := make([][]int, opt.P)
	err = comm.RunWorld(opt.P, func(c comm.Comm) error {
		r := c.Rank()
		ses, err := NewSession(c, layout.Parts[r].CloneForServing(), opt)
		if err != nil {
			return err
		}
		defer ses.Close()
		if err := ses.Solve(); err != nil {
			return err
		}
		for _, batch := range batches {
			res, err := ses.ApplyUpdates(batch)
			if err != nil {
				return err
			}
			results[r] = append(results[r], res)
			fell := false
			if res.NeedFull && resolveOnNeedFull {
				if err := ses.Solve(); err != nil {
					return err
				}
				fell = true
			}
			fallbacks[r] = append(fallbacks[r], fell)
		}
		qs[r] = ses.Modularity()
		tracked[r], labels[r] = ses.Tracked()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	m := make(graph.Membership, g.NumVertices())
	for r := 0; r < opt.P; r++ {
		for i, v := range tracked[r] {
			m[v] = labels[r][i]
		}
	}
	m.Normalize()
	// Replication check: every rank must have seen identical results.
	for r := 1; r < opt.P; r++ {
		if len(results[r]) != len(results[0]) {
			t.Fatalf("rank %d saw %d results, rank 0 saw %d", r, len(results[r]), len(results[0]))
		}
		for i := range results[r] {
			if results[r][i] != results[0][i] {
				t.Fatalf("batch %d: rank %d result %+v != rank 0 result %+v", i, r, results[r][i], results[0][i])
			}
		}
		if math.Float64bits(qs[r]) != math.Float64bits(qs[0]) {
			t.Fatalf("rank %d final Q %x != rank 0 %x", r, qs[r], qs[0])
		}
	}
	return sessionRun{Results: results[0], Fallbacks: fallbacks[0], Q: qs[0], Membership: m}
}

// edgeLedger mirrors the update stream on the test side, so an oracle graph
// can be rebuilt at any checkpoint.
type edgeLedger map[[2]int]float64

func ledgerOf(g *graph.Graph) edgeLedger {
	led := make(edgeLedger)
	for _, e := range g.Edges() {
		if e.U == e.V {
			continue
		}
		led[edgeKey(e.U, e.V)] += e.W
	}
	return led
}

func edgeKey(u, v int) [2]int {
	if u > v {
		u, v = v, u
	}
	return [2]int{u, v}
}

func (l edgeLedger) apply(ops []EdgeOp) {
	for _, op := range ops {
		k := edgeKey(op.U, op.V)
		if op.Del {
			delete(l, k)
		} else {
			l[k] += op.W
		}
	}
}

func (l edgeLedger) graph(t *testing.T, n int) *graph.Graph {
	t.Helper()
	edges := make([]graph.Edge, 0, len(l))
	for k, w := range l {
		edges = append(edges, graph.Edge{U: k[0], V: k[1], W: w})
	}
	g, err := graph.FromEdges(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// randomStream generates a deterministic mixed insert/delete stream against
// a ledger copy: existing edges are deleted (with their full weight),
// absent pairs inserted at weight 1.
func randomStream(g *graph.Graph, seed int64, batches, batchSize int, delFrac float64) [][]EdgeOp {
	rng := rand.New(rand.NewSource(seed))
	led := ledgerOf(g)
	n := g.NumVertices()
	out := make([][]EdgeOp, batches)
	for b := range out {
		ops := make([]EdgeOp, 0, batchSize)
		for len(ops) < batchSize {
			u := rng.Intn(n)
			v := rng.Intn(n)
			if u == v {
				continue
			}
			k := edgeKey(u, v)
			w, exists := led[k]
			if exists && rng.Float64() < delFrac {
				ops = append(ops, EdgeOp{U: u, V: v, W: w, Del: true})
				delete(led, k)
			} else if !exists {
				ops = append(ops, EdgeOp{U: u, V: v, W: 1})
				led[k] = 1
			}
		}
		out[b] = ops
	}
	return out
}

// ---------------------------------------------------------------------------
// Solve + install reproduces the batch solver.

func TestSessionInstallMatchesBatchRun(t *testing.T) {
	g := goldenGraph(t)
	for _, p := range []int{1, 2, 4} {
		opt := Options{P: p}
		batch, err := Run(g, opt)
		if err != nil {
			t.Fatal(err)
		}
		run := runSessionBatches(t, g, opt, nil, false)
		if !sameMembership(batch.Membership, run.Membership) {
			t.Errorf("p=%d: installed membership disagrees with batch Run", p)
		}
		// The installed Q is recomputed on the original graph; the batch Q
		// comes off the coarsest stage. Mathematically equal (modularity is
		// invariant under aggregation), so only float error may separate them.
		if d := math.Abs(batch.Modularity - run.Q); d > 1e-9 {
			t.Errorf("p=%d: install Q %v vs batch Q %v (|Δ|=%g)", p, run.Q, batch.Modularity, d)
		}
	}
}

// ---------------------------------------------------------------------------
// Property test: incremental quality stays pinned to the full-solve oracle.

func TestIncrementalQualityPinned(t *testing.T) {
	rmat, err := gen.RMAT(gen.Graph500RMAT(8, 7))
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		g    *graph.Graph
		p    int
	}{
		{"golden_p2", goldenGraph(t), 2},
		{"golden_p4", goldenGraph(t), 4},
		{"rmat_p4", rmat, 4},
	}
	const qSlack = 0.03 // heuristic-to-heuristic wobble allowance on top of DriftQ
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			opt := Options{P: tc.p, DHigh: 8}
			stream := randomStream(tc.g, 42, 6, 12, 0.4)
			led := ledgerOf(tc.g)
			run := runSessionBatches(t, tc.g, opt, stream, true)
			oopt, _ := opt.withDefaults()
			for i, batch := range stream {
				if run.Results[i].Touched == 0 {
					t.Errorf("batch %d: incremental sweep touched no vertices (seeding broken?)", i)
				}
				led.apply(batch)
				oracle, err := Run(led.graph(t, tc.g.NumVertices()), opt)
				if err != nil {
					t.Fatal(err)
				}
				q := run.Results[i].Q
				if run.Fallbacks[i] {
					// After a fallback the session re-solved; its Q is the
					// full-solve quality, checked on later checkpoints.
					continue
				}
				if q < oracle.Modularity-oopt.DriftQ-qSlack {
					t.Errorf("batch %d: incremental Q %.6f below oracle %.6f - bound %.3f",
						i, q, oracle.Modularity, oopt.DriftQ+qSlack)
				}
			}
		})
	}
}

// ---------------------------------------------------------------------------
// Adversarial stream: deleting a community's internal edges must force the
// drift fallback.

func TestIncrementalFallbackAdversarial(t *testing.T) {
	g, want, err := gen.Caveman(6, 8)
	if err != nil {
		t.Fatal(err)
	}
	_ = want
	opt := Options{P: 2, DHigh: 16, DriftQ: 0.02}
	// Solve once to find the largest community, then delete every internal
	// edge of it (its spanning structure) in small batches.
	base, err := Run(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[int]int{}
	for _, c := range base.Membership {
		counts[c]++
	}
	big, bigN := -1, 0
	for _, c := range base.Membership {
		if counts[c] > bigN {
			big, bigN = c, counts[c]
		}
	}
	var doomed []EdgeOp
	for _, e := range g.Edges() {
		if e.U != e.V && base.Membership[e.U] == big && base.Membership[e.V] == big {
			doomed = append(doomed, EdgeOp{U: e.U, V: e.V, W: e.W, Del: true})
		}
	}
	if len(doomed) < 4 {
		t.Fatalf("degenerate fixture: largest community (%d members) has %d internal edges", bigN, len(doomed))
	}
	var batches [][]EdgeOp
	for len(doomed) > 0 {
		n := 6
		if n > len(doomed) {
			n = len(doomed)
		}
		batches = append(batches, doomed[:n])
		doomed = doomed[n:]
	}
	run := runSessionBatches(t, g, opt, batches, false)
	triggered := false
	for _, res := range run.Results {
		if res.NeedFull {
			triggered = true
		}
	}
	if !triggered {
		t.Errorf("adversarial deletion stream never reported NeedFull (final drift should exceed DriftQ=%g)", opt.DriftQ)
	}
}

// ---------------------------------------------------------------------------
// Determinism: identical streams must produce bit-identical results across
// worker counts and across the sequential/overlapped collective engines.

func TestIncrementalDeterminism(t *testing.T) {
	g := goldenGraph(t)
	opt := Options{P: 3, DHigh: 6}
	stream := randomStream(g, 99, 4, 10, 0.3)
	var ref sessionRun
	first := true
	for _, workers := range []int{1, 4} {
		for _, seq := range []bool{false, true} {
			o := opt
			o.Workers = workers
			o.SequentialCollectives = seq
			run := runSessionBatches(t, g, o, stream, true)
			if first {
				ref = run
				first = false
				continue
			}
			for i := range ref.Results {
				a, b := ref.Results[i], run.Results[i]
				if a.Moved != b.Moved || a.Touched != b.Touched || a.Iters != b.Iters ||
					a.NeedFull != b.NeedFull || math.Float64bits(a.Q) != math.Float64bits(b.Q) {
					t.Fatalf("workers=%d seq=%v batch %d: %+v != reference %+v", workers, seq, i, b, a)
				}
			}
			if math.Float64bits(ref.Q) != math.Float64bits(run.Q) {
				t.Fatalf("workers=%d seq=%v: final Q %x != reference %x", workers, seq, run.Q, ref.Q)
			}
			if !sameMembership(ref.Membership, run.Membership) {
				t.Fatalf("workers=%d seq=%v: final membership differs from reference", workers, seq)
			}
		}
	}
}

// ---------------------------------------------------------------------------
// Transport independence: a session world over TCP loopback endpoints must
// match the in-process world bit for bit.

func TestSessionTCPMatchesInproc(t *testing.T) {
	g := goldenGraph(t)
	opt := Options{P: 2, DHigh: 6}
	stream := randomStream(g, 7, 2, 8, 0.3)
	inproc := runSessionBatches(t, g, opt, stream, false)

	layout, err := partition.Build(g, partition.Options{P: opt.P, DHigh: opt.DHigh})
	if err != nil {
		t.Fatal(err)
	}
	addrs := coreFreeAddrs(t, opt.P)
	results := make([][]UpdateResult, opt.P)
	qs := make([]float64, opt.P)
	errs := make([]error, opt.P)
	var wg sync.WaitGroup
	for r := 0; r < opt.P; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			ep, err := comm.DialTCPWorld(r, addrs)
			if err != nil {
				errs[r] = err
				return
			}
			defer ep.Close()
			ses, err := NewSession(ep, layout.Parts[r].CloneForServing(), opt)
			if err != nil {
				errs[r] = err
				return
			}
			defer ses.Close()
			if err := ses.Solve(); err != nil {
				errs[r] = err
				return
			}
			for _, batch := range stream {
				res, err := ses.ApplyUpdates(batch)
				if err != nil {
					errs[r] = err
					return
				}
				results[r] = append(results[r], res)
			}
			qs[r] = ses.Modularity()
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	for i := range inproc.Results {
		if results[0][i] != inproc.Results[i] {
			t.Fatalf("batch %d: TCP %+v != inproc %+v", i, results[0][i], inproc.Results[i])
		}
	}
	if math.Float64bits(qs[0]) != math.Float64bits(inproc.Q) {
		t.Fatalf("TCP final Q %x != inproc %x", qs[0], inproc.Q)
	}
}
