package core

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/comm"
	"repro/internal/partition"
	"repro/internal/rebalance"
	"repro/internal/trace"
	"repro/internal/wire"
)

// stage is the per-rank runtime state of one clustering stage (with or
// without delegates — a stage without delegates simply has an empty hub
// list). Community IDs live in the stage's vertex-ID space; community c is
// owned by rank c mod P, which keeps the authoritative Σtot and size for it.
//
// All hot state is kept in dense arrays indexed by vertex/community ID (the
// stage's ID space has n = sg.GlobalVertices entries), as a real MPI
// implementation would; only entries for locally known vertices and locally
// referenced communities are meaningful.
type stage struct {
	c     comm.Comm
	sg    *partition.Subgraph
	opt   Options
	m2    float64
	gamma float64 // modularity resolution γ
	p     int
	rnk   int
	n     int // vertex-ID space size of this stage

	// comm holds the community label of every locally known vertex:
	// owned low vertices, hubs (replicated), and ghosts. Entries for
	// unknown vertices are -1.
	comm []int32

	// tot and size are cached community aggregates, refreshed from the
	// community owners at the start of every iteration and adjusted
	// locally during the sweep (Gauss-Seidel within the rank). cached
	// marks valid entries; cachedList drives O(touched) reset.
	tot        []float64
	size       []int32
	cached     []bool
	cachedList []int

	// ownTot and ownSize are the authoritative aggregates for communities
	// owned by this rank (IDs ≡ rnk mod p), updated by the delta exchange.
	ownTot  []float64
	ownSize []int32

	// Pending aggregate deltas keyed by community, routed to owners at the
	// end of each iteration. deltaTouched drives O(touched) flush/reset;
	// deltaMark prevents duplicate entries when a delta transits zero.
	deltaW       []float64
	deltaN       []int32
	deltaMark    []bool
	deltaTouched []int

	// changed lists owned vertices whose label changed this iteration
	// (drives the ghost swap).
	changed []int

	// dense maps community IDs to their dense merged-graph vertex IDs;
	// populated by merge (-1 = not mapped). The backing array lives in ms
	// and is reused across merge levels.
	dense []int32

	// ms is the merge pipeline's pooled scratch (merge.go), created lazily
	// by the first merge and handed to the next level's stage by the
	// session's solve loop, so successive levels reuse the grown storage.
	ms *mergeScratch

	// rqBufs/rqFrames/rqReqs/rqPos are the resolveQueries stage scratch:
	// reply encode buffers and frame headers (the request leg uses
	// sendScratch; replies need their own set because the request frames
	// must stay intact while the streaming first leg is in flight), and
	// the per-rank routed queries and their original positions.
	rqBufs   []*wire.Buffer
	rqFrames [][]byte
	rqReqs   [][]int
	rqPos    [][]int

	// Intra-rank parallelism (pool.go). pool is nil on the serial path;
	// accs holds one gain accumulator per worker (index = worker ID), so
	// the parallel hub-proposal kernel needs no locking and the steady
	// state allocates no scratch.
	pool *workerPool
	accs []*gainAccumulator

	// Reusable communication scratch, one slot per peer rank: encode
	// buffers (Reset keeps their storage) and the frame headers handed to
	// Alltoallv. Each exchange resets and refills them; the transports
	// copy payloads on Send, so reuse after a collective returns is safe.
	sendBufs []*wire.Buffer
	frames   [][]byte

	// recvIn is the receive-side scratch handed to comm.AlltoallvInto: the
	// slice header and the self-copy backing array are reused across
	// exchanges, so steady-state iterations allocate nothing for them (the
	// peer slots are replaced by transport buffers each call).
	recvIn [][]byte

	// deltaSrc buffers flushDeltas records per source rank: the streaming
	// exchange decodes frames in arrival order, but Σtot is accumulated in
	// floating point, so the records are applied in rank order to keep the
	// sums bit-identical run to run (see docs/PERFORMANCE.md).
	deltaSrc [][]deltaRec

	// hubBuf is the reusable delegate-exchange encode buffer.
	hubBuf *wire.Buffer

	// props is the reusable hub-proposal slice returned by sweep, filled by
	// hubKernel over hubChunks chunks. The kernel closure is built once per
	// stage (the hub list is immutable) so the steady-state sweep allocates
	// nothing.
	props     []hubProposal
	hubKernel func(chunk, worker int)
	hubChunks int

	// Incremental-session hooks (session.go). All nil/empty in batch runs,
	// so the batch solver's behavior and message schedule are untouched.
	//
	// sweepFn, when set, replaces sweep() in the clustering loop (the
	// session points it at an active-set-restricted sweep). hubActive, when
	// non-nil, restricts hubKernel to the flagged hub indices — inactive
	// hubs propose negInf and therefore never move. movedHubs records the
	// hub indices delegateExchange moved this iteration (replicated: every
	// rank applies identical hub moves). onGhostChange is called by
	// ghostSwap for each ghost whose label changed (the session activates
	// the ghost's local neighbors with it).
	sweepFn       func() ([]hubProposal, int)
	hubActive     []bool
	movedHubs     []int
	onGhostChange func(v int)

	// qKernel/qChunks: the globalModularity arc-scan kernel over the
	// concatenated owned+hub index space, likewise built once per stage.
	qKernel func(chunk, worker int)
	qChunks int

	// encKernel/ansKernel chunk fetchCommunityInfo's request-encode and
	// answer loops by peer rank; recvFrames carries the received frames
	// into ansKernel between the collectives.
	encKernel  func(r, worker int)
	ansKernel  func(r, worker int)
	recvFrames [][]byte

	// needMark/reqs are the dense dedup scratch of neededCommunities:
	// needMark[c] marks community c as already requested this round, and
	// reqs[r] accumulates the requests owned by rank r. Both are reset in
	// O(touched) at the end of each call.
	needMark []bool
	reqs     [][]int

	// chunkQ/chunkWork hold per-chunk partial results of parFor kernels,
	// combined on the main goroutine in chunk order (bit-identical float
	// reductions at every worker count). chunkWork is sized max(p,
	// maxChunks) because the encode/answer kernels chunk by peer rank.
	chunkQ    [maxChunks]float64
	chunkArcs [maxChunks]int64
	chunkWork []int64

	// Mid-solve rebalancing state (migrate.go). pol is nil when rebalancing
	// is off — the entire feature then costs one nil check per iteration.
	// owner is the replicated vertex-ownership directory, allocated on the
	// first migration (nil = static v mod p ownership); community ownership
	// (commOwner) stays c mod p regardless — only vertices migrate, the
	// aggregate tables do not. workVec is the replicated per-rank work
	// vector filled by the fused reduction, the policy's planning input.
	pol     rebalance.Policy
	owner   []int32
	workVec []int64
	reb     rebState

	bd trace.Breakdown
	tm *trace.Timer

	// work accumulates deterministic compute-work units (arcs scanned,
	// values encoded/decoded/applied); it feeds the simulated parallel
	// time. Wall-clock measurement is useless here: ranks share the host's
	// cores and preempt each other mid-segment, so timing is dominated by
	// scheduling noise. Work units are exact and reproducible; WorkUnitNS
	// converts them to nominal time. workPhase splits the same count by
	// algorithm phase (Figure 8(b)).
	work      int64
	workPhase [trace.NumPhases]int64
}

// rebState tracks the rebalance trigger across iterations. Every field is
// derived from replicated data (the allreduced work vector and the shared
// iteration counter), so all ranks hold identical copies without any
// agreement collective.
type rebState struct {
	// over counts consecutive over-threshold iterations (hysteresis).
	over int
	// lastIter is the iteration of the last migration event; initialized
	// far in the past so the cooldown never blocks the first event.
	lastIter int
	// events counts migration events fired this stage.
	events int
	// migrated counts vertices migrated world-wide this stage.
	migrated int64
}

// WorkUnitNS is the nominal cost of one work unit (one arc scanned, one
// value encoded/decoded/applied), calibrated against the sequential
// baseline's per-arc sweep cost on this class of hardware. Only ratios of
// simulated times are meaningful; the constant fixes their scale.
const WorkUnitNS = 10

// addWork records n compute-work units in phase ph.
func (s *stage) addWork(ph trace.Phase, n int64) {
	s.work += n
	s.workPhase[ph] += n
}

func newStage(c comm.Comm, sg *partition.Subgraph, opt Options) *stage {
	n := sg.GlobalVertices
	s := &stage{
		c: c, sg: sg, opt: opt,
		m2:        sg.TotalWeight2,
		gamma:     opt.Resolution,
		p:         c.Size(),
		rnk:       c.Rank(),
		n:         n,
		comm:      make([]int32, n),
		tot:       make([]float64, n),
		size:      make([]int32, n),
		cached:    make([]bool, n),
		ownTot:    make([]float64, n),
		ownSize:   make([]int32, n),
		deltaW:    make([]float64, n),
		deltaN:    make([]int32, n),
		deltaMark: make([]bool, n),
		needMark:  make([]bool, n),
		hubBuf:    wire.NewBuffer(0),
	}
	nw := opt.Workers
	if nw <= 0 {
		nw = defaultWorkers(s.p)
	}
	s.pool = newWorkerPool(nw)
	s.accs = make([]*gainAccumulator, nw)
	for w := range s.accs {
		s.accs[w] = newGainAccumulator(n)
	}
	s.sendBufs = make([]*wire.Buffer, s.p)
	for r := range s.sendBufs {
		s.sendBufs[r] = wire.NewBuffer(0)
	}
	s.frames = make([][]byte, s.p)
	s.rqBufs = make([]*wire.Buffer, s.p)
	for r := range s.rqBufs {
		s.rqBufs[r] = wire.NewBuffer(0)
	}
	s.rqFrames = make([][]byte, s.p)
	s.rqReqs = make([][]int, s.p)
	s.rqPos = make([][]int, s.p)
	s.recvIn = make([][]byte, s.p)
	s.deltaSrc = make([][]deltaRec, s.p)
	s.reqs = make([][]int, s.p)
	nh := len(sg.Hubs)
	s.props = make([]hubProposal, nh)
	s.hubChunks = numChunks(nh)
	s.hubKernel = func(chunk, worker int) {
		lo, hi := chunkSpan(nh, s.hubChunks, chunk)
		w := int64(0)
		acc := s.accs[worker]
		for i := lo; i < hi; i++ {
			if s.hubActive != nil && !s.hubActive[i] {
				// Incremental sessions restrict proposals to active hubs; a
				// negInf proposal never wins the reduction, so inactive hubs
				// stay put without perturbing the collective schedule.
				w++
				s.props[i] = hubProposal{improvement: negInf, target: int(s.comm[s.sg.Hubs[i]])}
				continue
			}
			w += int64(len(s.sg.AdjHub[i])) + 1
			s.props[i] = s.hubProposal(s.sg.Hubs[i], s.sg.HubWDeg[i], s.sg.AdjHub[i], acc)
		}
		s.chunkArcs[chunk] = w
	}
	s.buildQKernel()
	s.encKernel = func(r, _ int) {
		b := s.sendBufs[r]
		b.PutInts(s.reqs[r])
		s.frames[r] = b.Bytes()
		s.chunkWork[r] = int64(len(s.reqs[r]))
	}
	s.ansKernel = func(r, _ int) {
		var rd wire.Reader
		rd.Reset(s.recvFrames[r])
		nReq := int(rd.Uvarint())
		b := s.sendBufs[r]
		for j := 0; j < nReq && rd.Err() == nil; j++ {
			c := int(rd.Varint())
			b.PutF64(s.ownTot[c])
			b.PutVarint(int64(s.ownSize[c]))
		}
		if rd.Err() != nil {
			s.chunkWork[r] = -1
			return
		}
		s.frames[r] = b.Bytes()
		s.chunkWork[r] = int64(nReq)
	}
	cw := s.p
	if cw < maxChunks {
		cw = maxChunks
	}
	s.chunkWork = make([]int64, cw)
	if opt.rebalanceOn() {
		// Policy validity was checked in withDefaults.
		s.pol, _ = rebalance.ByName(opt.RebalancePolicy)
		s.workVec = make([]int64, s.p)
		s.reb.lastIter = -1 << 30
	}
	s.tm = trace.NewTimer(&s.bd)
	for i := range s.comm {
		s.comm[i] = -1
	}
	// Every vertex starts in its own singleton community.
	for i, u := range sg.Owned {
		s.comm[u] = int32(u)
		s.ownTot[u] = sg.OwnedWDeg[i]
		s.ownSize[u] = 1
	}
	for i, h := range sg.Hubs {
		s.comm[h] = int32(h)
		if h%s.p == s.rnk {
			s.ownTot[h] = sg.HubWDeg[i]
			s.ownSize[h] = 1
		}
	}
	for _, g := range sg.Ghosts {
		s.comm[g] = int32(g)
	}
	return s
}

// buildQKernel (re)builds the globalModularity arc-scan kernel over the
// concatenated owned+hub index space. The chunk count is a pure function
// of the current owned-vertex count, and the closure snapshots the owned
// tables it scans, so it is rebuilt whenever a migration changes them
// (newStage calls it once for the static case).
func (s *stage) buildQKernel() {
	sg := s.sg
	nOwned := len(sg.Owned)
	nv := nOwned + len(sg.Hubs)
	s.qChunks = numChunks(nv)
	s.qKernel = func(chunk, _ int) {
		lo, hi := chunkSpan(nv, s.qChunks, chunk)
		var in float64
		arcs := int64(0)
		for i := lo; i < hi; i++ {
			var cv int32
			var adj []partition.Arc
			if i < nOwned {
				cv = s.comm[sg.Owned[i]]
				adj = sg.AdjOwned[i]
			} else {
				cv = s.comm[sg.Hubs[i-nOwned]]
				adj = sg.AdjHub[i-nOwned]
			}
			for _, a := range adj {
				if s.comm[a.To] == cv {
					in += a.W
				}
			}
			arcs += int64(len(adj))
		}
		s.chunkQ[chunk] = in
		s.chunkArcs[chunk] = arcs
	}
}

// close releases the stage's worker goroutines. The stage's state stays
// readable (runRank still resolves labels through it); only parallel
// kernels become unavailable.
func (s *stage) close() {
	s.pool.close()
	s.pool = nil
}

// commOwner returns the rank that owns community (or vertex) id c.
func (s *stage) commOwner(c int) int { return c % s.p }

// lookupTot returns the cached Σtot of community c; the fetch step
// guarantees every candidate community is cached, so a miss is a bug.
func (s *stage) lookupTot(c int) float64 {
	if !s.cached[c] {
		panic(fmt.Sprintf("core: rank %d missing Σtot for community %d", s.rnk, c))
	}
	return s.tot[c]
}

// cachedSize returns the cached member count of community c (0 when the
// community is not cached; used only by heuristic guards).
func (s *stage) cachedSize(c int) int32 {
	if !s.cached[c] {
		return 0
	}
	return s.size[c]
}

// resetCache invalidates all cached community aggregates in O(touched).
func (s *stage) resetCache() {
	for _, c := range s.cachedList {
		s.cached[c] = false
	}
	s.cachedList = s.cachedList[:0]
}

// installCache stores a fetched aggregate.
func (s *stage) installCache(c int, tot float64, size int32) {
	if !s.cached[c] {
		s.cached[c] = true
		s.cachedList = append(s.cachedList, c)
	}
	s.tot[c] = tot
	s.size[c] = size
}

// neededCommunities returns the deduplicated set of community IDs
// referenced by any locally known vertex, grouped by owning rank. The
// returned per-rank slices are stage-owned scratch, valid until the next
// call.
func (s *stage) neededCommunities() [][]int {
	for r := range s.reqs {
		s.reqs[r] = s.reqs[r][:0]
	}
	note := func(v int) {
		c := int(s.comm[v])
		if s.needMark[c] {
			return
		}
		s.needMark[c] = true
		s.reqs[c%s.p] = append(s.reqs[c%s.p], c)
	}
	for _, u := range s.sg.Owned {
		note(u)
	}
	for _, h := range s.sg.Hubs {
		note(h)
	}
	for _, g := range s.sg.Ghosts {
		note(g)
	}
	for r := range s.reqs {
		sort.Ints(s.reqs[r])
		for _, c := range s.reqs[r] {
			s.needMark[c] = false
		}
	}
	return s.reqs
}

// addDelta records that community c gained dw weighted degree and dn
// members (negative for departures).
func (s *stage) addDelta(c int, dw float64, dn int32) {
	if !s.deltaMark[c] {
		s.deltaMark[c] = true
		s.deltaTouched = append(s.deltaTouched, c)
	}
	s.deltaW[c] += dw
	s.deltaN[c] += dn
}

// applyLocalMove updates the local caches and delta ledger for a vertex of
// weighted degree k moving from community from to community to.
func (s *stage) applyLocalMove(from, to int, k float64) {
	s.tot[from] -= k
	s.size[from]--
	if s.cached[to] {
		s.tot[to] += k
		s.size[to]++
	}
	s.addDelta(from, -k, -1)
	s.addDelta(to, k, 1)
}

// workBreakdown returns the per-phase simulated compute time of the stage
// (work units × WorkUnitNS).
func (s *stage) workBreakdown() trace.Breakdown {
	var b trace.Breakdown
	for i := range s.workPhase {
		b.Durations[i] = time.Duration(s.workPhase[i] * WorkUnitNS)
	}
	b.Iters = s.bd.Iters
	return b
}

// stageResult summarizes a converged clustering stage.
type stageResult struct {
	Q      float64
	Iters  int
	QTrace []float64
	// SimNS is the simulated parallel compute time of the stage in
	// nanoseconds: Σ over iterations of max-across-ranks work × WorkUnitNS.
	SimNS int64
	// CommSimNS is the simulated communication time: Σ over iterations of
	// max-across-ranks α-β cost of the rank's sent traffic.
	CommSimNS int64
}
