package core

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/comm"
	"repro/internal/trace"
	"repro/internal/wire"
)

// sendScratch resets the stage's pooled encode buffers and frame headers
// and returns the frame slice to hand to Alltoallv. The buffers keep their
// storage across iterations (wire.Buffer.Reset), so steady-state exchanges
// allocate nothing on the send side; the transports copy payloads on Send,
// so reuse after a collective returns is safe.
//
//perf:noalloc
func (s *stage) sendScratch() [][]byte {
	for r := 0; r < s.p; r++ {
		s.sendBufs[r].Reset()
		s.frames[r] = nil
	}
	return s.frames
}

// a2a and a2aFunc dispatch between the overlapped collectives and the
// sequential baselines. Every exchange in this package goes through them,
// so Options.SequentialCollectives flips the whole algorithm between the
// two engines in one place; the determinism tests prove both produce
// bit-identical results.
func a2a(c comm.Comm, seq bool, out, in [][]byte) ([][]byte, error) {
	if seq {
		return comm.AlltoallvSeq(c, out)
	}
	return comm.AlltoallvInto(c, out, in)
}

// a2aFunc streams inbound frames to fn. Overlapped, the callback order is
// self first then arrival order, so fn must be order-independent (disjoint
// writes per source) or buffer per source and apply in rank order itself;
// the sequential fallback calls fn in rank order.
func a2aFunc(c comm.Comm, seq bool, out [][]byte, fn func(src int, payload []byte) error) error {
	if !seq {
		return comm.AlltoallvFunc(c, out, fn)
	}
	in, err := comm.AlltoallvSeq(c, out)
	if err != nil {
		return err
	}
	for r := 0; r < c.Size(); r++ {
		if err := fn(r, in[r]); err != nil {
			return err
		}
	}
	return nil
}

func (s *stage) alltoallv(out [][]byte) ([][]byte, error) {
	return a2a(s.c, s.opt.SequentialCollectives, out, s.recvIn)
}

func (s *stage) alltoallvFunc(out [][]byte, fn func(src int, payload []byte) error) error {
	return a2aFunc(s.c, s.opt.SequentialCollectives, out, fn)
}

// fetchCommunityInfo refreshes the Σtot/size caches for every community
// referenced locally: requests are routed to community owners via an
// all-to-all exchange and answered from the authoritative tables. The
// request-encode and answer loops are chunked by peer rank and run on the
// worker pool (each chunk touches only its own rank's buffers); the
// collectives themselves stay on the stage's main goroutine.
func (s *stage) fetchCommunityInfo() error {
	reqs := s.neededCommunities()
	out := s.sendScratch()
	s.pool.parFor(s.p, s.encKernel)
	nReq := int64(0)
	for r := 0; r < s.p; r++ {
		nReq += s.chunkWork[r]
	}
	s.addWork(trace.Other, nReq)
	in, err := s.alltoallv(out)
	if err != nil {
		return err
	}
	// Answer each request list in order. The received frames are owned by
	// this rank, so the encode buffers can be reused for the replies.
	replies := s.sendScratch()
	s.recvFrames = in
	s.pool.parFor(s.p, s.ansKernel)
	s.recvFrames = nil
	for r := 0; r < s.p; r++ {
		if s.chunkWork[r] < 0 {
			// Re-decode serially to surface the deterministic wire error.
			rd := wire.NewReader(in[r])
			n := int(rd.Uvarint())
			for j := 0; j < n && rd.Err() == nil; j++ {
				rd.Varint()
			}
			if err := rd.Err(); err != nil {
				return err
			}
			return fmt.Errorf("core: rank %d: malformed request frame from rank %d", s.rnk, r)
		}
		s.addWork(trace.Other, s.chunkWork[r])
	}
	// Install fresh values as each answer frame arrives: every community
	// appears in exactly one request bucket, so the per-source installs are
	// disjoint and arrival-order application is deterministic. The callback
	// runs on this goroutine only (installCache appends to the shared
	// touched list).
	s.resetCache()
	var rd wire.Reader
	err = s.alltoallvFunc(replies, func(src int, payload []byte) error {
		rd.Reset(payload)
		for _, c := range reqs[src] {
			s.installCache(c, rd.F64(), int32(rd.Varint()))
		}
		return rd.Err()
	})
	if err != nil {
		return err
	}
	s.addWork(trace.Other, nReq)
	return nil
}

// hubProposal is one rank's best move for one hub, computed from the rank's
// local share of the hub's arcs. Improvement is the modularity-gain
// advantage over keeping the hub in its current community; negative or
// -Inf proposals never win.
type hubProposal struct {
	improvement float64
	target      int
}

// delegateExchange reduces per-rank hub proposals to a global winner per hub
// (max improvement, ties to the smaller target label) and applies the
// winning moves identically on every rank. It returns the number of hubs
// that moved *and are owned by this rank*, so the world-wide sum counts each
// hub once. Only the hub's owner emits aggregate deltas, for the same
// reason.
func (s *stage) delegateExchange(props []hubProposal) (int, error) {
	nh := len(s.sg.Hubs)
	if nh == 0 {
		return 0, nil
	}
	s.hubBuf.Reset()
	for _, pr := range props {
		s.hubBuf.PutF64(pr.improvement)
		s.hubBuf.PutVarint(int64(pr.target))
	}
	// Encode + apply are O(hubs) on every rank; the reduction itself adds
	// O(hubs · log p) combine work, charged here as well.
	s.addWork(trace.BroadcastDelegates, int64(nh)*int64(2+log2ceil(s.p)))
	// The proposal combine is an exact semilattice (max improvement, ties
	// to the smaller label), so the reduction algorithm is free to vary by
	// size: recursive doubling for thin hub tails, the pipelined ring once
	// the payload is bandwidth-bound. The record count nh is replicated on
	// every rank, as AllreduceBytesAuto's selection requires.
	var win []byte
	var err error
	if s.opt.SequentialCollectives {
		win, err = comm.AllreduceBytes(s.c, s.hubBuf.Bytes(), combineHubProposals)
	} else {
		win, err = comm.AllreduceBytesAuto(s.c, s.hubBuf.Bytes(), nh, splitHubProposals, combineHubProposals)
	}
	if err != nil {
		return 0, err
	}
	var rd wire.Reader
	rd.Reset(win)
	moved := 0
	s.movedHubs = s.movedHubs[:0]
	for i, h := range s.sg.Hubs {
		imp := rd.F64()
		target := int(rd.Varint())
		cur := int(s.comm[h])
		if !(imp > gainEps) || target == cur {
			continue
		}
		// A hub's community state is inherently cross-rank, so hub moves
		// take the minimum-label constraint under the enhanced and strict
		// heuristics. The decision is identical on every rank because all
		// inputs are replicated.
		if s.opt.Heuristic != HeuristicSimple && target > cur {
			continue
		}
		k := s.sg.HubWDeg[i]
		s.comm[h] = int32(target)
		s.movedHubs = append(s.movedHubs, i)
		if s.cached[cur] {
			s.tot[cur] -= k
			s.size[cur]--
		}
		if s.cached[target] {
			s.tot[target] += k
			s.size[target]++
		}
		if s.commOwner(h) == s.rnk {
			s.addDelta(cur, -k, -1)
			s.addDelta(target, k, 1)
			moved++
		}
	}
	return moved, rd.Err()
}

func log2ceil(v int) int {
	n := 0
	for 1<<n < v {
		n++
	}
	return n
}

// splitHubProposals cuts an encoded proposal vector into n record-aligned
// segments for the pipelined ring reduction. Records are (F64, Varint)
// pairs, so ranks encode the same record in different byte counts; the
// split therefore walks record boundaries and assigns records to segments
// by the replicated record count alone, which is identical on every rank
// as comm.SplitFunc requires.
func splitHubProposals(data []byte, n int) [][]byte {
	var rd wire.Reader
	rd.Reset(data)
	offs := make([]int, 0, 64)
	for rd.Remaining() > 0 {
		offs = append(offs, len(data)-rd.Remaining())
		rd.F64()
		rd.Varint()
	}
	nrec := len(offs)
	offs = append(offs, len(data))
	segs := make([][]byte, n)
	for i := 0; i < n; i++ {
		lo := i * nrec / n
		hi := (i + 1) * nrec / n
		segs[i] = data[offs[lo]:offs[hi]]
	}
	return segs
}

// combineHubProposals merges two encoded proposal vectors elementwise,
// keeping the higher improvement and breaking ties toward the smaller
// target label. It is associative and commutative as AllreduceBytes
// requires.
func combineHubProposals(a, b []byte) []byte {
	ra, rb := wire.NewReader(a), wire.NewReader(b)
	out := wire.NewBuffer(len(a))
	for ra.Remaining() > 0 {
		ia, ta := ra.F64(), ra.Varint()
		ib, tb := rb.F64(), rb.Varint()
		if ib > ia || (ib == ia && tb < ta) {
			ia, ta = ib, tb
		}
		out.PutF64(ia)
		out.PutVarint(ta)
	}
	return out.Bytes()
}

// ghostSwap pushes the labels of changed owned vertices to every rank that
// holds them as ghosts, and applies the symmetric updates received.
func (s *stage) ghostSwap() error {
	bufs := s.sendScratch()
	sent := int64(0)
	for _, u := range s.changed {
		subs := s.sg.Subscribers[u]
		if len(subs) == 0 {
			continue
		}
		c := int64(s.comm[u])
		for _, r := range subs {
			s.sendBufs[r].PutVarint(int64(u))
			s.sendBufs[r].PutVarint(c)
			sent++
		}
	}
	for r := 0; r < s.p; r++ {
		bufs[r] = s.sendBufs[r].Bytes()
	}
	s.addWork(trace.SwapGhost, sent)
	// Stream the inbound label updates: every vertex is published only by
	// its owner, so the per-source writes to s.comm are disjoint and
	// arrival-order application is deterministic.
	recvd := int64(0)
	var rd wire.Reader
	err := s.alltoallvFunc(bufs, func(src int, payload []byte) error {
		rd.Reset(payload)
		for rd.Remaining() > 0 {
			v := int(rd.Varint())
			c := int32(rd.Varint())
			if s.onGhostChange != nil && s.comm[v] != c {
				s.onGhostChange(v)
			}
			s.comm[v] = c
			recvd++
		}
		return rd.Err()
	})
	if err != nil {
		return err
	}
	s.addWork(trace.SwapGhost, recvd)
	return nil
}

// flushDeltas routes the pending Σtot/size deltas to community owners and
// applies the ones addressed to this rank.
func (s *stage) flushDeltas() error {
	bufs := s.sendScratch()
	// Sorted order keeps the byte streams reproducible run to run.
	sort.Ints(s.deltaTouched)
	s.addWork(trace.Other, int64(len(s.deltaTouched)))
	for _, c := range s.deltaTouched {
		o := s.commOwner(c)
		s.sendBufs[o].PutVarint(int64(c))
		s.sendBufs[o].PutF64(s.deltaW[c])
		s.sendBufs[o].PutVarint(int64(s.deltaN[c]))
		s.deltaW[c] = 0
		s.deltaN[c] = 0
		s.deltaMark[c] = false
	}
	s.deltaTouched = s.deltaTouched[:0]
	for r := 0; r < s.p; r++ {
		bufs[r] = s.sendBufs[r].Bytes()
	}
	// Decode overlaps in-flight traffic (arrival order), but Σtot is a
	// floating-point accumulation whose result depends on addend order, so
	// the decoded records are buffered per source rank and applied in rank
	// order below — bit-identical to the sequential exchange.
	for r := 0; r < s.p; r++ {
		s.deltaSrc[r] = s.deltaSrc[r][:0]
	}
	var rd wire.Reader
	err := s.alltoallvFunc(bufs, func(src int, payload []byte) error {
		rd.Reset(payload)
		recs := s.deltaSrc[src]
		for rd.Remaining() > 0 {
			c := int32(rd.Varint())
			dw := rd.F64()
			dn := int32(rd.Varint())
			recs = append(recs, deltaRec{c: c, dw: dw, dn: dn})
		}
		s.deltaSrc[src] = recs
		return rd.Err()
	})
	if err != nil {
		return err
	}
	applied := int64(0)
	for r := 0; r < s.p; r++ {
		for _, d := range s.deltaSrc[r] {
			s.ownTot[d.c] += d.dw
			s.ownSize[d.c] += d.dn
			applied++
		}
	}
	s.addWork(trace.Other, applied)
	return nil
}

// deltaRec is one decoded Σtot/size delta, buffered per source rank so the
// floating-point application order stays rank order (see flushDeltas).
type deltaRec struct {
	c  int32
	dw float64
	dn int32
}

// localModularity computes this rank's modularity contribution from the
// current, fully synchronized community state: the weights of matching
// local arcs plus the −(Σtot/2m)² terms of the non-empty communities this
// rank owns. Summed across ranks it is the exact global modularity.
//
// The arc scan is chunked over the concatenated owned+hub vertex range and
// runs on the worker pool; the per-chunk partial sums combine in chunk
// order on the main goroutine, so the float reduction associates
// identically at every worker count.
func (s *stage) localModularity() float64 {
	nc := s.qChunks
	s.pool.parFor(nc, s.qKernel)
	var in float64
	arcs := int64(0)
	for c := 0; c < nc; c++ {
		in += s.chunkQ[c]
		arcs += s.chunkArcs[c]
	}
	var totTerm float64
	owned := int64(0)
	for c := s.rnk; c < s.n; c += s.p {
		owned++
		if s.ownSize[c] <= 0 {
			continue
		}
		t := s.ownTot[c] / s.m2
		totTerm += s.gamma * t * t
	}
	s.addWork(trace.Other, arcs+owned)
	return in/s.m2 - totTerm
}

// globalModularity reduces localModularity across ranks. The clustering
// loop instead folds the local value into the fused per-iteration
// reduction (comm.AllreduceIterStats), whose float combine follows the
// same tree — bit-identical Q either way; this standalone form serves the
// invariant checks and tests.
func (s *stage) globalModularity() (float64, error) {
	return comm.AllreduceFloat64Sum(s.c, s.localModularity())
}

// negInf is the improvement of an absent hub proposal.
var negInf = math.Inf(-1)
