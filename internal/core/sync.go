package core

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/comm"
	"repro/internal/trace"
	"repro/internal/wire"
)

// sendScratch resets the stage's pooled encode buffers and frame headers
// and returns the frame slice to hand to Alltoallv. The buffers keep their
// storage across iterations (wire.Buffer.Reset), so steady-state exchanges
// allocate nothing on the send side; the transports copy payloads on Send,
// so reuse after a collective returns is safe.
func (s *stage) sendScratch() [][]byte {
	for r := 0; r < s.p; r++ {
		s.sendBufs[r].Reset()
		s.frames[r] = nil
	}
	return s.frames
}

// fetchCommunityInfo refreshes the Σtot/size caches for every community
// referenced locally: requests are routed to community owners via an
// all-to-all exchange and answered from the authoritative tables. The
// request-encode and answer loops are chunked by peer rank and run on the
// worker pool (each chunk touches only its own rank's buffers); the
// collectives themselves stay on the stage's main goroutine.
func (s *stage) fetchCommunityInfo() error {
	reqs := s.neededCommunities()
	out := s.sendScratch()
	s.pool.parFor(s.p, s.encKernel)
	nReq := int64(0)
	for r := 0; r < s.p; r++ {
		nReq += s.chunkWork[r]
	}
	s.addWork(trace.Other, nReq)
	in, err := comm.Alltoallv(s.c, out)
	if err != nil {
		return err
	}
	// Answer each request list in order. The received frames are owned by
	// this rank, so the encode buffers can be reused for the replies.
	replies := s.sendScratch()
	s.recvFrames = in
	s.pool.parFor(s.p, s.ansKernel)
	s.recvFrames = nil
	for r := 0; r < s.p; r++ {
		if s.chunkWork[r] < 0 {
			// Re-decode serially to surface the deterministic wire error.
			rd := wire.NewReader(in[r])
			n := int(rd.Uvarint())
			for j := 0; j < n && rd.Err() == nil; j++ {
				rd.Varint()
			}
			if err := rd.Err(); err != nil {
				return err
			}
			return fmt.Errorf("core: rank %d: malformed request frame from rank %d", s.rnk, r)
		}
		s.addWork(trace.Other, s.chunkWork[r])
	}
	back, err := comm.Alltoallv(s.c, replies)
	if err != nil {
		return err
	}
	// Install fresh values (serial: installCache appends to the shared
	// touched list).
	s.resetCache()
	var rd wire.Reader
	for r := 0; r < s.p; r++ {
		rd.Reset(back[r])
		for _, c := range reqs[r] {
			s.installCache(c, rd.F64(), int32(rd.Varint()))
		}
		if err := rd.Err(); err != nil {
			return err
		}
	}
	s.addWork(trace.Other, nReq)
	return nil
}

// hubProposal is one rank's best move for one hub, computed from the rank's
// local share of the hub's arcs. Improvement is the modularity-gain
// advantage over keeping the hub in its current community; negative or
// -Inf proposals never win.
type hubProposal struct {
	improvement float64
	target      int
}

// delegateExchange reduces per-rank hub proposals to a global winner per hub
// (max improvement, ties to the smaller target label) and applies the
// winning moves identically on every rank. It returns the number of hubs
// that moved *and are owned by this rank*, so the world-wide sum counts each
// hub once. Only the hub's owner emits aggregate deltas, for the same
// reason.
func (s *stage) delegateExchange(props []hubProposal) (int, error) {
	nh := len(s.sg.Hubs)
	if nh == 0 {
		return 0, nil
	}
	s.hubBuf.Reset()
	for _, pr := range props {
		s.hubBuf.PutF64(pr.improvement)
		s.hubBuf.PutVarint(int64(pr.target))
	}
	// Encode + apply are O(hubs) on every rank; the reduction itself adds
	// O(hubs · log p) combine work, charged here as well.
	s.addWork(trace.BroadcastDelegates, int64(nh)*int64(2+log2ceil(s.p)))
	win, err := comm.AllreduceBytes(s.c, s.hubBuf.Bytes(), combineHubProposals)
	if err != nil {
		return 0, err
	}
	var rd wire.Reader
	rd.Reset(win)
	moved := 0
	for i, h := range s.sg.Hubs {
		imp := rd.F64()
		target := int(rd.Varint())
		cur := int(s.comm[h])
		if !(imp > gainEps) || target == cur {
			continue
		}
		// A hub's community state is inherently cross-rank, so hub moves
		// take the minimum-label constraint under the enhanced and strict
		// heuristics. The decision is identical on every rank because all
		// inputs are replicated.
		if s.opt.Heuristic != HeuristicSimple && target > cur {
			continue
		}
		k := s.sg.HubWDeg[i]
		s.comm[h] = int32(target)
		if s.cached[cur] {
			s.tot[cur] -= k
			s.size[cur]--
		}
		if s.cached[target] {
			s.tot[target] += k
			s.size[target]++
		}
		if s.commOwner(h) == s.rnk {
			s.addDelta(cur, -k, -1)
			s.addDelta(target, k, 1)
			moved++
		}
	}
	return moved, rd.Err()
}

func log2ceil(v int) int {
	n := 0
	for 1<<n < v {
		n++
	}
	return n
}

// combineHubProposals merges two encoded proposal vectors elementwise,
// keeping the higher improvement and breaking ties toward the smaller
// target label. It is associative and commutative as AllreduceBytes
// requires.
func combineHubProposals(a, b []byte) []byte {
	ra, rb := wire.NewReader(a), wire.NewReader(b)
	out := wire.NewBuffer(len(a))
	for ra.Remaining() > 0 {
		ia, ta := ra.F64(), ra.Varint()
		ib, tb := rb.F64(), rb.Varint()
		if ib > ia || (ib == ia && tb < ta) {
			ia, ta = ib, tb
		}
		out.PutF64(ia)
		out.PutVarint(ta)
	}
	return out.Bytes()
}

// ghostSwap pushes the labels of changed owned vertices to every rank that
// holds them as ghosts, and applies the symmetric updates received.
func (s *stage) ghostSwap() error {
	bufs := s.sendScratch()
	sent := int64(0)
	for _, u := range s.changed {
		subs := s.sg.Subscribers[u]
		if len(subs) == 0 {
			continue
		}
		c := int64(s.comm[u])
		for _, r := range subs {
			s.sendBufs[r].PutVarint(int64(u))
			s.sendBufs[r].PutVarint(c)
			sent++
		}
	}
	for r := 0; r < s.p; r++ {
		bufs[r] = s.sendBufs[r].Bytes()
	}
	s.addWork(trace.SwapGhost, sent)
	in, err := comm.Alltoallv(s.c, bufs)
	if err != nil {
		return err
	}
	recvd := int64(0)
	var rd wire.Reader
	for r := 0; r < s.p; r++ {
		rd.Reset(in[r])
		for rd.Remaining() > 0 {
			v := int(rd.Varint())
			c := int32(rd.Varint())
			s.comm[v] = c
			recvd++
		}
		if err := rd.Err(); err != nil {
			return err
		}
	}
	s.addWork(trace.SwapGhost, recvd)
	return nil
}

// flushDeltas routes the pending Σtot/size deltas to community owners and
// applies the ones addressed to this rank.
func (s *stage) flushDeltas() error {
	bufs := s.sendScratch()
	// Sorted order keeps the byte streams reproducible run to run.
	sort.Ints(s.deltaTouched)
	s.addWork(trace.Other, int64(len(s.deltaTouched)))
	for _, c := range s.deltaTouched {
		o := s.commOwner(c)
		s.sendBufs[o].PutVarint(int64(c))
		s.sendBufs[o].PutF64(s.deltaW[c])
		s.sendBufs[o].PutVarint(int64(s.deltaN[c]))
		s.deltaW[c] = 0
		s.deltaN[c] = 0
		s.deltaMark[c] = false
	}
	s.deltaTouched = s.deltaTouched[:0]
	for r := 0; r < s.p; r++ {
		bufs[r] = s.sendBufs[r].Bytes()
	}
	in, err := comm.Alltoallv(s.c, bufs)
	if err != nil {
		return err
	}
	applied := int64(0)
	var rd wire.Reader
	for r := 0; r < s.p; r++ {
		rd.Reset(in[r])
		for rd.Remaining() > 0 {
			c := int(rd.Varint())
			dw := rd.F64()
			dn := int32(rd.Varint())
			s.ownTot[c] += dw
			s.ownSize[c] += dn
			applied++
		}
		if err := rd.Err(); err != nil {
			return err
		}
	}
	s.addWork(trace.Other, applied)
	return nil
}

// globalModularity computes the exact global modularity from the current,
// fully synchronized community state: each rank sums the weights of its
// matching local arcs, and each community owner contributes the −(Σtot/2m)²
// terms of its non-empty communities; an Allreduce yields Q everywhere.
//
// The arc scan is chunked over the concatenated owned+hub vertex range and
// runs on the worker pool; the per-chunk partial sums combine in chunk
// order on the main goroutine, so the float reduction associates
// identically at every worker count.
func (s *stage) globalModularity() (float64, error) {
	nc := s.qChunks
	s.pool.parFor(nc, s.qKernel)
	var in float64
	arcs := int64(0)
	for c := 0; c < nc; c++ {
		in += s.chunkQ[c]
		arcs += s.chunkArcs[c]
	}
	var totTerm float64
	owned := int64(0)
	for c := s.rnk; c < s.n; c += s.p {
		owned++
		if s.ownSize[c] <= 0 {
			continue
		}
		t := s.ownTot[c] / s.m2
		totTerm += s.gamma * t * t
	}
	s.addWork(trace.Other, arcs+owned)
	local := in/s.m2 - totTerm
	return comm.AllreduceFloat64Sum(s.c, local)
}

// negInf is the improvement of an absent hub proposal.
var negInf = math.Inf(-1)
