// Package digraph implements the directed-graph extension the paper points
// at in Section III ("our approach can be easily extended to directed
// graphs [15]"): a compact directed graph, the directed modularity of
// Leicht & Newman, a directed sequential Louvain, and symmetrization into
// the undirected form the distributed algorithm consumes.
package digraph

import (
	"fmt"
	"sort"

	"repro/internal/graph"
)

// Arc is one directed edge with weight W (1 for unweighted graphs).
type Arc struct {
	From, To int
	W        float64
}

// Digraph is an immutable weighted directed graph in CSR (out-adjacency)
// form with cached in/out weighted degrees.
type Digraph struct {
	offsets []int64
	targets []int32
	weights []float64
	outW    []float64 // weighted out-degree per vertex
	inW     []float64 // weighted in-degree per vertex
	m       float64   // total arc weight
}

// FromArcs builds a digraph with n vertices. Parallel arcs are combined by
// summing weights; a zero weight means 1. Self-loops are allowed and count
// toward both the in- and out-degree of their vertex.
func FromArcs(n int, arcs []Arc) (*Digraph, error) {
	deg := make([]int64, n+1)
	for _, a := range arcs {
		if a.From < 0 || a.From >= n || a.To < 0 || a.To >= n {
			return nil, fmt.Errorf("digraph: arc (%d,%d) endpoint out of range [0,%d)", a.From, a.To, n)
		}
		deg[a.From+1]++
	}
	offsets := make([]int64, n+1)
	for i := 0; i < n; i++ {
		offsets[i+1] = offsets[i] + deg[i+1]
	}
	targets := make([]int32, offsets[n])
	weights := make([]float64, offsets[n])
	fill := make([]int64, n)
	for _, a := range arcs {
		w := a.W
		if w == 0 {
			w = 1
		}
		at := offsets[a.From] + fill[a.From]
		targets[at] = int32(a.To)
		weights[at] = w
		fill[a.From]++
	}
	d := &Digraph{offsets: offsets, targets: targets, weights: weights}
	d.sortAndCombine()
	d.finish()
	return d, nil
}

func (d *Digraph) sortAndCombine() {
	n := d.NumVertices()
	newOffsets := make([]int64, n+1)
	write := int64(0)
	for u := 0; u < n; u++ {
		lo, hi := d.offsets[u], d.offsets[u+1]
		s := arcSorter{t: d.targets[lo:hi], w: d.weights[lo:hi]}
		sort.Stable(s)
		newOffsets[u] = write
		i := lo
		for i < hi {
			t := d.targets[i]
			w := d.weights[i]
			j := i + 1
			for j < hi && d.targets[j] == t {
				w += d.weights[j]
				j++
			}
			d.targets[write] = t
			d.weights[write] = w
			write++
			i = j
		}
	}
	newOffsets[n] = write
	d.offsets = newOffsets
	d.targets = d.targets[:write]
	d.weights = d.weights[:write]
}

func (d *Digraph) finish() {
	n := d.NumVertices()
	d.outW = make([]float64, n)
	d.inW = make([]float64, n)
	d.m = 0
	for u := 0; u < n; u++ {
		lo, hi := d.offsets[u], d.offsets[u+1]
		for a := lo; a < hi; a++ {
			w := d.weights[a]
			d.outW[u] += w
			d.inW[d.targets[a]] += w
			d.m += w
		}
	}
}

type arcSorter struct {
	t []int32
	w []float64
}

func (s arcSorter) Len() int           { return len(s.t) }
func (s arcSorter) Less(i, j int) bool { return s.t[i] < s.t[j] }
func (s arcSorter) Swap(i, j int) {
	s.t[i], s.t[j] = s.t[j], s.t[i]
	s.w[i], s.w[j] = s.w[j], s.w[i]
}

// NumVertices returns the vertex count.
func (d *Digraph) NumVertices() int { return len(d.offsets) - 1 }

// NumArcs returns the stored arc count (after combining parallels).
func (d *Digraph) NumArcs() int64 { return d.offsets[len(d.offsets)-1] }

// TotalWeight returns m, the summed arc weight.
func (d *Digraph) TotalWeight() float64 { return d.m }

// OutWeight returns the weighted out-degree of u.
func (d *Digraph) OutWeight(u int) float64 { return d.outW[u] }

// InWeight returns the weighted in-degree of u.
func (d *Digraph) InWeight(u int) float64 { return d.inW[u] }

// OutNeighbors returns u's out-arc targets and weights (aliases storage).
func (d *Digraph) OutNeighbors(u int) ([]int32, []float64) {
	lo, hi := d.offsets[u], d.offsets[u+1]
	return d.targets[lo:hi], d.weights[lo:hi]
}

// Symmetrize folds the digraph into the undirected form the distributed
// algorithm consumes (the approach of Cheong et al. [15], which the paper
// references for directed inputs): every arc becomes an undirected edge;
// opposite arcs merge with summed weight.
func (d *Digraph) Symmetrize() (*graph.Graph, error) {
	var edges []graph.Edge
	for u := 0; u < d.NumVertices(); u++ {
		ts, ws := d.OutNeighbors(u)
		for i := range ts {
			edges = append(edges, graph.Edge{U: u, V: int(ts[i]), W: ws[i]})
		}
	}
	return graph.FromEdges(d.NumVertices(), edges)
}

// Modularity computes the directed modularity of Leicht & Newman:
//
//	Q_d = (1/m) Σ_ij [A_ij − kᵒᵘᵗ(i)·kⁱⁿ(j)/m] δ(c_i, c_j)
//	    = Σ_c [ in(c)/m − outW(c)·inW(c)/m² ]
func Modularity(d *Digraph, m graph.Membership) float64 {
	if len(m) != d.NumVertices() {
		panic("digraph: membership length does not match vertex count")
	}
	if d.m == 0 {
		return 0
	}
	in := make(map[int]float64)
	outTot := make(map[int]float64)
	inTot := make(map[int]float64)
	for u := 0; u < d.NumVertices(); u++ {
		cu := m[u]
		outTot[cu] += d.outW[u]
		inTot[cu] += d.inW[u]
		ts, ws := d.OutNeighbors(u)
		for i := range ts {
			if m[ts[i]] == cu {
				in[cu] += ws[i]
			}
		}
	}
	labels := make([]int, 0, len(outTot))
	for c := range outTot {
		labels = append(labels, c)
	}
	sort.Ints(labels)
	var q float64
	for _, c := range labels {
		q += in[c]/d.m - outTot[c]*inTot[c]/(d.m*d.m)
	}
	return q
}
