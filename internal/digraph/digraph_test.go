package digraph

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/graph"
)

func TestFromArcsBasics(t *testing.T) {
	d, err := FromArcs(3, []Arc{{0, 1, 2}, {1, 2, 1}, {2, 0, 1}, {0, 1, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if d.NumVertices() != 3 {
		t.Errorf("NumVertices = %d", d.NumVertices())
	}
	if d.NumArcs() != 3 {
		t.Errorf("NumArcs = %d, want 3 after combining parallels", d.NumArcs())
	}
	if d.OutWeight(0) != 5 || d.InWeight(1) != 5 {
		t.Errorf("degrees: out(0)=%g in(1)=%g", d.OutWeight(0), d.InWeight(1))
	}
	if d.TotalWeight() != 7 {
		t.Errorf("m = %g, want 7", d.TotalWeight())
	}
}

func TestFromArcsErrors(t *testing.T) {
	if _, err := FromArcs(2, []Arc{{0, 2, 1}}); err == nil {
		t.Error("expected out-of-range error")
	}
	if _, err := FromArcs(2, []Arc{{-1, 0, 1}}); err == nil {
		t.Error("expected negative endpoint error")
	}
}

func TestDirectedModularityKnown(t *testing.T) {
	// Two directed 3-cycles: perfect community structure.
	d, err := FromArcs(6, []Arc{
		{0, 1, 1}, {1, 2, 1}, {2, 0, 1},
		{3, 4, 1}, {4, 5, 1}, {5, 3, 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	m := graph.Membership{0, 0, 0, 1, 1, 1}
	// Q = Σ_c [3/6 − (3·3)/36] = 2 × (0.5 − 0.25) = 0.5
	if got := Modularity(d, m); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("Q_d = %g, want 0.5", got)
	}
	all := graph.Membership{0, 0, 0, 0, 0, 0}
	if got := Modularity(d, all); math.Abs(got) > 1e-12 {
		t.Errorf("Q_d(one community) = %g, want 0", got)
	}
}

func TestDirectedLouvainRecoversCycles(t *testing.T) {
	d, err := FromArcs(6, []Arc{
		{0, 1, 1}, {1, 2, 1}, {2, 0, 1},
		{3, 4, 1}, {4, 5, 1}, {5, 3, 1},
		{2, 3, 0.1}, // weak bridge
	})
	if err != nil {
		t.Fatal(err)
	}
	res := Louvain(d, Options{})
	if res.Membership.NumCommunities() != 2 {
		t.Errorf("found %d communities, want 2 (%v)", res.Membership.NumCommunities(), res.Membership)
	}
	if res.Membership[0] != res.Membership[1] || res.Membership[1] != res.Membership[2] {
		t.Errorf("cycle 1 split: %v", res.Membership)
	}
	if res.Modularity < 0.4 {
		t.Errorf("Q_d = %g", res.Modularity)
	}
}

func TestDirectedMatchesUndirectedOnSymmetricInput(t *testing.T) {
	// On a symmetric digraph (both arc directions present), directed
	// modularity of a partition equals the undirected modularity.
	g, truth, err := gen.SBM([]int{30, 30}, 0.4, 0.02, 7)
	if err != nil {
		t.Fatal(err)
	}
	var arcs []Arc
	for u := 0; u < g.NumVertices(); u++ {
		lo, hi := g.ArcRange(u)
		for a := lo; a < hi; a++ {
			arcs = append(arcs, Arc{From: u, To: g.ArcTarget(a), W: g.ArcWeight(a)})
		}
	}
	d, err := FromArcs(g.NumVertices(), arcs)
	if err != nil {
		t.Fatal(err)
	}
	qd := Modularity(d, truth)
	qu := graph.Modularity(g, truth)
	if math.Abs(qd-qu) > 1e-9 {
		t.Errorf("directed Q %g != undirected Q %g on symmetric input", qd, qu)
	}
	res := Louvain(d, Options{})
	if res.Membership.NumCommunities() != 2 {
		t.Errorf("directed Louvain found %d communities, want 2", res.Membership.NumCommunities())
	}
}

func TestSymmetrize(t *testing.T) {
	d, err := FromArcs(3, []Arc{{0, 1, 2}, {1, 0, 3}, {1, 2, 1}})
	if err != nil {
		t.Fatal(err)
	}
	g, err := d.Symmetrize()
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 2 {
		t.Errorf("NumEdges = %d, want 2", g.NumEdges())
	}
	// opposite arcs merged: undirected weight 5
	if g.WeightedDegree(0) != 5 {
		t.Errorf("WeightedDegree(0) = %g, want 5", g.WeightedDegree(0))
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAggregatePreservesDirectedModularity(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	arcs := make([]Arc, 300)
	for i := range arcs {
		arcs[i] = Arc{From: rng.Intn(40), To: rng.Intn(40), W: 1 + rng.Float64()}
	}
	d, err := FromArcs(40, arcs)
	if err != nil {
		t.Fatal(err)
	}
	labels := make(graph.Membership, 40)
	for i := range labels {
		labels[i] = i % 6
	}
	k := labels.Normalize()
	ag := Aggregate(d, labels, k)
	coarse := make(graph.Membership, k)
	for i := range coarse {
		coarse[i] = i
	}
	if math.Abs(Modularity(d, labels)-Modularity(ag, coarse)) > 1e-9 {
		t.Error("aggregation broke directed modularity")
	}
	if math.Abs(ag.TotalWeight()-d.TotalWeight()) > 1e-9 {
		t.Error("aggregation changed m")
	}
}

func TestEmptyDigraph(t *testing.T) {
	d, err := FromArcs(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	res := Louvain(d, Options{})
	if len(res.Membership) != 0 || res.Modularity != 0 {
		t.Errorf("empty: %+v", res)
	}
}

func TestDirectedLouvainDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	arcs := make([]Arc, 500)
	for i := range arcs {
		arcs[i] = Arc{From: rng.Intn(80), To: rng.Intn(80), W: 1}
	}
	d, err := FromArcs(80, arcs)
	if err != nil {
		t.Fatal(err)
	}
	r1 := Louvain(d, Options{})
	r2 := Louvain(d, Options{})
	if r1.Modularity != r2.Modularity {
		t.Errorf("nondeterministic: %g vs %g", r1.Modularity, r2.Modularity)
	}
}

func TestQuickDirectedModularityBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 20
		arcs := make([]Arc, 80)
		for i := range arcs {
			arcs[i] = Arc{From: rng.Intn(n), To: rng.Intn(n), W: 1}
		}
		d, err := FromArcs(n, arcs)
		if err != nil {
			return false
		}
		m := make(graph.Membership, n)
		for i := range m {
			m[i] = rng.Intn(4)
		}
		q := Modularity(d, m)
		return q >= -1-1e-9 && q <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
