package digraph

import (
	"math"
	"sort"

	"repro/internal/graph"
)

// Options configures the directed Louvain run.
type Options struct {
	// MinGain is the minimum modularity improvement for another level
	// (default 1e-6).
	MinGain float64
	// MaxLevels caps aggregation levels; 0 means no cap.
	MaxLevels int
	// MaxInnerIters caps local-moving sweeps per level; 0 means no cap.
	MaxInnerIters int
}

func (o Options) withDefaults() Options {
	if o.MinGain <= 0 {
		o.MinGain = 1e-6
	}
	return o
}

// Result is the outcome of a directed Louvain run.
type Result struct {
	// Membership maps each vertex to its community (dense labels).
	Membership graph.Membership
	// Modularity is the final directed modularity.
	Modularity float64
	// Levels is the number of aggregation levels performed.
	Levels int
}

// Louvain runs the directed Louvain algorithm: greedy maximization of
// Leicht–Newman directed modularity with the same local-moving +
// aggregation structure as the undirected algorithm. The gain of moving an
// isolated vertex u into community c is
//
//	Δ ∝ [w(u→c) + w(c→u)] − [kᵒᵘᵗ(u)·inW(c) + kⁱⁿ(u)·outW(c)]/m
func Louvain(d *Digraph, opt Options) Result {
	opt = opt.withDefaults()
	n := d.NumVertices()
	res := Result{Membership: make(graph.Membership, n)}
	for i := range res.Membership {
		res.Membership[i] = i
	}
	if n == 0 || d.m == 0 {
		res.Membership.Normalize()
		return res
	}
	cur := d
	prevQ := math.Inf(-1)
	for level := 0; opt.MaxLevels == 0 || level < opt.MaxLevels; level++ {
		labels := localMoving(cur, opt)
		q := Modularity(cur, labels)
		res.Levels++
		if q-prevQ < opt.MinGain {
			break
		}
		prevQ = q
		k := labels.Normalize()
		for i := range res.Membership {
			res.Membership[i] = labels[res.Membership[i]]
		}
		if k == cur.NumVertices() {
			break
		}
		cur = Aggregate(cur, labels, k)
	}
	res.Membership.Normalize()
	res.Modularity = Modularity(d, res.Membership)
	return res
}

const gainEps = 1e-12

// localMoving sweeps greedily until no vertex moves. It needs both the
// out- and in-neighborhoods of each vertex, so it builds a reverse
// adjacency once.
func localMoving(d *Digraph, opt Options) graph.Membership {
	n := d.NumVertices()
	labels := make(graph.Membership, n)
	outTot := make([]float64, n)
	inTot := make([]float64, n)
	for u := 0; u < n; u++ {
		labels[u] = u
		outTot[u] = d.outW[u]
		inTot[u] = d.inW[u]
	}
	revT, revW := reverse(d)

	w := make([]float64, n) // w(u→c) + w(c→u) accumulator
	seen := make([]bool, n)
	var touched []int
	add := func(c int, x float64) {
		if !seen[c] {
			seen[c] = true
			touched = append(touched, c)
		}
		w[c] += x
	}

	iters := 0
	for {
		iters++
		moved := 0
		for u := 0; u < n; u++ {
			cu := labels[u]
			for _, c := range touched {
				w[c] = 0
				seen[c] = false
			}
			touched = touched[:0]
			ts, ws := d.OutNeighbors(u)
			for i := range ts {
				if int(ts[i]) != u {
					add(labels[ts[i]], ws[i])
				}
			}
			for i := range revT[u] {
				v := revT[u][i]
				if int(v) != u {
					add(labels[v], revW[u][i])
				}
			}
			// Remove u from its community.
			outTot[cu] -= d.outW[u]
			inTot[cu] -= d.inW[u]
			gain := func(c int) float64 {
				return w[c] - (d.outW[u]*inTot[c]+d.inW[u]*outTot[c])/d.m
			}
			best := cu
			bestGain := gain(cu)
			sort.Ints(touched)
			for _, c := range touched {
				if c == cu {
					continue
				}
				g := gain(c)
				if g > bestGain+gainEps {
					best, bestGain = c, g
				} else if g > bestGain-gainEps && c < best {
					best = c
				}
			}
			outTot[best] += d.outW[u]
			inTot[best] += d.inW[u]
			if best != cu {
				labels[u] = best
				moved++
			}
		}
		if moved == 0 || (opt.MaxInnerIters > 0 && iters >= opt.MaxInnerIters) {
			break
		}
	}
	return labels
}

// reverse builds the in-adjacency lists of d.
func reverse(d *Digraph) ([][]int32, [][]float64) {
	n := d.NumVertices()
	revT := make([][]int32, n)
	revW := make([][]float64, n)
	for u := 0; u < n; u++ {
		ts, ws := d.OutNeighbors(u)
		for i := range ts {
			v := ts[i]
			revT[v] = append(revT[v], int32(u))
			revW[v] = append(revW[v], ws[i])
		}
	}
	return revT, revW
}

// Aggregate collapses communities (dense labels 0..k-1) into a coarser
// digraph; arcs internal to a community become its self-loop, preserving
// both m and the directed modularity of any refinement.
func Aggregate(d *Digraph, labels graph.Membership, k int) *Digraph {
	type key struct{ c, e int32 }
	acc := make(map[key]float64)
	for u := 0; u < d.NumVertices(); u++ {
		cu := int32(labels[u])
		ts, ws := d.OutNeighbors(u)
		for i := range ts {
			acc[key{cu, int32(labels[ts[i]])}] += ws[i]
		}
	}
	arcs := make([]Arc, 0, len(acc))
	for kk, w := range acc {
		arcs = append(arcs, Arc{From: int(kk.c), To: int(kk.e), W: w})
	}
	nd, err := FromArcs(k, arcs)
	if err != nil {
		panic("digraph: aggregate failed: " + err.Error())
	}
	return nd
}
