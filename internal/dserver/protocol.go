package dserver

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Line protocol for the resident service. One request per line, one reply
// line per request; blank lines and lines starting with '#' are skipped
// (fixture scripts use them for comments). Floats that must survive a
// round-trip bit-exactly (modularity, drift) are printed as hex floats,
// the same convention as the core golden files.
//
//	community <v>          -> community <v> <label>
//	neighborhood <v>       -> neighborhood <v> <to>:<w> ...
//	modularity             -> modularity <hexfloat>
//	update <op>[;<op>...]  -> update ok ops=<n> mode=<incremental|full> moved=<m> touched=<t> needfull=<bool> q=<hexfloat>
//	stats                  -> stats batches=<n> incremental=<n> full=<n> ops=<n> edges=<n> q=<hexfloat> driftq=<hexfloat> drifttouch=<hexfloat>
//	resolve                -> resolve ok q=<hexfloat>
//
// where <op> is +u,v,w (insert weight w > 0) or -u,v (delete the edge).
// Any failure answers "error: <message>" and leaves the world unchanged.

// HandleLine executes one protocol line and returns the reply line (without
// a trailing newline). Blank and comment lines return "".
func (w *World) HandleLine(line string) string {
	line = strings.TrimSpace(line)
	if line == "" || strings.HasPrefix(line, "#") {
		return ""
	}
	verb, rest, _ := strings.Cut(line, " ")
	rest = strings.TrimSpace(rest)
	switch verb {
	case "community":
		v, err := strconv.Atoi(rest)
		if err != nil {
			return fmt.Sprintf("error: community: bad vertex %q", rest)
		}
		c, err := w.CommunityOf(v)
		if err != nil {
			return "error: " + err.Error()
		}
		return fmt.Sprintf("community %d %d", v, c)
	case "neighborhood":
		v, err := strconv.Atoi(rest)
		if err != nil {
			return fmt.Sprintf("error: neighborhood: bad vertex %q", rest)
		}
		arcs, err := w.Neighborhood(v)
		if err != nil {
			return "error: " + err.Error()
		}
		var b strings.Builder
		fmt.Fprintf(&b, "neighborhood %d", v)
		for _, a := range arcs {
			fmt.Fprintf(&b, " %d:%s", a.To, strconv.FormatFloat(a.W, 'g', -1, 64))
		}
		return b.String()
	case "modularity":
		q, err := w.Modularity()
		if err != nil {
			return "error: " + err.Error()
		}
		return "modularity " + hexFloat(q)
	case "update":
		ops, err := ParseOps(rest)
		if err != nil {
			return "error: " + err.Error()
		}
		out, err := w.Update(ops)
		if err != nil {
			return "error: " + err.Error()
		}
		mode := "incremental"
		if out.Full {
			mode = "full"
		}
		return fmt.Sprintf("update ok ops=%d mode=%s moved=%d touched=%d needfull=%v q=%s",
			len(ops), mode, out.Moved, out.Touched, out.NeedFull, hexFloat(w.Stats().Modularity))
	case "resolve":
		if err := w.Resolve(); err != nil {
			return "error: " + err.Error()
		}
		return "resolve ok q=" + hexFloat(w.Stats().Modularity)
	case "stats":
		s := w.Stats()
		return fmt.Sprintf("stats batches=%d incremental=%d full=%d ops=%d edges=%d q=%s driftq=%s drifttouch=%s",
			s.Batches, s.Incremental, s.Full, s.Ops, s.Edges,
			hexFloat(s.Modularity), hexFloat(s.DriftQ), hexFloat(s.DriftTouch))
	default:
		return fmt.Sprintf("error: unknown command %q", verb)
	}
}

// ParseOps parses an update payload: semicolon-separated ops, each
// +u,v,w (insert) or -u,v (delete).
func ParseOps(s string) ([]Op, error) {
	if strings.TrimSpace(s) == "" {
		return nil, fmt.Errorf("update: empty op list")
	}
	var ops []Op
	for _, f := range strings.Split(s, ";") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		if len(f) < 2 || (f[0] != '+' && f[0] != '-') {
			return nil, fmt.Errorf("update: op %q, want +u,v,w or -u,v", f)
		}
		del := f[0] == '-'
		parts := strings.Split(f[1:], ",")
		var op Op
		op.Del = del
		switch {
		case del && len(parts) == 2:
		case !del && len(parts) == 3:
			wt, err := strconv.ParseFloat(strings.TrimSpace(parts[2]), 64)
			if err != nil {
				return nil, fmt.Errorf("update: op %q: bad weight: %v", f, err)
			}
			op.W = wt
		default:
			return nil, fmt.Errorf("update: op %q, want +u,v,w or -u,v", f)
		}
		u, err := strconv.Atoi(strings.TrimSpace(parts[0]))
		if err != nil {
			return nil, fmt.Errorf("update: op %q: bad vertex: %v", f, err)
		}
		v, err := strconv.Atoi(strings.TrimSpace(parts[1]))
		if err != nil {
			return nil, fmt.Errorf("update: op %q: bad vertex: %v", f, err)
		}
		op.U, op.V = u, v
		ops = append(ops, op)
	}
	if len(ops) == 0 {
		return nil, fmt.Errorf("update: empty op list")
	}
	return ops, nil
}

// Serve reads protocol lines from r and writes one reply line per request
// to out until EOF. It is the transport-agnostic request loop behind both
// cmd/dserver's stdio/TCP modes and the golden fixture replays.
func (w *World) Serve(r io.Reader, out io.Writer) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	bw := bufio.NewWriter(out)
	defer bw.Flush()
	for sc.Scan() {
		rep := w.HandleLine(sc.Text())
		if rep == "" {
			continue
		}
		if _, err := bw.WriteString(rep + "\n"); err != nil {
			return err
		}
		if err := bw.Flush(); err != nil {
			return err
		}
	}
	return sc.Err()
}

func hexFloat(f float64) string { return strconv.FormatFloat(f, 'x', -1, 64) }
