// Package dserver hosts a resident clustering service: a world of ranks
// that stays up after the initial solve, keeping the partitioned graph and
// the converged communities in memory, and answering queries and edge
// updates without re-ingesting anything.
//
// The driver (World) owns the authoritative edge ledger and the public API;
// each rank runs a command loop around a core.Session. Queries that only
// need replicated or owner-local state (community-of-vertex, modularity)
// touch a single rank; updates are replicated batches that every rank
// applies through Session.ApplyUpdates, which re-clusters incrementally
// from the vertices within UpdateKHops of the changed edges. When the
// session reports drift past the configured thresholds the world falls
// back to a full solve (the quality oracle), in the same Update call when
// AutoResolve is set.
//
// All public methods are safe for concurrent use; the world serializes
// them so each replicated command reaches every rank exactly once and in
// the same order.
package dserver

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/partition"
)

// Options configures a World.
type Options struct {
	// Core is passed to every rank's core.Session. P must match the world
	// size (0 adopts P below). DHigh <= 0 gets the same default core.Run
	// applies: max(P, 4*arcs/vertices).
	Core core.Options
	// P is the number of resident ranks.
	P int
	// AutoResolve makes Update run the full-solve fallback in the same
	// call whenever the incremental pass crosses a drift threshold. When
	// false the caller sees NeedFull and decides when to call Resolve.
	AutoResolve bool
}

// Stats is a snapshot of the world's serving counters.
type Stats struct {
	Batches     int64 // update batches applied
	Incremental int64 // batches answered by the incremental path alone
	Full        int64 // full-solve fallbacks (including explicit Resolve calls)
	Ops         int64 // edge operations applied
	Edges       int64 // current edge count in the ledger
	Modularity  float64
	DriftQ      float64
	DriftTouch  float64
}

// UpdateOutcome reports one Update call.
type UpdateOutcome struct {
	core.UpdateResult
	// Full is true when this call ran the full-solve fallback (AutoResolve).
	Full bool
}

// Op is one requested edge mutation. Inserts carry W > 0 and accumulate
// onto an existing edge; deletes ignore W (the ledger supplies the full
// current weight) and remove the edge entirely.
type Op struct {
	U, V int
	W    float64
	Del  bool
}

type cmdKind int

const (
	cmdCommunity cmdKind = iota
	cmdNeighborhood
	cmdUpdate
	cmdSolve
	cmdTracked
	cmdStats
)

type rankReply struct {
	rank     int
	err      error
	res      core.UpdateResult
	comm     int
	ok       bool
	arcs     []partition.Arc
	vertices []int
	labels   []int
	q        float64
	dq       float64
	dtouch   float64
}

type command struct {
	kind  cmdKind
	v     int
	ops   []core.EdgeOp
	reply chan rankReply
}

// World is the resident service: p rank goroutines inside a comm.RunWorld,
// plus the driver state (edge ledger, counters) guarded by mu.
type World struct {
	p           int
	n           int
	autoResolve bool

	mu     sync.Mutex
	cmds   []chan *command
	edges  map[uint64]float64
	stats  Stats
	closed bool
	failed error // sticky: first rank error wires the world shut

	runErr chan error
}

// New builds the world from g, solves it, and leaves the ranks resident.
// It returns once every rank has converged and is accepting commands.
func New(g *graph.Graph, opt Options) (*World, error) {
	p := opt.P
	if p <= 0 {
		p = opt.Core.P
	}
	if p <= 0 {
		p = 1
	}
	copt := opt.Core
	copt.P = p
	if copt.DHigh <= 0 {
		// Mirror core.Run's default so a served world and a batch run over
		// the same graph see the same partition (and the same answer).
		copt.DHigh = p
		if g.NumVertices() > 0 {
			if floor := 4 * int(g.NumArcs()) / g.NumVertices(); floor > copt.DHigh {
				copt.DHigh = floor
			}
		}
	}
	layout, err := partition.Build(g, partition.Options{
		P: p, Kind: copt.Partitioning, DHigh: copt.DHigh, Workers: copt.Workers,
	})
	if err != nil {
		return nil, err
	}

	w := &World{
		p:           p,
		n:           g.NumVertices(),
		autoResolve: opt.AutoResolve,
		cmds:        make([]chan *command, p),
		edges:       make(map[uint64]float64, g.NumEdges()),
		runErr:      make(chan error, 1),
	}
	for _, e := range g.Edges() {
		w.edges[edgeKey(e.U, e.V)] += e.W
	}
	for r := range w.cmds {
		w.cmds[r] = make(chan *command, 1)
	}

	ready := make(chan error, p)
	go func() {
		w.runErr <- comm.RunWorld(p, func(c comm.Comm) error {
			return w.rankLoop(c, layout, copt, ready)
		})
	}()
	for r := 0; r < p; r++ {
		if err := <-ready; err != nil {
			// Drain the world: close the command channels so healthy ranks
			// exit their loops, then wait for RunWorld to join.
			w.mu.Lock()
			w.shutdownLocked()
			w.mu.Unlock()
			<-w.runErr
			return nil, err
		}
	}
	w.mu.Lock()
	w.refreshStatsLocked()
	w.mu.Unlock()
	return w, nil
}

func (w *World) rankLoop(c comm.Comm, layout *partition.Layout, copt core.Options, ready chan<- error) error {
	rank := c.Rank()
	ses, err := core.NewSession(c, layout.Parts[rank].CloneForServing(), copt)
	if err != nil {
		ready <- err
		return err
	}
	defer ses.Close()
	if err := ses.Solve(); err != nil {
		ready <- err
		return err
	}
	ready <- nil
	for cmd := range w.cmds[rank] {
		rep := rankReply{rank: rank, q: ses.Modularity()}
		switch cmd.kind {
		case cmdCommunity:
			rep.comm, rep.ok = ses.CommunityOf(cmd.v)
		case cmdNeighborhood:
			rep.arcs = ses.NeighborhoodOf(cmd.v)
		case cmdUpdate:
			rep.res, rep.err = ses.ApplyUpdates(cmd.ops)
			rep.q = ses.Modularity()
		case cmdSolve:
			rep.err = ses.Solve()
			rep.q = ses.Modularity()
		case cmdTracked:
			rep.vertices, rep.labels = ses.Tracked()
		case cmdStats:
			rep.dq, rep.dtouch = ses.Drift()
		}
		cmd.reply <- rep
		if rep.err != nil {
			return rep.err
		}
	}
	return nil
}

// broadcastLocked sends cmd to every rank and collects all replies in rank
// order. Collective commands (update, solve) require this shape: every rank
// must enter the collective, so the sends all happen before any wait.
func (w *World) broadcastLocked(kind cmdKind, v int, ops []core.EdgeOp) ([]rankReply, error) {
	cmd := &command{kind: kind, v: v, ops: ops, reply: make(chan rankReply, w.p)}
	for _, ch := range w.cmds {
		ch <- cmd
	}
	reps := make([]rankReply, w.p)
	var firstErr error
	for i := 0; i < w.p; i++ {
		rep := <-cmd.reply
		reps[rep.rank] = rep
		if rep.err != nil && firstErr == nil {
			firstErr = fmt.Errorf("dserver: rank %d: %w", rep.rank, rep.err)
		}
	}
	if firstErr != nil {
		// A rank that errored has left its command loop; the world cannot
		// run further collectives. Latch the failure and drain.
		w.failed = firstErr
		w.shutdownLocked()
	}
	return reps, firstErr
}

// askLocked sends cmd to a single rank and waits for its reply. Only valid
// for commands that perform no collectives.
func (w *World) askLocked(rank int, kind cmdKind, v int) rankReply {
	cmd := &command{kind: kind, v: v, reply: make(chan rankReply, 1)}
	w.cmds[rank] <- cmd
	return <-cmd.reply
}

func (w *World) guardLocked() error {
	if w.failed != nil {
		return w.failed
	}
	if w.closed {
		return fmt.Errorf("dserver: world closed")
	}
	return nil
}

// P returns the world size.
func (w *World) P() int { return w.p }

// NumVertices returns the (fixed) vertex-ID space size.
func (w *World) NumVertices() int { return w.n }

// CommunityOf returns vertex v's current community label (the representative
// vertex of its community). The owner rank v mod p answers from memory.
func (w *World) CommunityOf(v int) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.guardLocked(); err != nil {
		return 0, err
	}
	if v < 0 || v >= w.n {
		return 0, fmt.Errorf("dserver: vertex %d out of range [0,%d)", v, w.n)
	}
	rep := w.askLocked(v%w.p, cmdCommunity, v)
	if !rep.ok {
		return 0, fmt.Errorf("dserver: rank %d does not own vertex %d", v%w.p, v)
	}
	return rep.comm, nil
}

// Neighborhood returns vertex v's current adjacency, merged across ranks
// (a hub's arcs are sharded; a low vertex lives wholly on its owner) and
// normalized to one arc per neighbor, sorted by target.
func (w *World) Neighborhood(v int) ([]partition.Arc, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.guardLocked(); err != nil {
		return nil, err
	}
	if v < 0 || v >= w.n {
		return nil, fmt.Errorf("dserver: vertex %d out of range [0,%d)", v, w.n)
	}
	reps, err := w.broadcastLocked(cmdNeighborhood, v, nil)
	if err != nil {
		return nil, err
	}
	sum := make(map[int]float64)
	for _, rep := range reps {
		for _, a := range rep.arcs {
			sum[a.To] += a.W
		}
	}
	arcs := make([]partition.Arc, 0, len(sum))
	for to, wt := range sum {
		arcs = append(arcs, partition.Arc{To: to, W: wt})
	}
	sort.Slice(arcs, func(i, j int) bool { return arcs[i].To < arcs[j].To })
	return arcs, nil
}

// Modularity returns the current global modularity (replicated state; rank
// 0 answers).
func (w *World) Modularity() (float64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.guardLocked(); err != nil {
		return 0, err
	}
	return w.askLocked(0, cmdStats, 0).q, nil
}

// Membership assembles the full current membership from every rank's
// tracked vertices, normalized to compact community IDs.
func (w *World) Membership() (graph.Membership, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.guardLocked(); err != nil {
		return nil, err
	}
	reps, err := w.broadcastLocked(cmdTracked, 0, nil)
	if err != nil {
		return nil, err
	}
	m := make(graph.Membership, w.n)
	for i := range m {
		m[i] = -1
	}
	for _, rep := range reps {
		for i, v := range rep.vertices {
			m[v] = rep.labels[i]
		}
	}
	for v, c := range m {
		if c < 0 {
			return nil, fmt.Errorf("dserver: vertex %d reported by no rank", v)
		}
	}
	m.Normalize()
	return m, nil
}

// Update validates ops against the edge ledger, applies them on every rank
// as one replicated incremental batch, and (with AutoResolve) runs the
// full-solve fallback when drift crosses a threshold.
func (w *World) Update(ops []Op) (UpdateOutcome, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.guardLocked(); err != nil {
		return UpdateOutcome{}, err
	}
	eops, commit, err := w.stageLocked(ops)
	if err != nil {
		return UpdateOutcome{}, err
	}
	reps, err := w.broadcastLocked(cmdUpdate, 0, eops)
	if err != nil {
		return UpdateOutcome{}, err
	}
	commit()
	out := UpdateOutcome{UpdateResult: reps[0].res}
	w.stats.Batches++
	w.stats.Ops += int64(len(eops))
	if out.NeedFull && w.autoResolve {
		if _, err := w.broadcastLocked(cmdSolve, 0, nil); err != nil {
			return UpdateOutcome{}, err
		}
		out.Full = true
		w.stats.Full++
	} else {
		w.stats.Incremental++
	}
	w.refreshStatsLocked()
	return out, nil
}

// Resolve forces the full-solve fallback now, resetting drift.
func (w *World) Resolve() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.guardLocked(); err != nil {
		return err
	}
	if _, err := w.broadcastLocked(cmdSolve, 0, nil); err != nil {
		return err
	}
	w.stats.Full++
	w.refreshStatsLocked()
	return nil
}

// stageLocked validates ops against the ledger and prepares the replicated
// EdgeOp batch: deletes are filled with the edge's full current weight.
// Nothing is committed until the ranks accept the batch; commit applies the
// staged ledger mutations.
func (w *World) stageLocked(ops []Op) ([]core.EdgeOp, func(), error) {
	type entry struct {
		w  float64
		ok bool
	}
	overlay := make(map[uint64]entry)
	get := func(k uint64) (float64, bool) {
		if e, hit := overlay[k]; hit {
			return e.w, e.ok
		}
		wt, ok := w.edges[k]
		return wt, ok
	}
	eops := make([]core.EdgeOp, len(ops))
	for i, op := range ops {
		if op.U < 0 || op.U >= w.n || op.V < 0 || op.V >= w.n {
			return nil, nil, fmt.Errorf("dserver: op %d: vertex out of range [0,%d)", i, w.n)
		}
		if op.U == op.V {
			return nil, nil, fmt.Errorf("dserver: op %d: self-loop %d", i, op.U)
		}
		k := edgeKey(op.U, op.V)
		if op.Del {
			cur, ok := get(k)
			if !ok {
				return nil, nil, fmt.Errorf("dserver: op %d: delete of absent edge (%d,%d)", i, op.U, op.V)
			}
			overlay[k] = entry{}
			eops[i] = core.EdgeOp{U: op.U, V: op.V, W: cur, Del: true}
			continue
		}
		if op.W <= 0 {
			return nil, nil, fmt.Errorf("dserver: op %d: insert weight %g, want > 0", i, op.W)
		}
		cur, _ := get(k)
		overlay[k] = entry{w: cur + op.W, ok: true}
		eops[i] = core.EdgeOp{U: op.U, V: op.V, W: op.W}
	}
	commit := func() {
		for k, e := range overlay {
			if e.ok {
				w.edges[k] = e.w
			} else {
				delete(w.edges, k)
			}
		}
	}
	return eops, commit, nil
}

// Stats returns a snapshot of the serving counters.
func (w *World) Stats() Stats {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.stats
}

func (w *World) refreshStatsLocked() {
	rep := w.askLocked(0, cmdStats, 0)
	w.stats.Modularity = rep.q
	w.stats.DriftQ = rep.dq
	w.stats.DriftTouch = rep.dtouch
	w.stats.Edges = int64(len(w.edges))
}

// Close shuts the world down and waits for every rank to exit.
func (w *World) Close() error {
	w.mu.Lock()
	already := w.closed
	w.shutdownLocked()
	w.mu.Unlock()
	if already {
		return nil
	}
	return <-w.runErr
}

func (w *World) shutdownLocked() {
	if w.closed {
		return
	}
	w.closed = true
	for _, ch := range w.cmds {
		close(ch)
	}
}

// edgeKey packs an undirected edge into a map key (low vertex first).
func edgeKey(u, v int) uint64 {
	if u > v {
		u, v = v, u
	}
	return uint64(u)<<32 | uint64(v)
}
