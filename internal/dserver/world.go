// Package dserver hosts a resident clustering service: a world of ranks
// that stays up after the initial solve, keeping the partitioned graph and
// the converged communities in memory, and answering queries and edge
// updates without re-ingesting anything.
//
// The driver (World) owns the authoritative edge ledger and the public API;
// each rank runs a command loop around a core.Session. Queries that only
// need replicated or owner-local state (community-of-vertex, modularity)
// touch a single rank; updates are replicated batches that every rank
// applies through Session.ApplyUpdates, which re-clusters incrementally
// from the vertices within UpdateKHops of the changed edges. When the
// session reports drift past the configured thresholds the world falls
// back to a full solve (the quality oracle), in the same Update call when
// AutoResolve is set.
//
// All public methods are safe for concurrent use. Mutations (Update,
// Resolve) serialize behind the world's write lock so each replicated
// command reaches every rank exactly once and in the same order; queries
// never enter the command loop at all — the driver reads each rank's
// Session directly under that rank's read lock, so community and
// modularity lookups on idle ranks proceed concurrently with each other
// and even with an in-flight update that is busy on other ranks.
// Multi-rank reads (Neighborhood, Membership) take the world's read lock
// instead, which excludes updates and therefore sees a consistent
// cross-rank snapshot.
package dserver

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/partition"
)

// Options configures a World.
type Options struct {
	// Core is passed to every rank's core.Session. P must match the world
	// size (0 adopts P below). DHigh <= 0 gets the same default core.Run
	// applies: max(P, 4*arcs/vertices).
	Core core.Options
	// P is the number of resident ranks.
	P int
	// AutoResolve makes Update run the full-solve fallback in the same
	// call whenever the incremental pass crosses a drift threshold. When
	// false the caller sees NeedFull and decides when to call Resolve.
	AutoResolve bool
}

// Stats is a snapshot of the world's serving counters.
type Stats struct {
	Batches     int64 // update batches applied
	Incremental int64 // batches answered by the incremental path alone
	Full        int64 // full-solve fallbacks (including explicit Resolve calls)
	Ops         int64 // edge operations applied
	Edges       int64 // current edge count in the ledger
	Modularity  float64
	DriftQ      float64
	DriftTouch  float64
}

// UpdateOutcome reports one Update call.
type UpdateOutcome struct {
	core.UpdateResult
	// Full is true when this call ran the full-solve fallback (AutoResolve).
	Full bool
}

// Op is one requested edge mutation. Inserts carry W > 0 and accumulate
// onto an existing edge; deletes ignore W (the ledger supplies the full
// current weight) and remove the edge entirely.
type Op struct {
	U, V int
	W    float64
	Del  bool
}

type cmdKind int

// Only mutating, collective operations flow through the command loop;
// queries read the sessions directly.
const (
	cmdUpdate cmdKind = iota
	cmdSolve
)

type rankReply struct {
	rank int
	err  error
	res  core.UpdateResult
	q    float64
}

type command struct {
	kind  cmdKind
	ops   []core.EdgeOp
	reply chan rankReply
}

// World is the resident service: p rank goroutines inside a comm.RunWorld,
// plus the driver state (edge ledger, counters) guarded by mu.
//
// Lock order (always acquire left to right): mu → gmu → rankMu[r].
//   - mu (RW): writers are Update/Resolve/Close; multi-rank readers
//     (Neighborhood, Membership, Stats) hold it shared.
//   - gmu (RW): liveness guard (failed/closed). Every direct session read
//     holds it shared for its whole duration so shutdown — which closes
//     the sessions — cannot begin mid-read.
//   - rankMu[r] (RW): rank r's session state. The rank goroutine takes the
//     write lock around each command it executes (and around the final
//     session close); single-rank queries take the read lock, so they
//     only ever wait on their own rank's in-flight work.
type World struct {
	p           int
	n           int
	autoResolve bool

	mu    sync.RWMutex
	cmds  []chan *command
	edges map[uint64]float64
	stats Stats

	gmu    sync.RWMutex
	closed bool
	failed error // sticky: first rank error wires the world shut

	rankMu   []sync.RWMutex
	sessions []*core.Session // filled by the rank loops before ready

	runErr chan error
}

// New builds the world from g, solves it, and leaves the ranks resident.
// It returns once every rank has converged and is accepting commands.
func New(g *graph.Graph, opt Options) (*World, error) {
	p := opt.P
	if p <= 0 {
		p = opt.Core.P
	}
	if p <= 0 {
		p = 1
	}
	copt := opt.Core
	copt.P = p
	if copt.DHigh <= 0 {
		// Mirror core.Run's default so a served world and a batch run over
		// the same graph see the same partition (and the same answer).
		copt.DHigh = p
		if g.NumVertices() > 0 {
			if floor := 4 * int(g.NumArcs()) / g.NumVertices(); floor > copt.DHigh {
				copt.DHigh = floor
			}
		}
	}
	layout, err := partition.Build(g, partition.Options{
		P: p, Kind: copt.Partitioning, DHigh: copt.DHigh, Workers: copt.Workers,
	})
	if err != nil {
		return nil, err
	}

	w := &World{
		p:           p,
		n:           g.NumVertices(),
		autoResolve: opt.AutoResolve,
		cmds:        make([]chan *command, p),
		edges:       make(map[uint64]float64, g.NumEdges()),
		rankMu:      make([]sync.RWMutex, p),
		sessions:    make([]*core.Session, p),
		runErr:      make(chan error, 1),
	}
	for _, e := range g.Edges() {
		w.edges[edgeKey(e.U, e.V)] += e.W
	}
	for r := range w.cmds {
		w.cmds[r] = make(chan *command, 1)
	}

	ready := make(chan error, p)
	go func() {
		w.runErr <- comm.RunWorld(p, func(c comm.Comm) error {
			return w.rankLoop(c, layout, copt, ready)
		})
	}()
	for r := 0; r < p; r++ {
		if err := <-ready; err != nil {
			// Drain the world: close the command channels so healthy ranks
			// exit their loops, then wait for RunWorld to join.
			w.mu.Lock()
			w.gmu.Lock()
			w.shutdownGLocked()
			w.gmu.Unlock()
			w.mu.Unlock()
			<-w.runErr
			return nil, err
		}
	}
	w.mu.Lock()
	w.refreshStatsLocked()
	w.mu.Unlock()
	return w, nil
}

func (w *World) rankLoop(c comm.Comm, layout *partition.Layout, copt core.Options, ready chan<- error) error {
	rank := c.Rank()
	ses, err := core.NewSession(c, layout.Parts[rank].CloneForServing(), copt)
	if err != nil {
		ready <- err
		return err
	}
	// The close must exclude concurrent direct readers of this rank's
	// session, exactly like a command.
	defer func() {
		w.rankMu[rank].Lock()
		ses.Close()
		w.rankMu[rank].Unlock()
	}()
	if err := ses.Solve(); err != nil {
		ready <- err
		return err
	}
	// Publish the session for direct driver-side reads. The ready send
	// orders this before any query New's caller can issue.
	w.sessions[rank] = ses
	ready <- nil
	for cmd := range w.cmds[rank] {
		w.rankMu[rank].Lock()
		rep := rankReply{rank: rank}
		switch cmd.kind {
		case cmdUpdate:
			rep.res, rep.err = ses.ApplyUpdates(cmd.ops)
		case cmdSolve:
			rep.err = ses.Solve()
		}
		rep.q = ses.Modularity()
		w.rankMu[rank].Unlock()
		cmd.reply <- rep
		if rep.err != nil {
			return rep.err
		}
	}
	return nil
}

// broadcastLocked sends cmd to every rank and collects all replies in rank
// order. Collective commands (update, solve) require this shape: every rank
// must enter the collective, so the sends all happen before any wait.
// Caller holds w.mu (write).
func (w *World) broadcastLocked(kind cmdKind, ops []core.EdgeOp) ([]rankReply, error) {
	cmd := &command{kind: kind, ops: ops, reply: make(chan rankReply, w.p)}
	for _, ch := range w.cmds {
		ch <- cmd
	}
	reps := make([]rankReply, w.p)
	var firstErr error
	for i := 0; i < w.p; i++ {
		rep := <-cmd.reply
		reps[rep.rank] = rep
		if rep.err != nil && firstErr == nil {
			firstErr = fmt.Errorf("dserver: rank %d: %w", rep.rank, rep.err)
		}
	}
	if firstErr != nil {
		// A rank that errored has left its command loop; the world cannot
		// run further collectives. Latch the failure and drain.
		w.gmu.Lock()
		w.failed = firstErr
		w.shutdownGLocked()
		w.gmu.Unlock()
	}
	return reps, firstErr
}

// liveGLocked reports the world's liveness. Caller holds gmu (either mode).
func (w *World) liveGLocked() error {
	if w.failed != nil {
		return w.failed
	}
	if w.closed {
		return fmt.Errorf("dserver: world closed")
	}
	return nil
}

// guard checks liveness for a mutating caller that holds w.mu.
func (w *World) guard() error {
	w.gmu.RLock()
	defer w.gmu.RUnlock()
	return w.liveGLocked()
}

// P returns the world size.
func (w *World) P() int { return w.p }

// NumVertices returns the (fixed) vertex-ID space size.
func (w *World) NumVertices() int { return w.n }

// CommunityOf returns vertex v's current community label (the representative
// vertex of its community), read straight from the owner rank's session
// under that rank's read lock — it does not serialize behind updates
// unless the owner itself is mid-command.
func (w *World) CommunityOf(v int) (int, error) {
	w.gmu.RLock()
	defer w.gmu.RUnlock()
	if err := w.liveGLocked(); err != nil {
		return 0, err
	}
	if v < 0 || v >= w.n {
		return 0, fmt.Errorf("dserver: vertex %d out of range [0,%d)", v, w.n)
	}
	r := v % w.p
	w.rankMu[r].RLock()
	comm, ok := w.sessions[r].CommunityOf(v)
	w.rankMu[r].RUnlock()
	if !ok {
		return 0, fmt.Errorf("dserver: rank %d does not own vertex %d", r, v)
	}
	return comm, nil
}

// Neighborhood returns vertex v's current adjacency, merged across ranks
// (a hub's arcs are sharded; a low vertex lives wholly on its owner) and
// normalized to one arc per neighbor, sorted by target.
func (w *World) Neighborhood(v int) ([]partition.Arc, error) {
	w.mu.RLock()
	defer w.mu.RUnlock()
	w.gmu.RLock()
	defer w.gmu.RUnlock()
	if err := w.liveGLocked(); err != nil {
		return nil, err
	}
	if v < 0 || v >= w.n {
		return nil, fmt.Errorf("dserver: vertex %d out of range [0,%d)", v, w.n)
	}
	// Holding the world read lock excludes updates, so reading every
	// session in turn sees one consistent cross-rank snapshot.
	sum := make(map[int]float64)
	for r := 0; r < w.p; r++ {
		for _, a := range w.sessions[r].NeighborhoodOf(v) {
			sum[a.To] += a.W
		}
	}
	arcs := make([]partition.Arc, 0, len(sum))
	for to, wt := range sum {
		arcs = append(arcs, partition.Arc{To: to, W: wt})
	}
	sort.Slice(arcs, func(i, j int) bool { return arcs[i].To < arcs[j].To })
	return arcs, nil
}

// Modularity returns the current global modularity (replicated state; rank
// 0's session answers directly under its read lock).
func (w *World) Modularity() (float64, error) {
	w.gmu.RLock()
	defer w.gmu.RUnlock()
	if err := w.liveGLocked(); err != nil {
		return 0, err
	}
	w.rankMu[0].RLock()
	q := w.sessions[0].Modularity()
	w.rankMu[0].RUnlock()
	return q, nil
}

// Membership assembles the full current membership from every rank's
// tracked vertices, normalized to compact community IDs.
func (w *World) Membership() (graph.Membership, error) {
	w.mu.RLock()
	defer w.mu.RUnlock()
	w.gmu.RLock()
	defer w.gmu.RUnlock()
	if err := w.liveGLocked(); err != nil {
		return nil, err
	}
	m := make(graph.Membership, w.n)
	for i := range m {
		m[i] = -1
	}
	for r := 0; r < w.p; r++ {
		vertices, labels := w.sessions[r].Tracked()
		for i, v := range vertices {
			m[v] = labels[i]
		}
	}
	for v, c := range m {
		if c < 0 {
			return nil, fmt.Errorf("dserver: vertex %d reported by no rank", v)
		}
	}
	m.Normalize()
	return m, nil
}

// Update validates ops against the edge ledger, applies them on every rank
// as one replicated incremental batch, and (with AutoResolve) runs the
// full-solve fallback when drift crosses a threshold.
func (w *World) Update(ops []Op) (UpdateOutcome, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.guard(); err != nil {
		return UpdateOutcome{}, err
	}
	eops, commit, err := w.stageLocked(ops)
	if err != nil {
		return UpdateOutcome{}, err
	}
	reps, err := w.broadcastLocked(cmdUpdate, eops)
	if err != nil {
		return UpdateOutcome{}, err
	}
	commit()
	out := UpdateOutcome{UpdateResult: reps[0].res}
	w.stats.Batches++
	w.stats.Ops += int64(len(eops))
	if out.NeedFull && w.autoResolve {
		if _, err := w.broadcastLocked(cmdSolve, nil); err != nil {
			return UpdateOutcome{}, err
		}
		out.Full = true
		w.stats.Full++
	} else {
		w.stats.Incremental++
	}
	w.refreshStatsLocked()
	return out, nil
}

// Resolve forces the full-solve fallback now, resetting drift.
func (w *World) Resolve() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.guard(); err != nil {
		return err
	}
	if _, err := w.broadcastLocked(cmdSolve, nil); err != nil {
		return err
	}
	w.stats.Full++
	w.refreshStatsLocked()
	return nil
}

// stageLocked validates ops against the ledger and prepares the replicated
// EdgeOp batch: deletes are filled with the edge's full current weight.
// Nothing is committed until the ranks accept the batch; commit applies the
// staged ledger mutations.
func (w *World) stageLocked(ops []Op) ([]core.EdgeOp, func(), error) {
	type entry struct {
		w  float64
		ok bool
	}
	overlay := make(map[uint64]entry)
	get := func(k uint64) (float64, bool) {
		if e, hit := overlay[k]; hit {
			return e.w, e.ok
		}
		wt, ok := w.edges[k]
		return wt, ok
	}
	eops := make([]core.EdgeOp, len(ops))
	for i, op := range ops {
		if op.U < 0 || op.U >= w.n || op.V < 0 || op.V >= w.n {
			return nil, nil, fmt.Errorf("dserver: op %d: vertex out of range [0,%d)", i, w.n)
		}
		if op.U == op.V {
			return nil, nil, fmt.Errorf("dserver: op %d: self-loop %d", i, op.U)
		}
		k := edgeKey(op.U, op.V)
		if op.Del {
			cur, ok := get(k)
			if !ok {
				return nil, nil, fmt.Errorf("dserver: op %d: delete of absent edge (%d,%d)", i, op.U, op.V)
			}
			overlay[k] = entry{}
			eops[i] = core.EdgeOp{U: op.U, V: op.V, W: cur, Del: true}
			continue
		}
		if op.W <= 0 {
			return nil, nil, fmt.Errorf("dserver: op %d: insert weight %g, want > 0", i, op.W)
		}
		cur, _ := get(k)
		overlay[k] = entry{w: cur + op.W, ok: true}
		eops[i] = core.EdgeOp{U: op.U, V: op.V, W: op.W}
	}
	commit := func() {
		for k, e := range overlay {
			if e.ok {
				w.edges[k] = e.w
			} else {
				delete(w.edges, k)
			}
		}
	}
	return eops, commit, nil
}

// Stats returns a snapshot of the serving counters.
func (w *World) Stats() Stats {
	w.mu.RLock()
	defer w.mu.RUnlock()
	return w.stats
}

// refreshStatsLocked re-reads rank 0's replicated scalars. Caller holds
// w.mu (write), so the ranks are quiescent.
func (w *World) refreshStatsLocked() {
	w.gmu.RLock()
	live := w.liveGLocked() == nil
	w.gmu.RUnlock()
	if !live {
		return
	}
	w.rankMu[0].RLock()
	ses := w.sessions[0]
	w.stats.Modularity = ses.Modularity()
	w.stats.DriftQ, w.stats.DriftTouch = ses.Drift()
	w.rankMu[0].RUnlock()
	w.stats.Edges = int64(len(w.edges))
}

// Close shuts the world down and waits for every rank to exit.
func (w *World) Close() error {
	w.mu.Lock()
	w.gmu.Lock()
	already := w.closed
	w.shutdownGLocked()
	w.gmu.Unlock()
	w.mu.Unlock()
	if already {
		return nil
	}
	return <-w.runErr
}

// shutdownGLocked closes the command channels so the rank loops drain.
// Caller holds gmu (write): no direct reader is mid-read, and none can
// start before seeing closed.
func (w *World) shutdownGLocked() {
	if w.closed {
		return
	}
	w.closed = true
	for _, ch := range w.cmds {
		close(ch)
	}
}

// edgeKey packs an undirected edge into a map key (low vertex first).
func edgeKey(u, v int) uint64 {
	if u > v {
		u, v = v, u
	}
	return uint64(u)<<32 | uint64(v)
}
