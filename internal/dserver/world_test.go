package dserver

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/partition"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite the dserver protocol golden files")

// fixtureGraph is the deterministic graph behind the golden fixtures and
// most tests: 5 cliques of 6 vertices joined in a ring.
func fixtureGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g, _, err := gen.Caveman(5, 6)
	if err != nil {
		t.Fatalf("caveman: %v", err)
	}
	return g
}

func newWorld(t *testing.T, g *graph.Graph, opt Options) *World {
	t.Helper()
	w, err := New(g, opt)
	if err != nil {
		t.Fatalf("dserver.New: %v", err)
	}
	t.Cleanup(func() {
		if err := w.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	})
	return w
}

// TestWorldMatchesBatchRun pins the resident world's converged state to the
// batch pipeline: same membership, same modularity bits.
func TestWorldMatchesBatchRun(t *testing.T) {
	g := fixtureGraph(t)
	for _, p := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("p%d", p), func(t *testing.T) {
			res, err := core.Run(g, core.Options{P: p})
			if err != nil {
				t.Fatalf("core.Run: %v", err)
			}
			w := newWorld(t, g, Options{P: p})
			m, err := w.Membership()
			if err != nil {
				t.Fatalf("membership: %v", err)
			}
			if len(m) != len(res.Membership) {
				t.Fatalf("membership length %d, want %d", len(m), len(res.Membership))
			}
			for v := range m {
				if m[v] != res.Membership[v] {
					t.Fatalf("vertex %d: community %d, want %d", v, m[v], res.Membership[v])
				}
			}
			q, err := w.Modularity()
			if err != nil {
				t.Fatalf("modularity: %v", err)
			}
			// The session recomputes Q over the projected resident stage, so
			// the summation order can differ from the batch pipeline's by an
			// ulp; the value itself must agree.
			if d := q - res.Modularity; d > 1e-9 || d < -1e-9 {
				t.Fatalf("modularity %x, want %x (|diff| %g)", q, res.Modularity, d)
			}
			// CommunityOf answers must be consistent with the assembled
			// membership: same label for every vertex of a community.
			rep := make(map[int]int)
			for v := 0; v < g.NumVertices(); v++ {
				c, err := w.CommunityOf(v)
				if err != nil {
					t.Fatalf("community of %d: %v", v, err)
				}
				if prev, ok := rep[m[v]]; ok && prev != c {
					t.Fatalf("community %d has labels %d and %d", m[v], prev, c)
				}
				rep[m[v]] = c
			}
		})
	}
}

// TestWorldNeighborhood checks the merged adjacency answer against the
// input graph, before and after updates.
func TestWorldNeighborhood(t *testing.T) {
	g := fixtureGraph(t)
	w := newWorld(t, g, Options{P: 2})
	want := make(map[int]map[int]float64)
	for _, e := range g.Edges() {
		if want[e.U] == nil {
			want[e.U] = make(map[int]float64)
		}
		if want[e.V] == nil {
			want[e.V] = make(map[int]float64)
		}
		want[e.U][e.V] += e.W
		want[e.V][e.U] += e.W
	}
	check := func(v int) {
		t.Helper()
		arcs, err := w.Neighborhood(v)
		if err != nil {
			t.Fatalf("neighborhood %d: %v", v, err)
		}
		if len(arcs) != len(want[v]) {
			t.Fatalf("vertex %d: %d arcs, want %d (%v)", v, len(arcs), len(want[v]), arcs)
		}
		for _, a := range arcs {
			if want[v][a.To] != a.W {
				t.Fatalf("vertex %d arc to %d: weight %g, want %g", v, a.To, a.W, want[v][a.To])
			}
		}
	}
	for v := 0; v < g.NumVertices(); v++ {
		check(v)
	}
	if _, err := w.Update([]Op{{U: 0, V: 17, W: 2.5}, {U: 3, V: 4, Del: true}}); err != nil {
		t.Fatalf("update: %v", err)
	}
	want[0][17], want[17][0] = 2.5, 2.5
	delete(want[3], 4)
	delete(want[4], 3)
	for _, v := range []int{0, 3, 4, 17} {
		check(v)
	}
}

// TestWorldLedgerValidation exercises the driver-side edge ledger: deletes
// of absent edges and bad ops are rejected atomically, before any rank
// sees the batch.
func TestWorldLedgerValidation(t *testing.T) {
	g := fixtureGraph(t)
	w := newWorld(t, g, Options{P: 2})
	before := w.Stats()
	cases := []struct {
		name string
		ops  []Op
	}{
		{"delete-absent", []Op{{U: 0, V: 29, Del: true}}},
		{"delete-twice", []Op{{U: 0, V: 1, Del: true}, {U: 0, V: 1, Del: true}}},
		{"self-loop", []Op{{U: 3, V: 3, W: 1}}},
		{"bad-weight", []Op{{U: 0, V: 29, W: -1}}},
		{"out-of-range", []Op{{U: 0, V: 30, W: 1}}},
		{"mixed-bad", []Op{{U: 0, V: 29, W: 1}, {U: 1, V: 1, W: 1}}},
	}
	for _, tc := range cases {
		if _, err := w.Update(tc.ops); err == nil {
			t.Errorf("%s: update succeeded, want error", tc.name)
		}
	}
	after := w.Stats()
	if after.Batches != before.Batches || after.Edges != before.Edges {
		t.Fatalf("rejected updates mutated state: %+v -> %+v", before, after)
	}
	// Within-batch sequencing: insert then delete of the same new edge is
	// valid and nets out to no edge.
	if _, err := w.Update([]Op{{U: 0, V: 29, W: 1}, {U: 0, V: 29, Del: true}}); err != nil {
		t.Fatalf("insert+delete batch: %v", err)
	}
	if got := w.Stats().Edges; got != before.Edges {
		t.Fatalf("edges %d after net-zero batch, want %d", got, before.Edges)
	}
}

// TestGoldenProtocol replays testdata/script.txt through the line protocol
// for every world size and both partitionings, and pins the full response
// stream. Regenerate with -update-golden.
func TestGoldenProtocol(t *testing.T) {
	script, err := os.ReadFile(filepath.Join("testdata", "script.txt"))
	if err != nil {
		t.Fatalf("read script: %v", err)
	}
	for _, p := range []int{1, 2, 4} {
		for _, kind := range []partition.Kind{partition.Delegate, partition.OneD} {
			name := fmt.Sprintf("p%d_%s", p, kind)
			t.Run(name, func(t *testing.T) {
				g := fixtureGraph(t)
				// The fixture graph is tiny, so any batch touches a big
				// fraction of it; lift the touch threshold so the goldens
				// exercise the incremental path, with the quality-drift
				// threshold left to trigger the full-solve fallback.
				w := newWorld(t, g, Options{
					P:           p,
					AutoResolve: true,
					Core: core.Options{
						Partitioning: kind,
						DriftQ:       0.02,
						DriftTouched: 0.95,
					},
				})
				var out strings.Builder
				if err := w.Serve(strings.NewReader(string(script)), &out); err != nil {
					t.Fatalf("serve: %v", err)
				}
				path := filepath.Join("testdata", "golden_"+name+".txt")
				if *updateGolden {
					if err := os.WriteFile(path, []byte(out.String()), 0o644); err != nil {
						t.Fatalf("write golden: %v", err)
					}
					return
				}
				want, err := os.ReadFile(path)
				if err != nil {
					t.Fatalf("read golden (run with -update-golden to create): %v", err)
				}
				if out.String() != string(want) {
					t.Errorf("protocol stream diverged from %s:\ngot:\n%swant:\n%s", path, out.String(), want)
				}
			})
		}
	}
}

// TestProtocolErrors pins the error surface of the line protocol.
func TestProtocolErrors(t *testing.T) {
	g := fixtureGraph(t)
	w := newWorld(t, g, Options{P: 2})
	for _, tc := range []struct{ line, wantPrefix string }{
		{"", ""},
		{"# comment", ""},
		{"frobnicate 3", `error: unknown command "frobnicate"`},
		{"community x", `error: community: bad vertex "x"`},
		{"community 99", "error: dserver: vertex 99 out of range"},
		{"neighborhood -1", "error: dserver: vertex -1 out of range"},
		{"update", "error: update: empty op list"},
		{"update 0,1,2", `error: update: op "0,1,2"`},
		{"update +0,1", `error: update: op "+0,1"`},
		{"update -0,1,2", `error: update: op "-0,1,2"`},
		{"update +0,1,zap", `error: update: op "+0,1,zap": bad weight`},
		{"update -0,29", "error: dserver: op 0: delete of absent edge (0,29)"},
	} {
		got := w.HandleLine(tc.line)
		if tc.wantPrefix == "" {
			if got != "" {
				t.Errorf("HandleLine(%q) = %q, want empty", tc.line, got)
			}
			continue
		}
		if !strings.HasPrefix(got, tc.wantPrefix) {
			t.Errorf("HandleLine(%q) = %q, want prefix %q", tc.line, got, tc.wantPrefix)
		}
	}
}

// TestWorldSoak drives concurrent tenants against one resident world —
// mixed queries and updates — under the race detector, with the comm
// conformance suite's watchdog and goroutine-census idioms. Each tenant
// churns a private pool of extra edges (insert then delete), so tenant
// batches never invalidate each other's ledger view.
func TestWorldSoak(t *testing.T) {
	const (
		tenants = 5
		rounds  = 25
	)
	baseline := runtime.NumGoroutine()
	g := fixtureGraph(t)
	w, err := New(g, Options{P: 4, AutoResolve: true})
	if err != nil {
		t.Fatalf("dserver.New: %v", err)
	}

	done := make(chan error, 1)
	go func() {
		var wg sync.WaitGroup
		errs := make([]error, tenants)
		for tn := 0; tn < tenants; tn++ {
			wg.Add(1)
			go func(tn int) {
				defer wg.Done()
				errs[tn] = soakTenant(w, g.NumVertices(), tn)
			}(tn)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("soak: %v", err)
		}
	case <-time.After(2 * time.Minute):
		buf := make([]byte, 1<<20)
		n := runtime.Stack(buf, true)
		t.Fatalf("watchdog: soak still running after 2m\n%s", buf[:n])
	}

	s := w.Stats()
	if s.Batches < tenants*rounds {
		t.Errorf("only %d update batches recorded, want >= %d", s.Batches, tenants*rounds)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	waitGoroutines(t, baseline)
}

// soakTenant runs one tenant's mixed query/update loop. The tenant's extra
// edges connect vertex pairs reserved to it (disjoint across tenants and
// absent from the ring-of-cliques base graph), inserted and deleted in
// strict alternation so the shared ledger always agrees with the tenant's
// view no matter how the world interleaves tenants.
func soakTenant(w *World, n, tn int) error {
	rng := rand.New(rand.NewSource(int64(1000 + tn)))
	// Clique c spans vertices [6c, 6c+6); the ring links only touch offset
	// 0, so cross-clique pairs between interior vertices (offsets 2..4)
	// never exist in the base graph. Tenant tn churns pairs between
	// cliques tn and (tn+2) mod 5 — the five unordered clique pairs are
	// distinct, so no two tenants ever touch the same edge.
	pairFor := func(i int) (int, int) {
		u := tn*6 + 2 + i%3
		v := ((tn+2)%5)*6 + 2 + (i/3)%3
		return u, v
	}
	held := make(map[int]bool)
	const rounds = 25
	for r := 0; r < rounds; r++ {
		i := rng.Intn(9)
		u, v := pairFor(i)
		var ops []Op
		if held[i] {
			ops = []Op{{U: u, V: v, Del: true}}
		} else {
			ops = []Op{{U: u, V: v, W: 0.5 + float64(tn)}}
		}
		if _, err := w.Update(ops); err != nil {
			return fmt.Errorf("tenant %d round %d update: %w", tn, r, err)
		}
		held[i] = !held[i]

		// Interleave queries.
		qv := rng.Intn(n)
		if _, err := w.CommunityOf(qv); err != nil {
			return fmt.Errorf("tenant %d community: %w", tn, err)
		}
		if _, err := w.Neighborhood(qv); err != nil {
			return fmt.Errorf("tenant %d neighborhood: %w", tn, err)
		}
		if _, err := w.Modularity(); err != nil {
			return fmt.Errorf("tenant %d modularity: %w", tn, err)
		}
	}
	// Drain held edges so the soak ends in a clean state.
	for i := range held {
		if held[i] {
			u, v := pairFor(i)
			if _, err := w.Update([]Op{{U: u, V: v, Del: true}}); err != nil {
				return fmt.Errorf("tenant %d drain: %w", tn, err)
			}
		}
	}
	return nil
}

// TestWorldReadersBypassWorldLock pins the per-rank read-lock design:
// single-rank queries (CommunityOf, Modularity) must answer while the
// world's command mutex is held — they read the owner session directly and
// never serialize behind updates. Holding w.mu here simulates a stalled
// mutation; before the rework this deadlocked.
func TestWorldReadersBypassWorldLock(t *testing.T) {
	g := fixtureGraph(t)
	w := newWorld(t, g, Options{P: 4})
	w.mu.Lock()
	done := make(chan error, 1)
	go func() {
		if _, err := w.CommunityOf(3); err != nil {
			done <- err
			return
		}
		_, err := w.Modularity()
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("query under held world lock: %v", err)
		}
	case <-time.After(30 * time.Second):
		w.mu.Unlock()
		t.Fatal("single-rank queries serialized behind the world lock")
	}
	w.mu.Unlock()
}

// TestWorldConcurrentReaderSoak hammers one world with many pure-reader
// goroutines racing a continuous updater — the race-detector soak for the
// direct-read query paths (run under -race by scripts/check.sh). Readers
// check answer sanity so a torn read surfaces even without the detector.
func TestWorldConcurrentReaderSoak(t *testing.T) {
	const (
		readers   = 8
		readerOps = 300
		writerOps = 40
	)
	baseline := runtime.NumGoroutine()
	g := fixtureGraph(t)
	n := g.NumVertices()
	w, err := New(g, Options{P: 4, AutoResolve: true})
	if err != nil {
		t.Fatalf("dserver.New: %v", err)
	}

	done := make(chan error, 1)
	go func() {
		var wg sync.WaitGroup
		errs := make([]error, readers+1)
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Interior vertices of cliques 0 and 2 (offsets 2..4) have no
			// base-graph edge between them; alternate insert/delete.
			for i := 0; i < writerOps; i++ {
				op := Op{U: 2, V: 14, W: 1.5}
				if i%2 == 1 {
					op = Op{U: 2, V: 14, Del: true}
				}
				if _, err := w.Update([]Op{op}); err != nil {
					errs[0] = fmt.Errorf("writer op %d: %w", i, err)
					return
				}
				if i%10 == 0 {
					if err := w.Resolve(); err != nil {
						errs[0] = fmt.Errorf("writer resolve %d: %w", i, err)
						return
					}
				}
			}
		}()
		for rd := 0; rd < readers; rd++ {
			wg.Add(1)
			go func(rd int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(900 + rd)))
				fail := func(err error) { errs[1+rd] = fmt.Errorf("reader %d: %w", rd, err) }
				for i := 0; i < readerOps; i++ {
					v := rng.Intn(n)
					c, err := w.CommunityOf(v)
					if err != nil {
						fail(err)
						return
					}
					if c < 0 || c >= n {
						fail(fmt.Errorf("community %d of vertex %d out of range", c, v))
						return
					}
					if q, err := w.Modularity(); err != nil {
						fail(err)
						return
					} else if q < -1 || q > 1 {
						fail(fmt.Errorf("modularity %g out of range", q))
						return
					}
					switch i % 3 {
					case 0:
						if _, err := w.Neighborhood(v); err != nil {
							fail(err)
							return
						}
					case 1:
						m, err := w.Membership()
						if err != nil {
							fail(err)
							return
						}
						if len(m) != n {
							fail(fmt.Errorf("membership has %d labels, want %d", len(m), n))
							return
						}
					default:
						w.Stats()
					}
				}
			}(rd)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("soak: %v", err)
		}
	case <-time.After(2 * time.Minute):
		buf := make([]byte, 1<<20)
		nb := runtime.Stack(buf, true)
		t.Fatalf("watchdog: reader soak still running after 2m\n%s", buf[:nb])
	}
	if err := w.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	waitGoroutines(t, baseline)
}

// waitGoroutines polls until the live goroutine count returns to (near)
// baseline, failing with a dump if it does not — the leak detector from
// the comm conformance suite.
func waitGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		n := runtime.NumGoroutine()
		if n <= baseline+3 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			m := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak: %d live, baseline %d\n%s", n, baseline, buf[:m])
		}
		time.Sleep(10 * time.Millisecond)
	}
}
