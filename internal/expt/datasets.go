// Package expt is the experiment harness that regenerates every table and
// figure of the paper's evaluation (Section V). Each experiment has a
// runner returning formatted tables/series; cmd/experiments and the
// top-level benchmarks call these runners.
//
// The paper's real-world datasets (Table I) are multi-billion-edge web
// crawls that are not redistributable and far exceed a single machine; the
// registry below substitutes synthetic stand-ins with matched structure
// (power-law degree distributions, planted communities where ground truth
// is needed) at laptop scale, as documented in DESIGN.md §2. Every stand-in
// is deterministic for its fixed seed.
package expt

import (
	"fmt"
	"sync"

	"repro/internal/gen"
	"repro/internal/graph"
)

// Dataset is one registered stand-in for a paper dataset.
type Dataset struct {
	// Name is the paper's dataset name.
	Name string
	// Description mirrors Table I's description column.
	Description string
	// PaperV and PaperE are the paper's reported sizes (display only).
	PaperV, PaperE string
	// Generate builds the stand-in graph; truth is nil when the dataset has
	// no planted communities.
	Generate func() (*graph.Graph, graph.Membership, error)
	// Large marks the stand-ins for the paper's "large" datasets, which
	// the quick experiment profile skips.
	Large bool
}

var (
	cacheMu sync.Mutex
	cache   = map[string]cachedDataset{}
)

type cachedDataset struct {
	g     *graph.Graph
	truth graph.Membership
	err   error
}

// Load generates (or returns the cached) graph for the dataset.
func (d Dataset) Load() (*graph.Graph, graph.Membership, error) {
	cacheMu.Lock()
	defer cacheMu.Unlock()
	if c, ok := cache[d.Name]; ok {
		return c.g, c.truth, c.err
	}
	g, truth, err := d.Generate()
	cache[d.Name] = cachedDataset{g: g, truth: truth, err: err}
	return g, truth, err
}

func lfr(n int, mu float64, seed int64) func() (*graph.Graph, graph.Membership, error) {
	return func() (*graph.Graph, graph.Membership, error) {
		return gen.LFR(gen.DefaultLFR(n, mu, seed))
	}
}

func rmat(scale, edgeFactor int, seed int64) func() (*graph.Graph, graph.Membership, error) {
	return func() (*graph.Graph, graph.Membership, error) {
		cfg := gen.Graph500RMAT(scale, seed)
		cfg.EdgeFactor = edgeFactor
		g, err := gen.RMAT(cfg)
		return g, nil, err
	}
}

func ba(n, m int, seed int64) func() (*graph.Graph, graph.Membership, error) {
	return func() (*graph.Graph, graph.Membership, error) {
		g, err := gen.BarabasiAlbert(n, m, seed)
		return g, nil, err
	}
}

// Datasets returns the ordered registry mirroring the paper's Table I.
func Datasets() []Dataset {
	return []Dataset{
		{
			Name:        "Amazon",
			Description: "Frequently co-purchased products from Amazon",
			PaperV:      "0.34M", PaperE: "0.93M",
			Generate: lfr(6000, 0.25, 101),
		},
		{
			Name:        "DBLP",
			Description: "A co-authorship network from DBLP",
			PaperV:      "0.32M", PaperE: "1.05M",
			Generate: lfr(6000, 0.35, 102),
		},
		{
			Name:        "ND-Web",
			Description: "A web network of University of Notre Dame",
			PaperV:      "0.33M", PaperE: "1.50M",
			Generate: lfr(6000, 0.15, 103),
		},
		{
			Name:        "YouTube",
			Description: "YouTube friendship network",
			PaperV:      "1.13M", PaperE: "2.99M",
			Generate: ba(12000, 3, 104),
		},
		{
			Name:        "LiveJournal",
			Description: "A virtual-community social site",
			PaperV:      "3.99M", PaperE: "34.68M",
			Generate: rmat(13, 8, 105),
			Large:    true,
		},
		{
			Name:        "UK-2005",
			Description: "Web crawl of the .uk domain in 2005",
			PaperV:      "39.36M", PaperE: "936.36M",
			Generate: rmat(14, 12, 106),
			Large:    true,
		},
		{
			Name:        "WebBase-2001",
			Description: "A crawl graph by WebBase",
			PaperV:      "118.14M", PaperE: "1.01B",
			Generate: rmat(15, 14, 107),
			Large:    true,
		},
		{
			Name:        "Friendster",
			Description: "An on-line gaming network",
			PaperV:      "65.61M", PaperE: "1.81B",
			Generate: rmat(15, 14, 108),
			Large:    true,
		},
		{
			Name:        "UK-2007",
			Description: "Web crawl of the .uk domain in 2007",
			PaperV:      "105.9M", PaperE: "3.78B",
			Generate: rmat(16, 14, 109),
			Large:    true,
		},
		{
			Name:        "LFR",
			Description: "A synthetic graph with built-in community structure",
			PaperV:      "0.1M", PaperE: "1.6M",
			Generate: lfr(8000, 0.1, 110),
		},
	}
}

// ByName returns the registered dataset with the given name.
func ByName(name string) (Dataset, error) {
	for _, d := range Datasets() {
		if d.Name == name {
			return d, nil
		}
	}
	return Dataset{}, fmt.Errorf("expt: unknown dataset %q", name)
}

// SmallDatasets returns the registry entries the quick profile runs.
func SmallDatasets() []Dataset {
	var out []Dataset
	for _, d := range Datasets() {
		if !d.Large {
			out = append(out, d)
		}
	}
	return out
}
