package expt

import (
	"fmt"
	"io"
)

// Experiment names accepted by Run and cmd/experiments.
var Names = []string{"table1", "fig5", "table2", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "comm", "gpu"}

// Run executes one named experiment and writes its tables to w.
func Run(name string, p Profile, w io.Writer) error {
	tables, err := Tables(name, p)
	if err != nil {
		return err
	}
	for _, t := range tables {
		t.Fprint(w)
	}
	return nil
}

// Tables executes one named experiment and returns its tables.
func Tables(name string, p Profile) ([]*Table, error) {
	var tables []*Table
	var err error
	switch name {
	case "table1":
		var t *Table
		t, err = Table1(p)
		tables = []*Table{t}
	case "fig5":
		tables, err = Fig5(p)
	case "table2":
		var t *Table
		t, err = Table2(p)
		tables = []*Table{t}
	case "fig6":
		tables, err = Fig6(p)
	case "fig7":
		var t *Table
		t, err = Fig7(p)
		tables = []*Table{t}
	case "fig8":
		tables, err = Fig8(p)
	case "fig9":
		var t *Table
		t, err = Fig9(p)
		tables = []*Table{t}
	case "fig10":
		var t *Table
		t, err = Fig10(p)
		tables = []*Table{t}
	case "fig11":
		tables, err = Fig11(p)
	case "comm":
		var t *Table
		t, err = FigComm(p)
		tables = []*Table{t}
	case "gpu":
		var t *Table
		t, err = FigGPU(p)
		tables = []*Table{t}
	default:
		return nil, fmt.Errorf("expt: unknown experiment %q (known: %v)", name, Names)
	}
	if err != nil {
		return nil, fmt.Errorf("expt: %s: %w", name, err)
	}
	return tables, nil
}

// RunAll executes every experiment in order.
func RunAll(p Profile, w io.Writer) error {
	for _, name := range Names {
		if err := Run(name, p, w); err != nil {
			return err
		}
	}
	return nil
}
