package expt

import (
	"io"
	"strings"
	"testing"
)

func TestDatasetRegistry(t *testing.T) {
	ds := Datasets()
	if len(ds) < 10 {
		t.Fatalf("registry has %d datasets, want the paper's 10+", len(ds))
	}
	names := map[string]bool{}
	for _, d := range ds {
		if names[d.Name] {
			t.Errorf("duplicate dataset %q", d.Name)
		}
		names[d.Name] = true
		if d.Generate == nil {
			t.Errorf("dataset %q has no generator", d.Name)
		}
	}
	for _, want := range []string{"Amazon", "DBLP", "ND-Web", "YouTube", "UK-2007", "LFR"} {
		if !names[want] {
			t.Errorf("paper dataset %q missing from registry", want)
		}
	}
}

func TestByName(t *testing.T) {
	d, err := ByName("Amazon")
	if err != nil {
		t.Fatal(err)
	}
	if d.Name != "Amazon" {
		t.Errorf("Name = %q", d.Name)
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("expected error for unknown dataset")
	}
}

func TestLoadCachesAndIsDeterministic(t *testing.T) {
	d, err := ByName("Amazon")
	if err != nil {
		t.Fatal(err)
	}
	g1, truth, err := d.Load()
	if err != nil {
		t.Fatal(err)
	}
	g2, _, err := d.Load()
	if err != nil {
		t.Fatal(err)
	}
	if g1 != g2 {
		t.Error("Load did not cache")
	}
	if truth == nil {
		t.Error("Amazon stand-in should carry planted truth")
	}
}

func TestSmallDatasetsExcludeLarge(t *testing.T) {
	for _, d := range SmallDatasets() {
		if d.Large {
			t.Errorf("SmallDatasets includes large dataset %q", d.Name)
		}
	}
	if len(SmallDatasets()) >= len(Datasets()) {
		t.Error("no large datasets registered")
	}
}

func TestTableFormatting(t *testing.T) {
	tbl := &Table{
		Title:  "T",
		Header: []string{"a", "bee"},
		Notes:  []string{"a note"},
	}
	tbl.AddRow(1, "x")
	tbl.AddRow(2.5, "longer")
	out := tbl.String()
	for _, want := range []string{"== T ==", "a", "bee", "2.5000", "longer", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := Run("fig99", Quick(), io.Discard); err == nil {
		t.Fatal("expected error for unknown experiment")
	}
}

func TestProfiles(t *testing.T) {
	q, f := Quick(), Full()
	if q.IncludeLarge {
		t.Error("quick profile should exclude large datasets")
	}
	if !f.IncludeLarge {
		t.Error("full profile should include large datasets")
	}
	if len(q.Procs) == 0 || len(q.PartitionProcs) == 0 || q.DefaultP < 1 {
		t.Errorf("quick profile incomplete: %+v", q)
	}
	if f.PartitionProcs[len(f.PartitionProcs)-1] != 4096 {
		t.Errorf("full profile should keep the paper's 4096-rank partition analysis: %v", f.PartitionProcs)
	}
}

func TestTable1Runs(t *testing.T) {
	tbl, err := Table1(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != len(SmallDatasets()) {
		t.Errorf("Table1 rows = %d, want %d", len(tbl.Rows), len(SmallDatasets()))
	}
}

func TestTableWriteCSV(t *testing.T) {
	tbl := &Table{Header: []string{"a", "b"}}
	tbl.AddRow("x,y", 2)
	var sb strings.Builder
	if err := tbl.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	want := "a,b\n\"x,y\",2\n"
	if sb.String() != want {
		t.Errorf("CSV = %q, want %q", sb.String(), want)
	}
}
