package expt

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
)

// fig11Scale is the vertex scale of the strong-scaling graphs (the paper
// uses 2³⁰ vertices on Titan; the stand-ins use 2^fig11Scale).
func fig11Scale(p Profile) int {
	if p.IncludeLarge {
		return 15
	}
	return 12
}

// fig11Graph builds the R-MAT or BA synthetic input of Figure 11.
func fig11Graph(kind string, scale int, seed int64) (*graph.Graph, error) {
	switch kind {
	case "R-MAT":
		cfg := gen.Graph500RMAT(scale, seed)
		cfg.EdgeFactor = 16 // paper: edge scale = vertex scale + 4
		return gen.RMAT(cfg)
	case "BA":
		return gen.BarabasiAlbert(1<<scale, 8, seed)
	default:
		return nil, fmt.Errorf("expt: unknown synthetic kind %q", kind)
	}
}

// Fig11 reproduces Figure 11: (a) strong scaling and (b) weak scaling of
// the clustering time on R-MAT and BA graphs.
func Fig11(p Profile) ([]*Table, error) {
	scale := fig11Scale(p)
	strong := &Table{
		Title:  fmt.Sprintf("Figure 11(a) — strong scaling on R-MAT and BA (2^%d vertices)", scale),
		Header: []string{"Graph", "p", "clustering (ms)", "speedup", "Q"},
		Notes: []string{
			"paper: ~80% parallel efficiency up to 32768 processors on 2^30-vertex graphs",
		},
	}
	for _, kind := range []string{"R-MAT", "BA"} {
		g, err := fig11Graph(kind, scale, 900)
		if err != nil {
			return nil, err
		}
		var base float64
		for _, pp := range p.Procs[1:] {
			res, err := core.Run(g, core.Options{P: pp})
			if err != nil {
				return nil, err
			}
			cl := res.Stage1Sim + res.Stage2Sim
			if base == 0 {
				base = float64(cl)
			}
			strong.AddRow(kind, pp, ms(cl),
				fmt.Sprintf("%.2f", base/float64(cl)), res.Modularity)
		}
	}

	weak := &Table{
		Title:  "Figure 11(b) — weak scaling (fixed vertices per rank)",
		Header: []string{"Graph", "p", "global vertices", "clustering (ms)"},
		Notes: []string{
			"paper's shape: BA nearly flat; R-MAT slightly negative slope (fewer iterations at larger sizes)",
		},
	}
	perRank := scale - 4 // vertices per rank = 2^(scale-4)
	for _, kind := range []string{"R-MAT", "BA"} {
		for _, pp := range p.Procs[1:] {
			gscale := perRank + log2(pp)
			g, err := fig11Graph(kind, gscale, 901)
			if err != nil {
				return nil, err
			}
			res, err := core.Run(g, core.Options{P: pp})
			if err != nil {
				return nil, err
			}
			weak.AddRow(kind, pp, g.NumVertices(), ms(res.Stage1Sim+res.Stage2Sim))
		}
	}
	return []*Table{strong, weak}, nil
}

func log2(v int) int {
	n := 0
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}
