package expt

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/louvain"
)

// Fig5Datasets are the six datasets the paper plots in Figure 5.
var Fig5Datasets = []string{"Amazon", "DBLP", "ND-Web", "YouTube", "LFR"}

// Fig5 reproduces Figure 5: modularity convergence per clustering iteration
// for (a) the sequential Louvain algorithm, (b) the parallel algorithm with
// the simple minimum-label heuristic, and (c) the parallel algorithm with
// the paper's enhanced heuristic. One table per dataset plus a summary of
// final modularities.
func Fig5(p Profile) ([]*Table, error) {
	summary := &Table{
		Title:  "Figure 5 (summary) — final modularity by method",
		Header: []string{"Dataset", "sequential", "parallel simple", "parallel enhanced", "iters simple", "iters enhanced"},
		Notes: []string{
			"paper's shape: enhanced ≈ sequential, simple clearly lower (e.g. DBLP 0.57 vs 0.80/0.82)",
		},
	}
	var out []*Table
	for _, name := range Fig5Datasets {
		d, err := ByName(name)
		if err != nil {
			return nil, err
		}
		g, _, err := d.Load()
		if err != nil {
			return nil, err
		}
		seq := louvain.Run(g, louvain.Options{TrackTrace: true})
		simple, err := core.Run(g, core.Options{
			P: p.DefaultP, Heuristic: core.HeuristicSimple, TrackTrace: true,
			MaxInnerIters: 30,
		})
		if err != nil {
			return nil, fmt.Errorf("%s simple: %w", name, err)
		}
		enhanced, err := core.Run(g, core.Options{
			P: p.DefaultP, Heuristic: core.HeuristicEnhanced, TrackTrace: true,
		})
		if err != nil {
			return nil, fmt.Errorf("%s enhanced: %w", name, err)
		}

		t := &Table{
			Title:  fmt.Sprintf("Figure 5 — convergence on %s (p=%d)", name, p.DefaultP),
			Header: []string{"iter", "sequential", "parallel simple", "parallel enhanced"},
		}
		n := max(len(seq.QTrace), max(len(simple.QTrace), len(enhanced.QTrace)))
		cell := func(tr []float64, i int) string {
			if i < len(tr) {
				return fmt.Sprintf("%.4f", tr[i])
			}
			return ""
		}
		for i := 0; i < n; i++ {
			t.AddRow(i+1, cell(seq.QTrace, i), cell(simple.QTrace, i), cell(enhanced.QTrace, i))
		}
		out = append(out, t)
		summary.AddRow(name, seq.Modularity, simple.Modularity, enhanced.Modularity,
			simple.Stage1Iters, enhanced.Stage1Iters)
	}
	out = append(out, summary)
	return out, nil
}
