package expt

import (
	"fmt"
	"sort"

	"repro/internal/partition"
)

// Fig6Dataset is the graph Figure 6 analyzes (UK-2007 in the paper).
var Fig6Dataset = "UK-2007"

// fig6Graph picks the largest available stand-in for the profile.
func fig6Graph(p Profile) (Dataset, error) {
	name := Fig6Dataset
	if !p.IncludeLarge {
		name = "YouTube" // largest quick-profile scale-free stand-in
	}
	return ByName(name)
}

// Fig6 reproduces Figure 6: workload and communication balance of 1D vs
// delegate partitioning.
//
//	(a) distribution of per-rank edge counts at the largest processor count
//	(b) distribution of per-rank ghost counts at the largest processor count
//	(c) workload imbalance W = max/avg − 1 across processor counts
//	(d) maximum per-rank ghost count across processor counts
//
// Partition analysis involves no clustering, so the full profile keeps the
// paper's processor counts (1024/2048/4096).
func Fig6(p Profile) ([]*Table, error) {
	d, err := fig6Graph(p)
	if err != nil {
		return nil, err
	}
	g, _, err := d.Load()
	if err != nil {
		return nil, err
	}
	procs := p.PartitionProcs
	largest := procs[len(procs)-1]

	// Hub threshold: the paper's dhigh = p assumes hubs whose degrees reach
	// the millions (UK-2007). The stand-in's tail is proportionally
	// shorter, so the threshold is pinned at twice the average degree —
	// the same thin-tail hub fraction the paper operates with.
	dhigh := 2 * int(g.NumArcs()) / g.NumVertices()

	census := func(pp int, kind partition.Kind) (partition.Census, error) {
		l, err := partition.Build(g, partition.Options{P: pp, Kind: kind, DHigh: dhigh})
		if err != nil {
			return partition.Census{}, err
		}
		return l.Census(), nil
	}

	// (a)+(b): distribution summary at the largest processor count.
	dist := &Table{
		Title: fmt.Sprintf("Figure 6(a,b) — per-rank edges and ghosts on %s (stand-in), p=%d",
			d.Name, largest),
		Header: []string{"Partitioning", "min edges", "median edges", "max edges", "min ghosts", "median ghosts", "max ghosts"},
		Notes: []string{
			"paper's shape: 1D max edges ≫ delegate max edges; delegate ghosts uniform",
		},
	}
	for _, kind := range []partition.Kind{partition.OneD, partition.Delegate} {
		c, err := census(largest, kind)
		if err != nil {
			return nil, err
		}
		arcs := append([]int64(nil), c.ArcsPerRank...)
		sort.Slice(arcs, func(i, j int) bool { return arcs[i] < arcs[j] })
		ghosts := append([]int(nil), c.GhostsPerRank...)
		sort.Ints(ghosts)
		dist.AddRow(kind.String(),
			arcs[0], arcs[len(arcs)/2], arcs[len(arcs)-1],
			ghosts[0], ghosts[len(ghosts)/2], ghosts[len(ghosts)-1])
	}

	// (c)+(d): imbalance and max ghosts across processor counts.
	sweep := &Table{
		Title:  fmt.Sprintf("Figure 6(c,d) — imbalance W and max ghosts vs processors on %s (stand-in)", d.Name),
		Header: []string{"p", "W 1d", "W delegate", "max ghosts 1d", "max ghosts delegate", "hubs"},
		Notes: []string{
			"paper's shape: 1D W grows with p, delegate W ≈ 0; delegate max ghosts shrinks with p",
		},
	}
	for _, pp := range procs {
		c1, err := census(pp, partition.OneD)
		if err != nil {
			return nil, err
		}
		cd, err := census(pp, partition.Delegate)
		if err != nil {
			return nil, err
		}
		sweep.AddRow(pp,
			fmt.Sprintf("%.3f", c1.ImbalanceW()), fmt.Sprintf("%.3f", cd.ImbalanceW()),
			c1.MaxGhosts(), cd.MaxGhosts(), cd.HubCount)
	}
	return []*Table{dist, sweep}, nil
}
