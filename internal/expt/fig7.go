package expt

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/partition"
)

// Fig7 reproduces Figure 7: total running time of the delegate-partitioned
// algorithm vs the 1D-partitioned distributed Louvain (the paper's MPI
// re-implementation of Cheong et al.) across datasets of growing size.
func Fig7(p Profile) (*Table, error) {
	// The imbalance penalty of 1D partitioning grows with the processor
	// count, so this comparison runs at the sweep's largest p (the paper
	// uses 1024+, where its 1D baseline stops completing at all).
	pp := p.Procs[len(p.Procs)-1]
	t := &Table{
		Title:  fmt.Sprintf("Figure 7 — total running time, delegate vs 1D partitioning (p=%d)", pp),
		Header: []string{"Dataset", "edges", "delegate (ms)", "1D (ms)", "1D/delegate", "Q delegate", "Q 1D"},
		Notes: []string{
			"paper's shape: similar on small graphs, 1D increasingly slower as size and skew grow",
			"times are simulated parallel clustering times (max-rank busy per iteration)",
			"(on UK-2005 the paper's 1D baseline did not complete at 1024+ processors)",
		},
	}
	for _, d := range p.datasets() {
		g, _, err := d.Load()
		if err != nil {
			return nil, err
		}
		del, err := core.Run(g, core.Options{P: pp, Partitioning: partition.Delegate})
		if err != nil {
			return nil, fmt.Errorf("%s delegate: %w", d.Name, err)
		}
		oneD, err := core.Run(g, core.Options{P: pp, Partitioning: partition.OneD})
		if err != nil {
			return nil, fmt.Errorf("%s 1d: %w", d.Name, err)
		}
		delSim := del.Stage1Sim + del.Stage2Sim
		oneDSim := oneD.Stage1Sim + oneD.Stage2Sim
		ratio := float64(oneDSim) / float64(delSim)
		t.AddRow(d.Name, g.NumEdges(),
			ms(delSim), ms(oneDSim),
			fmt.Sprintf("%.2f", ratio), del.Modularity, oneD.Modularity)
	}
	return t, nil
}

func ms(d time.Duration) string {
	return fmt.Sprintf("%.1f", float64(d.Microseconds())/1000)
}
