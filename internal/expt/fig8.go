package expt

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/trace"
)

// Fig8 reproduces Figure 8: the execution-time composition of the algorithm
// on the largest available stand-in.
//
//	(a) time of the first clustering stage (with delegates) vs the second
//	    stage (merged graph, no delegates) across processor counts
//	(b) per-iteration breakdown of one stage-1 clustering iteration into
//	    Find Best Community / Broadcast Delegates / Swap Ghost Vertex
//	    State / Other
func Fig8(p Profile) ([]*Table, error) {
	d, err := fig6Graph(p) // same dataset as the paper (UK-2007 stand-in)
	if err != nil {
		return nil, err
	}
	g, _, err := d.Load()
	if err != nil {
		return nil, err
	}
	stages := &Table{
		Title:  fmt.Sprintf("Figure 8(a) — clustering stage times on %s (stand-in)", d.Name),
		Header: []string{"p", "stage1 (ms)", "stage2+ (ms)", "stage1 iters", "outer levels"},
		Notes: []string{
			"paper's shape: stage 1 dominates and shrinks with p; stage 2 is much shorter",
			"times are simulated parallel times (per-iteration max across ranks of rank busy time)",
		},
	}
	breakdown := &Table{
		Title:  fmt.Sprintf("Figure 8(b) — per-iteration time breakdown on %s (stand-in)", d.Name),
		Header: []string{"p", "FindBest (µs)", "BcastDelegates (µs)", "SwapGhost (µs)", "Other (µs)"},
		Notes: []string{
			"paper's shape: FindBest dominates and shrinks with p; BcastDelegates small; SwapGhost roughly flat",
			"compute-only per-phase times; the collectives' wait time is not separable on a shared host",
		},
	}
	procs := p.Procs[len(p.Procs)/2:] // the larger half of the sweep
	for _, pp := range procs {
		res, err := core.Run(g, core.Options{P: pp})
		if err != nil {
			return nil, err
		}
		stages.AddRow(pp, ms(res.Stage1Sim), ms(res.Stage2Sim), res.Stage1Iters, res.OuterLevels)
		us := func(ph trace.Phase) string {
			return fmt.Sprintf("%.0f", float64(res.BusyBreakdown.PerIter(ph).Nanoseconds())/1000)
		}
		breakdown.AddRow(pp, us(trace.FindBest), us(trace.BroadcastDelegates),
			us(trace.SwapGhost), us(trace.Other))
	}
	return []*Table{stages, breakdown}, nil
}
