package expt

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/louvain"
)

// fig9Run holds one dataset's scaling sweep, shared with Figure 10.
type fig9Run struct {
	name    string
	procs   []int
	times   []time.Duration // total clustering time per processor count
	seqTime time.Duration
}

var fig9Cache = map[string][]fig9Run{}

// fig9Sweep measures every dataset across the profile's processor sweep.
// Results are memoized so Figures 9 and 10 share one sweep.
func fig9Sweep(p Profile) ([]fig9Run, error) {
	key := fmt.Sprint(p)
	if runs, ok := fig9Cache[key]; ok {
		return runs, nil
	}
	var runs []fig9Run
	for _, d := range p.datasets() {
		g, _, err := d.Load()
		if err != nil {
			return nil, err
		}
		run := fig9Run{name: d.Name, procs: p.Procs}
		t0 := time.Now()
		louvain.Run(g, louvain.Options{})
		run.seqTime = time.Since(t0)
		for _, pp := range p.Procs {
			res, err := core.Run(g, core.Options{P: pp})
			if err != nil {
				return nil, fmt.Errorf("%s p=%d: %w", d.Name, pp, err)
			}
			run.times = append(run.times, res.Stage1Sim+res.Stage2Sim)
		}
		runs = append(runs, run)
	}
	fig9Cache[key] = runs
	return runs, nil
}

// Fig9 reproduces Figure 9: total clustering time (stage 1 + stage 2) per
// dataset across processor counts, with the sequential time and the
// delegate-partitioning time for reference.
func Fig9(p Profile) (*Table, error) {
	runs, err := fig9Sweep(p)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Figure 9 — strong scaling of total clustering time",
		Header: []string{"Dataset", "sequential (ms)"},
		Notes: []string{
			"times are simulated parallel clustering times: per-iteration max across ranks of per-rank busy time (the host serializes ranks on its cores; see EXPERIMENTS.md)",
			"partition (preprocessing) time is negligible; see cmd/experiments -fig9 -v for it",
		},
	}
	for _, pp := range p.Procs {
		t.Header = append(t.Header, fmt.Sprintf("p=%d (ms)", pp))
	}
	for _, r := range runs {
		row := []any{r.name, ms(r.seqTime)}
		for _, d := range r.times {
			row = append(row, ms(d))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// Fig10 reproduces Figure 10: relative parallel efficiency
// τ = p₁T(p₁) / (p₂T(p₂)) with p₁ the smallest processor count of the
// sweep.
func Fig10(p Profile) (*Table, error) {
	runs, err := fig9Sweep(p)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Figure 10 — relative parallel efficiency τ",
		Header: []string{"Dataset"},
		Notes: []string{
			"paper's shape: mostly above 0.65; can exceed 1 when more ranks converge in fewer iterations",
		},
	}
	for _, pp := range p.Procs[1:] {
		t.Header = append(t.Header, fmt.Sprintf("τ(p=%d)", pp))
	}
	for _, r := range runs {
		row := []any{r.name}
		base := float64(r.procs[0]) * float64(r.times[0])
		for i := 1; i < len(r.procs); i++ {
			tau := base / (float64(r.procs[i]) * float64(r.times[i]))
			row = append(row, fmt.Sprintf("%.2f", tau))
		}
		t.AddRow(row...)
	}
	return t, nil
}
