package expt

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/partition"
)

// FigComm is an extra experiment backing the paper's Section V-C claim
// ("we experiment the communication cost for large graphs, which is not
// fully investigated in existing research work"): exact per-rank
// communication volume of a full clustering run, delegate vs 1D
// partitioning, across processor counts. Balance is reported as
// max-rank share / perfect share (1.0 = perfectly balanced).
func FigComm(p Profile) (*Table, error) {
	d, err := fig6Graph(p)
	if err != nil {
		return nil, err
	}
	g, _, err := d.Load()
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  fmt.Sprintf("Communication cost (§V-C) — measured traffic on %s (stand-in)", d.Name),
		Header: []string{"p", "partitioning", "total MB", "max-rank MB", "comm imbalance", "bytes/edge"},
		Notes: []string{
			"comm imbalance = max-rank bytes ÷ (total/p); 1.00 is perfectly balanced",
			"paper's shape: delegate partitioning balances communication; 1D concentrates it",
		},
	}
	procs := p.Procs[len(p.Procs)/2:]
	for _, pp := range procs {
		if pp < 2 {
			continue
		}
		for _, kind := range []partition.Kind{partition.Delegate, partition.OneD} {
			res, err := core.Run(g, core.Options{P: pp, Partitioning: kind})
			if err != nil {
				return nil, err
			}
			total := res.CommStats.TotalBytesSent()
			maxRank := res.CommStats.MaxBytesSent()
			imb := float64(maxRank) * float64(pp) / float64(total)
			t.AddRow(pp, kind.String(),
				fmt.Sprintf("%.2f", float64(total)/1e6),
				fmt.Sprintf("%.2f", float64(maxRank)/1e6),
				fmt.Sprintf("%.2f", imb),
				fmt.Sprintf("%.1f", float64(total)/float64(g.NumEdges())))
		}
	}
	return t, nil
}
