package expt

import (
	"fmt"

	"repro/internal/core"
)

// FigGPU quantifies the paper's Section VI projection: "inter-processor
// communication cost can possibly become a major performance bottleneck
// when the GPU-based clustering time can be significantly reduced." Using
// the simulated compute time and the α-β-priced communication time, it
// reports the communication share of each iteration today and under a
// hypothetical 50× compute acceleration.
func FigGPU(p Profile) (*Table, error) {
	d, err := fig6Graph(p)
	if err != nil {
		return nil, err
	}
	g, _, err := d.Load()
	if err != nil {
		return nil, err
	}
	const accel = 50
	t := &Table{
		Title:  fmt.Sprintf("Section VI projection — communication share with GPU-accelerated clustering (%s stand-in)", d.Name),
		Header: []string{"p", "compute (ms)", "comm (ms)", "comm share", "comm share @50x compute"},
		Notes: []string{
			"comm time = α-β model (1 µs/message, 10 GB/s) on exactly measured traffic",
			"paper §VI: communication becomes the bottleneck once local clustering is GPU-accelerated",
		},
	}
	procs := p.Procs[len(p.Procs)/2:]
	for _, pp := range procs {
		if pp < 2 {
			continue
		}
		res, err := core.Run(g, core.Options{P: pp})
		if err != nil {
			return nil, err
		}
		compute := res.Stage1Sim + res.Stage2Sim
		comm := res.Stage1CommSim + res.Stage2CommSim
		share := float64(comm) / float64(comm+compute)
		gpuShare := float64(comm) / (float64(comm) + float64(compute)/accel)
		t.AddRow(pp, ms(compute), ms(comm),
			fmt.Sprintf("%.1f%%", 100*share),
			fmt.Sprintf("%.1f%%", 100*gpuShare))
	}
	return t, nil
}
