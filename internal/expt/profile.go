package expt

// Profile scales the experiment suite. Full mirrors the paper's sweeps as
// closely as a single machine allows; Quick is the fast profile used by
// tests and short benchmark runs.
type Profile struct {
	// Procs is the processor sweep for the scaling experiments
	// (Figures 7-11). Ranks are goroutines over the in-process transport.
	Procs []int
	// PartitionProcs is the sweep for the partition-analysis experiment
	// (Figure 6), which needs no clustering and therefore keeps the
	// paper's processor counts.
	PartitionProcs []int
	// DefaultP is the world size for single-p experiments
	// (Figure 5, Table II).
	DefaultP int
	// IncludeLarge includes the stand-ins for the paper's billion-edge
	// datasets.
	IncludeLarge bool
}

// Quick is the fast profile (tests, smoke runs).
func Quick() Profile {
	return Profile{
		Procs:          []int{1, 2, 4, 8},
		PartitionProcs: []int{64, 128, 256},
		DefaultP:       4,
		IncludeLarge:   false,
	}
}

// Full is the complete profile used by cmd/experiments.
func Full() Profile {
	return Profile{
		Procs:          []int{1, 2, 4, 8, 16, 32},
		PartitionProcs: []int{1024, 2048, 4096},
		DefaultP:       8,
		IncludeLarge:   true,
	}
}

func (p Profile) datasets() []Dataset {
	if p.IncludeLarge {
		return Datasets()
	}
	return SmallDatasets()
}
