package expt

import (
	"io"
	"testing"
)

// TestSmokeAll runs every experiment at the quick profile; it is the
// end-to-end regression test of the harness.
func TestSmokeAll(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke test is slow")
	}
	if err := RunAll(Quick(), io.Discard); err != nil {
		t.Fatal(err)
	}
}
