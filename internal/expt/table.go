package expt

import (
	"fmt"
	"io"
	"strings"
)

// Table is a formatted experiment result: a titled grid plus free-form
// notes. It is the common output type of every runner in this package.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a row, formatting each cell with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4f", v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s ==\n", t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	printRow := func(cells []string) {
		var sb strings.Builder
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			pad := 0
			if i < len(widths) {
				pad = widths[i] - len(c)
			}
			sb.WriteString(c)
			sb.WriteString(strings.Repeat(" ", pad))
		}
		fmt.Fprintln(w, strings.TrimRight(sb.String(), " "))
	}
	printRow(t.Header)
	total := 0
	for _, wd := range widths {
		total += wd + 2
	}
	fmt.Fprintln(w, strings.Repeat("-", max(total-2, 4)))
	for _, row := range t.Rows {
		printRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// String renders the table to a string.
func (t *Table) String() string {
	var sb strings.Builder
	t.Fprint(&sb)
	return sb.String()
}

// WriteCSV renders the table as RFC-4180-ish CSV (header row first).
func (t *Table) WriteCSV(w io.Writer) error {
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	writeRow := func(cells []string) error {
		for i, c := range cells {
			if i > 0 {
				if _, err := io.WriteString(w, ","); err != nil {
					return err
				}
			}
			if _, err := io.WriteString(w, esc(c)); err != nil {
				return err
			}
		}
		_, err := io.WriteString(w, "\n")
		return err
	}
	if err := writeRow(t.Header); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	return nil
}
