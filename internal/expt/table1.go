package expt

import "fmt"

// Table1 reproduces the paper's Table I (dataset census): for every
// registered dataset it reports the paper's sizes next to the stand-in's
// actual vertex and edge counts.
func Table1(p Profile) (*Table, error) {
	t := &Table{
		Title:  "Table I — Datasets (paper sizes vs stand-in sizes)",
		Header: []string{"Name", "Description", "paper #V", "paper #E", "standin #V", "standin #E", "maxDeg"},
		Notes: []string{
			"stand-ins are synthetic graphs with matched structure (DESIGN.md §2)",
		},
	}
	for _, d := range p.datasets() {
		g, _, err := d.Load()
		if err != nil {
			return nil, fmt.Errorf("dataset %s: %w", d.Name, err)
		}
		t.AddRow(d.Name, d.Description, d.PaperV, d.PaperE,
			g.NumVertices(), g.NumEdges(), g.MaxDegree())
	}
	return t, nil
}
