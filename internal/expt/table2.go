package expt

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/quality"
)

// Table2Datasets are the datasets the paper scores in Table II.
var Table2Datasets = []string{"ND-Web", "Amazon"}

// Table2 reproduces the paper's Table II: quality measurements (NMI,
// F-measure, NVD, RI, ARI, JI) of the distributed algorithm's communities
// against ground truth. The stand-ins carry planted LFR communities as
// truth.
func Table2(p Profile) (*Table, error) {
	t := &Table{
		Title:  fmt.Sprintf("Table II — Quality measurements (p=%d, enhanced heuristic)", p.DefaultP),
		Header: []string{"Dataset", "NMI", "F-measure", "NVD", "RI", "ARI", "JI"},
		Notes: []string{
			"all measures but NVD: higher is better; NVD is a distance (lower is better)",
			"paper reports NMI 0.80-0.85 on these datasets",
		},
	}
	for _, name := range Table2Datasets {
		d, err := ByName(name)
		if err != nil {
			return nil, err
		}
		g, truth, err := d.Load()
		if err != nil {
			return nil, err
		}
		if truth == nil {
			return nil, fmt.Errorf("dataset %s has no ground truth", name)
		}
		res, err := core.Run(g, core.Options{P: p.DefaultP})
		if err != nil {
			return nil, err
		}
		s, err := quality.Compare(res.Membership, truth)
		if err != nil {
			return nil, err
		}
		t.AddRow(name, s.NMI, s.FMeasure, s.NVD, s.RI, s.ARI, s.JI)
	}
	return t, nil
}
