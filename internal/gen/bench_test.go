package gen

import "testing"

func BenchmarkRMAT(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := RMAT(Graph500RMAT(12, int64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBarabasiAlbert(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := BarabasiAlbert(10000, 4, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLFR(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := LFR(DefaultLFR(5000, 0.3, int64(i))); err != nil {
			b.Fatal(err)
		}
	}
}
