// Package gen provides deterministic synthetic graph generators used as
// stand-ins for the paper's datasets: R-MAT (Graph500 parameters),
// Barabási–Albert preferential attachment, an LFR-style planted-partition
// benchmark with power-law degree and community-size distributions, the
// stochastic block model, Erdős–Rényi, and a ring-of-cliques (caveman)
// graph.
//
// Every generator takes an explicit seed and produces the same graph for the
// same (parameters, seed), which keeps all experiments reproducible.
package gen

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/graph"
)

// powerLawInts samples n integers from a discrete power law P(x) ∝ x^(-exp)
// on [lo, hi] by inverse-transform sampling of the continuous distribution.
func powerLawInts(rng *rand.Rand, n, lo, hi int, exp float64) []int {
	if lo < 1 {
		lo = 1
	}
	if hi < lo {
		hi = lo
	}
	out := make([]int, n)
	// Inverse CDF of the continuous power law on [lo, hi+1).
	a := 1 - exp
	loA := math.Pow(float64(lo), a)
	hiA := math.Pow(float64(hi+1), a)
	for i := range out {
		u := rng.Float64()
		var x float64
		if math.Abs(a) < 1e-12 { // exp == 1: log-uniform
			x = float64(lo) * math.Exp(u*math.Log(float64(hi+1)/float64(lo)))
		} else {
			x = math.Pow(loA+u*(hiA-loA), 1/a)
		}
		v := int(x)
		if v < lo {
			v = lo
		}
		if v > hi {
			v = hi
		}
		out[i] = v
	}
	return out
}

// RMATConfig parameterizes an R-MAT generator. The defaults (via
// Graph500RMAT) follow the Graph500 specification: A=0.57, B=0.19, C=0.19,
// D=0.05, edge factor 16.
type RMATConfig struct {
	Scale      int     // number of vertices is 2^Scale
	EdgeFactor int     // number of generated edges is EdgeFactor * 2^Scale
	A, B, C, D float64 // quadrant probabilities, summing to 1
	Seed       int64
}

// Graph500RMAT returns the Graph500 R-MAT configuration for a given scale.
func Graph500RMAT(scale int, seed int64) RMATConfig {
	return RMATConfig{Scale: scale, EdgeFactor: 16, A: 0.57, B: 0.19, C: 0.19, D: 0.05, Seed: seed}
}

// SetSkew re-derives the quadrant probabilities from a single skew knob:
// A = skew, and the remaining mass 1−skew is split over B, C, D in the
// Graph500 proportions (19 : 19 : 5), so skew = 0.57 reproduces the
// Graph500 parameters exactly. Larger skew concentrates edges on
// low-numbered vertices, fattening the degree tail — the controlled way to
// produce load-imbalanced inputs for the rebalancing experiments (see
// EXPERIMENTS.md).
func (c *RMATConfig) SetSkew(skew float64) error {
	if skew <= 0 || skew >= 1 {
		return fmt.Errorf("gen: RMAT skew = %g, want in (0,1)", skew)
	}
	rest := 1 - skew
	c.A = skew
	c.B = 19 * rest / 43
	c.C = 19 * rest / 43
	c.D = 5 * rest / 43
	return nil
}

// RMAT generates a recursive-matrix scale-free graph. Self-loops are
// dropped; duplicate edges collapse into a single unit-weight edge.
func RMAT(cfg RMATConfig) (*graph.Graph, error) {
	if cfg.Scale < 0 || cfg.Scale > 30 {
		return nil, fmt.Errorf("gen: RMAT scale %d out of range [0,30]", cfg.Scale)
	}
	if s := cfg.A + cfg.B + cfg.C + cfg.D; math.Abs(s-1) > 1e-9 {
		return nil, fmt.Errorf("gen: RMAT quadrant probabilities sum to %g, want 1", s)
	}
	n := 1 << cfg.Scale
	e := int64(cfg.EdgeFactor) * int64(n)
	rng := rand.New(rand.NewSource(cfg.Seed))
	seen := make(map[[2]int32]struct{}, e)
	edges := make([]graph.Edge, 0, e)
	for i := int64(0); i < e; i++ {
		u, v := 0, 0
		for bit := 0; bit < cfg.Scale; bit++ {
			r := rng.Float64()
			switch {
			case r < cfg.A:
				// upper-left: no bits set
			case r < cfg.A+cfg.B:
				v |= 1 << bit
			case r < cfg.A+cfg.B+cfg.C:
				u |= 1 << bit
			default:
				u |= 1 << bit
				v |= 1 << bit
			}
		}
		if u == v {
			continue
		}
		a, b := int32(u), int32(v)
		if a > b {
			a, b = b, a
		}
		key := [2]int32{a, b}
		if _, dup := seen[key]; dup {
			continue
		}
		seen[key] = struct{}{}
		edges = append(edges, graph.Edge{U: int(a), V: int(b), W: 1})
	}
	return graph.FromEdges(n, edges)
}

// BarabasiAlbert generates a preferential-attachment graph: starting from a
// clique of m+1 vertices, each new vertex attaches m edges to existing
// vertices chosen proportionally to their current degree.
func BarabasiAlbert(n, m int, seed int64) (*graph.Graph, error) {
	if m < 1 {
		return nil, fmt.Errorf("gen: BarabasiAlbert m = %d, want >= 1", m)
	}
	if n < m+1 {
		return nil, fmt.Errorf("gen: BarabasiAlbert n = %d too small for m = %d", n, m)
	}
	rng := rand.New(rand.NewSource(seed))
	edges := make([]graph.Edge, 0, n*m)
	// repeated-nodes list: vertex appears once per incident edge endpoint
	repeated := make([]int32, 0, 2*n*m)
	for u := 0; u <= m; u++ {
		for v := u + 1; v <= m; v++ {
			edges = append(edges, graph.Edge{U: u, V: v, W: 1})
			repeated = append(repeated, int32(u), int32(v))
		}
	}
	chosen := make(map[int]struct{}, m)
	for u := m + 1; u < n; u++ {
		clear(chosen)
		for len(chosen) < m {
			v := int(repeated[rng.Intn(len(repeated))])
			if v == u {
				continue
			}
			chosen[v] = struct{}{}
		}
		for v := range chosen {
			edges = append(edges, graph.Edge{U: u, V: v, W: 1})
			repeated = append(repeated, int32(u), int32(v))
		}
	}
	return graph.FromEdges(n, edges)
}

// ErdosRenyi generates G(n, p) with unit weights.
func ErdosRenyi(n int, p float64, seed int64) (*graph.Graph, error) {
	if p < 0 || p > 1 {
		return nil, fmt.Errorf("gen: ErdosRenyi p = %g out of [0,1]", p)
	}
	rng := rand.New(rand.NewSource(seed))
	var edges []graph.Edge
	// Geometric skipping for sparse p.
	if p > 0 {
		logq := math.Log(1 - p)
		if p == 1 {
			for u := 0; u < n; u++ {
				for v := u + 1; v < n; v++ {
					edges = append(edges, graph.Edge{U: u, V: v, W: 1})
				}
			}
			return graph.FromEdges(n, edges)
		}
		// iterate pairs in a flattened index with geometric gaps
		total := int64(n) * int64(n-1) / 2
		idx := int64(-1)
		for {
			gap := int64(math.Floor(math.Log(1-rng.Float64()) / logq))
			idx += 1 + gap
			if idx >= total {
				break
			}
			u, v := unflattenPair(idx, n)
			edges = append(edges, graph.Edge{U: u, V: v, W: 1})
		}
	}
	return graph.FromEdges(n, edges)
}

// unflattenPair maps a linear index over {(u,v): 0<=u<v<n} back to (u, v).
func unflattenPair(idx int64, n int) (int, int) {
	u := 0
	rowLen := int64(n - 1)
	for idx >= rowLen {
		idx -= rowLen
		u++
		rowLen--
	}
	return u, u + 1 + int(idx)
}

// SBM generates a stochastic block model: blocks of the given sizes, with
// intra-block edge probability pin and inter-block probability pout. It
// returns the graph and the planted membership.
func SBM(sizes []int, pin, pout float64, seed int64) (*graph.Graph, graph.Membership, error) {
	n := 0
	for _, s := range sizes {
		if s <= 0 {
			return nil, nil, fmt.Errorf("gen: SBM block size %d, want > 0", s)
		}
		n += s
	}
	if pin < 0 || pin > 1 || pout < 0 || pout > 1 {
		return nil, nil, fmt.Errorf("gen: SBM probabilities (%g, %g) out of [0,1]", pin, pout)
	}
	member := make(graph.Membership, n)
	start := 0
	for b, s := range sizes {
		for i := 0; i < s; i++ {
			member[start+i] = b
		}
		start += s
	}
	rng := rand.New(rand.NewSource(seed))
	var edges []graph.Edge
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			p := pout
			if member[u] == member[v] {
				p = pin
			}
			if rng.Float64() < p {
				edges = append(edges, graph.Edge{U: u, V: v, W: 1})
			}
		}
	}
	g, err := graph.FromEdges(n, edges)
	if err != nil {
		return nil, nil, err
	}
	return g, member, nil
}

// PlantedHubs generates the controlled load-imbalance fixture of the
// rebalancing experiments: a planted-partition background of consecutive
// blocks (each block one ground-truth community, wired as a ring plus two
// random intra-block edges per vertex), overlaid with `hubs` heavy vertices
// at IDs 0, stride, 2·stride, … whose `deg` extra edges go to uniformly
// random targets.
//
// With stride equal to the rank count, every hub lands on rank 0 under the
// 1D round-robin partitioning (vertex v → rank v mod P) — a worst case the
// static partitioner cannot fix and the mid-solve rebalancer can, which is
// exactly what BenchmarkRebalance* measures. The planted blocks keep the
// background modular so the solver does real clustering work around the
// hubs. The returned membership is the planted block structure (hubs carry
// their own block's label).
func PlantedHubs(n, csize, hubs, stride, deg int, seed int64) (*graph.Graph, graph.Membership, error) {
	if n < 2 || csize < 2 {
		return nil, nil, fmt.Errorf("gen: PlantedHubs needs n >= 2 and csize >= 2, got %d, %d", n, csize)
	}
	if hubs < 0 || stride < 1 || deg < 0 {
		return nil, nil, fmt.Errorf("gen: PlantedHubs got hubs=%d stride=%d deg=%d, want hubs,deg >= 0 and stride >= 1", hubs, stride, deg)
	}
	if hubs > 0 && (hubs-1)*stride >= n {
		return nil, nil, fmt.Errorf("gen: PlantedHubs hub %d*%d out of range [0,%d)", hubs-1, stride, n)
	}
	rng := rand.New(rand.NewSource(seed))
	member := make(graph.Membership, n)
	var edges []graph.Edge
	for base := 0; base < n; base += csize {
		size := csize
		if base+size > n {
			size = n - base
		}
		for i := 0; i < size; i++ {
			v := base + i
			member[v] = base / csize
			// Ring within the block keeps it connected.
			if size > 1 {
				edges = append(edges, graph.Edge{U: v, V: base + (i+1)%size, W: 1})
			}
			// Two random intra-block chords give it clique-like density.
			for k := 0; k < 2; k++ {
				u := base + rng.Intn(size)
				if u != v {
					edges = append(edges, graph.Edge{U: v, V: u, W: 1})
				}
			}
		}
	}
	for j := 0; j < hubs; j++ {
		h := j * stride
		for k := 0; k < deg; k++ {
			t := rng.Intn(n)
			if t != h {
				edges = append(edges, graph.Edge{U: h, V: t, W: 1})
			}
		}
	}
	g, err := graph.FromEdges(n, edges)
	if err != nil {
		return nil, nil, err
	}
	return g, member, nil
}

// Caveman generates a ring of cliques: `cliques` cliques of `size` vertices
// each, with one edge linking consecutive cliques into a ring. It returns
// the graph and the planted membership (one community per clique).
func Caveman(cliques, size int) (*graph.Graph, graph.Membership, error) {
	if cliques < 1 || size < 1 {
		return nil, nil, fmt.Errorf("gen: Caveman needs cliques >= 1 and size >= 1, got %d, %d", cliques, size)
	}
	n := cliques * size
	member := make(graph.Membership, n)
	var edges []graph.Edge
	for c := 0; c < cliques; c++ {
		base := c * size
		for i := 0; i < size; i++ {
			member[base+i] = c
			for j := i + 1; j < size; j++ {
				edges = append(edges, graph.Edge{U: base + i, V: base + j, W: 1})
			}
		}
		if cliques > 1 {
			next := ((c + 1) % cliques) * size
			if c < cliques-1 || cliques > 2 {
				edges = append(edges, graph.Edge{U: base, V: next, W: 1})
			}
		}
	}
	g, err := graph.FromEdges(n, edges)
	if err != nil {
		return nil, nil, err
	}
	return g, member, nil
}
