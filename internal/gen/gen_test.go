package gen

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/graph"
)

func TestPowerLawBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, exp := range []float64{1.0, 1.5, 2.5, 3.0} {
		vs := powerLawInts(rng, 2000, 3, 50, exp)
		for _, v := range vs {
			if v < 3 || v > 50 {
				t.Fatalf("exp=%g: value %d out of [3,50]", exp, v)
			}
		}
	}
}

func TestPowerLawSkew(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	vs := powerLawInts(rng, 20000, 1, 1000, 2.5)
	small, large := 0, 0
	for _, v := range vs {
		if v <= 3 {
			small++
		}
		if v >= 100 {
			large++
		}
	}
	if small < len(vs)/2 {
		t.Errorf("power law not skewed: only %d/%d values <= 3", small, len(vs))
	}
	if large == 0 {
		t.Error("power law has no tail: no values >= 100")
	}
	if large > small/10 {
		t.Errorf("tail too heavy: %d large vs %d small", large, small)
	}
}

func TestRMATProperties(t *testing.T) {
	g, err := RMAT(Graph500RMAT(10, 42))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 1024 {
		t.Errorf("NumVertices = %d, want 1024", g.NumVertices())
	}
	if g.NumEdges() < 5000 {
		t.Errorf("NumEdges = %d, suspiciously small", g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// scale-free: max degree far above average
	avg := float64(g.NumArcs()) / float64(g.NumVertices())
	if float64(g.MaxDegree()) < 5*avg {
		t.Errorf("MaxDegree = %d vs avg %.1f: not hub-dominated", g.MaxDegree(), avg)
	}
	// no self loops
	for u := 0; u < g.NumVertices(); u++ {
		if g.SelfLoopWeight(u) != 0 {
			t.Fatalf("vertex %d has self-loop", u)
		}
	}
}

func TestRMATDeterministic(t *testing.T) {
	g1, err := RMAT(Graph500RMAT(8, 7))
	if err != nil {
		t.Fatal(err)
	}
	g2, err := RMAT(Graph500RMAT(8, 7))
	if err != nil {
		t.Fatal(err)
	}
	if g1.NumArcs() != g2.NumArcs() || g1.TotalWeight2() != g2.TotalWeight2() {
		t.Error("RMAT not deterministic for fixed seed")
	}
	g3, err := RMAT(Graph500RMAT(8, 8))
	if err != nil {
		t.Fatal(err)
	}
	if g1.NumArcs() == g3.NumArcs() && g1.TotalWeight2() == g3.TotalWeight2() {
		t.Error("RMAT identical across different seeds (suspicious)")
	}
}

func TestRMATBadConfig(t *testing.T) {
	cfg := Graph500RMAT(5, 1)
	cfg.A = 0.9 // probabilities no longer sum to 1
	if _, err := RMAT(cfg); err == nil {
		t.Error("expected error for bad quadrant probabilities")
	}
	if _, err := RMAT(RMATConfig{Scale: -1}); err == nil {
		t.Error("expected error for negative scale")
	}
}

func TestBarabasiAlbertProperties(t *testing.T) {
	g, err := BarabasiAlbert(2000, 4, 11)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 2000 {
		t.Errorf("NumVertices = %d", g.NumVertices())
	}
	// expected edges: C(5,2) + (2000-5)*4
	wantEdges := int64(10 + 1995*4)
	if g.NumEdges() != wantEdges {
		t.Errorf("NumEdges = %d, want %d", g.NumEdges(), wantEdges)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// minimum degree m
	for u := 0; u < g.NumVertices(); u++ {
		if g.Degree(u) < 4 {
			t.Fatalf("vertex %d degree %d < m", u, g.Degree(u))
		}
	}
	// hubs exist
	if g.MaxDegree() < 40 {
		t.Errorf("MaxDegree = %d: no hubs in BA graph", g.MaxDegree())
	}
}

func TestBarabasiAlbertBadArgs(t *testing.T) {
	if _, err := BarabasiAlbert(3, 5, 1); err == nil {
		t.Error("expected error for n < m+1")
	}
	if _, err := BarabasiAlbert(10, 0, 1); err == nil {
		t.Error("expected error for m < 1")
	}
}

func TestErdosRenyiDensity(t *testing.T) {
	n, p := 500, 0.05
	g, err := ErdosRenyi(n, p, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := p * float64(n) * float64(n-1) / 2
	got := float64(g.NumEdges())
	if math.Abs(got-want) > 4*math.Sqrt(want) {
		t.Errorf("NumEdges = %g, want ≈ %g", got, want)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestErdosRenyiEdgeCases(t *testing.T) {
	g, err := ErdosRenyi(10, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 0 {
		t.Errorf("p=0: NumEdges = %d", g.NumEdges())
	}
	g, err = ErdosRenyi(10, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 45 {
		t.Errorf("p=1: NumEdges = %d, want 45", g.NumEdges())
	}
	if _, err := ErdosRenyi(10, 1.5, 1); err == nil {
		t.Error("expected error for p > 1")
	}
}

func TestUnflattenPair(t *testing.T) {
	n := 7
	idx := int64(0)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			gu, gv := unflattenPair(idx, n)
			if gu != u || gv != v {
				t.Fatalf("unflattenPair(%d) = (%d,%d), want (%d,%d)", idx, gu, gv, u, v)
			}
			idx++
		}
	}
}

func TestSBMPlantedStructure(t *testing.T) {
	sizes := []int{50, 50, 50}
	g, member, err := SBM(sizes, 0.3, 0.01, 5)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 150 || len(member) != 150 {
		t.Fatalf("sizes mismatch: %d vertices, %d labels", g.NumVertices(), len(member))
	}
	// planted membership should score high modularity
	q := graph.Modularity(g, member)
	if q < 0.4 {
		t.Errorf("planted modularity = %g, want > 0.4", q)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSBMBadArgs(t *testing.T) {
	if _, _, err := SBM([]int{0}, 0.5, 0.1, 1); err == nil {
		t.Error("expected error for zero block")
	}
	if _, _, err := SBM([]int{5}, 1.5, 0.1, 1); err == nil {
		t.Error("expected error for pin > 1")
	}
}

func TestCavemanStructure(t *testing.T) {
	g, member, err := Caveman(6, 5)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 30 {
		t.Fatalf("NumVertices = %d", g.NumVertices())
	}
	// 6 cliques of C(5,2)=10 edges + 6 ring edges
	if g.NumEdges() != 66 {
		t.Errorf("NumEdges = %d, want 66", g.NumEdges())
	}
	q := graph.Modularity(g, member)
	if q < 0.6 {
		t.Errorf("planted modularity = %g, want > 0.6", q)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCavemanTwoCliquesNoDuplicateBridge(t *testing.T) {
	g, _, err := Caveman(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	// 2 triangles (3 edges each) + 1 bridge
	if g.NumEdges() != 7 {
		t.Errorf("NumEdges = %d, want 7", g.NumEdges())
	}
}

func TestLFRBasics(t *testing.T) {
	cfg := DefaultLFR(1000, 0.2, 9)
	g, member, err := LFR(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 1000 || len(member) != 1000 {
		t.Fatalf("size mismatch: %d vertices, %d labels", g.NumVertices(), len(member))
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// no isolated vertices
	for u := 0; u < g.NumVertices(); u++ {
		if g.Degree(u) == 0 {
			t.Fatalf("vertex %d isolated", u)
		}
	}
	// planted communities give good modularity at low mixing
	q := graph.Modularity(g, member)
	if q < 0.4 {
		t.Errorf("planted modularity = %g, want > 0.4", q)
	}
}

func TestLFRMixingControlsModularity(t *testing.T) {
	qLow, qHigh := 0.0, 0.0
	for i, mu := range []float64{0.1, 0.6} {
		g, member, err := LFR(DefaultLFR(800, mu, 21))
		if err != nil {
			t.Fatal(err)
		}
		q := graph.Modularity(g, member)
		if i == 0 {
			qLow = q
		} else {
			qHigh = q
		}
	}
	if qLow <= qHigh {
		t.Errorf("modularity should fall with mixing: mu=0.1 gives %g, mu=0.6 gives %g", qLow, qHigh)
	}
}

func TestLFRObservedMixing(t *testing.T) {
	mu := 0.3
	g, member, err := LFR(DefaultLFR(2000, mu, 13))
	if err != nil {
		t.Fatal(err)
	}
	var inW, totW float64
	for u := 0; u < g.NumVertices(); u++ {
		lo, hi := g.ArcRange(u)
		for a := lo; a < hi; a++ {
			totW += g.ArcWeight(a)
			if member[g.ArcTarget(a)] == member[u] {
				inW += g.ArcWeight(a)
			}
		}
	}
	observed := 1 - inW/totW
	if math.Abs(observed-mu) > 0.12 {
		t.Errorf("observed mixing %.3f, want ≈ %.2f", observed, mu)
	}
}

func TestLFRCommunitySizesRespectBounds(t *testing.T) {
	cfg := DefaultLFR(1200, 0.2, 5)
	_, member, err := LFR(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sizes := member.Sizes()
	var vals []int
	for _, s := range sizes {
		vals = append(vals, s)
	}
	sort.Ints(vals)
	if vals[0] < 2 {
		t.Errorf("smallest community has %d members", vals[0])
	}
	if len(vals) < 3 {
		t.Errorf("only %d communities planted", len(vals))
	}
}

func TestLFRValidation(t *testing.T) {
	bad := DefaultLFR(100, 0.2, 1)
	bad.Mu = 1.0
	if _, _, err := LFR(bad); err == nil {
		t.Error("expected error for mu = 1")
	}
	bad = DefaultLFR(100, 0.2, 1)
	bad.MinDegree = 0
	if _, _, err := LFR(bad); err == nil {
		t.Error("expected error for MinDegree = 0")
	}
	bad = DefaultLFR(100, 0.2, 1)
	bad.MaxComm = bad.MinComm - 1
	if _, _, err := LFR(bad); err == nil {
		t.Error("expected error for inverted community bounds")
	}
}

func TestLFRDeterministic(t *testing.T) {
	g1, m1, err := LFR(DefaultLFR(500, 0.25, 77))
	if err != nil {
		t.Fatal(err)
	}
	g2, m2, err := LFR(DefaultLFR(500, 0.25, 77))
	if err != nil {
		t.Fatal(err)
	}
	if g1.NumArcs() != g2.NumArcs() {
		t.Error("LFR graph not deterministic")
	}
	for i := range m1 {
		if m1[i] != m2[i] {
			t.Error("LFR membership not deterministic")
			break
		}
	}
}

func TestSetSkew(t *testing.T) {
	cfg := Graph500RMAT(8, 1)
	if err := cfg.SetSkew(0.57); err != nil {
		t.Fatal(err)
	}
	// skew = 0.57 must reproduce the Graph500 quadrants exactly (up to the
	// integer-ratio split of the remaining mass).
	if math.Abs(cfg.A-0.57) > 1e-12 || math.Abs(cfg.B-0.19) > 1e-12 ||
		math.Abs(cfg.C-0.19) > 1e-12 || math.Abs(cfg.D-0.05) > 1e-12 {
		t.Fatalf("skew=0.57 gave %+v, want Graph500 quadrants", cfg)
	}
	if err := cfg.SetSkew(0.8); err != nil {
		t.Fatal(err)
	}
	if s := cfg.A + cfg.B + cfg.C + cfg.D; math.Abs(s-1) > 1e-12 {
		t.Fatalf("quadrants sum to %g, want 1", s)
	}
	for _, bad := range []float64{0, 1, -0.3, 1.5} {
		if err := cfg.SetSkew(bad); err == nil {
			t.Errorf("SetSkew(%g) accepted", bad)
		}
	}
}

func TestPlantedHubs(t *testing.T) {
	const n, csize, hubs, stride, deg = 1024, 32, 8, 4, 100
	g, truth, err := PlantedHubs(n, csize, hubs, stride, deg, 7)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != n || len(truth) != n {
		t.Fatalf("got %d vertices, truth %d, want %d", g.NumVertices(), len(truth), n)
	}
	if truth[0] != 0 || truth[csize] != 1 || truth[n-1] != n/csize-1 {
		t.Fatalf("block membership wrong: %d %d %d", truth[0], truth[csize], truth[n-1])
	}
	// Hubs must dominate the degree distribution; background vertices stay
	// light. Count arc degree per vertex.
	degOf := make([]int, n)
	for u := 0; u < n; u++ {
		degOf[u] = g.Degree(u)
	}
	minHub := n
	for j := 0; j < hubs; j++ {
		if d := degOf[j*stride]; d < minHub {
			minHub = d
		}
	}
	if minHub < deg/2 {
		t.Errorf("lightest hub has degree %d, want >= %d", minHub, deg/2)
	}
	// Determinism.
	g2, _, err := PlantedHubs(n, csize, hubs, stride, deg, 7)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumArcs() != g2.NumArcs() {
		t.Error("PlantedHubs is not deterministic")
	}
	if _, _, err := PlantedHubs(100, 10, 30, 4, 5, 1); err == nil {
		t.Error("out-of-range hub accepted")
	}
}
