package gen

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/graph"
)

// LFRConfig parameterizes the LFR-style planted-partition benchmark
// (Lancichinetti & Fortunato). Degrees follow a power law with exponent
// DegreeExp on [MinDegree, MaxDegree]; community sizes follow a power law
// with exponent CommExp on [MinComm, MaxComm]; each vertex places a fraction
// (1-Mu) of its stubs inside its community and Mu outside.
type LFRConfig struct {
	N         int     // number of vertices
	MinDegree int     // minimum degree (>= 1)
	MaxDegree int     // maximum degree
	DegreeExp float64 // degree power-law exponent (typically 2..3)
	MinComm   int     // minimum community size
	MaxComm   int     // maximum community size
	CommExp   float64 // community-size power-law exponent (typically 1..2)
	Mu        float64 // mixing parameter in [0,1): fraction of external stubs
	Seed      int64
}

// DefaultLFR returns the configuration used for the paper's LFR stand-ins:
// a community-rich graph with moderate mixing.
func DefaultLFR(n int, mu float64, seed int64) LFRConfig {
	maxDeg := n / 10
	if maxDeg < 8 {
		maxDeg = 8
	}
	if maxDeg > 100 {
		maxDeg = 100
	}
	maxComm := n / 10
	if maxComm < 20 {
		maxComm = 20
	}
	if maxComm > 500 {
		maxComm = 500
	}
	return LFRConfig{
		N: n, MinDegree: 4, MaxDegree: maxDeg, DegreeExp: 2.5,
		MinComm: 10, MaxComm: maxComm, CommExp: 1.5,
		Mu: mu, Seed: seed,
	}
}

func (c LFRConfig) validate() error {
	switch {
	case c.N < 2:
		return fmt.Errorf("gen: LFR N = %d, want >= 2", c.N)
	case c.MinDegree < 1 || c.MaxDegree < c.MinDegree || c.MaxDegree >= c.N:
		return fmt.Errorf("gen: LFR degree bounds [%d,%d] invalid for N = %d", c.MinDegree, c.MaxDegree, c.N)
	case c.MinComm < 2 || c.MaxComm < c.MinComm || c.MaxComm > c.N:
		return fmt.Errorf("gen: LFR community bounds [%d,%d] invalid for N = %d", c.MinComm, c.MaxComm, c.N)
	case c.Mu < 0 || c.Mu >= 1:
		return fmt.Errorf("gen: LFR mu = %g out of [0,1)", c.Mu)
	}
	return nil
}

// LFR generates an LFR-style benchmark graph and its planted membership.
//
// The generator follows the standard recipe: sample power-law degrees and
// community sizes, assign vertices to communities (a vertex's internal
// degree must fit inside its community), then wire internal stubs within
// each community and external stubs across communities with a configuration
// model, rejecting self-loops and duplicates.
func LFR(cfg LFRConfig) (*graph.Graph, graph.Membership, error) {
	if err := cfg.validate(); err != nil {
		return nil, nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	degrees := powerLawInts(rng, cfg.N, cfg.MinDegree, cfg.MaxDegree, cfg.DegreeExp)

	// Sample community sizes until they cover N, then trim the overshoot.
	var sizes []int
	total := 0
	for total < cfg.N {
		s := powerLawInts(rng, 1, cfg.MinComm, cfg.MaxComm, cfg.CommExp)[0]
		if total+s > cfg.N {
			s = cfg.N - total
			if s < cfg.MinComm && len(sizes) > 0 {
				// fold the remainder into the last community
				sizes[len(sizes)-1] += s
				total += s
				break
			}
		}
		sizes = append(sizes, s)
		total += s
	}

	// Assign vertices to communities. Vertices with larger internal degree
	// go to larger communities so that intDeg <= size-1 holds.
	intDeg := make([]int, cfg.N)
	extDeg := make([]int, cfg.N)
	for u := 0; u < cfg.N; u++ {
		internal := int(float64(degrees[u])*(1-cfg.Mu) + 0.5)
		if internal > degrees[u] {
			internal = degrees[u]
		}
		intDeg[u] = internal
		extDeg[u] = degrees[u] - internal
	}
	order := make([]int, cfg.N)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool { return intDeg[order[i]] > intDeg[order[j]] })
	commOrder := make([]int, len(sizes))
	for i := range commOrder {
		commOrder[i] = i
	}
	sort.Slice(commOrder, func(i, j int) bool { return sizes[commOrder[i]] > sizes[commOrder[j]] })

	member := make(graph.Membership, cfg.N)
	slots := make([][]int, len(sizes)) // members per community
	// Round-robin the highest-internal-degree vertices over the largest
	// communities first, clipping internal degree to size-1.
	ci := 0
	for _, u := range order {
		// find a community with space, preferring larger ones
		for tries := 0; tries < len(sizes); tries++ {
			c := commOrder[(ci+tries)%len(sizes)]
			if len(slots[c]) < sizes[c] {
				member[u] = c
				slots[c] = append(slots[c], u)
				if intDeg[u] > sizes[c]-1 {
					over := intDeg[u] - (sizes[c] - 1)
					intDeg[u] = sizes[c] - 1
					extDeg[u] += over
				}
				ci++
				break
			}
		}
	}

	edgeSet := make(map[[2]int32]struct{})
	var edges []graph.Edge
	addEdge := func(u, v int) bool {
		if u == v {
			return false
		}
		a, b := int32(u), int32(v)
		if a > b {
			a, b = b, a
		}
		key := [2]int32{a, b}
		if _, dup := edgeSet[key]; dup {
			return false
		}
		edgeSet[key] = struct{}{}
		edges = append(edges, graph.Edge{U: u, V: v, W: 1})
		return true
	}

	// Internal wiring: configuration model per community.
	for c := range slots {
		var stubs []int
		for _, u := range slots[c] {
			for i := 0; i < intDeg[u]; i++ {
				stubs = append(stubs, u)
			}
		}
		rng.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })
		for i := 0; i+1 < len(stubs); i += 2 {
			addEdge(stubs[i], stubs[i+1]) // rejected pairs are simply dropped
		}
	}

	// External wiring: configuration model across communities.
	var ext []int
	for u := 0; u < cfg.N; u++ {
		for i := 0; i < extDeg[u]; i++ {
			ext = append(ext, u)
		}
	}
	rng.Shuffle(len(ext), func(i, j int) { ext[i], ext[j] = ext[j], ext[i] })
	for i := 0; i+1 < len(ext); i += 2 {
		u, v := ext[i], ext[i+1]
		if member[u] == member[v] {
			continue // keep mixing honest: drop accidental intra pairs
		}
		addEdge(u, v)
	}

	// Guarantee no isolated vertices: attach any degree-0 vertex to a
	// random member of its community (or any vertex if alone).
	degCount := make([]int, cfg.N)
	for _, e := range edges {
		degCount[e.U]++
		degCount[e.V]++
	}
	for u := 0; u < cfg.N; u++ {
		if degCount[u] > 0 {
			continue
		}
		peers := slots[member[u]]
		for tries := 0; tries < 8; tries++ {
			v := peers[rng.Intn(len(peers))]
			if addEdge(u, v) {
				degCount[u]++
				degCount[v]++
				break
			}
		}
		if degCount[u] == 0 {
			v := rng.Intn(cfg.N)
			if addEdge(u, v) {
				degCount[u]++
				degCount[v]++
			}
		}
	}

	g, err := graph.FromEdges(cfg.N, edges)
	if err != nil {
		return nil, nil, err
	}
	return g, member, nil
}
