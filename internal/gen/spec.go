package gen

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/graph"
)

// ParseSpec builds a graph from a compact textual generator spec, used by
// the command-line tools:
//
//	rmat:scale=12,ef=16,seed=1
//	rmat:scale=12,skew=0.7,seed=1
//	rmat:scale=12,a=0.6,b=0.17,c=0.17,d=0.06,seed=1
//	ba:n=10000,m=4,seed=1
//	lfr:n=5000,mu=0.3,seed=1
//	er:n=1000,p=0.01,seed=1
//	sbm:blocks=4,size=100,pin=0.3,pout=0.01,seed=1
//	caveman:cliques=10,size=6
//	hub:n=16384,csize=64,hubs=16,stride=4,deg=512,seed=1
//
// For rmat, `skew` sets the A quadrant probability and splits the rest over
// B/C/D in Graph500 proportions (gen.SetSkew; skew=0.57 is exactly
// Graph500); explicit a/b/c/d override all four and must sum to 1. `hub` is
// the planted-hub load-imbalance fixture (gen.PlantedHubs).
//
// The returned membership is the planted ground truth (nil for generators
// without one).
func ParseSpec(spec string) (*graph.Graph, graph.Membership, error) {
	return parseSpec(spec, nil)
}

// ParseRMATSpec parses an `rmat:…` spec (same syntax as ParseSpec) into
// its configuration without generating any edges — the streaming generator
// consumes the config directly.
func ParseRMATSpec(spec string) (RMATConfig, error) {
	var cfg RMATConfig
	_, _, err := parseSpec(spec, &cfg)
	return cfg, err
}

// parseSpec does the work of ParseSpec; with wantRMAT non-nil it instead
// stores the parsed rmat config there and builds nothing.
func parseSpec(spec string, wantRMAT *RMATConfig) (*graph.Graph, graph.Membership, error) {
	kind, args, _ := strings.Cut(spec, ":")
	kv := map[string]string{}
	if args != "" {
		for _, part := range strings.Split(args, ",") {
			k, v, ok := strings.Cut(part, "=")
			if !ok {
				return nil, nil, fmt.Errorf("gen: bad spec parameter %q in %q", part, spec)
			}
			kv[strings.TrimSpace(k)] = strings.TrimSpace(v)
		}
	}
	geti := func(key string, def int) (int, error) {
		v, ok := kv[key]
		if !ok {
			return def, nil
		}
		n, err := strconv.Atoi(v)
		if err != nil {
			return 0, fmt.Errorf("gen: spec %s: bad %s=%q: %v", kind, key, v, err)
		}
		return n, nil
	}
	getf := func(key string, def float64) (float64, error) {
		v, ok := kv[key]
		if !ok {
			return def, nil
		}
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return 0, fmt.Errorf("gen: spec %s: bad %s=%q: %v", kind, key, v, err)
		}
		return f, nil
	}
	var firstErr error
	i := func(key string, def int) int {
		n, err := geti(key, def)
		if err != nil && firstErr == nil {
			firstErr = err
		}
		return n
	}
	f := func(key string, def float64) float64 {
		x, err := getf(key, def)
		if err != nil && firstErr == nil {
			firstErr = err
		}
		return x
	}

	rmatConfig := func() RMATConfig {
		cfg := Graph500RMAT(i("scale", 12), int64(i("seed", 1)))
		cfg.EdgeFactor = i("ef", 16)
		if _, hasSkew := kv["skew"]; hasSkew && firstErr == nil {
			if serr := cfg.SetSkew(f("skew", 0.57)); serr != nil && firstErr == nil {
				firstErr = serr
			}
		}
		cfg.A = f("a", cfg.A)
		cfg.B = f("b", cfg.B)
		cfg.C = f("c", cfg.C)
		cfg.D = f("d", cfg.D)
		return cfg
	}
	if wantRMAT != nil {
		if kind != "rmat" {
			return nil, nil, fmt.Errorf("gen: spec %q is not an rmat spec", spec)
		}
		cfg := rmatConfig()
		if firstErr != nil {
			return nil, nil, firstErr
		}
		*wantRMAT = cfg
		return nil, nil, nil
	}

	var g *graph.Graph
	var truth graph.Membership
	var err error
	switch kind {
	case "rmat":
		cfg := rmatConfig()
		if firstErr == nil {
			g, err = RMAT(cfg)
		}
	case "hub":
		if firstErr == nil {
			g, truth, err = PlantedHubs(i("n", 16384), i("csize", 64), i("hubs", 16),
				i("stride", 4), i("deg", 512), int64(i("seed", 1)))
		}
	case "ba":
		if firstErr == nil {
			g, err = BarabasiAlbert(i("n", 10000), i("m", 4), int64(i("seed", 1)))
		}
	case "lfr":
		if firstErr == nil {
			g, truth, err = LFR(DefaultLFR(i("n", 5000), f("mu", 0.3), int64(i("seed", 1))))
		}
	case "er":
		if firstErr == nil {
			g, err = ErdosRenyi(i("n", 1000), f("p", 0.01), int64(i("seed", 1)))
		}
	case "sbm":
		blocks := i("blocks", 4)
		size := i("size", 100)
		sizes := make([]int, blocks)
		for b := range sizes {
			sizes[b] = size
		}
		if firstErr == nil {
			g, truth, err = SBM(sizes, f("pin", 0.3), f("pout", 0.01), int64(i("seed", 1)))
		}
	case "caveman":
		if firstErr == nil {
			g, truth, err = Caveman(i("cliques", 10), i("size", 6))
		}
	default:
		return nil, nil, fmt.Errorf("gen: unknown generator %q (want rmat|ba|lfr|er|sbm|caveman|hub)", kind)
	}
	if firstErr != nil {
		return nil, nil, firstErr
	}
	if err != nil {
		return nil, nil, err
	}
	return g, truth, nil
}
