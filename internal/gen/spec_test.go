package gen

import (
	"strings"
	"testing"
)

func TestParseSpecKinds(t *testing.T) {
	cases := []struct {
		spec      string
		vertices  int
		wantTruth bool
	}{
		{"rmat:scale=8,ef=8,seed=2", 256, false},
		{"ba:n=500,m=3,seed=2", 500, false},
		{"lfr:n=400,mu=0.2,seed=2", 400, true},
		{"er:n=300,p=0.02,seed=2", 300, false},
		{"sbm:blocks=3,size=50,pin=0.3,pout=0.01,seed=2", 150, true},
		{"caveman:cliques=5,size=4", 20, true},
		{"rmat:scale=8,ef=8,seed=2,skew=0.7", 256, false},
		{"hub:n=1024,csize=32,hubs=8,stride=4,deg=64,seed=2", 1024, true},
	}
	for _, c := range cases {
		g, truth, err := ParseSpec(c.spec)
		if err != nil {
			t.Errorf("%s: %v", c.spec, err)
			continue
		}
		if g.NumVertices() != c.vertices {
			t.Errorf("%s: %d vertices, want %d", c.spec, g.NumVertices(), c.vertices)
		}
		if (truth != nil) != c.wantTruth {
			t.Errorf("%s: truth presence = %v, want %v", c.spec, truth != nil, c.wantTruth)
		}
	}
}

func TestParseSpecDefaults(t *testing.T) {
	g, _, err := ParseSpec("ba")
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 10000 {
		t.Errorf("default ba n = %d", g.NumVertices())
	}
}

func TestParseSpecErrors(t *testing.T) {
	for _, spec := range []string{
		"unknown:n=5",
		"ba:n",          // missing value
		"ba:n=abc",      // bad int
		"lfr:mu=oops",   // bad float
		"lfr:n=2,mu=.2", // invalid LFR bounds propagate
	} {
		if _, _, err := ParseSpec(spec); err == nil {
			t.Errorf("%q: expected error", spec)
		}
	}
}

func TestParseSpecErrorMentionsKind(t *testing.T) {
	_, _, err := ParseSpec("zzz:a=1")
	if err == nil || !strings.Contains(err.Error(), "zzz") {
		t.Errorf("err = %v", err)
	}
}
