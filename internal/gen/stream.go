package gen

// Out-of-core R-MAT generation. The in-RAM RMAT holds a dedup set of every
// edge plus the full edge list and CSR — ~50+ bytes per edge — which caps
// generation around 10⁷ edges. StreamRMAT writes the same graph (bit for
// bit) in bounded memory: generated arcs are appended to temporary bucket
// files by source-vertex range, then each shard's buckets are loaded,
// sorted, and deduplicated one shard at a time and encoded straight into a
// v2 .sbin through graph.ShardedWriter. Peak memory is ~16 bytes per arc
// of the largest shard (its raw records plus their sort keys), flat in
// total |E| for a fixed |E|/shards.
//
// Bit-identity with RMAT(cfg) holds because the RNG sequence is untouched
// by deduplication (the in-RAM path consumes no randomness on duplicate or
// self-loop edges), every kept edge has unit weight, and set-semantics
// dedup of unit-weight arcs is order-independent — sorting then collapsing
// equal (src, tgt) keys yields exactly the arc set the in-RAM dedup map
// keeps, already in CSR order.

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"slices"
	"sort"

	"repro/internal/graph"
)

// StreamedGraph describes the output of StreamRMAT.
type StreamedGraph struct {
	Path     string
	Vertices int
	Arcs     int64 // directed arcs after dedup (2× undirected edges)
	Shards   int
}

// maxStreamBuckets caps the number of temporary bucket files (and their
// write buffers) regardless of the requested shard count.
const maxStreamBuckets = 1024

// streamBucketRecord is one generated arc in a bucket file: u32 src, u32
// tgt, little-endian.
const streamBucketRecord = 8

// StreamRMAT generates RMAT(cfg) directly into path as a v2 sharded binary
// graph with the given shard count, never holding more than one shard's
// arcs in memory. Shard boundaries are chosen to balance arcs (like the
// in-RAM sharded writer), from the observed bucket sizes rather than a CSR.
func StreamRMAT(cfg RMATConfig, path string, shards int) (StreamedGraph, error) {
	var out StreamedGraph
	if cfg.Scale < 0 || cfg.Scale > 30 {
		return out, fmt.Errorf("gen: RMAT scale %d out of range [0,30]", cfg.Scale)
	}
	if s := cfg.A + cfg.B + cfg.C + cfg.D; math.Abs(s-1) > 1e-9 {
		return out, fmt.Errorf("gen: RMAT quadrant probabilities sum to %g, want 1", s)
	}
	n := 1 << cfg.Scale
	e := int64(cfg.EdgeFactor) * int64(n)
	if shards < 1 {
		shards = 1
	}
	if shards > n {
		shards = n
	}

	// Finer-grained buckets than shards let the arc-balancing regroup
	// around R-MAT's skew (low-numbered vertices carry most arcs).
	nb := 4 * shards
	if nb > maxStreamBuckets {
		nb = maxStreamBuckets
	}
	if nb > n {
		nb = n
	}
	bucketDir, err := os.MkdirTemp(filepath.Dir(path), ".rmat-buckets-")
	if err != nil {
		return out, err
	}
	defer os.RemoveAll(bucketDir)

	bucketSizes, err := generateBuckets(cfg, n, e, nb, bucketDir)
	if err != nil {
		return out, err
	}

	// Group buckets into shards balancing bytes (∝ arcs): shard s ends at
	// the first bucket where the cumulative size reaches (s+1)/shards of
	// the total — the same rule the in-RAM writer applies to arc offsets.
	cum := make([]int64, nb+1)
	for b := 0; b < nb; b++ {
		cum[b+1] = cum[b] + bucketSizes[b]
	}
	bhi := make([]int, shards)
	for s := 0; s < shards-1; s++ {
		target := int64(s+1) * cum[nb] / int64(shards)
		bhi[s] = sort.Search(nb, func(b int) bool { return cum[b+1] >= target })
	}
	bhi[shards-1] = nb

	f, err := os.Create(path)
	if err != nil {
		return out, err
	}
	sw, err := graph.NewShardedWriter(f, n, shards, []float64{1})
	if err != nil {
		f.Close()
		return out, err
	}
	blo := 0
	for s := 0; s < shards; s++ {
		if err := encodeShardFromBuckets(sw, n, nb, blo, bhi[s], bucketDir); err != nil {
			f.Close()
			return out, fmt.Errorf("gen: stream shard %d: %w", s, err)
		}
		blo = bhi[s]
	}
	if err := sw.Finish(); err != nil {
		f.Close()
		return out, err
	}
	if err := f.Close(); err != nil {
		return out, err
	}
	return StreamedGraph{Path: path, Vertices: n, Arcs: sw.Arcs(), Shards: shards}, nil
}

// bucketOf maps a vertex to its bucket: bucket b covers [b·n/nb, (b+1)·n/nb).
func bucketOf(u, n, nb int) int {
	b := int(int64(u) * int64(nb) / int64(n))
	for b < nb-1 && u >= (b+1)*n/nb {
		b++
	}
	for b > 0 && u < b*n/nb {
		b--
	}
	return b
}

// generateBuckets runs the R-MAT edge loop (the exact RNG sequence of the
// in-RAM RMAT) and appends each surviving arc to its source vertex's
// bucket file. Self-loops are dropped; duplicates are kept — dedup happens
// at encode time, after the per-shard sort. Returns each bucket's byte
// size.
func generateBuckets(cfg RMATConfig, n int, e int64, nb int, dir string) ([]int64, error) {
	files := make([]*os.File, nb)
	ws := make([]*bufio.Writer, nb)
	for b := range files {
		f, err := os.Create(bucketPath(dir, b))
		if err != nil {
			for _, g := range files[:b] {
				g.Close()
			}
			return nil, err
		}
		files[b] = f
		ws[b] = bufio.NewWriterSize(f, 1<<16)
	}
	closeAll := func() error {
		var first error
		for b := range files {
			if err := ws[b].Flush(); err != nil && first == nil {
				first = err
			}
			if err := files[b].Close(); err != nil && first == nil {
				first = err
			}
		}
		return first
	}

	sizes := make([]int64, nb)
	var rec [streamBucketRecord]byte
	put := func(src, tgt int) error {
		b := bucketOf(src, n, nb)
		binary.LittleEndian.PutUint32(rec[0:], uint32(src))
		binary.LittleEndian.PutUint32(rec[4:], uint32(tgt))
		if _, err := ws[b].Write(rec[:]); err != nil {
			return err
		}
		sizes[b] += streamBucketRecord
		return nil
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	for i := int64(0); i < e; i++ {
		u, v := 0, 0
		for bit := 0; bit < cfg.Scale; bit++ {
			r := rng.Float64()
			switch {
			case r < cfg.A:
				// upper-left: no bits set
			case r < cfg.A+cfg.B:
				v |= 1 << bit
			case r < cfg.A+cfg.B+cfg.C:
				u |= 1 << bit
			default:
				u |= 1 << bit
				v |= 1 << bit
			}
		}
		if u == v {
			continue
		}
		if err := put(u, v); err != nil {
			closeAll()
			return nil, err
		}
		if err := put(v, u); err != nil {
			closeAll()
			return nil, err
		}
	}
	if err := closeAll(); err != nil {
		return nil, err
	}
	return sizes, nil
}

func bucketPath(dir string, b int) string {
	return filepath.Join(dir, fmt.Sprintf("b%04d", b))
}

// encodeShardFromBuckets loads buckets [blo, bhi), sorts and dedups their
// arcs, and appends the resulting CSR window as the writer's next shard.
// The consumed bucket files are deleted so disk usage stays ~2× the output
// rather than accumulating.
func encodeShardFromBuckets(sw *graph.ShardedWriter, n, nb, blo, bhi int, dir string) error {
	vlo := 0
	if blo < nb {
		vlo = blo * n / nb
	} else {
		vlo = n
	}
	vhi := n
	if bhi < nb {
		vhi = bhi * n / nb
	}

	var total int64
	for b := blo; b < bhi; b++ {
		st, err := os.Stat(bucketPath(dir, b))
		if err != nil {
			return err
		}
		total += st.Size()
	}
	if total%streamBucketRecord != 0 {
		return fmt.Errorf("bucket bytes %d not a record multiple", total)
	}
	raw := make([]byte, total)
	off := int64(0)
	for b := blo; b < bhi; b++ {
		p := bucketPath(dir, b)
		f, err := os.Open(p)
		if err != nil {
			return err
		}
		st, err := f.Stat()
		if err != nil {
			f.Close()
			return err
		}
		if _, err := io.ReadFull(f, raw[off:off+st.Size()]); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		if err := os.Remove(p); err != nil {
			return err
		}
		off += st.Size()
	}

	// Sort (src, tgt) keys and collapse duplicates straight into the CSR
	// window. Buckets hold disjoint source ranges but are concatenated in
	// range order, so one sort of the whole shard is correct.
	keys := make([]uint64, total/streamBucketRecord)
	for i := range keys {
		src := binary.LittleEndian.Uint32(raw[i*streamBucketRecord:])
		tgt := binary.LittleEndian.Uint32(raw[i*streamBucketRecord+4:])
		if int(src) < vlo || int(src) >= vhi {
			return fmt.Errorf("record source %d outside shard [%d,%d)", src, vlo, vhi)
		}
		keys[i] = uint64(src)<<32 | uint64(tgt)
	}
	raw = nil
	slices.Sort(keys)

	offsets := make([]int64, vhi-vlo+1)
	targets := make([]int32, 0, len(keys))
	prev := ^uint64(0)
	for _, k := range keys {
		if k == prev {
			continue
		}
		prev = k
		src := int(k >> 32)
		targets = append(targets, int32(k&0xffffffff))
		offsets[src-vlo+1]++
	}
	for i := 1; i <= vhi-vlo; i++ {
		offsets[i] += offsets[i-1]
	}
	return sw.AppendShard(vhi, offsets, targets, nil)
}
