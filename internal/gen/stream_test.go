package gen

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/graph"
)

// TestStreamRMATMatchesInRAM pins the generator acceptance claim: the
// bounded-memory path writes the exact graph RMAT builds in RAM — compared
// byte-for-byte through the canonical flat encoding, across scales, edge
// factors, seeds, and shard counts (including shards ≫ buckets' vertex
// ranges and a skewed quadrant mix).
func TestStreamRMATMatchesInRAM(t *testing.T) {
	dir := t.TempDir()
	for _, tc := range []struct {
		scale, ef int
		seed      int64
		skew      float64
		shards    int
	}{
		{scale: 6, ef: 4, seed: 1, shards: 1},
		{scale: 8, ef: 8, seed: 7, shards: 5},
		{scale: 10, ef: 8, seed: 42, shards: 32},
		{scale: 10, ef: 4, seed: 3, skew: 0.7, shards: 9},
		{scale: 4, ef: 2, seed: 11, shards: 64}, // shards > n clamp
		{scale: 0, ef: 4, seed: 5, shards: 2},   // degenerate: 1 vertex, no arcs
	} {
		cfg := Graph500RMAT(tc.scale, tc.seed)
		cfg.EdgeFactor = tc.ef
		if tc.skew != 0 {
			if err := cfg.SetSkew(tc.skew); err != nil {
				t.Fatal(err)
			}
		}
		want, err := RMAT(cfg)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, "g.sbin")
		sg, err := StreamRMAT(cfg, path, tc.shards)
		if err != nil {
			t.Fatalf("scale=%d shards=%d: %v", tc.scale, tc.shards, err)
		}
		if sg.Vertices != want.NumVertices() || sg.Arcs != want.NumArcs() {
			t.Fatalf("scale=%d: streamed %d vertices %d arcs, want %d/%d",
				tc.scale, sg.Vertices, sg.Arcs, want.NumVertices(), want.NumArcs())
		}
		s, closer, err := graph.OpenShardedFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if s.Version() != 2 {
			t.Fatalf("scale=%d: version %d, want 2", tc.scale, s.Version())
		}
		got, err := s.ReadAll(2)
		if err != nil {
			t.Fatal(err)
		}
		if err := closer.Close(); err != nil {
			t.Fatal(err)
		}
		var wb, gb bytes.Buffer
		if err := graph.WriteBinary(&wb, want); err != nil {
			t.Fatal(err)
		}
		if err := graph.WriteBinary(&gb, got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(wb.Bytes(), gb.Bytes()) {
			t.Fatalf("scale=%d ef=%d seed=%d shards=%d: streamed graph differs from in-RAM RMAT",
				tc.scale, tc.ef, tc.seed, tc.shards)
		}
	}
}

// TestStreamRMATDeterministic re-runs the generator and requires the
// output file to be byte-identical — shard grouping is a pure function of
// the generated data.
func TestStreamRMATDeterministic(t *testing.T) {
	dir := t.TempDir()
	cfg := Graph500RMAT(9, 13)
	cfg.EdgeFactor = 6
	p1 := filepath.Join(dir, "a.sbin")
	p2 := filepath.Join(dir, "b.sbin")
	if _, err := StreamRMAT(cfg, p1, 7); err != nil {
		t.Fatal(err)
	}
	if _, err := StreamRMAT(cfg, p2, 7); err != nil {
		t.Fatal(err)
	}
	a, err := os.ReadFile(p1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(p2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("two StreamRMAT runs produced different bytes")
	}
	// The bucket temp dir must be gone.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() {
			t.Fatalf("leftover temp dir %s", e.Name())
		}
	}
}

func TestStreamRMATErrors(t *testing.T) {
	dir := t.TempDir()
	cfg := Graph500RMAT(4, 1)
	cfg.A = 0.9 // probabilities no longer sum to 1
	if _, err := StreamRMAT(cfg, filepath.Join(dir, "x.sbin"), 2); err == nil {
		t.Error("bad probabilities: expected error")
	}
	bad := Graph500RMAT(40, 1)
	if _, err := StreamRMAT(bad, filepath.Join(dir, "x.sbin"), 2); err == nil {
		t.Error("scale out of range: expected error")
	}
	if _, err := StreamRMAT(Graph500RMAT(4, 1), filepath.Join(dir, "no/such/dir/x.sbin"), 2); err == nil {
		t.Error("unwritable path: expected error")
	}
}
