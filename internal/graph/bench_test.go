package graph

import (
	"math/rand"
	"testing"
)

func benchEdges(n, e int) []Edge {
	rng := rand.New(rand.NewSource(1))
	edges := make([]Edge, e)
	for i := range edges {
		edges[i] = Edge{U: rng.Intn(n), V: rng.Intn(n), W: 1}
	}
	return edges
}

func BenchmarkFromEdges(b *testing.B) {
	n, e := 10000, 80000
	edges := benchEdges(n, e)
	b.SetBytes(int64(e * 16))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FromEdges(n, edges); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkModularity(b *testing.B) {
	n, e := 10000, 80000
	g, err := FromEdges(n, benchEdges(n, e))
	if err != nil {
		b.Fatal(err)
	}
	m := make(Membership, n)
	for i := range m {
		m[i] = i % 64
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Modularity(g, m)
	}
}

func BenchmarkNeighborIteration(b *testing.B) {
	n, e := 10000, 80000
	g, err := FromEdges(n, benchEdges(n, e))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var sum float64
		for u := 0; u < g.NumVertices(); u++ {
			_, ws := g.Neighbors(u)
			for _, w := range ws {
				sum += w
			}
		}
		if sum <= 0 {
			b.Fatal("bad sum")
		}
	}
}
