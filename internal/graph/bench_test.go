package graph

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
)

func benchEdges(n, e int) []Edge {
	rng := rand.New(rand.NewSource(1))
	edges := make([]Edge, e)
	for i := range edges {
		edges[i] = Edge{U: rng.Intn(n), V: rng.Intn(n), W: 1}
	}
	return edges
}

func BenchmarkFromEdges(b *testing.B) {
	n, e := 10000, 80000
	edges := benchEdges(n, e)
	b.SetBytes(int64(e * 16))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FromEdges(n, edges); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkModularity(b *testing.B) {
	n, e := 10000, 80000
	g, err := FromEdges(n, benchEdges(n, e))
	if err != nil {
		b.Fatal(err)
	}
	m := make(Membership, n)
	for i := range m {
		m[i] = i % 64
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Modularity(g, m)
	}
}

// BenchmarkShardedV2Read measures the windowed decode paths the
// out-of-core pipeline lives on, v1 against the compressed v2 format:
// whole-file decode (ReadAll) and a full sweep of per-shard windows. MB/s
// counts decoded arcs (12 bytes each: target + weight), so the v2 rows
// show the decode cost of run-coded weights at equal logical volume;
// file-B is the on-disk size, where v2 earns its keep.
func BenchmarkShardedV2Read(b *testing.B) {
	n, e := 20000, 160000
	g, err := FromEdges(n, benchEdges(n, e))
	if err != nil {
		b.Fatal(err)
	}
	const shards = 16
	var v1, v2 bytes.Buffer
	if err := WriteBinarySharded(&v1, g, shards); err != nil {
		b.Fatal(err)
	}
	if err := WriteBinaryShardedV2(&v2, g, shards); err != nil {
		b.Fatal(err)
	}
	for _, c := range []struct {
		name string
		data []byte
	}{{"v1", v1.Bytes()}, {"v2", v2.Bytes()}} {
		s, err := OpenSharded(bytes.NewReader(c.data), int64(len(c.data)))
		if err != nil {
			b.Fatal(err)
		}
		arcBytes := s.NumArcs() * 12
		b.Run(fmt.Sprintf("%s/all", c.name), func(b *testing.B) {
			b.SetBytes(arcBytes)
			b.ReportMetric(float64(len(c.data)), "file-B")
			for i := 0; i < b.N; i++ {
				if _, err := s.ReadAll(1); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("%s/window", c.name), func(b *testing.B) {
			b.SetBytes(arcBytes)
			for i := 0; i < b.N; i++ {
				for sh := 0; sh < s.NumShards(); sh++ {
					if _, err := s.ReadWindow(sh); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

func BenchmarkNeighborIteration(b *testing.B) {
	n, e := 10000, 80000
	g, err := FromEdges(n, benchEdges(n, e))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var sum float64
		for u := 0; u < g.NumVertices(); u++ {
			_, ws := g.Neighbors(u)
			for _, w := range ws {
				sum += w
			}
		}
		if sum <= 0 {
			b.Fatal("bad sum")
		}
	}
}
