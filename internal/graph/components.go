package graph

// ConnectedComponents labels each vertex with its connected component
// (dense labels 0..K-1 in order of first appearance) and returns the
// labeling and the component count. Isolated vertices form singleton
// components.
func ConnectedComponents(g *Graph) (Membership, int) {
	n := g.NumVertices()
	labels := make(Membership, n)
	for i := range labels {
		labels[i] = -1
	}
	var queue []int
	comp := 0
	for s := 0; s < n; s++ {
		if labels[s] >= 0 {
			continue
		}
		labels[s] = comp
		queue = append(queue[:0], s)
		for len(queue) > 0 {
			u := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			lo, hi := g.ArcRange(u)
			for a := lo; a < hi; a++ {
				v := g.ArcTarget(a)
				if labels[v] < 0 {
					labels[v] = comp
					queue = append(queue, v)
				}
			}
		}
		comp++
	}
	return labels, comp
}

// LargestComponent returns the vertex count of the largest connected
// component (0 for an empty graph).
func LargestComponent(g *Graph) int {
	labels, k := ConnectedComponents(g)
	if k == 0 {
		return 0
	}
	counts := make([]int, k)
	for _, c := range labels {
		counts[c]++
	}
	best := 0
	for _, c := range counts {
		if c > best {
			best = c
		}
	}
	return best
}
