package graph

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/par"
)

// seedFromTestdata adds the contents of a testdata file to the corpus, so
// the fuzzers start from realistic inputs rather than only synthetic ones.
func seedFromTestdata(f *testing.F, name string) {
	f.Helper()
	data, err := os.ReadFile(filepath.Join("testdata", name))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(string(data))
}

// FuzzReadEdgeList exercises the text parser against arbitrary input: it
// must return an error or a structurally valid graph, never panic — and
// an accepted graph must survive a write/reparse round trip.
func FuzzReadEdgeList(f *testing.F) {
	f.Add("0 1\n1 2 2.5\n")
	f.Add("# vertices 10\n0 1 1\n")
	f.Add("")
	f.Add("x y z\n")
	f.Add("-1 -2\n")
	seedFromTestdata(f, "karate_small.txt")
	f.Fuzz(func(t *testing.T, input string) {
		// Use the capped reader: a single hostile line can legitimately ask
		// ReadEdgeList for a ~2^31-vertex graph, which is valid but far too
		// large to allocate per fuzz input.
		g, err := readEdgeList(strings.NewReader(input), 1<<20)
		// The chunked parallel parser shares the grammar line for line: it
		// must agree with the serial reader on accept/reject, error text,
		// and every bit of an accepted graph. Call the chunked body
		// directly — fuzz inputs are below the size cutover.
		pool := par.NewPool(3)
		gp, perr := parseEdgeListChunked([]byte(input), pool, 1<<20)
		pool.Close()
		if (err == nil) != (perr == nil) {
			t.Fatalf("serial err %v, parallel err %v", err, perr)
		}
		if err != nil {
			if err.Error() != perr.Error() {
				t.Fatalf("serial error %q, parallel error %q", err, perr)
			}
			return
		}
		if diff := graphsIdentical(g, gp); diff != "" {
			t.Fatalf("parallel parse diverged from serial: %s", diff)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("parser accepted input %q but produced invalid graph: %v", input, err)
		}
		// Round trip: what the writer emits, the parser must accept and
		// reproduce with identical structure.
		var buf bytes.Buffer
		if err := WriteEdgeList(&buf, g); err != nil {
			t.Fatalf("writing accepted graph back: %v", err)
		}
		g2, err := ReadEdgeList(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("reparsing written graph: %v", err)
		}
		if g2.NumVertices() != g.NumVertices() || g2.NumArcs() != g.NumArcs() {
			t.Fatalf("round trip changed shape: %d/%d vertices, %d/%d arcs",
				g.NumVertices(), g2.NumVertices(), g.NumArcs(), g2.NumArcs())
		}
	})
}

// FuzzReadMETIS exercises the METIS parser the same way: arbitrary input
// must yield an error or a structurally valid graph, never a panic.
func FuzzReadMETIS(f *testing.F) {
	f.Add("3 3\n2 3\n1 3\n1 2\n")
	f.Add("% a comment\n3 2 001\n2 1.5\n1 1.5 3 2\n2 2\n")
	f.Add("")
	f.Add("1 0\n\n")
	f.Add("2 1 011\n2 1\n1 1\n")
	f.Add("4 2\n2\n1 3\n2\n\n")
	seedFromTestdata(f, "ring6.metis")
	f.Fuzz(func(t *testing.T, input string) {
		g, err := readMETIS(strings.NewReader(input), 1<<20)
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("parser accepted input %q but produced invalid graph: %v", input, err)
		}
	})
}

// FuzzReadBinarySharded exercises the sharded loader against arbitrary
// bytes: hostile shard indexes (bad offsets, counts, bounds) must produce
// errors, never panics or payload-sized allocations, and an accepted graph
// must be structurally valid.
func FuzzReadBinarySharded(f *testing.F) {
	g, err := FromEdges(6, []Edge{{U: 0, V: 1, W: 1}, {U: 2, V: 3, W: 2}, {U: 4, V: 5, W: 0.5}, {U: 1, V: 1, W: 3}})
	if err != nil {
		f.Fatal(err)
	}
	for _, shards := range []int{1, 3} {
		var buf bytes.Buffer
		if err := WriteBinarySharded(&buf, g, shards); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
		var v2 bytes.Buffer
		if err := WriteBinaryShardedV2(&v2, g, shards); err != nil {
			f.Fatal(err)
		}
		f.Add(v2.Bytes())
	}
	f.Add([]byte{})
	f.Add([]byte{0xa2, 0x50, 0x72, 0x47, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadBinarySharded(bytes.NewReader(data), 2)
		if err != nil {
			return
		}
		// A crafted index can encode an asymmetric graph, so full Validate
		// symmetry is not guaranteed — but counts and CSR structure are.
		if g.NumVertices() < 0 || g.NumArcs() < 0 {
			t.Fatal("negative sizes")
		}
		for u := 0; u < g.NumVertices(); u++ {
			lo, hi := g.ArcRange(u)
			if lo > hi {
				t.Fatalf("vertex %d: offsets not monotone", u)
			}
		}
	})
}

// FuzzReadBinary exercises the binary parser against arbitrary bytes.
func FuzzReadBinary(f *testing.F) {
	g, err := FromEdges(4, []Edge{{U: 0, V: 1, W: 1}, {U: 2, V: 3, W: 2}})
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0xa1, 0x50, 0x72, 0x47, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		// A successfully parsed graph must at least have sane counts.
		if g.NumVertices() < 0 || g.NumArcs() < 0 {
			t.Fatal("negative sizes")
		}
	})
}

// FuzzReadVertexRange exercises the windowed decode paths (ReadWindow and
// ReadVertexRange, which the out-of-core pipeline lives on) against
// arbitrary bytes — hostile headers, truncated windows, overlapping shard
// indexes — in both format versions. The invariant: whenever the
// whole-file decoder accepts the input, every window and vertex range must
// decode without error to exactly the same arcs; and on rejected input the
// windowed paths must error, never panic.
func FuzzReadVertexRange(f *testing.F) {
	g, err := FromEdges(8, []Edge{
		{U: 0, V: 1, W: 1}, {U: 2, V: 3, W: 1}, {U: 4, V: 5, W: 2},
		{U: 6, V: 7, W: 1}, {U: 1, V: 1, W: 3}, {U: 3, V: 6, W: 0.5},
	})
	if err != nil {
		f.Fatal(err)
	}
	for _, shards := range []int{1, 3} {
		var v1, v2 bytes.Buffer
		if err := WriteBinarySharded(&v1, g, shards); err != nil {
			f.Fatal(err)
		}
		if err := WriteBinaryShardedV2(&v2, g, shards); err != nil {
			f.Fatal(err)
		}
		f.Add(v1.Bytes())
		f.Add(v2.Bytes())
		// Truncated-window seed: the index survives, the payload does not.
		f.Add(v2.Bytes()[:v2.Len()-2])
	}
	f.Add([]byte{})
	f.Add([]byte{0xa3, 0x50, 0x72, 0x47, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := OpenSharded(bytes.NewReader(data), int64(len(data)))
		if err != nil {
			return
		}
		full, ferr := s.ReadAll(2)
		if ferr != nil {
			// The input fails somewhere in a payload; the windowed decoders
			// share those validation paths and must fail cleanly too, but
			// which shard errors first is theirs to decide.
			for i := 0; i < s.NumShards(); i++ {
				_, _ = s.ReadWindow(i)
			}
			_, _, _, _ = s.ReadVertexRange(0, s.NumVertices())
			return
		}
		n := s.NumVertices()
		for i := 0; i < s.NumShards(); i++ {
			w, werr := s.ReadWindow(i)
			if werr != nil {
				t.Fatalf("ReadAll accepted but window %d rejected: %v", i, werr)
			}
			for u := w.Lo; u < w.Hi; u++ {
				wantT, wantW := full.Neighbors(u)
				gotT, gotW := w.Arcs(u)
				if len(gotT) != len(wantT) {
					t.Fatalf("vertex %d: window %d arcs, ReadAll %d", u, len(gotT), len(wantT))
				}
				for k := range wantT {
					if gotT[k] != wantT[k] || gotW[k] != wantW[k] {
						t.Fatalf("vertex %d arc %d: window (%d,%v), ReadAll (%d,%v)",
							u, k, gotT[k], gotW[k], wantT[k], wantW[k])
					}
				}
			}
		}
		for _, r := range [][2]int{{0, n}, {n / 3, n/3 + (n+2)/3}, {n - 1, n}, {0, 0}} {
			lo, hi := r[0], r[1]
			if lo < 0 || hi < lo || hi > n {
				continue
			}
			offs, ts, _, rerr := s.ReadVertexRange(lo, hi)
			if rerr != nil {
				t.Fatalf("ReadAll accepted but range [%d,%d) rejected: %v", lo, hi, rerr)
			}
			for u := lo; u < hi; u++ {
				wantT, _ := full.Neighbors(u)
				gotT := ts[offs[u-lo]:offs[u-lo+1]]
				if len(gotT) != len(wantT) {
					t.Fatalf("range vertex %d: %d arcs, want %d", u, len(gotT), len(wantT))
				}
				for k := range wantT {
					if gotT[k] != wantT[k] {
						t.Fatalf("range vertex %d arc %d mismatch", u, k)
					}
				}
			}
		}
	})
}
