package graph

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadEdgeList exercises the text parser against arbitrary input: it
// must return an error or a structurally valid graph, never panic.
func FuzzReadEdgeList(f *testing.F) {
	f.Add("0 1\n1 2 2.5\n")
	f.Add("# vertices 10\n0 1 1\n")
	f.Add("")
	f.Add("x y z\n")
	f.Add("-1 -2\n")
	f.Fuzz(func(t *testing.T, input string) {
		g, err := ReadEdgeList(strings.NewReader(input))
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("parser accepted input %q but produced invalid graph: %v", input, err)
		}
	})
}

// FuzzReadBinary exercises the binary parser against arbitrary bytes.
func FuzzReadBinary(f *testing.F) {
	g, err := FromEdges(4, []Edge{{U: 0, V: 1, W: 1}, {U: 2, V: 3, W: 2}})
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0xa1, 0x50, 0x72, 0x47, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		// A successfully parsed graph must at least have sane counts.
		if g.NumVertices() < 0 || g.NumArcs() < 0 {
			t.Fatal("negative sizes")
		}
	})
}
