package graph

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/par"
)

// seedFromTestdata adds the contents of a testdata file to the corpus, so
// the fuzzers start from realistic inputs rather than only synthetic ones.
func seedFromTestdata(f *testing.F, name string) {
	f.Helper()
	data, err := os.ReadFile(filepath.Join("testdata", name))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(string(data))
}

// FuzzReadEdgeList exercises the text parser against arbitrary input: it
// must return an error or a structurally valid graph, never panic — and
// an accepted graph must survive a write/reparse round trip.
func FuzzReadEdgeList(f *testing.F) {
	f.Add("0 1\n1 2 2.5\n")
	f.Add("# vertices 10\n0 1 1\n")
	f.Add("")
	f.Add("x y z\n")
	f.Add("-1 -2\n")
	seedFromTestdata(f, "karate_small.txt")
	f.Fuzz(func(t *testing.T, input string) {
		// Use the capped reader: a single hostile line can legitimately ask
		// ReadEdgeList for a ~2^31-vertex graph, which is valid but far too
		// large to allocate per fuzz input.
		g, err := readEdgeList(strings.NewReader(input), 1<<20)
		// The chunked parallel parser shares the grammar line for line: it
		// must agree with the serial reader on accept/reject, error text,
		// and every bit of an accepted graph. Call the chunked body
		// directly — fuzz inputs are below the size cutover.
		pool := par.NewPool(3)
		gp, perr := parseEdgeListChunked([]byte(input), pool, 1<<20)
		pool.Close()
		if (err == nil) != (perr == nil) {
			t.Fatalf("serial err %v, parallel err %v", err, perr)
		}
		if err != nil {
			if err.Error() != perr.Error() {
				t.Fatalf("serial error %q, parallel error %q", err, perr)
			}
			return
		}
		if diff := graphsIdentical(g, gp); diff != "" {
			t.Fatalf("parallel parse diverged from serial: %s", diff)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("parser accepted input %q but produced invalid graph: %v", input, err)
		}
		// Round trip: what the writer emits, the parser must accept and
		// reproduce with identical structure.
		var buf bytes.Buffer
		if err := WriteEdgeList(&buf, g); err != nil {
			t.Fatalf("writing accepted graph back: %v", err)
		}
		g2, err := ReadEdgeList(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("reparsing written graph: %v", err)
		}
		if g2.NumVertices() != g.NumVertices() || g2.NumArcs() != g.NumArcs() {
			t.Fatalf("round trip changed shape: %d/%d vertices, %d/%d arcs",
				g.NumVertices(), g2.NumVertices(), g.NumArcs(), g2.NumArcs())
		}
	})
}

// FuzzReadMETIS exercises the METIS parser the same way: arbitrary input
// must yield an error or a structurally valid graph, never a panic.
func FuzzReadMETIS(f *testing.F) {
	f.Add("3 3\n2 3\n1 3\n1 2\n")
	f.Add("% a comment\n3 2 001\n2 1.5\n1 1.5 3 2\n2 2\n")
	f.Add("")
	f.Add("1 0\n\n")
	f.Add("2 1 011\n2 1\n1 1\n")
	f.Add("4 2\n2\n1 3\n2\n\n")
	seedFromTestdata(f, "ring6.metis")
	f.Fuzz(func(t *testing.T, input string) {
		g, err := readMETIS(strings.NewReader(input), 1<<20)
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("parser accepted input %q but produced invalid graph: %v", input, err)
		}
	})
}

// FuzzReadBinarySharded exercises the sharded loader against arbitrary
// bytes: hostile shard indexes (bad offsets, counts, bounds) must produce
// errors, never panics or payload-sized allocations, and an accepted graph
// must be structurally valid.
func FuzzReadBinarySharded(f *testing.F) {
	g, err := FromEdges(6, []Edge{{U: 0, V: 1, W: 1}, {U: 2, V: 3, W: 2}, {U: 4, V: 5, W: 0.5}, {U: 1, V: 1, W: 3}})
	if err != nil {
		f.Fatal(err)
	}
	for _, shards := range []int{1, 3} {
		var buf bytes.Buffer
		if err := WriteBinarySharded(&buf, g, shards); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	f.Add([]byte{})
	f.Add([]byte{0xa2, 0x50, 0x72, 0x47, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadBinarySharded(bytes.NewReader(data), 2)
		if err != nil {
			return
		}
		// A crafted index can encode an asymmetric graph, so full Validate
		// symmetry is not guaranteed — but counts and CSR structure are.
		if g.NumVertices() < 0 || g.NumArcs() < 0 {
			t.Fatal("negative sizes")
		}
		for u := 0; u < g.NumVertices(); u++ {
			lo, hi := g.ArcRange(u)
			if lo > hi {
				t.Fatalf("vertex %d: offsets not monotone", u)
			}
		}
	})
}

// FuzzReadBinary exercises the binary parser against arbitrary bytes.
func FuzzReadBinary(f *testing.F) {
	g, err := FromEdges(4, []Edge{{U: 0, V: 1, W: 1}, {U: 2, V: 3, W: 2}})
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0xa1, 0x50, 0x72, 0x47, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		// A successfully parsed graph must at least have sane counts.
		if g.NumVertices() < 0 || g.NumArcs() < 0 {
			t.Fatal("negative sizes")
		}
	})
}
