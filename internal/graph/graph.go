// Package graph provides a compact weighted undirected graph in compressed
// sparse row (CSR) form, plus builders, statistics, and serialization.
//
// Conventions used across the repository:
//
//   - Vertices are dense integers 0..N-1.
//   - An undirected edge {u,v} with u != v is stored as two arcs (u,v) and
//     (v,u), each carrying the full edge weight.
//   - A self-loop {u,u} is stored as a single arc (u,u); its weight counts
//     once toward the weighted degree k(u).
//   - The total graph weight is expressed as 2m = Σᵤ k(u).
//
// These conventions make modularity bookkeeping exact when communities are
// merged into coarser graphs: internal edges of a community become a single
// self-loop whose weight is the sum of the internal arc weights.
package graph

import (
	"fmt"
	"sort"
)

// Edge is one undirected edge of an edge list. Endpoints are vertex IDs;
// W is the edge weight (1 for unweighted graphs).
type Edge struct {
	U, V int
	W    float64
}

// Graph is an immutable weighted undirected graph in CSR form.
type Graph struct {
	offsets []int64   // len n+1; arc range of vertex u is [offsets[u], offsets[u+1])
	targets []int32   // arc targets
	weights []float64 // arc weights
	wdeg    []float64 // cached weighted degrees
	m2      float64   // 2m = Σ wdeg
	loops   int64     // cached self-loop arc count
}

// NumVertices returns the number of vertices N.
func (g *Graph) NumVertices() int { return len(g.offsets) - 1 }

// NumArcs returns the number of stored arcs (2·edges + self-loops).
func (g *Graph) NumArcs() int64 { return g.offsets[len(g.offsets)-1] }

// NumEdges returns the number of undirected edges, counting self-loops once.
// The self-loop count is cached at build time, so this is O(1) — it is
// called from the partition census, stats printing, and tests on every run.
func (g *Graph) NumEdges() int64 {
	return (g.NumArcs()-g.loops)/2 + g.loops
}

// ArcRange returns the half-open arc index range [lo, hi) of vertex u.
func (g *Graph) ArcRange(u int) (lo, hi int64) {
	return g.offsets[u], g.offsets[u+1]
}

// ArcTarget returns the target vertex of arc a.
func (g *Graph) ArcTarget(a int64) int { return int(g.targets[a]) }

// ArcWeight returns the weight of arc a.
func (g *Graph) ArcWeight(a int64) float64 { return g.weights[a] }

// Neighbors returns the targets and weights of u's arcs. The returned slices
// alias the graph's storage and must not be modified.
func (g *Graph) Neighbors(u int) ([]int32, []float64) {
	lo, hi := g.offsets[u], g.offsets[u+1]
	return g.targets[lo:hi], g.weights[lo:hi]
}

// Degree returns the number of arcs of u (self-loops count once).
func (g *Graph) Degree(u int) int {
	return int(g.offsets[u+1] - g.offsets[u])
}

// WeightedDegree returns k(u), the sum of u's arc weights.
func (g *Graph) WeightedDegree(u int) float64 { return g.wdeg[u] }

// TotalWeight2 returns 2m = Σᵤ k(u).
func (g *Graph) TotalWeight2() float64 { return g.m2 }

// SelfLoopWeight returns the total weight of self-loop arcs at u.
func (g *Graph) SelfLoopWeight(u int) float64 {
	var s float64
	lo, hi := g.offsets[u], g.offsets[u+1]
	for a := lo; a < hi; a++ {
		if int(g.targets[a]) == u {
			s += g.weights[a]
		}
	}
	return s
}

// MaxDegree returns the maximum arc count over all vertices (0 for an empty
// graph).
func (g *Graph) MaxDegree() int {
	maxd := 0
	for u := 0; u < g.NumVertices(); u++ {
		if d := g.Degree(u); d > maxd {
			maxd = d
		}
	}
	return maxd
}

// DegreeHistogram returns a map degree → vertex count.
func (g *Graph) DegreeHistogram() map[int]int {
	h := make(map[int]int)
	for u := 0; u < g.NumVertices(); u++ {
		h[g.Degree(u)]++
	}
	return h
}

// Edges materializes the undirected edge list (u <= v once per edge).
func (g *Graph) Edges() []Edge {
	es := make([]Edge, 0, g.NumArcs()/2)
	for u := 0; u < g.NumVertices(); u++ {
		lo, hi := g.offsets[u], g.offsets[u+1]
		for a := lo; a < hi; a++ {
			v := int(g.targets[a])
			if u <= v {
				es = append(es, Edge{U: u, V: v, W: g.weights[a]})
			}
		}
	}
	return es
}

// Validate checks structural invariants: monotone offsets, in-range targets,
// symmetric arcs (every (u,v) arc with u != v has a matching (v,u) arc of
// equal weight), and non-negative weights. It is O(arcs · log(deg)).
func (g *Graph) Validate() error {
	n := g.NumVertices()
	for u := 0; u < n; u++ {
		if g.offsets[u] > g.offsets[u+1] {
			return fmt.Errorf("graph: offsets not monotone at vertex %d", u)
		}
	}
	for u := 0; u < n; u++ {
		lo, hi := g.offsets[u], g.offsets[u+1]
		for a := lo; a < hi; a++ {
			v := int(g.targets[a])
			if v < 0 || v >= n {
				return fmt.Errorf("graph: arc (%d,%d) target out of range [0,%d)", u, v, n)
			}
			if g.weights[a] < 0 {
				return fmt.Errorf("graph: arc (%d,%d) has negative weight %g", u, v, g.weights[a])
			}
			if v == u {
				continue
			}
			if !g.hasArc(v, u, g.weights[a]) {
				return fmt.Errorf("graph: arc (%d,%d) w=%g has no symmetric counterpart", u, v, g.weights[a])
			}
		}
	}
	return nil
}

// hasArc reports whether an arc (u,v) with weight w exists. Targets within a
// vertex are sorted by the builder, so binary search applies.
func (g *Graph) hasArc(u, v int, w float64) bool {
	lo, hi := g.offsets[u], g.offsets[u+1]
	ts := g.targets[lo:hi]
	i := sort.Search(len(ts), func(i int) bool { return int(ts[i]) >= v })
	for ; i < len(ts) && int(ts[i]) == v; i++ {
		if g.weights[lo+int64(i)] == w {
			return true
		}
	}
	return false
}

// FromEdges builds a graph with n vertices from an undirected edge list.
// Each input edge {u,v}, u != v, yields the two symmetric arcs; self-loops
// yield one arc. Duplicate edges are combined by summing weights. Endpoints
// must lie in [0, n). A weight of 0 on input is treated as 1 (unweighted
// convenience).
func FromEdges(n int, edges []Edge) (*Graph, error) {
	deg := make([]int64, n+1)
	for _, e := range edges {
		if e.U < 0 || e.U >= n || e.V < 0 || e.V >= n {
			return nil, fmt.Errorf("graph: edge (%d,%d) endpoint out of range [0,%d)", e.U, e.V, n)
		}
		deg[e.U+1]++
		if e.V != e.U {
			deg[e.V+1]++
		}
	}
	offsets := make([]int64, n+1)
	for i := 0; i < n; i++ {
		offsets[i+1] = offsets[i] + deg[i+1]
	}
	total := offsets[n]
	targets := make([]int32, total)
	weights := make([]float64, total)
	fill := make([]int64, n)
	put := func(u, v int, w float64) {
		a := offsets[u] + fill[u]
		targets[a] = int32(v)
		weights[a] = w
		fill[u]++
	}
	for _, e := range edges {
		w := e.W
		if w == 0 {
			w = 1
		}
		put(e.U, e.V, w)
		if e.V != e.U {
			put(e.V, e.U, w)
		}
	}
	g := &Graph{offsets: offsets, targets: targets, weights: weights}
	g.sortAndCombine()
	g.finish()
	return g, nil
}

// FromArcLists builds a graph directly from per-vertex arc lists. The caller
// asserts the lists are already symmetric (every (u,v) has its (v,u)); this
// is the fast path used by the distributed merge. Duplicate targets within a
// vertex are combined by summing weights.
func FromArcLists(n int, targets [][]int32, weights [][]float64) (*Graph, error) {
	if len(targets) != n || len(weights) != n {
		return nil, fmt.Errorf("graph: FromArcLists needs %d lists, got %d/%d", n, len(targets), len(weights))
	}
	offsets := make([]int64, n+1)
	for u := 0; u < n; u++ {
		if len(targets[u]) != len(weights[u]) {
			return nil, fmt.Errorf("graph: vertex %d targets/weights length mismatch", u)
		}
		offsets[u+1] = offsets[u] + int64(len(targets[u]))
	}
	flatT := make([]int32, offsets[n])
	flatW := make([]float64, offsets[n])
	for u := 0; u < n; u++ {
		copy(flatT[offsets[u]:], targets[u])
		copy(flatW[offsets[u]:], weights[u])
	}
	g := &Graph{offsets: offsets, targets: flatT, weights: flatW}
	g.sortAndCombine()
	g.finish()
	return g, nil
}

// sortAndCombine sorts each vertex's arcs by target and merges arcs with the
// same target by summing weights (parallel edges collapse to one arc).
func (g *Graph) sortAndCombine() {
	n := g.NumVertices()
	newOffsets := make([]int64, n+1)
	writeAt := int64(0)
	for u := 0; u < n; u++ {
		lo, hi := g.offsets[u], g.offsets[u+1]
		arcs := arcSorter{t: g.targets[lo:hi], w: g.weights[lo:hi]}
		// Stable: parallel edges must combine in input order on both
		// endpoints, or floating-point sums would break arc symmetry.
		sort.Stable(arcs)
		newOffsets[u] = writeAt
		// Combine duplicates in place, writing to the global write cursor.
		i := lo
		for i < hi {
			t := g.targets[i]
			w := g.weights[i]
			j := i + 1
			for j < hi && g.targets[j] == t {
				w += g.weights[j]
				j++
			}
			g.targets[writeAt] = t
			g.weights[writeAt] = w
			writeAt++
			i = j
		}
	}
	newOffsets[n] = writeAt
	g.offsets = newOffsets
	g.targets = g.targets[:writeAt]
	g.weights = g.weights[:writeAt]
}

// finish recomputes cached weighted degrees, 2m, and the self-loop count.
func (g *Graph) finish() {
	n := g.NumVertices()
	g.wdeg = make([]float64, n)
	g.m2 = 0
	g.loops = 0
	for u := 0; u < n; u++ {
		lo, hi := g.offsets[u], g.offsets[u+1]
		var k float64
		for a := lo; a < hi; a++ {
			k += g.weights[a]
			if int(g.targets[a]) == u {
				g.loops++
			}
		}
		g.wdeg[u] = k
		g.m2 += k
	}
}

// fromSortedCSR wraps already sorted-and-combined CSR arrays in a Graph.
// Callers assert monotone offsets and strictly increasing, in-range targets
// per vertex (the binary readers validate this while decoding).
func fromSortedCSR(offsets []int64, targets []int32, weights []float64) *Graph {
	g := &Graph{offsets: offsets, targets: targets, weights: weights}
	g.finish()
	return g
}

type arcSorter struct {
	t []int32
	w []float64
}

func (s arcSorter) Len() int           { return len(s.t) }
func (s arcSorter) Less(i, j int) bool { return s.t[i] < s.t[j] }
func (s arcSorter) Swap(i, j int) {
	s.t[i], s.t[j] = s.t[j], s.t[i]
	s.w[i], s.w[j] = s.w[j], s.w[i]
}
