package graph

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// triangle returns K3 with unit weights.
func triangle(t *testing.T) *Graph {
	t.Helper()
	g, err := FromEdges(3, []Edge{{0, 1, 1}, {1, 2, 1}, {0, 2, 1}})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestTriangleBasics(t *testing.T) {
	g := triangle(t)
	if got := g.NumVertices(); got != 3 {
		t.Errorf("NumVertices = %d, want 3", got)
	}
	if got := g.NumArcs(); got != 6 {
		t.Errorf("NumArcs = %d, want 6", got)
	}
	if got := g.NumEdges(); got != 3 {
		t.Errorf("NumEdges = %d, want 3", got)
	}
	if got := g.TotalWeight2(); got != 6 {
		t.Errorf("TotalWeight2 = %g, want 6", got)
	}
	for u := 0; u < 3; u++ {
		if got := g.Degree(u); got != 2 {
			t.Errorf("Degree(%d) = %d, want 2", u, got)
		}
		if got := g.WeightedDegree(u); got != 2 {
			t.Errorf("WeightedDegree(%d) = %g, want 2", u, got)
		}
	}
	if err := g.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestSelfLoopConventions(t *testing.T) {
	// One edge {0,1} w=2 plus a self-loop {1,1} w=3.
	g, err := FromEdges(2, []Edge{{0, 1, 2}, {1, 1, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if got := g.NumArcs(); got != 3 {
		t.Errorf("NumArcs = %d, want 3 (two arcs + one self arc)", got)
	}
	if got := g.NumEdges(); got != 2 {
		t.Errorf("NumEdges = %d, want 2", got)
	}
	if got := g.WeightedDegree(1); got != 5 {
		t.Errorf("WeightedDegree(1) = %g, want 5 (2 + 3)", got)
	}
	if got := g.SelfLoopWeight(1); got != 3 {
		t.Errorf("SelfLoopWeight(1) = %g, want 3", got)
	}
	if got := g.SelfLoopWeight(0); got != 0 {
		t.Errorf("SelfLoopWeight(0) = %g, want 0", got)
	}
	if got := g.TotalWeight2(); got != 7 {
		t.Errorf("TotalWeight2 = %g, want 7", got)
	}
	if err := g.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestDuplicateEdgesCombine(t *testing.T) {
	g, err := FromEdges(2, []Edge{{0, 1, 1}, {0, 1, 2}, {1, 0, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if got := g.NumArcs(); got != 2 {
		t.Errorf("NumArcs = %d, want 2 after combining", got)
	}
	if got := g.WeightedDegree(0); got != 7 {
		t.Errorf("WeightedDegree(0) = %g, want 7", got)
	}
	ts, ws := g.Neighbors(0)
	if len(ts) != 1 || ts[0] != 1 || ws[0] != 7 {
		t.Errorf("Neighbors(0) = %v %v, want [1] [7]", ts, ws)
	}
}

func TestZeroWeightMeansUnit(t *testing.T) {
	g, err := FromEdges(2, []Edge{{0, 1, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if got := g.WeightedDegree(0); got != 1 {
		t.Errorf("WeightedDegree(0) = %g, want 1", got)
	}
}

func TestOutOfRangeEndpoint(t *testing.T) {
	if _, err := FromEdges(2, []Edge{{0, 2, 1}}); err == nil {
		t.Error("expected error for out-of-range endpoint")
	}
	if _, err := FromEdges(2, []Edge{{-1, 0, 1}}); err == nil {
		t.Error("expected error for negative endpoint")
	}
}

func TestEmptyGraph(t *testing.T) {
	g, err := FromEdges(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 0 || g.NumArcs() != 0 || g.TotalWeight2() != 0 {
		t.Errorf("empty graph not empty: %d %d %g", g.NumVertices(), g.NumArcs(), g.TotalWeight2())
	}
	if g.MaxDegree() != 0 {
		t.Errorf("MaxDegree = %d, want 0", g.MaxDegree())
	}
}

func TestIsolatedVertices(t *testing.T) {
	g, err := FromEdges(5, []Edge{{0, 1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	for u := 2; u < 5; u++ {
		if g.Degree(u) != 0 {
			t.Errorf("Degree(%d) = %d, want 0", u, g.Degree(u))
		}
	}
	if err := g.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestNeighborsSorted(t *testing.T) {
	g, err := FromEdges(5, []Edge{{0, 4, 1}, {0, 2, 1}, {0, 1, 1}, {0, 3, 1}})
	if err != nil {
		t.Fatal(err)
	}
	ts, _ := g.Neighbors(0)
	for i := 1; i < len(ts); i++ {
		if ts[i-1] >= ts[i] {
			t.Fatalf("Neighbors(0) not sorted: %v", ts)
		}
	}
}

func TestEdgesRoundTrip(t *testing.T) {
	orig := []Edge{{0, 1, 2}, {1, 2, 3}, {2, 2, 4}}
	g, err := FromEdges(3, orig)
	if err != nil {
		t.Fatal(err)
	}
	back := g.Edges()
	g2, err := FromEdges(3, back)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumArcs() != g2.NumArcs() || g.TotalWeight2() != g2.TotalWeight2() {
		t.Errorf("round trip mismatch: arcs %d vs %d, 2m %g vs %g",
			g.NumArcs(), g2.NumArcs(), g.TotalWeight2(), g2.TotalWeight2())
	}
}

func TestFromArcListsMismatch(t *testing.T) {
	if _, err := FromArcLists(2, [][]int32{{1}}, [][]float64{{1}}); err == nil {
		t.Error("expected error for wrong list count")
	}
	if _, err := FromArcLists(1, [][]int32{{0, 0}}, [][]float64{{1}}); err == nil {
		t.Error("expected error for ragged lists")
	}
}

func TestDegreeHistogram(t *testing.T) {
	// star: center degree 3, leaves degree 1
	g, err := FromEdges(4, []Edge{{0, 1, 1}, {0, 2, 1}, {0, 3, 1}})
	if err != nil {
		t.Fatal(err)
	}
	h := g.DegreeHistogram()
	if h[3] != 1 || h[1] != 3 {
		t.Errorf("DegreeHistogram = %v, want {3:1, 1:3}", h)
	}
	if g.MaxDegree() != 3 {
		t.Errorf("MaxDegree = %d, want 3", g.MaxDegree())
	}
}

// randomEdges yields a deterministic random edge list.
func randomEdges(n, e int, seed int64) []Edge {
	rng := rand.New(rand.NewSource(seed))
	es := make([]Edge, e)
	for i := range es {
		es[i] = Edge{U: rng.Intn(n), V: rng.Intn(n), W: 1 + rng.Float64()}
	}
	return es
}

func TestQuickSymmetryInvariant(t *testing.T) {
	f := func(seed int64) bool {
		n := 30
		g, err := FromEdges(n, randomEdges(n, 120, seed))
		if err != nil {
			return false
		}
		return g.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDegreeSumEquals2m(t *testing.T) {
	f := func(seed int64) bool {
		n := 25
		g, err := FromEdges(n, randomEdges(n, 80, seed))
		if err != nil {
			return false
		}
		var sum float64
		for u := 0; u < n; u++ {
			sum += g.WeightedDegree(u)
		}
		return math.Abs(sum-g.TotalWeight2()) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestModularityKnownValues(t *testing.T) {
	// Two disjoint triangles: all-in-one-community-per-triangle gives
	// Q = 2 * (6/12 / ... ). For two K3 components, 2m = 12.
	// Each triangle community: in = 6 (3 edges × 2 arcs), tot = 6.
	// Q = 2 × (6/12 − (6/12)²) = 2 × (0.5 − 0.25) = 0.5.
	g, err := FromEdges(6, []Edge{
		{0, 1, 1}, {1, 2, 1}, {0, 2, 1},
		{3, 4, 1}, {4, 5, 1}, {3, 5, 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	m := Membership{0, 0, 0, 1, 1, 1}
	if got := Modularity(g, m); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("Modularity = %g, want 0.5", got)
	}
	// Everything in one community: Q = 1 − 1 = 0... in = 12, tot = 12:
	// Q = 12/12 − 1² = 0.
	all := Membership{7, 7, 7, 7, 7, 7}
	if got := Modularity(g, all); math.Abs(got) > 1e-12 {
		t.Errorf("Modularity(one community) = %g, want 0", got)
	}
	// Singletons: Q = −Σ (k/2m)² = −6×(2/12)² = −1/6.
	single := Membership{0, 1, 2, 3, 4, 5}
	if got := Modularity(g, single); math.Abs(got+1.0/6) > 1e-12 {
		t.Errorf("Modularity(singletons) = %g, want -1/6", got)
	}
}

func TestModularityBounds(t *testing.T) {
	f := func(seed int64) bool {
		n := 20
		g, err := FromEdges(n, randomEdges(n, 60, seed))
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed ^ 0x5555))
		m := make(Membership, n)
		for i := range m {
			m[i] = rng.Intn(5)
		}
		q := Modularity(g, m)
		return q >= -1.0-1e-9 && q <= 1.0+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestMembershipNormalize(t *testing.T) {
	m := Membership{42, 7, 42, 9, 7}
	k := m.Normalize()
	if k != 3 {
		t.Errorf("Normalize K = %d, want 3", k)
	}
	want := Membership{0, 1, 0, 2, 1}
	for i := range m {
		if m[i] != want[i] {
			t.Errorf("m = %v, want %v", m, want)
			break
		}
	}
	if m.NumCommunities() != 3 {
		t.Errorf("NumCommunities = %d, want 3", m.NumCommunities())
	}
	s := m.Sizes()
	if s[0] != 2 || s[1] != 2 || s[2] != 1 {
		t.Errorf("Sizes = %v", s)
	}
}

func TestMembershipClone(t *testing.T) {
	m := Membership{1, 2, 3}
	c := m.Clone()
	c[0] = 99
	if m[0] != 1 {
		t.Error("Clone shares storage")
	}
}

func TestModularityPanicsOnLengthMismatch(t *testing.T) {
	g := triangle(t)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Modularity(g, Membership{0})
}

func TestModularityResolution(t *testing.T) {
	g, err := FromEdges(6, []Edge{
		{0, 1, 1}, {1, 2, 1}, {0, 2, 1},
		{3, 4, 1}, {4, 5, 1}, {3, 5, 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	m := Membership{0, 0, 0, 1, 1, 1}
	// γ=1 matches plain Modularity.
	if ModularityResolution(g, m, 1) != Modularity(g, m) {
		t.Error("γ=1 differs from Modularity")
	}
	// Q_γ = Σ [in/2m − γ(tot/2m)²] = 2×(0.5 − γ·0.25).
	for _, gamma := range []float64{0.5, 2, 4} {
		want := 2 * (0.5 - gamma*0.25)
		if got := ModularityResolution(g, m, gamma); math.Abs(got-want) > 1e-12 {
			t.Errorf("γ=%g: Q = %g, want %g", gamma, got, want)
		}
	}
}

func TestConnectedComponents(t *testing.T) {
	// Two triangles plus an isolated vertex.
	g, err := FromEdges(7, []Edge{
		{0, 1, 1}, {1, 2, 1}, {0, 2, 1},
		{3, 4, 1}, {4, 5, 1}, {3, 5, 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	labels, k := ConnectedComponents(g)
	if k != 3 {
		t.Fatalf("components = %d, want 3", k)
	}
	if labels[0] != labels[1] || labels[1] != labels[2] {
		t.Error("triangle 1 split")
	}
	if labels[3] != labels[4] || labels[4] != labels[5] {
		t.Error("triangle 2 split")
	}
	if labels[6] == labels[0] || labels[6] == labels[3] {
		t.Error("isolated vertex merged")
	}
	if got := LargestComponent(g); got != 3 {
		t.Errorf("LargestComponent = %d, want 3", got)
	}
}

func TestConnectedComponentsEmpty(t *testing.T) {
	g, err := FromEdges(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	labels, k := ConnectedComponents(g)
	if k != 0 || len(labels) != 0 {
		t.Errorf("empty graph: k=%d labels=%v", k, labels)
	}
	if LargestComponent(g) != 0 {
		t.Error("LargestComponent of empty graph")
	}
}

func TestQuickComponentsPartitionVertices(t *testing.T) {
	f := func(seed int64) bool {
		g, err := FromEdges(30, randomEdges(30, 40, seed))
		if err != nil {
			return false
		}
		labels, k := ConnectedComponents(g)
		// dense labels
		for _, c := range labels {
			if c < 0 || c >= k {
				return false
			}
		}
		// endpoints of every arc share a component
		for u := 0; u < g.NumVertices(); u++ {
			lo, hi := g.ArcRange(u)
			for a := lo; a < hi; a++ {
				if labels[u] != labels[g.ArcTarget(a)] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
