package graph

// Parallel ingest: chunked edge-list parsing and a counting-sort CSR
// builder. Both are bit-identical to their serial counterparts
// (readEdgeList / FromEdges) at every worker count:
//
//   - The text input is split at newline boundaries, so every chunk parses
//     whole lines with the exact grammar of the serial scanner
//     (parseEdgeLine). Per-chunk edge slices concatenate in chunk order,
//     reproducing the serial edge sequence; the error on the smallest line
//     number wins, reproducing the serial reader's first error; the
//     "# vertices" declaration on the greatest line number wins, matching
//     the serial reader's last-writer-wins header handling.
//
//   - The CSR builder replaces the per-vertex sort.Stable of sortAndCombine
//     with a two-pass stable counting sort over the arc sequence (arcs in
//     edge order, (u,v) before (v,u)): pass A scatters by target, pass B by
//     source. An LSD radix sort with stable passes yields arcs grouped by
//     source, sorted by target, ties in original sequence order — exactly
//     the serial post-sort layout, so the duplicate-combine pass sums
//     weights in the identical order and every float in the result matches
//     the serial builder bit for bit. Scatter positions are integers fully
//     determined by the global arc sequence, so — unlike float reductions —
//     the chunk count here may depend on the worker count without breaking
//     determinism.
//
// Kernels never touch a communicator (ingest runs before any comm exists),
// keeping within the internal/par contract.

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"math"

	"repro/internal/par"
)

// parseChunkMin is the input size below which chunked parsing is not worth
// the split/merge overhead and the serial reader runs instead.
const parseChunkMin = 1 << 16

// histChunkCap caps the chunk count of the counting-sort passes: each chunk
// carries an n-sized histogram, so the scratch is histChunkCap·n ints at
// most no matter how many workers run.
const histChunkCap = 16

// ReadEdgeListParallel parses the WriteEdgeList / SNAP text format on up to
// workers goroutines and builds the CSR with the parallel counting-sort
// builder. workers <= 1 runs the serial reader; 0 picks a host-sized count.
// The result is bit-identical to ReadEdgeList for every worker count.
func ReadEdgeListParallel(r io.Reader, workers int) (*Graph, error) {
	if resolveWorkers(workers) <= 1 {
		// The serial reader scans the stream directly; skipping the buffer
		// makes workers=1 literally the serial path, not a copy of it.
		return ReadEdgeList(r)
	}
	data, err := readAllSized(r)
	if err != nil {
		return nil, err
	}
	return readEdgeListParallel(data, workers, math.MaxInt32)
}

// readAllSized buffers the whole input, sizing the buffer up front when the
// reader can report its length (files, bytes.Readers) so a large edge list
// is read in one allocation instead of io.ReadAll's doubling growth.
func readAllSized(r io.Reader) ([]byte, error) {
	var buf bytes.Buffer
	if size, ok := inputSize(r); ok && size > 0 && size < math.MaxInt32 {
		buf.Grow(int(size) + 1) // +1 so ReadFrom's probe for EOF fits too
	}
	if _, err := buf.ReadFrom(r); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// readEdgeListParallel bounds the vertex-ID space at maxV, mirroring
// readEdgeList (the fuzz harness lowers the bound).
func readEdgeListParallel(data []byte, workers, maxV int) (*Graph, error) {
	pool := par.NewPool(resolveWorkers(workers))
	defer pool.Close()
	return readEdgeListPool(data, pool, maxV)
}

// resolveWorkers maps the cmd-level -workers convention onto a pool size:
// 0 = host-sized (ingest is a host-global phase, so worldSize is 1).
func resolveWorkers(workers int) int {
	if workers == 0 {
		return par.DefaultWorkers(1)
	}
	return workers
}

// chunkParse is one chunk's parse result.
type chunkParse struct {
	edges    []Edge
	maxID    int
	declLine int // line number of the chunk's last "# vertices" line, 0 if none
	declN    int
	errLine  int // line number of the chunk's first error, 0 if none
	err      error
}

func readEdgeListPool(data []byte, pool *par.Pool, maxV int) (*Graph, error) {
	if pool == nil || len(data) < parseChunkMin {
		return readEdgeList(bytes.NewReader(data), maxV)
	}
	return parseEdgeListChunked(data, pool, maxV)
}

// parseEdgeListChunked is the chunked parser body; the fuzz harness calls
// it directly so small inputs still exercise the parallel path.
func parseEdgeListChunked(data []byte, pool *par.Pool, maxV int) (*Graph, error) {
	bounds := splitLines(data, pool.Workers()*4)
	nc := len(bounds) - 1

	// Line numbers: each chunk starts right after a newline, so the chunk's
	// first line number is 1 + the newlines before it.
	nlines := make([]int, nc)
	pool.ParFor(nc, func(c, _ int) {
		nlines[c] = bytes.Count(data[bounds[c]:bounds[c+1]], []byte{'\n'})
	})
	startLine := make([]int, nc)
	line := 1
	for c := 0; c < nc; c++ {
		startLine[c] = line
		line += nlines[c]
	}

	res := make([]chunkParse, nc)
	pool.ParFor(nc, func(c, _ int) {
		res[c] = parseChunk(data[bounds[c]:bounds[c+1]], startLine[c], maxV)
	})

	// Merge: smallest-line error wins (the serial reader's first error),
	// greatest-line declaration wins (its last), edges concatenate in chunk
	// order (its sequence).
	var firstErr error
	firstErrLine := 0
	declLine, declN := 0, -1
	maxID := -1
	total := 0
	for c := range res {
		r := &res[c]
		if r.err != nil && (firstErr == nil || r.errLine < firstErrLine) {
			firstErr, firstErrLine = r.err, r.errLine
		}
		if r.declLine > declLine {
			declLine, declN = r.declLine, r.declN
		}
		if r.maxID > maxID {
			maxID = r.maxID
		}
		total += len(r.edges)
	}
	if firstErr != nil {
		return nil, firstErr
	}
	edges := make([]Edge, total)
	at := make([]int, nc)
	pos := 0
	for c := range res {
		at[c] = pos
		pos += len(res[c].edges)
	}
	pool.ParFor(nc, func(c, _ int) {
		copy(edges[at[c]:], res[c].edges)
	})
	n := declN
	if declLine == 0 {
		n = maxID + 1
	}
	return fromEdgesPool(n, edges, pool)
}

// splitLines returns nc+1 chunk boundaries over data, each boundary placed
// just after a newline so no chunk starts mid-line. Chunks may be empty when
// lines are long.
func splitLines(data []byte, want int) []int {
	if want < 1 {
		want = 1
	}
	if want > par.MaxChunks {
		want = par.MaxChunks
	}
	bounds := make([]int, want+1)
	bounds[want] = len(data)
	for c := 1; c < want; c++ {
		pos := c * len(data) / want
		if pos <= bounds[c-1] {
			bounds[c] = bounds[c-1]
			continue
		}
		if data[pos-1] == '\n' {
			bounds[c] = pos
			continue
		}
		for pos < len(data) && data[pos] != '\n' {
			pos++
		}
		if pos < len(data) {
			pos++
		}
		bounds[c] = pos
	}
	return bounds
}

// parseChunk parses whole lines from b (which starts at a line boundary)
// with the shared grammar. lineNo is the 1-based number of b's first line.
func parseChunk(b []byte, lineNo, maxV int) chunkParse {
	cp := chunkParse{maxID: -1}
	if est := len(b) / 12; est > 0 {
		cp.edges = make([]Edge, 0, est)
	}
	for len(b) > 0 {
		nl := bytes.IndexByte(b, '\n')
		var ln []byte
		if nl >= 0 {
			ln, b = b[:nl], b[nl+1:]
		} else {
			ln, b = b, nil
		}
		// The serial scanner's 1 MiB buffer fills before EOF registers, so
		// any line of maxLineLen bytes or more fails there with ErrTooLong.
		if len(ln) >= maxLineLen {
			cp.errLine, cp.err = lineNo, bufio.ErrTooLong
			return cp
		}
		e, kind, declared, err := parseEdgeLine(ln, lineNo, maxV)
		if err != nil {
			cp.errLine, cp.err = lineNo, err
			return cp
		}
		switch kind {
		case lineDecl:
			cp.declLine, cp.declN = lineNo, declared
		case lineEdge:
			if e.U > cp.maxID {
				cp.maxID = e.U
			}
			if e.V > cp.maxID {
				cp.maxID = e.V
			}
			cp.edges = append(cp.edges, e)
		}
		lineNo++
	}
	return cp
}

// FromEdgesParallel builds the same graph as FromEdges on up to workers
// goroutines (0 = host-sized, <= 1 = the serial builder). The output is
// bit-identical to FromEdges at every worker count.
func FromEdgesParallel(n int, edges []Edge, workers int) (*Graph, error) {
	pool := par.NewPool(resolveWorkers(workers))
	defer pool.Close()
	return fromEdgesPool(n, edges, pool)
}

// fromEdgesPool is the counting-sort CSR builder. See the package comment
// at the top of this file for the determinism argument.
func fromEdgesPool(n int, edges []Edge, pool *par.Pool) (*Graph, error) {
	if pool == nil || len(edges) < par.Grain {
		return FromEdges(n, edges)
	}
	nc := pool.Workers()
	if nc > histChunkCap {
		nc = histChunkCap
	}
	ne := len(edges)

	// Pass A histogram: validate endpoints and count arcs by target per
	// chunk. By symmetry the same totals serve as per-source degrees (arc
	// targets and arc sources are the same multiset), so one histogram feeds
	// both the CSR offsets and pass A's scatter positions. A chunk stops at
	// its first bad edge; the globally smallest index wins, reproducing the
	// serial builder's first error.
	hist := make([]int64, nc*n)
	bad := make([]int, nc)
	pool.ParFor(nc, func(c, _ int) {
		h := hist[c*n : (c+1)*n]
		lo, hi := par.ChunkSpan(ne, nc, c)
		first := -1
		for i := lo; i < hi; i++ {
			e := edges[i]
			if e.U < 0 || e.U >= n || e.V < 0 || e.V >= n {
				first = i
				break
			}
			h[e.V]++ // arc (U,V) targets V
			if e.V != e.U {
				h[e.U]++ // arc (V,U) targets U
			}
		}
		bad[c] = first
	})
	firstBad := -1
	for _, b := range bad {
		if b >= 0 && (firstBad < 0 || b < firstBad) {
			firstBad = b
		}
	}
	if firstBad >= 0 {
		e := edges[firstBad]
		return nil, fmt.Errorf("graph: edge (%d,%d) endpoint out of range [0,%d)", e.U, e.V, n)
	}

	// One fused serial sweep produces the CSR offsets (prefix over per-vertex
	// totals) and rewrites hist into exclusive scatter positions (chunk-major
	// within each target) — the layout a stable parallel scatter needs.
	offsets := make([]int64, n+1)
	var run int64
	for v := 0; v < n; v++ {
		offsets[v] = run
		for c := 0; c < nc; c++ {
			hist[c*n+v], run = run, run+hist[c*n+v]
		}
	}
	offsets[n] = run
	arcs := run

	// Pass A: stable scatter of the arc sequence by target.
	aSrc := make([]int32, arcs)
	aTgt := make([]int32, arcs)
	aW := make([]float64, arcs)
	pool.ParFor(nc, func(c, _ int) {
		pos := hist[c*n : (c+1)*n]
		lo, hi := par.ChunkSpan(ne, nc, c)
		for i := lo; i < hi; i++ {
			e := edges[i]
			w := e.W
			if w == 0 {
				w = 1
			}
			p := pos[e.V]
			pos[e.V] = p + 1
			aSrc[p] = int32(e.U)
			aTgt[p] = int32(e.V)
			aW[p] = w
			if e.V != e.U {
				p = pos[e.U]
				pos[e.U] = p + 1
				aSrc[p] = int32(e.V)
				aTgt[p] = int32(e.U)
				aW[p] = w
			}
		}
	})

	// Pass B: stable scatter by source. Stability over the pass-A order
	// leaves each vertex's arcs sorted by target with duplicates in input
	// order — the exact layout sortAndCombine's stable sort produces.
	targets := make([]int32, arcs)
	weights := make([]float64, arcs)
	for i := range hist {
		hist[i] = 0
	}
	na := int(arcs)
	pool.ParFor(nc, func(c, _ int) {
		h := hist[c*n : (c+1)*n]
		lo, hi := par.ChunkSpan(na, nc, c)
		for i := lo; i < hi; i++ {
			h[aSrc[i]]++
		}
	})
	histToOffsets(hist, offsets, nc, n, pool)
	pool.ParFor(nc, func(c, _ int) {
		pos := hist[c*n : (c+1)*n]
		lo, hi := par.ChunkSpan(na, nc, c)
		for i := lo; i < hi; i++ {
			s := aSrc[i]
			p := pos[s]
			pos[s] = p + 1
			targets[p] = aTgt[i]
			weights[p] = aW[i]
		}
	})

	// Combine duplicates per vertex, summing weights left to right as the
	// serial combine does. Most graphs have none, in which case the pass-B
	// arrays are already final.
	ncV := par.NumChunks(n)
	newDeg := make([]int64, n)
	pool.ParFor(ncV, func(cv, _ int) {
		lo, hi := par.ChunkSpan(n, ncV, cv)
		for u := lo; u < hi; u++ {
			var d int64
			for a, ahi := offsets[u], offsets[u+1]; a < ahi; d++ {
				t := targets[a]
				for a++; a < ahi && targets[a] == t; a++ {
				}
			}
			newDeg[u] = d
		}
	})
	newOffsets := make([]int64, n+1)
	for u := 0; u < n; u++ {
		newOffsets[u+1] = newOffsets[u] + newDeg[u]
	}
	g := &Graph{offsets: newOffsets, targets: targets, weights: weights}
	if newOffsets[n] != arcs {
		nt := make([]int32, newOffsets[n])
		nw := make([]float64, newOffsets[n])
		pool.ParFor(ncV, func(cv, _ int) {
			lo, hi := par.ChunkSpan(n, ncV, cv)
			for u := lo; u < hi; u++ {
				wr := newOffsets[u]
				for a, ahi := offsets[u], offsets[u+1]; a < ahi; {
					t := targets[a]
					w := weights[a]
					for a++; a < ahi && targets[a] == t; a++ {
						w += weights[a]
					}
					nt[wr] = t
					nw[wr] = w
					wr++
				}
			}
		})
		g.targets, g.weights = nt, nw
	}
	finishPool(g, pool)
	return g, nil
}

// histToOffsets converts per-chunk histograms into exclusive scatter
// offsets in place: the position of chunk c's first item with key v is
// base[v] + Σ_{c'<c} hist[c'][v]. Parallel over vertex ranges.
func histToOffsets(hist, base []int64, nc, n int, pool *par.Pool) {
	ncV := par.NumChunks(n)
	pool.ParFor(ncV, func(cv, _ int) {
		lo, hi := par.ChunkSpan(n, ncV, cv)
		for v := lo; v < hi; v++ {
			run := base[v]
			for c := 0; c < nc; c++ {
				hist[c*n+v], run = run, run+hist[c*n+v]
			}
		}
	})
}

// finishPool computes the wdeg/m2/loops caches with parallel per-vertex
// scans. Each k(u) accumulates over u's own arcs in arc order (the serial
// chain), and m2 sums wdeg serially in ascending u — both float orders are
// exactly finish()'s, so the caches are bit-identical to the serial build.
func finishPool(g *Graph, pool *par.Pool) {
	n := g.NumVertices()
	g.wdeg = make([]float64, n)
	ncV := par.NumChunks(n)
	loopCnt := make([]int64, ncV)
	pool.ParFor(ncV, func(cv, _ int) {
		lo, hi := par.ChunkSpan(n, ncV, cv)
		var loops int64
		for u := lo; u < hi; u++ {
			var k float64
			for a, ahi := g.offsets[u], g.offsets[u+1]; a < ahi; a++ {
				k += g.weights[a]
				if int(g.targets[a]) == u {
					loops++
				}
			}
			g.wdeg[u] = k
		}
		loopCnt[cv] = loops
	})
	g.m2 = 0
	g.loops = 0
	for _, l := range loopCnt {
		g.loops += l
	}
	for u := 0; u < n; u++ {
		g.m2 += g.wdeg[u]
	}
}
