package graph_test

// Ingest benchmarks for the parallel pipeline (tracked in BENCH_5.json).
// The scale-14 R-MAT input matches the committed serial seed baseline in
// scripts/bench_seed_pr5.json: the acceptance bar is >= 2x at 8 workers
// with workers=1 within 10% of the old serial path. This file is an
// external test package so it can use internal/gen without an import cycle.

import (
	"bytes"
	"sync"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

// benchGraph is the shared scale-14 R-MAT fixture (16384 vertices,
// ~260k edges); generating it once keeps per-benchmark setup cheap.
var benchGraph = sync.OnceValue(func() *graph.Graph {
	g, err := gen.RMAT(gen.Graph500RMAT(14, 5))
	if err != nil {
		panic(err)
	}
	return g
})

func benchText(b *testing.B) []byte {
	b.Helper()
	var buf bytes.Buffer
	if err := graph.WriteEdgeList(&buf, benchGraph()); err != nil {
		b.Fatal(err)
	}
	return buf.Bytes()
}

func BenchmarkIngestEdgeList(b *testing.B) {
	text := benchText(b)
	b.Run("serial", func(b *testing.B) {
		b.SetBytes(int64(len(text)))
		for i := 0; i < b.N; i++ {
			if _, err := graph.ReadEdgeList(bytes.NewReader(text)); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(wLabel(w), func(b *testing.B) {
			b.SetBytes(int64(len(text)))
			for i := 0; i < b.N; i++ {
				if _, err := graph.ReadEdgeListParallel(bytes.NewReader(text), w); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkIngestSharded(b *testing.B) {
	g := benchGraph()
	var flat, sharded bytes.Buffer
	if err := graph.WriteBinary(&flat, g); err != nil {
		b.Fatal(err)
	}
	if err := graph.WriteBinarySharded(&sharded, g, 16); err != nil {
		b.Fatal(err)
	}
	b.Run("flat", func(b *testing.B) {
		b.SetBytes(int64(flat.Len()))
		for i := 0; i < b.N; i++ {
			if _, err := graph.ReadBinary(bytes.NewReader(flat.Bytes())); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(wLabel(w), func(b *testing.B) {
			b.SetBytes(int64(sharded.Len()))
			for i := 0; i < b.N; i++ {
				if _, err := graph.ReadBinarySharded(bytes.NewReader(sharded.Bytes()), w); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func wLabel(w int) string {
	return "w=" + string(rune('0'+w))
}
