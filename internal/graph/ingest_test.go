package graph

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"
)

// ingestWorkerCounts is the matrix the determinism tests sweep; 1 exercises
// the serial fallback, 3 an uneven split, 8 the bench configuration.
var ingestWorkerCounts = []int{1, 2, 3, 8}

// graphsIdentical reports the first bit-level difference between two graphs,
// or "" when they match exactly — offsets, targets, weights, and the
// wdeg/m2/loops caches all compared bitwise.
func graphsIdentical(a, b *Graph) string {
	if a.NumVertices() != b.NumVertices() {
		return fmt.Sprintf("n: %d vs %d", a.NumVertices(), b.NumVertices())
	}
	for u := 0; u <= a.NumVertices(); u++ {
		if a.offsets[u] != b.offsets[u] {
			return fmt.Sprintf("offsets[%d]: %d vs %d", u, a.offsets[u], b.offsets[u])
		}
	}
	for i := range a.targets {
		if a.targets[i] != b.targets[i] {
			return fmt.Sprintf("targets[%d]: %d vs %d", i, a.targets[i], b.targets[i])
		}
		if math.Float64bits(a.weights[i]) != math.Float64bits(b.weights[i]) {
			return fmt.Sprintf("weights[%d]: %x vs %x", i, a.weights[i], b.weights[i])
		}
	}
	for u := range a.wdeg {
		if math.Float64bits(a.wdeg[u]) != math.Float64bits(b.wdeg[u]) {
			return fmt.Sprintf("wdeg[%d]: %x vs %x", u, a.wdeg[u], b.wdeg[u])
		}
	}
	if math.Float64bits(a.m2) != math.Float64bits(b.m2) {
		return fmt.Sprintf("m2: %x vs %x", a.m2, b.m2)
	}
	if a.loops != b.loops {
		return fmt.Sprintf("loops: %d vs %d", a.loops, b.loops)
	}
	return ""
}

// messyEdges produces a messy edge list: duplicates (to exercise the
// combine pass on both endpoints), self-loops, zero weights (the w=0→1
// convenience), and irregular float weights.
func messyEdges(rng *rand.Rand, n, m int) []Edge {
	edges := make([]Edge, m)
	for i := range edges {
		e := Edge{U: rng.Intn(n), V: rng.Intn(n)}
		switch rng.Intn(5) {
		case 0: // duplicate an earlier edge so weights sum
			if i > 0 {
				e = edges[rng.Intn(i)]
			}
		case 1:
			e.V = e.U // self-loop
		}
		switch rng.Intn(3) {
		case 0:
			e.W = 0
		case 1:
			e.W = rng.Float64() * 10
		default:
			e.W = 1
		}
		edges[i] = e
	}
	return edges
}

func TestFromEdgesParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for _, tc := range []struct{ n, m int }{{50, 2000}, {1000, 20000}, {4096, 60000}} {
		edges := messyEdges(rng, tc.n, tc.m)
		want, err := FromEdges(tc.n, edges)
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range ingestWorkerCounts {
			got, err := FromEdgesParallel(tc.n, edges, w)
			if err != nil {
				t.Fatalf("n=%d workers=%d: %v", tc.n, w, err)
			}
			if diff := graphsIdentical(want, got); diff != "" {
				t.Fatalf("n=%d m=%d workers=%d: %s", tc.n, tc.m, w, diff)
			}
		}
	}
}

func TestFromEdgesParallelBadEndpoint(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	edges := messyEdges(rng, 100, 5000)
	edges[1234].V = 100 // first out-of-range edge
	edges[4000].U = -7  // later one must not win
	_, serr := FromEdges(100, edges)
	if serr == nil {
		t.Fatal("serial: expected error")
	}
	for _, w := range ingestWorkerCounts {
		_, perr := FromEdgesParallel(100, edges, w)
		if perr == nil || perr.Error() != serr.Error() {
			t.Fatalf("workers=%d: error %q, want %q", w, perr, serr)
		}
	}
}

// bigEdgeListText renders a text edge list large enough to engage the
// chunked parser (> parseChunkMin) with comments and blank lines sprinkled
// through it.
func bigEdgeListText(rng *rand.Rand, n, m int) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "# vertices %d\n", n)
	for i := 0; i < m; i++ {
		if i%97 == 0 {
			sb.WriteString("# a comment line\n\n")
		}
		switch i % 3 {
		case 0:
			fmt.Fprintf(&sb, "%d %d\n", rng.Intn(n), rng.Intn(n))
		case 1:
			fmt.Fprintf(&sb, "%d\t%d  %g\n", rng.Intn(n), rng.Intn(n), rng.Float64()*4)
		default:
			fmt.Fprintf(&sb, "%d %d %d\n", rng.Intn(n), rng.Intn(n), 1+rng.Intn(9))
		}
	}
	return sb.String()
}

func TestReadEdgeListParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	text := bigEdgeListText(rng, 3000, 40000)
	if len(text) < parseChunkMin {
		t.Fatalf("fixture too small to engage chunked parsing: %d bytes", len(text))
	}
	want, err := ReadEdgeList(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range ingestWorkerCounts {
		got, err := ReadEdgeListParallel(strings.NewReader(text), w)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if diff := graphsIdentical(want, got); diff != "" {
			t.Fatalf("workers=%d: %s", w, diff)
		}
	}
}

func TestReadEdgeListParallelErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	base := bigEdgeListText(rng, 500, 20000)
	lines := strings.Split(base, "\n")
	for name, mutate := range map[string]func([]string){
		"early bad token":  func(ls []string) { ls[50] = "7 oops" },
		"late bad token":   func(ls []string) { ls[len(ls)-10] = "nope 3" },
		"two errors":       func(ls []string) { ls[len(ls)-10] = "x 1"; ls[40] = "0 1 w" },
		"negative id":      func(ls []string) { ls[300] = "-4 2" },
		"missing field":    func(ls []string) { ls[1000] = "42" },
		"late declaration": func(ls []string) { ls[len(ls)-5] = "# vertices 9000" },
	} {
		ls := append([]string(nil), lines...)
		mutate(ls)
		text := strings.Join(ls, "\n")
		want, serr := ReadEdgeList(strings.NewReader(text))
		for _, w := range ingestWorkerCounts {
			got, perr := ReadEdgeListParallel(strings.NewReader(text), w)
			if (serr == nil) != (perr == nil) {
				t.Fatalf("%s workers=%d: serial err %v, parallel err %v", name, w, serr, perr)
			}
			if serr != nil {
				if serr.Error() != perr.Error() {
					t.Fatalf("%s workers=%d: error %q, want %q", name, w, perr, serr)
				}
				continue
			}
			if diff := graphsIdentical(want, got); diff != "" {
				t.Fatalf("%s workers=%d: %s", name, w, diff)
			}
		}
	}
}

func TestNumEdgesCached(t *testing.T) {
	g, err := FromEdges(6, []Edge{{0, 1, 1}, {1, 1, 2}, {2, 3, 1}, {4, 4, 1}, {0, 1, 3}})
	if err != nil {
		t.Fatal(err)
	}
	// 0-1 combined counts once, two self-loops, 2-3: 4 edges, 2 of them loops.
	if got := g.NumEdges(); got != 4 {
		t.Errorf("NumEdges = %d, want 4", got)
	}
	if g.loops != 2 {
		t.Errorf("loops = %d, want 2", g.loops)
	}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got := g2.NumEdges(); got != 4 {
		t.Errorf("decoded NumEdges = %d, want 4", got)
	}
}
