package graph

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"repro/internal/wire"
)

// WriteEdgeList writes the graph as a text edge list: one "u v w" line per
// undirected edge (u <= v), preceded by a "# vertices N" header line.
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# vertices %d\n", g.NumVertices()); err != nil {
		return err
	}
	for u := 0; u < g.NumVertices(); u++ {
		lo, hi := g.ArcRange(u)
		for a := lo; a < hi; a++ {
			v := g.ArcTarget(a)
			if u <= v {
				if _, err := fmt.Fprintf(bw, "%d %d %g\n", u, v, g.ArcWeight(a)); err != nil {
					return err
				}
			}
		}
	}
	return bw.Flush()
}

// ReadEdgeList parses the text format written by WriteEdgeList. It also
// accepts headerless SNAP-style lists ("u v" or "u v w" per line, '#'
// comments); in that case the vertex count is 1 + the maximum endpoint.
func ReadEdgeList(r io.Reader) (*Graph, error) {
	return readEdgeList(r, math.MaxInt32)
}

// readEdgeList bounds the vertex-ID space at maxV. Arc targets are stored
// as int32, so IDs beyond that are corrupt by definition — and because a
// headerless list sizes the graph as 1 + max endpoint, a single hostile
// line like "99999999999999 0" would otherwise demand a maxID-sized
// allocation before any validation. The fuzz harness lowers the bound
// further to keep per-input allocations small.
func readEdgeList(r io.Reader, maxV int) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	n := -1
	var edges []Edge
	maxID := -1
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			var declared int
			if _, err := fmt.Sscanf(line, "# vertices %d", &declared); err == nil {
				if declared > maxV {
					return nil, fmt.Errorf("graph: line %d: declared vertex count %d exceeds limit %d", lineNo, declared, maxV)
				}
				n = declared
			}
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("graph: line %d: need at least 2 fields, got %q", lineNo, line)
		}
		u, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad source %q: %v", lineNo, fields[0], err)
		}
		v, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad target %q: %v", lineNo, fields[1], err)
		}
		if u < 0 || v < 0 || u >= maxV || v >= maxV {
			return nil, fmt.Errorf("graph: line %d: endpoint (%d,%d) outside [0,%d)", lineNo, u, v, maxV)
		}
		w := 1.0
		if len(fields) >= 3 {
			w, err = strconv.ParseFloat(fields[2], 64)
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: bad weight %q: %v", lineNo, fields[2], err)
			}
		}
		if u > maxID {
			maxID = u
		}
		if v > maxID {
			maxID = v
		}
		edges = append(edges, Edge{U: u, V: v, W: w})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if n < 0 {
		n = maxID + 1
	}
	return FromEdges(n, edges)
}

const binaryMagic = uint32(0x477250A1) // "GrP" + version 1

// WriteBinary writes the graph in a compact binary format (wire encoding).
func WriteBinary(w io.Writer, g *Graph) error {
	buf := wire.NewBuffer(int(g.NumArcs())*3 + 64)
	buf.PutU32(binaryMagic)
	buf.PutUvarint(uint64(g.NumVertices()))
	buf.PutUvarint(uint64(g.NumArcs()))
	for u := 0; u < g.NumVertices(); u++ {
		lo, hi := g.ArcRange(u)
		buf.PutUvarint(uint64(hi - lo))
		prev := int64(0)
		for a := lo; a < hi; a++ {
			t := int64(g.ArcTarget(a))
			buf.PutVarint(t - prev) // delta-coded sorted targets
			prev = t
			buf.PutF64(g.ArcWeight(a))
		}
	}
	_, err := w.Write(buf.Bytes())
	return err
}

// ReadBinary parses the format written by WriteBinary.
func ReadBinary(r io.Reader) (*Graph, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	rd := wire.NewReader(data)
	if m := rd.U32(); m != binaryMagic {
		return nil, fmt.Errorf("graph: bad magic %#x (want %#x)", m, binaryMagic)
	}
	n := int(rd.Uvarint())
	arcs := int64(rd.Uvarint())
	if err := rd.Err(); err != nil {
		return nil, err
	}
	if n < 0 || arcs < 0 {
		return nil, fmt.Errorf("graph: corrupt header (n=%d arcs=%d)", n, arcs)
	}
	// Every vertex contributes at least a one-byte degree and every arc at
	// least 9 encoded bytes (1 varint + 8 weight), so a header demanding
	// more than the input can possibly hold is corrupt. Checking before
	// allocating keeps hostile headers from requesting huge blocks.
	if int64(n) > int64(rd.Remaining()) || arcs > int64(rd.Remaining())/9 {
		return nil, fmt.Errorf("graph: corrupt header (n=%d arcs=%d for %d payload bytes)", n, arcs, rd.Remaining())
	}
	targets := make([][]int32, n)
	weights := make([][]float64, n)
	var seen int64
	for u := 0; u < n; u++ {
		d := int(rd.Uvarint())
		if rd.Err() != nil {
			return nil, rd.Err()
		}
		if d < 0 || int64(d) > int64(rd.Remaining())/9 {
			return nil, fmt.Errorf("graph: vertex %d: corrupt degree %d for %d remaining bytes", u, d, rd.Remaining())
		}
		ts := make([]int32, d)
		ws := make([]float64, d)
		prev := int64(0)
		for i := 0; i < d; i++ {
			t := prev + rd.Varint()
			prev = t
			ts[i] = int32(t)
			ws[i] = rd.F64()
		}
		targets[u] = ts
		weights[u] = ws
		seen += int64(d)
	}
	if err := rd.Err(); err != nil {
		return nil, err
	}
	if seen != arcs {
		return nil, fmt.Errorf("graph: arc count mismatch: header %d, body %d", arcs, seen)
	}
	return FromArcLists(n, targets, weights)
}
