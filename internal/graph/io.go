package graph

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"math"
	"strconv"
	"unicode/utf8"

	"repro/internal/wire"
)

// WriteEdgeList writes the graph as a text edge list: one "u v w" line per
// undirected edge (u <= v), preceded by a "# vertices N" header line.
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# vertices %d\n", g.NumVertices()); err != nil {
		return err
	}
	for u := 0; u < g.NumVertices(); u++ {
		lo, hi := g.ArcRange(u)
		for a := lo; a < hi; a++ {
			v := g.ArcTarget(a)
			if u <= v {
				if _, err := fmt.Fprintf(bw, "%d %d %g\n", u, v, g.ArcWeight(a)); err != nil {
					return err
				}
			}
		}
	}
	return bw.Flush()
}

// ReadEdgeList parses the text format written by WriteEdgeList. It also
// accepts headerless SNAP-style lists ("u v" or "u v w" per line, '#'
// comments); in that case the vertex count is 1 + the maximum endpoint.
func ReadEdgeList(r io.Reader) (*Graph, error) {
	return readEdgeList(r, math.MaxInt32)
}

// readEdgeList bounds the vertex-ID space at maxV. Arc targets are stored
// as int32, so IDs beyond that are corrupt by definition — and because a
// headerless list sizes the graph as 1 + max endpoint, a single hostile
// line like "99999999999999 0" would otherwise demand a maxID-sized
// allocation before any validation. The fuzz harness lowers the bound
// further to keep per-input allocations small.
func readEdgeList(r io.Reader, maxV int) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, maxLineLen), maxLineLen)
	n := -1
	var edges []Edge
	maxID := -1
	lineNo := 0
	for sc.Scan() {
		lineNo++
		e, kind, declared, err := parseEdgeLine(sc.Bytes(), lineNo, maxV)
		if err != nil {
			return nil, err
		}
		switch kind {
		case lineDecl:
			n = declared
		case lineEdge:
			if e.U > maxID {
				maxID = e.U
			}
			if e.V > maxID {
				maxID = e.V
			}
			edges = append(edges, e)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if n < 0 {
		n = maxID + 1
	}
	return FromEdges(n, edges)
}

// maxLineLen is the scanner buffer of the serial reader; the chunked reader
// enforces the same bound so both paths reject identical inputs.
const maxLineLen = 1 << 20

// Line kinds produced by parseEdgeLine.
const (
	lineBlank = iota // blank line or comment
	lineDecl         // "# vertices N" declaration
	lineEdge         // an edge
)

// parseEdgeLine parses one line of the edge-list grammar. It is the single
// grammar shared by the serial and chunked parallel readers, so the two
// paths accept and reject byte-identical inputs with identical error text.
func parseEdgeLine(line []byte, lineNo, maxV int) (e Edge, kind int, declared int, err error) {
	line = bytes.TrimSpace(line)
	if len(line) == 0 {
		return Edge{}, lineBlank, 0, nil
	}
	if line[0] == '#' {
		var d int
		if _, serr := fmt.Sscanf(string(line), "# vertices %d", &d); serr == nil {
			if d > maxV {
				return Edge{}, lineBlank, 0, fmt.Errorf("graph: line %d: declared vertex count %d exceeds limit %d", lineNo, d, maxV)
			}
			return Edge{}, lineDecl, d, nil
		}
		return Edge{}, lineBlank, 0, nil
	}
	f, nf := splitFields(line)
	if nf < 2 {
		return Edge{}, lineBlank, 0, fmt.Errorf("graph: line %d: need at least 2 fields, got %q", lineNo, line)
	}
	u, aerr := atoiField(f[0])
	if aerr != nil {
		return Edge{}, lineBlank, 0, fmt.Errorf("graph: line %d: bad source %q: %v", lineNo, f[0], aerr)
	}
	v, aerr := atoiField(f[1])
	if aerr != nil {
		return Edge{}, lineBlank, 0, fmt.Errorf("graph: line %d: bad target %q: %v", lineNo, f[1], aerr)
	}
	if u < 0 || v < 0 || u >= maxV || v >= maxV {
		return Edge{}, lineBlank, 0, fmt.Errorf("graph: line %d: endpoint (%d,%d) outside [0,%d)", lineNo, u, v, maxV)
	}
	w := 1.0
	if nf >= 3 {
		w, aerr = parseWeight(f[2])
		if aerr != nil {
			return Edge{}, lineBlank, 0, fmt.Errorf("graph: line %d: bad weight %q: %v", lineNo, f[2], aerr)
		}
	}
	return Edge{U: u, V: v, W: w}, lineEdge, 0, nil
}

func asciiSpace(c byte) bool {
	return c == ' ' || c == '\t' || c == '\n' || c == '\v' || c == '\f' || c == '\r'
}

// splitFields extracts the first three whitespace-separated fields without
// allocating. Lines containing non-ASCII bytes take the general path so
// field boundaries match strings.Fields exactly (Unicode spaces split too).
func splitFields(line []byte) (f [3][]byte, nf int) {
	i := 0
	for i < len(line) {
		c := line[i]
		if c >= utf8.RuneSelf {
			return splitFieldsSlow(line)
		}
		if asciiSpace(c) {
			i++
			continue
		}
		j := i
		for j < len(line) {
			c = line[j]
			if c >= utf8.RuneSelf {
				return splitFieldsSlow(line)
			}
			if asciiSpace(c) {
				break
			}
			j++
		}
		if nf < 3 {
			f[nf] = line[i:j]
		}
		nf++
		i = j
	}
	if nf > 3 {
		nf = 3
	}
	return f, nf
}

func splitFieldsSlow(line []byte) (f [3][]byte, nf int) {
	all := bytes.Fields(line)
	nf = len(all)
	if nf > 3 {
		nf = 3
	}
	copy(f[:], all[:nf])
	return f, nf
}

// atoiField is strconv.Atoi with an allocation-free fast path for plain
// decimal digits, the overwhelmingly common case in edge lists. The fast
// path only accepts inputs whose result provably equals strconv.Atoi's.
func atoiField(b []byte) (int, error) {
	if n := len(b); n > 0 && n <= 18 { // ≤ 18 digits cannot overflow int64
		v := 0
		ok := true
		for _, c := range b {
			if c < '0' || c > '9' {
				ok = false
				break
			}
			v = v*10 + int(c-'0')
		}
		if ok {
			return v, nil
		}
	}
	return strconv.Atoi(string(b))
}

// parseWeight is strconv.ParseFloat with a fast path for plain small
// integers, which %g emits for unweighted graphs. ≤ 15 digits stay below
// 2^53, so the integer conversion is exact and equals ParseFloat's result.
func parseWeight(b []byte) (float64, error) {
	if n := len(b); n > 0 && n <= 15 {
		v := 0
		ok := true
		for _, c := range b {
			if c < '0' || c > '9' {
				ok = false
				break
			}
			v = v*10 + int(c-'0')
		}
		if ok {
			return float64(v), nil
		}
	}
	return strconv.ParseFloat(string(b), 64)
}

const binaryMagic = uint32(0x477250A1) // "GrP" + version 1

// WriteBinary writes the graph in a compact binary format (wire encoding).
func WriteBinary(w io.Writer, g *Graph) error {
	buf := wire.NewBuffer(int(g.NumArcs())*3 + 64)
	buf.PutU32(binaryMagic)
	buf.PutUvarint(uint64(g.NumVertices()))
	buf.PutUvarint(uint64(g.NumArcs()))
	for u := 0; u < g.NumVertices(); u++ {
		lo, hi := g.ArcRange(u)
		buf.PutUvarint(uint64(hi - lo))
		prev := int64(0)
		for a := lo; a < hi; a++ {
			t := int64(g.ArcTarget(a))
			buf.PutVarint(t - prev) // delta-coded sorted targets
			prev = t
			buf.PutF64(g.ArcWeight(a))
		}
	}
	_, err := w.Write(buf.Bytes())
	return err
}

// maxHeaderLen bounds the encoded flat-format header: 4 magic bytes plus
// two uvarints of at most 10 bytes each.
const maxHeaderLen = 24

// inputSize reports how many bytes remain in r when r can seek (files,
// bytes.Readers); ok=false for plain streams.
func inputSize(r io.Reader) (int64, bool) {
	s, ok := r.(io.Seeker)
	if !ok {
		return 0, false
	}
	cur, err := s.Seek(0, io.SeekCurrent)
	if err != nil {
		return 0, false
	}
	end, err := s.Seek(0, io.SeekEnd)
	if err != nil {
		return 0, false
	}
	if _, err := s.Seek(cur, io.SeekStart); err != nil {
		return 0, false
	}
	return end - cur, true
}

// ReadBinary parses the format written by WriteBinary. When the input can
// report its size (a file or bytes.Reader), the header is validated against
// that size before the payload is buffered, so a hostile header on a large
// input fails after one Peek instead of after a full read. The CSR arrays
// are decoded directly from the read buffer — no per-vertex intermediate
// lists and no second flattening copy. The writer always emits sorted,
// combined adjacency, so the decoder checks targets are strictly increasing
// and in range, then skips the sort/combine pass entirely.
func ReadBinary(r io.Reader) (*Graph, error) {
	size, sized := inputSize(r)
	br := bufio.NewReaderSize(r, 1<<16)
	if sized {
		hdr, _ := br.Peek(maxHeaderLen) // short reads fall through to the full decode
		hr := wire.NewReader(hdr)
		m := hr.U32()
		n := int(hr.Uvarint())
		arcs := int64(hr.Uvarint())
		if hr.Err() == nil {
			if m != binaryMagic {
				return nil, fmt.Errorf("graph: bad magic %#x (want %#x)", m, binaryMagic)
			}
			payload := size - int64(len(hdr)-hr.Remaining())
			if n < 0 || arcs < 0 || int64(n) > payload || arcs > payload/9 {
				return nil, fmt.Errorf("graph: corrupt header (n=%d arcs=%d for %d payload bytes)", n, arcs, payload)
			}
		}
	}
	data, err := io.ReadAll(br)
	if err != nil {
		return nil, err
	}
	return decodeBinary(data)
}

// decodeBinary parses a fully buffered flat binary graph.
func decodeBinary(data []byte) (*Graph, error) {
	rd := wire.NewReader(data)
	if m := rd.U32(); m != binaryMagic {
		return nil, fmt.Errorf("graph: bad magic %#x (want %#x)", m, binaryMagic)
	}
	n := int(rd.Uvarint())
	arcs := int64(rd.Uvarint())
	if err := rd.Err(); err != nil {
		return nil, err
	}
	if n < 0 || arcs < 0 {
		return nil, fmt.Errorf("graph: corrupt header (n=%d arcs=%d)", n, arcs)
	}
	// Every vertex contributes at least a one-byte degree and every arc at
	// least 9 encoded bytes (1 varint + 8 weight), so a header demanding
	// more than the input can possibly hold is corrupt. Checking before
	// allocating keeps hostile headers from requesting huge blocks.
	if int64(n) > int64(rd.Remaining()) || arcs > int64(rd.Remaining())/9 {
		return nil, fmt.Errorf("graph: corrupt header (n=%d arcs=%d for %d payload bytes)", n, arcs, rd.Remaining())
	}
	offsets := make([]int64, n+1)
	targets := make([]int32, arcs)
	weights := make([]float64, arcs)
	var seen int64
	for u := 0; u < n; u++ {
		d := int(rd.Uvarint())
		if rd.Err() != nil {
			return nil, rd.Err()
		}
		if d < 0 || int64(d) > int64(rd.Remaining())/9 {
			return nil, fmt.Errorf("graph: vertex %d: corrupt degree %d for %d remaining bytes", u, d, rd.Remaining())
		}
		if seen+int64(d) > arcs {
			return nil, fmt.Errorf("graph: arc count mismatch: header %d, body %d", arcs, seen+int64(d))
		}
		prev := int64(0)
		for i := 0; i < d; i++ {
			t := prev + rd.Varint()
			if t < 0 || t >= int64(n) || (i > 0 && t <= prev) {
				if err := rd.Err(); err != nil {
					return nil, err
				}
				return nil, fmt.Errorf("graph: vertex %d: target %d out of order or range [0,%d)", u, t, n)
			}
			prev = t
			targets[seen] = int32(t)
			weights[seen] = rd.F64()
			seen++
		}
		offsets[u+1] = seen
	}
	if err := rd.Err(); err != nil {
		return nil, err
	}
	if seen != arcs {
		return nil, fmt.Errorf("graph: arc count mismatch: header %d, body %d", arcs, seen)
	}
	return fromSortedCSR(offsets, targets, weights), nil
}
