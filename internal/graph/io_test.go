package graph

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func graphsEqual(a, b *Graph) bool {
	if a.NumVertices() != b.NumVertices() || a.NumArcs() != b.NumArcs() {
		return false
	}
	for u := 0; u < a.NumVertices(); u++ {
		at, aw := a.Neighbors(u)
		bt, bw := b.Neighbors(u)
		if len(at) != len(bt) {
			return false
		}
		for i := range at {
			if at[i] != bt[i] || aw[i] != bw[i] {
				return false
			}
		}
	}
	return true
}

func TestEdgeListRoundTrip(t *testing.T) {
	g, err := FromEdges(5, []Edge{{0, 1, 2.5}, {1, 2, 1}, {3, 3, 4}, {2, 4, 0.25}})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !graphsEqual(g, g2) {
		t.Error("edge list round trip mismatch")
	}
}

func TestReadEdgeListHeaderless(t *testing.T) {
	in := "# a comment\n0 1\n1 2 2.5\n\n2 0\n"
	g, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 3 {
		t.Errorf("NumVertices = %d, want 3", g.NumVertices())
	}
	if g.WeightedDegree(1) != 3.5 {
		t.Errorf("WeightedDegree(1) = %g, want 3.5", g.WeightedDegree(1))
	}
}

func TestReadEdgeListPreservesIsolatedTail(t *testing.T) {
	// header declares more vertices than appear in edges
	in := "# vertices 10\n0 1 1\n"
	g, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 10 {
		t.Errorf("NumVertices = %d, want 10", g.NumVertices())
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	for _, bad := range []string{"0\n", "x y\n", "0 y\n", "0 1 z\n"} {
		if _, err := ReadEdgeList(strings.NewReader(bad)); err == nil {
			t.Errorf("input %q: expected error", bad)
		}
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	edges := make([]Edge, 500)
	for i := range edges {
		edges[i] = Edge{U: rng.Intn(100), V: rng.Intn(100), W: rng.Float64() * 10}
	}
	g, err := FromEdges(100, edges)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !graphsEqual(g, g2) {
		t.Error("binary round trip mismatch")
	}
	if g2.TotalWeight2() != g.TotalWeight2() {
		t.Errorf("2m mismatch: %g vs %g", g2.TotalWeight2(), g.TotalWeight2())
	}
}

func TestBinaryBadMagic(t *testing.T) {
	if _, err := ReadBinary(bytes.NewReader([]byte{1, 2, 3, 4, 5})); err == nil {
		t.Error("expected error for bad magic")
	}
}

func TestBinaryTruncated(t *testing.T) {
	g, err := FromEdges(10, []Edge{{0, 1, 1}, {2, 3, 1}, {4, 5, 1}})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{4, 6, len(full) - 1} {
		if cut >= len(full) {
			continue
		}
		if _, err := ReadBinary(bytes.NewReader(full[:cut])); err == nil {
			t.Errorf("truncated at %d: expected error", cut)
		}
	}
}
