package graph

import "sort"

// Membership assigns every vertex a community label. Labels are arbitrary
// non-negative integers; Normalize produces dense labels 0..K-1.
type Membership []int

// Clone returns a copy of the membership.
func (m Membership) Clone() Membership {
	c := make(Membership, len(m))
	copy(c, m)
	return c
}

// Normalize relabels communities to dense IDs 0..K-1 in order of first
// appearance and returns the number of communities K.
func (m Membership) Normalize() int {
	remap := make(map[int]int)
	for i, c := range m {
		id, ok := remap[c]
		if !ok {
			id = len(remap)
			remap[c] = id
		}
		m[i] = id
	}
	return len(remap)
}

// NumCommunities returns the number of distinct labels.
func (m Membership) NumCommunities() int {
	seen := make(map[int]struct{})
	for _, c := range m {
		seen[c] = struct{}{}
	}
	return len(seen)
}

// Sizes returns a map label → number of member vertices.
func (m Membership) Sizes() map[int]int {
	s := make(map[int]int)
	for _, c := range m {
		s[c]++
	}
	return s
}

// Modularity computes Newman's modularity Q of the membership on g:
//
//	Q = Σ_c [ in(c)/2m − (tot(c)/2m)² ]
//
// where in(c) sums the weights of arcs internal to c (self-loop arcs once,
// each internal undirected edge via its two arcs) and tot(c) = Σ_{u∈c} k(u).
func Modularity(g *Graph, m Membership) float64 {
	return ModularityResolution(g, m, 1)
}

// ModularityResolution computes the generalized (Reichardt–Bornholdt)
// modularity with resolution parameter γ:
//
//	Q_γ = Σ_c [ in(c)/2m − γ·(tot(c)/2m)² ]
//
// γ = 1 is standard modularity; γ > 1 favors more, smaller communities and
// γ < 1 fewer, larger ones.
func ModularityResolution(g *Graph, m Membership, gamma float64) float64 {
	if len(m) != g.NumVertices() {
		panic("graph: membership length does not match vertex count")
	}
	m2 := g.TotalWeight2()
	if m2 == 0 {
		return 0
	}
	in := make(map[int]float64)
	tot := make(map[int]float64)
	for u := 0; u < g.NumVertices(); u++ {
		cu := m[u]
		tot[cu] += g.WeightedDegree(u)
		lo, hi := g.ArcRange(u)
		for a := lo; a < hi; a++ {
			if m[g.ArcTarget(a)] == cu {
				in[cu] += g.ArcWeight(a)
			}
		}
	}
	// Sum in sorted label order so the floating-point result is
	// deterministic across runs (map iteration order is randomized).
	labels := make([]int, 0, len(tot))
	for c := range tot {
		labels = append(labels, c)
	}
	sort.Ints(labels)
	var q float64
	for _, c := range labels {
		t := tot[c]
		q += in[c]/m2 - gamma*(t/m2)*(t/m2)
	}
	return q
}
