package graph

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// METIS graph format support. The format's header line is "n m [fmt]",
// where n is the vertex count, m the undirected edge count, and fmt a
// 3-digit flag string whose last digit enables edge weights ("001") —
// vertex sizes and weights (the first two digits) are not supported.
// Line i (1-based, after the header) lists vertex i's neighbors as
// 1-based indices, optionally interleaved with edge weights. '%' starts a
// comment line.

// WriteMETIS writes g in METIS format with edge weights (fmt "001").
// Self-loops are not representable in METIS and are rejected.
func WriteMETIS(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	n := g.NumVertices()
	var loops int64
	for u := 0; u < n; u++ {
		if g.SelfLoopWeight(u) != 0 {
			return fmt.Errorf("graph: METIS cannot represent self-loop at vertex %d", u)
		}
	}
	m := (g.NumArcs() - loops) / 2
	if _, err := fmt.Fprintf(bw, "%d %d 001\n", n, m); err != nil {
		return err
	}
	for u := 0; u < n; u++ {
		ts, ws := g.Neighbors(u)
		for i := range ts {
			if i > 0 {
				if err := bw.WriteByte(' '); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(bw, "%d %g", ts[i]+1, ws[i]); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadMETIS parses a METIS graph file (fmt "000" unweighted or "001"
// edge-weighted).
func ReadMETIS(r io.Reader) (*Graph, error) {
	return readMETIS(r, math.MaxInt32)
}

// readMETIS bounds the header's vertex count at maxV, for the same reason
// readEdgeList bounds endpoint IDs: the count sizes the adjacency tables
// before any adjacency line is validated, so a hostile header would
// otherwise demand an arbitrary allocation. The fuzz harness lowers the
// bound to keep per-input allocations small.
func readMETIS(r io.Reader, maxV int) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)

	// Header.
	var n int
	var m int64
	weighted := false
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 || len(fields) > 4 {
			return nil, fmt.Errorf("graph: METIS header needs 2-4 fields, got %q", line)
		}
		var err error
		n, err = strconv.Atoi(fields[0])
		if err != nil || n < 0 {
			return nil, fmt.Errorf("graph: METIS bad vertex count %q", fields[0])
		}
		if n > maxV {
			return nil, fmt.Errorf("graph: METIS vertex count %d exceeds limit %d", n, maxV)
		}
		m, err = strconv.ParseInt(fields[1], 10, 64)
		if err != nil || m < 0 {
			return nil, fmt.Errorf("graph: METIS bad edge count %q", fields[1])
		}
		if len(fields) >= 3 {
			switch fields[2] {
			case "0", "00", "000":
			case "1", "01", "001":
				weighted = true
			default:
				return nil, fmt.Errorf("graph: METIS fmt %q not supported (only edge weights)", fields[2])
			}
		}
		break
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}

	targets := make([][]int32, n)
	weights := make([][]float64, n)
	u := 0
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if strings.HasPrefix(line, "%") {
			continue
		}
		if u >= n {
			if line == "" {
				continue
			}
			return nil, fmt.Errorf("graph: METIS has more than %d adjacency lines", n)
		}
		fields := strings.Fields(line)
		step := 1
		if weighted {
			step = 2
			if len(fields)%2 != 0 {
				return nil, fmt.Errorf("graph: METIS vertex %d: odd field count with edge weights", u+1)
			}
		}
		for i := 0; i < len(fields); i += step {
			v, err := strconv.Atoi(fields[i])
			if err != nil || v < 1 || v > n {
				return nil, fmt.Errorf("graph: METIS vertex %d: bad neighbor %q", u+1, fields[i])
			}
			w := 1.0
			if weighted {
				w, err = strconv.ParseFloat(fields[i+1], 64)
				if err != nil {
					return nil, fmt.Errorf("graph: METIS vertex %d: bad weight %q", u+1, fields[i+1])
				}
			}
			targets[u] = append(targets[u], int32(v-1))
			weights[u] = append(weights[u], w)
		}
		u++
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if u != n {
		return nil, fmt.Errorf("graph: METIS has %d adjacency lines, want %d", u, n)
	}
	g, err := FromArcLists(n, targets, weights)
	if err != nil {
		return nil, err
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("graph: METIS adjacency not symmetric: %w", err)
	}
	if g.NumEdges() != m {
		return nil, fmt.Errorf("graph: METIS header declares %d edges, body has %d", m, g.NumEdges())
	}
	return g, nil
}
