package graph

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func TestMETISRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var edges []Edge
	for i := 0; i < 200; i++ {
		u, v := rng.Intn(50), rng.Intn(50)
		if u == v {
			continue // METIS cannot hold self-loops
		}
		edges = append(edges, Edge{U: u, V: v, W: float64(1 + rng.Intn(5))})
	}
	g, err := FromEdges(50, edges)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteMETIS(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadMETIS(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !graphsEqual(g, g2) {
		t.Error("METIS round trip mismatch")
	}
}

func TestMETISUnweighted(t *testing.T) {
	// Classic METIS example: a path 1-2-3 with an extra edge 1-3.
	in := "% a comment\n3 3\n2 3\n1 3\n1 2\n"
	g, err := ReadMETIS(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 3 || g.NumEdges() != 3 {
		t.Errorf("got %d vertices %d edges", g.NumVertices(), g.NumEdges())
	}
	if g.WeightedDegree(0) != 2 {
		t.Errorf("WeightedDegree(0) = %g", g.WeightedDegree(0))
	}
}

func TestMETISErrors(t *testing.T) {
	cases := []string{
		"x 3\n",               // bad vertex count
		"2 1 011\n2\n1\n",     // unsupported fmt
		"2 1\n2\n",            // missing adjacency line
		"2 1\n2\n1\n1 2\n",    // too many adjacency lines
		"2 1\n3\n1\n",         // neighbor out of range
		"2 1 001\n2\n1 1\n",   // odd field count under weights (line 1)
		"2 5\n2\n1\n",         // edge count mismatch
		"2 1\n2\n2\n",         // asymmetric adjacency
		"2 1 001\n2 x\n1 x\n", // bad weight
	}
	for _, in := range cases {
		if _, err := ReadMETIS(strings.NewReader(in)); err == nil {
			t.Errorf("input %q: expected error", in)
		}
	}
}

func TestMETISRejectsSelfLoops(t *testing.T) {
	g, err := FromEdges(2, []Edge{{U: 0, V: 1, W: 1}, {U: 1, V: 1, W: 2}})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteMETIS(&buf, g); err == nil {
		t.Error("expected error for self-loop")
	}
}

func TestMETISEmptyGraph(t *testing.T) {
	g, err := ReadMETIS(strings.NewReader("0 0\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 0 {
		t.Errorf("NumVertices = %d", g.NumVertices())
	}
}
