//go:build linux

package graph

// Read-only memory mapping for the out-of-core pipeline. A MappedFile
// backs a Sharded with the page cache directly: decoders take in-place
// byte views through Range (the byteRanger fast path in payloadBytes), so
// shard payloads are never copied into the Go heap, and the kernel evicts
// cold shard pages under memory pressure instead of the process OOMing.

import (
	"fmt"
	"io"
	"os"
	"syscall"
)

// MappedFile is a read-only memory-mapped file. ReadAt copies out of the
// mapping; Range returns views in place.
type MappedFile struct {
	f    *os.File
	data []byte
}

// OpenMmap maps path read-only. Empty files map to an empty view.
func OpenMmap(path string) (*MappedFile, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	size := st.Size()
	if size == 0 {
		return &MappedFile{f: f}, nil
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("graph: mmap %s: %v", path, err)
	}
	return &MappedFile{f: f, data: data}, nil
}

// Size returns the mapped length in bytes.
func (m *MappedFile) Size() int64 { return int64(len(m.data)) }

// ReadAt implements io.ReaderAt by copying out of the mapping.
func (m *MappedFile) ReadAt(p []byte, off int64) (int, error) {
	if off < 0 || off > int64(len(m.data)) {
		return 0, fmt.Errorf("graph: mmap: offset %d outside [0,%d]", off, len(m.data))
	}
	n := copy(p, m.data[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

// Range returns the mapped bytes [off, off+n) without copying. The view is
// invalid after Close.
func (m *MappedFile) Range(off, n int64) ([]byte, error) {
	if off < 0 || n < 0 || off+n > int64(len(m.data)) {
		return nil, fmt.Errorf("graph: mmap: range [%d,%d) outside [0,%d]", off, off+n, len(m.data))
	}
	return m.data[off : off+n : off+n], nil
}

// Close unmaps and closes the file. Views returned by Range become
// invalid.
func (m *MappedFile) Close() error {
	var err error
	if m.data != nil {
		err = syscall.Munmap(m.data)
		m.data = nil
	}
	if cerr := m.f.Close(); err == nil {
		err = cerr
	}
	return err
}
