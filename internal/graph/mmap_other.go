//go:build !linux

package graph

// Fallback MappedFile for platforms without the mmap path: plain pread
// through the open file. Range allocates and copies, so decoding works
// identically, just without the zero-copy win.

import (
	"fmt"
	"os"
)

// MappedFile is a read-only file with the same surface as the linux
// memory-mapped version.
type MappedFile struct {
	f    *os.File
	size int64
}

// OpenMmap opens path for positioned reads.
func OpenMmap(path string) (*MappedFile, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	return &MappedFile{f: f, size: st.Size()}, nil
}

// Size returns the file length in bytes.
func (m *MappedFile) Size() int64 { return m.size }

// ReadAt implements io.ReaderAt.
func (m *MappedFile) ReadAt(p []byte, off int64) (int, error) {
	return m.f.ReadAt(p, off)
}

// Range reads [off, off+n) into a fresh buffer.
func (m *MappedFile) Range(off, n int64) ([]byte, error) {
	if off < 0 || n < 0 || off+n > m.size {
		return nil, fmt.Errorf("graph: range [%d,%d) outside [0,%d]", off, off+n, m.size)
	}
	b := make([]byte, n)
	if _, err := m.f.ReadAt(b, off); err != nil {
		return nil, err
	}
	return b, nil
}

// Close closes the file.
func (m *MappedFile) Close() error { return m.f.Close() }
