package graph

// Sharded binary graph format. The flat WriteBinary format forces a reader
// to buffer and decode the whole file on one goroutine; the sharded layout
// prepends a fixed-width index so loaders can decode shards concurrently
// and fetch only the byte ranges covering the vertices they need.
//
// v1 layout (little-endian):
//
//	u32 magic 0x477250A2
//	u64 n, u64 arcs, u32 shards
//	shards × { u64 vhi, u64 payloadLen, u64 arcCount }   — the index
//	shards × payload
//
// Shard s covers vertices [vhi[s-1], vhi[s]) (vhi[-1] = 0); its v1 payload
// is exactly WriteBinary's per-vertex encoding for those vertices (uvarint
// degree, then per arc a delta-coded varint target and a fixed f64 weight).
// Shard boundaries are chosen to balance arcs, not vertices, so hub-heavy
// shards do not serialize the parallel decode.
//
// v2 adds weight compression for the (dominant) case of few distinct arc
// weights — unit-weight R-MAT and test graphs pay 8 of their ~9-10 bytes
// per arc for a weight that is always 1.0:
//
//	u32 magic 0x477250A3
//	u64 n, u64 arcs, u32 shards
//	u32 flags (reserved, 0), u32 dictLen (1..255)
//	dictLen × f64                                         — weight dictionary
//	shards × { u64 vhi, u64 payloadLen, u64 arcCount }    — the index
//	shards × payload
//
// A v2 per-vertex record is: uvarint degree d, then d delta-coded varint
// targets, then the d weights as (uvarint dictIndex, uvarint runLength)
// pairs whose run lengths sum to d. Writers fall back to v1 when a graph
// has more than 255 distinct weights; readers negotiate the version by
// magic, so every .sbin consumer handles both.
//
// Every index field is validated against the actual input size before any
// payload-sized allocation: Σ payloadLen must equal the bytes present, Σ
// arcCount must equal the header arc count, vhi must be monotone and end at
// n, and each shard must satisfy payloadLen ≥ (vhi−vlo) + minArcBytes ·
// arcCount (a degree byte per vertex; ≥ 9 bytes per v1 arc, ≥ 1 byte per
// v2 arc). Hostile headers therefore fail in the index check instead of
// demanding huge buffers.

import (
	"bytes"
	"fmt"
	"io"
	"sort"

	"repro/internal/par"
	"repro/internal/wire"
)

const (
	shardedMagic   = uint32(0x477250A2) // "GrP" + sharded, raw f64 weights
	shardedMagicV2 = uint32(0x477250A3) // "GrP" + sharded, dictionary weights
)

// shardedHeaderLen is the fixed v1 prefix: magic + n + arcs + shard count.
const shardedHeaderLen = 4 + 8 + 8 + 4

// shardedHeaderLenV2 is the fixed v2 prefix: v1 fields + flags + dictLen
// (the dictionary entries follow, before the index).
const shardedHeaderLenV2 = shardedHeaderLen + 4 + 4

// shardIndexEntryLen is one index record: vhi + payloadLen + arcCount.
const shardIndexEntryLen = 8 + 8 + 8

// maxWeightDict caps the v2 weight dictionary; writers fall back to the v1
// raw-f64 encoding beyond it.
const maxWeightDict = 255

// WriteBinarySharded writes g in the sharded binary format (v1: raw f64
// weights). Shard payloads are encoded concurrently (the byte output is
// identical at every worker count: each shard's encoding depends only on
// its own vertices, and shards are concatenated in index order).
func WriteBinarySharded(w io.Writer, g *Graph, shards int) error {
	return writeSharded(w, g, shards, nil)
}

// WriteBinaryShardedV2 writes g in the compressed sharded format: targets
// delta+varint coded as in v1, weights as runs of indexes into a per-file
// dictionary. Unit-weight graphs shrink from ~9-10 bytes/arc to ~1-2. A
// graph with more than 255 distinct weights is written as v1 instead — the
// caller gets whichever format is smaller to decode, negotiated by magic.
func WriteBinaryShardedV2(w io.Writer, g *Graph, shards int) error {
	dict, dictIdx := weightDict(g.weights)
	if dict == nil {
		return writeSharded(w, g, shards, nil)
	}
	return writeSharded(w, g, shards, &v2Writer{dict: dict, dictIdx: dictIdx})
}

// v2Writer carries the weight dictionary of an in-flight v2 write.
type v2Writer struct {
	dict    []float64
	dictIdx map[float64]int
}

// weightDict collects the distinct values of ws in first-appearance order.
// It returns (nil, nil) when they exceed maxWeightDict, which sends the
// writer down the v1 path. An arc-free graph gets the one-entry dictionary
// {1} so dictLen ≥ 1 always holds.
func weightDict(ws []float64) ([]float64, map[float64]int) {
	dict := make([]float64, 0, 16)
	idx := make(map[float64]int, 16)
	for _, w := range ws {
		if _, ok := idx[w]; ok {
			continue
		}
		if len(dict) == maxWeightDict {
			return nil, nil
		}
		idx[w] = len(dict)
		dict = append(dict, w)
	}
	if len(dict) == 0 {
		dict = append(dict, 1)
		idx[1] = 0
	}
	return dict, idx
}

// putVertexV2 appends one vertex's v2 record: uvarint degree, delta-coded
// varint targets, then (dictIndex, runLength) weight runs. ws == nil means
// every arc takes dictionary index 0 (the streaming generator's case).
func putVertexV2(buf *wire.Buffer, ts []int32, ws []float64, dictIdx map[float64]int) {
	buf.PutUvarint(uint64(len(ts)))
	prev := int64(0)
	for _, t := range ts {
		buf.PutVarint(int64(t) - prev)
		prev = int64(t)
	}
	if len(ts) == 0 {
		return
	}
	if ws == nil {
		buf.PutUvarint(0)
		buf.PutUvarint(uint64(len(ts)))
		return
	}
	runIdx, runLen := dictIdx[ws[0]], 1
	for _, w := range ws[1:] {
		if idx := dictIdx[w]; idx != runIdx {
			buf.PutUvarint(uint64(runIdx))
			buf.PutUvarint(uint64(runLen))
			runIdx, runLen = idx, 0
		}
		runLen++
	}
	buf.PutUvarint(uint64(runIdx))
	buf.PutUvarint(uint64(runLen))
}

// shardBoundaries picks shard upper bounds that balance arcs: shard s ends
// at the first vertex whose arc offset reaches (s+1)·arcs/shards.
func shardBoundaries(offsets []int64, n int, arcs int64, shards int) []int {
	if shards < 1 {
		shards = 1
	}
	if shards > n && n > 0 {
		shards = n
	}
	vhi := make([]int, shards)
	for s := 0; s < shards-1; s++ {
		target := int64(s+1) * arcs / int64(shards)
		vhi[s] = sort.Search(n, func(v int) bool { return offsets[v] >= target })
	}
	vhi[shards-1] = n
	return vhi
}

func writeSharded(w io.Writer, g *Graph, shards int, v2 *v2Writer) error {
	n := g.NumVertices()
	arcs := g.NumArcs()
	vhi := shardBoundaries(g.offsets, n, arcs, shards)
	shards = len(vhi)

	bufs := make([]*wire.Buffer, shards)
	pool := par.NewPool(par.DefaultWorkers(1))
	defer pool.Close()
	pool.ParFor(shards, func(s, _ int) {
		lo := 0
		if s > 0 {
			lo = vhi[s-1]
		}
		hi := vhi[s]
		shardArcs := int(g.offsets[hi] - g.offsets[lo])
		if v2 != nil {
			buf := wire.NewBuffer(shardArcs*3 + (hi - lo))
			for u := lo; u < hi; u++ {
				alo, ahi := g.offsets[u], g.offsets[u+1]
				putVertexV2(buf, g.targets[alo:ahi], g.weights[alo:ahi], v2.dictIdx)
			}
			bufs[s] = buf
			return
		}
		buf := wire.NewBuffer(shardArcs*10 + (hi - lo))
		for u := lo; u < hi; u++ {
			alo, ahi := g.offsets[u], g.offsets[u+1]
			buf.PutUvarint(uint64(ahi - alo))
			prev := int64(0)
			for a := alo; a < ahi; a++ {
				t := int64(g.targets[a])
				buf.PutVarint(t - prev)
				prev = t
				buf.PutF64(g.weights[a])
			}
		}
		bufs[s] = buf
	})

	hdr := wire.NewBuffer(shardedHeaderLenV2 + shards*shardIndexEntryLen + 8*maxWeightDict)
	if v2 != nil {
		hdr.PutU32(shardedMagicV2)
	} else {
		hdr.PutU32(shardedMagic)
	}
	hdr.PutU64(uint64(n))
	hdr.PutU64(uint64(arcs))
	hdr.PutU32(uint32(shards))
	if v2 != nil {
		hdr.PutU32(0) // flags, reserved
		hdr.PutU32(uint32(len(v2.dict)))
		for _, wv := range v2.dict {
			hdr.PutF64(wv)
		}
	}
	for s := 0; s < shards; s++ {
		lo := 0
		if s > 0 {
			lo = vhi[s-1]
		}
		hdr.PutU64(uint64(vhi[s]))
		hdr.PutU64(uint64(bufs[s].Len()))
		hdr.PutU64(uint64(g.offsets[vhi[s]] - g.offsets[lo]))
	}
	if _, err := w.Write(hdr.Bytes()); err != nil {
		return err
	}
	for s := 0; s < shards; s++ {
		if _, err := w.Write(bufs[s].Bytes()); err != nil {
			return err
		}
	}
	return nil
}

// Sharded is an opened sharded graph: the validated index plus the source
// reader. Payloads are fetched on demand by ReadAll / ReadWindow /
// ReadVertexRange.
type Sharded struct {
	r          io.ReaderAt
	ver        int       // 1 = raw f64 weights, 2 = dictionary runs
	dict       []float64 // v2 weight dictionary (nil for v1)
	n          int
	arcs       int64
	vhi        []int   // shard s covers vertices [vhi[s-1], vhi[s])
	payloadOff []int64 // absolute byte offset of shard s's payload
	payloadLen []int64
	arcCount   []int64
	arcStart   []int64 // exclusive prefix sum of arcCount
}

// byteRanger is implemented by ReaderAts whose backing bytes are
// addressable in place (MappedFile); Range returns a view of [off, off+n),
// not a copy, giving shard decoders a zero-copy read path.
type byteRanger interface {
	Range(off, n int64) ([]byte, error)
}

// OpenSharded reads and validates the header and index of a sharded graph
// of the given total size, accepting both the v1 and v2 formats. No
// payload bytes are touched.
func OpenSharded(r io.ReaderAt, size int64) (*Sharded, error) {
	if size < shardedHeaderLen {
		return nil, fmt.Errorf("graph: sharded: input %d bytes, need %d for header", size, shardedHeaderLen)
	}
	hb := make([]byte, shardedHeaderLen)
	if _, err := r.ReadAt(hb, 0); err != nil {
		return nil, err
	}
	rd := wire.NewReader(hb)
	ver := 0
	switch m := rd.U32(); m {
	case shardedMagic:
		ver = 1
	case shardedMagicV2:
		ver = 2
	default:
		return nil, fmt.Errorf("graph: bad magic %#x (want %#x or %#x)", m, shardedMagic, shardedMagicV2)
	}
	n := int(rd.U64())
	arcs := int64(rd.U64())
	shards := int(rd.U32())
	if n < 0 || arcs < 0 || shards < 1 {
		return nil, fmt.Errorf("graph: sharded: corrupt header (n=%d arcs=%d shards=%d)", n, arcs, shards)
	}
	headerLen := int64(shardedHeaderLen)
	minArcBytes := int64(9) // varint target + f64 weight
	var dict []float64
	if ver == 2 {
		minArcBytes = 1 // varint target; weight runs amortize to < 1 byte
		if size < shardedHeaderLenV2 {
			return nil, fmt.Errorf("graph: sharded: input %d bytes, need %d for v2 header", size, shardedHeaderLenV2)
		}
		vb := make([]byte, shardedHeaderLenV2-shardedHeaderLen)
		if _, err := r.ReadAt(vb, shardedHeaderLen); err != nil {
			return nil, err
		}
		rd.Reset(vb)
		flags := rd.U32()
		dictLen := int(rd.U32())
		if flags != 0 {
			return nil, fmt.Errorf("graph: sharded: unsupported v2 flags %#x", flags)
		}
		if dictLen < 1 || dictLen > maxWeightDict {
			return nil, fmt.Errorf("graph: sharded: weight dictionary length %d outside [1,%d]", dictLen, maxWeightDict)
		}
		headerLen = shardedHeaderLenV2 + 8*int64(dictLen)
		if size < headerLen {
			return nil, fmt.Errorf("graph: sharded: input %d bytes, need %d for %d-entry dictionary", size, headerLen, dictLen)
		}
		db := make([]byte, 8*dictLen)
		if _, err := r.ReadAt(db, shardedHeaderLenV2); err != nil {
			return nil, err
		}
		rd.Reset(db)
		dict = make([]float64, dictLen)
		for i := range dict {
			dict[i] = rd.F64()
		}
	}
	indexLen := int64(shards) * shardIndexEntryLen
	payloadTotal := size - headerLen - indexLen
	if payloadTotal < 0 {
		return nil, fmt.Errorf("graph: sharded: %d shards need %d index bytes, input has %d", shards, indexLen, size-headerLen)
	}
	if int64(n) > payloadTotal || arcs > payloadTotal/minArcBytes {
		return nil, fmt.Errorf("graph: sharded: corrupt header (n=%d arcs=%d for %d payload bytes)", n, arcs, payloadTotal)
	}
	ib := make([]byte, indexLen)
	if _, err := r.ReadAt(ib, headerLen); err != nil {
		return nil, err
	}
	rd.Reset(ib)
	s := &Sharded{
		r:          r,
		ver:        ver,
		dict:       dict,
		n:          n,
		arcs:       arcs,
		vhi:        make([]int, shards),
		payloadOff: make([]int64, shards),
		payloadLen: make([]int64, shards),
		arcCount:   make([]int64, shards),
		arcStart:   make([]int64, shards+1),
	}
	off := headerLen + indexLen
	prevHi := 0
	var sumLen, sumArcs int64
	for i := 0; i < shards; i++ {
		hi := int(rd.U64())
		plen := int64(rd.U64())
		acnt := int64(rd.U64())
		if hi < prevHi || hi > n {
			return nil, fmt.Errorf("graph: sharded: shard %d vertex bound %d not monotone in [0,%d]", i, hi, n)
		}
		// Bounding each entry (not just the final sums) keeps a hostile
		// index from overflowing the running totals into plausible values
		// and reaching a payload-sized allocation.
		if plen < 0 || plen > payloadTotal || acnt < 0 || acnt > arcs {
			return nil, fmt.Errorf("graph: sharded: shard %d index (%d bytes, %d arcs) exceeds input (%d bytes, %d arcs)", i, plen, acnt, payloadTotal, arcs)
		}
		if plen < int64(hi-prevHi)+minArcBytes*acnt {
			return nil, fmt.Errorf("graph: sharded: shard %d index (%d vertices, %d arcs) impossible in %d bytes", i, hi-prevHi, acnt, plen)
		}
		s.vhi[i] = hi
		s.payloadOff[i] = off
		s.payloadLen[i] = plen
		s.arcCount[i] = acnt
		s.arcStart[i+1] = s.arcStart[i] + acnt
		off += plen
		prevHi = hi
		sumLen += plen
		sumArcs += acnt
	}
	if prevHi != n {
		return nil, fmt.Errorf("graph: sharded: shards cover %d of %d vertices", prevHi, n)
	}
	if sumLen != payloadTotal {
		return nil, fmt.Errorf("graph: sharded: index claims %d payload bytes, input has %d", sumLen, payloadTotal)
	}
	if sumArcs != arcs {
		return nil, fmt.Errorf("graph: sharded: arc count mismatch: header %d, index %d", arcs, sumArcs)
	}
	return s, nil
}

// NumVertices returns the vertex count recorded in the header.
func (s *Sharded) NumVertices() int { return s.n }

// NumArcs returns the arc count recorded in the header.
func (s *Sharded) NumArcs() int64 { return s.arcs }

// NumShards returns the shard count.
func (s *Sharded) NumShards() int { return len(s.vhi) }

// Version returns the on-disk format version (1 or 2).
func (s *Sharded) Version() int { return s.ver }

// ShardRange returns the vertex range [lo, hi) of shard i.
func (s *Sharded) ShardRange(i int) (lo, hi int) {
	if i > 0 {
		lo = s.vhi[i-1]
	}
	return lo, s.vhi[i]
}

// ShardArcs returns the arc count of shard i from the index.
func (s *Sharded) ShardArcs(i int) int64 { return s.arcCount[i] }

// ShardOf returns the shard covering vertex u (valid for 0 ≤ u < n).
func (s *Sharded) ShardOf(u int) int {
	return sort.Search(len(s.vhi), func(i int) bool { return s.vhi[i] > u })
}

// payloadBytes fetches shard i's payload, returning an in-place view when
// the source supports zero-copy ranging (a MappedFile) and a fresh copy
// otherwise.
func (s *Sharded) payloadBytes(i int) ([]byte, error) {
	if br, ok := s.r.(byteRanger); ok {
		return br.Range(s.payloadOff[i], s.payloadLen[i])
	}
	data := make([]byte, s.payloadLen[i])
	if _, err := s.r.ReadAt(data, s.payloadOff[i]); err != nil {
		return nil, err
	}
	return data, nil
}

// ReadAll decodes the whole graph, fetching and decoding shards on up to
// workers goroutines (0 = host-sized). The index pins every shard's arc
// range, so shards decode straight into the final CSR arrays — no
// per-shard intermediate graphs and no whole-file double buffer.
func (s *Sharded) ReadAll(workers int) (*Graph, error) {
	pool := par.NewPool(resolveWorkers(workers))
	defer pool.Close()
	offsets := make([]int64, s.n+1)
	targets := make([]int32, s.arcs)
	weights := make([]float64, s.arcs)
	shards := s.NumShards()
	errs := make([]error, shards)
	pool.ParFor(shards, func(i, _ int) {
		data, err := s.payloadBytes(i)
		if err != nil {
			errs[i] = err
			return
		}
		lo, hi := s.ShardRange(i)
		errs[i] = s.decodeShard(i, data, lo, hi, offsets[lo:], s.arcStart[i], targets, weights)
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return fromSortedCSR(offsets, targets, weights), nil
}

// decodeShard decodes shard i's payload for vertices [lo, hi) into the CSR
// arrays. offs[u-lo+1] receives the running arc cursor, which starts at
// base; targets/weights are written at the cursor's absolute positions.
func (s *Sharded) decodeShard(i int, data []byte, lo, hi int, offs []int64, base int64, targets []int32, weights []float64) error {
	rd := wire.NewReader(data)
	cur := base
	maxArc := base + s.arcCount[i]
	for u := lo; u < hi; u++ {
		d := int(rd.Uvarint())
		if err := rd.Err(); err != nil {
			return fmt.Errorf("graph: sharded: vertex %d: %v", u, err)
		}
		if d < 0 || cur+int64(d) > maxArc {
			return fmt.Errorf("graph: sharded: shard %d: degree %d at vertex %d exceeds indexed arc count %d", i, d, u, s.arcCount[i])
		}
		prev := int64(0)
		for k := 0; k < d; k++ {
			t := prev + rd.Varint()
			if t < 0 || t >= int64(s.n) || (k > 0 && t <= prev) {
				if err := rd.Err(); err != nil {
					return fmt.Errorf("graph: sharded: vertex %d: %v", u, err)
				}
				return fmt.Errorf("graph: sharded: vertex %d: target %d out of order or range [0,%d)", u, t, s.n)
			}
			prev = t
			targets[cur] = int32(t)
			if s.ver == 1 {
				weights[cur] = rd.F64()
			}
			cur++
		}
		if s.ver == 2 && d > 0 {
			if err := s.decodeWeightRuns(rd, weights[cur-int64(d):cur], u); err != nil {
				return err
			}
		}
		offs[u-lo+1] = cur
	}
	if err := rd.Err(); err != nil {
		return fmt.Errorf("graph: sharded: shard %d: %v", i, err)
	}
	if cur != maxArc {
		return fmt.Errorf("graph: sharded: shard %d arc count mismatch: index %d, body %d", i, s.arcCount[i], cur-base)
	}
	if rd.Remaining() != 0 {
		return fmt.Errorf("graph: sharded: shard %d has %d trailing payload bytes", i, rd.Remaining())
	}
	return nil
}

// decodeWeightRuns fills ws from v2 (dictIndex, runLength) pairs. The run
// lengths must sum exactly to len(ws) and every index must be inside the
// dictionary; hostile run tables fail here without writing out of range.
func (s *Sharded) decodeWeightRuns(rd *wire.Reader, ws []float64, u int) error {
	for pos := 0; pos < len(ws); {
		idx := rd.Uvarint()
		runLen := rd.Uvarint()
		if err := rd.Err(); err != nil {
			return fmt.Errorf("graph: sharded: vertex %d weight runs: %v", u, err)
		}
		if idx >= uint64(len(s.dict)) {
			return fmt.Errorf("graph: sharded: vertex %d: weight index %d outside dictionary of %d", u, idx, len(s.dict))
		}
		if runLen < 1 || runLen > uint64(len(ws)-pos) {
			return fmt.Errorf("graph: sharded: vertex %d: weight run %d exceeds remaining degree %d", u, runLen, len(ws)-pos)
		}
		w := s.dict[idx]
		for k := 0; k < int(runLen); k++ {
			ws[pos] = w
			pos++
		}
	}
	return nil
}

// ReadVertexRange decodes only the shards covering vertices [lo, hi) and
// returns that range's CSR slice: offsets is rebased (len hi-lo+1 with
// offsets[0] = 0), targets/weights hold just the range's arcs. Only the
// covering shards' byte ranges are fetched, one decoded shard at a time.
func (s *Sharded) ReadVertexRange(lo, hi int) ([]int64, []int32, []float64, error) {
	if lo < 0 || hi < lo || hi > s.n {
		return nil, nil, nil, fmt.Errorf("graph: sharded: vertex range [%d,%d) outside [0,%d]", lo, hi, s.n)
	}
	offsets := make([]int64, hi-lo+1)
	if lo == hi {
		return offsets, nil, nil, nil
	}
	// First and last shard overlapping the range.
	s0 := sort.Search(s.NumShards(), func(i int) bool { return s.vhi[i] > lo })
	s1 := sort.Search(s.NumShards(), func(i int) bool { return s.vhi[i] >= hi })
	var capArcs int64
	for i := s0; i <= s1; i++ {
		capArcs += s.arcCount[i]
	}
	targets := make([]int32, 0, capArcs)
	weights := make([]float64, 0, capArcs)
	for i := s0; i <= s1; i++ {
		w, err := s.ReadWindow(i)
		if err != nil {
			return nil, nil, nil, err
		}
		klo, khi := max(lo, w.Lo), min(hi, w.Hi)
		for u := klo; u < khi; u++ {
			ts, ws := w.Arcs(u)
			targets = append(targets, ts...)
			weights = append(weights, ws...)
			offsets[u-lo+1] = int64(len(targets))
		}
	}
	return offsets, targets, weights, nil
}

// ReadBinarySharded reads a whole sharded graph from a stream. Inputs that
// support ReadAt and can report a size (files, bytes.Readers) are opened in
// place; anything else is buffered once.
func ReadBinarySharded(r io.Reader, workers int) (*Graph, error) {
	if ra, ok := r.(io.ReaderAt); ok {
		if size, sized := inputSize(r); sized {
			s, err := OpenSharded(ra, size)
			if err != nil {
				return nil, err
			}
			return s.ReadAll(workers)
		}
	}
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	s, err := OpenSharded(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		return nil, err
	}
	return s.ReadAll(workers)
}
