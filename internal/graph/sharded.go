package graph

// Sharded binary graph format. The flat WriteBinary format forces a reader
// to buffer and decode the whole file on one goroutine; the sharded layout
// prepends a fixed-width index so loaders can decode shards concurrently
// and fetch only the byte ranges covering the vertices they need.
//
// Layout (little-endian):
//
//	u32 magic 0x477250A2
//	u64 n, u64 arcs, u32 shards
//	shards × { u64 vhi, u64 payloadLen, u64 arcCount }   — the index
//	shards × payload
//
// Shard s covers vertices [vhi[s-1], vhi[s]) (vhi[-1] = 0); its payload is
// exactly WriteBinary's per-vertex encoding for those vertices (uvarint
// degree, then per arc a delta-coded varint target and a fixed f64 weight).
// Shard boundaries are chosen to balance arcs, not vertices, so hub-heavy
// shards do not serialize the parallel decode.
//
// Every index field is validated against the actual input size before any
// payload-sized allocation: Σ payloadLen must equal the bytes present, Σ
// arcCount must equal the header arc count, vhi must be monotone and end at
// n, and each shard must satisfy payloadLen ≥ (vhi−vlo) + 9·arcCount (a
// degree byte per vertex, ≥ 9 bytes per arc). Hostile headers therefore
// fail in the index check instead of demanding huge buffers.

import (
	"bytes"
	"fmt"
	"io"
	"sort"

	"repro/internal/par"
	"repro/internal/wire"
)

const shardedMagic = uint32(0x477250A2) // "GrP" + sharded version 2

// shardedHeaderLen is the fixed prefix: magic + n + arcs + shard count.
const shardedHeaderLen = 4 + 8 + 8 + 4

// shardIndexEntryLen is one index record: vhi + payloadLen + arcCount.
const shardIndexEntryLen = 8 + 8 + 8

// WriteBinarySharded writes g in the sharded binary format. Shard payloads
// are encoded concurrently (the byte output is identical at every worker
// count: each shard's encoding depends only on its own vertices, and shards
// are concatenated in index order).
func WriteBinarySharded(w io.Writer, g *Graph, shards int) error {
	n := g.NumVertices()
	arcs := g.NumArcs()
	if shards < 1 {
		shards = 1
	}
	if shards > n && n > 0 {
		shards = n
	}
	// Boundaries balance arcs across shards: shard s ends at the first
	// vertex whose arc offset reaches s·arcs/shards.
	vhi := make([]int, shards)
	for s := 0; s < shards-1; s++ {
		target := int64(s+1) * arcs / int64(shards)
		vhi[s] = sort.Search(n, func(v int) bool { return g.offsets[v] >= target })
	}
	if shards > 0 {
		vhi[shards-1] = n
	}

	bufs := make([]*wire.Buffer, shards)
	pool := par.NewPool(par.DefaultWorkers(1))
	defer pool.Close()
	pool.ParFor(shards, func(s, _ int) {
		lo := 0
		if s > 0 {
			lo = vhi[s-1]
		}
		hi := vhi[s]
		buf := wire.NewBuffer(int(g.offsets[hi]-g.offsets[lo])*10 + (hi - lo))
		for u := lo; u < hi; u++ {
			alo, ahi := g.offsets[u], g.offsets[u+1]
			buf.PutUvarint(uint64(ahi - alo))
			prev := int64(0)
			for a := alo; a < ahi; a++ {
				t := int64(g.targets[a])
				buf.PutVarint(t - prev)
				prev = t
				buf.PutF64(g.weights[a])
			}
		}
		bufs[s] = buf
	})

	hdr := wire.NewBuffer(shardedHeaderLen + shards*shardIndexEntryLen)
	hdr.PutU32(shardedMagic)
	hdr.PutU64(uint64(n))
	hdr.PutU64(uint64(arcs))
	hdr.PutU32(uint32(shards))
	for s := 0; s < shards; s++ {
		lo := 0
		if s > 0 {
			lo = vhi[s-1]
		}
		hdr.PutU64(uint64(vhi[s]))
		hdr.PutU64(uint64(bufs[s].Len()))
		hdr.PutU64(uint64(g.offsets[vhi[s]] - g.offsets[lo]))
	}
	if _, err := w.Write(hdr.Bytes()); err != nil {
		return err
	}
	for s := 0; s < shards; s++ {
		if _, err := w.Write(bufs[s].Bytes()); err != nil {
			return err
		}
	}
	return nil
}

// Sharded is an opened sharded graph: the validated index plus the source
// reader. Payloads are fetched on demand by ReadAll / ReadVertexRange.
type Sharded struct {
	r          io.ReaderAt
	n          int
	arcs       int64
	vhi        []int   // shard s covers vertices [vhi[s-1], vhi[s])
	payloadOff []int64 // absolute byte offset of shard s's payload
	payloadLen []int64
	arcCount   []int64
	arcStart   []int64 // exclusive prefix sum of arcCount
}

// OpenSharded reads and validates the header and index of a sharded graph
// of the given total size. No payload bytes are touched.
func OpenSharded(r io.ReaderAt, size int64) (*Sharded, error) {
	if size < shardedHeaderLen {
		return nil, fmt.Errorf("graph: sharded: input %d bytes, need %d for header", size, shardedHeaderLen)
	}
	hb := make([]byte, shardedHeaderLen)
	if _, err := r.ReadAt(hb, 0); err != nil {
		return nil, err
	}
	rd := wire.NewReader(hb)
	if m := rd.U32(); m != shardedMagic {
		return nil, fmt.Errorf("graph: bad magic %#x (want %#x)", m, shardedMagic)
	}
	n := int(rd.U64())
	arcs := int64(rd.U64())
	shards := int(rd.U32())
	if n < 0 || arcs < 0 || shards < 1 {
		return nil, fmt.Errorf("graph: sharded: corrupt header (n=%d arcs=%d shards=%d)", n, arcs, shards)
	}
	indexLen := int64(shards) * shardIndexEntryLen
	payloadTotal := size - shardedHeaderLen - indexLen
	if payloadTotal < 0 {
		return nil, fmt.Errorf("graph: sharded: %d shards need %d index bytes, input has %d", shards, indexLen, size-shardedHeaderLen)
	}
	if int64(n) > payloadTotal || arcs > payloadTotal/9 {
		return nil, fmt.Errorf("graph: sharded: corrupt header (n=%d arcs=%d for %d payload bytes)", n, arcs, payloadTotal)
	}
	ib := make([]byte, indexLen)
	if _, err := r.ReadAt(ib, shardedHeaderLen); err != nil {
		return nil, err
	}
	rd.Reset(ib)
	s := &Sharded{
		r:          r,
		n:          n,
		arcs:       arcs,
		vhi:        make([]int, shards),
		payloadOff: make([]int64, shards),
		payloadLen: make([]int64, shards),
		arcCount:   make([]int64, shards),
		arcStart:   make([]int64, shards+1),
	}
	off := shardedHeaderLen + indexLen
	prevHi := 0
	var sumLen, sumArcs int64
	for i := 0; i < shards; i++ {
		hi := int(rd.U64())
		plen := int64(rd.U64())
		acnt := int64(rd.U64())
		if hi < prevHi || hi > n {
			return nil, fmt.Errorf("graph: sharded: shard %d vertex bound %d not monotone in [0,%d]", i, hi, n)
		}
		// Bounding each entry (not just the final sums) keeps a hostile
		// index from overflowing the running totals into plausible values
		// and reaching a payload-sized allocation.
		if plen < 0 || plen > payloadTotal || acnt < 0 || acnt > arcs {
			return nil, fmt.Errorf("graph: sharded: shard %d index (%d bytes, %d arcs) exceeds input (%d bytes, %d arcs)", i, plen, acnt, payloadTotal, arcs)
		}
		if plen < int64(hi-prevHi)+9*acnt {
			return nil, fmt.Errorf("graph: sharded: shard %d index (%d vertices, %d arcs) impossible in %d bytes", i, hi-prevHi, acnt, plen)
		}
		s.vhi[i] = hi
		s.payloadOff[i] = off
		s.payloadLen[i] = plen
		s.arcCount[i] = acnt
		s.arcStart[i+1] = s.arcStart[i] + acnt
		off += plen
		prevHi = hi
		sumLen += plen
		sumArcs += acnt
	}
	if prevHi != n {
		return nil, fmt.Errorf("graph: sharded: shards cover %d of %d vertices", prevHi, n)
	}
	if sumLen != payloadTotal {
		return nil, fmt.Errorf("graph: sharded: index claims %d payload bytes, input has %d", sumLen, payloadTotal)
	}
	if sumArcs != arcs {
		return nil, fmt.Errorf("graph: sharded: arc count mismatch: header %d, index %d", arcs, sumArcs)
	}
	return s, nil
}

// NumVertices returns the vertex count recorded in the header.
func (s *Sharded) NumVertices() int { return s.n }

// NumArcs returns the arc count recorded in the header.
func (s *Sharded) NumArcs() int64 { return s.arcs }

// NumShards returns the shard count.
func (s *Sharded) NumShards() int { return len(s.vhi) }

// ShardRange returns the vertex range [lo, hi) of shard i.
func (s *Sharded) ShardRange(i int) (lo, hi int) {
	if i > 0 {
		lo = s.vhi[i-1]
	}
	return lo, s.vhi[i]
}

// ReadAll decodes the whole graph, fetching and decoding shards on up to
// workers goroutines (0 = host-sized). The index pins every shard's arc
// range, so shards decode straight into the final CSR arrays — no
// per-shard intermediate graphs and no whole-file double buffer.
func (s *Sharded) ReadAll(workers int) (*Graph, error) {
	pool := par.NewPool(resolveWorkers(workers))
	defer pool.Close()
	offsets := make([]int64, s.n+1)
	targets := make([]int32, s.arcs)
	weights := make([]float64, s.arcs)
	shards := s.NumShards()
	errs := make([]error, shards)
	pool.ParFor(shards, func(i, _ int) {
		data := make([]byte, s.payloadLen[i])
		if _, err := s.r.ReadAt(data, s.payloadOff[i]); err != nil {
			errs[i] = err
			return
		}
		lo, hi := s.ShardRange(i)
		errs[i] = s.decodeShard(i, data, lo, hi, offsets[lo:], s.arcStart[i], targets, weights)
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return fromSortedCSR(offsets, targets, weights), nil
}

// decodeShard decodes shard i's payload for vertices [lo, hi) into the CSR
// arrays. offs[u-lo+1] receives the running arc cursor, which starts at
// base; targets/weights are written at the cursor's absolute positions.
func (s *Sharded) decodeShard(i int, data []byte, lo, hi int, offs []int64, base int64, targets []int32, weights []float64) error {
	rd := wire.NewReader(data)
	cur := base
	maxArc := base + s.arcCount[i]
	for u := lo; u < hi; u++ {
		d := int(rd.Uvarint())
		if err := rd.Err(); err != nil {
			return fmt.Errorf("graph: sharded: vertex %d: %v", u, err)
		}
		if d < 0 || cur+int64(d) > maxArc {
			return fmt.Errorf("graph: sharded: shard %d: degree %d at vertex %d exceeds indexed arc count %d", i, d, u, s.arcCount[i])
		}
		prev := int64(0)
		for k := 0; k < d; k++ {
			t := prev + rd.Varint()
			if t < 0 || t >= int64(s.n) || (k > 0 && t <= prev) {
				if err := rd.Err(); err != nil {
					return fmt.Errorf("graph: sharded: vertex %d: %v", u, err)
				}
				return fmt.Errorf("graph: sharded: vertex %d: target %d out of order or range [0,%d)", u, t, s.n)
			}
			prev = t
			targets[cur] = int32(t)
			weights[cur] = rd.F64()
			cur++
		}
		offs[u-lo+1] = cur
	}
	if err := rd.Err(); err != nil {
		return fmt.Errorf("graph: sharded: shard %d: %v", i, err)
	}
	if cur != maxArc {
		return fmt.Errorf("graph: sharded: shard %d arc count mismatch: index %d, body %d", i, s.arcCount[i], cur-base)
	}
	if rd.Remaining() != 0 {
		return fmt.Errorf("graph: sharded: shard %d has %d trailing payload bytes", i, rd.Remaining())
	}
	return nil
}

// ReadVertexRange decodes only the shards covering vertices [lo, hi) and
// returns that range's CSR slice: offsets is rebased (len hi-lo+1 with
// offsets[0] = 0), targets/weights hold just the range's arcs. Only the
// covering shards' byte ranges are fetched.
func (s *Sharded) ReadVertexRange(lo, hi int) ([]int64, []int32, []float64, error) {
	if lo < 0 || hi < lo || hi > s.n {
		return nil, nil, nil, fmt.Errorf("graph: sharded: vertex range [%d,%d) outside [0,%d]", lo, hi, s.n)
	}
	offsets := make([]int64, hi-lo+1)
	if lo == hi {
		return offsets, nil, nil, nil
	}
	// First and last shard overlapping the range.
	s0 := sort.Search(s.NumShards(), func(i int) bool { return s.vhi[i] > lo })
	s1 := sort.Search(s.NumShards(), func(i int) bool { return s.vhi[i] >= hi })
	var capArcs int64
	for i := s0; i <= s1; i++ {
		capArcs += s.arcCount[i]
	}
	targets := make([]int32, 0, capArcs)
	weights := make([]float64, 0, capArcs)
	for i := s0; i <= s1; i++ {
		data := make([]byte, s.payloadLen[i])
		if _, err := s.r.ReadAt(data, s.payloadOff[i]); err != nil {
			return nil, nil, nil, err
		}
		slo, shi := s.ShardRange(i)
		rd := wire.NewReader(data)
		var seen int64
		for u := slo; u < shi; u++ {
			d := int(rd.Uvarint())
			if err := rd.Err(); err != nil {
				return nil, nil, nil, fmt.Errorf("graph: sharded: vertex %d: %v", u, err)
			}
			if d < 0 || seen+int64(d) > s.arcCount[i] {
				return nil, nil, nil, fmt.Errorf("graph: sharded: shard %d: degree %d at vertex %d exceeds indexed arc count %d", i, d, u, s.arcCount[i])
			}
			seen += int64(d)
			keep := u >= lo && u < hi
			prev := int64(0)
			for k := 0; k < d; k++ {
				t := prev + rd.Varint()
				if t < 0 || t >= int64(s.n) || (k > 0 && t <= prev) {
					if err := rd.Err(); err != nil {
						return nil, nil, nil, fmt.Errorf("graph: sharded: vertex %d: %v", u, err)
					}
					return nil, nil, nil, fmt.Errorf("graph: sharded: vertex %d: target %d out of order or range [0,%d)", u, t, s.n)
				}
				prev = t
				w := rd.F64()
				if keep {
					targets = append(targets, int32(t))
					weights = append(weights, w)
				}
			}
			if keep {
				offsets[u-lo+1] = int64(len(targets))
			}
		}
		if err := rd.Err(); err != nil {
			return nil, nil, nil, fmt.Errorf("graph: sharded: shard %d: %v", i, err)
		}
	}
	return offsets, targets, weights, nil
}

// ReadBinarySharded reads a whole sharded graph from a stream. Inputs that
// support ReadAt and can report a size (files, bytes.Readers) are opened in
// place; anything else is buffered once.
func ReadBinarySharded(r io.Reader, workers int) (*Graph, error) {
	if ra, ok := r.(io.ReaderAt); ok {
		if size, sized := inputSize(r); sized {
			s, err := OpenSharded(ra, size)
			if err != nil {
				return nil, err
			}
			return s.ReadAll(workers)
		}
	}
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	s, err := OpenSharded(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		return nil, err
	}
	return s.ReadAll(workers)
}
