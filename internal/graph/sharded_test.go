package graph

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"testing"
)

func shardedFixture(t *testing.T, n, m, shards int) (*Graph, []byte) {
	t.Helper()
	rng := rand.New(rand.NewSource(int64(n + m + shards)))
	g, err := FromEdges(n, messyEdges(rng, n, m))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteBinarySharded(&buf, g, shards); err != nil {
		t.Fatal(err)
	}
	return g, buf.Bytes()
}

func TestShardedRoundTrip(t *testing.T) {
	for _, tc := range []struct{ n, m, shards int }{
		{1, 0, 1}, {10, 20, 1}, {100, 800, 4}, {500, 5000, 7}, {64, 100, 64},
		{50, 300, 200}, // more shards than vertices: clamped
	} {
		g, enc := shardedFixture(t, tc.n, tc.m, tc.shards)
		for _, w := range ingestWorkerCounts {
			g2, err := ReadBinarySharded(bytes.NewReader(enc), w)
			if err != nil {
				t.Fatalf("n=%d shards=%d workers=%d: %v", tc.n, tc.shards, w, err)
			}
			if diff := graphsIdentical(g, g2); diff != "" {
				t.Fatalf("n=%d shards=%d workers=%d: %s", tc.n, tc.shards, w, diff)
			}
		}
	}
}

func TestShardedDeterministicEncoding(t *testing.T) {
	g, enc := shardedFixture(t, 300, 3000, 5)
	var buf bytes.Buffer
	if err := WriteBinarySharded(&buf, g, 5); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc, buf.Bytes()) {
		t.Error("sharded encoding is not deterministic across writes")
	}
}

func TestShardedMatchesFlat(t *testing.T) {
	g, enc := shardedFixture(t, 200, 2000, 6)
	var flat bytes.Buffer
	if err := WriteBinary(&flat, g); err != nil {
		t.Fatal(err)
	}
	gf, err := ReadBinary(bytes.NewReader(flat.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	gs, err := ReadBinarySharded(bytes.NewReader(enc), 4)
	if err != nil {
		t.Fatal(err)
	}
	if diff := graphsIdentical(gf, gs); diff != "" {
		t.Fatalf("flat vs sharded decode: %s", diff)
	}
}

func TestShardedReadVertexRange(t *testing.T) {
	g, enc := shardedFixture(t, 300, 4000, 8)
	s, err := OpenSharded(bytes.NewReader(enc), int64(len(enc)))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range [][2]int{{0, 300}, {0, 1}, {299, 300}, {40, 160}, {100, 100}, {0, 37}} {
		lo, hi := r[0], r[1]
		offs, ts, ws, err := s.ReadVertexRange(lo, hi)
		if err != nil {
			t.Fatalf("range [%d,%d): %v", lo, hi, err)
		}
		for u := lo; u < hi; u++ {
			wantT, wantW := g.Neighbors(u)
			gotT := ts[offs[u-lo]:offs[u-lo+1]]
			gotW := ws[offs[u-lo]:offs[u-lo+1]]
			if len(gotT) != len(wantT) {
				t.Fatalf("range [%d,%d) vertex %d: %d arcs, want %d", lo, hi, u, len(gotT), len(wantT))
			}
			for i := range wantT {
				if gotT[i] != wantT[i] || gotW[i] != wantW[i] {
					t.Fatalf("range [%d,%d) vertex %d arc %d mismatch", lo, hi, u, i)
				}
			}
		}
	}
	if _, _, _, err := s.ReadVertexRange(-1, 5); err == nil {
		t.Error("negative lo: expected error")
	}
	if _, _, _, err := s.ReadVertexRange(10, 301); err == nil {
		t.Error("hi beyond n: expected error")
	}
}

// TestShardedHostileInputs mutates a valid encoding into hostile variants;
// every one must produce an error (not a panic, not a huge allocation).
func TestShardedHostileInputs(t *testing.T) {
	_, enc := shardedFixture(t, 100, 900, 4)
	le := binary.LittleEndian
	mutate := func(name string, f func(b []byte) []byte) {
		b := f(append([]byte(nil), enc...))
		if g, err := ReadBinarySharded(bytes.NewReader(b), 2); err == nil {
			// A mutation may legitimately survive only if the graph still
			// validates; hostile header fields below never do.
			t.Errorf("%s: expected error, got graph with %d vertices", name, g.NumVertices())
		}
	}
	mutate("bad magic", func(b []byte) []byte { b[0] ^= 0xff; return b })
	mutate("huge n", func(b []byte) []byte { le.PutUint64(b[4:], 1<<60); return b })
	mutate("huge arcs", func(b []byte) []byte { le.PutUint64(b[12:], 1<<60); return b })
	mutate("zero shards", func(b []byte) []byte { le.PutUint32(b[20:], 0); return b })
	mutate("huge shards", func(b []byte) []byte { le.PutUint32(b[20:], 1<<31); return b })
	mutate("vhi not monotone", func(b []byte) []byte { le.PutUint64(b[shardedHeaderLen:], 1<<40); return b })
	mutate("huge payloadLen", func(b []byte) []byte { le.PutUint64(b[shardedHeaderLen+8:], 1<<60); return b })
	mutate("huge arcCount", func(b []byte) []byte { le.PutUint64(b[shardedHeaderLen+16:], 1<<60); return b })
	mutate("payload shifted", func(b []byte) []byte {
		// Grow shard 0's payloadLen by one: sums no longer match the input.
		cur := le.Uint64(b[shardedHeaderLen+8:])
		le.PutUint64(b[shardedHeaderLen+8:], cur+1)
		return b
	})
	mutate("arcCount off by one", func(b []byte) []byte {
		cur := le.Uint64(b[shardedHeaderLen+16:])
		le.PutUint64(b[shardedHeaderLen+16:], cur+1)
		return b
	})
	mutate("truncated header", func(b []byte) []byte { return b[:shardedHeaderLen-2] })
	mutate("truncated index", func(b []byte) []byte { return b[:shardedHeaderLen+10] })
	mutate("truncated payload", func(b []byte) []byte { return b[:len(b)-1] })
	mutate("corrupt payload target", func(b []byte) []byte {
		// Flip bits at the start of the first payload: the delta decode
		// must reject the out-of-order/range target.
		off := shardedHeaderLen + 4*shardIndexEntryLen
		b[off+1] ^= 0xff
		return b
	})
}
