package graph

// ShardedWriter emits a v2 sharded graph shard-by-shard so a producer (the
// streaming R-MAT generator, a future checkpointer) never holds more than
// one shard's CSR window in memory. Payload lengths are unknown until each
// shard is encoded, so payloads are appended first and the header + index
// are written at offset 0 by Finish — the destination must be an
// io.WriterAt (a file).

import (
	"fmt"
	"io"

	"repro/internal/wire"
)

// ShardedWriter writes one v2 sharded graph. Shards must be appended in
// vertex order, exactly covering [0, n) across exactly the shard count
// given to NewShardedWriter.
type ShardedWriter struct {
	w        io.WriterAt
	n        int
	shards   int
	dict     []float64
	dictIdx  map[float64]int
	off      int64 // absolute offset of the next payload byte
	nextLo   int
	arcs     int64
	vhi      []int
	plens    []int64
	acnts    []int64
	buf      *wire.Buffer
	finished bool
}

// NewShardedWriter starts a v2 sharded graph of n vertices and the given
// shard count, with the given weight dictionary (1..255 entries; every
// weight later appended must be in it).
func NewShardedWriter(w io.WriterAt, n, shards int, dict []float64) (*ShardedWriter, error) {
	if n < 0 {
		return nil, fmt.Errorf("graph: sharded writer: negative vertex count %d", n)
	}
	if shards < 1 {
		return nil, fmt.Errorf("graph: sharded writer: shard count %d < 1", shards)
	}
	if len(dict) < 1 || len(dict) > maxWeightDict {
		return nil, fmt.Errorf("graph: sharded writer: dictionary length %d outside [1,%d]", len(dict), maxWeightDict)
	}
	idx := make(map[float64]int, len(dict))
	for i, v := range dict {
		if _, dup := idx[v]; dup {
			return nil, fmt.Errorf("graph: sharded writer: duplicate dictionary weight %v", v)
		}
		idx[v] = i
	}
	headerLen := int64(shardedHeaderLenV2) + 8*int64(len(dict)) + int64(shards)*shardIndexEntryLen
	return &ShardedWriter{
		w:       w,
		n:       n,
		shards:  shards,
		dict:    append([]float64(nil), dict...),
		dictIdx: idx,
		off:     headerLen,
		vhi:     make([]int, 0, shards),
		plens:   make([]int64, 0, shards),
		acnts:   make([]int64, 0, shards),
		buf:     wire.NewBuffer(1 << 16),
	}, nil
}

// AppendShard encodes and writes the next shard, covering vertices
// [prevHi, hi). offsets is the window-rebased CSR offset slice
// (len hi-prevHi+1, offsets[0] = 0); targets holds each vertex's sorted
// neighbor lists back to back. weights may be nil, meaning every arc takes
// the first dictionary weight — the unit-weight generator path, which
// skips the per-arc dictionary lookups entirely.
func (sw *ShardedWriter) AppendShard(hi int, offsets []int64, targets []int32, weights []float64) error {
	if sw.finished {
		return fmt.Errorf("graph: sharded writer: append after Finish")
	}
	lo := sw.nextLo
	if hi < lo || hi > sw.n {
		return fmt.Errorf("graph: sharded writer: shard bound %d outside [%d,%d]", hi, lo, sw.n)
	}
	if len(sw.vhi) == sw.shards {
		return fmt.Errorf("graph: sharded writer: more than %d shards appended", sw.shards)
	}
	if len(offsets) != hi-lo+1 || offsets[0] != 0 || offsets[hi-lo] != int64(len(targets)) {
		return fmt.Errorf("graph: sharded writer: shard [%d,%d): offsets (%d entries ending %d) do not describe %d arcs",
			lo, hi, len(offsets), offsets[len(offsets)-1], len(targets))
	}
	if weights != nil && len(weights) != len(targets) {
		return fmt.Errorf("graph: sharded writer: %d weights for %d targets", len(weights), len(targets))
	}
	for _, w := range weights {
		if _, ok := sw.dictIdx[w]; !ok {
			return fmt.Errorf("graph: sharded writer: weight %v not in dictionary", w)
		}
	}
	sw.buf.Reset()
	for u := lo; u < hi; u++ {
		a, b := offsets[u-lo], offsets[u-lo+1]
		if b < a {
			return fmt.Errorf("graph: sharded writer: offsets not monotone at vertex %d", u)
		}
		var ws []float64
		if weights != nil {
			ws = weights[a:b]
		}
		putVertexV2(sw.buf, targets[a:b], ws, sw.dictIdx)
	}
	if _, err := sw.w.WriteAt(sw.buf.Bytes(), sw.off); err != nil {
		return err
	}
	sw.off += int64(sw.buf.Len())
	sw.vhi = append(sw.vhi, hi)
	sw.plens = append(sw.plens, int64(sw.buf.Len()))
	sw.acnts = append(sw.acnts, int64(len(targets)))
	sw.arcs += int64(len(targets))
	sw.nextLo = hi
	return nil
}

// Arcs returns the number of arcs appended so far.
func (sw *ShardedWriter) Arcs() int64 { return sw.arcs }

// Finish validates full coverage and writes the header, dictionary, and
// index at offset 0. The writer is unusable afterwards.
func (sw *ShardedWriter) Finish() error {
	if sw.finished {
		return fmt.Errorf("graph: sharded writer: double Finish")
	}
	if sw.nextLo != sw.n || len(sw.vhi) != sw.shards {
		return fmt.Errorf("graph: sharded writer: %d shards cover %d of %d vertices (want %d shards)",
			len(sw.vhi), sw.nextLo, sw.n, sw.shards)
	}
	sw.finished = true
	hdr := wire.NewBuffer(shardedHeaderLenV2 + 8*len(sw.dict) + sw.shards*shardIndexEntryLen)
	hdr.PutU32(shardedMagicV2)
	hdr.PutU64(uint64(sw.n))
	hdr.PutU64(uint64(sw.arcs))
	hdr.PutU32(uint32(sw.shards))
	hdr.PutU32(0) // flags, reserved
	hdr.PutU32(uint32(len(sw.dict)))
	for _, v := range sw.dict {
		hdr.PutF64(v)
	}
	for s := 0; s < sw.shards; s++ {
		hdr.PutU64(uint64(sw.vhi[s]))
		hdr.PutU64(uint64(sw.plens[s]))
		hdr.PutU64(uint64(sw.acnts[s]))
	}
	_, err := sw.w.WriteAt(hdr.Bytes(), 0)
	return err
}
