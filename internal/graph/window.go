package graph

// Windowed access to a sharded graph: decode one shard's vertex range at a
// time instead of the whole file, so a consumer's peak memory is bounded by
// its own working state plus one shard window (times a small LRU). This is
// the read side of the out-of-core pipeline — the streaming partitioner and
// the -oocore cmds iterate the file through these windows and never build
// the global CSR.

import (
	"fmt"
	"io"
)

// Window is one decoded shard: the CSR slice covering vertices [Lo, Hi).
// Offsets is rebased (len Hi-Lo+1, Offsets[0] = 0).
type Window struct {
	Lo, Hi  int
	Offsets []int64
	Targets []int32
	Weights []float64
}

// Arcs returns vertex u's sorted targets and weights (u must be in
// [Lo, Hi)).
func (w *Window) Arcs(u int) ([]int32, []float64) {
	a, b := w.Offsets[u-w.Lo], w.Offsets[u-w.Lo+1]
	return w.Targets[a:b], w.Weights[a:b]
}

// Degree returns vertex u's arc count.
func (w *Window) Degree(u int) int {
	return int(w.Offsets[u-w.Lo+1] - w.Offsets[u-w.Lo])
}

// NumArcs returns the window's total arc count.
func (w *Window) NumArcs() int64 { return int64(len(w.Targets)) }

// ReadWindow fetches and decodes shard i into a fresh Window. It is
// stateless and safe to call from concurrent goroutines (unlike
// WindowReader, which adds a cache).
func (s *Sharded) ReadWindow(i int) (*Window, error) {
	if i < 0 || i >= s.NumShards() {
		return nil, fmt.Errorf("graph: sharded: shard %d outside [0,%d)", i, s.NumShards())
	}
	data, err := s.payloadBytes(i)
	if err != nil {
		return nil, err
	}
	lo, hi := s.ShardRange(i)
	w := &Window{
		Lo:      lo,
		Hi:      hi,
		Offsets: make([]int64, hi-lo+1),
		Targets: make([]int32, s.arcCount[i]),
		Weights: make([]float64, s.arcCount[i]),
	}
	if err := s.decodeShard(i, data, lo, hi, w.Offsets, 0, w.Targets, w.Weights); err != nil {
		return nil, err
	}
	return w, nil
}

// WindowStats counts a WindowReader's cache traffic.
type WindowStats struct {
	Hits      int64 // window requests served from the cache
	Loads     int64 // shard fetches + decodes
	Evictions int64
	BytesRead int64 // payload bytes fetched on loads
}

// WindowReader provides random access to a sharded graph through an LRU
// cache of at most maxWindows decoded shard windows, bounding memory at
// maxWindows × the largest shard regardless of graph size. Not safe for
// concurrent use; give each goroutine its own reader (the underlying
// Sharded is shared safely).
type WindowReader struct {
	s     *Sharded
	max   int
	cache map[int]*windowEntry
	tick  int64
	stats WindowStats
}

type windowEntry struct {
	w    *Window
	last int64
}

// NewWindowReader wraps s with an LRU of up to maxWindows decoded windows
// (minimum 1).
func NewWindowReader(s *Sharded, maxWindows int) *WindowReader {
	if maxWindows < 1 {
		maxWindows = 1
	}
	return &WindowReader{
		s:     s,
		max:   maxWindows,
		cache: make(map[int]*windowEntry, maxWindows+1),
	}
}

// Sharded returns the underlying opened graph.
func (r *WindowReader) Sharded() *Sharded { return r.s }

// Stats returns the cache counters accumulated so far.
func (r *WindowReader) Stats() WindowStats { return r.stats }

// Window returns shard i's decoded window, from the cache when resident.
// The window is valid until evicted plus however long the caller holds it;
// it is never mutated by the reader.
func (r *WindowReader) Window(i int) (*Window, error) {
	r.tick++
	if e, ok := r.cache[i]; ok {
		e.last = r.tick
		r.stats.Hits++
		return e.w, nil
	}
	w, err := r.s.ReadWindow(i)
	if err != nil {
		return nil, err
	}
	r.stats.Loads++
	r.stats.BytesRead += r.s.payloadLen[i]
	if len(r.cache) >= r.max {
		// The cache is small (a handful of windows), so a linear scan for
		// the oldest entry beats maintaining a heap or list.
		oldest, oldestTick := -1, r.tick+1
		for k, e := range r.cache {
			if e.last < oldestTick {
				oldest, oldestTick = k, e.last
			}
		}
		delete(r.cache, oldest)
		r.stats.Evictions++
	}
	r.cache[i] = &windowEntry{w: w, last: r.tick}
	return w, nil
}

// NeighborsOf returns vertex u's sorted targets and weights through the
// window cache. The slices alias the cached window: copy before the next
// Window/NeighborsOf call if they must outlive it.
func (r *WindowReader) NeighborsOf(u int) ([]int32, []float64, error) {
	if u < 0 || u >= r.s.n {
		return nil, nil, fmt.Errorf("graph: sharded: vertex %d outside [0,%d)", u, r.s.n)
	}
	w, err := r.Window(r.s.ShardOf(u))
	if err != nil {
		return nil, nil, err
	}
	ts, ws := w.Arcs(u)
	return ts, ws, nil
}

// OpenShardedFile opens path as a sharded graph backed by a read-only
// memory mapping (plain pread on platforms without mmap support), without
// decoding any payload bytes. Closing the returned closer unmaps the file;
// the Sharded must not be used after.
func OpenShardedFile(path string) (*Sharded, io.Closer, error) {
	m, err := OpenMmap(path)
	if err != nil {
		return nil, nil, err
	}
	s, err := OpenSharded(m, m.Size())
	if err != nil {
		m.Close()
		return nil, nil, err
	}
	return s, m, nil
}
