package graph

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

// dictEdges generates messy edges (duplicates, self-loops) whose weights
// come from a small set, so the v2 writer keeps its dictionary encoding.
func dictEdges(rng *rand.Rand, n, m int) []Edge {
	weights := []float64{1, 2, 0.5}
	edges := make([]Edge, m)
	for i := range edges {
		e := Edge{U: rng.Intn(n), V: rng.Intn(n), W: weights[rng.Intn(len(weights))]}
		if rng.Intn(8) == 0 {
			e.V = e.U
		}
		edges[i] = e
	}
	return edges
}

func v2Fixture(t *testing.T, n, m, shards int) (*Graph, []byte) {
	t.Helper()
	rng := rand.New(rand.NewSource(int64(3*n + m + shards)))
	g, err := FromEdges(n, dictEdges(rng, n, m))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteBinaryShardedV2(&buf, g, shards); err != nil {
		t.Fatal(err)
	}
	return g, buf.Bytes()
}

func TestShardedV2RoundTrip(t *testing.T) {
	for _, tc := range []struct{ n, m, shards int }{
		{1, 0, 1}, {10, 20, 1}, {100, 800, 4}, {500, 5000, 7}, {64, 100, 64},
	} {
		g, enc := v2Fixture(t, tc.n, tc.m, tc.shards)
		if got := binary.LittleEndian.Uint32(enc); got != shardedMagicV2 {
			t.Fatalf("n=%d: magic %#x, want v2 %#x", tc.n, got, shardedMagicV2)
		}
		for _, w := range ingestWorkerCounts {
			g2, err := ReadBinarySharded(bytes.NewReader(enc), w)
			if err != nil {
				t.Fatalf("n=%d shards=%d workers=%d: %v", tc.n, tc.shards, w, err)
			}
			if diff := graphsIdentical(g, g2); diff != "" {
				t.Fatalf("n=%d shards=%d workers=%d: %s", tc.n, tc.shards, w, diff)
			}
		}
	}
}

// TestShardedV2Compresses pins the point of the format: a low-cardinality
// weight graph must encode materially smaller than v1 (the f64 weight is
// ~8 of v1's ~10 bytes/arc).
func TestShardedV2Compresses(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g, err := FromEdges(2000, dictEdges(rng, 2000, 20000))
	if err != nil {
		t.Fatal(err)
	}
	var v1, v2 bytes.Buffer
	if err := WriteBinarySharded(&v1, g, 8); err != nil {
		t.Fatal(err)
	}
	if err := WriteBinaryShardedV2(&v2, g, 8); err != nil {
		t.Fatal(err)
	}
	if v2.Len()*2 >= v1.Len() {
		t.Fatalf("v2 %d bytes vs v1 %d: expected at least 2x smaller", v2.Len(), v1.Len())
	}
}

// TestShardedV2FallsBackToV1 checks that a graph with more than 255
// distinct weights is silently written in the v1 format, which every
// reader accepts by magic.
func TestShardedV2FallsBackToV1(t *testing.T) {
	edges := make([]Edge, 400)
	for i := range edges {
		edges[i] = Edge{U: i, V: (i + 1) % 500, W: 1 + float64(i)/512}
	}
	g, err := FromEdges(500, edges)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteBinaryShardedV2(&buf, g, 4); err != nil {
		t.Fatal(err)
	}
	if got := binary.LittleEndian.Uint32(buf.Bytes()); got != shardedMagic {
		t.Fatalf("magic %#x, want v1 fallback %#x", got, shardedMagic)
	}
	g2, err := ReadBinarySharded(bytes.NewReader(buf.Bytes()), 2)
	if err != nil {
		t.Fatal(err)
	}
	if diff := graphsIdentical(g, g2); diff != "" {
		t.Fatal(diff)
	}
}

// TestWindowsMatchGraph decodes every shard window of v1 and v2 encodings
// and compares each vertex's arcs against the source graph, plus
// ReadVertexRange over the v2 path.
func TestWindowsMatchGraph(t *testing.T) {
	for _, ver := range []int{1, 2} {
		var g *Graph
		var enc []byte
		if ver == 1 {
			g, enc = shardedFixture(t, 300, 4000, 8)
		} else {
			g, enc = v2Fixture(t, 300, 4000, 8)
		}
		s, err := OpenSharded(bytes.NewReader(enc), int64(len(enc)))
		if err != nil {
			t.Fatal(err)
		}
		if s.Version() != ver {
			t.Fatalf("version %d, want %d", s.Version(), ver)
		}
		covered := 0
		for i := 0; i < s.NumShards(); i++ {
			w, err := s.ReadWindow(i)
			if err != nil {
				t.Fatalf("v%d shard %d: %v", ver, i, err)
			}
			lo, hi := s.ShardRange(i)
			if w.Lo != lo || w.Hi != hi {
				t.Fatalf("v%d shard %d: window [%d,%d), want [%d,%d)", ver, i, w.Lo, w.Hi, lo, hi)
			}
			for u := lo; u < hi; u++ {
				wantT, wantW := g.Neighbors(u)
				gotT, gotW := w.Arcs(u)
				if len(gotT) != len(wantT) || w.Degree(u) != len(wantT) {
					t.Fatalf("v%d vertex %d: %d arcs, want %d", ver, u, len(gotT), len(wantT))
				}
				for k := range wantT {
					if gotT[k] != wantT[k] || gotW[k] != wantW[k] {
						t.Fatalf("v%d vertex %d arc %d: (%d,%v) want (%d,%v)",
							ver, u, k, gotT[k], gotW[k], wantT[k], wantW[k])
					}
				}
				covered++
			}
		}
		if covered != g.NumVertices() {
			t.Fatalf("v%d: windows covered %d of %d vertices", ver, covered, g.NumVertices())
		}
		for _, r := range [][2]int{{0, 300}, {40, 160}, {299, 300}} {
			offs, ts, ws, err := s.ReadVertexRange(r[0], r[1])
			if err != nil {
				t.Fatal(err)
			}
			for u := r[0]; u < r[1]; u++ {
				wantT, wantW := g.Neighbors(u)
				gotT := ts[offs[u-r[0]]:offs[u-r[0]+1]]
				gotW := ws[offs[u-r[0]]:offs[u-r[0]+1]]
				if len(gotT) != len(wantT) {
					t.Fatalf("v%d range %v vertex %d: %d arcs, want %d", ver, r, u, len(gotT), len(wantT))
				}
				for k := range wantT {
					if gotT[k] != wantT[k] || gotW[k] != wantW[k] {
						t.Fatalf("v%d range %v vertex %d arc %d mismatch", ver, r, u, k)
					}
				}
			}
		}
	}
}

// TestWindowReaderLRU checks the cache's hit/eviction accounting and that
// random access through a tiny cache still returns correct neighborhoods.
func TestWindowReaderLRU(t *testing.T) {
	g, enc := v2Fixture(t, 400, 6000, 10)
	s, err := OpenSharded(bytes.NewReader(enc), int64(len(enc)))
	if err != nil {
		t.Fatal(err)
	}

	// A cache bigger than the shard count never evicts and loads each
	// shard exactly once, however often it is re-read.
	big := NewWindowReader(s, s.NumShards()+1)
	for pass := 0; pass < 3; pass++ {
		for i := 0; i < s.NumShards(); i++ {
			if _, err := big.Window(i); err != nil {
				t.Fatal(err)
			}
		}
	}
	if st := big.Stats(); st.Loads != int64(s.NumShards()) || st.Evictions != 0 || st.Hits != int64(2*s.NumShards()) {
		t.Fatalf("big cache stats: %+v", st)
	}

	// A one-window cache thrashes on alternating shards but stays correct.
	small := NewWindowReader(s, 1)
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 500; i++ {
		u := rng.Intn(g.NumVertices())
		ts, ws, err := small.NeighborsOf(u)
		if err != nil {
			t.Fatal(err)
		}
		wantT, wantW := g.Neighbors(u)
		if len(ts) != len(wantT) {
			t.Fatalf("vertex %d: %d arcs, want %d", u, len(ts), len(wantT))
		}
		for k := range wantT {
			if ts[k] != wantT[k] || ws[k] != wantW[k] {
				t.Fatalf("vertex %d arc %d mismatch", u, k)
			}
		}
	}
	if st := small.Stats(); st.Loads < 2 || st.Evictions != st.Loads-1 {
		t.Fatalf("small cache stats: %+v", st)
	}
	if _, _, err := small.NeighborsOf(-1); err == nil {
		t.Error("negative vertex: expected error")
	}
	if _, _, err := small.NeighborsOf(g.NumVertices()); err == nil {
		t.Error("vertex beyond n: expected error")
	}
	if _, err := small.Window(s.NumShards()); err == nil {
		t.Error("shard beyond count: expected error")
	}
}

func TestShardOf(t *testing.T) {
	_, enc := v2Fixture(t, 200, 3000, 7)
	s, err := OpenSharded(bytes.NewReader(enc), int64(len(enc)))
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < s.NumVertices(); u++ {
		i := s.ShardOf(u)
		lo, hi := s.ShardRange(i)
		if u < lo || u >= hi {
			t.Fatalf("ShardOf(%d) = %d covering [%d,%d)", u, i, lo, hi)
		}
	}
}

// TestShardedWriterMatchesInRAM replays the in-RAM v2 writer's exact shard
// boundaries through the streaming ShardedWriter and requires the output
// files to be byte-identical — the streaming generate path therefore
// produces the same artifact a load-then-write pipeline would.
func TestShardedWriterMatchesInRAM(t *testing.T) {
	g, enc := v2Fixture(t, 300, 4000, 6)
	s, err := OpenSharded(bytes.NewReader(enc), int64(len(enc)))
	if err != nil {
		t.Fatal(err)
	}
	dict, _ := weightDict(g.weights)
	path := filepath.Join(t.TempDir(), "stream.sbin")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	sw, err := NewShardedWriter(f, g.NumVertices(), s.NumShards(), dict)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < s.NumShards(); i++ {
		w, err := s.ReadWindow(i)
		if err != nil {
			t.Fatal(err)
		}
		if err := sw.AppendShard(w.Hi, w.Offsets, w.Targets, w.Weights); err != nil {
			t.Fatalf("shard %d: %v", i, err)
		}
	}
	if err := sw.Finish(); err != nil {
		t.Fatal(err)
	}
	if sw.Arcs() != g.NumArcs() {
		t.Fatalf("writer arcs %d, want %d", sw.Arcs(), g.NumArcs())
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, enc) {
		t.Fatalf("streaming writer output differs from in-RAM writer (%d vs %d bytes)", len(got), len(enc))
	}
}

// TestShardedWriterNilWeights checks the unit-weight shortcut: weights ==
// nil encodes every arc as dictionary index 0, identical to passing the
// explicit weights.
func TestShardedWriterNilWeights(t *testing.T) {
	edges := []Edge{{U: 0, V: 1, W: 1}, {U: 1, V: 2, W: 1}, {U: 0, V: 3, W: 1}, {U: 2, V: 2, W: 1}}
	g, err := FromEdges(4, edges)
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := WriteBinaryShardedV2(&want, g, 2); err != nil {
		t.Fatal(err)
	}
	s, err := OpenSharded(bytes.NewReader(want.Bytes()), int64(want.Len()))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "unit.sbin")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sw, err := NewShardedWriter(f, 4, s.NumShards(), []float64{1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < s.NumShards(); i++ {
		w, err := s.ReadWindow(i)
		if err != nil {
			t.Fatal(err)
		}
		if err := sw.AppendShard(w.Hi, w.Offsets, w.Targets, nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := sw.Finish(); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want.Bytes()) {
		t.Fatal("nil-weight streaming output differs from explicit-weight in-RAM output")
	}
}

func TestShardedWriterErrors(t *testing.T) {
	tmp := func() *os.File {
		f, err := os.Create(filepath.Join(t.TempDir(), "w.sbin"))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { f.Close() })
		return f
	}
	if _, err := NewShardedWriter(tmp(), -1, 1, []float64{1}); err == nil {
		t.Error("negative n: expected error")
	}
	if _, err := NewShardedWriter(tmp(), 4, 0, []float64{1}); err == nil {
		t.Error("zero shards: expected error")
	}
	if _, err := NewShardedWriter(tmp(), 4, 1, nil); err == nil {
		t.Error("empty dictionary: expected error")
	}
	if _, err := NewShardedWriter(tmp(), 4, 1, []float64{1, 1}); err == nil {
		t.Error("duplicate dictionary entries: expected error")
	}

	sw, err := NewShardedWriter(tmp(), 4, 2, []float64{1})
	if err != nil {
		t.Fatal(err)
	}
	if err := sw.AppendShard(5, []int64{0, 0, 0, 0, 0, 0}, nil, nil); err == nil {
		t.Error("hi beyond n: expected error")
	}
	if err := sw.AppendShard(2, []int64{0, 1, 2}, []int32{1, 0}, []float64{2, 2}); err == nil {
		t.Error("weight outside dictionary: expected error")
	}
	if err := sw.AppendShard(2, []int64{0, 1}, []int32{1}, nil); err == nil {
		t.Error("short offsets: expected error")
	}
	if err := sw.Finish(); err == nil {
		t.Error("finish before coverage: expected error")
	}
}

// TestOpenShardedFile exercises the mmap-backed open + zero-copy decode
// path end to end for both format versions.
func TestOpenShardedFile(t *testing.T) {
	for _, ver := range []int{1, 2} {
		var g *Graph
		var enc []byte
		if ver == 1 {
			g, enc = shardedFixture(t, 250, 3000, 5)
		} else {
			g, enc = v2Fixture(t, 250, 3000, 5)
		}
		path := filepath.Join(t.TempDir(), "g.sbin")
		if err := os.WriteFile(path, enc, 0o644); err != nil {
			t.Fatal(err)
		}
		s, closer, err := OpenShardedFile(path)
		if err != nil {
			t.Fatal(err)
		}
		g2, err := s.ReadAll(3)
		if err != nil {
			t.Fatal(err)
		}
		if diff := graphsIdentical(g, g2); diff != "" {
			t.Fatalf("v%d mmap decode: %s", ver, diff)
		}
		// Windowed access over the mapping takes the Range zero-copy path.
		r := NewWindowReader(s, 2)
		for u := 0; u < g.NumVertices(); u += 17 {
			ts, _, err := r.NeighborsOf(u)
			if err != nil {
				t.Fatal(err)
			}
			wantT, _ := g.Neighbors(u)
			if len(ts) != len(wantT) {
				t.Fatalf("v%d vertex %d: %d arcs, want %d", ver, u, len(ts), len(wantT))
			}
		}
		if err := closer.Close(); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := OpenShardedFile(filepath.Join(t.TempDir(), "missing.sbin")); err == nil {
		t.Error("missing file: expected error")
	}
}

// TestShardedV2HostileInputs mutates a valid v2 encoding into hostile
// variants; every one must produce an error, never a panic or an
// input-disproportionate allocation.
func TestShardedV2HostileInputs(t *testing.T) {
	_, enc := v2Fixture(t, 100, 900, 4)
	le := binary.LittleEndian
	dictLen := int(le.Uint32(enc[28:]))
	indexOff := shardedHeaderLenV2 + 8*dictLen
	payloadOff := indexOff + 4*shardIndexEntryLen
	mutate := func(name string, f func(b []byte) []byte) {
		t.Helper()
		b := f(append([]byte(nil), enc...))
		if g, err := ReadBinarySharded(bytes.NewReader(b), 2); err == nil {
			t.Errorf("%s: expected error, got graph with %d vertices", name, g.NumVertices())
		}
	}
	mutate("nonzero flags", func(b []byte) []byte { le.PutUint32(b[24:], 0xbeef); return b })
	mutate("zero dictLen", func(b []byte) []byte { le.PutUint32(b[28:], 0); return b })
	mutate("huge dictLen", func(b []byte) []byte { le.PutUint32(b[28:], 1<<20); return b })
	mutate("dictLen beyond cap", func(b []byte) []byte { le.PutUint32(b[28:], 256); return b })
	mutate("truncated dict", func(b []byte) []byte { return b[:shardedHeaderLenV2+3] })
	mutate("truncated index", func(b []byte) []byte { return b[:indexOff+5] })
	mutate("truncated payload", func(b []byte) []byte { return b[:len(b)-1] })
	mutate("huge arcs", func(b []byte) []byte { le.PutUint64(b[12:], 1<<60); return b })
	mutate("vhi not monotone", func(b []byte) []byte { le.PutUint64(b[indexOff:], 1<<40); return b })
	mutate("overlapping shard index", func(b []byte) []byte {
		// Shrink shard 0's upper bound below shard 1's range start while
		// leaving lengths alone: coverage and arc sums no longer line up.
		le.PutUint64(b[indexOff:], 0)
		return b
	})
	mutate("corrupt payload", func(b []byte) []byte { b[payloadOff+1] ^= 0xff; return b })
	mutate("truncated window", func(b []byte) []byte {
		// Cut the last payload byte but patch the final shard's payloadLen
		// so the index still sums: the shard decode must hit the reader's
		// error path, not run past the buffer.
		last := indexOff + 3*shardIndexEntryLen + 8
		cur := le.Uint64(b[last:])
		le.PutUint64(b[last:], cur-1)
		return b[:len(b)-1]
	})
}
