// Package loadgen drives a resident dserver world with a multi-tenant
// query/update mix and measures serving latency and throughput.
//
// The generator is split into a deterministic plan and a timed run. The
// plan — which tenant issues which request, in which order, with which
// edge ops — is a pure function of Config.Seed, so tests can replay it and
// pin the world's final state bit-for-bit. Timing enters only in the run:
// open-loop Poisson arrivals (Rate > 0) paced by the wall clock, or a
// closed loop (Rate <= 0) that issues each tenant's next request as soon
// as the previous one returns. Sweep then walks a rate ladder until the
// world saturates, which is the experiment behind BENCH_8.json.
package loadgen

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"repro/internal/dserver"
	"repro/internal/trace"
)

// Config shapes one load run.
type Config struct {
	// Tenants is the number of concurrent request streams.
	Tenants int
	// Requests is the total number of requests across all tenants.
	Requests int
	// Seed drives every random choice in the plan (request kinds, targets,
	// edge ops, inter-arrival gaps). Same seed, same plan.
	Seed int64
	// UpdateFrac is the fraction of requests that are edge-update batches;
	// the rest split evenly between community, neighborhood, and
	// modularity queries. Default 0.2.
	UpdateFrac float64
	// BatchSize is the number of edge ops per update request. Default 4.
	BatchSize int
	// Rate is the total offered load in requests/second across all
	// tenants, Poisson arrivals (open loop). <= 0 runs closed-loop: no
	// pacing, each tenant fires its next request immediately.
	Rate float64
}

func (c Config) withDefaults() Config {
	if c.Tenants <= 0 {
		c.Tenants = 4
	}
	if c.Requests <= 0 {
		c.Requests = 200
	}
	if c.UpdateFrac <= 0 {
		c.UpdateFrac = 0.2
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 4
	}
	return c
}

// ReqKind is the request type of one planned request.
type ReqKind int

const (
	ReqCommunity ReqKind = iota
	ReqNeighborhood
	ReqModularity
	ReqUpdate
)

func (k ReqKind) String() string {
	switch k {
	case ReqCommunity:
		return "community"
	case ReqNeighborhood:
		return "neighborhood"
	case ReqModularity:
		return "modularity"
	case ReqUpdate:
		return "update"
	}
	return fmt.Sprintf("ReqKind(%d)", int(k))
}

// Req is one planned request.
type Req struct {
	Tenant int
	Kind   ReqKind
	V      int           // query target for community/neighborhood
	Ops    []dserver.Op  // update payload
	Gap    time.Duration // open-loop inter-arrival gap before this request
}

// Plan is a deterministic request schedule: per-tenant streams drawn from
// Config.Seed. Tenant t owns the vertex-pair pool {(u,v) : hash(u,v) ≡ t
// (mod Tenants)} for its extra edges and churns each pair insert/delete in
// alternation, so concurrent tenants never invalidate each other's update
// batches.
type Plan struct {
	Config  Config
	Streams [][]Req
}

// NewPlan builds the deterministic request schedule for a world over n
// vertices. It issues no requests and reads no clock.
func NewPlan(n int, cfg Config) *Plan {
	cfg = cfg.withDefaults()
	pl := &Plan{Config: cfg, Streams: make([][]Req, cfg.Tenants)}
	perTenant := cfg.Requests / cfg.Tenants
	for tn := 0; tn < cfg.Tenants; tn++ {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(tn)*7919))
		held := make(map[[2]int]bool)
		reqs := make([]Req, 0, perTenant)
		for i := 0; i < perTenant; i++ {
			r := Req{Tenant: tn}
			if cfg.Rate > 0 {
				// Exponential inter-arrival at this tenant's share of the
				// offered load.
				lambda := cfg.Rate / float64(cfg.Tenants)
				r.Gap = time.Duration(rng.ExpFloat64() / lambda * float64(time.Second))
			}
			switch x := rng.Float64(); {
			case x < cfg.UpdateFrac:
				r.Kind = ReqUpdate
				r.Ops = planOps(rng, n, cfg, tn, held)
			case x < cfg.UpdateFrac+(1-cfg.UpdateFrac)/3:
				r.Kind = ReqCommunity
				r.V = rng.Intn(n)
			case x < cfg.UpdateFrac+2*(1-cfg.UpdateFrac)/3:
				r.Kind = ReqNeighborhood
				r.V = rng.Intn(n)
			default:
				r.Kind = ReqModularity
			}
			reqs = append(reqs, r)
		}
		pl.Streams[tn] = reqs
	}
	return pl
}

// planOps draws one tenant-safe update batch. Pairs come from the tenant's
// residue class of the pair hash, churned insert/delete so the batch is
// valid against the shared ledger regardless of interleaving.
func planOps(rng *rand.Rand, n int, cfg Config, tn int, held map[[2]int]bool) []dserver.Op {
	ops := make([]dserver.Op, 0, cfg.BatchSize)
	batch := make(map[[2]int]bool, cfg.BatchSize)
	for len(ops) < cfg.BatchSize {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		if (u*31+v)%cfg.Tenants != tn {
			continue
		}
		k := [2]int{u, v}
		if batch[k] {
			continue // one op per pair per batch keeps churn simple
		}
		batch[k] = true
		if held[k] {
			ops = append(ops, dserver.Op{U: u, V: v, Del: true})
		} else {
			ops = append(ops, dserver.Op{U: u, V: v, W: 1})
		}
		held[k] = !held[k]
	}
	return ops
}

// ExtraPairs returns the planned edge pairs still held (inserted, not yet
// deleted) at the end of each tenant's stream — the plan's net effect on
// the ledger. Tests use it to reconcile the world's final edge count.
func (pl *Plan) ExtraPairs() [][2]int {
	held := make(map[[2]int]bool)
	for _, stream := range pl.Streams {
		for _, r := range stream {
			for _, op := range r.Ops {
				u, v := op.U, op.V
				if u > v {
					u, v = v, u
				}
				held[[2]int{u, v}] = !op.Del
			}
		}
	}
	var pairs [][2]int
	for k, h := range held {
		if h {
			pairs = append(pairs, k)
		}
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i][0] != pairs[j][0] {
			return pairs[i][0] < pairs[j][0]
		}
		return pairs[i][1] < pairs[j][1]
	})
	return pairs
}

// Result summarizes one load run.
type Result struct {
	Config     Config
	Wall       time.Duration // wall time of the whole run
	Requests   int
	Updates    int
	Errors     int
	Throughput float64 // achieved requests/second
	P50        time.Duration
	P99        time.Duration
	Max        time.Duration
	// Saturated reports that the run could not keep up with the offered
	// load: achieved throughput fell below 90% of Config.Rate.
	Saturated bool
}

func (r Result) String() string {
	return fmt.Sprintf("tenants=%d rate=%.0f/s achieved=%.0f/s p50=%v p99=%v max=%v errs=%d saturated=%v",
		r.Config.Tenants, r.Config.Rate, r.Throughput, r.P50, r.P99, r.Max, r.Errors, r.Saturated)
}

// Run executes the plan against w: one goroutine per tenant, each walking
// its stream in order. Latency is measured per request; Poisson pacing
// applies when the plan was built with Rate > 0.
func Run(w *dserver.World, pl *Plan) Result {
	type tenantOut struct {
		lats []time.Duration
		ups  int
		errs int
	}
	outs := make([]tenantOut, len(pl.Streams))
	start := trace.Now()
	done := make(chan int, len(pl.Streams))
	for tn := range pl.Streams {
		go func(tn int) {
			defer func() { done <- tn }()
			o := &outs[tn]
			o.lats = make([]time.Duration, 0, len(pl.Streams[tn]))
			for _, r := range pl.Streams[tn] {
				if r.Gap > 0 {
					time.Sleep(r.Gap)
				}
				t0 := trace.Now()
				var err error
				switch r.Kind {
				case ReqCommunity:
					_, err = w.CommunityOf(r.V)
				case ReqNeighborhood:
					_, err = w.Neighborhood(r.V)
				case ReqModularity:
					_, err = w.Modularity()
				case ReqUpdate:
					_, err = w.Update(r.Ops)
					o.ups++
				}
				o.lats = append(o.lats, trace.Since(t0))
				if err != nil {
					o.errs++
				}
			}
		}(tn)
	}
	for range pl.Streams {
		<-done
	}
	wall := trace.Since(start)

	res := Result{Config: pl.Config, Wall: wall}
	var all []time.Duration
	for _, o := range outs {
		all = append(all, o.lats...)
		res.Updates += o.ups
		res.Errors += o.errs
	}
	res.Requests = len(all)
	if wall > 0 {
		res.Throughput = float64(res.Requests) / wall.Seconds()
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	if len(all) > 0 {
		res.P50 = all[len(all)/2]
		res.P99 = all[min(len(all)-1, len(all)*99/100)]
		res.Max = all[len(all)-1]
	}
	if pl.Config.Rate > 0 && res.Throughput < 0.9*pl.Config.Rate {
		res.Saturated = true
	}
	return res
}

// Replay issues the plan's requests sequentially in a fixed global order —
// round-robin across tenant streams — with no goroutines and no clock.
// Unlike Run, whose tenant interleaving is scheduler-dependent, Replay
// leaves the world in a state that is a pure function of (graph, options,
// plan), which is what the deterministic tests pin.
func Replay(w *dserver.World, pl *Plan) (Result, error) {
	var res Result
	res.Config = pl.Config
	next := make([]int, len(pl.Streams))
	for {
		progress := false
		for tn, stream := range pl.Streams {
			if next[tn] >= len(stream) {
				continue
			}
			progress = true
			r := stream[next[tn]]
			next[tn]++
			var err error
			switch r.Kind {
			case ReqCommunity:
				_, err = w.CommunityOf(r.V)
			case ReqNeighborhood:
				_, err = w.Neighborhood(r.V)
			case ReqModularity:
				_, err = w.Modularity()
			case ReqUpdate:
				_, err = w.Update(r.Ops)
				res.Updates++
			}
			res.Requests++
			if err != nil {
				res.Errors++
				return res, fmt.Errorf("tenant %d request %d (%v): %w", tn, next[tn]-1, r.Kind, err)
			}
		}
		if !progress {
			return res, nil
		}
	}
}

// Sweep runs the same workload shape at each offered rate in order,
// stopping early once a rate saturates (higher rates would too). Each rate
// gets a fresh plan with a rate-salted seed so streams differ across
// steps but stay reproducible.
func Sweep(w *dserver.World, n int, base Config, rates []float64) []Result {
	var results []Result
	for i, rate := range rates {
		cfg := base
		cfg.Rate = rate
		cfg.Seed = base.Seed + int64(i+1)*104729
		res := Run(w, NewPlan(n, cfg))
		results = append(results, res)
		if res.Saturated {
			break
		}
	}
	return results
}
