package loadgen

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/dserver"
	"repro/internal/gen"
	"repro/internal/graph"
)

func benchGraph(t testing.TB) *graph.Graph {
	t.Helper()
	g, _, err := gen.Caveman(8, 8)
	if err != nil {
		t.Fatalf("caveman: %v", err)
	}
	return g
}

func newWorld(t testing.TB, g *graph.Graph, p int) *dserver.World {
	t.Helper()
	w, err := dserver.New(g, dserver.Options{P: p, AutoResolve: true})
	if err != nil {
		t.Fatalf("dserver.New: %v", err)
	}
	t.Cleanup(func() {
		if err := w.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	})
	return w
}

// TestPlanDeterministic pins the plan itself: same seed, same streams —
// including the update payloads and Poisson gaps.
func TestPlanDeterministic(t *testing.T) {
	cfg := Config{Tenants: 3, Requests: 120, Seed: 7, Rate: 500}
	a := NewPlan(64, cfg)
	b := NewPlan(64, cfg)
	if !reflect.DeepEqual(a.Streams, b.Streams) {
		t.Fatal("two plans from the same seed differ")
	}
	c := NewPlan(64, Config{Tenants: 3, Requests: 120, Seed: 8, Rate: 500})
	if reflect.DeepEqual(a.Streams, c.Streams) {
		t.Fatal("plans from different seeds are identical")
	}
}

// TestPlanTenantPoolsDisjoint verifies no two tenants ever touch the same
// edge pair — the property that makes concurrent update batches safe.
func TestPlanTenantPoolsDisjoint(t *testing.T) {
	pl := NewPlan(64, Config{Tenants: 4, Requests: 400, Seed: 3, UpdateFrac: 0.9})
	ownerOf := make(map[[2]int]int)
	for tn, stream := range pl.Streams {
		for _, r := range stream {
			for _, op := range r.Ops {
				u, v := op.U, op.V
				if u > v {
					u, v = v, u
				}
				k := [2]int{u, v}
				if prev, ok := ownerOf[k]; ok && prev != tn {
					t.Fatalf("pair %v used by tenants %d and %d", k, prev, tn)
				}
				ownerOf[k] = tn
			}
		}
	}
	if len(ownerOf) == 0 {
		t.Fatal("plan generated no update pairs")
	}
}

// TestReplayDeterministic runs the same plan on two fresh worlds and pins
// the final state bit-for-bit: modularity, edge count, batch counters, and
// full membership.
func TestReplayDeterministic(t *testing.T) {
	g := benchGraph(t)
	cfg := Config{Tenants: 4, Requests: 80, Seed: 11, UpdateFrac: 0.4, BatchSize: 3}
	pl := NewPlan(g.NumVertices(), cfg)

	type snap struct {
		stats dserver.Stats
		memb  graph.Membership
	}
	run := func() snap {
		w := newWorld(t, g, 2)
		res, err := Replay(w, pl)
		if err != nil {
			t.Fatalf("replay: %v", err)
		}
		if res.Errors != 0 {
			t.Fatalf("replay saw %d errors", res.Errors)
		}
		if res.Updates == 0 {
			t.Fatal("plan exercised no updates")
		}
		m, err := w.Membership()
		if err != nil {
			t.Fatalf("membership: %v", err)
		}
		return snap{stats: w.Stats(), memb: m}
	}
	a, b := run(), run()
	if a.stats != b.stats {
		t.Errorf("stats diverged across identical replays:\n%+v\n%+v", a.stats, b.stats)
	}
	if !reflect.DeepEqual(a.memb, b.memb) {
		t.Error("membership diverged across identical replays")
	}
}

// TestRunClosedLoop exercises the concurrent runner (no pacing) end to end
// and sanity-checks the aggregate result.
func TestRunClosedLoop(t *testing.T) {
	g := benchGraph(t)
	w := newWorld(t, g, 2)
	cfg := Config{Tenants: 4, Requests: 64, Seed: 5, UpdateFrac: 0.3, BatchSize: 2}
	pl := NewPlan(g.NumVertices(), cfg)
	res := Run(w, pl)
	want := 0
	for _, s := range pl.Streams {
		want += len(s)
	}
	if res.Requests != want {
		t.Fatalf("ran %d requests, want %d", res.Requests, want)
	}
	if res.Errors != 0 {
		t.Fatalf("run saw %d errors", res.Errors)
	}
	if res.Updates == 0 {
		t.Fatal("run exercised no updates")
	}
	if res.P50 < 0 || res.P99 < res.P50 || res.Max < res.P99 {
		t.Fatalf("latency quantiles out of order: p50=%v p99=%v max=%v", res.P50, res.P99, res.Max)
	}
	if res.Throughput <= 0 {
		t.Fatalf("throughput %v, want > 0", res.Throughput)
	}
}

// BenchmarkServeLoad is the latency/throughput sweep behind BENCH_8.json:
// a fixed multi-tenant mix offered at increasing rates against one
// resident world per rate step.
func BenchmarkServeLoad(b *testing.B) {
	g, err := gen.RMAT(gen.Graph500RMAT(10, 7))
	if err != nil {
		b.Fatalf("rmat: %v", err)
	}
	base := Config{Tenants: 8, Requests: 200, Seed: 42, UpdateFrac: 0.2, BatchSize: 4}
	for _, rate := range []float64{50, 200, 800} {
		b.Run(fmt.Sprintf("rate%d", int(rate)), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				w := newWorld(b, g, 4)
				cfg := base
				cfg.Rate = rate
				pl := NewPlan(g.NumVertices(), cfg)
				b.StartTimer()
				res := Run(w, pl)
				b.StopTimer()
				b.ReportMetric(res.Throughput, "req/s")
				b.ReportMetric(float64(res.P50.Microseconds()), "p50-µs")
				b.ReportMetric(float64(res.P99.Microseconds()), "p99-µs")
				if err := w.Close(); err != nil {
					b.Fatalf("close: %v", err)
				}
				b.StartTimer()
			}
		})
	}
}

// BenchmarkIncrementalUpdate and BenchmarkFullResolve bracket the win of
// the incremental path: one update batch absorbed by the k-hop sweep
// versus a from-scratch re-solve of the same world.
func BenchmarkIncrementalUpdate(b *testing.B) {
	g, err := gen.RMAT(gen.Graph500RMAT(10, 7))
	if err != nil {
		b.Fatalf("rmat: %v", err)
	}
	// No AutoResolve: measure the incremental path alone.
	w, err := dserver.New(g, dserver.Options{P: 4, Core: core.Options{DriftQ: 1e9, DriftTouched: 1e9}})
	if err != nil {
		b.Fatalf("dserver.New: %v", err)
	}
	defer w.Close()
	pl := NewPlan(g.NumVertices(), Config{Tenants: 1, Requests: 2 * b.N, Seed: 9, UpdateFrac: 1, BatchSize: 8})
	var batches [][]dserver.Op
	for _, stream := range pl.Streams {
		for _, r := range stream {
			batches = append(batches, r.Ops)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.Update(batches[i%len(batches)]); err != nil {
			b.Fatalf("update: %v", err)
		}
	}
}

func BenchmarkFullResolve(b *testing.B) {
	g, err := gen.RMAT(gen.Graph500RMAT(10, 7))
	if err != nil {
		b.Fatalf("rmat: %v", err)
	}
	w, err := dserver.New(g, dserver.Options{P: 4})
	if err != nil {
		b.Fatalf("dserver.New: %v", err)
	}
	defer w.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := w.Resolve(); err != nil {
			b.Fatalf("resolve: %v", err)
		}
	}
}
