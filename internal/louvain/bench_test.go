package louvain

import (
	"fmt"
	"testing"

	"repro/internal/gen"
)

func BenchmarkSequential(b *testing.B) {
	for _, n := range []int{1000, 4000, 16000} {
		b.Run(fmt.Sprintf("lfr-n=%d", n), func(b *testing.B) {
			g, _, err := gen.LFR(gen.DefaultLFR(n, 0.3, 5))
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				Run(g, Options{})
			}
		})
	}
}

func BenchmarkAggregate(b *testing.B) {
	g, _, err := gen.LFR(gen.DefaultLFR(8000, 0.3, 5))
	if err != nil {
		b.Fatal(err)
	}
	labels, _, _ := localMoving(g, Options{}.withDefaults())
	k := labels.Normalize()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Aggregate(g, labels, k)
	}
}
