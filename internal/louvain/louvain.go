// Package louvain implements the sequential Louvain community-detection
// algorithm of Blondel et al. It is the correctness and performance baseline
// the paper's distributed algorithm is measured against (Figures 5 and 9).
//
// The algorithm alternates two phases until modularity stops improving:
// local moving (greedily reassign each vertex to the neighboring community
// with the highest modularity gain) and aggregation (collapse each community
// into a single vertex of a coarser graph).
package louvain

import (
	"math"

	"repro/internal/graph"
)

// Options configures a run. The zero value is a sensible default.
type Options struct {
	// MinGain is the minimum modularity improvement for continuing to the
	// next level (and for counting an inner pass as productive).
	// Defaults to 1e-6.
	MinGain float64
	// MaxLevels caps the number of aggregation levels; 0 means no cap.
	MaxLevels int
	// MaxInnerIters caps local-moving sweeps per level; 0 means no cap.
	MaxInnerIters int
	// TrackTrace records modularity after every inner sweep of the first
	// level (used by the convergence experiment, Figure 5).
	TrackTrace bool
	// Resolution is the γ of generalized modularity; 0 or 1 is standard
	// modularity, larger values produce more, smaller communities.
	Resolution float64
	// TrackLevels records the flattened membership after every aggregation
	// level (the dendrogram).
	TrackLevels bool
}

func (o Options) withDefaults() Options {
	if o.MinGain <= 0 {
		o.MinGain = 1e-6
	}
	if o.Resolution <= 0 {
		o.Resolution = 1
	}
	return o
}

// LevelStats describes one aggregation level of a run.
type LevelStats struct {
	Vertices   int     // vertices of the graph at this level
	InnerIters int     // local-moving sweeps performed
	Modularity float64 // modularity after the level
}

// Result is the outcome of a Louvain run.
type Result struct {
	// Membership maps each original vertex to its final community
	// (dense labels 0..K-1).
	Membership graph.Membership
	// Modularity is the final modularity on the original graph.
	Modularity float64
	// Levels holds per-level statistics.
	Levels []LevelStats
	// QTrace, if requested, is the modularity after each inner sweep of the
	// first level.
	QTrace []float64
	// LevelMemberships, if requested, is the dendrogram: the membership of
	// the original vertices after each aggregation level.
	LevelMemberships []graph.Membership
}

// Run executes the sequential Louvain algorithm on g.
func Run(g *graph.Graph, opt Options) Result {
	opt = opt.withDefaults()
	n := g.NumVertices()
	res := Result{Membership: make(graph.Membership, n)}
	for i := range res.Membership {
		res.Membership[i] = i
	}
	if n == 0 || g.TotalWeight2() == 0 {
		res.Membership.Normalize()
		return res
	}

	cur := g
	prevQ := math.Inf(-1)
	for level := 0; opt.MaxLevels == 0 || level < opt.MaxLevels; level++ {
		labels, iters, trace := localMoving(cur, opt)
		q := graph.ModularityResolution(cur, labels, opt.Resolution)
		if level == 0 && opt.TrackTrace {
			res.QTrace = trace
		}
		res.Levels = append(res.Levels, LevelStats{
			Vertices:   cur.NumVertices(),
			InnerIters: iters,
			Modularity: q,
		})
		if q-prevQ < opt.MinGain {
			break
		}
		prevQ = q
		// Flatten: original vertex → community at this level.
		k := labels.Normalize()
		for i := range res.Membership {
			res.Membership[i] = labels[res.Membership[i]]
		}
		if opt.TrackLevels {
			snap := res.Membership.Clone()
			snap.Normalize()
			res.LevelMemberships = append(res.LevelMemberships, snap)
		}
		if k == cur.NumVertices() {
			break // no merging happened; a further level cannot improve
		}
		cur = Aggregate(cur, labels, k)
	}
	res.Membership.Normalize()
	res.Modularity = graph.ModularityResolution(g, res.Membership, opt.Resolution)
	return res
}

// localMoving performs greedy local moving sweeps on g until no vertex
// moves (or the sweep cap is hit). It returns the per-vertex community
// labels, the sweep count, and (when tracking) the post-sweep modularity
// trace.
func localMoving(g *graph.Graph, opt Options) (graph.Membership, int, []float64) {
	n := g.NumVertices()
	m2 := g.TotalWeight2()
	labels := make(graph.Membership, n)
	tot := make([]float64, n) // Σtot per community, indexed by label
	for u := 0; u < n; u++ {
		labels[u] = u
		tot[u] = g.WeightedDegree(u)
	}
	// Scratch for neighbor-community weights.
	nw := newNeighborWeights(n)

	var trace []float64
	iters := 0
	for {
		iters++
		moved := 0
		for u := 0; u < n; u++ {
			cu := labels[u]
			ku := g.WeightedDegree(u)
			nw.reset()
			lo, hi := g.ArcRange(u)
			for a := lo; a < hi; a++ {
				v := g.ArcTarget(a)
				if v == u {
					continue // self-loops do not contribute to w(u→c)
				}
				nw.add(labels[v], g.ArcWeight(a))
			}
			// Remove u from its community for the comparison.
			tot[cu] -= ku
			best := cu
			bestGain := nw.get(cu) - opt.Resolution*tot[cu]*ku/m2
			for _, c := range nw.touched {
				if c == cu {
					continue
				}
				gain := nw.get(c) - opt.Resolution*tot[c]*ku/m2
				if gain > bestGain+gainEps {
					best, bestGain = c, gain
				} else if gain > bestGain-gainEps && c < best {
					// Tie: prefer the smaller community label. This makes
					// the sweep deterministic and mirrors the minimum-label
					// rule of the parallel algorithm.
					best = c
				}
			}
			tot[best] += ku
			if best != cu {
				labels[u] = best
				moved++
			}
		}
		if opt.TrackTrace {
			trace = append(trace, graph.Modularity(g, labels))
		}
		if moved == 0 || (opt.MaxInnerIters > 0 && iters >= opt.MaxInnerIters) {
			break
		}
	}
	return labels, iters, trace
}

// gainEps is the tolerance for treating two modularity gains as equal.
const gainEps = 1e-12

// neighborWeights accumulates w(u→c) for the communities adjacent to the
// current vertex, with O(touched) reset.
type neighborWeights struct {
	w       []float64
	touched []int
	seen    []bool
}

func newNeighborWeights(n int) *neighborWeights {
	return &neighborWeights{w: make([]float64, n), seen: make([]bool, n)}
}

func (nw *neighborWeights) reset() {
	for _, c := range nw.touched {
		nw.w[c] = 0
		nw.seen[c] = false
	}
	nw.touched = nw.touched[:0]
}

func (nw *neighborWeights) add(c int, w float64) {
	if !nw.seen[c] {
		nw.seen[c] = true
		nw.touched = append(nw.touched, c)
	}
	nw.w[c] += w
}

func (nw *neighborWeights) get(c int) float64 { return nw.w[c] }

// Aggregate collapses each community of labels (dense 0..k-1) into a single
// vertex: arcs between communities are summed, and arcs internal to a
// community become its self-loop. By the repository's graph conventions the
// coarse graph preserves both 2m and the modularity of any refinement.
func Aggregate(g *graph.Graph, labels graph.Membership, k int) *graph.Graph {
	type key struct{ c, d int32 }
	acc := make(map[key]float64)
	for u := 0; u < g.NumVertices(); u++ {
		cu := int32(labels[u])
		lo, hi := g.ArcRange(u)
		for a := lo; a < hi; a++ {
			cv := int32(labels[g.ArcTarget(a)])
			acc[key{cu, cv}] += g.ArcWeight(a)
		}
	}
	targets := make([][]int32, k)
	weights := make([][]float64, k)
	for kk, w := range acc {
		targets[kk.c] = append(targets[kk.c], kk.d)
		weights[kk.c] = append(weights[kk.c], w)
	}
	ng, err := graph.FromArcLists(k, targets, weights)
	if err != nil {
		// labels out of range would be a programming error upstream
		panic("louvain: aggregate failed: " + err.Error())
	}
	return ng
}
