package louvain

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/graph"
)

func TestTwoTriangles(t *testing.T) {
	g, err := graph.FromEdges(6, []graph.Edge{
		{U: 0, V: 1, W: 1}, {U: 1, V: 2, W: 1}, {U: 0, V: 2, W: 1},
		{U: 3, V: 4, W: 1}, {U: 4, V: 5, W: 1}, {U: 3, V: 5, W: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	res := Run(g, Options{})
	if res.Membership.NumCommunities() != 2 {
		t.Errorf("found %d communities, want 2", res.Membership.NumCommunities())
	}
	if res.Membership[0] != res.Membership[1] || res.Membership[1] != res.Membership[2] {
		t.Errorf("triangle 1 split: %v", res.Membership)
	}
	if res.Membership[3] != res.Membership[4] || res.Membership[4] != res.Membership[5] {
		t.Errorf("triangle 2 split: %v", res.Membership)
	}
	if math.Abs(res.Modularity-0.5) > 1e-9 {
		t.Errorf("Modularity = %g, want 0.5", res.Modularity)
	}
}

func TestBridgedTriangles(t *testing.T) {
	// Two triangles joined by one edge should still split in two.
	g, err := graph.FromEdges(6, []graph.Edge{
		{U: 0, V: 1, W: 1}, {U: 1, V: 2, W: 1}, {U: 0, V: 2, W: 1},
		{U: 3, V: 4, W: 1}, {U: 4, V: 5, W: 1}, {U: 3, V: 5, W: 1},
		{U: 2, V: 3, W: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	res := Run(g, Options{})
	if res.Membership.NumCommunities() != 2 {
		t.Errorf("found %d communities, want 2 (membership %v)", res.Membership.NumCommunities(), res.Membership)
	}
	if res.Modularity < 0.35 {
		t.Errorf("Modularity = %g, want > 0.35", res.Modularity)
	}
}

func TestEmptyAndTrivialGraphs(t *testing.T) {
	g, err := graph.FromEdges(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	res := Run(g, Options{})
	if len(res.Membership) != 0 || res.Modularity != 0 {
		t.Errorf("empty graph: %+v", res)
	}

	g, err = graph.FromEdges(4, nil) // no edges
	if err != nil {
		t.Fatal(err)
	}
	res = Run(g, Options{})
	if len(res.Membership) != 4 {
		t.Errorf("edgeless: membership %v", res.Membership)
	}
}

func TestSingleEdge(t *testing.T) {
	g, err := graph.FromEdges(2, []graph.Edge{{U: 0, V: 1, W: 1}})
	if err != nil {
		t.Fatal(err)
	}
	res := Run(g, Options{})
	if res.Membership[0] != res.Membership[1] {
		t.Errorf("endpoints of a single edge should merge: %v", res.Membership)
	}
	if math.Abs(res.Modularity) > 1e-9 {
		t.Errorf("Modularity = %g, want 0", res.Modularity)
	}
}

func TestCavemanRecovery(t *testing.T) {
	g, truth, err := gen.Caveman(8, 6)
	if err != nil {
		t.Fatal(err)
	}
	res := Run(g, Options{})
	if got := res.Membership.NumCommunities(); got != 8 {
		t.Errorf("found %d communities, want 8", got)
	}
	// detected must match planted exactly up to relabeling
	seen := make(map[int]int)
	for i := range truth {
		if want, ok := seen[truth[i]]; ok {
			if res.Membership[i] != want {
				t.Fatalf("clique %d split between communities", truth[i])
			}
		} else {
			seen[truth[i]] = res.Membership[i]
		}
	}
}

func TestModularityNeverDecreasesAcrossLevels(t *testing.T) {
	g, _, err := gen.LFR(gen.DefaultLFR(600, 0.3, 4))
	if err != nil {
		t.Fatal(err)
	}
	res := Run(g, Options{})
	for i := 1; i < len(res.Levels); i++ {
		if res.Levels[i].Modularity < res.Levels[i-1].Modularity-1e-9 {
			t.Errorf("level %d modularity %g < level %d %g",
				i, res.Levels[i].Modularity, i-1, res.Levels[i-1].Modularity)
		}
	}
	if res.Modularity < 0.3 {
		t.Errorf("final modularity %g too low for LFR(mu=0.3)", res.Modularity)
	}
}

func TestTraceMonotoneWithinFirstLevel(t *testing.T) {
	g, _, err := gen.LFR(gen.DefaultLFR(400, 0.2, 8))
	if err != nil {
		t.Fatal(err)
	}
	res := Run(g, Options{TrackTrace: true})
	if len(res.QTrace) == 0 {
		t.Fatal("no trace recorded")
	}
	for i := 1; i < len(res.QTrace); i++ {
		if res.QTrace[i] < res.QTrace[i-1]-1e-9 {
			t.Errorf("trace decreased at sweep %d: %g → %g", i, res.QTrace[i-1], res.QTrace[i])
		}
	}
}

func TestDeterministic(t *testing.T) {
	g, _, err := gen.LFR(gen.DefaultLFR(500, 0.25, 3))
	if err != nil {
		t.Fatal(err)
	}
	r1 := Run(g, Options{})
	r2 := Run(g, Options{})
	if r1.Modularity != r2.Modularity {
		t.Errorf("nondeterministic modularity: %g vs %g", r1.Modularity, r2.Modularity)
	}
	for i := range r1.Membership {
		if r1.Membership[i] != r2.Membership[i] {
			t.Fatal("nondeterministic membership")
		}
	}
}

func TestMaxLevelsCap(t *testing.T) {
	g, _, err := gen.LFR(gen.DefaultLFR(400, 0.2, 6))
	if err != nil {
		t.Fatal(err)
	}
	res := Run(g, Options{MaxLevels: 1})
	if len(res.Levels) != 1 {
		t.Errorf("Levels = %d, want 1", len(res.Levels))
	}
}

func TestMaxInnerItersCap(t *testing.T) {
	g, _, err := gen.LFR(gen.DefaultLFR(400, 0.2, 6))
	if err != nil {
		t.Fatal(err)
	}
	res := Run(g, Options{MaxInnerIters: 1})
	for _, lv := range res.Levels {
		if lv.InnerIters > 1 {
			t.Errorf("InnerIters = %d, want <= 1", lv.InnerIters)
		}
	}
}

func TestAggregatePreservesWeight(t *testing.T) {
	g, _, err := gen.LFR(gen.DefaultLFR(300, 0.3, 2))
	if err != nil {
		t.Fatal(err)
	}
	labels := make(graph.Membership, g.NumVertices())
	for i := range labels {
		labels[i] = i % 10
	}
	k := labels.Normalize()
	ag := Aggregate(g, labels, k)
	if math.Abs(ag.TotalWeight2()-g.TotalWeight2()) > 1e-6 {
		t.Errorf("2m changed: %g → %g", g.TotalWeight2(), ag.TotalWeight2())
	}
	// Modularity of the partition is preserved on the coarse graph when
	// each coarse vertex is its own community.
	coarse := make(graph.Membership, k)
	for i := range coarse {
		coarse[i] = i
	}
	q1 := graph.Modularity(g, labels)
	q2 := graph.Modularity(ag, coarse)
	if math.Abs(q1-q2) > 1e-9 {
		t.Errorf("aggregation broke modularity: %g vs %g", q1, q2)
	}
}

func TestAggregateIdempotentOnSingletons(t *testing.T) {
	g, err := graph.FromEdges(4, []graph.Edge{{U: 0, V: 1, W: 2}, {U: 2, V: 3, W: 1}})
	if err != nil {
		t.Fatal(err)
	}
	labels := graph.Membership{0, 1, 2, 3}
	ag := Aggregate(g, labels, 4)
	if ag.NumVertices() != 4 || ag.NumArcs() != g.NumArcs() {
		t.Errorf("singleton aggregation changed the graph: %d vertices %d arcs",
			ag.NumVertices(), ag.NumArcs())
	}
}

func TestQuickAggregationPreservesModularity(t *testing.T) {
	f := func(seed int64) bool {
		g, _, err := gen.SBM([]int{20, 20, 20}, 0.3, 0.05, seed)
		if err != nil {
			return false
		}
		labels := make(graph.Membership, g.NumVertices())
		rngLabel := int(seed)
		if rngLabel < 0 {
			rngLabel = -rngLabel
		}
		for i := range labels {
			labels[i] = (i*7 + rngLabel) % 5
		}
		k := labels.Normalize()
		ag := Aggregate(g, labels, k)
		coarse := make(graph.Membership, k)
		for i := range coarse {
			coarse[i] = i
		}
		return math.Abs(graph.Modularity(g, labels)-graph.Modularity(ag, coarse)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestWeightedGraphPreference(t *testing.T) {
	// A path 0-1-2 where edge (0,1) is heavy: 1 should join 0, not 2.
	g, err := graph.FromEdges(3, []graph.Edge{{U: 0, V: 1, W: 10}, {U: 1, V: 2, W: 1}})
	if err != nil {
		t.Fatal(err)
	}
	res := Run(g, Options{})
	if res.Membership[0] != res.Membership[1] {
		t.Errorf("heavy edge not merged: %v", res.Membership)
	}
}

func TestResolutionControlsGranularity(t *testing.T) {
	g, _, err := gen.LFR(gen.DefaultLFR(600, 0.25, 44))
	if err != nil {
		t.Fatal(err)
	}
	coarse := Run(g, Options{Resolution: 0.25})
	std := Run(g, Options{})
	fine := Run(g, Options{Resolution: 4})
	kc, ks, kf := coarse.Membership.NumCommunities(), std.Membership.NumCommunities(), fine.Membership.NumCommunities()
	if !(kc <= ks && ks <= kf) {
		t.Errorf("community counts not monotone in γ: γ=0.25→%d, γ=1→%d, γ=4→%d", kc, ks, kf)
	}
}

func TestTrackLevelsDendrogram(t *testing.T) {
	g, _, err := gen.LFR(gen.DefaultLFR(500, 0.25, 46))
	if err != nil {
		t.Fatal(err)
	}
	res := Run(g, Options{TrackLevels: true})
	if len(res.LevelMemberships) == 0 {
		t.Fatal("no levels recorded")
	}
	prev := g.NumVertices() + 1
	for l, m := range res.LevelMemberships {
		if len(m) != g.NumVertices() {
			t.Fatalf("level %d covers %d vertices", l, len(m))
		}
		k := m.NumCommunities()
		if k > prev {
			t.Errorf("level %d has more communities (%d) than previous (%d)", l, k, prev)
		}
		prev = k
	}
}
