// Package par provides the repository's shared intra-process worker pool
// and its deterministic chunking rules. It began life as internal/core's
// intra-rank pool (PR 2) and was extracted so the data-loading pipeline —
// edge-list parsing and CSR construction in internal/graph, partitioning in
// internal/partition — can reuse the exact machinery the solve phase is
// built on.
//
// Two rules keep every parallel path bit-identical to its serial
// counterpart, no matter the worker count:
//
//  1. Chunk boundaries are a pure function of the data size — never of the
//     worker count — so the same partial results exist at every Workers
//     setting.
//  2. Partial results are combined on the caller goroutine in ascending
//     chunk order, so floating-point reductions and ordered appends
//     associate identically no matter which worker computed which chunk.
//
// Kernels must not touch a communicator: collectives are matched by
// (source, tag) in program order on a rank's main goroutine, and a
// collective issued from a worker would race that matching (the
// collectivesym analyzer rejects collectives inside ParFor tasks).
package par

import (
	"runtime"
	"sync/atomic"
)

// Grain is the number of items that justify one chunk of parallel work;
// below this the dispatch overhead exceeds the kernel cost.
const Grain = 512

// MaxChunks caps the chunk count (and thereby the per-chunk scratch) of a
// single ParFor.
const MaxChunks = 64

// NumChunks returns the chunk count for n items: a function of the data
// size only, so chunk boundaries are identical at every worker count.
func NumChunks(n int) int {
	nc := n / Grain
	if nc < 1 {
		return 1
	}
	if nc > MaxChunks {
		return MaxChunks
	}
	return nc
}

// ChunkSpan returns the half-open item range [lo, hi) of chunk c out of nc
// over n items. Contiguous, exhaustive, and deterministic.
func ChunkSpan(n, nc, c int) (lo, hi int) {
	return c * n / nc, (c + 1) * n / nc
}

// DefaultWorkers is the automatic worker count for a process hosting
// worldSize rank goroutines: the host's parallelism divided by the world
// size (every rank competes for the same cores), floored at one. Host-global
// phases (ingest, partitioning) pass worldSize = 1.
func DefaultWorkers(worldSize int) int {
	nw := runtime.GOMAXPROCS(0) / worldSize
	if nw < 1 {
		return 1
	}
	if nw > MaxChunks {
		return MaxChunks
	}
	return nw
}

// Pool runs chunked kernels on nw goroutines (the caller participates as
// worker 0, so nw-1 goroutines are spawned). A nil Pool runs everything
// inline; Close releases the goroutines.
type Pool struct {
	nw      int
	kernel  func(chunk, worker int)
	nChunks int
	next    atomic.Int64
	start   chan struct{}
	done    chan struct{}
	quit    chan struct{}
}

// NewPool returns a pool of nw workers, or nil when nw <= 1 (the serial
// path needs no goroutines at all).
func NewPool(nw int) *Pool {
	if nw <= 1 {
		return nil
	}
	p := &Pool{
		nw:    nw,
		start: make(chan struct{}, nw),
		done:  make(chan struct{}, nw),
		quit:  make(chan struct{}),
	}
	for w := 1; w < nw; w++ {
		go p.worker(w)
	}
	return p
}

func (p *Pool) worker(w int) {
	for {
		// Which of quit/start wins the race below never reaches a result:
		// chunk partials are combined by the caller in ascending chunk order,
		// so the dispatch schedule is invisible to the output.
		//lint:ignore nondet worker wake/shutdown arbitration; chunk results combine in chunk order, so schedule order never reaches the output
		select {
		case <-p.quit:
			return
		case <-p.start:
			p.runChunks(w)
			p.done <- struct{}{}
		}
	}
}

// runChunks claims chunks off the shared counter until none remain.
func (p *Pool) runChunks(w int) {
	for {
		c := int(p.next.Add(1)) - 1
		if c >= p.nChunks {
			return
		}
		p.kernel(c, w)
	}
}

// Close stops the worker goroutines. Safe on a nil Pool.
func (p *Pool) Close() {
	if p != nil {
		close(p.quit)
	}
}

// ParFor runs kernel(chunk, worker) for every chunk in [0, nChunks), with
// worker in [0, Workers()). Chunks are claimed dynamically, so the mapping
// of chunk to worker is nondeterministic — kernels must write only
// per-chunk or per-worker state and leave cross-chunk combining to the
// caller (in chunk order, for bit-identical reductions). ParFor returns
// after every chunk has completed. A nil Pool runs the chunks in order on
// the caller.
func (p *Pool) ParFor(nChunks int, kernel func(chunk, worker int)) {
	if p == nil || nChunks <= 1 {
		for c := 0; c < nChunks; c++ {
			kernel(c, 0)
		}
		return
	}
	p.kernel = kernel
	p.nChunks = nChunks
	p.next.Store(0)
	spawned := p.nw - 1
	for w := 0; w < spawned; w++ {
		p.start <- struct{}{}
	}
	p.runChunks(0)
	for w := 0; w < spawned; w++ {
		<-p.done
	}
	p.kernel = nil
}

// Workers returns the worker-index space size of ParFor kernels.
func (p *Pool) Workers() int {
	if p == nil {
		return 1
	}
	return p.nw
}
