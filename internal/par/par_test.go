package par

import (
	"sync/atomic"
	"testing"
)

func TestChunkSpanCoversRange(t *testing.T) {
	for _, n := range []int{0, 1, 7, Grain, Grain*3 + 1, Grain * MaxChunks * 2} {
		nc := NumChunks(n)
		if nc < 1 || nc > MaxChunks {
			t.Fatalf("NumChunks(%d) = %d out of [1,%d]", n, nc, MaxChunks)
		}
		prev := 0
		for c := 0; c < nc; c++ {
			lo, hi := ChunkSpan(n, nc, c)
			if lo != prev || hi < lo {
				t.Fatalf("n=%d chunk %d: span [%d,%d) not contiguous after %d", n, c, lo, hi, prev)
			}
			prev = hi
		}
		if prev != n {
			t.Fatalf("n=%d: chunks cover [0,%d), want [0,%d)", n, prev, n)
		}
	}
}

func TestNumChunksIgnoresWorkerCount(t *testing.T) {
	// The determinism contract: chunk boundaries depend on the data size
	// only. NumChunks takes nothing else, so this pins the signature's
	// intent against a future "helpful" worker parameter.
	if a, b := NumChunks(10*Grain), NumChunks(10*Grain); a != b {
		t.Fatalf("NumChunks not pure: %d vs %d", a, b)
	}
}

func TestDefaultWorkersFloorsAtOne(t *testing.T) {
	if w := DefaultWorkers(1 << 20); w != 1 {
		t.Fatalf("DefaultWorkers(huge world) = %d, want 1", w)
	}
	if w := DefaultWorkers(1); w < 1 || w > MaxChunks {
		t.Fatalf("DefaultWorkers(1) = %d out of [1,%d]", w, MaxChunks)
	}
}

func TestNewPoolSerialIsNil(t *testing.T) {
	for _, nw := range []int{-1, 0, 1} {
		if p := NewPool(nw); p != nil {
			p.Close()
			t.Fatalf("NewPool(%d) != nil", nw)
		}
	}
}

func TestParFor(t *testing.T) {
	for _, nw := range []int{1, 2, 3, 8} {
		pool := NewPool(nw)
		const nChunks = 37
		var hits [nChunks]atomic.Int32
		var total atomic.Int64
		pool.ParFor(nChunks, func(c, w int) {
			if w < 0 || w >= pool.Workers() {
				t.Errorf("nw=%d: worker index %d out of [0,%d)", nw, w, pool.Workers())
			}
			hits[c].Add(1)
			total.Add(int64(c))
		})
		pool.Close()
		for c := range hits {
			if got := hits[c].Load(); got != 1 {
				t.Fatalf("nw=%d: chunk %d ran %d times", nw, c, got)
			}
		}
		if want := int64(nChunks * (nChunks - 1) / 2); total.Load() != want {
			t.Fatalf("nw=%d: total %d, want %d", nw, total.Load(), want)
		}
	}
}

func TestParForNilPoolRunsInOrder(t *testing.T) {
	var pool *Pool
	var order []int
	pool.ParFor(5, func(c, w int) {
		if w != 0 {
			t.Fatalf("nil pool worker index %d, want 0", w)
		}
		order = append(order, c)
	})
	for c, got := range order {
		if got != c {
			t.Fatalf("nil pool ran chunks %v, want ascending order", order)
		}
	}
	if len(order) != 5 {
		t.Fatalf("nil pool ran %d chunks, want 5", len(order))
	}
	pool.Close() // nil-safe
	if pool.Workers() != 1 {
		t.Fatalf("nil pool Workers() = %d, want 1", pool.Workers())
	}
}

func TestParForReusable(t *testing.T) {
	pool := NewPool(4)
	defer pool.Close()
	for round := 0; round < 50; round++ {
		var n atomic.Int32
		pool.ParFor(11, func(c, w int) { n.Add(1) })
		if n.Load() != 11 {
			t.Fatalf("round %d: %d chunks ran, want 11", round, n.Load())
		}
	}
}
