package partition

import (
	"fmt"
	"testing"

	"repro/internal/gen"
)

func BenchmarkBuild(b *testing.B) {
	g, err := gen.RMAT(gen.Graph500RMAT(13, 3))
	if err != nil {
		b.Fatal(err)
	}
	for _, kind := range []Kind{OneD, Delegate} {
		for _, p := range []int{16, 256} {
			b.Run(fmt.Sprintf("%s/p=%d", kind, p), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := Build(g, Options{P: p, Kind: kind, DHigh: 64}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
