package partition

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

func BenchmarkBuild(b *testing.B) {
	g, err := gen.RMAT(gen.Graph500RMAT(13, 3))
	if err != nil {
		b.Fatal(err)
	}
	for _, kind := range []Kind{OneD, Delegate} {
		for _, p := range []int{16, 256} {
			b.Run(fmt.Sprintf("%s/p=%d", kind, p), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := Build(g, Options{P: p, Kind: kind, DHigh: 64}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkPartitionBuild is the PR-5 trajectory benchmark: delegate
// partitioning of a scale-14 R-MAT at p=16 across worker counts, against
// the committed serial seed baseline in scripts/bench_seed_pr5.json
// (acceptance: >= 2x at 8 workers, workers=1 within 10% of serial).
func BenchmarkPartitionBuild(b *testing.B) {
	g, err := gen.RMAT(gen.Graph500RMAT(14, 5))
	if err != nil {
		b.Fatal(err)
	}
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("w=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Build(g, Options{P: 16, Kind: Delegate, DHigh: 64, Workers: w}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPartitionBuildStreaming is the PR-9 counterpart: the two-pass
// streaming builder over shard windows of a v2 .sbin against the in-RAM
// Build of the same scale-14 R-MAT — the cost of never materialising the
// whole Graph. Both partitionings; streaming output is bit-identical to
// in-RAM (TestStreamingBuildMatchesInRAM).
func BenchmarkPartitionBuildStreaming(b *testing.B) {
	g, err := gen.RMAT(gen.Graph500RMAT(14, 5))
	if err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	if err := graph.WriteBinaryShardedV2(&buf, g, 32); err != nil {
		b.Fatal(err)
	}
	s, err := graph.OpenSharded(bytes.NewReader(buf.Bytes()), int64(buf.Len()))
	if err != nil {
		b.Fatal(err)
	}
	for _, kind := range []Kind{Delegate, OneD} {
		b.Run(fmt.Sprintf("%s/inram", kind), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Build(g, Options{P: 16, Kind: kind, DHigh: 64}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("%s/stream", kind), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := BuildStreaming(s, Options{P: 16, Kind: kind, DHigh: 64}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
