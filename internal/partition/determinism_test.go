package partition

import (
	"bytes"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

// buildWorkerCounts is the contract grid for Options.Workers: every count
// must produce a bit-identical Layout (same shape as core's
// TestWorkerDeterminism).
var buildWorkerCounts = []int{1, 2, 3, 8}

func f64sIdentical(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

func intsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func arcsIdentical(a, b []Arc) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].To != b[i].To || math.Float64bits(a[i].W) != math.Float64bits(b[i].W) {
			return false
		}
	}
	return true
}

// layoutsIdentical reports the first difference between two layouts, down
// to the bit pattern of every float and the exact order of every slice
// ("" means identical). nil and empty slices are treated as different:
// the parallel path must reproduce even that distinction.
func layoutsIdentical(a, b *Layout) string {
	if a.P != b.P || a.Kind != b.Kind || a.DHigh != b.DHigh {
		return fmt.Sprintf("header: {%d %v %d} vs {%d %v %d}", a.P, a.Kind, a.DHigh, b.P, b.Kind, b.DHigh)
	}
	if (a.Hubs == nil) != (b.Hubs == nil) || !intsEqual(a.Hubs, b.Hubs) {
		return fmt.Sprintf("Hubs: %v vs %v", a.Hubs, b.Hubs)
	}
	if len(a.Parts) != len(b.Parts) {
		return fmt.Sprintf("Parts: %d vs %d", len(a.Parts), len(b.Parts))
	}
	for r := range a.Parts {
		sa, sb := a.Parts[r], b.Parts[r]
		if sa.Rank != sb.Rank || sa.P != sb.P || sa.GlobalVertices != sb.GlobalVertices {
			return fmt.Sprintf("rank %d: subgraph header differs", r)
		}
		if (sa.Owned == nil) != (sb.Owned == nil) || !intsEqual(sa.Owned, sb.Owned) {
			return fmt.Sprintf("rank %d: Owned differs", r)
		}
		if !f64sIdentical(sa.OwnedWDeg, sb.OwnedWDeg) {
			return fmt.Sprintf("rank %d: OwnedWDeg differs", r)
		}
		if len(sa.AdjOwned) != len(sb.AdjOwned) {
			return fmt.Sprintf("rank %d: AdjOwned length %d vs %d", r, len(sa.AdjOwned), len(sb.AdjOwned))
		}
		for i := range sa.AdjOwned {
			if !arcsIdentical(sa.AdjOwned[i], sb.AdjOwned[i]) {
				return fmt.Sprintf("rank %d: AdjOwned[%d] (vertex %d) differs", r, i, sa.Owned[i])
			}
		}
		if !intsEqual(sa.Hubs, sb.Hubs) || !f64sIdentical(sa.HubWDeg, sb.HubWDeg) {
			return fmt.Sprintf("rank %d: hub directory differs", r)
		}
		if len(sa.AdjHub) != len(sb.AdjHub) {
			return fmt.Sprintf("rank %d: AdjHub length %d vs %d", r, len(sa.AdjHub), len(sb.AdjHub))
		}
		for i := range sa.AdjHub {
			if !arcsIdentical(sa.AdjHub[i], sb.AdjHub[i]) {
				return fmt.Sprintf("rank %d: AdjHub[%d] (hub %d) differs", r, i, sa.Hubs[i])
			}
		}
		if !intsEqual(sa.Ghosts, sb.Ghosts) {
			return fmt.Sprintf("rank %d: Ghosts differ", r)
		}
		if len(sa.Subscribers) != len(sb.Subscribers) {
			return fmt.Sprintf("rank %d: Subscribers size %d vs %d", r, len(sa.Subscribers), len(sb.Subscribers))
		}
		for v, subs := range sa.Subscribers {
			if !intsEqual(subs, sb.Subscribers[v]) {
				return fmt.Sprintf("rank %d: Subscribers[%d] differ", r, v)
			}
		}
		if math.Float64bits(sa.TotalWeight2) != math.Float64bits(sb.TotalWeight2) {
			return fmt.Sprintf("rank %d: TotalWeight2 differs", r)
		}
	}
	return ""
}

// graphsBitIdentical compares two graphs through the public API down to
// float bit patterns.
func graphsBitIdentical(a, b *graph.Graph) string {
	if a.NumVertices() != b.NumVertices() || a.NumArcs() != b.NumArcs() || a.NumEdges() != b.NumEdges() {
		return fmt.Sprintf("shape: %d/%d/%d vs %d/%d/%d vertices/arcs/edges",
			a.NumVertices(), a.NumArcs(), a.NumEdges(), b.NumVertices(), b.NumArcs(), b.NumEdges())
	}
	if math.Float64bits(a.TotalWeight2()) != math.Float64bits(b.TotalWeight2()) {
		return fmt.Sprintf("TotalWeight2: %v vs %v", a.TotalWeight2(), b.TotalWeight2())
	}
	for u := 0; u < a.NumVertices(); u++ {
		if math.Float64bits(a.WeightedDegree(u)) != math.Float64bits(b.WeightedDegree(u)) {
			return fmt.Sprintf("vertex %d: WeightedDegree differs", u)
		}
		ta, wa := a.Neighbors(u)
		tb, wb := b.Neighbors(u)
		if len(ta) != len(tb) {
			return fmt.Sprintf("vertex %d: degree %d vs %d", u, len(ta), len(tb))
		}
		for i := range ta {
			if ta[i] != tb[i] || math.Float64bits(wa[i]) != math.Float64bits(wb[i]) {
				return fmt.Sprintf("vertex %d arc %d: (%d,%v) vs (%d,%v)", u, i, ta[i], wa[i], tb[i], wb[i])
			}
		}
	}
	return ""
}

// TestBuildWorkerDeterminism is the end-to-end determinism property for the
// ingest-and-partition pipeline: parallel edge-list parsing, the parallel
// counting-sort CSR build behind it, and parallel partition.Build must all
// be bit-identical to the serial paths at every worker count, for both
// partitioning kinds, on the golden fixture graph and a scale-12 R-MAT.
func TestBuildWorkerDeterminism(t *testing.T) {
	golden, err := os.ReadFile(filepath.Join("..", "core", "testdata", "golden", "graph.txt"))
	if err != nil {
		t.Fatal(err)
	}
	rmatG, err := gen.RMAT(gen.Graph500RMAT(12, 7))
	if err != nil {
		t.Fatal(err)
	}
	var rmatText bytes.Buffer
	if err := graph.WriteEdgeList(&rmatText, rmatG); err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		text []byte
	}{
		{"golden", golden},
		{"rmat12", rmatText.Bytes()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			serialG, err := graph.ReadEdgeList(bytes.NewReader(tc.text))
			if err != nil {
				t.Fatal(err)
			}
			for _, kind := range []Kind{OneD, Delegate} {
				base, err := Build(serialG, Options{P: 4, Kind: kind, Workers: 1})
				if err != nil {
					t.Fatal(err)
				}
				for _, w := range buildWorkerCounts {
					pg, err := graph.ReadEdgeListParallel(bytes.NewReader(tc.text), w)
					if err != nil {
						t.Fatalf("workers=%d: parallel parse: %v", w, err)
					}
					if diff := graphsBitIdentical(serialG, pg); diff != "" {
						t.Fatalf("workers=%d: parallel parse diverged: %s", w, diff)
					}
					l, err := Build(pg, Options{P: 4, Kind: kind, Workers: w})
					if err != nil {
						t.Fatalf("%v workers=%d: %v", kind, w, err)
					}
					if diff := layoutsIdentical(base, l); diff != "" {
						t.Fatalf("%v workers=%d: layout diverged from serial: %s", kind, w, diff)
					}
				}
			}
		})
	}
}

// TestBuildDefaultWorkersMatchesSerial pins the Workers=0 (auto) path to the
// serial baseline too — the default a production caller actually gets.
func TestBuildDefaultWorkersMatchesSerial(t *testing.T) {
	g, err := gen.BarabasiAlbert(1500, 4, 11)
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []Kind{OneD, Delegate} {
		base, err := Build(g, Options{P: 5, Kind: kind, Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		auto, err := Build(g, Options{P: 5, Kind: kind})
		if err != nil {
			t.Fatal(err)
		}
		if diff := layoutsIdentical(base, auto); diff != "" {
			t.Fatalf("%v: auto-workers layout diverged: %s", kind, diff)
		}
	}
}
